package wdc

import (
	"math"
	"testing"

	"repro/internal/des"
)

func TestFacadeRunSingleHop(t *testing.T) {
	res := RunSingleHop(SingleHopConfig{Mix: MixAudio, Load: 0.8, Scheme: SchemeSRL,
		Duration: 13 * des.Second, Seed: 1})
	if res.WDB <= 0 || res.Delivered == 0 {
		t.Fatalf("facade single hop degenerate: %+v", res)
	}
}

func TestFacadeRunSession(t *testing.T) {
	res := Run(Config{NumHosts: 40, Mix: MixAudio, Load: 0.6, Scheme: SchemeSigmaRho,
		Duration: 13 * des.Second, Seed: 1})
	if res.WDB <= 0 || res.Delivered == 0 {
		t.Fatalf("facade session degenerate: %+v", res)
	}
}

func TestFacadeTheory(t *testing.T) {
	var th Theory
	if got := th.Lambda(0.5); got != 2 {
		t.Fatalf("Lambda = %v", got)
	}
	if got := th.Vacation(0.02, 0.4); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("Vacation = %v", got)
	}
	if got := th.WorkPeriod(0.02, 0.4); math.Abs(got-0.02/0.6) > 1e-12 {
		t.Fatalf("WorkPeriod = %v", got)
	}
	if k3 := th.RhoStarHomog(3); k3 <= 0 || k3 >= 1.0/3 {
		t.Fatalf("RhoStarHomog(3) = %v", k3)
	}
	if k3 := th.RhoStarHetero(3); k3 <= 0 || k3 >= 1.0/3 {
		t.Fatalf("RhoStarHetero(3) = %v", k3)
	}
	sigmas := []float64{0.01, 0.01, 0.01}
	rhos := []float64{0.3, 0.3, 0.3}
	dg := th.DelayBoundSigmaRho(sigmas, rhos)
	dhat := th.DelayBoundSRL(sigmas, rhos)
	if dg <= 0 || dhat <= 0 {
		t.Fatal("non-positive bounds")
	}
	// Above threshold (0.9 > 0.79): λ bound must win.
	if dhat > dg {
		t.Fatalf("D̂ %v > D %v above threshold", dhat, dg)
	}
	if h := th.DSCTHeightBound(665, 3); h != 7 {
		t.Fatalf("height bound = %d", h)
	}
	if th.MulticastBoundSRL(7, sigmas, rhos) != 6*dhat {
		t.Fatal("multicast SRL bound mismatch")
	}
	if th.MulticastBoundSigmaRho(7, sigmas, rhos) != 6*dg {
		t.Fatal("multicast σρ bound mismatch")
	}
}

func TestFacadeOptionsHelpers(t *testing.T) {
	if got := PaperLoads(); len(got) != 13 || got[0] != 0.35 || got[12] != 0.95 {
		t.Fatalf("PaperLoads = %v", got)
	}
	// Mutating the returned slice must not affect the harness grid.
	loads := PaperLoads()
	loads[0] = 99
	if PaperLoads()[0] != 0.35 {
		t.Fatal("PaperLoads aliases internal state")
	}
	o := QuickOptions(9)
	if o.Seed != 9 || o.NumHosts != 120 {
		t.Fatalf("QuickOptions = %+v", o)
	}
}

func TestFacadeLayerSweep(t *testing.T) {
	o := QuickOptions(1)
	o.NumHosts = 150
	o.Loads = []float64{0.4, 0.9}
	r := LayerSweep(MixVideo, o)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[1].CapacityAware <= r.Rows[0].CapacityAware {
		t.Fatalf("layer growth missing: %+v", r.Rows)
	}
}

func TestFacadeScenarios(t *testing.T) {
	if len(Scenarios()) < 6 {
		t.Fatalf("facade lists %d scenarios, want >= 6", len(Scenarios()))
	}
	sc, err := LookupScenario("paper-fig6")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LookupScenario("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario must error")
	}
	data, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScenario(data); err != nil {
		t.Fatal(err)
	}
	res, err := ScenarioSweep(MustScenario("ring-sparse").Quick(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || len(res.Curves) != 2 {
		t.Fatalf("facade sweep: %d deliveries, %d curves", res.Delivered, len(res.Curves))
	}
}
