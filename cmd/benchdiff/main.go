// benchdiff compares two machine-readable benchmark records produced by
// `make bench-json` (go test -json streams) and prints a per-benchmark
// old → new table with deltas — a dependency-free stand-in for benchstat
// that works offline on single-run records. Usage:
//
//	benchdiff OLD.json NEW.json [-unit ns/op] [-all]
//
// Benchmarks are keyed by package + name; ones present in only one record
// are listed separately. With a single iteration per record (bench-json
// runs -benchtime 1x) the deltas carry run-to-run noise — treat small
// movements as noise and large ones as signal, or re-run with a longer
// benchtime before acting on a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream benchdiff needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// bench is one benchmark's parsed result line: every "value unit" pair
// after the iteration count.
type bench struct {
	pkg     string
	name    string
	metrics map[string]float64
}

func key(b bench) string { return b.pkg + "." + b.name }

// parseRecord reads a test2json stream and extracts every benchmark
// result line. Result lines may be split across output events (the name
// is flushed before the timings), so output is reassembled per package
// before scanning.
func parseRecord(path string) (map[string]bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json stream: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		b := buf[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			buf[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]bench)
	for pkg, b := range buf {
		for _, line := range strings.Split(b.String(), "\n") {
			bm, ok := parseBenchLine(pkg, line)
			if ok {
				out[key(bm)] = bm
			}
		}
	}
	return out, nil
}

// parseBenchLine parses one "BenchmarkX-8  10  123 ns/op  4 B/op ..."
// line; reports false for anything else.
func parseBenchLine(pkg, line string) (bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return bench{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return bench{}, false
	}
	bm := bench{pkg: pkg, name: fields[0], metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return bench{}, false
		}
		bm.metrics[fields[i+1]] = v
	}
	if _, ok := bm.metrics["ns/op"]; !ok {
		return bench{}, false
	}
	return bm, true
}

func fmtValue(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.4gms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gµs", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func main() {
	unit := flag.String("unit", "ns/op", "metric to compare")
	all := flag.Bool("all", false, "print every shared metric, not just -unit")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-unit ns/op] [-all] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRec, err := parseRecord(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	newRec, err := parseRecord(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var shared, added, removed []string
	for k := range newRec {
		if _, ok := oldRec[k]; ok {
			shared = append(shared, k)
		} else {
			added = append(added, k)
		}
	}
	for k := range oldRec {
		if _, ok := newRec[k]; !ok {
			removed = append(removed, k)
		}
	}
	sort.Strings(shared)
	sort.Strings(added)
	sort.Strings(removed)

	fmt.Printf("%-60s %12s %12s %8s\n", "benchmark ("+*unit+")", "old", "new", "delta")
	logsum, n := 0.0, 0
	for _, k := range shared {
		ob, nb := oldRec[k], newRec[k]
		ov, ook := ob.metrics[*unit]
		nv, nok := nb.metrics[*unit]
		if !ook || !nok {
			continue
		}
		delta := "~"
		if ov > 0 {
			d := (nv - ov) / ov * 100
			delta = fmt.Sprintf("%+.1f%%", d)
			logsum += math.Log(nv / ov)
			n++
		}
		fmt.Printf("%-60s %12s %12s %8s\n", k, fmtValue(ov), fmtValue(nv), delta)
		if *all {
			units := make([]string, 0, len(nb.metrics))
			for u := range nb.metrics {
				if u == *unit {
					continue
				}
				if _, ok := ob.metrics[u]; ok {
					units = append(units, u)
				}
			}
			sort.Strings(units)
			for _, u := range units {
				fmt.Printf("  %-58s %12s %12s\n", u, fmtValue(ob.metrics[u]), fmtValue(nb.metrics[u]))
			}
		}
	}
	if n > 0 {
		fmt.Printf("%-60s %12s %12s %+7.1f%%\n", "geomean", "", "", (math.Exp(logsum/float64(n))-1)*100)
	}
	for _, k := range added {
		fmt.Printf("%-60s %12s %12s\n", k, "-", fmtValue(newRec[k].metrics[*unit]))
	}
	for _, k := range removed {
		fmt.Printf("%-60s %12s %12s\n", k, fmtValue(oldRec[k].metrics[*unit]), "-")
	}
}
