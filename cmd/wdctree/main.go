// Command wdctree builds and inspects the overlay multicast trees: the
// Fig. 5 backbone, DSCT/NICE hierarchies, their capacity-aware variants,
// and the Lemma 2 height bound.
//
// Usage:
//
//	wdctree -print-backbone
//	wdctree -heights -hosts 665
//	wdctree -build dsct -hosts 300 -k 3
//	wdctree -build flat -fanout 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/calculus"
	"repro/internal/overlay"
	"repro/internal/stats"
	"repro/internal/topo"
)

func main() {
	var (
		printBackbone = flag.Bool("print-backbone", false, "print the Fig. 5 backbone topology")
		heights       = flag.Bool("heights", false, "measured tree heights vs the Lemma 2 bound")
		build         = flag.String("build", "", "build one tree and print metrics: dsct, nice, flat, flatblind")
		hosts         = flag.Int("hosts", 665, "host count")
		k             = flag.Int("k", 3, "cluster parameter")
		fanout        = flag.Int("fanout", 3, "fanout for flat trees")
		seed          = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *printBackbone:
		doBackbone()
	case *heights:
		doHeights(*hosts, *k, *seed)
	case *build != "":
		doBuild(*build, *hosts, *k, *fanout, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doBackbone() {
	g := topo.Backbone19()
	fmt.Printf("Fig. 5 backbone: %d routers, %d links, connected=%v\n",
		g.NumNodes(), g.NumEdges(), g.Connected())
	t := stats.NewTable("router", "degree", "coord", "links (to:delay)")
	for v := 0; v < g.NumNodes(); v++ {
		links := ""
		for i, e := range g.Neighbors(topo.NodeID(v)) {
			if i > 0 {
				links += " "
			}
			links += fmt.Sprintf("%d:%v", e.To, e.Delay)
		}
		c := g.Coord(topo.NodeID(v))
		t.AddRow(fmt.Sprintf("%d", v), fmt.Sprintf("%d", g.Degree(topo.NodeID(v))),
			fmt.Sprintf("(%.0f,%.0f)", c.X, c.Y), links)
	}
	fmt.Print(t)
}

func network(hosts int, seed uint64) (*topo.Network, []int) {
	net := topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: hosts, Seed: seed})
	members := make([]int, hosts)
	for i := range members {
		members[i] = i
	}
	return net, members
}

func doHeights(hosts, k int, seed uint64) {
	net, members := network(hosts, seed)
	t := stats.NewTable("tree", "layers", "height", "Lemma2 bound", "max fanout", "stretch")
	for _, kind := range []string{"dsct", "nice"} {
		var tr *overlay.Tree
		cfg := overlay.Config{K: k, Seed: seed}
		if kind == "dsct" {
			tr = overlay.BuildDSCT(net, members, 0, cfg)
		} else {
			tr = overlay.BuildNICE(net, members, 0, cfg)
		}
		bound := calculus.DSCTHeightBoundMax(hosts, k)
		t.AddRow(kind, fmt.Sprintf("%d", tr.Layers()), fmt.Sprintf("%d", tr.Height()),
			fmt.Sprintf("%d", bound), fmt.Sprintf("%d", tr.MaxFanout()),
			fmt.Sprintf("%.2f", tr.Stretch(net)))
	}
	fmt.Print(t)
}

func doBuild(kind string, hosts, k, fanout int, seed uint64) {
	net, members := network(hosts, seed)
	var tr *overlay.Tree
	switch kind {
	case "dsct":
		tr = overlay.BuildDSCT(net, members, 0, overlay.Config{K: k, Seed: seed})
	case "nice":
		tr = overlay.BuildNICE(net, members, 0, overlay.Config{K: k, Seed: seed})
	case "flat":
		tr = overlay.BuildFlat(net, members, 0, fanout)
	case "flatblind":
		tr = overlay.BuildFlatBlind(net, members, 0, fanout, seed)
	default:
		fmt.Fprintf(os.Stderr, "wdctree: unknown tree kind %q\n", kind)
		os.Exit(2)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "wdctree: built tree invalid: %v\n", err)
		os.Exit(1)
	}
	maxStress, avgStress := tr.LinkStress(net)
	fmt.Printf("%s tree over %d hosts:\n", kind, hosts)
	fmt.Printf("  layers        %d\n", tr.Layers())
	fmt.Printf("  height (hops) %d\n", tr.Height())
	fmt.Printf("  max fanout    %d\n", tr.MaxFanout())
	fmt.Printf("  avg fanout    %.2f\n", tr.AvgFanout())
	fmt.Printf("  stretch       %.2f\n", tr.Stretch(net))
	fmt.Printf("  link stress   max %d, avg %.2f\n", maxStress, avgStress)
}
