// Command wdctree builds and inspects the overlay multicast trees: the
// Fig. 5 backbone, DSCT/NICE hierarchies, their capacity-aware variants,
// and the Lemma 2 height bound.
//
// Usage:
//
//	wdctree -print-backbone
//	wdctree -heights -hosts 665
//	wdctree -build dsct -hosts 300 -k 3
//	wdctree -build flat -fanout 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/calculus"
	"repro/internal/overlay"
	"repro/internal/stats"
	"repro/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: flags parse from args, output goes to the
// given writers, and the exit code is returned instead of os.Exit-ed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdctree", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		printBackbone = fs.Bool("print-backbone", false, "print the Fig. 5 backbone topology")
		heights       = fs.Bool("heights", false, "measured tree heights vs the Lemma 2 bound")
		build         = fs.String("build", "", "build one tree and print metrics: dsct, nice, flat, flatblind")
		hosts         = fs.Int("hosts", 665, "host count")
		k             = fs.Int("k", 3, "cluster parameter")
		fanout        = fs.Int("fanout", 3, "fanout for flat trees")
		seed          = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	switch {
	case *printBackbone:
		doBackbone(stdout)
	case *heights:
		if err := doHeights(stdout, *hosts, *k, *seed); err != nil {
			fmt.Fprintf(stderr, "wdctree: %v\n", err)
			return 1
		}
	case *build != "":
		if err := doBuild(stdout, *build, *hosts, *k, *fanout, *seed); err != nil {
			fmt.Fprintf(stderr, "wdctree: %v\n", err)
			return 1
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

func doBackbone(w io.Writer) {
	g := topo.Backbone19()
	fmt.Fprintf(w, "Fig. 5 backbone: %d routers, %d links, connected=%v\n",
		g.NumNodes(), g.NumEdges(), g.Connected())
	t := stats.NewTable("router", "degree", "coord", "links (to:delay)")
	for v := 0; v < g.NumNodes(); v++ {
		links := ""
		for i, e := range g.Neighbors(topo.NodeID(v)) {
			if i > 0 {
				links += " "
			}
			links += fmt.Sprintf("%d:%v", e.To, e.Delay)
		}
		c := g.Coord(topo.NodeID(v))
		t.AddRow(fmt.Sprintf("%d", v), fmt.Sprintf("%d", g.Degree(topo.NodeID(v))),
			fmt.Sprintf("(%.0f,%.0f)", c.X, c.Y), links)
	}
	fmt.Fprint(w, t)
}

func network(hosts int, seed uint64) (*topo.Network, []int) {
	net := topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: hosts, Seed: seed})
	members := make([]int, hosts)
	for i := range members {
		members[i] = i
	}
	return net, members
}

func doHeights(w io.Writer, hosts, k int, seed uint64) error {
	net, members := network(hosts, seed)
	t := stats.NewTable("tree", "layers", "height", "Lemma2 bound", "max fanout", "stretch")
	for _, kind := range []string{"dsct", "nice"} {
		var tr *overlay.Tree
		var err error
		cfg := overlay.Config{K: k, Seed: seed}
		if kind == "dsct" {
			tr, err = overlay.BuildDSCT(net, members, 0, cfg)
		} else {
			tr, err = overlay.BuildNICE(net, members, 0, cfg)
		}
		if err != nil {
			return err
		}
		bound := calculus.DSCTHeightBoundMax(hosts, k)
		t.AddRow(kind, fmt.Sprintf("%d", tr.Layers()), fmt.Sprintf("%d", tr.Height()),
			fmt.Sprintf("%d", bound), fmt.Sprintf("%d", tr.MaxFanout()),
			fmt.Sprintf("%.2f", tr.Stretch(net)))
	}
	fmt.Fprint(w, t)
	return nil
}

func doBuild(w io.Writer, kind string, hosts, k, fanout int, seed uint64) error {
	net, members := network(hosts, seed)
	var tr *overlay.Tree
	var err error
	switch kind {
	case "dsct":
		tr, err = overlay.BuildDSCT(net, members, 0, overlay.Config{K: k, Seed: seed})
	case "nice":
		tr, err = overlay.BuildNICE(net, members, 0, overlay.Config{K: k, Seed: seed})
	case "flat":
		tr, err = overlay.BuildFlat(net, members, 0, fanout)
	case "flatblind":
		tr, err = overlay.BuildFlatBlind(net, members, 0, fanout, seed)
	default:
		return fmt.Errorf("unknown tree kind %q", kind)
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("built tree invalid: %v", err)
	}
	maxStress, avgStress := tr.LinkStress(net)
	fmt.Fprintf(w, "%s tree over %d hosts:\n", kind, hosts)
	fmt.Fprintf(w, "  layers        %d\n", tr.Layers())
	fmt.Fprintf(w, "  height (hops) %d\n", tr.Height())
	fmt.Fprintf(w, "  max fanout    %d\n", tr.MaxFanout())
	fmt.Fprintf(w, "  avg fanout    %.2f\n", tr.AvgFanout())
	fmt.Fprintf(w, "  stretch       %.2f\n", tr.Stretch(net))
	fmt.Fprintf(w, "  link stress   max %d, avg %.2f\n", maxStress, avgStress)
	return nil
}
