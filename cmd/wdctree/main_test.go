package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrintBackbone(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-print-backbone"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "19 routers") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestHeights(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-heights", "-hosts", "60"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "dsct") || !strings.Contains(out.String(), "nice") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestBuildEachKind(t *testing.T) {
	for _, kind := range []string{"dsct", "nice", "flat", "flatblind"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-build", kind, "-hosts", "50"}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", kind, code, errOut.String())
		}
		if !strings.Contains(out.String(), "layers") {
			t.Fatalf("%s: unexpected output:\n%s", kind, out.String())
		}
	}
}

func TestBadUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no mode: exit %d", code)
	}
	if code := run([]string{"-build", "mesh"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown kind: exit %d", code)
	}
}
