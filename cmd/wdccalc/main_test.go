package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllCalcModes(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-rhostar", "-ratio", "-duty", "-bounds"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Rate thresholds", "improvement bounds", "Duty cycle", "Theorem 7"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNoModeIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
