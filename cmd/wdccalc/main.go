// Command wdccalc evaluates the paper's closed-form results: duty-cycle
// parameters, delay bounds, rate thresholds, and improvement ratios.
//
// Usage:
//
//	wdccalc -rhostar -maxk 20
//	wdccalc -ratio -k 3
//	wdccalc -duty -sigma 0.02 -rho 0.3
//	wdccalc -bounds -k 3 -sigma 0.02 -rho 0.3 -height 7
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/calculus"
	"repro/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: flags parse from args, output goes to the
// given writers, and the exit code is returned instead of os.Exit-ed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdccalc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rhostar = fs.Bool("rhostar", false, "Theorem 3/4 thresholds")
		ratio   = fs.Bool("ratio", false, "Theorem 5/6 improvement bounds")
		duty    = fs.Bool("duty", false, "Eq. (1) duty-cycle parameters")
		bounds  = fs.Bool("bounds", false, "Lemma 1 / Theorems 1-2 / 7-8 delay bounds")
		maxK    = fs.Int("maxk", 10, "largest K for -rhostar")
		k       = fs.Int("k", 3, "number of flows/groups")
		sigma   = fs.Float64("sigma", 0.02, "burst σ in capacity-seconds")
		rho     = fs.Float64("rho", 0.3, "per-flow rate ρ as a fraction of capacity")
		height  = fs.Int("height", 7, "DSCT tree height bound for multicast bounds")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	any := false
	if *rhostar {
		any = true
		fmt.Fprintln(stdout, "Rate thresholds ρ* (Theorems 3/4):")
		fmt.Fprint(stdout, harness.RhoStarTable(*maxK))
	}
	if *ratio {
		any = true
		fmt.Fprintf(stdout, "Guaranteed Dg/D̂g improvement bounds, K=%d (Theorems 5/6):\n", *k)
		fmt.Fprint(stdout, harness.ImprovementTable(*k, nil))
	}
	if *duty {
		any = true
		lam := calculus.Lambda(*rho)
		fmt.Fprintf(stdout, "Duty cycle for σ=%.4g, ρ=%.4g (Eq. 1):\n", *sigma, *rho)
		fmt.Fprintf(stdout, "  λ = 1/(1−ρ)      = %.4f\n", lam)
		fmt.Fprintf(stdout, "  W = σ/(1−ρ)      = %.4fs\n", calculus.WorkPeriod(*sigma, *rho))
		fmt.Fprintf(stdout, "  V = σ/ρ          = %.4fs\n", calculus.Vacation(*sigma, *rho))
		fmt.Fprintf(stdout, "  P = λσ/ρ         = %.4fs\n", calculus.Period(*sigma, *rho))
	}
	if *bounds {
		any = true
		sigmas := make([]float64, *k)
		rhos := make([]float64, *k)
		for i := range sigmas {
			sigmas[i], rhos[i] = *sigma, *rho
		}
		dg := calculus.DgHetero(sigmas, rhos)
		dhat := calculus.DhatHetero(sigmas, rhos)
		fmt.Fprintf(stdout, "Bounds for K=%d identical flows (σ=%.4g, ρ=%.4g):\n", *k, *sigma, *rho)
		fmt.Fprintf(stdout, "  Lemma 1 regulator delay  = %.4fs\n", calculus.Lemma1Delay(*sigma, *sigma, *rho))
		fmt.Fprintf(stdout, "  Remark 1 MUX bound  Dg   = %.4fs\n", dg)
		fmt.Fprintf(stdout, "  Theorem 1 MUX bound D̂g  = %.4fs\n", dhat)
		fmt.Fprintf(stdout, "  Theorem 7 tree bound (H=%d) = %.4fs (σ,ρ,λ) vs %.4fs (σ,ρ)\n",
			*height, calculus.MulticastDhatHetero(*height, sigmas, rhos),
			calculus.MulticastDgHetero(*height, sigmas, rhos))
	}
	if !any {
		fs.Usage()
		return 2
	}
	return 0
}
