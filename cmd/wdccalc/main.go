// Command wdccalc evaluates the paper's closed-form results: duty-cycle
// parameters, delay bounds, rate thresholds, and improvement ratios.
//
// Usage:
//
//	wdccalc -rhostar -maxk 20
//	wdccalc -ratio -k 3
//	wdccalc -duty -sigma 0.02 -rho 0.3
//	wdccalc -bounds -k 3 -sigma 0.02 -rho 0.3 -height 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/calculus"
	"repro/internal/harness"
)

func main() {
	var (
		rhostar = flag.Bool("rhostar", false, "Theorem 3/4 thresholds")
		ratio   = flag.Bool("ratio", false, "Theorem 5/6 improvement bounds")
		duty    = flag.Bool("duty", false, "Eq. (1) duty-cycle parameters")
		bounds  = flag.Bool("bounds", false, "Lemma 1 / Theorems 1-2 / 7-8 delay bounds")
		maxK    = flag.Int("maxk", 10, "largest K for -rhostar")
		k       = flag.Int("k", 3, "number of flows/groups")
		sigma   = flag.Float64("sigma", 0.02, "burst σ in capacity-seconds")
		rho     = flag.Float64("rho", 0.3, "per-flow rate ρ as a fraction of capacity")
		height  = flag.Int("height", 7, "DSCT tree height bound for multicast bounds")
	)
	flag.Parse()

	any := false
	if *rhostar {
		any = true
		fmt.Println("Rate thresholds ρ* (Theorems 3/4):")
		fmt.Print(harness.RhoStarTable(*maxK))
	}
	if *ratio {
		any = true
		fmt.Printf("Guaranteed Dg/D̂g improvement bounds, K=%d (Theorems 5/6):\n", *k)
		fmt.Print(harness.ImprovementTable(*k, nil))
	}
	if *duty {
		any = true
		lam := calculus.Lambda(*rho)
		fmt.Printf("Duty cycle for σ=%.4g, ρ=%.4g (Eq. 1):\n", *sigma, *rho)
		fmt.Printf("  λ = 1/(1−ρ)      = %.4f\n", lam)
		fmt.Printf("  W = σ/(1−ρ)      = %.4fs\n", calculus.WorkPeriod(*sigma, *rho))
		fmt.Printf("  V = σ/ρ          = %.4fs\n", calculus.Vacation(*sigma, *rho))
		fmt.Printf("  P = λσ/ρ         = %.4fs\n", calculus.Period(*sigma, *rho))
	}
	if *bounds {
		any = true
		sigmas := make([]float64, *k)
		rhos := make([]float64, *k)
		for i := range sigmas {
			sigmas[i], rhos[i] = *sigma, *rho
		}
		dg := calculus.DgHetero(sigmas, rhos)
		dhat := calculus.DhatHetero(sigmas, rhos)
		fmt.Printf("Bounds for K=%d identical flows (σ=%.4g, ρ=%.4g):\n", *k, *sigma, *rho)
		fmt.Printf("  Lemma 1 regulator delay  = %.4fs\n", calculus.Lemma1Delay(*sigma, *sigma, *rho))
		fmt.Printf("  Remark 1 MUX bound  Dg   = %.4fs\n", dg)
		fmt.Printf("  Theorem 1 MUX bound D̂g  = %.4fs\n", dhat)
		fmt.Printf("  Theorem 7 tree bound (H=%d) = %.4fs (σ,ρ,λ) vs %.4fs (σ,ρ)\n",
			*height, calculus.MulticastDhatHetero(*height, sigmas, rhos),
			calculus.MulticastDgHetero(*height, sigmas, rhos))
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
