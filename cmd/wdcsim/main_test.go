package main

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

func TestListScenarios(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list-scenarios"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"paper-fig4", "paper-fig6", "churn-waxman-16", "waxman-zipf-16"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q:\n%s", want, out.String())
		}
	}
	// The routers and faults columns: header present, the default backbone
	// resolves to 19 routers, and the outage scenario reports its fault
	// event count.
	lines := strings.Split(out.String(), "\n")
	headerLine := lines[0]
	for _, col := range []string{"routers", "faults"} {
		if !strings.Contains(headerLine, col) {
			t.Fatalf("listing header missing %q column:\n%s", col, headerLine)
		}
	}
	routersCol := strings.Index(headerLine, "routers")
	faultsCol := strings.Index(headerLine, "faults")
	for _, line := range lines[1:] {
		switch {
		case strings.HasPrefix(line, "paper-fig6"):
			if !strings.HasPrefix(line[routersCol:], "19") {
				t.Fatalf("paper-fig6 routers column want 19:\n%s", line)
			}
		case strings.HasPrefix(line, "outage-waxman-16"):
			if !strings.HasPrefix(line[faultsCol:], "3") {
				t.Fatalf("outage-waxman-16 faults column want 3:\n%s", line)
			}
		case strings.HasPrefix(line, "paper-fig4 "):
			if !strings.HasPrefix(line[routersCol:], "-") || !strings.HasPrefix(line[faultsCol:], "-") {
				t.Fatalf("single-hop scenario should dash routers/faults:\n%s", line)
			}
		}
	}
}

// TestListScenariosSortedStable pins the listing order: registry entries
// print in sorted name order, identically across invocations — never in
// map-iteration order.
func TestListScenariosSortedStable(t *testing.T) {
	render := func() string {
		var out, errOut bytes.Buffer
		if code := run([]string{"-list-scenarios"}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut.String())
		}
		return out.String()
	}
	first := render()
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) < 3 {
		t.Fatalf("listing too short:\n%s", first)
	}
	var names []string
	for _, line := range lines[1:] { // skip header
		fields := strings.Fields(line)
		if len(fields) > 0 {
			names = append(names, fields[0])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("scenario names not sorted: %v", names)
	}
	for i := 0; i < 5; i++ {
		if render() != first {
			t.Fatal("listing not stable across invocations")
		}
	}
}

// TestScenarioShardsFlag smoke-tests a sharded scenario run through the
// CLI.
func TestScenarioShardsFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scenario", "waxman-zipf-16", "-quick", "-duration", "1", "-shards", "3"},
		&out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "deliveries") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestScenarioRunQuick(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scenario", "ring-sparse", "-quick", "-duration", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "scenario ring-sparse") ||
		!strings.Contains(out.String(), "deliveries") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestScenarioJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scenario", "churn-waxman-16", "-quick", "-duration", "1", "-json"},
		&out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rec struct {
		Scenario string    `json:"scenario"`
		Loads    []float64 `json:"loads"`
		Curves   []struct {
			Combo string    `json:"combo"`
			WDB   []float64 `json:"wdb"`
		} `json:"curves"`
	}
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rec.Scenario != "churn-waxman-16" || len(rec.Curves) == 0 || len(rec.Loads) == 0 {
		t.Fatalf("JSON record incomplete: %+v", rec)
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "rhostar"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "rate threshold") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Fatalf("-h: exit %d, want 0 (usage is not an error)", code)
	}
	if !strings.Contains(errOut.String(), "-scenario") {
		t.Fatalf("usage text missing:\n%s", errOut.String())
	}
}

func TestBadFlagsExitNonZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-scenario", "no-such"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scenario: exit %d", code)
	}
	if code := run([]string{"-exp", "fig2", "-json"}, &out, &errOut); code != 2 {
		t.Fatalf("-json without -scenario: exit %d", code)
	}
}

// TestScenarioStrategyFlag forces a scenario run onto one overlay
// strategy and checks the comparison table reflects it.
func TestScenarioStrategyFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scenario", "waxman-zipf-16", "-quick", "-duration", "1",
		"-strategy", "greedy"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Per-strategy comparison") ||
		!strings.Contains(out.String(), "greedy") {
		t.Fatalf("strategy table missing:\n%s", out.String())
	}
	if code := run([]string{"-scenario", "waxman-zipf-16", "-quick", "-strategy", "no-such"},
		&out, &errOut); code == 0 {
		t.Fatal("unknown strategy accepted")
	}
}

// -strategy only applies to scenario runs, like -json.
func TestStrategyFlagRequiresScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "fig2", "-strategy", "spt"}, &out, &errOut); code != 2 {
		t.Fatalf("-strategy without -scenario: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "-strategy") {
		t.Fatalf("unhelpful error: %s", errOut.String())
	}
}

// TestScenarioShardsAuto smoke-tests measurement-driven shard selection
// through the CLI: -shards auto must probe, pick a count, and finish with
// a normal sweep; the JSON record carries the sharding diagnostics.
func TestScenarioShardsAuto(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scenario", "waxman-zipf-16", "-quick", "-duration", "1",
		"-shards", "auto", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rec struct {
		Shards int `json:"shards"`
		Curves []struct {
			Shards []int     `json:"shards"`
			Epochs []uint64  `json:"epochs"`
			Stall  []float64 `json:"stall_share"`
		} `json:"curves"`
	}
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rec.Shards < 2 {
		t.Fatalf("auto-tuned sweep reports shards=%d, want >= 2", rec.Shards)
	}
	for ci, c := range rec.Curves {
		if len(c.Shards) == 0 || len(c.Epochs) == 0 {
			t.Fatalf("curve %d missing shard diagnostics: %+v", ci, c)
		}
	}
}

// TestSnapshotDiffFlag drives the checkpoint/restore differential through
// the CLI: every combo must report identical.
func TestSnapshotDiffFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scenario", "waxman-zipf-16", "-quick", "-duration", "1",
		"-shards", "1", "-snapshot-diff"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "identical") || strings.Contains(out.String(), "DIVERGED") {
		t.Fatalf("snapshot diff output unexpected:\n%s", out.String())
	}
	if code := run([]string{"-exp", "fig2", "-snapshot-diff"}, &out, &errOut); code != 2 {
		t.Fatalf("-snapshot-diff without -scenario: exit %d", code)
	}
}

// TestFleetFlagGuards pins the fleet flag grammar; the full worker
// protocol is covered in internal/harness (spawning real subprocesses
// from a unit test would race the test binary's own flags).
func TestFleetFlagGuards(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "fig2", "-fleet", "2"}, &out, &errOut); code != 2 {
		t.Fatalf("-fleet without -scenario: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "-fleet") {
		t.Fatalf("unhelpful error: %s", errOut.String())
	}
	if code := run([]string{"-fleet-worker", "/no/such/dir"}, &out, &errOut); code != 1 {
		t.Fatalf("-fleet-worker on a missing dir: exit %d, want 1", code)
	}
}

// TestShardsFlagRejectsGarbage pins the flag grammar: a count or "auto".
func TestShardsFlagRejectsGarbage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scenario", "ring-sparse", "-shards", "lots"}, &out, &errOut); code != 2 {
		t.Fatalf("-shards lots: exit %d, want 2", code)
	}
	if code := run([]string{"-scenario", "ring-sparse", "-shards", "-3"}, &out, &errOut); code != 2 {
		t.Fatalf("-shards -3: exit %d, want 2", code)
	}
}
