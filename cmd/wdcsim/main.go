// Command wdcsim runs the paper's experiments and prints the same rows and
// series the evaluation section reports, plus any registered scenario from
// the declarative scenario layer.
//
// Usage:
//
//	wdcsim -exp fig4b                 # one experiment at paper scale
//	wdcsim -exp fig6a -hosts 200      # reduced population
//	wdcsim -exp all -quick            # every experiment, reduced scale
//	wdcsim -exp fig4a -adaptive       # add the adaptive algorithm's curve
//	wdcsim -list-scenarios            # show the scenario registry
//	wdcsim -scenario waxman-zipf-16   # run one registered scenario
//	wdcsim -scenario churn-waxman-16  # dynamic membership under churn
//	wdcsim -scenario all -quick       # smoke every scenario, reduced scale
//	wdcsim -scenario ring-sparse -json  # machine-readable results
//	wdcsim -scenario waxman-zipf-64 -shards 8  # sharded 10k-host session
//	wdcsim -scenario spt-waxman-16    # overlay-strategy comparison
//	wdcsim -scenario waxman-zipf-16 -strategy spt  # force one strategy
//	wdcsim -scenario reopt-churn-waxman-16  # online tree re-optimization
//	wdcsim -scenario outage-waxman-16       # domain outage + partition/heal
//	wdcsim -scenario epoch-churn-waxman-16  # mass-leave epochs under churn
//	wdcsim -scenario waxman-zipf-64 -fleet 4 -fleet-dir /tmp/sweep  # distributed sweep
//	wdcsim -scenario waxman-zipf-16 -snapshot-diff  # checkpoint/restore differential
//
// Experiments: fig2, fig4a, fig4b, fig4c, fig6a, fig6b, fig6c, table1,
// table2, table3, rhostar, ratio, all.
//
// -fleet N farms the sweep's (load, combo) cells to N worker processes
// over a shared work directory (-fleet-dir; a temporary directory when
// unset). The merged result is byte-identical to the in-process sweep,
// and a sweep killed partway resumes from the same -fleet-dir without
// re-running completed combos. -fleet-worker is the internal worker entry
// point the parent spawns.
//
// -shards N (default GOMAXPROCS) runs each multi-group session as a
// sharded conservative-parallel simulation; -shards auto probes candidate
// counts with short runs and keeps the one with the lowest barrier-stall
// share. Physics are identical to the sequential engine (deliveries,
// losses, worst-case delays), so it is purely a wall-clock lever for big
// sessions. The one shard-count-
// dependent output is the reported mean delay's last few bits (per-shard
// Welford accumulators merge in shard order); pass -shards 1 when
// byte-identical output across machines matters more than speed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"

	"repro/internal/des"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: flags parse from args, output goes to the
// given writers, and the exit code is returned instead of os.Exit-ed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp           = fs.String("exp", "all", "experiment id (fig2, fig4a-c, fig6a-c, table1-3, rhostar, ratio, all)")
		scenarioName  = fs.String("scenario", "", "run a registered scenario instead of -exp (or 'all')")
		strategyName  = fs.String("strategy", "", "force every regulated combo of a scenario run onto this overlay strategy (dsct, nice, spt, greedy)")
		listScenarios = fs.Bool("list-scenarios", false, "list the registered scenarios and exit")
		jsonOut       = fs.Bool("json", false, "emit scenario results as JSON (scenario runs only)")
		hosts         = fs.Int("hosts", 0, "override multi-group host count (default 665)")
		seed          = fs.Uint64("seed", 1, "random seed")
		quick         = fs.Bool("quick", false, "reduced-scale sweep (120 hosts, 5 loads)")
		adaptive      = fs.Bool("adaptive", false, "add the adaptive algorithm's curve to fig4 output")
		durSec        = fs.Float64("duration", 0, "override per-run simulated seconds")
		sequential    = fs.Bool("sequential", false, "run sweep points sequentially (debugging)")
		workers       = fs.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS)")
		shardsFlag    = fs.String("shards", "", "per-run shard count for multi-group sessions (1 = sequential engine; 'auto' tunes by measurement; default GOMAXPROCS)")
		fleetN        = fs.Int("fleet", 0, "farm the scenario sweep to this many worker processes (scenario runs only)")
		fleetDir      = fs.String("fleet-dir", "", "shared work directory for -fleet (default: a temporary directory; set it to make the sweep resumable)")
		fleetWorker   = fs.String("fleet-worker", "", "internal: run one fleet worker against this work directory and exit")
		snapshotDiff  = fs.Bool("snapshot-diff", false, "check checkpoint/restore bit-identity for every combo of the scenario instead of sweeping (scenario runs only)")
		cpuProfile    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *fleetWorker != "" {
		if err := harness.RunFleetWorker(*fleetWorker); err != nil {
			fmt.Fprintf(stderr, "wdcsim: fleet worker: %v\n", err)
			return 1
		}
		return 0
	}
	if *listScenarios {
		printScenarios(stdout)
		return 0
	}

	// -shards: a count, "auto" (measure candidate counts, keep the one
	// with the lowest barrier-stall share), or empty for GOMAXPROCS.
	shards, autoShards := runtime.GOMAXPROCS(0), false
	switch *shardsFlag {
	case "", "0":
	case "auto":
		autoShards = true
	default:
		n, err := strconv.Atoi(*shardsFlag)
		if err != nil || n < 1 {
			fmt.Fprintf(stderr, "wdcsim: -shards wants a positive count or 'auto', got %q\n", *shardsFlag)
			return 2
		}
		shards = n
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "wdcsim: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "wdcsim: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "wdcsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "wdcsim: %v\n", err)
			}
		}()
	}

	if *scenarioName != "" {
		// Scenario sweeps resolve their own grid/duration, so only pass
		// what the user explicitly overrode on the command line.
		opts := harness.Options{Seed: *seed, Sequential: *sequential, Workers: *workers,
			NumHosts: *hosts, Shards: shards, AutoShards: autoShards, Strategy: *strategyName}
		if *durSec > 0 {
			opts.Duration = des.Seconds(*durSec)
			opts.SingleHopDuration = des.Seconds(*durSec)
		}
		names := []string{*scenarioName}
		if *scenarioName == "all" {
			names = scenario.Names()
		}
		for _, name := range names {
			sc, err := scenario.Lookup(name)
			if err != nil {
				fmt.Fprintf(stderr, "wdcsim: %v\n", err)
				return 2
			}
			if *quick {
				sc = sc.Quick()
			}
			if *snapshotDiff {
				if err := runSnapshotDiff(stdout, sc, opts); err != nil {
					fmt.Fprintf(stderr, "wdcsim: %v\n", err)
					return 1
				}
				continue
			}
			var fleet *harness.FleetOptions
			if *fleetN > 0 {
				fleet = &harness.FleetOptions{Workers: *fleetN, Dir: *fleetDir}
				if *fleetDir != "" && len(names) > 1 {
					// One sweep per directory: "-scenario all" gets a
					// sub-directory per scenario so manifests never collide.
					fleet.Dir = filepath.Join(*fleetDir, sc.Name)
				}
			}
			if err := runScenario(stdout, sc, opts, *jsonOut, fleet); err != nil {
				fmt.Fprintf(stderr, "wdcsim: %v\n", err)
				return 1
			}
		}
		return 0
	}
	if *jsonOut {
		fmt.Fprintln(stderr, "wdcsim: -json applies to -scenario runs only")
		return 2
	}
	if *strategyName != "" {
		fmt.Fprintln(stderr, "wdcsim: -strategy applies to -scenario runs only")
		return 2
	}
	if *fleetN > 0 || *fleetDir != "" {
		fmt.Fprintln(stderr, "wdcsim: -fleet applies to -scenario runs only")
		return 2
	}
	if *snapshotDiff {
		fmt.Fprintln(stderr, "wdcsim: -snapshot-diff applies to -scenario runs only")
		return 2
	}

	opts := harness.Options{Seed: *seed, Sequential: *sequential, Workers: *workers}
	if *quick {
		opts = harness.Quick(*seed)
		opts.Sequential = *sequential
		opts.Workers = *workers
	}
	opts.Shards = shards
	if *hosts > 0 {
		opts.NumHosts = *hosts
	}
	if *durSec > 0 {
		opts.Duration = des.Seconds(*durSec)
		opts.SingleHopDuration = des.Seconds(*durSec)
	}
	opts.IncludeAdaptive = *adaptive

	runners := map[string]func(){
		"fig2":    func() { runFig2(stdout) },
		"fig4a":   func() { runFig4(stdout, "Fig. 4(a) — three 64 kbps audio flows", traffic.MixAudio, opts) },
		"fig4b":   func() { runFig4(stdout, "Fig. 4(b) — three 1.5 Mbps video flows", traffic.MixVideo, opts) },
		"fig4c":   func() { runFig4(stdout, "Fig. 4(c) — one video + two audio flows", traffic.MixHetero, opts) },
		"fig6a":   func() { runFig6(stdout, "Fig. 6(a) — three audio groups", traffic.MixAudio, opts) },
		"fig6b":   func() { runFig6(stdout, "Fig. 6(b) — three video groups", traffic.MixVideo, opts) },
		"fig6c":   func() { runFig6(stdout, "Fig. 6(c) — heterogeneous groups", traffic.MixHetero, opts) },
		"table1":  func() { runTable(stdout, "Table I — layer counts, audio groups", traffic.MixAudio, opts) },
		"table2":  func() { runTable(stdout, "Table II — layer counts, video groups", traffic.MixVideo, opts) },
		"table3":  func() { runTable(stdout, "Table III — layer counts, heterogeneous groups", traffic.MixHetero, opts) },
		"rhostar": func() { runRhoStar(stdout) },
		"ratio":   func() { runRatio(stdout) },
	}
	order := []string{"fig2", "fig4a", "fig4b", "fig4c", "fig6a", "fig6b", "fig6c",
		"table1", "table2", "table3", "rhostar", "ratio"}

	if *exp == "all" {
		for _, id := range order {
			runners[id]()
		}
		return 0
	}
	runExp, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(stderr, "wdcsim: unknown experiment %q\n", *exp)
		fs.Usage()
		return 2
	}
	runExp()
	return 0
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

func printScenarios(w io.Writer) {
	t := stats.NewTable("name", "kind", "topology", "routers", "hosts", "groups", "membership", "churn", "faults", "description")
	for _, sc := range scenario.All() {
		kind := string(sc.Kind)
		if kind == "" {
			kind = string(scenario.KindMultiGroup)
		}
		topoKind := sc.Topology.Kind
		routers := fmt.Sprintf("%d", sc.Topology.Nodes)
		if topoKind == "" {
			topoKind = "backbone19"
			routers = "19"
		}
		membership := sc.Membership.Kind
		if membership == "" {
			membership = "all"
		}
		churn := sc.Churn.Kind
		if churn == "" {
			churn = "-"
		}
		faults := "-"
		if len(sc.Faults) > 0 {
			faults = fmt.Sprintf("%d", len(sc.Faults))
		}
		hosts, groups := fmt.Sprintf("%d", sc.Hosts()), fmt.Sprintf("%d", sc.GroupCount())
		if sc.Kind == scenario.KindSingleHop {
			hosts, groups, topoKind, membership, routers = "-", "-", "-", "-", "-"
		}
		t.AddRow(sc.Name, kind, topoKind, routers, hosts, groups, membership, churn, faults, sc.Description)
	}
	fmt.Fprint(w, t)
}

// runSnapshotDiff runs the checkpoint/restore differential over the
// scenario's combos and prints one verdict line per combo.
func runSnapshotDiff(w io.Writer, sc scenario.Scenario, opts harness.Options) error {
	header(w, fmt.Sprintf("snapshot diff %s — run-to-end vs checkpoint at T/2 + restore", sc.Name))
	lines, err := harness.SnapshotDiff(sc, opts)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	return err
}

func runScenario(w io.Writer, sc scenario.Scenario, opts harness.Options, jsonOut bool, fleet *harness.FleetOptions) error {
	var r harness.ScenarioResult
	var err error
	if fleet != nil {
		r, err = harness.FleetSweep(sc, opts, *fleet)
	} else {
		r, err = harness.ScenarioSweep(sc, opts)
	}
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := r.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", data)
		return nil
	}
	header(w, fmt.Sprintf("scenario %s — %s", sc.Name, sc.Description))
	fmt.Fprint(w, r.Table())
	if sc.Kind != scenario.KindSingleHop {
		fmt.Fprintf(w, "\nPer-strategy comparison at load %.2f:\n", r.Loads[len(r.Loads)-1])
		fmt.Fprint(w, r.StrategyTable())
	}
	if r.HasFaults() {
		fmt.Fprintf(w, "\nFault events and recovery at load %.2f:\n", r.Loads[len(r.Loads)-1])
		fmt.Fprint(w, r.FaultTable())
	}
	fmt.Fprintln(w, r.Summary())
	return nil
}

func runFig2(w io.Writer) {
	header(w, "Fig. 2 — (σ, ρ, λ) regulator operation (σ=10kb, ρ=250kbps, C=1Mbps)")
	pts := harness.Fig2Trace(10_000, 250_000, 1_000_000, des.Seconds(0.5), 26)
	fmt.Fprint(w, harness.Fig2Table(pts))
}

func runFig4(w io.Writer, title string, mix traffic.Mix, opts harness.Options) {
	header(w, title)
	r := harness.Fig4(mix, opts)
	fmt.Fprint(w, r.Table())
	fmt.Fprintln(w, r.Summary())
}

func runFig6(w io.Writer, title string, mix traffic.Mix, opts harness.Options) {
	header(w, title)
	r := harness.Fig6(mix, opts)
	fmt.Fprint(w, r.Table())
	fmt.Fprintln(w, r.Summary())
	fmt.Fprintln(w, "\nLayer counts (feeds Tables I–III):")
	fmt.Fprint(w, r.LayerTable())
}

func runTable(w io.Writer, title string, mix traffic.Mix, opts harness.Options) {
	header(w, title)
	fmt.Fprint(w, harness.LayerSweep(mix, opts).Table())
}

func runRhoStar(w io.Writer) {
	header(w, "Theorems 3/4 — rate threshold ρ* (paper: 0.73C homog, 0.79C hetero)")
	fmt.Fprint(w, harness.RhoStarTable(10))
}

func runRatio(w io.Writer) {
	header(w, "Theorems 5/6 — guaranteed Dg/D̂g improvement bounds (K=3)")
	fmt.Fprint(w, harness.ImprovementTable(3, nil))
}
