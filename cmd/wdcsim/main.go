// Command wdcsim runs the paper's experiments and prints the same rows and
// series the evaluation section reports, plus any registered scenario from
// the declarative scenario layer.
//
// Usage:
//
//	wdcsim -exp fig4b                 # one experiment at paper scale
//	wdcsim -exp fig6a -hosts 200      # reduced population
//	wdcsim -exp all -quick            # every experiment, reduced scale
//	wdcsim -exp fig4a -adaptive       # add the adaptive algorithm's curve
//	wdcsim -list-scenarios            # show the scenario registry
//	wdcsim -scenario waxman-zipf-16   # run one registered scenario
//	wdcsim -scenario all -quick       # smoke every scenario, reduced scale
//
// Experiments: fig2, fig4a, fig4b, fig4c, fig6a, fig6b, fig6c, table1,
// table2, table3, rhostar, ratio, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/des"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	var (
		exp           = flag.String("exp", "all", "experiment id (fig2, fig4a-c, fig6a-c, table1-3, rhostar, ratio, all)")
		scenarioName  = flag.String("scenario", "", "run a registered scenario instead of -exp (or 'all')")
		listScenarios = flag.Bool("list-scenarios", false, "list the registered scenarios and exit")
		hosts         = flag.Int("hosts", 0, "override multi-group host count (default 665)")
		seed          = flag.Uint64("seed", 1, "random seed")
		quick         = flag.Bool("quick", false, "reduced-scale sweep (120 hosts, 5 loads)")
		adaptive      = flag.Bool("adaptive", false, "add the adaptive algorithm's curve to fig4 output")
		durSec        = flag.Float64("duration", 0, "override per-run simulated seconds")
		sequential    = flag.Bool("sequential", false, "run sweep points sequentially (debugging)")
		workers       = flag.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *listScenarios {
		printScenarios()
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wdcsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wdcsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wdcsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "wdcsim: %v\n", err)
			}
		}()
	}

	if *scenarioName != "" {
		// Scenario sweeps resolve their own grid/duration, so only pass
		// what the user explicitly overrode on the command line.
		opts := harness.Options{Seed: *seed, Sequential: *sequential, Workers: *workers,
			NumHosts: *hosts}
		if *durSec > 0 {
			opts.Duration = des.Seconds(*durSec)
			opts.SingleHopDuration = des.Seconds(*durSec)
		}
		names := []string{*scenarioName}
		if *scenarioName == "all" {
			names = scenario.Names()
		}
		for _, name := range names {
			sc, err := scenario.Lookup(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wdcsim: %v\n", err)
				os.Exit(2)
			}
			if *quick {
				sc = sc.Quick()
			}
			runScenario(sc, opts)
		}
		return
	}

	opts := harness.Options{Seed: *seed, Sequential: *sequential, Workers: *workers}
	if *quick {
		opts = harness.Quick(*seed)
		opts.Sequential = *sequential
		opts.Workers = *workers
	}
	if *hosts > 0 {
		opts.NumHosts = *hosts
	}
	if *durSec > 0 {
		opts.Duration = des.Seconds(*durSec)
		opts.SingleHopDuration = des.Seconds(*durSec)
	}
	opts.IncludeAdaptive = *adaptive

	runners := map[string]func(){
		"fig2":    func() { runFig2() },
		"fig4a":   func() { runFig4("Fig. 4(a) — three 64 kbps audio flows", traffic.MixAudio, opts) },
		"fig4b":   func() { runFig4("Fig. 4(b) — three 1.5 Mbps video flows", traffic.MixVideo, opts) },
		"fig4c":   func() { runFig4("Fig. 4(c) — one video + two audio flows", traffic.MixHetero, opts) },
		"fig6a":   func() { runFig6("Fig. 6(a) — three audio groups", traffic.MixAudio, opts) },
		"fig6b":   func() { runFig6("Fig. 6(b) — three video groups", traffic.MixVideo, opts) },
		"fig6c":   func() { runFig6("Fig. 6(c) — heterogeneous groups", traffic.MixHetero, opts) },
		"table1":  func() { runTable("Table I — layer counts, audio groups", traffic.MixAudio, opts) },
		"table2":  func() { runTable("Table II — layer counts, video groups", traffic.MixVideo, opts) },
		"table3":  func() { runTable("Table III — layer counts, heterogeneous groups", traffic.MixHetero, opts) },
		"rhostar": func() { runRhoStar() },
		"ratio":   func() { runRatio() },
	}
	order := []string{"fig2", "fig4a", "fig4b", "fig4c", "fig6a", "fig6b", "fig6c",
		"table1", "table2", "table3", "rhostar", "ratio"}

	if *exp == "all" {
		for _, id := range order {
			runners[id]()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "wdcsim: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	run()
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func printScenarios() {
	t := stats.NewTable("name", "kind", "topology", "hosts", "groups", "membership", "description")
	for _, sc := range scenario.All() {
		kind := string(sc.Kind)
		if kind == "" {
			kind = string(scenario.KindMultiGroup)
		}
		topoKind := sc.Topology.Kind
		if topoKind == "" {
			topoKind = "backbone19"
		}
		membership := sc.Membership.Kind
		if membership == "" {
			membership = "all"
		}
		hosts, groups := fmt.Sprintf("%d", sc.Hosts()), fmt.Sprintf("%d", sc.GroupCount())
		if sc.Kind == scenario.KindSingleHop {
			hosts, groups, topoKind, membership = "-", "-", "-", "-"
		}
		t.AddRow(sc.Name, kind, topoKind, hosts, groups, membership, sc.Description)
	}
	fmt.Print(t)
}

func runScenario(sc scenario.Scenario, opts harness.Options) {
	header(fmt.Sprintf("scenario %s — %s", sc.Name, sc.Description))
	r, err := harness.ScenarioSweep(sc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wdcsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(r.Table())
	fmt.Println(r.Summary())
}

func runFig2() {
	header("Fig. 2 — (σ, ρ, λ) regulator operation (σ=10kb, ρ=250kbps, C=1Mbps)")
	pts := harness.Fig2Trace(10_000, 250_000, 1_000_000, des.Seconds(0.5), 26)
	fmt.Print(harness.Fig2Table(pts))
}

func runFig4(title string, mix traffic.Mix, opts harness.Options) {
	header(title)
	r := harness.Fig4(mix, opts)
	fmt.Print(r.Table())
	fmt.Println(r.Summary())
}

func runFig6(title string, mix traffic.Mix, opts harness.Options) {
	header(title)
	r := harness.Fig6(mix, opts)
	fmt.Print(r.Table())
	fmt.Println(r.Summary())
	fmt.Println("\nLayer counts (feeds Tables I–III):")
	fmt.Print(r.LayerTable())
}

func runTable(title string, mix traffic.Mix, opts harness.Options) {
	header(title)
	fmt.Print(harness.LayerSweep(mix, opts).Table())
}

func runRhoStar() {
	header("Theorems 3/4 — rate threshold ρ* (paper: 0.73C homog, 0.79C hetero)")
	fmt.Print(harness.RhoStarTable(10))
}

func runRatio() {
	header("Theorems 5/6 — guaranteed Dg/D̂g improvement bounds (K=3)")
	fmt.Print(harness.ImprovementTable(3, nil))
}
