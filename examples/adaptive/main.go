// Adaptive: watch the paper's Adaptive Control Algorithm switch regulator
// models as the measured input rate crosses the Theorem 3/4 threshold.
// We run the single-hop engine at a grid of loads under the adaptive
// scheme and show which model it settles on, alongside both fixed schemes
// — the adaptive curve hugs the lower envelope.
package main

import (
	"fmt"

	wdc "repro"
	"repro/internal/des"
)

func main() {
	var th wdc.Theory
	threshold := 3 * th.RhoStarHomog(3)
	fmt.Printf("Adaptive control, K=3 homogeneous audio flows; switch at ρ̄·K = %.3f\n\n", threshold)
	fmt.Printf("%-6s  %-12s  %-12s  %-12s  %-8s\n", "load", "(σ,ρ)", "(σ,ρ,λ)", "adaptive", "switches")

	var specs []wdc.FlowSpec
	for _, load := range []float64{0.40, 0.55, 0.70, 0.85, 0.95} {
		run := func(s wdc.Scheme) wdc.SingleHopResult {
			return wdc.RunSingleHop(wdc.SingleHopConfig{
				Mix: wdc.MixAudio, Load: load, Scheme: s,
				Duration: 25 * des.Second, Seed: 1, Specs: specs,
			})
		}
		sr := run(wdc.SchemeSigmaRho)
		specs = sr.Specs
		srl := run(wdc.SchemeSRL)
		ad := run(wdc.SchemeAdaptive)
		mode := "(σ,ρ)"
		if load >= threshold {
			mode = "(σ,ρ,λ)"
		}
		fmt.Printf("%-6.2f  %-12.4f  %-12.4f  %-12.4f  %-8d  -> settles on %s\n",
			load, sr.WDB, srl.WDB, ad.WDB, ad.ModeSwitches, mode)
	}
	fmt.Println("\nBelow the threshold the controller stays on the (σ,ρ) model; above it")
	fmt.Println("it engages the staggered (σ,ρ,λ) duty cycles (Section III's algorithm).")
}
