// Treebuild: compare the overlay architectures the paper evaluates —
// DSCT's location-aware hierarchy, NICE's location-blind clustering, and
// the capacity-aware degree-bounded tree of Fig. 1 — on the same 665-host
// population, and check the measured DSCT height against Lemma 2's bound.
package main

import (
	"fmt"

	wdc "repro"
	"repro/internal/overlay"
	"repro/internal/topo"
)

func main() {
	const hosts = 665
	net := topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: hosts, Seed: 1})
	members := make([]int, hosts)
	for i := range members {
		members[i] = i
	}

	var th wdc.Theory
	bound := th.DSCTHeightBound(hosts, 3)
	fmt.Printf("Population: %d hosts on the Fig. 5 backbone; Lemma 2 bound: %d layers\n\n", hosts, bound)
	fmt.Printf("%-24s %-7s %-7s %-11s %-8s %-10s\n",
		"tree", "layers", "height", "max fanout", "stretch", "max stress")

	show := func(name string, tr *overlay.Tree, err error) {
		if err != nil {
			panic(err)
		}
		if err := tr.Validate(); err != nil {
			panic(err)
		}
		maxStress, _ := tr.LinkStress(net)
		fmt.Printf("%-24s %-7d %-7d %-11d %-8.2f %-10d\n",
			name, tr.Layers(), tr.Height(), tr.MaxFanout(), tr.Stretch(net), maxStress)
	}

	dsct, err := overlay.BuildDSCT(net, members, 0, overlay.Config{Seed: 1})
	show("DSCT (k=3)", dsct, err)
	nice, err := overlay.BuildNICE(net, members, 0, overlay.Config{Seed: 1})
	show("NICE (k=3)", nice, err)
	// Fig. 1's capacity-aware trees at a light and a heavy load.
	for _, load := range []float64{0.35, 0.95} {
		fanout := overlay.FanoutBound(load, 2.0)
		flat, err := overlay.BuildFlat(net, members, 0, fanout)
		show(fmt.Sprintf("capacity-aware @%.2f (d=%d)", load, fanout), flat, err)
	}

	fmt.Println("\nDSCT trades slightly deeper trees for domain-local hops (lower stretch);")
	fmt.Println("the capacity-aware tree's depth grows as the load shrinks its fanout —")
	fmt.Println("exactly the effect the (σ,ρ,λ) regulator exists to avoid.")
}
