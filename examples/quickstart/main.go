// Quickstart: one regulated end host (the paper's Simulation I) in a few
// lines of the public API. Three real-time video flows share one general
// multiplexer; we compare the worst-case delay of the classical (σ, ρ)
// regulator against the paper's (σ, ρ, λ) regulator at a low and a high
// load, and check the observed winner against the Theorem 4 threshold.
package main

import (
	"fmt"

	wdc "repro"
)

func main() {
	var th wdc.Theory
	fmt.Printf("Theorem 4 threshold for K=3 homogeneous flows: ρ*·K = %.3f\n\n",
		3*th.RhoStarHomog(3))

	for _, load := range []float64{0.50, 0.90} {
		sr := wdc.RunSingleHop(wdc.SingleHopConfig{
			Mix: wdc.MixVideo, Load: load, Scheme: wdc.SchemeSigmaRho, Seed: 1,
		})
		srl := wdc.RunSingleHop(wdc.SingleHopConfig{
			Mix: wdc.MixVideo, Load: load, Scheme: wdc.SchemeSRL, Seed: 1,
		})
		winner := "(σ,ρ)"
		if srl.WDB < sr.WDB {
			winner = "(σ,ρ,λ)"
		}
		fmt.Printf("load %.2f: WDB (σ,ρ) = %.3fs, WDB (σ,ρ,λ) = %.3fs -> %s wins\n",
			load, sr.WDB, srl.WDB, winner)
	}
	fmt.Println("\nBelow the threshold the plain regulator wins; above it the")
	fmt.Println("duty-cycle regulator wins — the paper's central claim.")
}
