// Multigroup: the paper's Simulation II scenario at reduced scale — a
// multi-group overlay network on the 19-router backbone where every host
// joins all three groups — followed by the scenario layer's
// partial-membership scale benchmark (waxman-zipf-16: 2000 hosts on a
// Waxman underlay, 16 overlapping Zipf-skewed groups), also reduced.
//
// Part 1 compares all six scheme/tree combinations of Fig. 6 at one heavy
// load and prints the worst-case multicast delays and the tree layer
// counts (the Tables I–III metric).
//
// Part 3 selects overlay strategies by name (wdc.Config.Strategy) to
// compare the paper's DSCT against the delay-weighted shortest-path and
// capacity-aware greedy trees, then runs a session with the online
// re-optimization plane rewiring the tree from measured delays mid-run.
//
// Part 4 injects correlated failures: the outage-waxman-16 scenario at
// reduced scale takes a whole router domain down mid-run (restored 1 s
// later) and bipartitions the backbone (healed), then prints each fault
// event's recovery metrics — hosts hit, orphan subtrees re-grafted,
// packets lost, and the measured time until every affected member was
// receiving again.
//
// Run with the full 665-host population via cmd/wdcsim -exp fig6a, the
// full 2000-host scenario via cmd/wdcsim -scenario waxman-zipf-16, the
// strategy comparison via cmd/wdcsim -scenario spt-waxman-16 (or any
// scenario with -strategy <name>), and the full-scale failure scenarios
// via cmd/wdcsim -scenario outage-waxman-16 / epoch-churn-waxman-16.
package main

import (
	"fmt"

	wdc "repro"
	"repro/internal/des"
)

func main() {
	const (
		hosts = 150
		load  = 0.9
	)
	fmt.Printf("Multi-group EMcast: %d hosts x 3 groups, aggregate load %.2f\n\n", hosts, load)

	type combo struct {
		scheme wdc.Scheme
		tree   wdc.TreeKind
	}
	combos := []combo{
		{wdc.SchemeCapacityAware, wdc.TreeDSCT},
		{wdc.SchemeSigmaRho, wdc.TreeDSCT},
		{wdc.SchemeSRL, wdc.TreeDSCT},
		{wdc.SchemeCapacityAware, wdc.TreeNICE},
		{wdc.SchemeSigmaRho, wdc.TreeNICE},
		{wdc.SchemeSRL, wdc.TreeNICE},
	}
	var specs []wdc.FlowSpec
	bestWDB, bestName := 0.0, ""
	for _, c := range combos {
		res := wdc.Run(wdc.Config{
			NumHosts: hosts,
			Mix:      wdc.MixAudio,
			Load:     load,
			Scheme:   c.scheme,
			Tree:     c.tree,
			Duration: 15 * des.Second,
			Seed:     1,
			Specs:    specs,
		})
		specs = res.Specs
		name := fmt.Sprintf("%v %v", c.scheme, c.tree)
		fmt.Printf("%-28s WDB %.3fs  mean %.4fs  layers %d  deliveries %d\n",
			name, res.WDB, res.MeanDelay, res.Layers, res.Delivered)
		if bestName == "" || res.WDB < bestWDB {
			bestWDB, bestName = res.WDB, name
		}
	}
	fmt.Printf("\nBest at load %.2f: %s (the paper: DSCT with the (σ,ρ,λ) regulator\n", load, bestName)
	fmt.Println("achieves the best delay performance once the load exceeds ~0.7).")

	// Part 2: the scenario layer's partial-membership scale benchmark at
	// example scale. Membership is Zipf-skewed — a few hot groups and a
	// long tail — so hosts carry only the groups they joined and the
	// per-host utilisation sits far below the all-groups worst case.
	sc := wdc.MustScenario("waxman-zipf-16").Quick()
	fmt.Printf("\nScenario %s (reduced: %d hosts x %d groups on a Waxman underlay):\n\n",
		sc.Name, sc.NumHosts, sc.GroupCount())
	groups := sc.Groups(1)
	small, large := len(groups[0].Members), len(groups[0].Members)
	for _, g := range groups {
		if len(g.Members) < small {
			small = len(g.Members)
		}
		if len(g.Members) > large {
			large = len(g.Members)
		}
	}
	fmt.Printf("Zipf membership: group sizes %d..%d of %d hosts\n\n", small, large, sc.NumHosts)
	res, err := wdc.ScenarioSweep(sc, wdc.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Table())
	fmt.Println(res.Summary())

	// Part 3a: pluggable overlay strategies. The same session compiled
	// through each registered tree-construction strategy — DSCT's
	// proximity clusters against the delay-weighted shortest-path tree
	// and the capacity-scaled greedy fanout tree.
	fmt.Printf("\nOverlay strategies (%d hosts x 3 groups, load %.2f, (σ,ρ,λ)):\n\n", hosts, load)
	for _, strat := range wdc.Strategies() {
		r := wdc.Run(wdc.Config{
			NumHosts: hosts,
			Mix:      wdc.MixAudio,
			Load:     load,
			Scheme:   wdc.SchemeSRL,
			Strategy: strat,
			Duration: 10 * des.Second,
			Seed:     1,
		})
		fmt.Printf("%-8s WDB %.3fs  mean %.4fs  layers %d\n", strat, r.WDB, r.MeanDelay, r.Layers)
	}

	// Part 3b: online re-optimization. Start from the location-blind NICE
	// tree (plenty to improve) and let periodic measurement-driven passes
	// rewire the worst members under hysteresis.
	static := wdc.Config{
		NumHosts: hosts,
		Mix:      wdc.MixAudio,
		Load:     load,
		Scheme:   wdc.SchemeSRL,
		Strategy: "nice",
		Duration: 10 * des.Second,
		Seed:     1,
	}
	reopt := static
	reopt.Reopt = wdc.ReoptConfig{Every: des.Second, MinImprove: 0.05, MaxMoves: 3}
	a, b := wdc.Run(static), wdc.Run(reopt)
	fmt.Printf("\nOnline re-optimization on the nice tree:\n")
	fmt.Printf("static  WDB %.3fs  mean %.4fs\n", a.WDB, a.MeanDelay)
	fmt.Printf("reopt   WDB %.3fs  mean %.4fs  (%d passes accepted, %d members moved, %d lost)\n",
		b.WDB, b.MeanDelay, b.Reopts, b.ReoptMoves, b.Lost)

	// Part 4: correlated failure injection. The outage scenario at reduced
	// scale: a seeded router domain goes dark mid-run taking every attached
	// host's memberships down at once, comes back 1 s later, and a backbone
	// bipartition severs and then heals the overlay trees. Every event
	// reports its blast radius and how long recovery took.
	fsc := wdc.MustScenario("outage-waxman-16").Quick()
	fmt.Printf("\nCorrelated failures — scenario %s (reduced: %d hosts x %d groups):\n\n",
		fsc.Name, fsc.NumHosts, fsc.GroupCount())
	fres, err := wdc.ScenarioSweep(fsc, wdc.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	load2 := fres.Loads[len(fres.Loads)-1]
	for _, curve := range fres.Curves {
		outcomes := curve.Faults[len(fres.Loads)-1]
		fmt.Printf("%s at load %.2f:\n", curve.Combo, load2)
		for _, oc := range outcomes {
			fmt.Printf("  %-9s @%.1fs  hosts %-3d  regrafts %-3d  lost %-3d",
				oc.Kind, oc.AtSec, oc.Hosts, oc.Regrafts, oc.Lost)
			if oc.RecoverySec > 0 {
				fmt.Printf("  recovered in %.3fs", oc.RecoverySec)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n%d packets lost to fault events (%d at the partition cut) out of %d deliveries;\n",
		fres.FaultLost, fres.CutLost, fres.Delivered)
	fmt.Println("the paper's domain-clustered DSCT trees cross the backbone least, so they")
	fmt.Println("park the fewest subtrees when it partitions — locality is failure tolerance.")
}
