// Multigroup: the paper's Simulation II scenario at reduced scale — a
// multi-group overlay network on the 19-router backbone where every host
// joins all three groups. We compare all six scheme/tree combinations of
// Fig. 6 at one heavy load and print the worst-case multicast delays and
// the tree layer counts (the Tables I–III metric).
//
// Run with the full 665-host population via cmd/wdcsim -exp fig6a.
package main

import (
	"fmt"

	wdc "repro"
	"repro/internal/des"
)

func main() {
	const (
		hosts = 150
		load  = 0.9
	)
	fmt.Printf("Multi-group EMcast: %d hosts x 3 groups, aggregate load %.2f\n\n", hosts, load)

	type combo struct {
		scheme wdc.Scheme
		tree   wdc.TreeKind
	}
	combos := []combo{
		{wdc.SchemeCapacityAware, wdc.TreeDSCT},
		{wdc.SchemeSigmaRho, wdc.TreeDSCT},
		{wdc.SchemeSRL, wdc.TreeDSCT},
		{wdc.SchemeCapacityAware, wdc.TreeNICE},
		{wdc.SchemeSigmaRho, wdc.TreeNICE},
		{wdc.SchemeSRL, wdc.TreeNICE},
	}
	var specs []wdc.FlowSpec
	bestWDB, bestName := 0.0, ""
	for _, c := range combos {
		res := wdc.Run(wdc.Config{
			NumHosts: hosts,
			Mix:      wdc.MixAudio,
			Load:     load,
			Scheme:   c.scheme,
			Tree:     c.tree,
			Duration: 15 * des.Second,
			Seed:     1,
			Specs:    specs,
		})
		specs = res.Specs
		name := fmt.Sprintf("%v %v", c.scheme, c.tree)
		fmt.Printf("%-28s WDB %.3fs  mean %.4fs  layers %d  deliveries %d\n",
			name, res.WDB, res.MeanDelay, res.Layers, res.Delivered)
		if bestName == "" || res.WDB < bestWDB {
			bestWDB, bestName = res.WDB, name
		}
	}
	fmt.Printf("\nBest at load %.2f: %s (the paper: DSCT with the (σ,ρ,λ) regulator\n", load, bestName)
	fmt.Println("achieves the best delay performance once the load exceeds ~0.7).")
}
