package mux

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/traffic"
)

func TestMuxServesAtCapacity(t *testing.T) {
	eng := des.New()
	var emissions []des.Time
	m := New(eng, 1, 1_000_000, FIFO, func(p traffic.Packet) {
		emissions = append(emissions, eng.Now())
	})
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: 0, Size: 1000})
		}
	})
	eng.Run()
	gap := des.Seconds(1000 / 1_000_000.0)
	for i := 1; i < len(emissions); i++ {
		if d := emissions[i] - emissions[i-1]; d != gap {
			t.Fatalf("service gap %v, want %v", d, gap)
		}
	}
}

func TestMuxWorkConserving(t *testing.T) {
	// Server never idles while backlog exists: total service time for n
	// packets equals n * size/C from first arrival.
	eng := des.New()
	var last des.Time
	m := New(eng, 2, 500_000, FIFO, func(p traffic.Packet) { last = eng.Now() })
	eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: i % 2, Size: 1000})
		}
	})
	eng.Run()
	want := des.Seconds(20 * 1000 / 500_000.0)
	if last != want {
		t.Fatalf("drain finished at %v, want %v", last, want)
	}
}

func TestMuxFIFOOrderAcrossFlows(t *testing.T) {
	eng := des.New()
	var ids []uint64
	m := New(eng, 3, 1e6, FIFO, func(p traffic.Packet) { ids = append(ids, p.ID) })
	eng.Schedule(0, func() {
		// Interleave flows; IDs encode global arrival order.
		for i := 0; i < 9; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: i % 3, Size: 1000})
		}
	})
	eng.Run()
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("FIFO violated: served %v", ids)
		}
	}
}

func TestMuxPriorityFavoursLowFlows(t *testing.T) {
	eng := des.New()
	var order []int
	m := New(eng, 2, 1e6, Priority, func(p traffic.Packet) { order = append(order, p.Flow) })
	eng.Schedule(0, func() {
		// Flow 1 arrives first, then flow 0 — priority must reorder
		// everything after the in-service packet.
		for i := 0; i < 5; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: 1, Size: 1000})
		}
		for i := 5; i < 10; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: 0, Size: 1000})
		}
	})
	eng.Run()
	// First served is flow 1 (was alone when service started); the
	// remaining flow-0 packets must all precede remaining flow-1 packets.
	if order[0] != 1 {
		t.Fatalf("first served flow = %d", order[0])
	}
	seenFlow1Again := false
	for _, f := range order[1:] {
		if f == 1 {
			seenFlow1Again = true
		} else if seenFlow1Again {
			t.Fatalf("priority violated: %v", order)
		}
	}
}

func TestMuxRoundRobinAlternates(t *testing.T) {
	eng := des.New()
	var order []int
	m := New(eng, 2, 1e6, RoundRobin, func(p traffic.Packet) { order = append(order, p.Flow) })
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: 0, Size: 1000})
		}
		for i := 4; i < 8; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: 1, Size: 1000})
		}
	})
	eng.Run()
	// After the first served packet the discipline alternates 0,1,0,1...
	for i := 2; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("round robin did not alternate: %v", order)
		}
	}
}

func TestMuxBacklogAccounting(t *testing.T) {
	eng := des.New()
	m := New(eng, 1, 1000, FIFO, func(traffic.Packet) {})
	eng.Schedule(0, func() {
		m.Enqueue(traffic.Packet{ID: 1, Flow: 0, Size: 1000})
		m.Enqueue(traffic.Packet{ID: 2, Flow: 0, Size: 500})
		// First packet entered service immediately: backlog is 500.
		if m.Backlog() != 500 {
			t.Fatalf("backlog = %v", m.Backlog())
		}
		if m.QueueLen(0) != 1 {
			t.Fatalf("queue len = %d", m.QueueLen(0))
		}
	})
	eng.Run()
	if m.Backlog() != 0 {
		t.Fatalf("final backlog = %v", m.Backlog())
	}
}

func TestMuxDelayStats(t *testing.T) {
	eng := des.New()
	m := New(eng, 1, 1000, FIFO, func(traffic.Packet) {})
	eng.Schedule(0, func() {
		m.Enqueue(traffic.Packet{ID: 1, Flow: 0, Size: 1000}) // 1s service
		m.Enqueue(traffic.Packet{ID: 2, Flow: 0, Size: 1000}) // waits 1s + 1s service
	})
	eng.Run()
	if m.Delay.Count() != 2 {
		t.Fatalf("delay samples = %d", m.Delay.Count())
	}
	if math.Abs(m.Delay.Max()-2.0) > 1e-9 {
		t.Fatalf("max delay = %v", m.Delay.Max())
	}
	if m.MaxWait.Max() != m.Delay.Max() {
		t.Fatal("MaxTracker disagrees with Welford max")
	}
	if got := m.MaxWait.Tag(); got != 2 {
		t.Fatalf("worst packet ID = %d", got)
	}
	if m.Served.N != 2 || m.Served.Total != 2000 {
		t.Fatalf("served = %d/%v", m.Served.N, m.Served.Total)
	}
}

func TestMuxCruzBoundHolds(t *testing.T) {
	// K (σ,ρ)-greedy flows through the MUX: per-packet MUX delay must stay
	// below Σσᵢ/(C−Σρᵢ) + one transmission time (Remark 1 / Cruz).
	eng := des.New()
	c := 1_000_000.0
	k := 3
	sigma, rho := 20_000.0, 250_000.0 // Σρ = 0.75C
	m := New(eng, k, c, FIFO, func(traffic.Packet) {})
	until := des.Seconds(20)
	for i := 0; i < k; i++ {
		src := traffic.NewGreedy(i, sigma, rho, 1000)
		src.Start(eng, until, m.Enqueue)
	}
	eng.RunUntil(until + des.Seconds(5))
	bound := (3*sigma)/(c-3*rho) + 1000/c
	if got := m.Delay.Max(); got > bound {
		t.Fatalf("MUX delay %v exceeds Cruz bound %v", got, bound)
	}
	if m.Delay.Count() == 0 {
		t.Fatal("no packets served")
	}
}

func TestMuxLIFOServesNewestFirst(t *testing.T) {
	eng := des.New()
	var ids []uint64
	m := New(eng, 2, 1e6, LIFO, func(p traffic.Packet) { ids = append(ids, p.ID) })
	eng.Schedule(0, func() {
		for i := 0; i < 6; i++ {
			m.Enqueue(traffic.Packet{ID: uint64(i), Flow: i % 2, Size: 1000})
		}
	})
	eng.Run()
	// Packet 0 enters service immediately; the rest leave newest-first.
	want := []uint64{0, 5, 4, 3, 2, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("LIFO order = %v, want %v", ids, want)
		}
	}
}

func TestMuxLIFORealisesBusyPeriodDelay(t *testing.T) {
	// Under LIFO the first packet of a sustained busy period waits almost
	// the entire busy period — far beyond FIFO's Σσ/C — approaching the
	// general-MUX bound Σσ/(C−Σρ).
	runOnce := func(d Discipline) float64 {
		eng := des.New()
		c := 1_000_000.0
		sigma, rho := 30_000.0, 300_000.0 // Σρ = 0.9C
		m := New(eng, 3, c, d, func(traffic.Packet) {})
		until := des.Seconds(10)
		for i := 0; i < 3; i++ {
			src := traffic.NewGreedy(i, sigma, rho, 1000)
			src.Start(eng, until, m.Enqueue)
		}
		eng.RunUntil(until + des.Seconds(5))
		return m.Delay.Max()
	}
	fifo := runOnce(FIFO)
	lifo := runOnce(LIFO)
	if lifo < 3*fifo {
		t.Fatalf("LIFO worst delay %v not far above FIFO %v", lifo, fifo)
	}
	bound := (3 * 30_000.0) / (1_000_000 - 3*300_000.0)
	if lifo > bound+0.01 {
		t.Fatalf("LIFO delay %v exceeds the general-MUX bound %v", lifo, bound)
	}
	// And it should realise a large fraction of that bound.
	if lifo < 0.5*bound {
		t.Fatalf("LIFO delay %v realises under half the bound %v", lifo, bound)
	}
}

func TestMuxBoundDisciplineIndependent(t *testing.T) {
	// The same Cruz bound must hold under all disciplines ("general
	// MUX" = bound is service-order independent).
	for _, d := range []Discipline{LIFO, FIFO, Priority, RoundRobin} {
		eng := des.New()
		c := 1_000_000.0
		sigma, rho := 15_000.0, 200_000.0
		m := New(eng, 3, c, d, func(traffic.Packet) {})
		until := des.Seconds(10)
		for i := 0; i < 3; i++ {
			src := traffic.NewGreedy(i, sigma, rho, 1000)
			src.Start(eng, until, m.Enqueue)
		}
		eng.RunUntil(until + des.Seconds(5))
		bound := (3*sigma)/(c-3*rho) + 1000/c
		if got := m.Delay.Max(); got > bound {
			t.Fatalf("%v: delay %v exceeds bound %v", d, got, bound)
		}
	}
}

func TestMuxValidation(t *testing.T) {
	eng := des.New()
	out := func(traffic.Packet) {}
	for i, fn := range []func(){
		func() { New(eng, 0, 1, FIFO, out) },
		func() { New(eng, 1, 0, FIFO, out) },
		func() { New(eng, 1, 1, FIFO, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMuxRejectsForeignFlow(t *testing.T) {
	eng := des.New()
	m := New(eng, 2, 1000, FIFO, func(traffic.Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range flow accepted")
		}
	}()
	eng.Schedule(0, func() { m.Enqueue(traffic.Packet{Flow: 5, Size: 1}) })
	eng.Run()
}

func TestDisciplineString(t *testing.T) {
	for _, d := range []Discipline{FIFO, Priority, RoundRobin, Discipline(99)} {
		if d.String() == "" {
			t.Fatal("empty discipline name")
		}
	}
}

func TestMuxAccessors(t *testing.T) {
	eng := des.New()
	m := New(eng, 4, 123456, FIFO, func(traffic.Packet) {})
	if m.Capacity() != 123456 || m.NumFlows() != 4 {
		t.Fatal("accessor mismatch")
	}
}

func BenchmarkMuxFIFO(b *testing.B) {
	benchMux(b, FIFO)
}

func BenchmarkMuxRoundRobin(b *testing.B) {
	benchMux(b, RoundRobin)
}

func benchMux(b *testing.B, d Discipline) {
	for i := 0; i < b.N; i++ {
		eng := des.New()
		m := New(eng, 3, 10e6, d, func(traffic.Packet) {})
		until := des.Seconds(1)
		for f := 0; f < 3; f++ {
			src := traffic.NewCBR(f, 2e6, 10_000)
			src.Start(eng, until, m.Enqueue)
		}
		eng.RunUntil(until + des.Seconds(1))
	}
}
