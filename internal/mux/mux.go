// Package mux implements the paper's general multiplexer (MUX): the
// work-conserving server at each end host that merges the K regulated
// input flows onto one output link of capacity C.
//
// "General" means the delay bounds of the paper hold for *any* service
// order, so the package offers three concrete disciplines — FIFO, static
// priority, and per-flow round-robin — all non-preemptive and
// work-conserving. The experiments use FIFO; the others exist to
// demonstrate (and test) that the worst-case bounds are discipline-
// independent.
package mux

import (
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Discipline selects the service order of a general MUX.
type Discipline int

// Available service disciplines. LIFO is the zero value: the paper's
// "general MUX" explicitly allows a packet of one flow to have priority
// over a packet of another, and its worst-case delay — a packet waiting
// out an entire busy period, Σσᵢ/(C−Σρᵢ) — is realised by last-come-
// first-served order (the earliest packet of a busy period leaves last).
// FIFO's worst case is only Σσᵢ/C and static priority's is
// Σσᵢ/(C−Σ_{j≠i}ρⱼ); they and round-robin are offered for the
// discipline-independence tests and ablations.
const (
	LIFO       Discipline = iota // newest arrival first (busy-period adversary)
	Priority                     // lower flow index = higher priority
	FIFO                         // global arrival order
	RoundRobin                   // cycle across backlogged flows
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case LIFO:
		return "lifo"
	case FIFO:
		return "fifo"
	case Priority:
		return "priority"
	case RoundRobin:
		return "round-robin"
	default:
		return "unknown"
	}
}

type entry struct {
	p       traffic.Packet
	arrived des.Time
	seq     uint64
}

// Mux is a work-conserving server at rate C over K per-flow queues.
type Mux struct {
	eng        *des.Engine
	c          float64 // bits/second
	discipline Discipline
	out        func(traffic.Packet)

	queues  [][]entry // per-flow FIFO queues
	heads   []int
	bits    float64
	busy    bool
	seq     uint64
	rrNext  int
	cur     entry            // entry in transmission (valid while busy)
	done    func()           // stored transmit-completion callback
	Delay   stats.Welford    // queueing+transmission delay per packet
	MaxWait stats.MaxTracker // worst per-packet delay, tagged by packet ID
	Served  stats.Counter    // served packets/bits
}

// New returns a MUX with k input flows at capacity c bits/second.
func New(eng *des.Engine, k int, c float64, d Discipline, out func(traffic.Packet)) *Mux {
	if k <= 0 {
		panic("mux: need at least one input flow")
	}
	if c <= 0 {
		panic("mux: capacity must be positive")
	}
	if out == nil {
		panic("mux: nil output")
	}
	m := &Mux{
		eng:        eng,
		c:          c,
		discipline: d,
		out:        out,
		queues:     make([][]entry, k),
		heads:      make([]int, k),
	}
	m.done = func() {
		e := m.cur
		now := m.eng.Now()
		d := (now - e.arrived).Seconds()
		m.Delay.Add(d)
		m.MaxWait.Observe(d, e.p.ID)
		m.Served.Add(now, e.p.Size)
		m.out(e.p)
		m.serve()
	}
	return m
}

// Capacity returns the service rate in bits/second.
func (m *Mux) Capacity() float64 { return m.c }

// NumFlows returns the number of input queues.
func (m *Mux) NumFlows() int { return len(m.queues) }

// Backlog returns the bits queued across all flows (excluding the packet
// in transmission).
func (m *Mux) Backlog() float64 { return m.bits }

// QueueLen returns the packets queued for flow i.
func (m *Mux) QueueLen(i int) int { return len(m.queues[i]) - m.heads[i] }

// Enqueue implements the input side: the packet joins its flow's queue
// (p.Flow indexes the queue) and service starts if the server is idle.
// It panics on an out-of-range flow index, which always indicates a
// wiring bug in the host model.
func (m *Mux) Enqueue(p traffic.Packet) {
	if p.Flow < 0 || p.Flow >= len(m.queues) {
		panic("mux: packet flow index out of range")
	}
	m.queues[p.Flow] = append(m.queues[p.Flow], entry{p: p, arrived: m.eng.Now(), seq: m.seq})
	m.seq++
	m.bits += p.Size
	if !m.busy {
		m.serve()
	}
}

// pick selects the next flow to serve per the discipline, or -1 when idle.
// For LIFO it returns the flow whose most recent arrival is newest; serve
// pops that flow's tail instead of its head.
func (m *Mux) pick() int {
	switch m.discipline {
	case LIFO:
		best, bestSeq := -1, uint64(0)
		for i := range m.queues {
			if m.QueueLen(i) == 0 {
				continue
			}
			e := m.queues[i][len(m.queues[i])-1]
			if best < 0 || e.seq > bestSeq {
				best, bestSeq = i, e.seq
			}
		}
		return best
	case Priority:
		for i := range m.queues {
			if m.QueueLen(i) > 0 {
				return i
			}
		}
	case RoundRobin:
		k := len(m.queues)
		for off := 0; off < k; off++ {
			i := (m.rrNext + off) % k
			if m.QueueLen(i) > 0 {
				m.rrNext = (i + 1) % k
				return i
			}
		}
	default: // FIFO: globally earliest arrival (seq breaks ties)
		best, bestSeq := -1, uint64(0)
		for i := range m.queues {
			if m.QueueLen(i) == 0 {
				continue
			}
			e := m.queues[i][m.heads[i]]
			if best < 0 || e.seq < bestSeq {
				best, bestSeq = i, e.seq
			}
		}
		return best
	}
	return -1
}

func (m *Mux) serve() {
	i := m.pick()
	if i < 0 {
		m.busy = false
		return
	}
	m.busy = true
	var e entry
	if m.discipline == LIFO {
		last := len(m.queues[i]) - 1
		e = m.queues[i][last]
		m.queues[i] = m.queues[i][:last]
	} else {
		e = m.queues[i][m.heads[i]]
		m.heads[i]++
		m.compact(i)
	}
	m.bits -= e.p.Size
	m.cur = e
	m.eng.ScheduleIn(des.Seconds(e.p.Size/m.c), m.done)
}

func (m *Mux) compact(i int) {
	if m.heads[i] > 64 && m.heads[i]*2 >= len(m.queues[i]) {
		n := copy(m.queues[i], m.queues[i][m.heads[i]:])
		m.queues[i] = m.queues[i][:n]
		m.heads[i] = 0
	}
}
