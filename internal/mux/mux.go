// Package mux implements the paper's general multiplexer (MUX): the
// work-conserving server at each end host that merges the K regulated
// input flows onto one output link of capacity C.
//
// "General" means the delay bounds of the paper hold for *any* service
// order, so the package offers three concrete disciplines — FIFO, static
// priority, and per-flow round-robin — all non-preemptive and
// work-conserving. The experiments use FIFO; the others exist to
// demonstrate (and test) that the worst-case bounds are discipline-
// independent.
package mux

import (
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Discipline selects the service order of a general MUX.
type Discipline int

// Available service disciplines. LIFO is the zero value: the paper's
// "general MUX" explicitly allows a packet of one flow to have priority
// over a packet of another, and its worst-case delay — a packet waiting
// out an entire busy period, Σσᵢ/(C−Σρᵢ) — is realised by last-come-
// first-served order (the earliest packet of a busy period leaves last).
// FIFO's worst case is only Σσᵢ/C and static priority's is
// Σσᵢ/(C−Σ_{j≠i}ρⱼ); they and round-robin are offered for the
// discipline-independence tests and ablations.
const (
	LIFO       Discipline = iota // newest arrival first (busy-period adversary)
	Priority                     // lower flow index = higher priority
	FIFO                         // global arrival order
	RoundRobin                   // cycle across backlogged flows
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case LIFO:
		return "lifo"
	case FIFO:
		return "fifo"
	case Priority:
		return "priority"
	case RoundRobin:
		return "round-robin"
	default:
		return "unknown"
	}
}

type entry struct {
	p       traffic.Packet
	arrived des.Time
	seq     uint64
}

// Mux is a work-conserving server at rate C over K per-flow queues.
//
// Queues materialise lazily, per flow that actually arrives: slotFlow
// holds the (ascending) flow ids with live queues, queues/heads the
// matching per-flow FIFOs. A host's MUX sees traffic from the few groups
// routed through its connection, not all K, and a 100k-host session
// builds ~100k MUXes — K-wide dense arrays per MUX (the old layout) cost
// ~16 KB each at K=512, a 1.6 GB wall before the first packet moves.
// Every discipline scans the slots in flow order, which is exactly the
// dense iteration with the empty flows skipped, so service order is
// unchanged.
type Mux struct {
	eng        *des.Engine
	c          float64 // bits/second
	discipline Discipline
	out        func(traffic.Packet)

	k        int       // declared input flow count (validation only)
	slotFlow []int32   // ascending flow ids with materialised queues
	queues   [][]entry // per-slot FIFO queues, parallel to slotFlow
	heads    []int
	bits     float64
	busy     bool
	seq      uint64
	rrNext   int              // next FLOW id (not slot) in round-robin order
	cur      entry            // entry in transmission (valid while busy)
	snapArg  uint32           // component slot for snapshot event tags
	done     func()           // stored transmit-completion callback
	Delay    stats.Welford    // queueing+transmission delay per packet
	MaxWait  stats.MaxTracker // worst per-packet delay, tagged by packet ID
	Served   stats.Counter    // served packets/bits
}

// New returns a MUX with k input flows at capacity c bits/second.
func New(eng *des.Engine, k int, c float64, d Discipline, out func(traffic.Packet)) *Mux {
	if k <= 0 {
		panic("mux: need at least one input flow")
	}
	if c <= 0 {
		panic("mux: capacity must be positive")
	}
	if out == nil {
		panic("mux: nil output")
	}
	m := &Mux{
		eng:        eng,
		c:          c,
		discipline: d,
		out:        out,
		k:          k,
	}
	m.done = func() {
		e := m.cur
		now := m.eng.Now()
		d := (now - e.arrived).Seconds()
		m.Delay.Add(d)
		m.MaxWait.Observe(d, e.p.ID)
		m.Served.Add(now, e.p.Size)
		m.out(e.p)
		m.serve()
	}
	return m
}

// Capacity returns the service rate in bits/second.
func (m *Mux) Capacity() float64 { return m.c }

// NumFlows returns the declared number of input flows.
func (m *Mux) NumFlows() int { return m.k }

// Backlog returns the bits queued across all flows (excluding the packet
// in transmission).
func (m *Mux) Backlog() float64 { return m.bits }

// QueueLen returns the packets queued for flow i.
func (m *Mux) QueueLen(i int) int {
	if s := m.findSlot(i); s >= 0 {
		return m.qlen(s)
	}
	return 0
}

// qlen returns the packets queued in slot s.
func (m *Mux) qlen(s int) int { return len(m.queues[s]) - m.heads[s] }

// findSlot returns flow f's slot index, or -1 when no queue has
// materialised for it.
func (m *Mux) findSlot(f int) int {
	lo, hi := 0, len(m.slotFlow)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(m.slotFlow[mid]) < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.slotFlow) && int(m.slotFlow[lo]) == f {
		return lo
	}
	return -1
}

// slot returns flow f's slot index, materialising the queue (at its
// sorted position) on first arrival.
func (m *Mux) slot(f int) int {
	lo, hi := 0, len(m.slotFlow)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(m.slotFlow[mid]) < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.slotFlow) && int(m.slotFlow[lo]) == f {
		return lo
	}
	m.slotFlow = append(m.slotFlow, 0)
	m.queues = append(m.queues, nil)
	m.heads = append(m.heads, 0)
	copy(m.slotFlow[lo+1:], m.slotFlow[lo:])
	copy(m.queues[lo+1:], m.queues[lo:])
	copy(m.heads[lo+1:], m.heads[lo:])
	m.slotFlow[lo] = int32(f)
	m.queues[lo] = nil
	m.heads[lo] = 0
	return lo
}

// Enqueue implements the input side: the packet joins its flow's queue
// (p.Flow indexes the queue) and service starts if the server is idle.
// It panics on an out-of-range flow index, which always indicates a
// wiring bug in the host model.
func (m *Mux) Enqueue(p traffic.Packet) {
	if p.Flow < 0 || p.Flow >= m.k {
		panic("mux: packet flow index out of range")
	}
	s := m.slot(p.Flow)
	m.queues[s] = append(m.queues[s], entry{p: p, arrived: m.eng.Now(), seq: m.seq})
	m.seq++
	m.bits += p.Size
	if !m.busy {
		m.serve()
	}
}

// pick selects the next SLOT to serve per the discipline, or -1 when
// idle. For LIFO it returns the slot whose most recent arrival is newest;
// serve pops that slot's tail instead of its head. Slots are sorted by
// flow id, so each scan visits exactly the non-empty flows in the order
// the dense loop visited all K.
func (m *Mux) pick() int {
	switch m.discipline {
	case LIFO:
		best, bestSeq := -1, uint64(0)
		for i := range m.queues {
			if m.qlen(i) == 0 {
				continue
			}
			e := m.queues[i][len(m.queues[i])-1]
			if best < 0 || e.seq > bestSeq {
				best, bestSeq = i, e.seq
			}
		}
		return best
	case Priority:
		for i := range m.queues {
			if m.qlen(i) > 0 {
				return i
			}
		}
	case RoundRobin:
		// rrNext is a flow id: resume at the first materialised flow at or
		// after it, wrapping — flows with no slot are empty and the dense
		// scan would have skipped them anyway.
		ns := len(m.slotFlow)
		start := 0
		for start < ns && int(m.slotFlow[start]) < m.rrNext {
			start++
		}
		for off := 0; off < ns; off++ {
			i := (start + off) % ns
			if m.qlen(i) > 0 {
				m.rrNext = (int(m.slotFlow[i]) + 1) % m.k
				return i
			}
		}
	default: // FIFO: globally earliest arrival (seq breaks ties)
		best, bestSeq := -1, uint64(0)
		for i := range m.queues {
			if m.qlen(i) == 0 {
				continue
			}
			e := m.queues[i][m.heads[i]]
			if best < 0 || e.seq < bestSeq {
				best, bestSeq = i, e.seq
			}
		}
		return best
	}
	return -1
}

func (m *Mux) serve() {
	i := m.pick()
	if i < 0 {
		m.busy = false
		return
	}
	m.busy = true
	var e entry
	if m.discipline == LIFO {
		last := len(m.queues[i]) - 1
		e = m.queues[i][last]
		m.queues[i] = m.queues[i][:last]
	} else {
		e = m.queues[i][m.heads[i]]
		m.heads[i]++
		m.compact(i)
	}
	m.bits -= e.p.Size
	m.cur = e
	m.eng.ScheduleInKind(des.Seconds(e.p.Size/m.c), des.KindMuxDone, m.snapArg, m.done)
}

func (m *Mux) compact(i int) {
	if m.heads[i] == len(m.queues[i]) {
		// Empty: rewind for free, so a mostly-drained queue never creeps
		// toward the threshold below (and its ~64-entry capacity).
		m.queues[i] = m.queues[i][:0]
		m.heads[i] = 0
		return
	}
	if m.heads[i] > 64 && m.heads[i]*2 >= len(m.queues[i]) {
		n := copy(m.queues[i], m.queues[i][m.heads[i]:])
		m.queues[i] = m.queues[i][:n]
		m.heads[i] = 0
	}
}
