package mux

import (
	"repro/internal/des"
	"repro/internal/snap"
	"repro/internal/traffic"
)

// Checkpoint support. Construction parameters (k, c, discipline, out) are
// recomputed by the restored session; Snapshot/Restore cover only the
// mutable words. Queued entries are written head-to-tail and restored
// with heads reset to zero — head position is memory layout, not service
// order, so the compaction bookkeeping does not need to survive.

// SetSnapArg registers the MUX's slot in the session's component
// registry; transmit-completion events carry it so a restore can route
// each serialized event back to its component.
func (m *Mux) SetSnapArg(arg uint32) { m.snapArg = arg }

func snapEntry(w *snap.Writer, e entry) {
	e.p.Snapshot(w)
	w.I64(int64(e.arrived))
	w.U64(e.seq)
}

func restoreEntry(r *snap.Reader) entry {
	return entry{
		p:       traffic.RestorePacket(r),
		arrived: des.Time(r.I64()),
		seq:     r.U64(),
	}
}

// Snapshot appends the MUX's mutable state to the open record.
func (m *Mux) Snapshot(w *snap.Writer) {
	w.Len(len(m.slotFlow))
	for s, f := range m.slotFlow {
		w.U32(uint32(f))
		w.Len(m.qlen(s))
		for _, e := range m.queues[s][m.heads[s]:] {
			snapEntry(w, e)
		}
	}
	w.F64(m.bits)
	w.Bool(m.busy)
	w.U64(m.seq)
	w.I64(int64(m.rrNext))
	if m.busy {
		snapEntry(w, m.cur)
	}
	m.Delay.Snapshot(w)
	m.MaxWait.Snapshot(w)
	m.Served.Snapshot(w)
}

// Restore overwrites the MUX's mutable state from the open record. The
// transmit-completion event, if one was pending, arrives separately via
// RestoreDone during event replay.
func (m *Mux) Restore(r *snap.Reader) {
	n := r.Len()
	m.slotFlow = m.slotFlow[:0]
	m.queues = m.queues[:0]
	m.heads = m.heads[:0]
	for s := 0; s < n; s++ {
		m.slotFlow = append(m.slotFlow, int32(r.U32()))
		q := r.Len()
		var qs []entry
		for i := 0; i < q; i++ {
			qs = append(qs, restoreEntry(r))
		}
		m.queues = append(m.queues, qs)
		m.heads = append(m.heads, 0)
	}
	m.bits = r.F64()
	m.busy = r.Bool()
	m.seq = r.U64()
	m.rrNext = int(r.I64())
	if m.busy {
		m.cur = restoreEntry(r)
	}
	m.Delay.Restore(r)
	m.MaxWait.Restore(r)
	m.Served.Restore(r)
}

// RestoreDone re-schedules the serialized transmit-completion event for
// the packet in m.cur (the MUX must have been restored busy).
func (m *Mux) RestoreDone(at, prio des.Time) {
	m.eng.SchedulePrioKind(at, prio, des.KindMuxDone, m.snapArg, m.done)
}
