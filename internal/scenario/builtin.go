package scenario

// The built-in registry: the paper's two experiment families as plain
// entries, the production-scale partial-membership benchmark, and
// structural variations (heterogeneous uplinks, degenerate underlays,
// stochastic workload) that probe how far the paper's conclusions carry.

// Fig6Combos is the paper's six scheme/tree series, in figure order.
var Fig6Combos = []Combo{
	{Scheme: "capacity-aware", Tree: "dsct"},
	{Scheme: "sigma-rho", Tree: "dsct"},
	{Scheme: "sigma-rho-lambda", Tree: "dsct"},
	{Scheme: "capacity-aware", Tree: "nice"},
	{Scheme: "sigma-rho", Tree: "nice"},
	{Scheme: "sigma-rho-lambda", Tree: "nice"},
}

func init() {
	Register(Scenario{
		Name: "paper-fig4",
		Description: "Fig. 4(a): three audio flows through one regulated MUX, " +
			"(σ,ρ) vs (σ,ρ,λ) over the load grid",
		Kind: KindSingleHop,
		Mix:  "audio",
		Combos: []Combo{
			{Scheme: "sigma-rho"},
			{Scheme: "sigma-rho-lambda"},
		},
	})
	Register(Scenario{
		Name: "paper-fig6",
		Description: "Fig. 6(a): 665 hosts, three full-membership audio groups " +
			"on the 19-router backbone, all six scheme/tree combinations",
		Kind:     KindMultiGroup,
		Mix:      "audio",
		NumHosts: 665,
		Combos:   Fig6Combos,
	})
	Register(Scenario{
		Name: "waxman-zipf-16",
		Description: "the scale benchmark: 2000 hosts on a 64-router Waxman " +
			"underlay, 16 overlapping groups with Zipf-skewed membership",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  2000,
		NumGroups: 16,
		Topology:  Topology{Kind: "waxman", Nodes: 64},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "sigma-rho", Tree: "dsct"},
		},
		Loads:       []float64{0.5, 0.8, 0.95},
		DurationSec: 5,
	})
	Register(Scenario{
		Name: "waxman-zipf-64",
		Description: "the sharding headroom benchmark: 10k hosts on a 128-router " +
			"Waxman underlay, 64 overlapping Zipf groups — 5x the scale benchmark, " +
			"sized for multi-core sharded runs (wdcsim -shards N)",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  10000,
		NumGroups: 64,
		Topology:  Topology{Kind: "waxman", Nodes: 128},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
		},
		Loads:       []float64{0.8},
		DurationSec: 5,
	})
	Register(Scenario{
		Name: "waxman-zipf-512",
		Description: "the 100k-host stress benchmark: 100k hosts on a 256-router " +
			"Waxman underlay, 512 overlapping Zipf groups — exercises the flattened " +
			"substrate and sparse mux at an order of magnitude past waxman-zipf-64; " +
			"run short (wdcsim -duration 0.5) unless you mean it",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  100000,
		NumGroups: 512,
		Topology:  Topology{Kind: "waxman", Nodes: 256},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
		},
		Loads:       []float64{0.8},
		DurationSec: 2,
	})
	Register(Scenario{
		Name: "churn-waxman-16",
		Description: "dynamic membership: the scale benchmark under ~10% turnover — " +
			"2000 hosts, 64-router Waxman, 16 Zipf groups, Poisson joins, exponential lifetimes",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  2000,
		NumGroups: 16,
		Topology:  Topology{Kind: "waxman", Nodes: 64},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		// ~2% of each group's population arrives per second; over the 5 s
		// run that is ~10% membership turnover per group, with mean 2 s
		// stays so most churned-in members also depart mid-run.
		Churn: Churn{
			Kind:            "poisson",
			TurnoverPerSec:  0.02,
			MeanLifetimeSec: 2,
			StartSec:        0.5,
		},
		WindowSec: 0.5,
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "sigma-rho", Tree: "dsct"},
		},
		Loads:       []float64{0.5, 0.8},
		DurationSec: 5,
	})
	Register(Scenario{
		Name: "outage-waxman-16",
		Description: "correlated failures: the scale benchmark hit by a seeded " +
			"router-domain outage (1 s, restored) and a seeded substrate partition " +
			"(0.6 s, healed), recovery metrics per strategy",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  2000,
		NumGroups: 16,
		Topology:  Topology{Kind: "waxman", Nodes: 64},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		// Fault times sit inside the Quick() 3 s cap so the smoke run
		// still exercises every event kind.
		Faults: []FaultSpec{
			{Kind: "domain_outage", AtSec: 1.0, DurationSec: 1.0, Seeded: true},
			{Kind: "partition", AtSec: 2.2, Seeded: true},
			{Kind: "heal", AtSec: 2.8},
		},
		WindowSec: 0.25,
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "sigma-rho-lambda", Strategy: "spt"},
		},
		Loads:       []float64{0.5, 0.8},
		DurationSec: 5,
	})
	Register(Scenario{
		Name: "epoch-churn-waxman-16",
		Description: "membership shocks under churn: the churn benchmark with a " +
			"30% mass leave and a staged 25% epoch transition on the two hottest groups",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  2000,
		NumGroups: 16,
		Topology:  Topology{Kind: "waxman", Nodes: 64},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		Churn: Churn{
			Kind:            "poisson",
			TurnoverPerSec:  0.01,
			MeanLifetimeSec: 2,
			StartSec:        0.5,
		},
		Faults: []FaultSpec{
			{Kind: "mass_leave", AtSec: 1.2, Group: 0, Fraction: 0.3},
			{Kind: "epoch_transition", AtSec: 2.0, DurationSec: 0.6, Group: 1, Fraction: 0.25},
		},
		WindowSec: 0.25,
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "sigma-rho", Tree: "dsct"},
		},
		Loads:       []float64{0.5, 0.8},
		DurationSec: 5,
	})
	Register(Scenario{
		Name: "spt-waxman-16",
		Description: "strategy comparison: the scale benchmark shape with the paper's " +
			"DSCT against the delay-weighted shortest-path and capacity-aware greedy strategies",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  2000,
		NumGroups: 16,
		Topology:  Topology{Kind: "waxman", Nodes: 64},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "sigma-rho-lambda", Strategy: "spt"},
			{Scheme: "sigma-rho-lambda", Strategy: "greedy"},
		},
		Loads:       []float64{0.5, 0.8},
		DurationSec: 5,
	})
	Register(Scenario{
		Name: "reopt-churn-waxman-16",
		Description: "online re-optimization: the churn benchmark with periodic " +
			"measurement-driven tree rewires (1 s period, 5% hysteresis) repairing churn damage",
		Kind:      KindMultiGroup,
		Mix:       "audio",
		NumHosts:  2000,
		NumGroups: 16,
		Topology:  Topology{Kind: "waxman", Nodes: 64},
		Membership: Membership{
			Kind:    "zipf",
			Skew:    1.0,
			MinSize: 8,
		},
		Churn: Churn{
			Kind:            "poisson",
			TurnoverPerSec:  0.02,
			MeanLifetimeSec: 2,
			StartSec:        0.5,
		},
		Reopt: Reoptimize{
			EverySec:    1,
			MinImprove:  0.05,
			CooldownSec: 1,
			MaxMoves:    4,
		},
		WindowSec: 0.5,
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "sigma-rho-lambda", Strategy: "spt"},
		},
		Loads:       []float64{0.5, 0.8},
		DurationSec: 5,
	})
	Register(Scenario{
		Name: "transit-stub-dsl-fibre",
		Description: "heterogeneous access: 800 hosts on a 52-router transit-stub " +
			"hierarchy, 8 uniform partial groups, DSL/cable/fibre uplink classes",
		Kind:      KindMultiGroup,
		Mix:       "hetero",
		NumHosts:  800,
		NumGroups: 8,
		Topology:  Topology{Kind: "transit-stub", Transits: 4, StubsPerTransit: 3, StubSize: 4},
		Membership: Membership{
			Kind:     "uniform",
			Fraction: 0.25,
			MinSize:  8,
		},
		Capacity: Capacity{
			Kind: "classes",
			Classes: []CapacityClass{
				{Mult: 0.5, Weight: 0.5},
				{Mult: 1.0, Weight: 0.35},
				{Mult: 4.0, Weight: 0.15},
			},
		},
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "adaptive", Tree: "dsct"},
		},
		Loads:       []float64{0.35, 0.6},
		DurationSec: 8,
	})
	Register(Scenario{
		Name: "ring-sparse",
		Description: "degenerate underlay: 240 hosts on a 24-router ring, where " +
			"path diameter dominates and DSCT's locality pays most",
		Kind:     KindMultiGroup,
		Mix:      "audio",
		NumHosts: 240,
		Topology: Topology{Kind: "ring", Nodes: 24},
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "sigma-rho-lambda", Tree: "nice"},
		},
		Loads:       []float64{0.5, 0.9},
		DurationSec: 8,
	})
	Register(Scenario{
		Name: "star-hub",
		Description: "degenerate underlay: 300 hosts on a 16-router star — the " +
			"underlay contributes nothing, isolating end-host capacity effects",
		Kind:      KindMultiGroup,
		Mix:       "video",
		NumHosts:  300,
		NumGroups: 4,
		Topology:  Topology{Kind: "star", Nodes: 16},
		Membership: Membership{
			Kind: "zipf",
			Skew: 0.8,
		},
		Combos: []Combo{
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "capacity-aware", Tree: "dsct"},
		},
		Loads:       []float64{0.5, 0.9},
		DurationSec: 6,
	})
	Register(Scenario{
		Name: "backbone-vbr",
		Description: "realism ablation: the paper's backbone driven by stochastic " +
			"VBR media models instead of envelope-extremal flows",
		Kind:     KindMultiGroup,
		Mix:      "hetero",
		Workload: "vbr",
		NumHosts: 300,
		Combos: []Combo{
			{Scheme: "sigma-rho", Tree: "dsct"},
			{Scheme: "sigma-rho-lambda", Tree: "dsct"},
			{Scheme: "adaptive", Tree: "dsct"},
		},
		Loads:       []float64{0.5, 0.9},
		DurationSec: 8,
	})
}
