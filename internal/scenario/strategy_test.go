package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
)

// Misspelt or unknown keys must fail the parse loudly instead of running
// the default configuration — the classic "stratagy": "spt" typo would
// otherwise silently sweep dsct.
func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{
		"name": "typo",
		"stratagy": "spt",
		"combos": [{"scheme": "sigma-rho-lambda"}]
	}`))
	if err == nil {
		t.Fatal("unknown field decoded without error")
	}
	if !strings.Contains(err.Error(), "stratagy") {
		t.Fatalf("error does not name the offending key: %v", err)
	}
	// Nested unknown keys are rejected too.
	_, err = Parse([]byte(`{
		"name": "typo2",
		"reoptimize": {"every_secs": 1},
		"combos": [{"scheme": "sigma-rho-lambda"}]
	}`))
	if err == nil {
		t.Fatal("unknown nested field decoded without error")
	}
	// Trailing data after the spec is rejected (json.Unmarshal's old
	// strictness, preserved through the Decoder switch).
	_, err = Parse([]byte(`{"name": "a", "combos": [{"scheme": "sigma-rho"}]} {"name": "b"}`))
	if err == nil {
		t.Fatal("trailing data decoded without error")
	}
	// The exact same scenario with correct keys parses.
	s, err := Parse([]byte(`{
		"name": "ok",
		"strategy": "spt",
		"reoptimize": {"every_sec": 1},
		"combos": [{"scheme": "sigma-rho-lambda"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy != "spt" || !s.Reopt.Enabled() {
		t.Fatalf("parsed scenario lost fields: %+v", s)
	}
}

func TestStrategyForPrecedence(t *testing.T) {
	s := Scenario{Strategy: "spt"}
	cases := []struct {
		combo Combo
		want  string
	}{
		{Combo{Scheme: "sigma-rho-lambda", Strategy: "greedy"}, "greedy"},
		{Combo{Scheme: "sigma-rho-lambda", Tree: "nice"}, "nice"},
		{Combo{Scheme: "sigma-rho-lambda"}, "spt"},
		{Combo{Scheme: "capacity-aware", Tree: "dsct"}, ""},
	}
	for _, c := range cases {
		if got := s.StrategyFor(c.combo); got != c.want {
			t.Fatalf("StrategyFor(%+v) = %q, want %q", c.combo, got, c.want)
		}
	}
	bare := Scenario{}
	if got := bare.StrategyFor(Combo{Scheme: "sigma-rho-lambda"}); got != "" {
		t.Fatalf("bare scenario resolves %q, want empty (core default)", got)
	}
}

func TestComboStringIncludesStrategy(t *testing.T) {
	cases := []struct {
		combo Combo
		want  string
	}{
		{Combo{Scheme: "sigma-rho-lambda", Tree: "dsct"}, "sigma-rho-lambda dsct"},
		{Combo{Scheme: "sigma-rho-lambda", Strategy: "spt"}, "sigma-rho-lambda spt"},
		{Combo{Scheme: "sigma-rho"}, "sigma-rho"},
	}
	for _, c := range cases {
		if got := c.combo.String(); got != c.want {
			t.Fatalf("String(%+v) = %q, want %q", c.combo, got, c.want)
		}
	}
}

func TestValidateStrategyAndReopt(t *testing.T) {
	valid := Scenario{
		Name:   "v",
		Combos: []Combo{{Scheme: "sigma-rho-lambda", Strategy: "spt"}},
		Reopt:  Reoptimize{EverySec: 1, MinImprove: 0.05},
	}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scenario{
		// unknown strategy names, scenario- and combo-level
		{Name: "b1", Strategy: "nope", Combos: []Combo{{Scheme: "sigma-rho"}}},
		{Name: "b2", Combos: []Combo{{Scheme: "sigma-rho", Strategy: "nope"}}},
		// tree and strategy on the same combo
		{Name: "b3", Combos: []Combo{{Scheme: "sigma-rho", Tree: "dsct", Strategy: "spt"}}},
		// strategy on a capacity-aware combo
		{Name: "b4", Combos: []Combo{{Scheme: "capacity-aware", Strategy: "spt"}}},
		// re-optimization over capacity-aware trees
		{Name: "b5", Combos: []Combo{{Scheme: "capacity-aware"}},
			Reopt: Reoptimize{EverySec: 1}},
		// re-optimization on a single-hop scenario
		{Name: "b6", Kind: KindSingleHop, Combos: []Combo{{Scheme: "sigma-rho"}},
			Reopt: Reoptimize{EverySec: 1}},
		// parameters without a period
		{Name: "b7", Combos: []Combo{{Scheme: "sigma-rho"}},
			Reopt: Reoptimize{MinImprove: 0.2}},
		// hysteresis outside [0,1)
		{Name: "b8", Combos: []Combo{{Scheme: "sigma-rho"}},
			Reopt: Reoptimize{EverySec: 1, MinImprove: 1.5}},
		// unknown mode
		{Name: "b9", Combos: []Combo{{Scheme: "sigma-rho"}},
			Reopt: Reoptimize{EverySec: 1, Mode: "anneal"}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("scenario %s validated", s.Name)
		}
	}
}

func TestReoptimizeCompile(t *testing.T) {
	r := Reoptimize{EverySec: 2, MinImprove: 0.07, CooldownSec: 3, MaxMoves: 5, Mode: "rebuild"}
	cfg := r.compile()
	if cfg.Every != 2*des.Second || cfg.Cooldown != 3*des.Second {
		t.Fatalf("times: %+v", cfg)
	}
	if cfg.MinImprove != 0.07 || cfg.MaxMoves != 5 || !cfg.Rebuild {
		t.Fatalf("params: %+v", cfg)
	}
	if (Reoptimize{}).compile() != (core.ReoptConfig{}) {
		t.Fatal("disabled reoptimize compiles to a non-zero config")
	}
}

// The two new builtins must be registered, JSON round-trip under the
// strict decoder, and compile into runnable configs with the strategy
// and re-optimization fields threaded through.
func TestStrategyBuiltinsCompile(t *testing.T) {
	for _, name := range []string{"spt-waxman-16", "reopt-churn-waxman-16"} {
		sc := MustLookup(name)
		data, err := sc.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Name != name {
			t.Fatalf("round trip lost the name: %q", back.Name)
		}
		groups := sc.Groups(1)
		for _, combo := range sc.Combos {
			cfg, err := sc.SessionConfig(combo, 0.8, 1, core.UseSeed(2), des.Second, nil, groups)
			if err != nil {
				t.Fatalf("%s %v: %v", name, combo, err)
			}
			if want := sc.StrategyFor(combo); cfg.Strategy != want {
				t.Fatalf("%s %v: strategy %q, want %q", name, combo, cfg.Strategy, want)
			}
			if sc.Reopt.Enabled() != cfg.Reopt.Enabled() {
				t.Fatalf("%s %v: reopt not threaded", name, combo)
			}
		}
	}
}
