package scenario

// The churn model: scenarios describe membership dynamics declaratively
// (Poisson join arrivals, exponential or Pareto session lifetimes, per-
// group rates) and the model materialises into a concrete schedule of
// core.MembershipEvents — a pure function of (scenario, seed, duration),
// drawn on dedicated xrand streams so enabling churn never perturbs the
// membership, tree, or traffic streams of the static scenario it extends.

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/xrand"
)

// Churn configures session-level membership churn for a multi-group
// scenario with partial membership. The model is M/G/∞-style: each group
// sees a Poisson process of join arrivals, each arrival picks a host
// uniformly among current non-members, stays for a drawn lifetime, and
// leaves. Initial members (including every group source) never churn out.
type Churn struct {
	// Kind: "" (off) or "poisson".
	Kind string `json:"kind,omitempty"`
	// Rate is the per-group join-arrival rate in arrivals/second. Set
	// exactly one of Rate, TurnoverPerSec, and PerGroupRates.
	Rate float64 `json:"rate,omitempty"`
	// TurnoverPerSec sizes the arrival rate relative to the group:
	// rate_g = TurnoverPerSec × |initial members of g| — so "0.02" means
	// roughly 2% of the group's population joins (and later leaves) per
	// simulated second, independent of how skewed the group sizes are.
	TurnoverPerSec float64 `json:"turnover_per_sec,omitempty"`
	// PerGroupRates gives each group its own arrivals/second (length must
	// equal the group count).
	PerGroupRates []float64 `json:"per_group_rates,omitempty"`
	// Lifetime: "exponential" (default) or "pareto" (heavy-tailed).
	Lifetime string `json:"lifetime,omitempty"`
	// MeanLifetimeSec is the mean session lifetime. Default 2.
	MeanLifetimeSec float64 `json:"mean_lifetime_sec,omitempty"`
	// ParetoAlpha is the Pareto shape (> 1 so the mean exists). Default 1.5.
	ParetoAlpha float64 `json:"pareto_alpha,omitempty"`
	// StartSec holds churn off during warm-up. Default 0.
	StartSec float64 `json:"start_sec,omitempty"`
}

// Enabled reports whether the scenario has churn configured.
func (c Churn) Enabled() bool { return c.Kind != "" }

// validate checks the churn spec against the scenario's dimensions.
func (c Churn) validate(name string, groupCount int) error {
	switch c.Kind {
	case "":
		return nil
	case "poisson":
	default:
		return fmt.Errorf("scenario %s: unknown churn kind %q", name, c.Kind)
	}
	set := 0
	if c.Rate > 0 {
		set++
	}
	if c.TurnoverPerSec > 0 {
		set++
	}
	if len(c.PerGroupRates) > 0 {
		set++
	}
	if set != 1 {
		return fmt.Errorf("scenario %s: churn needs exactly one of rate, turnover_per_sec, per_group_rates", name)
	}
	if len(c.PerGroupRates) > 0 && len(c.PerGroupRates) != groupCount {
		return fmt.Errorf("scenario %s: %d per-group churn rates for %d groups",
			name, len(c.PerGroupRates), groupCount)
	}
	for _, r := range c.PerGroupRates {
		if r < 0 {
			return fmt.Errorf("scenario %s: negative churn rate %v", name, r)
		}
	}
	if c.Rate < 0 || c.TurnoverPerSec < 0 || c.MeanLifetimeSec < 0 || c.StartSec < 0 {
		return fmt.Errorf("scenario %s: negative churn parameter", name)
	}
	switch c.Lifetime {
	case "", "exponential":
	case "pareto":
		if c.ParetoAlpha != 0 && c.ParetoAlpha <= 1 {
			return fmt.Errorf("scenario %s: pareto_alpha must be > 1 for a finite mean", name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown churn lifetime %q", name, c.Lifetime)
	}
	return nil
}

// meanLifetime resolves the configured mean lifetime in seconds.
func (c Churn) meanLifetime() float64 {
	if c.MeanLifetimeSec > 0 {
		return c.MeanLifetimeSec
	}
	return 2
}

// drawLifetime samples one session lifetime in seconds.
func (c Churn) drawLifetime(rng *xrand.Rand) float64 {
	mean := c.meanLifetime()
	if c.Lifetime == "pareto" {
		alpha := c.ParetoAlpha
		if alpha == 0 {
			alpha = 1.5
		}
		return rng.Pareto(mean*(alpha-1)/alpha, alpha)
	}
	return rng.Exp(mean)
}

// churnStream salts the per-group churn streams away from the membership
// streams derived from the same (seed, group) pair.
const churnStream = 0xc4ceb9fe1a85ec53

// ChurnEvents materialises the scenario's churn model into a concrete
// membership event schedule over the given run duration: a pure function
// of (scenario, seed, duration), independent of load, combo, worker
// count, and execution order. groups is the materialised membership
// (s.Groups(seed)); passing nil materialises it here. A scenario without
// churn — or with full membership, which leaves no host to join — yields
// nil.
func (s Scenario) ChurnEvents(seed uint64, duration des.Duration, groups []core.GroupSpec) []core.MembershipEvent {
	if !s.Churn.Enabled() {
		return nil
	}
	if groups == nil {
		groups = s.Groups(seed)
	}
	if groups == nil {
		return nil
	}
	n := s.Hosts()
	durSec := duration.Seconds()
	var events []core.MembershipEvent
	for g := range groups {
		rate := s.Churn.Rate
		if s.Churn.TurnoverPerSec > 0 {
			rate = s.Churn.TurnoverPerSec * float64(len(groups[g].Members))
		}
		if len(s.Churn.PerGroupRates) > 0 {
			rate = s.Churn.PerGroupRates[g]
		}
		if rate <= 0 {
			continue
		}
		rng := xrand.New(xrand.DeriveSeed(seed, g) ^ churnStream)
		member := make([]bool, n)
		count := 0
		for _, m := range groups[g].Members {
			member[m] = true
			count++
		}
		// Pending departures of churned-in members, kept sorted by time.
		type departure struct {
			at   float64
			host int
		}
		var pending []departure
		pop := func(until float64) {
			for len(pending) > 0 && pending[0].at <= until {
				d := pending[0]
				pending = pending[1:]
				events = append(events, core.MembershipEvent{
					At: des.Seconds(d.at), Group: g, Host: d.host})
				member[d.host] = false
				count--
			}
		}
		t := s.Churn.StartSec
		for {
			t += rng.Exp(1 / rate)
			if t >= durSec {
				break
			}
			pop(t)
			free := n - count
			if free == 0 {
				continue // everyone is a member; the arrival is lost
			}
			// Uniform pick among current non-members.
			idx := rng.Intn(free)
			host := -1
			for h := 0; h < n; h++ {
				if !member[h] {
					if idx == 0 {
						host = h
						break
					}
					idx--
				}
			}
			events = append(events, core.MembershipEvent{
				At: des.Seconds(t), Group: g, Host: host, Join: true})
			member[host] = true
			count++
			leaveAt := t + s.Churn.drawLifetime(rng)
			if leaveAt < durSec {
				i := sort.Search(len(pending), func(i int) bool { return pending[i].at > leaveAt })
				pending = append(pending, departure{})
				copy(pending[i+1:], pending[i:])
				pending[i] = departure{at: leaveAt, host: host}
			}
		}
		pop(durSec)
	}
	// Merge the per-group schedules chronologically; the stable sort keeps
	// group order on ties, so the merged schedule is deterministic.
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}
