package scenario

// The declarative face of the core re-optimization plane: scenarios state
// the pass period, hysteresis, and mode as plain JSON data and compile it
// into a core.ReoptConfig.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// Reoptimize configures measurement-driven online tree re-optimization
// for a multi-group scenario (see core/reopt.go for the mechanics).
type Reoptimize struct {
	// EverySec is the period between re-optimization passes in simulated
	// seconds. 0 disables re-optimization.
	EverySec float64 `json:"every_sec,omitempty"`
	// MinImprove is the hysteresis threshold: a change is accepted only
	// when the predicted delay undercuts the measured one by at least
	// this fraction. Default 0.1.
	MinImprove float64 `json:"min_improve,omitempty"`
	// CooldownSec is the per-group quiet period after an accepted change.
	// Default: one period.
	CooldownSec float64 `json:"cooldown_sec,omitempty"`
	// MaxMoves bounds the members rewired per pass per group. Default 1.
	MaxMoves int `json:"max_moves,omitempty"`
	// Mode: "rewire" (default — local measurement-driven edge swaps) or
	// "rebuild" (full strategy rebuild over the current member set).
	Mode string `json:"mode,omitempty"`
}

// Enabled reports whether re-optimization is configured.
func (r Reoptimize) Enabled() bool { return r.EverySec > 0 }

// validate checks the re-optimization spec.
func (r Reoptimize) validate(name string) error {
	if r.EverySec < 0 || r.CooldownSec < 0 || r.MaxMoves < 0 {
		return fmt.Errorf("scenario %s: negative re-optimization parameter", name)
	}
	if r.MinImprove < 0 || r.MinImprove >= 1 {
		return fmt.Errorf("scenario %s: reoptimize min_improve %v outside [0,1)", name, r.MinImprove)
	}
	switch r.Mode {
	case "", "rewire", "rebuild":
	default:
		return fmt.Errorf("scenario %s: unknown reoptimize mode %q", name, r.Mode)
	}
	if !r.Enabled() && (r.MinImprove != 0 || r.CooldownSec != 0 || r.MaxMoves != 0 || r.Mode != "") {
		return fmt.Errorf("scenario %s: reoptimize parameters set without every_sec", name)
	}
	return nil
}

// compile materialises the core configuration.
func (r Reoptimize) compile() core.ReoptConfig {
	if !r.Enabled() {
		return core.ReoptConfig{}
	}
	return core.ReoptConfig{
		Every:      des.Seconds(r.EverySec),
		MinImprove: r.MinImprove,
		Cooldown:   des.Seconds(r.CooldownSec),
		MaxMoves:   r.MaxMoves,
		Rebuild:    r.Mode == "rebuild",
	}
}
