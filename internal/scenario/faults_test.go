package scenario

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
)

func faultScenario() Scenario {
	return Scenario{
		Name:       "fault-test",
		NumHosts:   160,
		NumGroups:  4,
		Topology:   Topology{Kind: "waxman", Nodes: 16},
		Membership: Membership{Kind: "uniform", Fraction: 0.3},
		Faults: []FaultSpec{
			{Kind: "domain_outage", AtSec: 0.5, DurationSec: 1.0, Seeded: true},
			{Kind: "mass_leave", AtSec: 1.0, Group: 1, Fraction: 0.4},
			{Kind: "partition", AtSec: 1.5, Seeded: true},
			{Kind: "heal", AtSec: 2.0},
			{Kind: "epoch_transition", AtSec: 2.4, DurationSec: 0.5, Group: 2, Fraction: 0.25},
		},
		Combos: []Combo{{Scheme: "sigma-rho-lambda"}},
	}
}

func TestFaultEventsDeterministicAndWellFormed(t *testing.T) {
	sc := faultScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := sc.FaultEvents(5, 4*des.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.FaultEvents(5, 4*des.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no fault events compiled")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic compile:\n%v\nvs\n%v", a, b)
	}
	// The five specs expand to: outage, restore, mass_leave, partition,
	// heal, mass_join, mass_leave — chronological.
	wantKinds := []core.FaultKind{core.FaultOutage, core.FaultMassLeave, core.FaultRestore,
		core.FaultPartition, core.FaultHeal, core.FaultMassJoin, core.FaultMassLeave}
	if len(a) != len(wantKinds) {
		t.Fatalf("%d events, want %d: %v", len(a), len(wantKinds), a)
	}
	var last des.Time
	for i, ev := range a {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d is %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if ev.At < last {
			t.Fatalf("event %d out of order", i)
		}
		last = ev.At
	}
	// The restore mirrors its outage's hosts; the heal pairs its partition.
	if !reflect.DeepEqual(a[0].Hosts, a[2].Hosts) || a[0].ID != a[2].ID {
		t.Fatalf("restore does not mirror the outage: %v vs %v", a[0], a[2])
	}
	if a[3].ID != a[4].ID {
		t.Fatalf("heal pairs partition %d, want %d", a[4].ID, a[3].ID)
	}
	// Mass cohorts: ascending host ids, drawn from the right pools, sized
	// by the fraction (ceil(0.4 × 48) = 20 leavers for group 1).
	groups := sc.Groups(5)
	member := make(map[int]bool)
	for _, m := range groups[1].Members {
		member[m] = true
	}
	leave := a[1]
	if leave.Group != 1 || len(leave.Hosts) != 20 {
		t.Fatalf("mass_leave cohort: %+v", leave)
	}
	for _, h := range leave.Hosts {
		if !member[h] || h == groups[1].Source {
			t.Fatalf("mass_leave victim %d not a removable member", h)
		}
	}
	join := a[5]
	member = make(map[int]bool)
	for _, m := range groups[2].Members {
		member[m] = true
	}
	for _, h := range join.Hosts {
		if member[h] {
			t.Fatalf("epoch joiner %d already a member", h)
		}
	}
	// A shorter duration sees a strict prefix: the draws never shift.
	short, err := sc.FaultEvents(5, des.Seconds(1.6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(short, a[:4]) {
		t.Fatalf("short run is not a prefix:\n%v\nvs\n%v", short, a[:4])
	}
}

func TestFaultsDoNotPerturbStaticStreams(t *testing.T) {
	plain := faultScenario()
	plain.Faults = nil
	withFaults := faultScenario()
	// Membership, churn, and the compiled session's structural streams must
	// be identical with and without faults.
	ga, gb := plain.Groups(9), withFaults.Groups(9)
	if !reflect.DeepEqual(ga, gb) {
		t.Fatal("faults perturbed the membership stream")
	}
	ca, err := plain.SessionConfig(plain.Combos[0], 0.7, 9, core.UseSeed(2), 3*des.Second, nil, ga)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := withFaults.SessionConfig(withFaults.Combos[0], 0.7, 9, core.UseSeed(2), 3*des.Second, nil, gb)
	if err != nil {
		t.Fatal(err)
	}
	if len(cb.Faults) == 0 {
		t.Fatal("fault scenario compiled no fault events")
	}
	cb.Faults = nil
	// Faults force a default measurement window; aside from that the
	// configs must be identical.
	if ca.WindowSec != 0 || cb.WindowSec != 1 {
		t.Fatalf("window defaults: %v vs %v", ca.WindowSec, cb.WindowSec)
	}
	cb.WindowSec = 0
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("faults perturbed the static config:\n%+v\nvs\n%+v", ca, cb)
	}
}

func TestFaultSpecValidation(t *testing.T) {
	cases := []struct {
		label string
		mut   func(*Scenario)
	}{
		{"unknown kind", func(s *Scenario) { s.Faults[0].Kind = "meteor" }},
		{"at zero", func(s *Scenario) { s.Faults[0].AtSec = 0 }},
		{"negative duration", func(s *Scenario) { s.Faults[0].DurationSec = -1 }},
		{"seeded outage with router", func(s *Scenario) { s.Faults[0].Router = 3 }},
		{"outage with routers list", func(s *Scenario) { s.Faults[0].Routers = []int{1} }},
		{"fraction on outage", func(s *Scenario) { s.Faults[0].Fraction = 0.5 }},
		{"group on outage", func(s *Scenario) { s.Faults[0].Group = 1 }},
		{"fraction out of range", func(s *Scenario) { s.Faults[1].Fraction = 1.5 }},
		{"group out of range", func(s *Scenario) { s.Faults[1].Group = 9 }},
		{"duration on mass_leave", func(s *Scenario) { s.Faults[1].DurationSec = 1 }},
		{"partition both seeded and listed", func(s *Scenario) { s.Faults[2].Routers = []int{1} }},
		{"heal with fields", func(s *Scenario) { s.Faults[3].Seeded = true }},
		{"heal before partition", func(s *Scenario) { s.Faults[3].AtSec = 1.5 }},
		{"epoch without duration", func(s *Scenario) { s.Faults[4].DurationSec = 0 }},
		{"overlapping partitions", func(s *Scenario) {
			s.Faults = append(s.Faults, FaultSpec{Kind: "partition", AtSec: 1.7, Seeded: true})
		}},
		{"heal without partition", func(s *Scenario) {
			s.Faults = append(s.Faults, FaultSpec{Kind: "heal", AtSec: 3.5})
		}},
		{"single-hop", func(s *Scenario) { s.Kind = KindSingleHop }},
		{"capacity-aware combo", func(s *Scenario) { s.Combos[0].Scheme = "capacity-aware" }},
		{"mass kinds need partial membership", func(s *Scenario) { s.Membership = Membership{} }},
	}
	for _, c := range cases {
		sc := faultScenario()
		c.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", c.label)
		}
	}
	// Outage and partition alone are fine under full membership.
	sc := faultScenario()
	sc.Membership = Membership{}
	sc.Faults = []FaultSpec{
		{Kind: "domain_outage", AtSec: 0.5, Router: 2},
		{Kind: "partition", AtSec: 1.5, Routers: []int{0, 1, 2}},
		{Kind: "heal", AtSec: 2.0},
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("full-membership outage scenario rejected: %v", err)
	}
	if _, err := sc.FaultEvents(3, 3*des.Second, nil); err != nil {
		t.Fatalf("full-membership outage compile: %v", err)
	}
	// Compile-time range errors surface as errors, not panics.
	sc.Faults = []FaultSpec{{Kind: "domain_outage", AtSec: 0.5, Router: 99}}
	if _, err := sc.FaultEvents(3, 3*des.Second, nil); err == nil {
		t.Fatal("out-of-range router compiled")
	}
	sc.Faults = []FaultSpec{{Kind: "partition", AtSec: 0.5, Routers: []int{0, 99}}}
	if _, err := sc.FaultEvents(3, 3*des.Second, nil); err == nil {
		t.Fatal("out-of-range partition side compiled")
	}
	// Overlapping outages on the same router are a compile error.
	sc.Faults = []FaultSpec{
		{Kind: "domain_outage", AtSec: 0.5, DurationSec: 2, Router: 2},
		{Kind: "domain_outage", AtSec: 1.0, Router: 2},
	}
	if _, err := sc.FaultEvents(3, 5*des.Second, nil); err == nil {
		t.Fatal("overlapping domain outages compiled")
	}
}

func TestFaultBuiltinsRegisteredAndRoundTrip(t *testing.T) {
	for _, name := range []string{"outage-waxman-16", "epoch-churn-waxman-16"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.HasFaults() {
			t.Fatalf("%s has no faults", name)
		}
		data, err := sc.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("%s does not round-trip", name)
		}
		// The Quick() smoke shape must still fire every fault event.
		q := sc.Quick()
		groups := q.Groups(1)
		cfg, err := q.SessionConfig(q.Combos[0], 0.8, 1, core.UseSeed(2), des.Seconds(q.DurationSec), nil, groups)
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.Faults) < len(sc.Faults) {
			t.Fatalf("%s Quick() compiled %d fault events for %d specs", name, len(cfg.Faults), len(sc.Faults))
		}
	}
}
