// Package scenario is the declarative experiment layer above the engines:
// a Scenario names a complete simulation setup — underlay topology,
// population, group count, membership model, workload, traffic-control
// combos, and capacity model — as plain data. Scenarios round-trip through
// JSON for the CLI, live in a registry of named setups (the paper's Fig. 4
// and Fig. 6 are two entries, not special cases), and compile into
// internal/core configs for the harness sweep drivers. The paper measured
// one point of this space (19-router backbone, 665 hosts, three full-
// membership groups); everything else the engine can simulate is a
// Scenario away.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"bytes"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/overlay"
	"repro/internal/topo"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Kind selects the simulation engine a scenario runs on.
type Kind string

// The two engines.
const (
	// KindMultiGroup runs Simulation II: a population of end hosts
	// forwarding group flows along overlay trees (the default).
	KindMultiGroup Kind = "multi-group"
	// KindSingleHop runs Simulation I: K flows through one regulated MUX.
	KindSingleHop Kind = "single-hop"
)

// Combo is one traffic-control series of a scenario: a scheme plus (for
// multi-group scenarios) a tree family or overlay strategy.
type Combo struct {
	// Scheme: "capacity-aware", "sigma-rho", "sigma-rho-lambda", or
	// "adaptive".
	Scheme string `json:"scheme"`
	// Tree: "dsct" (default) or "nice" — the legacy name for the two
	// paper tree families. Ignored for single-hop scenarios. Mutually
	// exclusive with Strategy.
	Tree string `json:"tree,omitempty"`
	// Strategy names an overlay strategy from the registry ("dsct",
	// "nice", "spt", "greedy", ...), overriding both Tree and the
	// scenario-level Strategy for this series — so one scenario can
	// compare strategies side by side. Requires a regulated scheme.
	Strategy string `json:"strategy,omitempty"`
}

// String implements fmt.Stringer ("sigma-rho-lambda dsct",
// "sigma-rho-lambda spt").
func (c Combo) String() string {
	switch {
	case c.Strategy != "":
		return c.Scheme + " " + c.Strategy
	case c.Tree != "":
		return c.Scheme + " " + c.Tree
	default:
		return c.Scheme
	}
}

// Topology selects and parameterises the underlay generator family.
// Unset numeric fields take the family defaults in internal/topo.
type Topology struct {
	// Kind: "backbone19" (default), "waxman", "transit-stub", "ring",
	// "star".
	Kind string `json:"kind,omitempty"`
	// Nodes is the router count (waxman/ring/star).
	Nodes int `json:"nodes,omitempty"`
	// Alpha/Beta are the Waxman edge-probability parameters.
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	// Transits/StubsPerTransit/StubSize shape the transit-stub hierarchy.
	Transits        int `json:"transits,omitempty"`
	StubsPerTransit int `json:"stubs_per_transit,omitempty"`
	StubSize        int `json:"stub_size,omitempty"`
}

// Generator compiles the topology spec into its generator.
func (t Topology) Generator() (topo.Generator, error) {
	switch t.Kind {
	case "", "backbone19":
		return topo.Backbone19Generator{}, nil
	case "waxman":
		return topo.Waxman{N: t.Nodes, Alpha: t.Alpha, Beta: t.Beta}, nil
	case "transit-stub":
		return topo.TransitStub{Transits: t.Transits, StubsPerTransit: t.StubsPerTransit,
			StubSize: t.StubSize}, nil
	case "ring":
		return topo.Ring{N: t.Nodes}, nil
	case "star":
		return topo.Star{N: t.Nodes}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
}

// Membership selects how hosts subscribe to groups.
type Membership struct {
	// Kind: "all" (default — the paper's every-host-joins-every-group),
	// "zipf" (group g's size ∝ (g+1)^−Skew — a few hot groups, a long
	// tail), or "uniform" (every group independently samples
	// Fraction × NumHosts members).
	Kind string `json:"kind,omitempty"`
	// Skew is the Zipf exponent. Default 1.0.
	Skew float64 `json:"skew,omitempty"`
	// Fraction is the uniform-model group size as a share of the
	// population. Default 0.25.
	Fraction float64 `json:"fraction,omitempty"`
	// MinSize floors every group's member count. Default 4.
	MinSize int `json:"min_size,omitempty"`
}

// Full reports whether the model is the paper's full membership.
func (m Membership) Full() bool { return m.Kind == "" || m.Kind == "all" }

// Capacity selects the host uplink-capacity model.
type Capacity struct {
	// Kind: "uniform" (default — every host at the base C) or "classes".
	Kind string `json:"kind,omitempty"`
	// Classes are the weighted capacity tiers of the "classes" model.
	Classes []CapacityClass `json:"classes,omitempty"`
}

// CapacityClass mirrors topo.UplinkClass in JSON-friendly form.
type CapacityClass struct {
	Mult   float64 `json:"mult"`
	Weight float64 `json:"weight"`
}

// Scenario is one named, self-contained experiment setup.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Kind defaults to multi-group.
	Kind Kind `json:"kind,omitempty"`
	// Mix: "audio" (default), "video", "hetero".
	Mix string `json:"mix,omitempty"`
	// Workload: "extremal" (default) or "vbr".
	Workload string `json:"workload,omitempty"`
	// NumHosts is the population (multi-group). Default 665.
	NumHosts int `json:"num_hosts,omitempty"`
	// NumGroups is the group count. Default 3 (one per mix flow).
	NumGroups int `json:"num_groups,omitempty"`
	// Topology, Membership, Capacity select the structural models.
	Topology   Topology   `json:"topology,omitempty"`
	Membership Membership `json:"membership,omitempty"`
	Capacity   Capacity   `json:"capacity,omitempty"`
	// Strategy names the default overlay strategy for every combo that
	// does not pick its own (via Combo.Strategy or the legacy Combo.Tree).
	// Capacity-aware combos keep their own flat shared-tree construction
	// and ignore it.
	Strategy string `json:"strategy,omitempty"`
	// Churn turns on dynamic membership (see churn.go). Requires partial
	// membership and regulated combos.
	Churn Churn `json:"churn,omitempty"`
	// Reopt turns on measurement-driven online tree re-optimization:
	// periodic passes that rewire (or rebuild) each group's tree from
	// measured per-member delays under hysteresis. Requires regulated
	// combos and a multi-group scenario.
	Reopt Reoptimize `json:"reoptimize,omitempty"`
	// Faults injects correlated failures (see faults.go): router-domain
	// outages, substrate partitions, and mass membership shocks. Requires
	// regulated combos and a multi-group scenario; the mass kinds need
	// partial membership.
	Faults []FaultSpec `json:"faults,omitempty"`
	// WindowSec sets the windowed max-delay bucket width in seconds for
	// transient measurement; 0 defaults to 1 s when churn is enabled and
	// off otherwise.
	WindowSec float64 `json:"window_sec,omitempty"`
	// Combos are the series to sweep. Required.
	Combos []Combo `json:"combos"`
	// Loads overrides the sweep's load grid (else the caller's grid).
	Loads []float64 `json:"loads,omitempty"`
	// DurationSec overrides the per-run simulated seconds (else the
	// caller's duration).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// ClusterK is the DSCT/NICE cluster parameter. Default 3.
	ClusterK int `json:"cluster_k,omitempty"`
	// CapacityFactor is C_out/C for the capacity-aware scheme.
	CapacityFactor float64 `json:"capacity_factor,omitempty"`
}

// GroupCount resolves the scenario's number of groups.
func (s Scenario) GroupCount() int {
	if s.NumGroups > 0 {
		return s.NumGroups
	}
	return 3
}

// Hosts resolves the population.
func (s Scenario) Hosts() int {
	if s.NumHosts > 0 {
		return s.NumHosts
	}
	return 665
}

// ParseMix resolves the mix name.
func (s Scenario) ParseMix() (traffic.Mix, error) {
	switch s.Mix {
	case "", "audio":
		return traffic.MixAudio, nil
	case "video":
		return traffic.MixVideo, nil
	case "hetero":
		return traffic.MixHetero, nil
	default:
		return 0, fmt.Errorf("scenario: unknown mix %q", s.Mix)
	}
}

// ParseWorkload resolves the workload name.
func (s Scenario) ParseWorkload() (core.Workload, error) {
	switch s.Workload {
	case "", "extremal":
		return core.WorkloadExtremal, nil
	case "vbr":
		return core.WorkloadVBR, nil
	default:
		return 0, fmt.Errorf("scenario: unknown workload %q", s.Workload)
	}
}

// ParseScheme resolves a combo's scheme name.
func ParseScheme(name string) (core.Scheme, error) {
	switch name {
	case "capacity-aware":
		return core.SchemeCapacityAware, nil
	case "sigma-rho":
		return core.SchemeSigmaRho, nil
	case "sigma-rho-lambda":
		return core.SchemeSRL, nil
	case "adaptive":
		return core.SchemeAdaptive, nil
	default:
		return 0, fmt.Errorf("scenario: unknown scheme %q", name)
	}
}

// StrategyFor resolves the overlay strategy name in force for one combo:
// the combo's own Strategy, else its legacy Tree name, else the
// scenario-level default, else "" (core's dsct default). Capacity-aware
// combos always resolve to "" — they build their own shared flat tree.
func (s Scenario) StrategyFor(c Combo) string {
	if scheme, err := ParseScheme(c.Scheme); err == nil && scheme == core.SchemeCapacityAware {
		return ""
	}
	switch {
	case c.Strategy != "":
		return c.Strategy
	case c.Tree != "":
		return c.Tree
	default:
		return s.Strategy
	}
}

// ParseTree resolves a combo's tree name.
func ParseTree(name string) (core.TreeKind, error) {
	switch name {
	case "", "dsct":
		return core.TreeDSCT, nil
	case "nice":
		return core.TreeNICE, nil
	default:
		return 0, fmt.Errorf("scenario: unknown tree %q", name)
	}
}

// Validate checks the scenario compiles: names resolve, dimensions are
// positive, the load grid is inside (0, 1), and single-hop scenarios use
// regulated schemes.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	switch s.Kind {
	case "", KindMultiGroup, KindSingleHop:
	default:
		return fmt.Errorf("scenario %s: unknown kind %q", s.Name, s.Kind)
	}
	if _, err := s.ParseMix(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if _, err := s.ParseWorkload(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if len(s.Combos) == 0 {
		return fmt.Errorf("scenario %s: needs at least one combo", s.Name)
	}
	for _, c := range s.Combos {
		scheme, err := ParseScheme(c.Scheme)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if _, err := ParseTree(c.Tree); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if c.Strategy != "" {
			if c.Tree != "" {
				return fmt.Errorf("scenario %s: combo %q sets both tree and strategy", s.Name, c.String())
			}
			if scheme == core.SchemeCapacityAware {
				return fmt.Errorf("scenario %s: capacity-aware combos build their own shared tree; strategy %q does not apply", s.Name, c.Strategy)
			}
			if _, err := overlay.LookupStrategy(c.Strategy); err != nil {
				return fmt.Errorf("scenario %s: %w", s.Name, err)
			}
		}
		if s.Kind == KindSingleHop && scheme == core.SchemeCapacityAware {
			return fmt.Errorf("scenario %s: single-hop runs need a regulated scheme", s.Name)
		}
	}
	if s.Strategy != "" {
		if _, err := overlay.LookupStrategy(s.Strategy); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if _, err := s.Topology.Generator(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	switch s.Membership.Kind {
	case "", "all", "zipf", "uniform":
	default:
		return fmt.Errorf("scenario %s: unknown membership kind %q", s.Name, s.Membership.Kind)
	}
	switch s.Capacity.Kind {
	case "", "uniform":
		if len(s.Capacity.Classes) > 0 {
			return fmt.Errorf("scenario %s: uniform capacity lists classes", s.Name)
		}
	case "classes":
		if len(s.Capacity.Classes) == 0 {
			return fmt.Errorf("scenario %s: classes capacity model without classes", s.Name)
		}
		for _, c := range s.Capacity.Classes {
			if c.Mult <= 0 || c.Weight <= 0 {
				return fmt.Errorf("scenario %s: capacity class mult/weight must be positive", s.Name)
			}
		}
	default:
		return fmt.Errorf("scenario %s: unknown capacity kind %q", s.Name, s.Capacity.Kind)
	}
	if s.NumHosts < 0 || s.NumGroups < 0 || s.DurationSec < 0 || s.WindowSec < 0 {
		return fmt.Errorf("scenario %s: negative dimensions", s.Name)
	}
	if err := s.Churn.validate(s.Name, s.GroupCount()); err != nil {
		return err
	}
	if s.Churn.Enabled() {
		if s.Kind == KindSingleHop {
			return fmt.Errorf("scenario %s: churn needs a multi-group scenario", s.Name)
		}
		if s.Membership.Full() {
			return fmt.Errorf("scenario %s: churn needs partial membership (with full membership there is no host left to join)", s.Name)
		}
		for _, c := range s.Combos {
			if scheme, _ := ParseScheme(c.Scheme); scheme == core.SchemeCapacityAware {
				return fmt.Errorf("scenario %s: churn requires regulated combos (capacity-aware trees cannot express membership drift)", s.Name)
			}
		}
	}
	if err := s.Reopt.validate(s.Name); err != nil {
		return err
	}
	if s.Reopt.Enabled() {
		if s.Kind == KindSingleHop {
			return fmt.Errorf("scenario %s: re-optimization needs a multi-group scenario", s.Name)
		}
		for _, c := range s.Combos {
			if scheme, _ := ParseScheme(c.Scheme); scheme == core.SchemeCapacityAware {
				return fmt.Errorf("scenario %s: re-optimization requires regulated combos (capacity-aware trees cannot be rewired)", s.Name)
			}
		}
	}
	if len(s.Faults) > 0 {
		if err := validateFaultSpecs(s.Name, s.Faults, s.GroupCount()); err != nil {
			return err
		}
		if s.Kind == KindSingleHop {
			return fmt.Errorf("scenario %s: fault injection needs a multi-group scenario", s.Name)
		}
		for _, c := range s.Combos {
			if scheme, _ := ParseScheme(c.Scheme); scheme == core.SchemeCapacityAware {
				return fmt.Errorf("scenario %s: fault injection requires regulated combos (capacity-aware trees cannot be repaired)", s.Name)
			}
		}
		if s.Membership.Full() {
			for _, f := range s.Faults {
				if f.Kind == "mass_leave" || f.Kind == "epoch_transition" {
					return fmt.Errorf("scenario %s: fault %q needs partial membership (with full membership there is no cohort to rotate)", s.Name, f.Kind)
				}
			}
		}
	}
	if s.Kind == KindMultiGroup || s.Kind == "" {
		if s.Hosts() < 2 {
			return fmt.Errorf("scenario %s: needs at least two hosts", s.Name)
		}
	}
	for _, l := range s.Loads {
		if l <= 0 || l >= 1 {
			return fmt.Errorf("scenario %s: load %v outside (0,1)", s.Name, l)
		}
	}
	return nil
}

// Groups materialises the membership model for the given structural seed:
// nil for full membership (core's implicit paper model), else one
// GroupSpec per group with a deterministically sampled member set and a
// random member as source. Group g's sample stream derives from
// xrand.DeriveSeed(seed, g), so membership is a pure function of
// (scenario, seed) — independent of load, combo, and execution order.
func (s Scenario) Groups(seed uint64) []core.GroupSpec {
	if s.Membership.Full() {
		return nil
	}
	n, k := s.Hosts(), s.GroupCount()
	minSize := s.Membership.MinSize
	if minSize == 0 {
		minSize = 4
	}
	if minSize > n {
		minSize = n
	}
	sizes := make([]int, k)
	switch s.Membership.Kind {
	case "zipf":
		skew := s.Membership.Skew
		if skew == 0 {
			skew = 1.0
		}
		norm := 0.0
		for g := 0; g < k; g++ {
			norm += math.Pow(float64(g+1), -skew)
		}
		for g := 0; g < k; g++ {
			sizes[g] = int(math.Round(float64(n) * math.Pow(float64(g+1), -skew) / norm))
		}
	case "uniform":
		f := s.Membership.Fraction
		if f == 0 {
			f = 0.25
		}
		for g := 0; g < k; g++ {
			sizes[g] = int(math.Round(f * float64(n)))
		}
	}
	groups := make([]core.GroupSpec, k)
	for g := 0; g < k; g++ {
		size := sizes[g]
		if size < minSize {
			size = minSize
		}
		if size > n {
			size = n
		}
		rng := xrand.New(xrand.DeriveSeed(seed, g) ^ 0xa0761d6478bd642f)
		perm := rng.Perm(n)
		members := append([]int(nil), perm[:size]...)
		source := members[0]
		sort.Ints(members)
		groups[g] = core.GroupSpec{Source: source, Members: members}
	}
	return groups
}

// UplinkClasses compiles the capacity model.
func (s Scenario) UplinkClasses() []topo.UplinkClass {
	if len(s.Capacity.Classes) == 0 {
		return nil
	}
	out := make([]topo.UplinkClass, len(s.Capacity.Classes))
	for i, c := range s.Capacity.Classes {
		out[i] = topo.UplinkClass{Mult: c.Mult, Weight: c.Weight}
	}
	return out
}

// SessionConfig compiles one (combo, load) cell of a multi-group scenario
// into a core config. The caller supplies the structural seed and the
// per-load traffic seed (sweep drivers derive the latter with
// xrand.DeriveSeed) plus the pre-built shared specs (nil to let the
// session measure its own) and the materialised membership (groups —
// sweep drivers call s.Groups(seed) once and share the result across
// every cell; nil materialises it here).
func (s Scenario) SessionConfig(combo Combo, load float64, seed uint64,
	trafficSeed core.SeedOpt, duration des.Duration, specs []core.FlowSpec,
	groups []core.GroupSpec) (core.Config, error) {
	if s.Kind == KindSingleHop {
		return core.Config{}, fmt.Errorf("scenario %s: single-hop scenario compiled as session", s.Name)
	}
	mix, err := s.ParseMix()
	if err != nil {
		return core.Config{}, err
	}
	workload, err := s.ParseWorkload()
	if err != nil {
		return core.Config{}, err
	}
	scheme, err := ParseScheme(combo.Scheme)
	if err != nil {
		return core.Config{}, err
	}
	tree, err := ParseTree(combo.Tree)
	if err != nil {
		return core.Config{}, err
	}
	gen, err := s.Topology.Generator()
	if err != nil {
		return core.Config{}, err
	}
	// The slowest uplink class must still fit every flow envelope, or the
	// session will (rightly) panic at build time; surface it as a config
	// error here, where the load is known.
	if classes := s.UplinkClasses(); len(classes) > 0 {
		k := s.GroupCount()
		conn := mix.TotalRateN(k) / load
		minMult := classes[0].Mult
		for _, c := range classes[1:] {
			if c.Mult < minMult {
				minMult = c.Mult
			}
		}
		maxRate := float64(traffic.AudioRate)
		for i := 0; i < k; i++ {
			if mix.VideoFlow(i) {
				maxRate = traffic.VideoRate
				break
			}
		}
		if core.DefaultEnvelopeMargin*maxRate >= minMult*conn {
			return core.Config{}, fmt.Errorf(
				"scenario %s: at load %.2f the slowest uplink class (mult %.2g) offers %.0f bps, at or below the largest flow envelope rate %.0f bps",
				s.Name, load, minMult, minMult*conn, core.DefaultEnvelopeMargin*maxRate)
		}
	}
	if groups == nil {
		groups = s.Groups(seed)
	}
	// Churn compiles to a concrete membership event schedule: a pure
	// function of (scenario, seed, duration) on dedicated streams, so the
	// same cell always sees the same churn regardless of load, combo, or
	// sweep parallelism — and a churn-free scenario compiles to the exact
	// static config it always did.
	events := s.ChurnEvents(seed, duration, groups)
	// Faults compile on their own dedicated stream under the same purity
	// contract; a fault-free scenario compiles to the exact config it
	// always did.
	faults, err := s.FaultEvents(seed, duration, groups)
	if err != nil {
		return core.Config{}, err
	}
	window := s.WindowSec
	if window == 0 && (s.Churn.Enabled() || len(faults) > 0) {
		window = 1
	}
	return core.Config{
		NumHosts:       s.Hosts(),
		Mix:            mix,
		Load:           load,
		Scheme:         scheme,
		Tree:           tree,
		Strategy:       s.StrategyFor(combo),
		Duration:       duration,
		Seed:           seed,
		TrafficSeed:    trafficSeed,
		Workload:       workload,
		ClusterK:       s.ClusterK,
		CapacityFactor: s.CapacityFactor,
		Specs:          specs,
		Topology:       gen,
		Groups:         groups,
		NumGroups:      s.GroupCount(),
		UplinkClasses:  s.UplinkClasses(),
		Events:         events,
		Faults:         faults,
		Reopt:          s.Reopt.compile(),
		WindowSec:      window,
	}, nil
}

// SingleHopConfig compiles one (combo, load) cell of a single-hop
// scenario.
func (s Scenario) SingleHopConfig(combo Combo, load float64, seed uint64,
	trafficSeed core.SeedOpt, duration des.Duration, specs []core.FlowSpec) (core.SingleHopConfig, error) {
	if s.Kind != KindSingleHop {
		return core.SingleHopConfig{}, fmt.Errorf("scenario %s: multi-group scenario compiled as single hop", s.Name)
	}
	mix, err := s.ParseMix()
	if err != nil {
		return core.SingleHopConfig{}, err
	}
	workload, err := s.ParseWorkload()
	if err != nil {
		return core.SingleHopConfig{}, err
	}
	scheme, err := ParseScheme(combo.Scheme)
	if err != nil {
		return core.SingleHopConfig{}, err
	}
	return core.SingleHopConfig{
		Mix:         mix,
		Load:        load,
		Scheme:      scheme,
		Duration:    duration,
		Seed:        seed,
		TrafficSeed: trafficSeed,
		Workload:    workload,
		Specs:       specs,
	}, nil
}

// Quick returns a reduced-scale copy for tests, smoke targets, and
// examples: capped population, two loads, short runs. Group count and
// structural models are preserved so the reduced run still exercises the
// scenario's shape.
func (s Scenario) Quick() Scenario {
	if s.NumHosts == 0 || s.NumHosts > 150 {
		s.NumHosts = 150
	}
	switch len(s.Loads) {
	case 0:
		s.Loads = []float64{0.5, 0.9}
	case 1, 2:
	default:
		s.Loads = []float64{s.Loads[0], s.Loads[len(s.Loads)-1]}
	}
	if s.DurationSec == 0 || s.DurationSec > 3 {
		s.DurationSec = 3
	}
	return s
}

// Parse decodes and validates a scenario from JSON. Decoding is strict:
// a key the spec does not define (a misspelt "stratagy", a field from a
// newer version) is an error, not a silently ignored no-op that runs the
// default configuration.
func Parse(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		// json.Unmarshal rejected trailing data; keep that strictness
		// through the Decoder switch (a concatenated second spec or merge
		// artifact must not be silently dropped).
		return Scenario{}, fmt.Errorf("scenario: trailing data after the spec")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// JSON encodes the scenario (indented, stable field order).
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
