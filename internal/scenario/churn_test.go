package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/des"
)

func churnScenario() Scenario {
	return Scenario{
		Name:       "churn-test",
		NumHosts:   120,
		NumGroups:  4,
		Membership: Membership{Kind: "uniform", Fraction: 0.3},
		Churn:      Churn{Kind: "poisson", Rate: 3, MeanLifetimeSec: 1},
		Combos:     []Combo{{Scheme: "sigma-rho-lambda"}},
	}
}

func TestChurnEventsDeterministicAndWellFormed(t *testing.T) {
	sc := churnScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	a := sc.ChurnEvents(5, 4*des.Second, nil)
	b := sc.ChurnEvents(5, 4*des.Second, nil)
	if len(a) == 0 {
		t.Fatal("no churn events materialised")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Chronological, in range, and every leave matches an earlier join of
	// a churned-in host (initial members never leave).
	groups := sc.Groups(5)
	member := make([]map[int]bool, len(groups))
	initial := make([]map[int]bool, len(groups))
	for g, spec := range groups {
		member[g] = map[int]bool{}
		initial[g] = map[int]bool{}
		for _, m := range spec.Members {
			member[g][m] = true
			initial[g][m] = true
		}
	}
	var last des.Time
	joins, leaves := 0, 0
	for i, ev := range a {
		if ev.At < last {
			t.Fatalf("event %d out of order", i)
		}
		last = ev.At
		if ev.At > 4*des.Second {
			t.Fatalf("event %d beyond duration: %v", i, ev.At)
		}
		if ev.Group < 0 || ev.Group >= 4 || ev.Host < 0 || ev.Host >= 120 {
			t.Fatalf("event %d out of range: %+v", i, ev)
		}
		if ev.Join {
			if member[ev.Group][ev.Host] {
				t.Fatalf("event %d joins an existing member: %+v", i, ev)
			}
			member[ev.Group][ev.Host] = true
			joins++
		} else {
			if !member[ev.Group][ev.Host] {
				t.Fatalf("event %d leaves a non-member: %+v", i, ev)
			}
			if initial[ev.Group][ev.Host] {
				t.Fatalf("event %d churns out an initial member: %+v", i, ev)
			}
			if ev.Host == groups[ev.Group].Source {
				t.Fatalf("event %d churns out the source: %+v", i, ev)
			}
			member[ev.Group][ev.Host] = false
			leaves++
		}
	}
	if joins == 0 || leaves == 0 {
		t.Fatalf("schedule has %d joins, %d leaves — want both", joins, leaves)
	}
}

// Enabling churn must not perturb the static streams: membership and
// session config (minus events/window) stay identical.
func TestChurnDoesNotPerturbStaticStreams(t *testing.T) {
	sc := churnScenario()
	static := sc
	static.Churn = Churn{}
	if ga, gb := sc.Groups(9), static.Groups(9); len(ga) != len(gb) {
		t.Fatal("group counts diverged")
	} else {
		for g := range ga {
			if ga[g].Source != gb[g].Source || len(ga[g].Members) != len(gb[g].Members) {
				t.Fatalf("group %d membership perturbed by churn", g)
			}
			for i := range ga[g].Members {
				if ga[g].Members[i] != gb[g].Members[i] {
					t.Fatalf("group %d member %d perturbed", g, i)
				}
			}
		}
	}
	ca, err := sc.SessionConfig(sc.Combos[0], 0.7, 9, core.UseSeed(1), 3*des.Second, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := static.SessionConfig(sc.Combos[0], 0.7, 9, core.UseSeed(1), 3*des.Second, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Events) == 0 || len(cb.Events) != 0 {
		t.Fatalf("events: churn %d, static %d", len(ca.Events), len(cb.Events))
	}
	if ca.Seed != cb.Seed || ca.NumHosts != cb.NumHosts || len(ca.Groups) != len(cb.Groups) {
		t.Fatal("static config fields perturbed by churn")
	}
}

func TestChurnTurnoverScalesWithGroupSize(t *testing.T) {
	sc := churnScenario()
	sc.Membership = Membership{Kind: "zipf", Skew: 1.2, MinSize: 4}
	sc.Churn = Churn{Kind: "poisson", TurnoverPerSec: 0.05, MeanLifetimeSec: 1}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	groups := sc.Groups(3)
	events := sc.ChurnEvents(3, 10*des.Second, groups)
	joins := make([]int, len(groups))
	for _, ev := range events {
		if ev.Join {
			joins[ev.Group]++
		}
	}
	// The largest (first) Zipf group must see more arrivals than the
	// smallest — the rates scale with group size.
	if joins[0] <= joins[len(groups)-1] {
		t.Fatalf("turnover not size-scaled: %v", joins)
	}
}

func TestChurnValidation(t *testing.T) {
	bad := []func(*Scenario){
		func(s *Scenario) { s.Churn.Kind = "flash-crowd" },
		func(s *Scenario) { s.Churn.Rate = 0 }, // no rate at all
		func(s *Scenario) { s.Churn.TurnoverPerSec = 1 },
		func(s *Scenario) { s.Churn.PerGroupRates = []float64{1, 2} }, // wrong length
		func(s *Scenario) { s.Churn.Lifetime = "weibull" },
		func(s *Scenario) { s.Churn.Lifetime = "pareto"; s.Churn.ParetoAlpha = 0.9 },
		func(s *Scenario) { s.Membership = Membership{} }, // full membership
		func(s *Scenario) { s.Combos = append(s.Combos, Combo{Scheme: "capacity-aware"}) },
		func(s *Scenario) { s.Kind = KindSingleHop },
	}
	for i, mutate := range bad {
		sc := churnScenario()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Fatalf("case %d: invalid churn scenario accepted", i)
		}
	}
	ok := churnScenario()
	ok.Churn = Churn{Kind: "poisson", PerGroupRates: []float64{1, 0, 2, 3},
		Lifetime: "pareto", ParetoAlpha: 1.5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid pareto/per-group churn rejected: %v", err)
	}
}

func TestChurnScenarioRegisteredAndRoundTrips(t *testing.T) {
	sc := MustLookup("churn-waxman-16")
	if !sc.Churn.Enabled() {
		t.Fatal("churn-waxman-16 has no churn")
	}
	data, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Churn.Kind != sc.Churn.Kind || back.Churn.TurnoverPerSec != sc.Churn.TurnoverPerSec ||
		back.Churn.MeanLifetimeSec != sc.Churn.MeanLifetimeSec ||
		back.Churn.StartSec != sc.Churn.StartSec || back.WindowSec != sc.WindowSec {
		t.Fatalf("churn spec did not round-trip: %+v vs %+v", back.Churn, sc.Churn)
	}
}
