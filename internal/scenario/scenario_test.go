package scenario

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
)

func TestRegistryHasPaperEntriesAndScale(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d scenarios, want >= 6: %v", len(names), names)
	}
	for _, want := range []string{"paper-fig4", "paper-fig6", "waxman-zipf-16"} {
		if _, err := Lookup(want); err != nil {
			t.Fatalf("registry missing %s: %v", want, err)
		}
	}
	if sc := MustLookup("waxman-zipf-16"); sc.Hosts() != 2000 || sc.GroupCount() != 16 {
		t.Fatalf("scale benchmark is %d hosts x %d groups", sc.Hosts(), sc.GroupCount())
	}
}

func TestEveryRegisteredScenarioValidates(t *testing.T) {
	for _, sc := range All() {
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, sc := range All() {
		data, err := sc.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", sc.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("%s: JSON round trip diverged:\n%+v\n%+v", sc.Name, sc, back)
		}
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"combos":[{"scheme":"sigma-rho"}]}`,                                          // no name
		`{"name":"x"}`,                                                                 // no combos
		`{"name":"x","combos":[{"scheme":"bogus"}]}`,                                   // bad scheme
		`{"name":"x","combos":[{"scheme":"sigma-rho","tree":"bogus"}]}`,                // bad tree
		`{"name":"x","mix":"polka","combos":[{"scheme":"sigma-rho"}]}`,                 // bad mix
		`{"name":"x","topology":{"kind":"moebius"},"combos":[{"scheme":"sigma-rho"}]}`, // bad topo
		`{"name":"x","loads":[1.5],"combos":[{"scheme":"sigma-rho"}]}`,                 // bad load
		`{"name":"x","kind":"single-hop","combos":[{"scheme":"capacity-aware"}]}`,      // CA single hop
		`{"name":"x","capacity":{"kind":"classes"},"combos":[{"scheme":"sigma-rho"}]}`, // empty classes
	}
	for _, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Fatalf("Parse accepted %s", data)
		}
	}
}

func TestZipfMembershipShape(t *testing.T) {
	sc := Scenario{
		Name: "t", NumHosts: 1000, NumGroups: 8,
		Membership: Membership{Kind: "zipf", Skew: 1.0, MinSize: 5},
		Combos:     []Combo{{Scheme: "sigma-rho-lambda"}},
	}
	groups := sc.Groups(3)
	if len(groups) != 8 {
		t.Fatalf("%d groups", len(groups))
	}
	prev := len(groups[0].Members)
	for g, spec := range groups {
		size := len(spec.Members)
		if size < 5 || size > 1000 {
			t.Fatalf("group %d size %d outside [5,1000]", g, size)
		}
		if size > prev {
			t.Fatalf("zipf sizes not non-increasing: group %d has %d > %d", g, size, prev)
		}
		prev = size
		inSet := false
		last := -1
		for _, m := range spec.Members {
			if m <= last {
				t.Fatalf("group %d members not sorted/unique", g)
			}
			last = m
			if m == spec.Source {
				inSet = true
			}
		}
		if !inSet {
			t.Fatalf("group %d source %d not a member", g, spec.Source)
		}
	}
	// Head group ≈ N/H(K,1), tail ≈ head/K — the skew must be real.
	if head, tail := len(groups[0].Members), len(groups[7].Members); head < 4*tail {
		t.Fatalf("zipf skew too flat: head %d vs tail %d", head, tail)
	}
}

func TestGroupsArePureFunctionOfSeed(t *testing.T) {
	sc := MustLookup("waxman-zipf-16")
	a, b := sc.Groups(5), sc.Groups(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("membership not deterministic per seed")
	}
	c := sc.Groups(6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("membership ignores the seed")
	}
}

func TestFullMembershipCompilesToNilGroups(t *testing.T) {
	sc := MustLookup("paper-fig6")
	if g := sc.Groups(1); g != nil {
		t.Fatalf("full membership produced %d explicit groups; the implicit paper path must be used", len(g))
	}
}

func TestSessionConfigCompiles(t *testing.T) {
	for _, sc := range All() {
		if sc.Kind == KindSingleHop {
			cfg, err := sc.SingleHopConfig(sc.Combos[0], 0.5, 1, core.UseSeed(2), 3*des.Second, nil)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			if cfg.Load != 0.5 || cfg.Seed != 1 || cfg.TrafficSeed.Or(1) != 2 {
				t.Fatalf("%s: config fields lost: %+v", sc.Name, cfg)
			}
			continue
		}
		cfg, err := sc.SessionConfig(sc.Combos[0], 0.5, 1, core.UseSeed(2), 3*des.Second, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if cfg.NumHosts != sc.Hosts() || cfg.NumGroups != sc.GroupCount() || cfg.Topology == nil {
			t.Fatalf("%s: config fields lost: %+v", sc.Name, cfg)
		}
		if sc.Membership.Full() != (cfg.Groups == nil) {
			t.Fatalf("%s: membership compile mismatch", sc.Name)
		}
		if (sc.Capacity.Kind == "classes") != (len(cfg.UplinkClasses) > 0) {
			t.Fatalf("%s: capacity compile mismatch", sc.Name)
		}
	}
}

// An uplink class too slow for the load's flow envelopes must surface as
// a config error at compile time, not a panic mid-sweep.
func TestSessionConfigRejectsUndersizedUplinkClass(t *testing.T) {
	sc := Scenario{
		Name: "t", Mix: "video", NumHosts: 20,
		Capacity: Capacity{Kind: "classes", Classes: []CapacityClass{{Mult: 0.2, Weight: 1}}},
		Combos:   []Combo{{Scheme: "sigma-rho-lambda"}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.SessionConfig(sc.Combos[0], 0.9, 1, core.UseSeed(1), des.Second, nil, nil); err == nil {
		t.Fatal("0.2x uplink class at load 0.9 must be rejected")
	}
	if _, err := sc.SessionConfig(sc.Combos[0], 0.2, 1, core.UseSeed(1), des.Second, nil, nil); err != nil {
		t.Fatalf("0.2x uplink class at load 0.2 should fit: %v", err)
	}
}

func TestQuickReducesScale(t *testing.T) {
	sc := MustLookup("waxman-zipf-16").Quick()
	if sc.NumHosts > 150 || len(sc.Loads) > 2 || sc.DurationSec > 3 {
		t.Fatalf("Quick did not reduce: %d hosts, %d loads, %vs", sc.NumHosts, len(sc.Loads), sc.DurationSec)
	}
	if sc.GroupCount() != 16 {
		t.Fatal("Quick must preserve the group structure")
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate registration must panic")
			}
		}()
		Register(MustLookup("paper-fig4"))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid registration must panic")
			}
		}()
		Register(Scenario{Name: "broken"})
	}()
}
