package scenario

// The fault model: scenarios describe correlated failures declaratively
// (router-domain outages, substrate partitions with heals, mass-leave and
// epoch-transition membership shocks) and the model materialises into a
// concrete schedule of core.FaultEvents — a pure function of (scenario,
// seed), drawn on a dedicated xrand stream so enabling faults never
// perturbs the membership, churn, tree, or traffic streams of the
// scenario it extends. Duration only filters the compiled schedule; it
// never shifts a draw.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/topo"
	"repro/internal/xrand"
)

// FaultSpec is one declarative fault event. Kinds:
//
//   - "domain_outage": every host of one router domain goes down at
//     AtSec; DurationSec > 0 restores them (and their recorded group
//     memberships) at AtSec+DurationSec, 0 leaves them down for the run.
//     The domain is Router, or a seeded draw among non-empty domains.
//   - "partition": the substrate cuts along a router bipartition at
//     AtSec — Routers lists one side, or Seeded draws the bipartition.
//     Crossing traffic is dropped and counted until the matching "heal".
//   - "heal": closes the open partition and batch-repairs every severed
//     subtree. Must strictly follow its partition in time.
//   - "mass_leave": a seeded Fraction of Group's initial members leave at
//     one instant.
//   - "epoch_transition": a staged cutover for Group — a new cohort
//     (Fraction of the group size, drawn from non-members) joins at
//     AtSec, and the same-sized old cohort leaves at AtSec+DurationSec,
//     so the memberships overlap during the epoch window.
type FaultSpec struct {
	// Kind selects the fault (see above).
	Kind string `json:"kind"`
	// AtSec is the strike time in simulated seconds (> 0).
	AtSec float64 `json:"at_sec"`
	// DurationSec spans outage→restore and epoch join→leave. Required
	// for epoch_transition; 0 makes a domain_outage permanent.
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Seeded draws the outage domain or the partition bipartition from
	// the scenario's fault stream instead of naming it.
	Seeded bool `json:"seeded,omitempty"`
	// Router names the outage domain when not Seeded.
	Router int `json:"router,omitempty"`
	// Routers lists one partition side when not Seeded.
	Routers []int `json:"routers,omitempty"`
	// Group targets the mass kinds.
	Group int `json:"group,omitempty"`
	// Fraction sizes the mass kinds' cohort relative to the group's
	// initial membership, in (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
}

// faultStream salts the scenario fault stream away from the membership,
// churn, and topology streams derived from the same seed.
const faultStream = 0x2545f4914f6cdd1d

// HasFaults reports whether the scenario injects faults.
func (s Scenario) HasFaults() bool { return len(s.Faults) > 0 }

// validateFaultSpecs checks the fault list statically (no topology or
// membership in hand): kinds resolve, fields match their kind, and the
// partition/heal pairing is well formed in time order.
func validateFaultSpecs(name string, specs []FaultSpec, groupCount int) error {
	sorted := append([]FaultSpec(nil), specs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtSec < sorted[j].AtSec })
	openPartition := -1.0
	for _, f := range sorted {
		if f.AtSec <= 0 {
			return fmt.Errorf("scenario %s: fault %q must strike after time zero", name, f.Kind)
		}
		if f.DurationSec < 0 {
			return fmt.Errorf("scenario %s: fault %q has a negative duration", name, f.Kind)
		}
		massKind := f.Kind == "mass_leave" || f.Kind == "epoch_transition"
		if massKind {
			if f.Fraction <= 0 || f.Fraction > 1 {
				return fmt.Errorf("scenario %s: fault %q needs fraction in (0,1]", name, f.Kind)
			}
			if f.Group < 0 || f.Group >= groupCount {
				return fmt.Errorf("scenario %s: fault %q group %d outside [0,%d)", name, f.Kind, f.Group, groupCount)
			}
		} else if f.Fraction != 0 || f.Group != 0 {
			return fmt.Errorf("scenario %s: fault %q does not take fraction/group", name, f.Kind)
		}
		switch f.Kind {
		case "domain_outage":
			if f.Seeded && f.Router != 0 {
				return fmt.Errorf("scenario %s: seeded domain_outage also names router %d", name, f.Router)
			}
			if f.Router < 0 {
				return fmt.Errorf("scenario %s: domain_outage router %d negative", name, f.Router)
			}
			if len(f.Routers) > 0 {
				return fmt.Errorf("scenario %s: domain_outage takes router, not routers", name)
			}
		case "partition":
			if f.Seeded == (len(f.Routers) > 0) {
				return fmt.Errorf("scenario %s: partition needs exactly one of seeded, routers", name)
			}
			if f.Router != 0 || f.DurationSec != 0 {
				return fmt.Errorf("scenario %s: partition takes routers and a separate heal, not router/duration_sec", name)
			}
			if openPartition >= 0 {
				return fmt.Errorf("scenario %s: partition at %gs overlaps the one at %gs", name, f.AtSec, openPartition)
			}
			openPartition = f.AtSec
		case "heal":
			if f.Seeded || f.Router != 0 || len(f.Routers) > 0 || f.DurationSec != 0 {
				return fmt.Errorf("scenario %s: heal takes only at_sec", name)
			}
			if openPartition < 0 {
				return fmt.Errorf("scenario %s: heal at %gs without an open partition", name, f.AtSec)
			}
			if f.AtSec <= openPartition {
				return fmt.Errorf("scenario %s: heal at %gs must strictly follow its partition at %gs", name, f.AtSec, openPartition)
			}
			openPartition = -1
		case "mass_leave":
			if f.Seeded || f.Router != 0 || len(f.Routers) > 0 {
				return fmt.Errorf("scenario %s: mass_leave takes group and fraction", name)
			}
			if f.DurationSec != 0 {
				return fmt.Errorf("scenario %s: mass_leave is instantaneous; duration_sec does not apply", name)
			}
		case "epoch_transition":
			if f.Seeded || f.Router != 0 || len(f.Routers) > 0 {
				return fmt.Errorf("scenario %s: epoch_transition takes group, fraction, duration_sec", name)
			}
			if f.DurationSec <= 0 {
				return fmt.Errorf("scenario %s: epoch_transition needs duration_sec > 0 (the membership overlap window)", name)
			}
		default:
			return fmt.Errorf("scenario %s: unknown fault kind %q", name, f.Kind)
		}
	}
	return nil
}

// sampleCohort draws k distinct hosts from the candidates (uniformly,
// without replacement) and returns them sorted ascending. It consumes
// exactly len(candidates) draws via Perm regardless of k, keeping the
// stream layout independent of the fraction.
func sampleCohort(rng *xrand.Rand, candidates []int, k int) []int {
	if k > len(candidates) {
		k = len(candidates)
	}
	perm := rng.Perm(len(candidates))
	cohort := make([]int, k)
	for i := 0; i < k; i++ {
		cohort[i] = candidates[perm[i]]
	}
	sort.Ints(cohort)
	return cohort
}

// FaultEvents materialises the scenario's fault specs into a compiled,
// validated core schedule: a pure function of (scenario, seed),
// independent of load, combo, and execution mode; events striking after
// the traffic duration are dropped after every draw is made, so a shorter
// run sees a strict prefix of the longer run's schedule. groups is the
// materialised membership (s.Groups(seed)); passing nil materialises it
// here. The topology is rebuilt exactly as the session builds it, so
// router domains and bipartitions resolve to the same host sets the run
// will use.
func (s Scenario) FaultEvents(seed uint64, duration des.Duration, groups []core.GroupSpec) ([]core.FaultEvent, error) {
	if len(s.Faults) == 0 {
		return nil, nil
	}
	if err := validateFaultSpecs(s.Name, s.Faults, s.GroupCount()); err != nil {
		return nil, err
	}
	gen, err := s.Topology.Generator()
	if err != nil {
		return nil, err
	}
	net := topo.NewNetwork(gen.Build(seed), topo.NetworkConfig{
		NumHosts:      s.Hosts(),
		Seed:          seed,
		UplinkClasses: s.UplinkClasses(),
	})
	numRouters := net.Backbone.NumNodes()
	var populated []int // non-empty domains, ascending — the seeded outage pool
	for r := 0; r < numRouters; r++ {
		if len(net.HostsAtRouter(topo.NodeID(r))) > 0 {
			populated = append(populated, r)
		}
	}
	if groups == nil {
		groups = s.Groups(seed)
	}

	specs := append([]FaultSpec(nil), s.Faults...)
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].AtSec < specs[j].AtSec })
	rng := xrand.New(seed ^ faultStream)
	var events []core.FaultEvent
	nextID := 0
	type outageSpan struct {
		router   int
		from, to float64
	} // to < 0 = permanent
	var outages []outageSpan
	openPartitionID := -1
	for _, f := range specs {
		switch f.Kind {
		case "domain_outage":
			r := f.Router
			if f.Seeded {
				r = populated[rng.Intn(len(populated))]
			}
			if r >= numRouters {
				return nil, fmt.Errorf("scenario %s: domain_outage router %d outside [0,%d)", s.Name, r, numRouters)
			}
			hosts := append([]int(nil), net.HostsAtRouter(topo.NodeID(r))...)
			if len(hosts) == 0 {
				return nil, fmt.Errorf("scenario %s: domain_outage router %d has no hosts", s.Name, r)
			}
			sort.Ints(hosts)
			to := -1.0
			if f.DurationSec > 0 {
				to = f.AtSec + f.DurationSec
			}
			for _, o := range outages {
				if o.router == r && f.AtSec < o.to {
					return nil, fmt.Errorf("scenario %s: domain_outage at %gs overlaps the router-%d outage at %gs",
						s.Name, f.AtSec, r, o.from)
				}
				if o.router == r && o.to < 0 {
					return nil, fmt.Errorf("scenario %s: domain_outage at %gs hits router %d, permanently down since %gs",
						s.Name, f.AtSec, r, o.from)
				}
			}
			outages = append(outages, outageSpan{router: r, from: f.AtSec, to: to})
			id := nextID
			nextID++
			events = append(events, core.FaultEvent{
				At: des.Seconds(f.AtSec), Kind: core.FaultOutage, ID: id, Group: -1, Hosts: hosts})
			if to > 0 {
				events = append(events, core.FaultEvent{
					At: des.Seconds(to), Kind: core.FaultRestore, ID: id, Group: -1, Hosts: hosts})
			}
		case "partition":
			side := make([]bool, numRouters)
			if f.Seeded {
				a := 0
				for r := range side {
					if rng.Intn(2) == 1 {
						side[r] = true
						a++
					}
				}
				// A degenerate draw (all routers on one side) would be no
				// partition at all; move router 0 across.
				if a == 0 {
					side[0] = true
				} else if a == numRouters {
					side[0] = false
				}
			} else {
				for _, r := range f.Routers {
					if r < 0 || r >= numRouters {
						return nil, fmt.Errorf("scenario %s: partition router %d outside [0,%d)", s.Name, r, numRouters)
					}
					if side[r] {
						return nil, fmt.Errorf("scenario %s: partition lists router %d twice", s.Name, r)
					}
					side[r] = true
				}
				if len(f.Routers) == numRouters {
					return nil, fmt.Errorf("scenario %s: partition side holds every router", s.Name)
				}
			}
			openPartitionID = nextID
			nextID++
			events = append(events, core.FaultEvent{
				At: des.Seconds(f.AtSec), Kind: core.FaultPartition, ID: openPartitionID, Group: -1, Side: side})
		case "heal":
			events = append(events, core.FaultEvent{
				At: des.Seconds(f.AtSec), Kind: core.FaultHeal, ID: openPartitionID, Group: -1})
			openPartitionID = -1
		case "mass_leave":
			old, _ := cohortPools(groups[f.Group], s.Hosts())
			k := int(math.Ceil(f.Fraction * float64(len(groups[f.Group].Members))))
			victims := sampleCohort(rng, old, k)
			if len(victims) == 0 {
				return nil, fmt.Errorf("scenario %s: mass_leave on group %d has no removable member", s.Name, f.Group)
			}
			events = append(events, core.FaultEvent{
				At: des.Seconds(f.AtSec), Kind: core.FaultMassLeave, Group: f.Group, Hosts: victims})
		case "epoch_transition":
			old, free := cohortPools(groups[f.Group], s.Hosts())
			k := int(math.Ceil(f.Fraction * float64(len(groups[f.Group].Members))))
			joiners := sampleCohort(rng, free, k)
			leavers := sampleCohort(rng, old, k)
			if len(joiners) == 0 || len(leavers) == 0 {
				return nil, fmt.Errorf("scenario %s: epoch_transition on group %d has no cohort to rotate", s.Name, f.Group)
			}
			events = append(events, core.FaultEvent{
				At: des.Seconds(f.AtSec), Kind: core.FaultMassJoin, Group: f.Group, Hosts: joiners})
			events = append(events, core.FaultEvent{
				At: des.Seconds(f.AtSec + f.DurationSec), Kind: core.FaultMassLeave, Group: f.Group, Hosts: leavers})
		}
	}
	// Duration filters after every draw: a dropped heal leaves its
	// partition cut for the rest of the run, a dropped restore leaves the
	// domain down — both are valid schedules for the core validator.
	n := 0
	for _, ev := range events {
		if ev.At <= duration {
			events[n] = ev
			n++
		}
	}
	events = events[:n]
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// cohortPools splits the population for one group into the initial
// members minus the source (the leave pool) and the non-members (the join
// pool), both ascending.
func cohortPools(g core.GroupSpec, numHosts int) (old, free []int) {
	member := make([]bool, numHosts)
	for _, m := range g.Members {
		member[m] = true
		if m != g.Source {
			old = append(old, m)
		}
	}
	for h := 0; h < numHosts; h++ {
		if !member[h] {
			free = append(free, h)
		}
	}
	return old, free
}
