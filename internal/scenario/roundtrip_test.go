package scenario

import (
	"bytes"
	"testing"
)

// TestBuiltinSpecsRoundTrip pins the JSON codec over the whole registry:
// encode → decode → re-encode must be byte-equal for every builtin spec.
// This is what the fleet manifest protocol leans on — a worker re-parsing
// the parent's serialized scenario must compile the identical sweep — and
// it catches a field added to Scenario without a JSON tag (it would
// marshal under its Go name, survive one decode, and still break the
// moment Parse goes strict about it elsewhere).
func TestBuiltinSpecsRoundTrip(t *testing.T) {
	for _, sc := range All() {
		first, err := sc.JSON()
		if err != nil {
			t.Fatalf("%s: encode: %v", sc.Name, err)
		}
		decoded, err := Parse(first)
		if err != nil {
			t.Fatalf("%s: decode of own encoding: %v", sc.Name, err)
		}
		second, err := decoded.JSON()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", sc.Name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: round trip not byte-identical:\n--- first\n%s\n--- second\n%s",
				sc.Name, first, second)
		}
	}
}
