package scenario

import (
	"fmt"
	"sort"
)

// The registry of named scenarios. Builtins register at init; programs
// may Register more (e.g. parsed from JSON files) before running sweeps.
var registry = map[string]Scenario{}

// Register validates s and adds it to the registry. It panics on an
// invalid scenario or a duplicate name — both are programming errors in
// the caller, not runtime conditions.
func Register(s Scenario) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, error) {
	s, ok := registry[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}

// MustLookup is Lookup for static names (benchmarks, examples).
func MustLookup(name string) Scenario {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the registered scenarios in name order.
func All() []Scenario {
	names := Names()
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}
