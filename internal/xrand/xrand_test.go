package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestFloat64Range01(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]int)
	for i := 0; i < 30000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] == 0 {
			t.Fatalf("Intn(7) never produced %d", v)
		}
		// Each bucket should hold roughly 30000/7 ≈ 4285 samples.
		if seen[v] < 3800 || seen[v] > 4800 {
			t.Fatalf("Intn(7) bucket %d has suspicious count %d", v, seen[v])
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(64)
		if v < 0 || v >= 64 {
			t.Fatalf("Int63n(64) out of range: %d", v)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 8)
		if v < 3 || v > 8 {
			t.Fatalf("IntRange(3,8) returned %d", v)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp(2.5) sample mean %v", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean %v", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal variance %v", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestParetoScale(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2.5); v < 1.5 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	r := New(37)
	sum := 0.0
	const n = 500000
	for i := 0; i < n; i++ {
		sum += r.Pareto(1, 3)
	}
	// mean = xm*alpha/(alpha-1) = 1.5
	if mean := sum / n; math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("Pareto(1,3) sample mean %v", mean)
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func TestPCG32Determinism(t *testing.T) {
	a := NewPCG32(99, 1)
	b := NewPCG32(99, 1)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("PCG32 streams diverged at %d", i)
		}
	}
}

func TestPCG32StreamsIndependent(t *testing.T) {
	a := NewPCG32(99, 1)
	b := NewPCG32(99, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams matched %d/100 times", same)
	}
}

func TestPCG32IntnBounds(t *testing.T) {
	p := NewPCG32(7, 3)
	for i := 0; i < 20000; i++ {
		v := p.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("PCG32.Intn(13) = %d", v)
		}
	}
}

// Property: Int63n output is always within bounds for arbitrary positive n.
func TestQuickInt63nInRange(t *testing.T) {
	r := New(101)
	f := func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Shuffle preserves the multiset of elements.
func TestQuickShufflePreserves(t *testing.T) {
	r := New(103)
	f := func(raw []uint8) bool {
		s := make([]int, len(raw))
		sum := 0
		for i, v := range raw {
			s[i] = int(v)
			sum += int(v)
		}
		r.ShuffleInts(s)
		got := 0
		for _, v := range s {
			got += v
		}
		return got == sum && len(s) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}

func BenchmarkPCG32Uint32(b *testing.B) {
	p := NewPCG32(1, 1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = p.Uint32()
	}
	_ = sink
}
