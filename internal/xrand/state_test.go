package xrand

import "testing"

func TestRandStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	s := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	fork := New(0)
	fork.SetState(s)
	for i, w := range want {
		if got := fork.Uint64(); got != w {
			t.Fatalf("output %d after SetState = %#x, want %#x", i, got, w)
		}
	}
}

func TestPCG32StateRoundTrip(t *testing.T) {
	p := NewPCG32(7, 3)
	for i := 0; i < 10; i++ {
		p.Uint32()
	}
	st, inc := p.State()
	want := []uint32{p.Uint32(), p.Uint32(), p.Uint32()}
	fork := NewPCG32(0, 0)
	fork.SetState(st, inc)
	for i, w := range want {
		if got := fork.Uint32(); got != w {
			t.Fatalf("output %d after SetState = %#x, want %#x", i, got, w)
		}
	}
}
