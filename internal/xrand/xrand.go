// Package xrand provides small, fast, deterministic pseudo-random number
// generators and the distributions the simulator needs.
//
// Every experiment in this repository must be reproducible bit-for-bit
// across runs and Go versions, so the package implements its own generators
// (SplitMix64 and PCG32) instead of relying on math/rand, whose stream is
// not guaranteed stable across releases. All generators are plain structs:
// copying one forks the stream, and none of them is safe for concurrent use
// (give each goroutine its own generator, derived with Split).
package xrand

import "math"

// Rand is a deterministic pseudo-random generator based on SplitMix64
// (Steele, Lea, Flood 2014). The zero value is a valid generator seeded
// with zero; prefer New so distinct seeds are well mixed.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new, statistically independent generator from r, advancing
// r's state. Use it to give subsystems (traffic sources, tree builders)
// their own streams so adding a consumer does not perturb the others.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// DeriveSeed maps (base seed, index) to a derived seed: a SplitMix64
// scramble of both inputs, so neighbouring indices get statistically
// independent streams and the derivation is a pure function — independent
// of worker count, scheduling, and execution order. It never returns 0, so
// the result is always distinguishable from an unset seed. This is THE
// seed-derivation rule of the repository: sweep drivers derive per-point
// traffic seeds with it, sessions derive per-group tree seeds with it, and
// the scenario layer derives per-group membership streams with it (ad-hoc
// arithmetic like base*1000+i collides across nearby bases and correlates
// adjacent streams).
func DeriveSeed(base uint64, index int) uint64 {
	r := New(base ^ (uint64(index+1) * 0x9e3779b97f4a7c15))
	s := r.Uint64()
	if s == 0 {
		s = 1
	}
	return s
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative int64 uniform on [0, 2^63).
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns an int uniform on [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Int63n(int64(n)))
}

// Int63n returns an int64 uniform on [0, n), using rejection sampling to
// avoid modulo bias. It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with n <= 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// IntRange returns an int uniform on [lo, hi] inclusive. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a float64 uniform on [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Range returns a float64 uniform on [lo, hi).
func (r *Rand) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *Rand) Exp(mean float64) float64 { return mean * r.ExpFloat64() }

// NormFloat64 returns a standard-normal float64 using the Marsaglia polar
// method (no cached second value, to keep the stream position deterministic
// per call count is not required; determinism per seed is what matters).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal float64 with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal returns a log-normally distributed float64 where the underlying
// normal has parameters mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto-distributed float64 with scale xm > 0 and shape
// alpha > 0. The mean is xm*alpha/(alpha-1) for alpha > 1.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
// Useful for perturbing deterministic schedules without changing the mean.
func (r *Rand) Jitter(base, frac float64) float64 {
	return base * (1 + frac*(2*r.Float64()-1))
}

// PCG32 is a 32-bit permuted-congruential generator (O'Neill 2014). It is
// provided as a second, independent family for consumers that want streams
// decorrelated from the SplitMix64 family (e.g. failure injection vs
// workload generation).
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 returns a PCG32 generator for the given seed and stream id.
// Distinct stream ids yield independent sequences even with equal seeds.
func NewPCG32(seed, stream uint64) *PCG32 {
	p := &PCG32{inc: stream<<1 | 1}
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// Uint32 returns the next 32 uniformly distributed bits.
func (p *PCG32) Uint32() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG32) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Float64 returns a float64 uniform on [0, 1).
func (p *PCG32) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Intn returns an int uniform on [0, n). It panics if n <= 0.
func (p *PCG32) Intn(n int) int {
	if n <= 0 {
		panic("xrand: PCG32.Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint32(n)
	x := p.Uint32()
	m := uint64(x) * uint64(bound)
	l := uint32(m)
	if l < bound {
		t := -bound % bound
		for l < t {
			x = p.Uint32()
			m = uint64(x) * uint64(bound)
			l = uint32(m)
		}
	}
	return int(m >> 32)
}
