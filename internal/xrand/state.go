package xrand

// Checkpoint support: a generator's stream position is its state words,
// so capturing and re-installing them resumes the stream exactly. These
// are value accessors, not codec methods — xrand sits below the snapshot
// layer and keeping it dependency-free keeps it reusable.

// State returns the generator's current stream position.
func (r *Rand) State() uint64 { return r.state }

// SetState positions the generator so its next output is what a
// generator whose State reported s would produce next.
func (r *Rand) SetState(s uint64) { r.state = s }

// State returns the generator's state and stream-increment words.
func (p *PCG32) State() (state, inc uint64) { return p.state, p.inc }

// SetState positions the generator at the captured (state, inc) pair.
func (p *PCG32) SetState(state, inc uint64) { p.state, p.inc = state, inc }
