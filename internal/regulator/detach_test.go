package regulator

import (
	"testing"

	"repro/internal/des"
	"repro/internal/traffic"
)

func pkt(id uint64, size float64) traffic.Packet {
	return traffic.Packet{ID: id, Size: size}
}

// StartCyclePhased at time zero must be StartCycle exactly: same on/off
// trajectory, same emissions.
func TestSRLPhasedAtZeroMatchesStartCycle(t *testing.T) {
	run := func(phased bool) []des.Time {
		eng := des.New()
		var out []des.Time
		r := NewSRL(eng, 10_000, 250_000, 1_000_000, func(traffic.Packet) {
			out = append(out, eng.Now())
		})
		off := r.WorkPeriod() * 2
		if phased {
			r.StartCyclePhased(off)
		} else {
			r.StartCycle(off)
		}
		for i := 0; i < 30; i++ {
			i := i
			eng.Schedule(des.Millis(float64(5*i)), func() { r.Enqueue(pkt(uint64(i), 8_000)) })
		}
		eng.RunUntil(des.Seconds(1))
		r.StopCycle()
		return out
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("emission counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emission %d at %v (StartCycle) vs %v (phased)", i, a[i], b[i])
		}
	}
}

// A regulator attached mid-run with StartCyclePhased must be exactly in
// phase with one that has been cycling since time zero.
func TestSRLPhasedMidRunAlignsWithGlobalSchedule(t *testing.T) {
	eng := des.New()
	ref := NewSRL(eng, 10_000, 250_000, 1_000_000, func(traffic.Packet) {})
	off := ref.WorkPeriod() / 2
	ref.StartCycle(off)
	late := NewSRL(eng, 10_000, 250_000, 1_000_000, func(traffic.Packet) {})
	// Attach at an arbitrary instant strictly inside the run.
	eng.Schedule(des.Millis(137), func() { late.StartCyclePhased(off) })
	// Compare the on/off state of the two regulators at fine sample points
	// after the attach.
	mismatches := 0
	for i := 0; i < 400; i++ {
		at := des.Millis(140) + des.Duration(i)*des.Millis(1)/4
		eng.Schedule(at, func() {
			if ref.On() != late.On() {
				mismatches++
			}
		})
	}
	eng.RunUntil(des.Seconds(1))
	if mismatches > 0 {
		t.Fatalf("phased regulator out of phase at %d of 400 sample points", mismatches)
	}
}

// Detach must stop the duty cycle, close the gate, let a mid-transmission
// packet complete, and report the abandoned backlog — without disturbing
// a sibling regulator's schedule.
func TestSRLDetachDrainsInFlightAndReportsLoss(t *testing.T) {
	eng := des.New()
	var emitted []uint64
	r := NewSRL(eng, 10_000, 250_000, 1_000_000, func(p traffic.Packet) {
		emitted = append(emitted, p.ID)
	})
	sib := NewSRL(eng, 10_000, 250_000, 1_000_000, func(traffic.Packet) {})
	r.StartCycle(0)
	sib.StartCyclePhased(r.WorkPeriod())
	var dropped int
	eng.Schedule(0, func() {
		// Three packets: the first starts transmitting immediately (on
		// phase begins at 0), the other two are backlog.
		r.Enqueue(pkt(1, 8_000))
		r.Enqueue(pkt(2, 8_000))
		r.Enqueue(pkt(3, 8_000))
	})
	// Detach mid-transmission of packet 1 (8000 bits at 1 Mbps = 8 ms).
	eng.Schedule(des.Millis(4), func() { dropped = r.Detach() })
	sibOnBefore := make([]bool, 0, 50)
	for i := 0; i < 50; i++ {
		at := des.Millis(10) + des.Duration(i)*des.Millis(2)
		eng.Schedule(at, func() { sibOnBefore = append(sibOnBefore, sib.On()) })
	}
	eng.RunUntil(des.Seconds(1))
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (in-flight packet completes)", dropped)
	}
	if len(emitted) != 1 || emitted[0] != 1 {
		t.Fatalf("emitted %v, want just the in-flight packet 1", emitted)
	}
	if r.On() {
		t.Fatal("detached regulator still on")
	}

	// The sibling's observed schedule must equal a fresh run without the
	// detached regulator at all.
	eng2 := des.New()
	sib2 := NewSRL(eng2, 10_000, 250_000, 1_000_000, func(traffic.Packet) {})
	sib2.StartCyclePhased(sib.WorkPeriod())
	sibOnClean := make([]bool, 0, 50)
	for i := 0; i < 50; i++ {
		at := des.Millis(10) + des.Duration(i)*des.Millis(2)
		eng2.Schedule(at, func() { sibOnClean = append(sibOnClean, sib2.On()) })
	}
	eng2.RunUntil(des.Seconds(1))
	for i := range sibOnBefore {
		if sibOnBefore[i] != sibOnClean[i] {
			t.Fatalf("sibling schedule perturbed at sample %d", i)
		}
	}
}

func TestSigmaRhoDetachCancelsPendingWait(t *testing.T) {
	eng := des.New()
	emitted := 0
	s := NewSigmaRho(eng, 10_000, 250_000, func(traffic.Packet) { emitted++ })
	var dropped int
	eng.Schedule(0, func() {
		// Burst past the bucket: first packets pass, the rest wait.
		for i := 0; i < 6; i++ {
			s.Enqueue(pkt(uint64(i), 4_000))
		}
		dropped = s.Detach()
	})
	eng.Run()
	if emitted == 0 {
		t.Fatal("no packet passed before detach")
	}
	if dropped != 6-emitted {
		t.Fatalf("dropped = %d, emitted = %d, want them to cover all 6", dropped, emitted)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending after detach", eng.Pending())
	}
}
