// Package regulator implements the traffic regulators at the heart of the
// paper: the classical leaky bucket, Cruz's (σ, ρ) regulator, and the
// paper's novel (σ, ρ, λ) duty-cycle regulator, plus the round-robin
// stagger scheduler that interleaves the working periods of the K
// regulators at one end host.
//
// All regulators are event-driven shapers on a des.Engine: packets enter
// through Enqueue and conformant packets leave through the output callback
// in FIFO order per flow.
package regulator

import (
	"repro/internal/des"
	"repro/internal/traffic"
)

// Regulator is the common shaper interface.
type Regulator interface {
	// Enqueue submits a packet for shaping. Must be called from engine
	// context (inside an event) so that Now() is meaningful.
	Enqueue(p traffic.Packet)
	// Backlog reports the bits currently held back.
	Backlog() float64
	// QueueLen reports the packets currently held back.
	QueueLen() int
	// Name identifies the regulator model.
	Name() string
}

// fifo is a slice-backed packet queue with amortised O(1) operations.
type fifo struct {
	buf  []traffic.Packet
	head int
	bits float64
}

func (q *fifo) push(p traffic.Packet) {
	q.buf = append(q.buf, p)
	q.bits += p.Size
}

func (q *fifo) empty() bool { return q.head >= len(q.buf) }

func (q *fifo) len() int { return len(q.buf) - q.head }

func (q *fifo) peek() traffic.Packet { return q.buf[q.head] }

func (q *fifo) pop() traffic.Packet {
	p := q.buf[q.head]
	q.head++
	q.bits -= p.Size
	if q.head == len(q.buf) {
		// Empty: rewind for free. Regulators usually drain as fast as
		// packets arrive, so without this the buffer creeps toward the
		// compaction threshold below and every queue in the session pays
		// a ~64-entry capacity it never uses.
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 >= len(q.buf) {
		// Reclaim space once the consumed prefix dominates.
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return p
}

// LeakyBucket drains its queue at a fixed rate ρ regardless of input
// burstiness — the rigid classical scheme the paper contrasts against
// (Section I: "enforces a rigid output pattern at the average rate").
type LeakyBucket struct {
	eng  *des.Engine
	rho  float64 // bits/second
	out  func(traffic.Packet)
	q    fifo
	busy bool
	done func() // stored serve-completion callback (no per-packet closure)
}

// NewLeakyBucket returns a leaky bucket draining at rho bits/second.
func NewLeakyBucket(eng *des.Engine, rho float64, out func(traffic.Packet)) *LeakyBucket {
	if rho <= 0 {
		panic("regulator: leaky bucket rate must be positive")
	}
	if out == nil {
		panic("regulator: nil output")
	}
	l := &LeakyBucket{eng: eng, rho: rho, out: out}
	l.done = func() {
		p := l.q.pop()
		l.out(p)
		l.serve()
	}
	return l
}

// Name implements Regulator.
func (l *LeakyBucket) Name() string { return "leaky-bucket" }

// Backlog implements Regulator.
func (l *LeakyBucket) Backlog() float64 { return l.q.bits }

// QueueLen implements Regulator.
func (l *LeakyBucket) QueueLen() int { return l.q.len() }

// Enqueue implements Regulator.
func (l *LeakyBucket) Enqueue(p traffic.Packet) {
	l.q.push(p)
	if !l.busy {
		l.serve()
	}
}

func (l *LeakyBucket) serve() {
	if l.q.empty() {
		l.busy = false
		return
	}
	l.busy = true
	// The bucket emits the packet after serialising it at ρ; the head stays
	// queued until the stored completion callback pops it.
	l.eng.ScheduleIn(des.Seconds(l.q.peek().Size/l.rho), l.done)
}

// SigmaRho is Cruz's (σ, ρ) regulator: a token bucket with depth σ bits
// refilled at ρ bits/second. A packet departs as soon as the bucket holds
// its size in tokens, so bursts up to σ pass unshaped while the long-run
// output never exceeds σ + ρ·t over any interval of length t.
type SigmaRho struct {
	eng *des.Engine
	// Sigma and Rho are the envelope parameters (bits, bits/second).
	Sigma, Rho float64
	out        func(traffic.Packet)

	q          fifo
	tokens     float64
	lastUpdate des.Time
	serving    bool
	snapArg    uint32    // component slot for snapshot event tags
	retry      func()    // stored token-wait callback
	retryEv    des.Event // pending token-wait event (for Detach)
}

// NewSigmaRho returns a (σ, ρ) regulator starting with a full bucket.
func NewSigmaRho(eng *des.Engine, sigma, rho float64, out func(traffic.Packet)) *SigmaRho {
	if sigma < 0 || rho <= 0 {
		panic("regulator: invalid (σ,ρ) parameters")
	}
	if out == nil {
		panic("regulator: nil output")
	}
	s := &SigmaRho{eng: eng, Sigma: sigma, Rho: rho, out: out, tokens: sigma}
	s.retry = func() {
		s.serving = false
		s.serve()
	}
	return s
}

// Name implements Regulator.
func (s *SigmaRho) Name() string { return "sigma-rho" }

// Backlog implements Regulator.
func (s *SigmaRho) Backlog() float64 { return s.q.bits }

// QueueLen implements Regulator.
func (s *SigmaRho) QueueLen() int { return s.q.len() }

// Tokens returns the current bucket level (after refreshing to Now).
func (s *SigmaRho) Tokens() float64 {
	s.refill()
	return s.tokens
}

func (s *SigmaRho) refill() {
	now := s.eng.Now()
	if now > s.lastUpdate {
		// The bucket cap stretches to the head packet when that packet is
		// larger than σ, so oversized packets still eventually conform
		// (the effective envelope is (σ + L_max, ρ), the usual packetised
		// form of Cruz's fluid regulator).
		cap := s.Sigma
		if !s.q.empty() && s.q.peek().Size > cap {
			cap = s.q.peek().Size
		}
		s.tokens += s.Rho * (now - s.lastUpdate).Seconds()
		if s.tokens > cap {
			s.tokens = cap
		}
		s.lastUpdate = now
	}
}

// Enqueue implements Regulator.
func (s *SigmaRho) Enqueue(p traffic.Packet) {
	s.q.push(p)
	if !s.serving {
		s.serve()
	}
}

func (s *SigmaRho) serve() {
	s.refill()
	for !s.q.empty() {
		need := s.q.peek().Size
		if s.tokens+1e-9 >= need {
			s.tokens -= need
			p := s.q.pop()
			s.out(p)
			continue
		}
		// Wait until the bucket accumulates enough tokens.
		wait := des.Seconds((need - s.tokens) / s.Rho)
		if wait < 1 {
			wait = 1
		}
		s.serving = true
		s.retryEv = s.eng.ScheduleInKind(wait, des.KindSRRetry, s.snapArg, s.retry)
		return
	}
	s.serving = false
}

// Detach takes the regulator permanently out of service: the pending
// token-wait (if any) is cancelled and the backlog abandoned. It returns
// the number of queued packets dropped, so the control plane can account
// them as lost when a forwarder departs.
func (s *SigmaRho) Detach() int {
	s.eng.Cancel(s.retryEv)
	s.retryEv = des.Event{}
	s.serving = false
	return s.q.len()
}
