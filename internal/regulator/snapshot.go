package regulator

import (
	"repro/internal/des"
	"repro/internal/snap"
	"repro/internal/traffic"
)

// Checkpoint support. Envelope parameters and output wiring are
// construction-time (the restored session recreates the regulator with
// identical arguments); Snapshot/Restore cover the mutable words, and the
// Restore* event methods re-schedule the serialized pending events with
// the original (at, prio) stamps during replay.

// snapshot appends the queue's live packets and exact bit total. The head
// index is memory layout, not semantics, so the restored queue starts
// compacted.
func (q *fifo) snapshot(w *snap.Writer) {
	w.Len(q.len())
	for _, p := range q.buf[q.head:] {
		p.Snapshot(w)
	}
	w.F64(q.bits)
}

func (q *fifo) restore(r *snap.Reader) {
	n := r.Len()
	q.buf = q.buf[:0]
	q.head = 0
	for i := 0; i < n; i++ {
		q.buf = append(q.buf, traffic.RestorePacket(r))
	}
	q.bits = r.F64()
}

// SetSnapArg registers the regulator's slot in the session's component
// registry; its pending events carry it so a restore can route each
// serialized event back to its component.
func (s *SigmaRho) SetSnapArg(arg uint32) { s.snapArg = arg }

// Snapshot appends the regulator's mutable state to the open record.
func (s *SigmaRho) Snapshot(w *snap.Writer) {
	s.q.snapshot(w)
	w.F64(s.tokens)
	w.I64(int64(s.lastUpdate))
	w.Bool(s.serving)
}

// Restore overwrites the regulator's mutable state from the open record.
func (s *SigmaRho) Restore(r *snap.Reader) {
	s.q.restore(r)
	s.tokens = r.F64()
	s.lastUpdate = des.Time(r.I64())
	s.serving = r.Bool()
}

// RestoreRetry re-schedules the serialized token-wait event.
func (s *SigmaRho) RestoreRetry(at, prio des.Time) {
	s.retryEv = s.eng.SchedulePrioKind(at, prio, des.KindSRRetry, s.snapArg, s.retry)
}

// SetSnapArg registers the regulator's slot in the session's component
// registry (see SigmaRho.SetSnapArg).
func (r *SRL) SetSnapArg(arg uint32) { r.snapArg = arg }

// Snapshot appends the regulator's mutable state to the open record.
func (r *SRL) Snapshot(w *snap.Writer) {
	r.q.snapshot(w)
	w.Bool(r.on)
	w.Bool(r.transmitting)
	w.Bool(r.cycling)
	w.Bool(r.stopCycle)
	w.F64(r.emittedBits)
	w.I64(int64(r.onSince))
	w.I64(int64(r.onTotal))
}

// Restore overwrites the regulator's mutable state from the open record.
func (r *SRL) Restore(sr *snap.Reader) {
	r.q.restore(sr)
	r.on = sr.Bool()
	r.transmitting = sr.Bool()
	r.cycling = sr.Bool()
	r.stopCycle = sr.Bool()
	r.emittedBits = sr.F64()
	r.onSince = des.Time(sr.I64())
	r.onTotal = des.Duration(sr.I64())
}

// RestoreDone re-schedules the serialized transmit-completion event.
func (r *SRL) RestoreDone(at, prio des.Time) {
	r.eng.SchedulePrioKind(at, prio, des.KindSRLDone, r.snapArg, r.done)
}

// RestoreOn re-schedules the serialized working-period-start event.
func (r *SRL) RestoreOn(at, prio des.Time) {
	r.onEv = r.eng.SchedulePrioKind(at, prio, des.KindSRLOn, r.snapArg, r.onPhaseFn)
}

// RestoreOff re-schedules the serialized vacation-start event.
func (r *SRL) RestoreOff(at, prio des.Time) {
	r.onEv = r.eng.SchedulePrioKind(at, prio, des.KindSRLOff, r.snapArg, r.offPhaseFn)
}
