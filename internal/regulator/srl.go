package regulator

import (
	"repro/internal/des"
	"repro/internal/traffic"
)

// SRL is the paper's (σ, ρ, λ) regulator (Section III, Fig. 2): an on/off
// duty-cycle shaper. During the working period W the regulator is
// work-conserving and drains its queue at the full link capacity C; during
// the vacation period V it blocks all output. The parameters follow Eq. (1)
// and the surrounding analysis:
//
//	λ = C/(C−ρ)        (paper normalises C=1 ⇒ λ = 1/(1−ρ))
//	W = σ/(C−ρ)        (working period)
//	V = σ/ρ            (vacation period)
//	P = W + V = λσ/ρ   (regulator period)
//
// The long-run output rate is exactly W·C/P = ρ, so the duty cycle
// preserves stability while bounding each flow's hogging of the output
// link to W time units per period — the property that lets K staggered
// regulators smooth simultaneous bursts.
type SRL struct {
	eng *des.Engine
	// Sigma, Rho, C are the flow envelope and the link capacity (bits,
	// bits/second, bits/second).
	Sigma, Rho, C float64
	out           func(traffic.Packet)

	q            fifo
	on           bool
	transmitting bool
	cycling      bool
	stopCycle    bool
	onEv         des.Event
	snapArg      uint32 // component slot for snapshot event tags
	done         func() // stored transmit-completion callback
	onPhaseFn    func() // stored duty-cycle callbacks (parameters are
	offPhaseFn   func() // immutable, so they are built once in NewSRL)

	// instrumentation
	emittedBits float64
	onSince     des.Time
	onTotal     des.Duration
}

// NewSRL returns a (σ, ρ, λ) regulator. The duty cycle is not started:
// call StartCycle (self-timed) or drive On/Off from a Stagger scheduler.
// It panics unless 0 < ρ < C and σ > 0.
func NewSRL(eng *des.Engine, sigma, rho, c float64, out func(traffic.Packet)) *SRL {
	if sigma <= 0 || rho <= 0 || c <= 0 || rho >= c {
		panic("regulator: SRL requires σ>0 and 0<ρ<C")
	}
	if out == nil {
		panic("regulator: nil output")
	}
	r := &SRL{eng: eng, Sigma: sigma, Rho: rho, C: c, out: out}
	r.done = func() {
		r.transmitting = false
		p := r.q.pop()
		r.emittedBits += p.Size
		r.out(p)
		if r.on {
			r.serve()
		}
	}
	w, v := r.WorkPeriod(), r.Vacation()
	r.onPhaseFn = func() {
		if r.stopCycle {
			return
		}
		r.SetOn(true)
		r.onEv = r.eng.ScheduleInKind(w, des.KindSRLOff, r.snapArg, r.offPhaseFn)
	}
	r.offPhaseFn = func() {
		if r.stopCycle {
			return
		}
		r.SetOn(false)
		r.onEv = r.eng.ScheduleInKind(v, des.KindSRLOn, r.snapArg, r.onPhaseFn)
	}
	return r
}

// Lambda returns the control factor λ = C/(C−ρ).
func (r *SRL) Lambda() float64 { return r.C / (r.C - r.Rho) }

// WorkPeriod returns W = σ/(C−ρ) as a simulation duration.
func (r *SRL) WorkPeriod() des.Duration { return des.Seconds(r.Sigma / (r.C - r.Rho)) }

// Vacation returns V = σ/ρ as a simulation duration.
func (r *SRL) Vacation() des.Duration { return des.Seconds(r.Sigma / r.Rho) }

// Period returns P = W + V = λσ/ρ as a simulation duration.
func (r *SRL) Period() des.Duration { return r.WorkPeriod() + r.Vacation() }

// Name implements Regulator.
func (r *SRL) Name() string { return "sigma-rho-lambda" }

// Backlog implements Regulator.
func (r *SRL) Backlog() float64 { return r.q.bits }

// QueueLen implements Regulator.
func (r *SRL) QueueLen() int { return r.q.len() }

// On reports whether the regulator is currently in its working state.
func (r *SRL) On() bool { return r.on }

// Transmitting reports whether a packet is mid-serialisation. After a
// Detach it stays true until the non-preempted packet completes — a
// caller tearing down the output path can use it to account that
// packet's output as lost too.
func (r *SRL) Transmitting() bool { return r.transmitting }

// EmittedBits returns the cumulative output.
func (r *SRL) EmittedBits() float64 { return r.emittedBits }

// OnTime returns the cumulative time spent in the working state. Divided
// by elapsed time it converges to the duty ratio W/P = ρ/C in steady state.
func (r *SRL) OnTime() des.Duration {
	total := r.onTotal
	if r.on {
		total += r.eng.Now() - r.onSince
	}
	return total
}

// Enqueue implements Regulator.
func (r *SRL) Enqueue(p traffic.Packet) {
	r.q.push(p)
	if r.on && !r.transmitting {
		r.serve()
	}
}

// SetOn switches the regulator between working and vacation states.
// Switching off is non-preemptive: a packet mid-transmission completes.
func (r *SRL) SetOn(on bool) {
	if on == r.on {
		return
	}
	r.on = on
	if on {
		r.onSince = r.eng.Now()
		if !r.transmitting {
			r.serve()
		}
	} else {
		r.onTotal += r.eng.Now() - r.onSince
	}
}

func (r *SRL) serve() {
	if !r.on || r.q.empty() {
		return
	}
	r.transmitting = true
	r.eng.ScheduleInKind(des.Seconds(r.q.peek().Size/r.C), des.KindSRLDone, r.snapArg, r.done)
}

// StartCycle begins the self-timed duty cycle with the given phase offset:
// the regulator waits `offset`, then alternates W on / V off forever (or
// until StopCycle). A Stagger scheduler uses offsets Σ_{j<i} W_j so the K
// working periods interleave round-robin, which is the paper's "each
// regulator works for its flow in turn".
func (r *SRL) StartCycle(offset des.Duration) {
	if r.cycling {
		panic("regulator: SRL cycle already started")
	}
	r.cycling = true
	r.stopCycle = false
	r.onEv = r.eng.ScheduleInKind(offset, des.KindSRLOn, r.snapArg, r.onPhaseFn)
}

// StartCyclePhased begins the duty cycle mid-phase, as if it had been
// running since simulation time zero with the given offset: the regulator
// enters the on/off state the global schedule prescribes for Now and
// continues from there. At time zero it is StartCycle exactly; mid-run it
// is how the control plane re-staggers a freshly attached regulator so
// its working periods interleave with siblings that have been cycling
// since the start — attach order and attach time drop out of the phase.
func (r *SRL) StartCyclePhased(offset des.Duration) {
	now := r.eng.Now()
	if now <= offset {
		r.StartCycle(offset - now)
		return
	}
	if r.cycling {
		panic("regulator: SRL cycle already started")
	}
	r.cycling = true
	r.stopCycle = false
	w, p := r.WorkPeriod(), r.Period()
	pos := (now - offset) % p
	if pos < w {
		// Inside a working period: turn on and finish it.
		r.SetOn(true)
		r.onEv = r.eng.ScheduleInKind(w-pos, des.KindSRLOff, r.snapArg, r.offPhaseFn)
	} else {
		// Inside a vacation: stay off until the next working period.
		r.SetOn(false)
		r.onEv = r.eng.ScheduleInKind(p-pos, des.KindSRLOn, r.snapArg, r.onPhaseFn)
	}
}

// StopCycle halts the duty cycle, leaving the regulator in its current
// state.
func (r *SRL) StopCycle() {
	r.stopCycle = true
	r.cycling = false
	r.eng.Cancel(r.onEv)
	r.onEv = des.Event{}
}

// Detach takes the regulator permanently out of service: the duty cycle
// stops, the gate closes, and no further packets are emitted — except a
// packet already mid-transmission, which completes (switching is
// non-preemptive). It returns the number of queued packets abandoned, so
// the control plane can account them as lost during repair. Sibling
// regulators are untouched: their phases come from the global stagger
// schedule, not from this regulator's presence.
func (r *SRL) Detach() int {
	if r.cycling {
		r.StopCycle()
	}
	r.SetOn(false)
	dropped := r.q.len()
	if r.transmitting {
		dropped-- // the in-flight packet still departs
	}
	return dropped
}

// Stagger coordinates the K (σ, ρ, λ) regulators of one end host: it
// starts each regulator's duty cycle with a phase offset equal to the sum
// of the preceding regulators' working periods. For K homogeneous flows
// near saturation (ρ → C/K) the vacation V = σ/ρ ≈ (K−1)·W, so the
// schedule degenerates to perfect round-robin — exactly the physical
// argument of Section III. For heterogeneous flows the periods differ and
// occasional overlaps are resolved downstream by the general MUX.
type Stagger struct {
	regs []*SRL
}

// NewStagger builds a scheduler over the given regulators (all must share
// an engine). It panics on an empty set.
func NewStagger(regs ...*SRL) *Stagger {
	if len(regs) == 0 {
		panic("regulator: stagger needs at least one regulator")
	}
	return &Stagger{regs: regs}
}

// Start launches all duty cycles with interleaved phases.
func (s *Stagger) Start() {
	var offset des.Duration
	for _, r := range s.regs {
		r.StartCycle(offset)
		offset += r.WorkPeriod()
	}
}

// StartAligned launches all duty cycles with zero phase offset — the
// "no stagger" ablation where every flow's working period begins
// simultaneously and bursts collide at the MUX.
func (s *Stagger) StartAligned() {
	for _, r := range s.regs {
		r.StartCycle(0)
	}
}

// Stop halts every duty cycle.
func (s *Stagger) Stop() {
	for _, r := range s.regs {
		r.StopCycle()
	}
}

// Regulators returns the scheduled regulators in phase order.
func (s *Stagger) Regulators() []*SRL { return s.regs }
