package regulator

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/traffic"
)

// collect runs src through build's regulator until `dur`, returning output
// packets with their emission times.
type emission struct {
	p  traffic.Packet
	at des.Time
}

func drive(src traffic.Source, dur float64, build func(eng *des.Engine, out func(traffic.Packet)) Regulator) []emission {
	eng := des.New()
	var got []emission
	reg := build(eng, func(p traffic.Packet) { got = append(got, emission{p, eng.Now()}) })
	until := des.Seconds(dur)
	src.Start(eng, until, reg.Enqueue)
	eng.RunUntil(until + des.Seconds(30)) // drain time
	return got
}

func totalBits(es []emission) float64 {
	t := 0.0
	for _, e := range es {
		t += e.p.Size
	}
	return t
}

func TestLeakyBucketDrainsAtRho(t *testing.T) {
	// Greedy burst into a 50kbps bucket: output must be paced at exactly ρ.
	src := traffic.NewGreedy(0, 50_000, 50_000, 1000)
	got := drive(src, 2, func(eng *des.Engine, out func(traffic.Packet)) Regulator {
		return NewLeakyBucket(eng, 50_000, out)
	})
	if len(got) < 10 {
		t.Fatalf("only %d emissions", len(got))
	}
	gap := des.Seconds(1000.0 / 50_000)
	for i := 1; i < 50; i++ {
		if d := got[i].at - got[i-1].at; d != gap {
			t.Fatalf("emission gap %d = %v, want %v", i, d, gap)
		}
	}
}

func TestLeakyBucketPreservesOrderAndCount(t *testing.T) {
	src := traffic.NewPoisson(0, 80_000, 1000, 3)
	got := drive(src, 5, func(eng *des.Engine, out func(traffic.Packet)) Regulator {
		return NewLeakyBucket(eng, 100_000, out)
	})
	for i := 1; i < len(got); i++ {
		if got[i].p.ID != got[i-1].p.ID+1 {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestLeakyBucketValidation(t *testing.T) {
	eng := des.New()
	for i, fn := range []func(){
		func() { NewLeakyBucket(eng, 0, func(traffic.Packet) {}) },
		func() { NewLeakyBucket(eng, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSigmaRhoPassesBurstUpToSigma(t *testing.T) {
	// A burst no larger than σ passes with zero delay.
	eng := des.New()
	var got []emission
	reg := NewSigmaRho(eng, 10_000, 1000, func(p traffic.Packet) {
		got = append(got, emission{p, eng.Now()})
	})
	eng.Schedule(des.Second, func() {
		for i := 0; i < 10; i++ {
			reg.Enqueue(traffic.Packet{ID: uint64(i), Size: 1000, CreatedAt: eng.Now()})
		}
	})
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("emitted %d", len(got))
	}
	for _, e := range got {
		if e.at != des.Second {
			t.Fatalf("burst packet delayed to %v", e.at)
		}
	}
}

func TestSigmaRhoDelaysExcessBurst(t *testing.T) {
	// A burst of 2σ: the second half is paced out at ρ.
	eng := des.New()
	var got []emission
	reg := NewSigmaRho(eng, 5_000, 1000, func(p traffic.Packet) {
		got = append(got, emission{p, eng.Now()})
	})
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			reg.Enqueue(traffic.Packet{ID: uint64(i), Size: 1000, CreatedAt: eng.Now()})
		}
	})
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("emitted %d", len(got))
	}
	// First 5 immediate, then one per 1000/1000 = 1s.
	for i := 0; i < 5; i++ {
		if got[i].at != 0 {
			t.Fatalf("packet %d at %v", i, got[i].at)
		}
	}
	for i := 5; i < 10; i++ {
		want := des.Seconds(float64(i - 4))
		if got[i].at != want {
			t.Fatalf("packet %d at %v, want %v", i, got[i].at, want)
		}
	}
}

func TestSigmaRhoOutputConforms(t *testing.T) {
	// Whatever the input, the output must satisfy (σ + MTU, ρ).
	src := traffic.PaperVideo(0, 9)
	sigma, rho := 80_000.0, 1.2*traffic.VideoRate
	meter := traffic.NewMeter(rho)
	eng := des.New()
	reg := NewSigmaRho(eng, sigma, rho, func(p traffic.Packet) {
		meter.Observe(eng.Now(), p.Size)
	})
	until := des.Seconds(20)
	src.Start(eng, until, reg.Enqueue)
	eng.RunUntil(until + des.Seconds(60))
	if !meter.Conforms(sigma + 10_000) {
		t.Fatalf("output σ̂ = %v exceeds σ+MTU = %v", meter.Sigma(), sigma+10_000)
	}
}

func TestSigmaRhoOversizedPacket(t *testing.T) {
	// A packet bigger than σ must still get through eventually.
	eng := des.New()
	var got []emission
	reg := NewSigmaRho(eng, 1000, 1000, func(p traffic.Packet) {
		got = append(got, emission{p, eng.Now()})
	})
	eng.Schedule(0, func() {
		reg.Enqueue(traffic.Packet{ID: 1, Size: 5000})
	})
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("oversized packet never emitted")
	}
	// Needs 4000 extra bits at 1000 bps = 4s.
	if got[0].at != des.Seconds(4) {
		t.Fatalf("oversized packet at %v", got[0].at)
	}
}

func TestSigmaRhoTokensCapAtSigma(t *testing.T) {
	eng := des.New()
	reg := NewSigmaRho(eng, 2000, 1000, func(traffic.Packet) {})
	eng.Schedule(des.Seconds(100), func() {
		if tok := reg.Tokens(); tok != 2000 {
			t.Fatalf("tokens = %v after long idle, want σ", tok)
		}
	})
	eng.Run()
}

func TestSigmaRhoValidation(t *testing.T) {
	eng := des.New()
	for i, fn := range []func(){
		func() { NewSigmaRho(eng, -1, 1, func(traffic.Packet) {}) },
		func() { NewSigmaRho(eng, 1, 0, func(traffic.Packet) {}) },
		func() { NewSigmaRho(eng, 1, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFIFOQueueCompaction(t *testing.T) {
	var q fifo
	for i := 0; i < 1000; i++ {
		q.push(traffic.Packet{ID: uint64(i), Size: 1})
	}
	for i := 0; i < 1000; i++ {
		p := q.pop()
		if p.ID != uint64(i) {
			t.Fatalf("pop %d returned %d", i, p.ID)
		}
	}
	if !q.empty() || q.len() != 0 || q.bits != 0 {
		t.Fatal("queue not empty after draining")
	}
	// Interleaved push/pop exercising compaction.
	for i := 0; i < 500; i++ {
		q.push(traffic.Packet{ID: uint64(i), Size: 2})
		if i%2 == 1 {
			q.pop()
		}
	}
	if q.len() != 250 {
		t.Fatalf("len = %d", q.len())
	}
	if q.bits != 500 {
		t.Fatalf("bits = %v", q.bits)
	}
}

func TestLeakyBucketThroughputUnderOverload(t *testing.T) {
	// Input at 2ρ: output rate must clamp at ρ.
	src := traffic.NewCBR(0, 100_000, 1000)
	got := drive(src, 10, func(eng *des.Engine, out func(traffic.Packet)) Regulator {
		return NewLeakyBucket(eng, 50_000, out)
	})
	// drive() adds 30s of drain, so measure the emission span directly.
	span := (got[len(got)-1].at - got[0].at).Seconds()
	rate := totalBits(got) / span
	if math.Abs(rate-50_000)/50_000 > 0.01 {
		t.Fatalf("overloaded bucket output rate = %v", rate)
	}
}
