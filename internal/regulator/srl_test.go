package regulator

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/traffic"
)

func TestSRLDutyCycleIdentities(t *testing.T) {
	eng := des.New()
	r := NewSRL(eng, 10_000, 250_000, 1_000_000, func(traffic.Packet) {})
	// λ = C/(C−ρ) = 1e6/750e3 = 4/3
	if math.Abs(r.Lambda()-4.0/3.0) > 1e-12 {
		t.Fatalf("λ = %v", r.Lambda())
	}
	// W = σ/(C−ρ) = 10000/750000 s
	if got, want := r.WorkPeriod(), des.Seconds(10_000.0/750_000); got != want {
		t.Fatalf("W = %v, want %v", got, want)
	}
	// V = σ/ρ = 10000/250000 = 40ms
	if got, want := r.Vacation(), des.Seconds(0.04); got != want {
		t.Fatalf("V = %v, want %v", got, want)
	}
	// P = λσ/ρ
	wantP := des.Seconds(r.Lambda() * 10_000 / 250_000)
	if got := r.Period(); got < wantP-1 || got > wantP+1 {
		t.Fatalf("P = %v, want %v", got, wantP)
	}
}

// Property (Eq. 1 consequences): for any valid (σ, ρ, C), V = σ/ρ and
// P = λσ/ρ and the duty ratio W/P equals ρ/C.
func TestQuickSRLPeriodIdentities(t *testing.T) {
	eng := des.New()
	f := func(a, b uint16) bool {
		sigma := 1 + float64(a)
		// ρ strictly inside (0, C)
		c := 1_000_000.0
		rho := c * (0.05 + 0.9*float64(b)/65535.0)
		r := NewSRL(eng, sigma, rho, c, func(traffic.Packet) {})
		w := r.WorkPeriod().Seconds()
		v := r.Vacation().Seconds()
		p := r.Period().Seconds()
		lam := r.Lambda()
		// W, V, P are des.Durations, truncated to whole nanoseconds, so
		// each identity holds only up to that quantisation: 1ns for the
		// single conversions, 2ns for the P sum, and for the duty ratio
		// W/P the propagated bound ~3ns/P (small σ at high ρ makes W a
		// few µs, where 1ns is far coarser than any relative epsilon).
		if math.Abs(v-sigma/rho) > 1.5e-9 {
			return false
		}
		if math.Abs(p-lam*sigma/rho) > 2.5e-9 {
			return false
		}
		duty := w / p
		return math.Abs(duty-rho/c) < 4e-9/p+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSRLNoOutputDuringVacation(t *testing.T) {
	eng := des.New()
	var emissions []des.Time
	r := NewSRL(eng, 10_000, 500_000, 1_000_000, func(traffic.Packet) {
		emissions = append(emissions, eng.Now())
	})
	// Feed a large standing queue, then run a few duty cycles.
	eng.Schedule(0, func() {
		for i := 0; i < 200; i++ {
			r.Enqueue(traffic.Packet{ID: uint64(i), Size: 1000})
		}
	})
	r.StartCycle(0)
	eng.RunUntil(des.Seconds(0.5))
	r.StopCycle()
	if len(emissions) == 0 {
		t.Fatal("no emissions")
	}
	w := r.WorkPeriod()
	p := r.Period()
	for _, at := range emissions {
		phase := at % p
		// Packets may complete right at the W boundary (non-preemptive
		// transmission started before the boundary, packet time = 1ms at C).
		slack := des.Seconds(1000 / 1_000_000.0)
		if phase > w+slack {
			t.Fatalf("emission at %v lands in vacation (phase %v > W %v)", at, phase, w)
		}
	}
}

func TestSRLLongRunRateIsRho(t *testing.T) {
	eng := des.New()
	var bits float64
	rho, c := 300_000.0, 1_000_000.0
	r := NewSRL(eng, 15_000, rho, c, func(p traffic.Packet) { bits += p.Size })
	// Saturate: big standing queue.
	eng.Schedule(0, func() {
		for i := 0; i < 40_000; i++ {
			r.Enqueue(traffic.Packet{ID: uint64(i), Size: 1000})
		}
	})
	r.StartCycle(0)
	dur := des.Seconds(60)
	eng.RunUntil(dur)
	r.StopCycle()
	rate := bits / dur.Seconds()
	if math.Abs(rate-rho)/rho > 0.03 {
		t.Fatalf("saturated SRL long-run output rate = %v, want ~%v", rate, rho)
	}
}

func TestSRLDrainsAtCapacityWhenOn(t *testing.T) {
	eng := des.New()
	var emissions []des.Time
	c := 1_000_000.0
	r := NewSRL(eng, 50_000, 100_000, c, func(p traffic.Packet) {
		emissions = append(emissions, eng.Now())
	})
	eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			r.Enqueue(traffic.Packet{ID: uint64(i), Size: 1000})
		}
		r.SetOn(true)
	})
	eng.Run()
	if len(emissions) != 20 {
		t.Fatalf("emitted %d", len(emissions))
	}
	gap := des.Seconds(1000 / c)
	for i := 1; i < len(emissions); i++ {
		if d := emissions[i] - emissions[i-1]; d != gap {
			t.Fatalf("on-state spacing %v, want %v (full capacity)", d, gap)
		}
	}
}

func TestSRLWorkConservingDuringOn(t *testing.T) {
	// Arrivals during an idle on-state leave immediately.
	eng := des.New()
	var at des.Time = -1
	r := NewSRL(eng, 10_000, 100_000, 1_000_000, func(p traffic.Packet) { at = eng.Now() })
	eng.Schedule(0, func() { r.SetOn(true) })
	arrive := des.Millisecond * 2
	eng.Schedule(arrive, func() { r.Enqueue(traffic.Packet{ID: 1, Size: 1000}) })
	eng.Run()
	want := arrive + des.Seconds(1000/1_000_000.0)
	if at != want {
		t.Fatalf("packet emitted at %v, want %v", at, want)
	}
}

func TestSRLNonPreemptiveOff(t *testing.T) {
	// A packet whose transmission spans the off switch still completes.
	eng := des.New()
	var done des.Time = -1
	c := 1000.0 // 1 bit/ms: 1000-bit packet takes 1s
	r := NewSRL(eng, 500, 100, c, func(p traffic.Packet) { done = eng.Now() })
	eng.Schedule(0, func() {
		r.Enqueue(traffic.Packet{ID: 1, Size: 1000})
		r.SetOn(true)
	})
	eng.Schedule(des.Millisecond*100, func() { r.SetOn(false) })
	eng.Run()
	if done != des.Second {
		t.Fatalf("mid-transmission packet finished at %v, want 1s", done)
	}
}

func TestSRLOnTimeTracksDutyRatio(t *testing.T) {
	eng := des.New()
	rho, c := 250_000.0, 1_000_000.0
	r := NewSRL(eng, 10_000, rho, c, func(traffic.Packet) {})
	r.StartCycle(0)
	dur := des.Seconds(10)
	eng.RunUntil(dur)
	r.StopCycle()
	frac := r.OnTime().Seconds() / dur.Seconds()
	if math.Abs(frac-rho/c) > 0.02 {
		t.Fatalf("on fraction = %v, want ~%v", frac, rho/c)
	}
}

// Lemma 1 (backlog form): with conformant (σ, ρ) input, the SRL backlog
// never exceeds (1+λ)σ plus one packet.
func TestSRLBacklogBoundLemma1(t *testing.T) {
	eng := des.New()
	sigma, rho, c := 20_000.0, 200_000.0, 1_000_000.0
	r := NewSRL(eng, sigma, rho, c, func(traffic.Packet) {})
	src := traffic.NewGreedy(0, sigma, rho, 1000)
	maxBacklog := 0.0
	probe := des.NewTicker(eng, des.Millisecond, func() {
		if b := r.Backlog(); b > maxBacklog {
			maxBacklog = b
		}
	})
	until := des.Seconds(30)
	src.Start(eng, until, r.Enqueue)
	r.StartCycle(0)
	eng.RunUntil(until)
	probe.Stop()
	r.StopCycle()
	bound := (1+r.Lambda())*sigma + 1000
	if maxBacklog > bound {
		t.Fatalf("backlog %v exceeds Lemma 1 bound %v", maxBacklog, bound)
	}
}

// Lemma 1 (delay form): with conformant input, per-packet delay through
// the regulator stays below 2λσ/ρ plus one transmission time.
func TestSRLDelayBoundLemma1(t *testing.T) {
	eng := des.New()
	sigma, rho, c := 10_000.0, 300_000.0, 1_000_000.0
	var worst des.Duration
	r := NewSRL(eng, sigma, rho, c, func(p traffic.Packet) {
		if d := p.Delay(eng.Now()); d > worst {
			worst = d
		}
	})
	src := traffic.NewGreedy(0, sigma, rho, 1000)
	until := des.Seconds(30)
	src.Start(eng, until, r.Enqueue)
	r.StartCycle(0)
	eng.RunUntil(until + des.Seconds(5))
	r.StopCycle()
	bound := des.Seconds(2*r.Lambda()*sigma/rho + 1000/c)
	if worst > bound {
		t.Fatalf("worst delay %v exceeds Lemma 1 bound %v", worst, bound)
	}
	if worst == 0 {
		t.Fatal("no packets measured")
	}
}

func TestSRLValidation(t *testing.T) {
	eng := des.New()
	out := func(traffic.Packet) {}
	for i, fn := range []func(){
		func() { NewSRL(eng, 0, 1, 2, out) },
		func() { NewSRL(eng, 1, 0, 2, out) },
		func() { NewSRL(eng, 1, 2, 2, out) }, // rho == C
		func() { NewSRL(eng, 1, 3, 2, out) }, // rho > C
		func() { NewSRL(eng, 1, 1, 2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSRLDoubleStartPanics(t *testing.T) {
	eng := des.New()
	r := NewSRL(eng, 1000, 100, 1000_0, func(traffic.Packet) {})
	r.StartCycle(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double StartCycle did not panic")
		}
	}()
	r.StartCycle(0)
}

func TestSRLStopCycleFreezes(t *testing.T) {
	eng := des.New()
	r := NewSRL(eng, 10_000, 100_000, 1_000_000, func(traffic.Packet) {})
	r.StartCycle(0)
	eng.RunUntil(des.Millisecond)
	r.StopCycle()
	wasOn := r.On()
	eng.RunUntil(des.Seconds(5))
	if r.On() != wasOn {
		t.Fatal("state changed after StopCycle")
	}
}

func TestStaggerInterleavesWorkingPeriods(t *testing.T) {
	eng := des.New()
	c := 1_000_000.0
	rho := 250_000.0 // K=4 at saturation: V = 3W exactly when σ equal
	sigma := 10_000.0
	var regs []*SRL
	for i := 0; i < 4; i++ {
		regs = append(regs, NewSRL(eng, sigma, rho, c, func(traffic.Packet) {}))
	}
	st := NewStagger(regs...)
	st.Start()
	// Probe: at any instant at most one regulator is on (homogeneous
	// saturated case ⇒ perfect round-robin).
	violations := 0
	probe := des.NewTicker(eng, des.Microsecond*500, func() {
		on := 0
		for _, r := range regs {
			if r.On() {
				on++
			}
		}
		if on > 1 {
			violations++
		}
	})
	eng.RunUntil(des.Seconds(2))
	probe.Stop()
	st.Stop()
	if violations > 0 {
		t.Fatalf("%d instants had >1 regulator on", violations)
	}
}

func TestStaggerAlignedCollides(t *testing.T) {
	eng := des.New()
	c := 1_000_000.0
	var regs []*SRL
	for i := 0; i < 3; i++ {
		regs = append(regs, NewSRL(eng, 10_000, 300_000, c, func(traffic.Packet) {}))
	}
	st := NewStagger(regs...)
	st.StartAligned()
	sawCollision := false
	probe := des.NewTicker(eng, des.Microsecond*500, func() {
		on := 0
		for _, r := range regs {
			if r.On() {
				on++
			}
		}
		if on > 1 {
			sawCollision = true
		}
	})
	eng.RunUntil(des.Seconds(1))
	probe.Stop()
	st.Stop()
	if !sawCollision {
		t.Fatal("aligned start never collided — stagger ablation is vacuous")
	}
}

func TestStaggerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty stagger did not panic")
		}
	}()
	NewStagger()
}

func TestStaggerRegulatorsAccessor(t *testing.T) {
	eng := des.New()
	a := NewSRL(eng, 1000, 100, 10_000, func(traffic.Packet) {})
	b := NewSRL(eng, 1000, 100, 10_000, func(traffic.Packet) {})
	st := NewStagger(a, b)
	rs := st.Regulators()
	if len(rs) != 2 || rs[0] != a || rs[1] != b {
		t.Fatal("Regulators() mismatch")
	}
}

func BenchmarkSigmaRhoShaping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := des.New()
		reg := NewSigmaRho(eng, 50_000, traffic.VideoRate, func(traffic.Packet) {})
		src := traffic.PaperVideo(0, uint64(i))
		until := des.Seconds(1)
		src.Start(eng, until, reg.Enqueue)
		eng.RunUntil(until + des.Seconds(1))
	}
}

func BenchmarkSRLShaping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := des.New()
		reg := NewSRL(eng, 50_000, traffic.VideoRate, 4*traffic.VideoRate, func(traffic.Packet) {})
		src := traffic.PaperVideo(0, uint64(i))
		until := des.Seconds(1)
		src.Start(eng, until, reg.Enqueue)
		reg.StartCycle(0)
		eng.RunUntil(until + des.Seconds(1))
		reg.StopCycle()
	}
}
