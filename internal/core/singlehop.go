package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/netsim"
	"repro/internal/regulator"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// SingleHopConfig parameterises one point of Simulation I (Fig. 3/4):
// K real-time flows feed one (σ, ρ, λ)/(σ, ρ)-regulated general MUX whose
// output crosses a short link to the sink.
type SingleHopConfig struct {
	// Mix selects the three flows (Fig. 4's audio/video/heterogeneous).
	Mix traffic.Mix
	// Load is the aggregate normalised input rate Σρᵢ/C ∈ (0, 1).
	Load float64
	// Scheme must be a regulated or adaptive scheme; Simulation I has no
	// tree, so SchemeCapacityAware is rejected.
	Scheme Scheme
	// Duration of traffic generation. Default 36 s (three extremal periods).
	Duration des.Duration
	// Seed drives the VBR models.
	Seed uint64
	// TrafficSeed separately seeds the workload; unset means "use Seed",
	// and an explicitly set value — including 0 — is honoured (see
	// Config.TrafficSeed).
	TrafficSeed SeedOpt
	// EnvelopeMargin and EnvelopeHorizonSec as in Config.
	EnvelopeMargin     float64
	EnvelopeHorizonSec float64
	// Discipline of the general MUX. Default LIFO (general-MUX adversary).
	Discipline mux.Discipline
	// StaggerAligned disables phase offsets (ablation).
	StaggerAligned bool
	// LinkDelay is the propagation to the sink. Default 1 ms.
	LinkDelay des.Duration
	// Workload selects extremal (default) or VBR flows.
	Workload Workload
	// BurstSec sets the extremal flows' σ in seconds of their ρ.
	// Default 0.15.
	BurstSec float64
	// Specs optionally overrides envelope measurement.
	Specs []FlowSpec
}

func (c *SingleHopConfig) fillDefaults() {
	if c.Load <= 0 || c.Load >= 1 {
		panic(fmt.Sprintf("core: load %v outside (0,1)", c.Load))
	}
	if c.Scheme == SchemeCapacityAware {
		panic("core: Simulation I requires a regulated scheme")
	}
	if c.Duration == 0 {
		// Three extremal periods; enough for the high-load busy period to
		// play out fully and repeat.
		c.Duration = 36 * des.Second
	}
	if c.EnvelopeMargin == 0 {
		c.EnvelopeMargin = DefaultEnvelopeMargin
	}
	if c.EnvelopeHorizonSec == 0 {
		c.EnvelopeHorizonSec = DefaultEnvelopeHorizonSec
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = des.Millisecond
	}
	if c.BurstSec == 0 {
		c.BurstSec = DefaultBurstSec
	}
	if !c.TrafficSeed.IsSet() {
		c.TrafficSeed = UseSeed(c.Seed)
	}
}

// SingleHopResult reports one Simulation I run.
type SingleHopResult struct {
	// WDB is the worst-case delay in seconds from packet creation to sink
	// arrival.
	WDB float64
	// MeanDelay is the mean end-to-end delay.
	MeanDelay float64
	// RegulatorMax is the worst per-packet delay inside the regulators.
	RegulatorMax float64
	// MuxMax is the worst per-packet delay inside the MUX.
	MuxMax float64
	// Delivered counts packets that reached the sink.
	Delivered uint64
	// ThresholdUtil is the Theorem 3/4 switching utilisation for this mix.
	ThresholdUtil float64
	// ConnCapacity is the MUX capacity C implied by the load.
	ConnCapacity float64
	// ModeSwitches counts adaptive model changes.
	ModeSwitches int
	// Specs echoes the envelopes used.
	Specs []FlowSpec
}

// RunSingleHop executes one Simulation I point.
func RunSingleHop(cfg SingleHopConfig) SingleHopResult {
	cfg.fillDefaults()
	return RunSingleHopWith(cfg,
		cfg.Workload.BuildSources(cfg.Mix, cfg.TrafficSeed.Or(cfg.Seed), cfg.EnvelopeMargin, cfg.BurstSec))
}

// RunSingleHopWith executes Simulation I with caller-provided flow
// sources; cfg.Specs must describe their envelopes (one spec per source).
func RunSingleHopWith(cfg SingleHopConfig, sources []traffic.Source) SingleHopResult {
	cfg.fillDefaults()
	eng := des.New()

	specs := cfg.Specs
	if specs == nil {
		specs = cfg.Workload.BuildSpecs(cfg.Mix, cfg.TrafficSeed.Or(cfg.Seed), cfg.EnvelopeMargin,
			cfg.BurstSec, cfg.EnvelopeHorizonSec)
	}
	if len(specs) != len(sources) {
		panic("core: specs/sources length mismatch")
	}
	k := len(specs)
	c := cfg.Mix.TotalRate() / cfg.Load
	bursts := RegulatorBursts(specs, c)

	var wdb stats.MaxTracker
	var delays stats.Welford
	var delivered uint64
	sink := func(p traffic.Packet) {
		d := p.Delay(eng.Now()).Seconds()
		wdb.Observe(d, p.ID)
		delays.Add(d)
		delivered++
	}
	pipe := netsim.NewPipe(eng, cfg.LinkDelay, sink)

	m := mux.New(eng, k, c, cfg.Discipline, pipe.Send)

	// Regulator bank(s). Track per-packet regulator residence times by
	// stamping through a wrapper. Sources number their packets sequentially
	// from zero, so the stamps live in an ID-indexed slice per flow (a
	// per-packet map insert/delete was a measurable allocation source); a
	// negative stamp means "not inside the regulator".
	var regMax stats.MaxTracker
	enter := make([][]des.Time, k)
	stamp := func(g int, id uint64) {
		s := enter[g]
		for uint64(len(s)) <= id {
			s = append(s, -1)
		}
		s[id] = eng.Now()
		enter[g] = s
	}
	wrapIn := func(g int, enqueue func(traffic.Packet)) func(traffic.Packet) {
		return func(p traffic.Packet) {
			stamp(g, p.ID)
			enqueue(p)
		}
	}
	regOut := func(g int) func(traffic.Packet) {
		return func(p traffic.Packet) {
			if s := enter[g]; p.ID < uint64(len(s)) && s[p.ID] >= 0 {
				regMax.Observe((eng.Now() - s[p.ID]).Seconds(), p.ID)
				s[p.ID] = -1
			}
			m.Enqueue(p)
		}
	}

	inputs := make([]func(traffic.Packet), k)
	threshold := ThresholdUtilization(k, cfg.Mix.Homogeneous())
	modeSwitches := 0
	switch cfg.Scheme {
	case SchemeSigmaRho:
		for g := 0; g < k; g++ {
			reg := regulator.NewSigmaRho(eng, bursts[g], specs[g].Rho, regOut(g))
			inputs[g] = wrapIn(g, reg.Enqueue)
		}
	case SchemeSRL:
		srls := make([]*regulator.SRL, k)
		for g := 0; g < k; g++ {
			srls[g] = regulator.NewSRL(eng, bursts[g], specs[g].Rho, c, regOut(g))
			inputs[g] = wrapIn(g, srls[g].Enqueue)
		}
		st := regulator.NewStagger(srls...)
		if cfg.StaggerAligned {
			st.StartAligned()
		} else {
			st.Start()
		}
	case SchemeAdaptive:
		// Both banks; a controller switches which one receives input.
		sr := make([]*regulator.SigmaRho, k)
		srls := make([]*regulator.SRL, k)
		for g := 0; g < k; g++ {
			sr[g] = regulator.NewSigmaRho(eng, bursts[g], specs[g].Rho, regOut(g))
			srls[g] = regulator.NewSRL(eng, bursts[g], specs[g].Rho, c, regOut(g))
		}
		st := regulator.NewStagger(srls...)
		useSRL := false
		rate := stats.NewWindowRate(des.Second)
		for g := 0; g < k; g++ {
			g := g
			inputs[g] = func(p traffic.Packet) {
				rate.Observe(eng.Now(), p.Size)
				stamp(g, p.ID)
				if useSRL {
					srls[g].Enqueue(p)
				} else {
					sr[g].Enqueue(p)
				}
			}
		}
		des.NewTicker(eng, 250*des.Millisecond, func() {
			want := rate.Rate(eng.Now())/c >= threshold
			if want == useSRL {
				return
			}
			modeSwitches++
			useSRL = want
			if want {
				st.Start()
			} else {
				st.Stop()
				for _, r := range srls {
					r.SetOn(true) // drain residue
				}
			}
		})
	default:
		panic("core: unsupported single-hop scheme")
	}

	for g, src := range sources {
		src.Start(eng, cfg.Duration, inputs[g])
	}
	eng.RunUntil(cfg.Duration + 60*des.Second)

	return SingleHopResult{
		WDB:           wdb.Max(),
		MeanDelay:     delays.Mean(),
		RegulatorMax:  regMax.Max(),
		MuxMax:        m.Delay.Max(),
		Delivered:     delivered,
		ThresholdUtil: threshold,
		ConnCapacity:  c,
		ModeSwitches:  modeSwitches,
		Specs:         specs,
	}
}
