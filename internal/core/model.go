// Package core implements the paper's contribution: the adaptive traffic-
// control algorithm for multi-group end-host multicast (Section III) and
// the regulated end-host model it runs on, wired into a full packet-level
// EMcast simulation over the substrates in internal/{des,topo,netsim,
// traffic,regulator,mux,overlay,calculus}.
//
// The package exposes two experiment engines:
//
//   - RunSingleHop reproduces Simulation I (Fig. 3/4): three real-time
//     flows through one regulated general MUX into a sink.
//   - Session.Run reproduces Simulation II (Fig. 5/6, Tables I–III) and
//     generalises it: a multi-group network of end hosts on a generated
//     underlay (the paper's 19-router backbone by default), each group
//     with its own member set and source (the paper's every-host-joins-
//     every-group model by default), forwarding along DSCT or NICE trees
//     under one of the control schemes, with optionally heterogeneous
//     per-host uplink capacity.
package core

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/traffic"
)

// Scheme selects the traffic-control scheme at every end host.
type Scheme int

// The schemes compared in the paper's evaluation.
const (
	// SchemeCapacityAware reshapes the tree (bounded fanout) and applies
	// no traffic regulation — the comparison scheme of Fig. 1.
	SchemeCapacityAware Scheme = iota
	// SchemeSigmaRho regulates every input flow with a (σ, ρ) regulator.
	SchemeSigmaRho
	// SchemeSRL regulates every input flow with the paper's (σ, ρ, λ)
	// duty-cycle regulator, staggered round-robin at each host.
	SchemeSRL
	// SchemeAdaptive is the paper's actual algorithm: each host compares
	// the measured average input rate ρ̄ against the threshold ρ* and
	// switches between the (σ, ρ) and (σ, ρ, λ) models at run time.
	SchemeAdaptive
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeCapacityAware:
		return "capacity-aware"
	case SchemeSigmaRho:
		return "sigma-rho"
	case SchemeSRL:
		return "sigma-rho-lambda"
	case SchemeAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Regulated reports whether the scheme uses per-flow regulators.
func (s Scheme) Regulated() bool { return s != SchemeCapacityAware }

// Default envelope parameters, shared by Config, SingleHopConfig, and the
// sweep drivers that pre-build flow specs once per sweep.
const (
	DefaultEnvelopeMargin     = 1.02
	DefaultBurstSec           = 0.15
	DefaultEnvelopeHorizonSec = 30
)

// SeedOpt is an optional seed. The zero value means "unset", which is
// distinct from an explicitly chosen seed of 0 — the ambiguity the old
// `TrafficSeed uint64` field had, where a caller genuinely passing seed 0
// silently inherited the structural seed. Sweep and scenario drivers set
// it with UseSeed; configs fall back to their structural seed when it is
// unset.
type SeedOpt struct {
	set bool
	val uint64
}

// UseSeed returns a set SeedOpt carrying v (any value, including 0).
func UseSeed(v uint64) SeedOpt { return SeedOpt{set: true, val: v} }

// IsSet reports whether the seed was explicitly chosen.
func (o SeedOpt) IsSet() bool { return o.set }

// Or returns the carried seed, or def when unset.
func (o SeedOpt) Or(def uint64) uint64 {
	if o.set {
		return o.val
	}
	return def
}

// Workload selects what the group flows actually emit.
type Workload int

// Available workloads.
const (
	// WorkloadExtremal drives the groups with deterministic envelope-
	// extremal flows (traffic.Extremal): the admissible worst case the
	// paper's delay bounds are about. Default for the WDB experiments.
	WorkloadExtremal Workload = iota
	// WorkloadVBR drives the groups with the stochastic media models
	// (talkspurt audio, GOP video) — realism ablation and examples.
	WorkloadVBR
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	if w == WorkloadVBR {
		return "vbr"
	}
	return "extremal"
}

// BuildSources instantiates the mix's flows for the chosen workload.
func (w Workload) BuildSources(mix traffic.Mix, seed uint64, margin, burstSec float64) []traffic.Source {
	return w.BuildSourcesN(mix, mix.NumFlows(), seed, margin, burstSec)
}

// BuildSourcesN instantiates n flows (one per group) for the chosen
// workload by cycling the mix's flow pattern — how a scenario drives
// K > 3 groups. BuildSourcesN(mix, 3, ...) is identical to BuildSources.
func (w Workload) BuildSourcesN(mix traffic.Mix, n int, seed uint64, margin, burstSec float64) []traffic.Source {
	if w == WorkloadVBR {
		return mix.SourcesN(n, seed)
	}
	return traffic.ExtremalMixN(mix, n, margin, burstSec)
}

// DefaultSpecs derives the flow envelopes for a workload/mix at the
// default envelope parameters — what a Config with only Mix and Seed set
// would measure. Sweep drivers use it to build specs once up front and
// share them read-only across every point (see the load-invariance note
// on Config.Specs).
func DefaultSpecs(w Workload, mix traffic.Mix, seed uint64) []FlowSpec {
	return DefaultSpecsN(w, mix, mix.NumFlows(), seed)
}

// DefaultSpecsN is DefaultSpecs for an n-group instantiation of the mix.
func DefaultSpecsN(w Workload, mix traffic.Mix, n int, seed uint64) []FlowSpec {
	return w.BuildSpecsN(mix, n, seed, DefaultEnvelopeMargin, DefaultBurstSec,
		DefaultEnvelopeHorizonSec)
}

// BuildSpecs derives the flow envelopes for the chosen workload: exact
// by construction for extremal flows, measured for VBR.
func (w Workload) BuildSpecs(mix traffic.Mix, seed uint64, margin, burstSec, horizonSec float64) []FlowSpec {
	return w.BuildSpecsN(mix, mix.NumFlows(), seed, margin, burstSec, horizonSec)
}

// BuildSpecsN derives n per-group flow envelopes by cycling the mix's
// flow pattern; see BuildSourcesN.
func (w Workload) BuildSpecsN(mix traffic.Mix, n int, seed uint64, margin, burstSec, horizonSec float64) []FlowSpec {
	if w == WorkloadVBR {
		return MeasureSpecsN(mix, n, seed, margin, horizonSec)
	}
	envs := traffic.ExtremalSpecsForN(mix, n, margin, burstSec)
	srcs := traffic.ExtremalMixN(mix, n, margin, burstSec)
	specs := make([]FlowSpec, len(envs))
	for i := range envs {
		specs[i] = FlowSpec{Rate: srcs[i].AvgRate(), Sigma: envs[i].Sigma, Rho: envs[i].Rho}
	}
	return specs
}

// FlowSpec characterises one group's real-time flow as the regulators see
// it: the true long-run average rate, and the declared (σ, ρ) envelope
// (ρ is drawn slightly above the average rate so VBR fluctuation does not
// destabilise the shapers; σ is measured from the source model).
type FlowSpec struct {
	Rate  float64 // bits/second, long-run average
	Sigma float64 // bits, envelope burst at Rho
	Rho   float64 // bits/second, envelope rate (>= Rate)
}

// MeasureSpecs derives the flow specs for a traffic mix by running each
// source model in isolation and measuring its tightest (σ, ρ) envelope at
// ρ = margin × average rate (see traffic.MeasureEnvelope). Deterministic
// given (mix, seed, margin, horizon).
func MeasureSpecs(mix traffic.Mix, seed uint64, margin, horizonSec float64) []FlowSpec {
	return MeasureSpecsN(mix, mix.NumFlows(), seed, margin, horizonSec)
}

// MeasureSpecsN measures the envelopes of an n-group instantiation of the
// mix. Same-class flows share one stream seed (see Mix.SourcesN), so each
// class is measured once and its spec replicated — at K=16 groups this is
// one audio and one video measurement, not sixteen.
func MeasureSpecsN(mix traffic.Mix, n int, seed uint64, margin, horizonSec float64) []FlowSpec {
	if margin < 1 {
		panic("core: envelope margin must be >= 1")
	}
	srcs := mix.SourcesN(n, seed)
	specs := make([]FlowSpec, len(srcs))
	byClass := make(map[bool]FlowSpec, 2)
	for i, s := range srcs {
		video := mix.VideoFlow(i)
		spec, ok := byClass[video]
		if !ok {
			env := traffic.MeasureEnvelope(s, margin, secs(horizonSec))
			spec = FlowSpec{Rate: s.AvgRate(), Sigma: env.Sigma, Rho: env.Rho}
			byClass[video] = spec
		}
		specs[i] = spec
	}
	return specs
}

// RegulatorBursts returns the per-flow burst parameters the regulators are
// configured with: σᵢ, the flow's own measured burst. This matches
// Theorems 5–8, which compare the (σᵢ, ρᵢ) and (σᵢ, ρᵢ, λᵢ) regulators
// head to head. (The σ*ᵢ equalisation of Theorems 1/3 exists in
// internal/calculus for the bound computations; configuring the live
// regulators with σ*ᵢ < σᵢ would charge the (σᵢ−σ*ᵢ)/ρᵢ penalty on every
// flow and swamp the load dependence the figures sweep.)
func RegulatorBursts(specs []FlowSpec, c float64) []float64 {
	out := make([]float64, len(specs))
	for i, s := range specs {
		// Validate normalisation early: ρᵢ must fit inside C.
		_, rho := calculus.Normalize(s.Sigma, s.Rho, c)
		if rho >= 1 {
			panic("core: flow envelope rate exceeds connection capacity")
		}
		out[i] = s.Sigma
	}
	return out
}

// ThresholdUtilization returns the adaptive algorithm's switching point as
// an aggregate utilisation Σρᵢ/C: K̂·ρ*(K̂), with ρ* from Theorem 4
// (homogeneous mixes) or Theorem 3 (heterogeneous mixes).
func ThresholdUtilization(k int, homogeneous bool) float64 {
	if homogeneous {
		return calculus.ThresholdUtilizationHomog(k)
	}
	return calculus.ThresholdUtilizationHetero(k)
}
