package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/topo"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// partialGroups builds three overlapping partial member sets over n hosts:
// evens, a contiguous middle block, and every third host — with sources
// inside their sets.
func partialGroups(n int) []GroupSpec {
	var evens, block, thirds []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			evens = append(evens, i)
		}
		if i >= n/4 && i < 3*n/4 {
			block = append(block, i)
		}
		if i%3 == 0 {
			thirds = append(thirds, i)
		}
	}
	return []GroupSpec{
		{Source: evens[0], Members: evens},
		{Source: block[1], Members: block},
		{Source: thirds[len(thirds)-1], Members: thirds},
	}
}

func TestSessionPartialMembershipDeterministic(t *testing.T) {
	cfg := Config{NumHosts: 48, Mix: traffic.MixAudio, Load: 0.8, Scheme: SchemeSRL,
		Duration: 3 * des.Second, Seed: 11, Groups: partialGroups(48)}
	a, b := Run(cfg), Run(cfg)
	if a.WDB != b.WDB || a.Delivered != b.Delivered || a.MeanDelay != b.MeanDelay {
		t.Fatalf("partial-membership session diverged: %v/%d vs %v/%d",
			a.WDB, a.Delivered, b.WDB, b.Delivered)
	}
	for g := range a.PerGroupWDB {
		if a.PerGroupWDB[g] != b.PerGroupWDB[g] {
			t.Fatalf("group %d WDB diverged", g)
		}
	}
	if a.Delivered == 0 {
		t.Fatal("partial-membership session delivered nothing")
	}
}

// Non-member hosts must never receive a group's packets: the delivery
// trees span exactly the member sets, so every fabric delivery lands on a
// subscriber.
func TestSessionNonMembersNeverReceive(t *testing.T) {
	groups := partialGroups(60)
	s := NewSession(Config{NumHosts: 60, Mix: traffic.MixAudio, Load: 0.8,
		Scheme: SchemeSRL, Duration: 2 * des.Second, Seed: 3, Groups: groups})
	member := make([]map[int]bool, len(groups))
	for g, spec := range s.Groups() {
		member[g] = make(map[int]bool, len(spec.Members))
		for _, m := range spec.Members {
			member[g][m] = true
		}
	}
	leaks := 0
	for id := 0; id < 60; id++ {
		id := id
		s.fabric.SetReceiver(id, func(p traffic.Packet) {
			if !member[p.Flow][id] {
				leaks++
			}
			s.receive(id, p)
		})
	}
	res := s.Run()
	if leaks > 0 {
		t.Fatalf("%d packets delivered to non-members", leaks)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries at all")
	}
	// Every group with more than one member must actually deliver.
	for g := range groups {
		if len(groups[g].Members) > 1 && res.PerGroupWDB[g] <= 0 {
			t.Fatalf("group %d (%d members) has WDB %v", g, len(groups[g].Members), res.PerGroupWDB[g])
		}
	}
}

// Explicit full-membership GroupSpecs must reproduce the implicit paper
// model bit for bit (regulated schemes build the same per-group trees).
func TestSessionExplicitFullMembershipMatchesImplicit(t *testing.T) {
	const n = 40
	everyone := make([]int, n)
	for i := range everyone {
		everyone[i] = i
	}
	explicit := []GroupSpec{
		{Source: 0, Members: everyone},
		{Source: 1, Members: everyone},
		{Source: 2, Members: everyone},
	}
	base := Config{NumHosts: n, Mix: traffic.MixAudio, Load: 0.85, Scheme: SchemeSRL,
		Duration: 3 * des.Second, Seed: 5}
	withGroups := base
	withGroups.Groups = explicit
	a, b := Run(base), Run(withGroups)
	if a.WDB != b.WDB || a.Delivered != b.Delivered || a.MeanDelay != b.MeanDelay {
		t.Fatalf("explicit full membership diverged from implicit: %v/%d vs %v/%d",
			a.WDB, a.Delivered, b.WDB, b.Delivered)
	}
}

// Empty member sets in an explicit GroupSpec mean "everyone".
func TestSessionEmptyMemberSetMeansEveryone(t *testing.T) {
	base := Config{NumHosts: 30, Mix: traffic.MixAudio, Load: 0.7, Scheme: SchemeSigmaRho,
		Duration: 2 * des.Second, Seed: 2}
	withGroups := base
	withGroups.Groups = []GroupSpec{{Source: 0}, {Source: 1}, {Source: 2}}
	a, b := Run(base), Run(withGroups)
	if a.WDB != b.WDB || a.Delivered != b.Delivered {
		t.Fatalf("empty member sets diverged from implicit: %v/%d vs %v/%d",
			a.WDB, a.Delivered, b.WDB, b.Delivered)
	}
}

func TestSessionManyGroupsImplicit(t *testing.T) {
	res := Run(Config{NumHosts: 30, Mix: traffic.MixHetero, Load: 0.6,
		Scheme: SchemeSRL, Duration: 2 * des.Second, Seed: 4, NumGroups: 7})
	if len(res.PerGroupWDB) != 7 || len(res.TreeLayers) != 7 {
		t.Fatalf("NumGroups not honoured: %d groups reported", len(res.PerGroupWDB))
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries")
	}
}

func TestSessionAlternateTopologyAndUplinks(t *testing.T) {
	cfg := Config{NumHosts: 60, Mix: traffic.MixAudio, Load: 0.7, Scheme: SchemeSRL,
		Duration: 2 * des.Second, Seed: 6,
		Topology:      topo.Waxman{N: 24},
		UplinkClasses: []topo.UplinkClass{{Mult: 0.5, Weight: 1}, {Mult: 4, Weight: 1}},
	}
	a, b := Run(cfg), Run(cfg)
	if a.WDB != b.WDB || a.Delivered != b.Delivered {
		t.Fatalf("waxman/uplink session diverged: %v/%d vs %v/%d",
			a.WDB, a.Delivered, b.WDB, b.Delivered)
	}
	if a.Delivered == 0 {
		t.Fatal("no deliveries on waxman underlay")
	}
	// Heterogeneous capacity must actually change the outcome vs uniform.
	uniform := cfg
	uniform.UplinkClasses = nil
	u := Run(uniform)
	if u.WDB == a.WDB {
		t.Fatal("uplink classes had no effect on WDB")
	}
}

// A class multiplier that drops a host's capacity to or below a flow's ρ
// must fail loudly at build time — NewSRL cannot regulate it, and even
// non-forwarding hosts would fold a negative W into their stagger
// offsets.
func TestSessionRejectsUndersizedUplinkClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uplink class below the flow envelope rate")
		}
	}()
	NewSession(Config{NumHosts: 20, Mix: traffic.MixVideo, Load: 0.9,
		Scheme: SchemeSRL, Seed: 1,
		UplinkClasses: []topo.UplinkClass{{Mult: 0.2, Weight: 1}}})
}

func TestSessionValidatesGroupSpecs(t *testing.T) {
	cases := []struct {
		name   string
		groups []GroupSpec
	}{
		{"source outside members", []GroupSpec{{Source: 5, Members: []int{1, 2, 3}}}},
		{"member out of range", []GroupSpec{{Source: 1, Members: []int{1, 99}}}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			NewSession(Config{NumHosts: 10, Mix: traffic.MixAudio, Load: 0.5,
				Scheme: SchemeSRL, Seed: 1, Groups: tc.groups})
		}()
	}
}

func TestSeedOpt(t *testing.T) {
	var unset SeedOpt
	if unset.IsSet() {
		t.Fatal("zero SeedOpt must be unset")
	}
	if unset.Or(7) != 7 {
		t.Fatal("unset SeedOpt must fall back")
	}
	zero := UseSeed(0)
	if !zero.IsSet() || zero.Or(7) != 0 {
		t.Fatal("an explicit seed 0 must be honoured, not treated as unset")
	}
	if UseSeed(42).Or(7) != 42 {
		t.Fatal("set SeedOpt must return its value")
	}
}

// An explicitly chosen traffic seed of 0 must differ from the inherited
// structural seed — the ambiguity the old uint64 sentinel had.
func TestTrafficSeedZeroIsDistinctFromUnset(t *testing.T) {
	base := SingleHopConfig{Mix: traffic.MixVideo, Load: 0.8, Scheme: SchemeSigmaRho,
		Duration: 2 * des.Second, Seed: 9, Workload: WorkloadVBR, EnvelopeHorizonSec: 5}
	inherit := RunSingleHop(base)
	explicit := base
	explicit.TrafficSeed = UseSeed(0)
	zero := RunSingleHop(explicit)
	if inherit.WDB == zero.WDB && inherit.Delivered == zero.Delivered {
		t.Fatal("TrafficSeed=UseSeed(0) produced the seed-9 stream: sentinel ambiguity is back")
	}
	same := base
	same.TrafficSeed = UseSeed(9)
	echo := RunSingleHop(same)
	if echo.WDB != inherit.WDB || echo.Delivered != inherit.Delivered {
		t.Fatal("TrafficSeed=UseSeed(Seed) must match the unset default")
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	if xrand.DeriveSeed(1, 0) != xrand.DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for base := uint64(0); base < 32; base++ {
		for g := 0; g < 32; g++ {
			s := xrand.DeriveSeed(base, g)
			if s == 0 {
				t.Fatal("DeriveSeed returned 0")
			}
			if seen[s] {
				t.Fatalf("DeriveSeed collision at base %d index %d", base, g)
			}
			seen[s] = true
		}
	}
}
