package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/overlay"
	"repro/internal/snap"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// treeBytes serializes a tree through the snapshot codec — the canonical
// byte-level identity the restore path depends on (parents ascending,
// child slices in order).
func treeBytes(t testing.TB, tr *overlay.Tree) []byte {
	t.Helper()
	w := snap.NewWriter(1)
	w.Begin(1)
	tr.Snapshot(w)
	w.End()
	b, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// substrateGoldenConfigs spans the compile paths: each regulated strategy,
// the capacity-aware shared tree (implicit membership), and capacity-aware
// per-group trees (explicit membership), plus heterogeneous uplinks.
func substrateGoldenConfigs() map[string]Config {
	partial := make([]GroupSpec, 6)
	for g := range partial {
		members := []int{g}
		for m := 0; m < 300; m++ {
			if (m+g)%3 == 0 && m != g {
				members = append(members, m)
			}
		}
		partial[g] = GroupSpec{Source: g, Members: members}
	}
	return map[string]Config{
		"dsct": {NumHosts: 300, NumGroups: 6, Mix: traffic.MixAudio, Load: 0.8,
			Scheme: SchemeSRL, Seed: 11},
		"nice": {NumHosts: 300, NumGroups: 6, Mix: traffic.MixAudio, Load: 0.8,
			Scheme: SchemeSigmaRho, Tree: TreeNICE, Seed: 11},
		"spt": {NumHosts: 300, NumGroups: 6, Mix: traffic.MixAudio, Load: 0.8,
			Scheme: SchemeSRL, Strategy: "spt", Seed: 11},
		"greedy": {NumHosts: 300, NumGroups: 6, Mix: traffic.MixAudio, Load: 0.8,
			Scheme: SchemeSRL, Strategy: "greedy", Seed: 11},
		"capaware-shared": {NumHosts: 300, NumGroups: 6, Mix: traffic.MixAudio,
			Load: 0.8, Scheme: SchemeCapacityAware, Seed: 11},
		"capaware-groups": {NumHosts: 300, Groups: partial, Mix: traffic.MixAudio,
			Load: 0.8, Scheme: SchemeCapacityAware, Seed: 11},
		"partial-hetero": {NumHosts: 300, Groups: partial, Mix: traffic.MixAudio,
			Load: 0.4, Scheme: SchemeSRL, Seed: 11,
			UplinkClasses: []topo.UplinkClass{{Mult: 1, Weight: 0.5}, {Mult: 4, Weight: 0.5}}},
	}
}

// TestParallelCompileBitIdentical is the substrate golden: the blueprint
// built across the worker pool must be bit-identical to the sequential
// reference build — every tree's snapshot bytes, the resolved member
// sets, tree configs, and uplink multipliers.
func TestParallelCompileBitIdentical(t *testing.T) {
	for name, cfg := range substrateGoldenConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.fillDefaults()
			n := cfg.groupCount()
			seq := buildBlueprint(&cfg, n, 1)
			par := buildBlueprint(&cfg, n, 8)
			if seq.shared != par.shared {
				t.Fatalf("shared-tree flag diverged: seq %v, par %v", seq.shared, par.shared)
			}
			if !reflect.DeepEqual(seq.groups, par.groups) {
				t.Fatal("resolved group specs diverged")
			}
			if !reflect.DeepEqual(seq.treeCfgs, par.treeCfgs) {
				t.Fatal("tree configs diverged")
			}
			if !reflect.DeepEqual(seq.mults, par.mults) || seq.minMult != par.minMult {
				t.Fatal("uplink multipliers diverged")
			}
			for g := range seq.trees {
				if !bytes.Equal(treeBytes(t, seq.trees[g]), treeBytes(t, par.trees[g])) {
					t.Fatalf("group %d tree diverged between sequential and parallel build", g)
				}
			}
		})
	}
}

// TestSubstrateCloneIsolation pins that a session's trees are clones: two
// substrates from one blueprint never share mutable tree state, and both
// serialize identically to the blueprint's pristine original.
func TestSubstrateCloneIsolation(t *testing.T) {
	cfg := Config{NumHosts: 120, NumGroups: 4, Mix: traffic.MixAudio, Load: 0.8,
		Scheme: SchemeSRL, Seed: 3}
	a := compileSubstrate(cfg)
	b := compileSubstrate(cfg)
	if a.net != b.net {
		t.Fatal("substrates from one config did not share the blueprint network")
	}
	for g := range a.groups {
		if a.groups[g].tree == b.groups[g].tree {
			t.Fatalf("group %d tree shared between two sessions", g)
		}
		if !bytes.Equal(treeBytes(t, a.groups[g].tree), treeBytes(t, b.groups[g].tree)) {
			t.Fatalf("group %d clone not bit-identical to sibling clone", g)
		}
	}
	// Mutating one session's tree must not leak into a third compile.
	at := a.groups[0].tree
	for _, m := range at.Members {
		if m != at.Source {
			if _, err := at.Prune(m); err != nil {
				t.Fatalf("prune member %d: %v", m, err)
			}
			break
		}
	}
	c := compileSubstrate(cfg)
	if !bytes.Equal(treeBytes(t, b.groups[0].tree), treeBytes(t, c.groups[0].tree)) {
		t.Fatal("mutation of one session's tree leaked into the shared blueprint")
	}
}

// TestBlueprintCacheKeying pins what shares a blueprint and what must not:
// load/traffic-seed/shard/duration variants hit the same entry, while
// seed, strategy, population, and membership changes miss.
func TestBlueprintCacheKeying(t *testing.T) {
	base := Config{NumHosts: 120, NumGroups: 4, Mix: traffic.MixAudio, Load: 0.5,
		Scheme: SchemeSRL, Seed: 3}
	net := compileSubstrate(base).net

	same := []Config{base, base, base}
	same[0].Load = 0.9
	same[1].TrafficSeed = UseSeed(99)
	same[2].Shards = 4
	for i, cfg := range same {
		if compileSubstrate(cfg).net != net {
			t.Errorf("variant %d recompiled the blueprint instead of sharing it", i)
		}
	}

	diff := []Config{base, base, base}
	diff[0].Seed = 4
	diff[1].Strategy = "spt"
	diff[2].NumHosts = 121
	for i, cfg := range diff {
		if compileSubstrate(cfg).net == net {
			t.Errorf("variant %d shared a blueprint across a structural change", i)
		}
	}

	// Capacity-aware trees depend on the fanout bound, a function of load:
	// loads mapping to different bounds must not share.
	ca := base
	ca.Scheme = SchemeCapacityAware
	ca.Load = 0.2
	ca2 := ca
	ca2.Load = 0.9
	if overlay.FanoutBound(ca.Load, 2.0) == overlay.FanoutBound(ca2.Load, 2.0) {
		t.Fatal("test loads map to one fanout bound; pick loads that differ")
	}
	s1, s2 := compileSubstrate(ca), compileSubstrate(ca2)
	if s1.net == s2.net {
		t.Error("capacity-aware substrates at different fanout bounds shared a blueprint")
	}
	if bytes.Equal(treeBytes(t, s1.groups[0].tree), treeBytes(t, s2.groups[0].tree)) {
		t.Error("capacity-aware trees at different fanout bounds came out identical")
	}
}

// referenceChildren is the pre-arena compileChildren: group-major appends
// with one heap copy per (host, group) slot. The arena version must
// produce exactly this structure.
func referenceChildren(sub *substrate) []groupChildren {
	per := make([]groupChildren, sub.cfg.NumHosts)
	for g, st := range sub.groups {
		g32 := int32(g)
		st.tree.EachParent(func(p int, kids []int) {
			gc := &per[p]
			gc.groups = append(gc.groups, g32)
			gc.kids = append(gc.kids, append([]int(nil), kids...))
		})
	}
	return per
}

// TestCompileChildrenArena pins the arena-packed children index against
// the reference implementation, and checks that a control-plane append
// reallocates off-arena instead of corrupting the neighbouring slot.
func TestCompileChildrenArena(t *testing.T) {
	for name, cfg := range substrateGoldenConfigs() {
		t.Run(name, func(t *testing.T) {
			sub := compileSubstrate(cfg)
			got := sub.compileChildren()
			want := referenceChildren(sub)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("arena-packed children diverged from reference")
			}
			// Append to the first host with children; its neighbours'
			// slots must be unaffected (capacity-capped carving).
			for p := range got {
				if len(got[p].groups) == 0 {
					continue
				}
				g := int(got[p].groups[0])
				got[p].add(g, cfg.NumHosts) // off-range id: visible if it bleeds
				for q := p + 1; q < len(got); q++ {
					if !reflect.DeepEqual(got[q], want[q]) {
						t.Fatalf("append at host %d corrupted host %d's slots", p, q)
					}
				}
				break
			}
		})
	}
}

// TestHostConnsMatchesNewHost pins the parallel wiring plan against the
// per-host de-duplication newHost used to do inline.
func TestHostConnsMatchesNewHost(t *testing.T) {
	cfg := Config{NumHosts: 200, NumGroups: 8, Mix: traffic.MixAudio, Load: 0.8,
		Scheme: SchemeSRL, Seed: 5}
	sub := compileSubstrate(cfg)
	chl := sub.compileChildren()
	conns := hostConns(chl)
	for p := range chl {
		if want := connsOf(chl[p]); !reflect.DeepEqual(conns[p], want) {
			t.Fatalf("host %d wiring plan diverged: got %v, want %v", p, conns[p], want)
		}
	}
}

// TestCachedSessionRunsIdentical pins end-to-end bit-identity across the
// cache: a run on a cold cache and a run on a warm cache (cloned trees)
// produce identical Results, sequential and sharded.
func TestCachedSessionRunsIdentical(t *testing.T) {
	cfg := Config{NumHosts: 150, NumGroups: 4, Mix: traffic.MixAudio, Load: 0.8,
		Scheme: SchemeSRL, Seed: 7, Duration: secs(0.5)}
	FlushSubstrateCache()
	cold := Run(cfg)
	warm := Run(cfg)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm-cache run diverged from cold-cache run")
	}
}
