package core

import (
	"math"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// testShardCount honours the WDCSIM_SHARDS env var (the CI shard matrix);
// default 4.
func testShardCount(t testing.TB) int {
	if v := os.Getenv("WDCSIM_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad WDCSIM_SHARDS=%q", v)
		}
		return n
	}
	return 4
}

func shardBaseConfig(seed uint64) Config {
	return Config{
		NumHosts:  240,
		Mix:       traffic.MixAudio,
		Load:      0.8,
		Scheme:    SchemeSRL,
		Duration:  3 * des.Second,
		Seed:      seed,
		Topology:  topo.Waxman{N: 24},
		NumGroups: 6,
		Groups: []GroupSpec{
			// Mixed full and partial membership; sources spread out.
			{Source: 0},
			{Source: 5},
			{Source: 17, Members: rangeMembers(10, 120)},
			{Source: 60, Members: rangeMembers(40, 200)},
			{Source: 100, Members: rangeMembers(100, 240)},
			{Source: 3, Members: rangeMembers(0, 80)},
		},
	}
}

func rangeMembers(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// assertResultsEquivalent compares the physics-level outcome of two runs:
// identical deliveries, losses, per-group worst-case delays (bit for bit),
// and tree layers. MeanDelay is compared loosely — the Welford merge
// changes float summation order, not the sample set.
func assertResultsEquivalent(t *testing.T, label string, seqr, shr Result) {
	t.Helper()
	if seqr.Delivered != shr.Delivered {
		t.Errorf("%s: delivered %d (sequential) vs %d (sharded)", label, seqr.Delivered, shr.Delivered)
	}
	if seqr.Lost != shr.Lost {
		t.Errorf("%s: lost %d vs %d", label, seqr.Lost, shr.Lost)
	}
	for g := range seqr.PerGroupWDB {
		if seqr.PerGroupWDB[g] != shr.PerGroupWDB[g] {
			t.Errorf("%s: group %d WDB %.17g vs %.17g", label, g, seqr.PerGroupWDB[g], shr.PerGroupWDB[g])
		}
		if seqr.PerGroupLost[g] != shr.PerGroupLost[g] {
			t.Errorf("%s: group %d lost %d vs %d", label, g, seqr.PerGroupLost[g], shr.PerGroupLost[g])
		}
	}
	if seqr.WDB != shr.WDB {
		t.Errorf("%s: WDB %.17g vs %.17g", label, seqr.WDB, shr.WDB)
	}
	if seqr.Layers != shr.Layers {
		t.Errorf("%s: layers %d vs %d", label, seqr.Layers, shr.Layers)
	}
	if seqr.Joins != shr.Joins || seqr.Leaves != shr.Leaves ||
		seqr.Regrafts != shr.Regrafts || seqr.RejectedEvents != shr.RejectedEvents {
		t.Errorf("%s: control counters (%d,%d,%d,%d) vs (%d,%d,%d,%d)", label,
			seqr.Joins, seqr.Leaves, seqr.Regrafts, seqr.RejectedEvents,
			shr.Joins, shr.Leaves, shr.Regrafts, shr.RejectedEvents)
	}
	if len(seqr.WindowMax) != len(shr.WindowMax) {
		t.Errorf("%s: window series length %d vs %d", label, len(seqr.WindowMax), len(shr.WindowMax))
	} else {
		for i := range seqr.WindowMax {
			if seqr.WindowMax[i] != shr.WindowMax[i] {
				t.Errorf("%s: window %d max %.17g vs %.17g", label, i, seqr.WindowMax[i], shr.WindowMax[i])
			}
		}
	}
	if seqr.Delivered > 0 && math.Abs(seqr.MeanDelay-shr.MeanDelay) > 1e-9*math.Max(1, seqr.MeanDelay) {
		t.Errorf("%s: mean delay %v vs %v beyond merge tolerance", label, seqr.MeanDelay, shr.MeanDelay)
	}
	if seqr.CutLost != shr.CutLost || seqr.FaultLost != shr.FaultLost {
		t.Errorf("%s: fault losses (cut %d, fault %d) vs (cut %d, fault %d)", label,
			seqr.CutLost, seqr.FaultLost, shr.CutLost, shr.FaultLost)
	}
	if !reflect.DeepEqual(seqr.Faults, shr.Faults) {
		t.Errorf("%s: fault outcomes diverged:\n  sequential %+v\n  sharded    %+v", label, seqr.Faults, shr.Faults)
	}
}

// TestShardedMatchesSequential is the core differential test: a sharded
// run must reproduce the sequential run's physics exactly — same
// deliveries, same losses, same per-group worst-case delays.
func TestShardedMatchesSequential(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSRL, SchemeSigmaRho} {
		cfg := shardBaseConfig(11)
		cfg.Scheme = scheme
		seqr := Run(cfg)
		cfg.Shards = testShardCount(t)
		s := NewShardedSession(cfg)
		if s.Shards() < 2 {
			t.Fatalf("partition degenerated to %d shards", s.Shards())
		}
		if la := s.Lookahead(); la <= 0 {
			t.Fatalf("lookahead %v", la)
		}
		shr := s.Run()
		if seqr.Delivered == 0 {
			t.Fatal("no deliveries — test workload is broken")
		}
		assertResultsEquivalent(t, scheme.String(), seqr, shr)
	}
}

// TestShardedMatchesSequentialUnderChurn adds membership events: grafts,
// prunes, repairs, and regulator teardowns must apply at quiesced
// barriers and reproduce the sequential outcome exactly.
func TestShardedMatchesSequentialUnderChurn(t *testing.T) {
	cfg := shardBaseConfig(13)
	cfg.WindowSec = 0.5
	cfg.Events = []MembershipEvent{
		{At: des.Seconds(0.4), Group: 2, Host: 130, Join: true},
		{At: des.Seconds(0.4), Group: 3, Host: 10, Join: true},
		{At: des.Seconds(0.7), Group: 2, Host: 30},
		{At: des.Seconds(1.1), Group: 4, Host: 150},
		{At: des.Seconds(1.1), Group: 2, Host: 130},
		{At: des.Seconds(1.6), Group: 5, Host: 200, Join: true}, // out of member range: join anyway
		{At: des.Seconds(2.0), Group: 3, Host: 60},
		{At: des.Seconds(9.0), Group: 2, Host: 11}, // beyond duration: dropped
	}
	seqr := Run(cfg)
	if seqr.Joins == 0 || seqr.Leaves == 0 {
		t.Fatalf("churn workload inert: %+v", seqr)
	}
	cfg.Shards = testShardCount(t)
	shr := Run(cfg)
	assertResultsEquivalent(t, "churn", seqr, shr)
}

// TestShardedAdaptiveMatchesSequential covers the adaptive controller's
// per-host tickers and mode switches under sharding.
func TestShardedAdaptiveMatchesSequential(t *testing.T) {
	cfg := shardBaseConfig(17)
	cfg.Scheme = SchemeAdaptive
	cfg.Duration = 2 * des.Second
	seqr := Run(cfg)
	cfg.Shards = testShardCount(t)
	shr := Run(cfg)
	assertResultsEquivalent(t, "adaptive", seqr, shr)
	if seqr.ModeSwitches != shr.ModeSwitches {
		t.Errorf("mode switches %d vs %d", seqr.ModeSwitches, shr.ModeSwitches)
	}
}

// TestShardedDeterministicRepeatedRuns pins the fixed-N determinism
// contract: two sharded runs of the same config are identical in every
// field, including the merge-order-sensitive ones.
func TestShardedDeterministicRepeatedRuns(t *testing.T) {
	cfg := shardBaseConfig(19)
	cfg.Shards = testShardCount(t)
	cfg.Events = []MembershipEvent{
		{At: des.Seconds(0.5), Group: 2, Host: 130, Join: true},
		{At: des.Seconds(1.2), Group: 2, Host: 30},
	}
	a := Run(cfg)
	for i := 0; i < 3; i++ {
		b := Run(cfg)
		if math.Float64bits(a.WDB) != math.Float64bits(b.WDB) ||
			math.Float64bits(a.MeanDelay) != math.Float64bits(b.MeanDelay) ||
			a.Delivered != b.Delivered || a.Lost != b.Lost {
			t.Fatalf("run %d diverged: %+v vs %+v", i, a, b)
		}
		for g := range a.PerGroupWDB {
			if math.Float64bits(a.PerGroupWDB[g]) != math.Float64bits(b.PerGroupWDB[g]) {
				t.Fatalf("run %d group %d WDB bits diverged", i, g)
			}
		}
	}
}

// TestShardedFallsBackSequentially pins the degenerate paths: Shards<=1,
// a single-shard partition, and QueuedTransit all compile to the
// sequential engine.
func TestShardedFallsBackSequentially(t *testing.T) {
	cfg := Config{NumHosts: 40, Mix: traffic.MixAudio, Load: 0.6, Scheme: SchemeSRL,
		Duration: des.Second, Seed: 3, Shards: 1}
	s := NewShardedSession(cfg) // Shards=1 partition degenerates inside
	if s.Shards() != 1 {
		t.Fatalf("Shards=1 partition used %d shards", s.Shards())
	}
	if s.Lookahead() != 0 {
		t.Fatalf("sequential fallback reports lookahead %v", s.Lookahead())
	}
	if _, ok := New(cfg).(*Session); !ok {
		t.Fatal("Shards=1 did not compile to the sequential Session")
	}
	cfg.Shards = 4
	cfg.Transit = netsim.QueuedTransit
	if _, ok := New(cfg).(*Session); !ok {
		t.Fatal("QueuedTransit did not fall back to the sequential Session")
	}
	// The fallback still runs (and matches the plain sequential result).
	cfg.Transit = netsim.PipeTransit
	cfg.Shards = 1
	a := NewShardedSession(cfg).Run()
	b := Run(Config{NumHosts: 40, Mix: traffic.MixAudio, Load: 0.6, Scheme: SchemeSRL,
		Duration: des.Second, Seed: 3})
	if a.Delivered != b.Delivered || a.WDB != b.WDB {
		t.Fatalf("fallback run diverged: %+v vs %+v", a, b)
	}
}

// TestShardedStaticEqualsShards1Bits: for a static session the sharded
// per-group maxima must be bit-identical to the sequential ones (the same
// packets see the same delays; only observation is distributed).
func TestShardedStaticEqualsShards1Bits(t *testing.T) {
	cfg := Config{NumHosts: 120, Mix: traffic.MixAudio, Load: 0.9, Scheme: SchemeSigmaRho,
		Duration: 2 * des.Second, Seed: 23, NumGroups: 4}
	seqr := Run(cfg)
	cfg.Shards = testShardCount(t)
	shr := Run(cfg)
	for g := range seqr.PerGroupWDB {
		if math.Float64bits(seqr.PerGroupWDB[g]) != math.Float64bits(shr.PerGroupWDB[g]) {
			t.Fatalf("group %d WDB bits %016x vs %016x", g,
				math.Float64bits(seqr.PerGroupWDB[g]), math.Float64bits(shr.PerGroupWDB[g]))
		}
	}
	if seqr.Delivered != shr.Delivered {
		t.Fatalf("delivered %d vs %d", seqr.Delivered, shr.Delivered)
	}
}

// TestShardDifferentialPairVsGlobalMin pins the per-pair lookahead regime
// bit-identical to the legacy global-min regime it replaced: the epoch
// schedule differs (pair bounds run wider windows), but the released event
// order — and so every delivery, loss, and WDB bit — must not. Covers
// static, churn, and fault workloads.
func TestShardDifferentialPairVsGlobalMin(t *testing.T) {
	side := make([]bool, 24)
	for r := 0; r < 12; r++ {
		side[r] = true
	}
	cases := map[string]func(*Config){
		"static": func(cfg *Config) {},
		"churn": func(cfg *Config) {
			cfg.WindowSec = 0.5
			cfg.Events = []MembershipEvent{
				{At: des.Seconds(0.4), Group: 2, Host: 130, Join: true},
				{At: des.Seconds(0.7), Group: 2, Host: 30},
				{At: des.Seconds(1.1), Group: 4, Host: 150},
				{At: des.Seconds(1.6), Group: 5, Host: 200, Join: true},
			}
		},
		"faults": func(cfg *Config) {
			cfg.WindowSec = 0.5
			cfg.Faults = []FaultEvent{
				{At: des.Seconds(0.8), Kind: FaultPartition, ID: 0, Group: -1, Side: side},
				{At: des.Seconds(1.6), Kind: FaultHeal, ID: 0, Group: -1},
			}
		},
	}
	for label, mutate := range cases {
		t.Run(label, func(t *testing.T) {
			cfg := shardBaseConfig(37)
			cfg.Shards = testShardCount(t)
			mutate(&cfg)
			pair := Run(cfg)
			cfg.GlobalMinLookahead = true
			glob := Run(cfg)
			assertResultsEquivalent(t, label, glob, pair)
			// Beyond physics: the merge-order-sensitive bits must agree too —
			// the regimes release the identical event sequence.
			if math.Float64bits(pair.WDB) != math.Float64bits(glob.WDB) ||
				math.Float64bits(pair.MeanDelay) != math.Float64bits(glob.MeanDelay) {
				t.Errorf("%s: WDB/mean bits diverged: %016x/%016x vs %016x/%016x", label,
					math.Float64bits(pair.WDB), math.Float64bits(pair.MeanDelay),
					math.Float64bits(glob.WDB), math.Float64bits(glob.MeanDelay))
			}
			for g := range pair.PerGroupWDB {
				if math.Float64bits(pair.PerGroupWDB[g]) != math.Float64bits(glob.PerGroupWDB[g]) {
					t.Errorf("%s: group %d WDB bits diverged", label, g)
				}
			}
			if pair.Shards != glob.Shards {
				t.Errorf("%s: shard counts %d vs %d", label, pair.Shards, glob.Shards)
			}
		})
	}
}

// TestPairLookaheadWidensEpochs demonstrates why the matrix exists: on a
// transit-stub underlay, shards separated by the transit core get pair
// lookaheads strictly wider than the global minimum (which a single
// intra-stub short hop sets), and the coordinator turns that slack into
// measurably fewer barrier epochs for the same simulated time.
func TestPairLookaheadWidensEpochs(t *testing.T) {
	cfg := Config{
		NumHosts:  240,
		Mix:       traffic.MixAudio,
		Load:      0.8,
		Scheme:    SchemeSRL,
		Duration:  2 * des.Second,
		Seed:      41,
		Topology:  topo.TransitStub{Transits: 4, StubsPerTransit: 3, StubSize: 2},
		NumGroups: 4,
	}
	cfg.Shards = testShardCount(t)
	if cfg.Shards < 2 {
		t.Skip("needs >= 2 shards")
	}

	// Structural claim: some pair entry strictly exceeds the scalar min.
	sub := compileSubstrate(cfg)
	owner := netsim.PartitionHosts(sub.net, cfg.Shards)
	if netsim.NumShards(owner) < 2 {
		t.Fatalf("partition degenerated to %d shards", netsim.NumShards(owner))
	}
	scalar, ok := netsim.Lookahead(sub.net, owner)
	if !ok {
		t.Fatal("no cross-shard pair")
	}
	mat, ok := netsim.LookaheadMatrix(sub.net, owner)
	if !ok {
		t.Fatal("no cross-shard pair in matrix")
	}
	wider := 0
	for i := range mat {
		for j := range mat[i] {
			if i == j {
				continue
			}
			if mat[i][j] < scalar {
				t.Fatalf("la[%d][%d]=%v below the scalar min %v", i, j, mat[i][j], scalar)
			}
			if mat[i][j] > scalar {
				wider++
			}
		}
	}
	if wider == 0 {
		t.Fatal("no pair lookahead strictly wider than the global min — topology does not exercise the matrix")
	}

	// Behavioural claim: the pair regime completes the same run in fewer
	// epochs, with identical physics.
	pair := Run(cfg)
	cfg.GlobalMinLookahead = true
	glob := Run(cfg)
	assertResultsEquivalent(t, "transit-stub", glob, pair)
	if pair.Epochs >= glob.Epochs {
		t.Errorf("pair regime ran %d epochs, global-min %d — expected strictly fewer", pair.Epochs, glob.Epochs)
	}
}
