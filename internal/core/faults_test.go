package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/traffic"
)

// faultBaseConfig is the shard differential base extended with one fault
// event of every kind: a restored domain outage, a healed partition, a
// mass leave, and an epoch-style mass join — plus churn events that race
// the faults (a join of a down host must be rejected).
func faultBaseConfig(seed uint64) Config {
	cfg := shardBaseConfig(seed)
	side := make([]bool, 24)
	for r := 0; r < 24; r += 2 {
		side[r] = true
	}
	cfg.WindowSec = 0.5
	cfg.Faults = []FaultEvent{
		{At: des.Seconds(0.5), Kind: FaultOutage, ID: 0, Group: -1, Hosts: rangeMembers(30, 36)},
		{At: des.Seconds(0.9), Kind: FaultMassLeave, Group: 2, Hosts: rangeMembers(50, 60)},
		{At: des.Seconds(1.0), Kind: FaultMassJoin, Group: 3, Hosts: []int{32, 205, 210, 215}},
		{At: des.Seconds(1.5), Kind: FaultRestore, ID: 0, Group: -1, Hosts: rangeMembers(30, 36)},
		{At: des.Seconds(1.8), Kind: FaultPartition, ID: 1, Group: -1, Side: side},
		{At: des.Seconds(2.3), Kind: FaultHeal, ID: 1, Group: -1},
	}
	cfg.Events = []MembershipEvent{
		{At: des.Seconds(0.7), Group: 2, Host: 31, Join: true},  // down: rejected
		{At: des.Seconds(0.8), Group: 3, Host: 210, Join: true}, // races the mass join
		{At: des.Seconds(2.0), Group: 4, Host: 150},             // leave during the cut
	}
	return cfg
}

// TestFaultLifecycleSequential checks the sequential fault plane end to
// end: every event produces an outcome, the outage victims stay out until
// the restore re-grafts their recorded memberships, loss is attributed,
// and recovery closes for every sentinel in a run that outlives the
// faults.
func TestFaultLifecycleSequential(t *testing.T) {
	cfg := faultBaseConfig(29)
	res := Run(cfg)
	if res.Delivered == 0 {
		t.Fatal("no deliveries — fault workload is broken")
	}
	if len(res.Faults) != len(cfg.Faults) {
		t.Fatalf("%d outcomes for %d fault events", len(res.Faults), len(cfg.Faults))
	}
	oc := res.Faults
	if oc[0].Kind != "outage" || oc[0].Hosts != 6 || oc[0].Group != -1 {
		t.Fatalf("outage outcome: %+v", oc[0])
	}
	if oc[1].Kind != "mass_leave" || oc[1].Hosts != 10 || oc[1].Group != 2 {
		t.Fatalf("mass_leave outcome: %+v", oc[1])
	}
	// Host 32 is down at the mass join; host 210 already churned in at 0.8s:
	// only 205 and 215 can join.
	if oc[2].Kind != "mass_join" || oc[2].Hosts != 2 {
		t.Fatalf("mass_join outcome: %+v", oc[2])
	}
	// The restore re-grafts the memberships recorded at outage time. Hosts
	// 30..35 sat in groups 0, 1 (full), 2 (10..120), and 5 (0..80): 4 each,
	// minus whatever the 0.9s mass leave already removed from group 2 —
	// but that leave hit 50..59, so all 24 memberships come back.
	if oc[3].Kind != "restore" || oc[3].Hosts != 24 {
		t.Fatalf("restore outcome: %+v", oc[3])
	}
	if oc[3].RecoverySec <= 0 || oc[3].Unrecovered != 0 {
		t.Fatalf("restore recovery not measured: %+v", oc[3])
	}
	if oc[4].Kind != "partition" || oc[4].Hosts == 0 {
		t.Fatalf("partition severed nothing: %+v", oc[4])
	}
	if oc[4].Lost == 0 {
		t.Fatalf("partition dropped no crossing traffic: %+v", oc[4])
	}
	if oc[5].Kind != "heal" || oc[5].Regrafts != oc[4].Hosts {
		t.Fatalf("heal must re-attach every severed root: %+v vs %+v", oc[5], oc[4])
	}
	if oc[5].RecoverySec <= 0 {
		t.Fatalf("heal recovery not measured: %+v", oc[5])
	}
	var sum uint64
	for _, o := range oc {
		sum += o.Lost
	}
	if res.FaultLost != sum {
		t.Fatalf("FaultLost %d != outcome sum %d", res.FaultLost, sum)
	}
	if res.CutLost == 0 || res.CutLost > res.FaultLost {
		t.Fatalf("CutLost %d out of range (FaultLost %d)", res.CutLost, res.FaultLost)
	}
	if res.RejectedEvents == 0 {
		t.Fatal("the down-host join was not rejected")
	}
}

// TestShardedMatchesSequentialUnderFaults is the fault-plane differential:
// every fault kind applied at coordinator barriers must reproduce the
// sequential outcome bit for bit — deliveries, losses, per-group WDB,
// window series, and the per-event outcomes including recovery times.
func TestShardedMatchesSequentialUnderFaults(t *testing.T) {
	cfg := faultBaseConfig(29)
	seqr := Run(cfg)
	cfg.Shards = testShardCount(t)
	shr := Run(cfg)
	assertResultsEquivalent(t, "faults", seqr, shr)
}

// TestShardedMatchesSequentialPerFaultKind isolates each event kind in
// its own differential, so a determinism break pins to a kind instead of
// hiding in the combined schedule.
func TestShardedMatchesSequentialPerFaultKind(t *testing.T) {
	side := make([]bool, 24)
	for r := 0; r < 12; r++ {
		side[r] = true
	}
	kinds := map[string][]FaultEvent{
		"outage": {
			{At: des.Seconds(0.6), Kind: FaultOutage, ID: 0, Group: -1, Hosts: rangeMembers(40, 48)},
		},
		"outage+restore": {
			{At: des.Seconds(0.6), Kind: FaultOutage, ID: 0, Group: -1, Hosts: rangeMembers(40, 48)},
			{At: des.Seconds(1.6), Kind: FaultRestore, ID: 0, Group: -1, Hosts: rangeMembers(40, 48)},
		},
		"partition+heal": {
			{At: des.Seconds(0.8), Kind: FaultPartition, ID: 0, Group: -1, Side: side},
			{At: des.Seconds(1.7), Kind: FaultHeal, ID: 0, Group: -1},
		},
		"mass_leave": {
			{At: des.Seconds(0.9), Kind: FaultMassLeave, Group: 3, Hosts: rangeMembers(70, 90)},
		},
		"mass_join": {
			{At: des.Seconds(0.9), Kind: FaultMassJoin, Group: 2, Hosts: rangeMembers(150, 170)},
		},
	}
	for label, faults := range kinds {
		t.Run(label, func(t *testing.T) {
			cfg := shardBaseConfig(31)
			cfg.WindowSec = 0.5
			cfg.Faults = faults
			seqr := Run(cfg)
			cfg.Shards = testShardCount(t)
			shr := Run(cfg)
			assertResultsEquivalent(t, label, seqr, shr)
		})
	}
}

// TestFaultValidationPanics pins the strict-validation contract: a
// malformed fault schedule is a configuration bug and must fail the
// session build loudly.
func TestFaultValidationPanics(t *testing.T) {
	mustPanic := func(label string, faults []FaultEvent) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: session built from an invalid fault schedule", label)
			}
		}()
		cfg := shardBaseConfig(7)
		cfg.Faults = faults
		New(cfg)
	}
	side := make([]bool, 24)
	side[0] = true
	mustPanic("at zero", []FaultEvent{
		{At: 0, Kind: FaultOutage, ID: 0, Group: -1, Hosts: []int{1}}})
	mustPanic("empty hosts", []FaultEvent{
		{At: des.Second, Kind: FaultOutage, ID: 0, Group: -1}})
	mustPanic("unsorted hosts", []FaultEvent{
		{At: des.Second, Kind: FaultOutage, ID: 0, Group: -1, Hosts: []int{5, 3}}})
	mustPanic("host out of range", []FaultEvent{
		{At: des.Second, Kind: FaultOutage, ID: 0, Group: -1, Hosts: []int{9999}}})
	mustPanic("group on session-wide kind", []FaultEvent{
		{At: des.Second, Kind: FaultOutage, ID: 0, Group: 2, Hosts: []int{1}}})
	mustPanic("overlapping outages", []FaultEvent{
		{At: des.Second, Kind: FaultOutage, ID: 0, Group: -1, Hosts: []int{1, 2}},
		{At: 2 * des.Second, Kind: FaultOutage, ID: 1, Group: -1, Hosts: []int{2, 3}}})
	mustPanic("restore of unknown outage", []FaultEvent{
		{At: des.Second, Kind: FaultRestore, ID: 9, Group: -1, Hosts: []int{1}}})
	mustPanic("restore host mismatch", []FaultEvent{
		{At: des.Second, Kind: FaultOutage, ID: 0, Group: -1, Hosts: []int{1, 2}},
		{At: 2 * des.Second, Kind: FaultRestore, ID: 0, Group: -1, Hosts: []int{1}}})
	mustPanic("short side bitmap", []FaultEvent{
		{At: des.Second, Kind: FaultPartition, ID: 0, Group: -1, Side: []bool{true, false}}})
	mustPanic("degenerate bipartition", []FaultEvent{
		{At: des.Second, Kind: FaultPartition, ID: 0, Group: -1, Side: make([]bool, 24)}})
	mustPanic("overlapping partitions", []FaultEvent{
		{At: des.Second, Kind: FaultPartition, ID: 0, Group: -1, Side: side},
		{At: 2 * des.Second, Kind: FaultPartition, ID: 1, Group: -1, Side: side}})
	mustPanic("heal without partition", []FaultEvent{
		{At: des.Second, Kind: FaultHeal, ID: 0, Group: -1}})
	mustPanic("mass group out of range", []FaultEvent{
		{At: des.Second, Kind: FaultMassLeave, Group: 99, Hosts: []int{1}}})
}

// TestFaultsRequireRegulatedScheme: capacity-aware trees cannot be
// repaired, so enabling faults under that scheme must refuse to build.
func TestFaultsRequireRegulatedScheme(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity-aware session accepted a fault schedule")
		}
	}()
	cfg := Config{NumHosts: 40, Mix: traffic.MixAudio, Load: 0.6,
		Scheme: SchemeCapacityAware, Duration: des.Second, Seed: 3,
		Faults: []FaultEvent{{At: des.Seconds(0.5), Kind: FaultOutage, ID: 0, Group: -1, Hosts: []int{1}}}}
	New(cfg)
}

// TestFaultFreeConfigUnperturbed: a nil fault list must compile to the
// exact session it always did — same deliveries and WDB bits as a config
// that never heard of faults.
func TestFaultFreeConfigUnperturbed(t *testing.T) {
	a := Run(shardBaseConfig(37))
	b := shardBaseConfig(37)
	b.Faults = nil
	rb := Run(b)
	if a.Delivered != rb.Delivered || a.WDB != rb.WDB || a.Lost != rb.Lost {
		t.Fatalf("fault-free runs diverged: %+v vs %+v", a, rb)
	}
}
