package core

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/traffic"
)

func reoptBaseConfig() Config {
	return Config{
		NumHosts: 90,
		Mix:      traffic.MixAudio,
		Load:     0.7,
		Scheme:   SchemeSRL,
		Duration: 2 * des.Second,
		Seed:     11,
	}
}

// A re-optimization plane whose hysteresis can essentially never be
// cleared must leave the physics untouched: rejected passes mutate
// nothing, and measurement itself is observation-only. Bit-compare
// against the plane being off entirely.
func TestReoptRejectedPassesAreInert(t *testing.T) {
	base := Run(reoptBaseConfig())
	cfg := reoptBaseConfig()
	cfg.Reopt = ReoptConfig{Every: 500 * des.Millisecond, MinImprove: 0.99}
	guarded := Run(cfg)
	if guarded.Reopts != 0 {
		t.Fatalf("%d passes accepted under a 99%% hysteresis margin", guarded.Reopts)
	}
	if guarded.ReoptRejected == 0 {
		t.Fatal("no passes evaluated — the plane never fired")
	}
	if base.Delivered != guarded.Delivered {
		t.Fatalf("delivered %d vs %d", base.Delivered, guarded.Delivered)
	}
	for g := range base.PerGroupWDB {
		if math.Float64bits(base.PerGroupWDB[g]) != math.Float64bits(guarded.PerGroupWDB[g]) {
			t.Fatalf("group %d WDB %.17g vs %.17g — a rejected pass changed the physics",
				g, base.PerGroupWDB[g], guarded.PerGroupWDB[g])
		}
	}
}

// With a permissive margin on a deliberately location-blind tree (NICE
// scatters low layers across domains) the rewire pass must find and
// apply improving moves, and the rewired trees must stay structurally
// valid with membership intact.
func TestReoptRewiresImproveNICETree(t *testing.T) {
	cfg := reoptBaseConfig()
	cfg.Strategy = "nice"
	cfg.Reopt = ReoptConfig{Every: 250 * des.Millisecond, MinImprove: 0.02, MaxMoves: 3}
	s := NewSession(cfg)
	res := s.Run()
	if res.Delivered == 0 {
		t.Fatal("inert run")
	}
	if res.Reopts == 0 || res.ReoptMoves == 0 {
		t.Fatalf("no rewires accepted (accepted=%d moves=%d rejected=%d)",
			res.Reopts, res.ReoptMoves, res.ReoptRejected)
	}
	for g, tr := range s.Trees() {
		if err := tr.Validate(); err != nil {
			t.Fatalf("group %d tree after rewires: %v", g, err)
		}
		if tr.Size() != cfg.NumHosts {
			t.Fatalf("group %d membership changed: %d members", g, tr.Size())
		}
	}
}

// Rebuild mode swaps whole trees: run it over the nice strategy (whose
// seeded rebuilds genuinely vary) and check the session completes with
// valid trees and consistent accounting.
func TestReoptRebuildMode(t *testing.T) {
	cfg := reoptBaseConfig()
	cfg.Strategy = "nice"
	cfg.Reopt = ReoptConfig{Every: 500 * des.Millisecond, MinImprove: 0.02, Rebuild: true}
	s := NewSession(cfg)
	res := s.Run()
	if res.Delivered == 0 {
		t.Fatal("inert run")
	}
	if res.Reopts+res.ReoptRejected == 0 {
		t.Fatal("no rebuild passes evaluated")
	}
	for g, tr := range s.Trees() {
		if err := tr.Validate(); err != nil {
			t.Fatalf("group %d tree after rebuilds: %v", g, err)
		}
	}
}

// Every registered strategy must compile and run a session end to end,
// delivering to all members over a valid tree.
func TestSessionRunsEveryStrategy(t *testing.T) {
	for _, name := range []string{"dsct", "nice", "spt", "greedy"} {
		cfg := reoptBaseConfig()
		cfg.Strategy = name
		s := NewSession(cfg)
		res := s.Run()
		if res.Delivered == 0 {
			t.Fatalf("strategy %s: no deliveries", name)
		}
		for g, tr := range s.Trees() {
			if err := tr.Validate(); err != nil {
				t.Fatalf("strategy %s group %d: %v", name, g, err)
			}
		}
	}
}

func TestUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy must panic at compile")
		}
	}()
	cfg := reoptBaseConfig()
	cfg.Strategy = "no-such"
	NewSession(cfg)
}

func TestStrategyRejectedForCapacityAware(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity-aware + strategy must panic")
		}
	}()
	cfg := reoptBaseConfig()
	cfg.Scheme = SchemeCapacityAware
	cfg.Strategy = "spt"
	NewSession(cfg)
}

// Churn through a non-cluster strategy: joins and leaves must flow
// through the spt graft rule and keep the trees valid.
func TestChurnUsesStrategyGraftPoints(t *testing.T) {
	cfg := reoptBaseConfig()
	cfg.Strategy = "spt"
	cfg.Groups = []GroupSpec{
		{Source: 0, Members: rangeInts(0, 60)},
		{Source: 1, Members: rangeInts(0, 45)},
	}
	cfg.Events = []MembershipEvent{
		{At: 200 * des.Millisecond, Group: 0, Host: 70, Join: true},
		{At: 300 * des.Millisecond, Group: 1, Host: 75, Join: true},
		{At: 700 * des.Millisecond, Group: 0, Host: 10},
		{At: 900 * des.Millisecond, Group: 0, Host: 70},
		{At: 1200 * des.Millisecond, Group: 1, Host: 20},
	}
	s := NewSession(cfg)
	res := s.Run()
	if res.Joins != 2 || res.Leaves != 3 {
		t.Fatalf("joins=%d leaves=%d, want 2/3 (rejected=%d)", res.Joins, res.Leaves, res.RejectedEvents)
	}
	for g, tr := range s.Trees() {
		if err := tr.Validate(); err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// Re-optimization composes with churn and sharding: the sharded run of a
// churn+reopt session must reproduce the sequential one bit for bit —
// deliveries, losses, per-group WDB bits, and the control/reopt counters.
func TestShardDifferentialReopt(t *testing.T) {
	cfg := reoptBaseConfig()
	cfg.NumHosts = 120
	cfg.Groups = []GroupSpec{
		{Source: 0, Members: rangeInts(0, 80)},
		{Source: 5, Members: rangeInts(0, 60)},
		{Source: 2, Members: rangeInts(0, 40)},
	}
	cfg.Events = []MembershipEvent{
		{At: 300 * des.Millisecond, Group: 0, Host: 90, Join: true},
		{At: 500 * des.Millisecond, Group: 1, Host: 95, Join: true},
		{At: 800 * des.Millisecond, Group: 0, Host: 30},
		{At: 1100 * des.Millisecond, Group: 2, Host: 15},
		{At: 1500 * des.Millisecond, Group: 1, Host: 95},
	}
	cfg.Reopt = ReoptConfig{Every: 400 * des.Millisecond, MinImprove: 0.02, MaxMoves: 2}
	cfg.WindowSec = 0.5
	seq := Run(cfg)
	if seq.Delivered == 0 {
		t.Fatal("inert workload")
	}
	cfg.Shards = 4
	sh := Run(cfg)
	if seq.Delivered != sh.Delivered || seq.Lost != sh.Lost {
		t.Fatalf("delivered/lost (%d,%d) vs (%d,%d)", seq.Delivered, seq.Lost, sh.Delivered, sh.Lost)
	}
	if seq.Reopts != sh.Reopts || seq.ReoptMoves != sh.ReoptMoves || seq.ReoptRejected != sh.ReoptRejected {
		t.Fatalf("reopt counters (%d,%d,%d) vs (%d,%d,%d)",
			seq.Reopts, seq.ReoptMoves, seq.ReoptRejected, sh.Reopts, sh.ReoptMoves, sh.ReoptRejected)
	}
	if seq.Joins != sh.Joins || seq.Leaves != sh.Leaves || seq.Regrafts != sh.Regrafts {
		t.Fatalf("churn counters (%d,%d,%d) vs (%d,%d,%d)",
			seq.Joins, seq.Leaves, seq.Regrafts, sh.Joins, sh.Leaves, sh.Regrafts)
	}
	for g := range seq.PerGroupWDB {
		if math.Float64bits(seq.PerGroupWDB[g]) != math.Float64bits(sh.PerGroupWDB[g]) {
			t.Fatalf("group %d WDB %.17g vs %.17g", g, seq.PerGroupWDB[g], sh.PerGroupWDB[g])
		}
	}
	if len(seq.WindowMax) != len(sh.WindowMax) {
		t.Fatalf("window series length %d vs %d", len(seq.WindowMax), len(sh.WindowMax))
	}
	for i := range seq.WindowMax {
		if math.Float64bits(seq.WindowMax[i]) != math.Float64bits(sh.WindowMax[i]) {
			t.Fatalf("window %d: %.17g vs %.17g", i, seq.WindowMax[i], sh.WindowMax[i])
		}
	}
}
