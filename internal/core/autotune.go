package core

import (
	"runtime"

	"repro/internal/des"
)

// ShardProbe is one auto-tune measurement: a candidate shard count and the
// barrier-stall share a short probe run measured at it.
type ShardProbe struct {
	Shards     int
	StallShare float64
	Epochs     uint64
}

// DefaultShardCandidates returns the shard counts AutoTuneShards probes
// when the caller passes none: powers of two from 2 up to GOMAXPROCS
// (always at least {2}).
func DefaultShardCandidates() []int {
	max := runtime.GOMAXPROCS(0)
	cands := []int{2}
	for n := 4; n <= max; n *= 2 {
		cands = append(cands, n)
	}
	return cands
}

// AutoTuneShards picks a shard count for cfg by measurement: it runs a
// short probe session at each candidate count and returns the one whose
// barrier-stall share — the fraction of shard-step capacity idled waiting
// at epoch barriers, a deterministic event-count ratio independent of
// machine load — is smallest. Ties break toward fewer shards (less
// coordination for the same balance). Candidates that collapse to a
// sequential run (partition produced one shard) are skipped; if every
// candidate collapses, it returns 1.
//
// probe is the simulated duration of each probe run; 0 means one tenth of
// cfg.Duration, floored at one simulated second. Stall share is a property
// of how evenly the partition splits event load across epochs, which a
// short prefix of the run already exhibits; probing the full duration
// would cost more than the tuning saves.
//
// The probes run sequentially on the calling goroutine — each sharded
// probe already spreads over the cores, so overlapping probes would just
// contend with each other.
func AutoTuneShards(cfg Config, candidates []int, probe des.Duration) (int, []ShardProbe) {
	if len(candidates) == 0 {
		candidates = DefaultShardCandidates()
	}
	if probe <= 0 {
		probe = cfg.Duration / 10
		if probe < des.Second {
			probe = des.Second
		}
	}
	if cfg.Duration > 0 && probe > cfg.Duration {
		probe = cfg.Duration
	}
	pcfg := cfg
	pcfg.Duration = probe

	best := 1
	bestStall := 0.0
	var probes []ShardProbe
	for _, n := range candidates {
		if n < 2 {
			continue
		}
		pcfg.Shards = n
		r := Run(pcfg)
		if r.Shards < 2 {
			continue // partition collapsed: candidate is not really sharded
		}
		probes = append(probes, ShardProbe{Shards: r.Shards, StallShare: r.StallShare, Epochs: r.Epochs})
		if best == 1 || r.StallShare < bestStall {
			best, bestStall = n, r.StallShare
		}
	}
	return best, probes
}
