package core

// The session control plane: membership changes are discrete events that
// graft and prune group members while the simulation runs. A join picks a
// deterministic graft point (nearest attached member by RTT, inside the
// Lemma 2 height bound and the cluster fanout cap) and wires the adopting
// host's forwarding state; a leave prunes the member, re-parents its
// orphaned subtrees, tears down the departed forwarder's regulator bank
// (backlog counted as churn loss), and re-staggers any freshly created
// duty cycles onto the global schedule. Everything is a pure function of
// (config, events), so churn runs are as reproducible as static ones.

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/topo"
)

// MembershipEvent is one dynamic membership change: Host joins or leaves
// Group at simulated time At. Events addressed to the group's source, to
// a current member (join), or to a non-member (leave) are counted as
// rejected and otherwise ignored — churn models may race a lifetime
// expiry against other churn, and a no-op is the right outcome.
type MembershipEvent struct {
	At    des.Time
	Group int
	Host  int
	Join  bool
}

// String implements fmt.Stringer.
func (e MembershipEvent) String() string {
	verb := "leave"
	if e.Join {
		verb = "join"
	}
	return fmt.Sprintf("%v host %d %s group %d", e.At, e.Host, verb, e.Group)
}

// controlPlane applies membership events to a session's per-group runtime
// state. It holds the substrate's shared structures and the host array
// directly rather than a *Session, because both the sequential Session and
// the sharded session drive the same control plane — the former through
// engine events, the latter through coordinator barriers that quiesce
// every shard before a mutation spanning them.
type controlPlane struct {
	net    *topo.Network
	groups []*groupState
	hosts  []*host
	// down, when the session has a fault plane, is its outage bitmap
	// (shared slice): hosts under an outage are barred from joining until
	// restored. Nil without faults.
	down []bool

	joins, leaves, regrafts, rejected int
}

func newControlPlane(sub *substrate, hosts []*host) *controlPlane {
	return &controlPlane{
		net:    sub.net,
		groups: sub.groups,
		hosts:  hosts,
	}
}

// sortedEventsWithin returns the events at or before duration, stably
// sorted by time — the application order both execution modes share.
// Events beyond the traffic duration are dropped: the sources have
// stopped, so late churn would only distort the drain tail.
func sortedEventsWithin(events []MembershipEvent, duration des.Duration) []MembershipEvent {
	evs := append([]MembershipEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	n := 0
	for _, ev := range evs {
		if ev.At <= duration {
			evs[n] = ev
			n++
		}
	}
	return evs[:n]
}

// scheduleAfter enqueues the events strictly after the given instant on
// the engine in time order — the sequential execution path (after = -1
// schedules everything; a checkpoint restore passes the snapshot instant
// to re-create only the events that had not fired). Scheduling at build
// time gives the events the lowest sequence numbers at their timestamps,
// so they win same-time ties against packet events; coordinator barriers
// reproduce exactly this ordering in sharded runs. Events are tagged
// KindBuild: they are rebuilt from the config on restore, never
// serialized.
func (cp *controlPlane) scheduleAfter(eng *des.Engine, duration des.Duration, events []MembershipEvent, after des.Time) {
	for _, ev := range sortedEventsWithin(events, duration) {
		if ev.At <= after {
			continue
		}
		ev := ev
		eng.ScheduleKind(ev.At, des.KindBuild, 0, func() { cp.apply(ev) })
	}
}

// apply executes one membership change.
func (cp *controlPlane) apply(ev MembershipEvent) {
	if ev.Group < 0 || ev.Group >= len(cp.groups) ||
		ev.Host < 0 || ev.Host >= len(cp.hosts) {
		cp.rejected++
		return
	}
	if ev.Join {
		cp.join(ev.Group, ev.Host)
	} else {
		cp.leave(ev.Group, ev.Host)
	}
}

// join grafts host h onto group g: h becomes a member and a leaf of the
// delivery tree under its graft point, whose host machinery picks up the
// new child connection (and, if it was not forwarding g before, a
// re-staggered regulator).
func (cp *controlPlane) join(g, h int) {
	st := cp.groups[g]
	if st.member[h] || st.strat == nil || (cp.down != nil && cp.down[h]) {
		cp.rejected++
		return
	}
	parent, err := st.strat.GraftPoint(cp.net, st.tree, h, 0, st.lim)
	if err != nil {
		cp.rejected++
		return
	}
	if err := st.tree.Graft(h, parent); err != nil {
		panic(fmt.Sprintf("core: control plane graft: %v", err))
	}
	st.member[h] = true
	cp.hosts[parent].attachChild(g, h)
	cp.joins++
}

// leave prunes host h from group g: h's parent stops feeding it, h's own
// forwarding state for g tears down (regulator backlog abandoned and
// counted), and each subtree h was feeding re-parents under its repair
// graft point. Packets to h already in flight are dropped on arrival by
// Session.receive. The group's source never leaves.
func (cp *controlPlane) leave(g, h int) {
	st := cp.groups[g]
	if !st.member[h] || h == st.tree.Source || st.strat == nil {
		cp.rejected++
		return
	}
	if !st.tree.Attached(h) {
		// h sits in a partition-severed subtree: no repair happens on the
		// dark side (see faults.go), so its orphans join the deferred set
		// instead of re-grafting. Unreachable without an active partition.
		cp.leaveDetached(g, h)
		return
	}
	parent := st.tree.Parent(h)
	orphans, err := st.tree.Prune(h)
	if err != nil {
		panic(fmt.Sprintf("core: control plane prune: %v", err))
	}
	st.member[h] = false
	st.lost += uint64(cp.hosts[parent].removeChild(g, h))
	st.lost += uint64(cp.hosts[h].detachGroup(g))
	// Repair through the group's strategy: the cluster strategies resolve
	// to the pre-strategy RTT-nearest protocol, spt repairs by path delay.
	parents, err := st.tree.RepairWith(orphans, func(o, subHeight int) (int, error) {
		return st.strat.GraftPoint(cp.net, st.tree, o, subHeight, st.lim)
	})
	if err != nil {
		panic(fmt.Sprintf("core: control plane repair: %v", err))
	}
	for i, o := range orphans {
		cp.hosts[parents[i]].attachChild(g, o)
		cp.regrafts++
	}
	cp.leaves++
}

// leaveDetached prunes a member inside a partition-severed subtree: the
// member's forwarding state tears down exactly as on an attached leave,
// but its children become detached roots themselves and wait in the
// group's deferred-repair set for the heal — repairs only happen on the
// attached side of a cut.
func (cp *controlPlane) leaveDetached(g, h int) {
	st := cp.groups[g]
	parent, hasParent := st.tree.ParentOf(h)
	orphans, err := st.tree.PruneAll([]int{h})
	if err != nil {
		panic(fmt.Sprintf("core: control plane prune: %v", err))
	}
	st.member[h] = false
	if hasParent {
		st.lost += uint64(cp.hosts[parent].removeChild(g, h))
	}
	st.lost += uint64(cp.hosts[h].detachGroup(g))
	// h, if it was itself a parked root, is replaced by its children.
	n := 0
	for _, r := range st.detached {
		if r != h {
			st.detached[n] = r
			n++
		}
	}
	st.detached = append(st.detached[:n], orphans...)
	sort.Ints(st.detached)
	cp.leaves++
}
