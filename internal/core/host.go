package core

import (
	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/regulator"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func secs(s float64) des.Duration { return des.Seconds(s) }

// hostEnv is what a regulated host needs from its surrounding session.
type hostEnv struct {
	eng        *des.Engine
	specs      []FlowSpec
	conn       float64 // base per-connection capacity C (bits/second)
	mults      []float64
	bursts     []float64
	discipline mux.Discipline
	aligned    bool // stagger ablation: align all duty-cycle phases
	send       func(from, to int, p traffic.Packet)
	// capAware selects the capacity-aware connection model: the host's
	// aggregate uplink of capFactor × its own C splits across its
	// distinct child connections. Regulated schemes instead give every
	// connection the host's full C (the paper's per-output-link model).
	capAware  bool
	capFactor float64
}

// hostConn returns host id's per-connection capacity: the base C scaled
// by the host's uplink class multiplier (1 for the paper's homogeneous
// population).
func (e *hostEnv) hostConn(id int) float64 {
	if e.mults == nil {
		return e.conn
	}
	return e.conn * e.mults[id]
}

// connectionCapacity returns the capacity of one output connection for
// host id with the given number of distinct child connections.
func (e *hostEnv) connectionCapacity(id, numConns int) float64 {
	c := e.hostConn(id)
	if !e.capAware {
		return c
	}
	if numConns < 1 {
		numConns = 1
	}
	return e.capFactor * c / float64(numConns)
}

// host models one regulated group end host: per-flow regulators feeding a
// replicator that fans out into one general MUX per child connection
// (Section III's model, one MUX per output link).
type host struct {
	id      int
	env     *hostEnv
	conn    float64 // this host's per-connection capacity
	mode    Scheme  // the concrete scheme in force at any instant
	modeSet bool

	// children[g] lists this host's child hosts in group g's tree (empty
	// for groups the host does not forward — including every group the
	// host is not even a member of).
	children [][]int
	// connections de-duplicates children across groups.
	muxes map[int]*mux.Mux

	// Regulator banks: built lazily per mode, and only for the groups
	// this host actually forwards (partial-membership sessions would
	// otherwise build K regulators at every host for mostly-idle flows).
	// Entries for non-forwarding groups stay nil. Indexed by flow/group.
	srBank     []*regulator.SigmaRho
	srlBank    []*regulator.SRL
	srlCycling bool

	// Adaptive-control state.
	rate     *stats.WindowRate
	switches int
}

// newHost wires a host for its (per-group) child sets. Hosts with no
// children build no forwarding machinery.
func newHost(id int, env *hostEnv, children [][]int, initial Scheme) *host {
	h := &host{id: id, env: env, conn: env.hostConn(id), children: children,
		muxes: make(map[int]*mux.Mux)}
	distinct := make(map[int]bool)
	for _, cs := range children {
		for _, c := range cs {
			distinct[c] = true
		}
	}
	forwards := len(distinct) > 0
	connCap := env.connectionCapacity(id, len(distinct))
	for c := range distinct {
		child := c
		h.muxes[c] = mux.New(env.eng, len(env.specs), connCap, env.discipline,
			func(p traffic.Packet) { env.send(h.id, child, p) })
	}
	if forwards {
		h.setMode(initialMode(initial))
	}
	return h
}

func initialMode(s Scheme) Scheme {
	if s == SchemeAdaptive {
		return SchemeSigmaRho // the algorithm's normal-load default
	}
	return s
}

// forward pushes a group-g packet into the active regulator bank (or
// straight to the replicator for the capacity-aware scheme).
func (h *host) forward(g int, p traffic.Packet) {
	if len(h.children[g]) == 0 {
		return
	}
	switch h.mode {
	case SchemeSigmaRho:
		h.srBank[g].Enqueue(p)
	case SchemeSRL:
		h.srlBank[g].Enqueue(p)
	default: // capacity-aware: no regulation
		h.replicate(g, p)
	}
}

// replicate copies the packet into the MUX of every child connection for
// its group.
func (h *host) replicate(g int, p traffic.Packet) {
	for _, c := range h.children[g] {
		h.muxes[c].Enqueue(p)
	}
}

// workPeriod returns group g's (σ, ρ, λ) working period W = σ/(C−ρ) at
// this host's capacity — needed for stagger offsets even for groups the
// host builds no regulator for.
func (h *host) workPeriod(g int) des.Duration {
	return des.Seconds(h.env.bursts[g] / (h.conn - h.env.specs[g].Rho))
}

// startCycles launches the duty cycles of the host's SRL bank. Offsets
// follow the paper's round-robin stagger — group g starts after the
// working periods of all groups before it — and are accumulated over the
// full group index range, so a host that forwards only groups {2, 5}
// phases them exactly as a host forwarding every group would: the stagger
// schedule is a per-group global, not a per-host accident of which trees
// put children here.
func (h *host) startCycles() {
	var offset des.Duration
	for g, r := range h.srlBank {
		if r != nil {
			if h.env.aligned {
				r.StartCycle(0)
			} else {
				r.StartCycle(offset)
			}
		}
		offset += h.workPeriod(g)
	}
	h.srlCycling = true
}

// stopCycles halts the duty cycles and reopens the vacated queues so
// residual packets drain.
func (h *host) stopCycles() {
	for _, r := range h.srlBank {
		if r != nil {
			r.StopCycle()
		}
	}
	h.srlCycling = false
	for _, r := range h.srlBank {
		if r != nil {
			r.SetOn(true)
		}
	}
}

// setMode activates the regulator bank for the given scheme, building
// banks on first use. Packets already queued in the previous bank keep
// draining through it (make-before-break), so no traffic is lost on a
// switch.
func (h *host) setMode(m Scheme) {
	if h.modeSet && m == h.mode {
		return
	}
	env := h.env
	switch m {
	case SchemeSigmaRho:
		if h.srBank == nil {
			h.srBank = make([]*regulator.SigmaRho, len(env.specs))
			for g := range env.specs {
				if len(h.children[g]) == 0 {
					continue
				}
				g := g
				h.srBank[g] = regulator.NewSigmaRho(env.eng, env.bursts[g], env.specs[g].Rho,
					func(p traffic.Packet) { h.replicate(g, p) })
			}
		}
		if h.srlCycling {
			h.stopCycles()
		}
	case SchemeSRL:
		if h.srlBank == nil {
			h.srlBank = make([]*regulator.SRL, len(env.specs))
			for g := range env.specs {
				if len(h.children[g]) == 0 {
					continue
				}
				g := g
				h.srlBank[g] = regulator.NewSRL(env.eng, env.bursts[g], env.specs[g].Rho, h.conn,
					func(p traffic.Packet) { h.replicate(g, p) })
			}
		} else {
			// Returning to SRL: close the held-open queues before the
			// stagger re-drives them.
			for _, r := range h.srlBank {
				if r != nil {
					r.SetOn(false)
				}
			}
		}
		h.startCycles()
	case SchemeCapacityAware:
		// No regulation machinery.
	default:
		panic("core: setMode with non-concrete scheme")
	}
	if h.modeSet {
		h.switches++
	}
	h.mode = m
	h.modeSet = true
}

// observe feeds the adaptive controller's rate estimator.
func (h *host) observe(p traffic.Packet) {
	if h.rate != nil {
		h.rate.Observe(h.env.eng.Now(), p.Size)
	}
}

// controller runs the paper's Adaptive Control Algorithm at this host:
// every interval it computes the average input rate of the K̂ flows and
// selects the (σ, ρ) model below thresholdUtil, the (σ, ρ, λ) model at or
// above it. Utilisation is measured against this host's own capacity, so
// heterogeneous-uplink hosts switch on their local congestion, not the
// population average.
func (h *host) startController(window, interval des.Duration, thresholdUtil float64) {
	h.rate = stats.NewWindowRate(window)
	des.NewTicker(h.env.eng, interval, func() {
		util := h.rate.Rate(h.env.eng.Now()) / h.conn
		if util >= thresholdUtil {
			h.setMode(SchemeSRL)
		} else {
			h.setMode(SchemeSigmaRho)
		}
	})
}
