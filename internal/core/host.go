package core

import (
	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/regulator"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func secs(s float64) des.Duration { return des.Seconds(s) }

// compIdent names a registered component: the host that owns it and the
// child connection (MUX) or group (regulator) it serves.
type compIdent struct{ host, sub int32 }

// hostEnv is what a regulated host needs from its surrounding session.
type hostEnv struct {
	eng        *des.Engine
	specs      []FlowSpec
	conn       float64 // base per-connection capacity C (bits/second)
	mults      []float64
	bursts     []float64
	discipline mux.Discipline
	aligned    bool    // stagger ablation: align all duty-cycle phases
	threshold  float64 // adaptive switching utilisation (for late attach)
	send       func(from, to int, p traffic.Packet)
	// capAware selects the capacity-aware connection model: the host's
	// aggregate uplink of capFactor × its own C splits across its
	// distinct child connections. Regulated schemes instead give every
	// connection the host's full C (the paper's per-output-link model).
	capAware  bool
	capFactor float64

	// Component registries for checkpointing (snapshot.go): every MUX and
	// regulator created on this engine registers here in creation order,
	// and its registry slot becomes the snapArg its pending events carry.
	// Append-only — a component detached mid-run keeps its slot, because
	// an event already in the queue may still name it.
	muxReg   []*mux.Mux
	muxIdent []compIdent // sub = child connection
	srReg    []*regulator.SigmaRho
	srIdent  []compIdent // sub = group
	srlReg   []*regulator.SRL
	srlIdent []compIdent // sub = group
}

func (e *hostEnv) registerMux(m *mux.Mux, host, child int) {
	m.SetSnapArg(uint32(len(e.muxReg)))
	e.muxReg = append(e.muxReg, m)
	e.muxIdent = append(e.muxIdent, compIdent{int32(host), int32(child)})
}

func (e *hostEnv) registerSR(s *regulator.SigmaRho, host, group int) {
	s.SetSnapArg(uint32(len(e.srReg)))
	e.srReg = append(e.srReg, s)
	e.srIdent = append(e.srIdent, compIdent{int32(host), int32(group)})
}

func (e *hostEnv) registerSRL(r *regulator.SRL, host, group int) {
	r.SetSnapArg(uint32(len(e.srlReg)))
	e.srlReg = append(e.srlReg, r)
	e.srlIdent = append(e.srlIdent, compIdent{int32(host), int32(group)})
}

// hostConn returns host id's per-connection capacity: the base C scaled
// by the host's uplink class multiplier (1 for the paper's homogeneous
// population).
func (e *hostEnv) hostConn(id int) float64 {
	if e.mults == nil {
		return e.conn
	}
	return e.conn * e.mults[id]
}

// connectionCapacity returns the capacity of one output connection for
// host id with the given number of distinct child connections.
func (e *hostEnv) connectionCapacity(id, numConns int) float64 {
	c := e.hostConn(id)
	if !e.capAware {
		return c
	}
	if numConns < 1 {
		numConns = 1
	}
	return e.capFactor * c / float64(numConns)
}

// host models one regulated group end host: per-flow regulators feeding a
// replicator that fans out into one general MUX per child connection
// (Section III's model, one MUX per output link).
type host struct {
	id      int
	env     *hostEnv
	conn    float64 // this host's per-connection capacity
	scheme  Scheme  // the session's configured scheme
	mode    Scheme  // the concrete scheme in force at any instant
	modeSet bool

	// children holds this host's per-group child sets, flattened to the
	// groups the host actually forwards (see groupChildren) — absent
	// groups, including every group the host is not a member of, cost
	// nothing.
	children groupChildren
	// Connections de-duplicate children across groups, flattened to
	// sorted parallel arrays (same rationale as groupChildren): muxChild
	// holds the ascending child ids with live connections, muxes the
	// matching MUXes. The map this replaces was the last per-host
	// map-backed hot-path structure — 100k hosts of small maps cost the
	// GC a scan stop at every connection on every cycle.
	muxChild []int32
	muxes    []*mux.Mux

	// Regulator banks: built lazily per mode, and only for the groups
	// this host actually forwards (partial-membership sessions would
	// otherwise build K regulators at every host for mostly-idle flows).
	// Entries for non-forwarding groups stay nil. Indexed by flow/group.
	srBank     []*regulator.SigmaRho
	srlBank    []*regulator.SRL
	srlCycling bool

	// Adaptive-control state. ctlFn is the controller's self-rearming
	// sampling tick, built once by prepareController; its events carry
	// des.KindCtlTick with arg = host id so checkpoints can rehydrate them.
	rate     *stats.WindowRate
	ctlFn    func()
	switches int
}

// Adaptive controller sampling parameters (paper's Adaptive Control
// Algorithm defaults); named so the checkpoint restore rebuilds the
// controller with exactly the creation-site values.
const (
	ctlWindow   = des.Second
	ctlInterval = 250 * des.Millisecond
)

// newHost wires a host for its (per-group) child sets. Hosts with no
// children build no forwarding machinery.
func newHost(id int, env *hostEnv, children groupChildren, initial Scheme) *host {
	return newHostWired(id, env, children, connsOf(children), initial)
}

// connsOf returns the distinct child connections of a child set, sorted —
// the wiring plan newHostWired consumes. Pure: session builds precompute
// it for every host in parallel (see hostConns).
func connsOf(children groupChildren) []int {
	var conns []int
	children.each(func(_ int, cs []int) {
		for _, c := range cs {
			conns = insertSortedDistinct(conns, c)
		}
	})
	return conns
}

// newHostWired is newHost with the connection plan precomputed. conns must
// be sorted ascending and distinct. MUXes are created in that sorted
// order: component registry slots must be deterministic for snapshots to
// be stable.
func newHostWired(id int, env *hostEnv, children groupChildren, conns []int, initial Scheme) *host {
	h := &host{id: id, env: env, conn: env.hostConn(id), scheme: initial,
		children: children}
	forwards := len(conns) > 0
	connCap := env.connectionCapacity(id, len(conns))
	h.muxChild = make([]int32, 0, len(conns))
	h.muxes = make([]*mux.Mux, 0, len(conns))
	for _, c := range conns {
		child := c
		m := mux.New(env.eng, len(env.specs), connCap, env.discipline,
			func(p traffic.Packet) { env.send(h.id, child, p) })
		env.registerMux(m, h.id, c)
		h.muxChild = append(h.muxChild, int32(c))
		h.muxes = append(h.muxes, m)
	}
	if forwards {
		h.setMode(initialMode(initial))
	}
	return h
}

// findMux returns child connection c's slot index, or -1.
func (h *host) findMux(c int) int {
	lo, hi := 0, len(h.muxChild)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(h.muxChild[mid]) < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.muxChild) && int(h.muxChild[lo]) == c {
		return lo
	}
	return -1
}

// muxAt returns child connection c's MUX, or nil when none is wired.
func (h *host) muxAt(c int) *mux.Mux {
	if i := h.findMux(c); i >= 0 {
		return h.muxes[i]
	}
	return nil
}

// putMux wires m as child connection c's MUX (sorted insert).
func (h *host) putMux(c int, m *mux.Mux) {
	lo, hi := 0, len(h.muxChild)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(h.muxChild[mid]) < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.muxChild) && int(h.muxChild[lo]) == c {
		h.muxes[lo] = m
		return
	}
	h.muxChild = append(h.muxChild, 0)
	h.muxes = append(h.muxes, nil)
	copy(h.muxChild[lo+1:], h.muxChild[lo:])
	copy(h.muxes[lo+1:], h.muxes[lo:])
	h.muxChild[lo] = int32(c)
	h.muxes[lo] = m
}

// dropMux unwires child connection c's MUX (a no-op when absent).
// In-flight MUX traffic still drains through the engine.
func (h *host) dropMux(c int) {
	i := h.findMux(c)
	if i < 0 {
		return
	}
	copy(h.muxChild[i:], h.muxChild[i+1:])
	copy(h.muxes[i:], h.muxes[i+1:])
	h.muxChild = h.muxChild[:len(h.muxChild)-1]
	h.muxes[len(h.muxes)-1] = nil
	h.muxes = h.muxes[:len(h.muxes)-1]
}

func initialMode(s Scheme) Scheme {
	if s == SchemeAdaptive {
		return SchemeSigmaRho // the algorithm's normal-load default
	}
	return s
}

// forward pushes a group-g packet into the active regulator bank (or
// straight to the replicator for the capacity-aware scheme).
func (h *host) forward(g int, p traffic.Packet) {
	if len(h.children.get(g)) == 0 {
		return
	}
	switch h.mode {
	case SchemeSigmaRho:
		h.srBank[g].Enqueue(p)
	case SchemeSRL:
		h.srlBank[g].Enqueue(p)
	default: // capacity-aware: no regulation
		h.replicate(g, p)
	}
}

// replicate copies the packet into the MUX of every child connection for
// its group.
func (h *host) replicate(g int, p traffic.Packet) {
	for _, c := range h.children.get(g) {
		h.muxAt(c).Enqueue(p)
	}
}

// workPeriod returns group g's (σ, ρ, λ) working period W = σ/(C−ρ) at
// this host's capacity — needed for stagger offsets even for groups the
// host builds no regulator for.
func (h *host) workPeriod(g int) des.Duration {
	return des.Seconds(h.env.bursts[g] / (h.conn - h.env.specs[g].Rho))
}

// staggerOffset returns group g's phase offset in the global round-robin
// stagger schedule: the sum of the working periods of all groups before
// it, accumulated over the full group index range, so a host that
// forwards only groups {2, 5} phases them exactly as a host forwarding
// every group would — the stagger schedule is a per-group global, not a
// per-host accident of which trees put children here.
func (h *host) staggerOffset(g int) des.Duration {
	if h.env.aligned {
		return 0
	}
	var offset des.Duration
	for j := 0; j < g; j++ {
		offset += h.workPeriod(j)
	}
	return offset
}

// startCycles launches the duty cycles of the host's SRL bank on the
// paper's round-robin stagger, phase-anchored at simulation time zero: at
// session build this is the plain staggered start, and for banks
// (re)started mid-run — an adaptive switch back to (σ, ρ, λ), or a host
// that begins forwarding because churn grafted children under it — the
// regulators drop into the phase the global schedule prescribes for the
// current instant, so re-staggering is deterministic and independent of
// when (or in what order) hosts pick up forwarding duties.
func (h *host) startCycles() {
	for g, r := range h.srlBank {
		if r != nil {
			r.StartCyclePhased(h.staggerOffset(g))
		}
	}
	h.srlCycling = true
}

// stopCycles halts the duty cycles and reopens the vacated queues so
// residual packets drain.
func (h *host) stopCycles() {
	for _, r := range h.srlBank {
		if r != nil {
			r.StopCycle()
		}
	}
	h.srlCycling = false
	for _, r := range h.srlBank {
		if r != nil {
			r.SetOn(true)
		}
	}
}

// ensureSRBank fills the (σ, ρ) bank for every group this host currently
// forwards, creating the bank on first use. Under static membership this
// runs once with the build-time child sets; under churn it also fills
// entries for groups whose children arrived after the bank was built.
func (h *host) ensureSRBank() {
	env := h.env
	if h.srBank == nil {
		h.srBank = make([]*regulator.SigmaRho, len(env.specs))
	}
	h.children.each(func(g int, kids []int) {
		if len(kids) == 0 || h.srBank[g] != nil {
			return
		}
		s := regulator.NewSigmaRho(env.eng, env.bursts[g], env.specs[g].Rho,
			func(p traffic.Packet) { h.replicate(g, p) })
		env.registerSR(s, h.id, g)
		h.srBank[g] = s
	})
}

// ensureSRLBank is ensureSRBank for the (σ, ρ, λ) bank. It does not start
// duty cycles; the caller staggers them.
func (h *host) ensureSRLBank() (fresh bool) {
	env := h.env
	if h.srlBank == nil {
		h.srlBank = make([]*regulator.SRL, len(env.specs))
		fresh = true
	}
	h.children.each(func(g int, kids []int) {
		if len(kids) == 0 || h.srlBank[g] != nil {
			return
		}
		r := regulator.NewSRL(env.eng, env.bursts[g], env.specs[g].Rho, h.conn,
			func(p traffic.Packet) { h.replicate(g, p) })
		env.registerSRL(r, h.id, g)
		h.srlBank[g] = r
	})
	return fresh
}

// --- Checkpoint restore factories (snapshot.go) ---
//
// A restored session builds hosts bare (newHostBare) and re-creates each
// serialized component through these helpers, which bind output closures
// identical to the live creation sites above and register the component
// so its replayed events resolve.

// newHostBare is the resume-mode newHost: no children, no MUXes, no mode —
// all of that state comes from the snapshot.
func newHostBare(id int, env *hostEnv, initial Scheme) *host {
	return &host{id: id, env: env, conn: env.hostConn(id), scheme: initial}
}

// restoreMux re-creates (and registers) the connection MUX for child c at
// its serialized capacity, without installing it into h.muxes — a MUX that
// was already torn down but still referenced by a pending event stays
// uninstalled.
func (h *host) restoreMux(c int, capacity float64) *mux.Mux {
	child := c
	m := mux.New(h.env.eng, len(h.env.specs), capacity, h.env.discipline,
		func(p traffic.Packet) { h.env.send(h.id, child, p) })
	h.env.registerMux(m, h.id, c)
	return m
}

// installMux puts a restored live MUX back into service.
func (h *host) installMux(c int, m *mux.Mux) { h.putMux(c, m) }

// restoreSR re-creates (and registers) group g's (σ, ρ) regulator.
func (h *host) restoreSR(g int) *regulator.SigmaRho {
	s := regulator.NewSigmaRho(h.env.eng, h.env.bursts[g], h.env.specs[g].Rho,
		func(p traffic.Packet) { h.replicate(g, p) })
	h.env.registerSR(s, h.id, g)
	return s
}

// installSR puts a restored live (σ, ρ) regulator back into its bank slot.
func (h *host) installSR(g int, s *regulator.SigmaRho) {
	if h.srBank == nil {
		h.srBank = make([]*regulator.SigmaRho, len(h.env.specs))
	}
	h.srBank[g] = s
}

// restoreSRL re-creates (and registers) group g's (σ, ρ, λ) regulator.
func (h *host) restoreSRL(g int) *regulator.SRL {
	r := regulator.NewSRL(h.env.eng, h.env.bursts[g], h.env.specs[g].Rho, h.conn,
		func(p traffic.Packet) { h.replicate(g, p) })
	h.env.registerSRL(r, h.id, g)
	return r
}

// installSRL puts a restored live (σ, ρ, λ) regulator back into its bank
// slot. Duty-cycle state (on/off, cycling, pending phase events) comes from
// the regulator's own restored words and the event replay — nothing here
// starts a cycle.
func (h *host) installSRL(g int, r *regulator.SRL) {
	if h.srlBank == nil {
		h.srlBank = make([]*regulator.SRL, len(h.env.specs))
	}
	h.srlBank[g] = r
}

// setMode activates the regulator bank for the given scheme, building
// banks on first use. Packets already queued in the previous bank keep
// draining through it (make-before-break), so no traffic is lost on a
// switch.
func (h *host) setMode(m Scheme) {
	if h.modeSet && m == h.mode {
		return
	}
	switch m {
	case SchemeSigmaRho:
		h.ensureSRBank()
		if h.srlCycling {
			h.stopCycles()
		}
	case SchemeSRL:
		if !h.ensureSRLBank() {
			// Returning to SRL: close the held-open queues before the
			// stagger re-drives them.
			for _, r := range h.srlBank {
				if r != nil {
					r.SetOn(false)
				}
			}
		}
		h.startCycles()
	case SchemeCapacityAware:
		// No regulation machinery.
	default:
		panic("core: setMode with non-concrete scheme")
	}
	if h.modeSet {
		h.switches++
	}
	h.mode = m
	h.modeSet = true
}

// --- Dynamic forwarding state (driven by the session control plane) ---

// childInAnyGroup reports whether c is a child of this host in any group.
func (h *host) childInAnyGroup(c int) bool {
	for _, cs := range h.children.kids {
		for _, x := range cs {
			if x == c {
				return true
			}
		}
	}
	return false
}

// attachChild registers c as a child of this host in group g's tree,
// wiring the connection MUX and — on a host that was not forwarding at
// all, or was not forwarding this group — the regulator machinery, with
// the new duty cycle re-staggered onto the global schedule.
func (h *host) attachChild(g, c int) {
	h.children.add(g, c)
	if h.findMux(c) < 0 {
		child := c
		m := mux.New(h.env.eng, len(h.env.specs), h.env.connectionCapacity(h.id, len(h.muxes)+1),
			h.env.discipline, func(p traffic.Packet) { h.env.send(h.id, child, p) })
		h.env.registerMux(m, h.id, c)
		h.putMux(c, m)
	}
	if !h.modeSet {
		// First forwarding duty of this host's lifetime: bring up the
		// scheme exactly as a build-time forwarder would, including the
		// adaptive controller if the session runs one.
		h.setMode(initialMode(h.scheme))
		if h.scheme == SchemeAdaptive && h.rate == nil {
			h.startController(ctlWindow, ctlInterval, h.env.threshold)
		}
		return
	}
	h.attachGroup(g)
}

// attachGroup ensures the active bank covers group g after its first
// child arrived mid-run (every other group with children already has its
// entry, so the ensure helpers create exactly g's regulator). A freshly
// created (σ, ρ, λ) regulator starts phase-aligned with the stagger
// schedule the sibling regulators have followed since time zero.
func (h *host) attachGroup(g int) {
	switch h.mode {
	case SchemeSigmaRho:
		if h.srBank != nil && h.srBank[g] == nil {
			h.ensureSRBank()
		}
	case SchemeSRL:
		if h.srlBank != nil && h.srlBank[g] == nil {
			h.ensureSRLBank()
			if h.srlCycling && h.srlBank[g] != nil {
				h.srlBank[g].StartCyclePhased(h.staggerOffset(g))
			}
		}
	}
}

// detachGroup tears down group g's forwarding state at this host: any
// regulator for g detaches (its backlog is abandoned, a mid-transmission
// packet completes), the child list empties, and connections left serving
// no group drop their MUX (in-flight MUX traffic still drains through the
// engine). Sibling groups' regulators and stagger phases are untouched.
// Returns the abandoned backlog size for disruption accounting.
func (h *host) detachGroup(g int) int {
	lost := 0
	if h.srBank != nil && h.srBank[g] != nil {
		lost += h.srBank[g].Detach()
		h.srBank[g] = nil
	}
	if h.srlBank != nil && h.srlBank[g] != nil {
		r := h.srlBank[g]
		lost += r.Detach()
		if r.Transmitting() {
			// The non-preempted packet completes serialisation, but its
			// output replicates into the child set this detach is about
			// to clear — it never reaches anyone, so it counts as lost.
			lost++
		}
		h.srlBank[g] = nil
	}
	old := h.children.get(g)
	h.children.drop(g)
	for _, c := range old {
		if !h.childInAnyGroup(c) {
			h.dropMux(c)
		}
	}
	return lost
}

// removeChild unregisters c from group g. When that was the host's last
// child in g the whole group detaches (regulator backlog abandoned — the
// packets were destined for the departed subtree); the returned count is
// that abandoned backlog.
func (h *host) removeChild(g, c int) int {
	if slot := h.children.find(g); slot >= 0 {
		cs := h.children.kids[slot]
		for i, x := range cs {
			if x == c {
				h.children.kids[slot] = append(cs[:i], cs[i+1:]...)
				break
			}
		}
		if len(h.children.kids[slot]) == 0 {
			return h.detachGroup(g)
		}
	}
	if !h.childInAnyGroup(c) {
		h.dropMux(c)
	}
	return 0
}

// observe feeds the adaptive controller's rate estimator.
func (h *host) observe(p traffic.Packet) {
	if h.rate != nil {
		h.rate.Observe(h.env.eng.Now(), p.Size)
	}
}

// controller runs the paper's Adaptive Control Algorithm at this host:
// every interval it computes the average input rate of the K̂ flows and
// selects the (σ, ρ) model below thresholdUtil, the (σ, ρ, λ) model at or
// above it. Utilisation is measured against this host's own capacity, so
// heterogeneous-uplink hosts switch on their local congestion, not the
// population average.
func (h *host) startController(window, interval des.Duration, thresholdUtil float64) {
	h.prepareController(window, interval, thresholdUtil)
	h.env.eng.ScheduleInKind(interval, des.KindCtlTick, uint32(h.id), h.ctlFn)
}

// prepareController builds the estimator and the self-rearming sampling
// tick without scheduling anything. The tick reproduces des.Ticker's
// semantics exactly — body first, rearm after, period measured from the
// firing time — so the kind-tagged events fire at the same (at, prio, seq)
// a NewTicker would have given them.
func (h *host) prepareController(window, interval des.Duration, thresholdUtil float64) {
	h.rate = stats.NewWindowRate(window)
	h.ctlFn = func() {
		util := h.rate.Rate(h.env.eng.Now()) / h.conn
		if util >= thresholdUtil {
			h.setMode(SchemeSRL)
		} else {
			h.setMode(SchemeSigmaRho)
		}
		h.env.eng.ScheduleInKind(interval, des.KindCtlTick, uint32(h.id), h.ctlFn)
	}
}

// restoreCtlTick re-schedules a serialized controller sampling tick.
func (h *host) restoreCtlTick(at, prio des.Time) {
	h.env.eng.SchedulePrioKind(at, prio, des.KindCtlTick, uint32(h.id), h.ctlFn)
}
