package core

import (
	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/regulator"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func secs(s float64) des.Duration { return des.Seconds(s) }

// hostEnv is what a regulated host needs from its surrounding session.
type hostEnv struct {
	eng        *des.Engine
	specs      []FlowSpec
	conn       float64 // per-connection capacity C (bits/second)
	bursts     []float64
	discipline mux.Discipline
	aligned    bool // stagger ablation: align all duty-cycle phases
	send       func(from, to int, p traffic.Packet)
	// connCap returns the capacity of one output connection for a host
	// with the given number of distinct child connections. Regulated
	// schemes give every connection the full C (the paper's per-output-
	// link model); the capacity-aware scheme splits the host's aggregate
	// uplink across its connections. Nil means full C.
	connCap func(numConns int) float64
}

func (e *hostEnv) connectionCapacity(numConns int) float64 {
	if e.connCap == nil {
		return e.conn
	}
	return e.connCap(numConns)
}

// host models one regulated group end host: per-flow regulators feeding a
// replicator that fans out into one general MUX per child connection
// (Section III's model, one MUX per output link).
type host struct {
	id      int
	env     *hostEnv
	mode    Scheme // the concrete scheme in force at any instant
	modeSet bool

	// children[g] lists this host's child hosts in group g's tree.
	children [][]int
	// connections de-duplicates children across groups.
	muxes map[int]*mux.Mux

	// Regulator banks: built lazily per mode so a fixed-scheme run pays
	// for exactly one bank. Indexed by flow/group.
	srBank  []*regulator.SigmaRho
	srlBank []*regulator.SRL
	stagger *regulator.Stagger

	// Adaptive-control state.
	rate     *stats.WindowRate
	switches int
}

// newHost wires a host for its (per-group) child sets. Hosts with no
// children build no forwarding machinery.
func newHost(id int, env *hostEnv, children [][]int, initial Scheme) *host {
	h := &host{id: id, env: env, children: children, muxes: make(map[int]*mux.Mux)}
	distinct := make(map[int]bool)
	for _, cs := range children {
		for _, c := range cs {
			distinct[c] = true
		}
	}
	forwards := len(distinct) > 0
	connCap := env.connectionCapacity(len(distinct))
	for c := range distinct {
		child := c
		h.muxes[c] = mux.New(env.eng, len(env.specs), connCap, env.discipline,
			func(p traffic.Packet) { env.send(h.id, child, p) })
	}
	if forwards {
		h.setMode(initialMode(initial))
	}
	return h
}

func initialMode(s Scheme) Scheme {
	if s == SchemeAdaptive {
		return SchemeSigmaRho // the algorithm's normal-load default
	}
	return s
}

// forward pushes a group-g packet into the active regulator bank (or
// straight to the replicator for the capacity-aware scheme).
func (h *host) forward(g int, p traffic.Packet) {
	if len(h.children[g]) == 0 {
		return
	}
	switch h.mode {
	case SchemeSigmaRho:
		h.srBank[g].Enqueue(p)
	case SchemeSRL:
		h.srlBank[g].Enqueue(p)
	default: // capacity-aware: no regulation
		h.replicate(g, p)
	}
}

// replicate copies the packet into the MUX of every child connection for
// its group.
func (h *host) replicate(g int, p traffic.Packet) {
	for _, c := range h.children[g] {
		h.muxes[c].Enqueue(p)
	}
}

// setMode activates the regulator bank for the given scheme, building
// banks on first use. Packets already queued in the previous bank keep
// draining through it (make-before-break), so no traffic is lost on a
// switch.
func (h *host) setMode(m Scheme) {
	if h.modeSet && m == h.mode {
		return
	}
	env := h.env
	switch m {
	case SchemeSigmaRho:
		if h.srBank == nil {
			h.srBank = make([]*regulator.SigmaRho, len(env.specs))
			for g := range env.specs {
				g := g
				h.srBank[g] = regulator.NewSigmaRho(env.eng, env.bursts[g], env.specs[g].Rho,
					func(p traffic.Packet) { h.replicate(g, p) })
			}
		}
		if h.stagger != nil {
			h.stagger.Stop()
			h.stagger = nil
			// Reopen the vacated SRL queues so residual packets drain.
			for _, r := range h.srlBank {
				r.SetOn(true)
			}
		}
	case SchemeSRL:
		if h.srlBank == nil {
			h.srlBank = make([]*regulator.SRL, len(env.specs))
			for g := range env.specs {
				g := g
				h.srlBank[g] = regulator.NewSRL(env.eng, env.bursts[g], env.specs[g].Rho, env.conn,
					func(p traffic.Packet) { h.replicate(g, p) })
			}
		} else {
			// Returning to SRL: close the held-open queues before the
			// stagger re-drives them.
			for _, r := range h.srlBank {
				r.SetOn(false)
			}
		}
		h.stagger = regulator.NewStagger(h.srlBank...)
		if env.aligned {
			h.stagger.StartAligned()
		} else {
			h.stagger.Start()
		}
	case SchemeCapacityAware:
		// No regulation machinery.
	default:
		panic("core: setMode with non-concrete scheme")
	}
	if h.modeSet {
		h.switches++
	}
	h.mode = m
	h.modeSet = true
}

// observe feeds the adaptive controller's rate estimator.
func (h *host) observe(p traffic.Packet) {
	if h.rate != nil {
		h.rate.Observe(h.env.eng.Now(), p.Size)
	}
}

// controller runs the paper's Adaptive Control Algorithm at this host:
// every interval it computes the average input rate of the K̂ flows and
// selects the (σ, ρ) model below thresholdUtil, the (σ, ρ, λ) model at or
// above it.
func (h *host) startController(window, interval des.Duration, thresholdUtil float64) {
	h.rate = stats.NewWindowRate(window)
	des.NewTicker(h.env.eng, interval, func() {
		util := h.rate.Rate(h.env.eng.Now()) / h.env.conn
		if util >= thresholdUtil {
			h.setMode(SchemeSRL)
		} else {
			h.setMode(SchemeSigmaRho)
		}
	})
}
