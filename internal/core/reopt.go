package core

// The online tree re-optimization plane: the session measures per-member
// delivery delay while it runs, and periodic Reoptimize DES events rewire
// (or fully rebuild) each group's delivery tree from those measurements —
// routing becomes a measurement-driven decision instead of a build-time
// constant, the dynamic-overlay-routing move of Singh & Modiano and the
// delay-metric route selection of Jonglez et al., applied to the paper's
// multicast trees.
//
// Mechanics. Every delivery folds its source-to-member delay into a
// per-(group, host) running mean; the mean of member m minus the mean of
// its parent is the measured per-hop delay of the overlay edge feeding m,
// so the means embed a live per-hop delay map of the tree. A
// re-optimization pass for group g finds the member with the worst
// measured delay and the attached candidate parent p minimising the
// predicted delay est(p) + latency(p, w) under the group's strategy
// limits (fanout budget, height bound). The move is accepted only under
// hysteresis — predicted < measured × (1 − MinImprove), and not within
// the per-group cooldown window — so trees don't oscillate between two
// near-equal shapes. An accepted rewire is a pure edge swap
// (overlay.Tree.Reparent): membership never changes, in-flight packets
// still deliver, and only the regulator backlog a vacating parent was
// holding for the moved subtree is abandoned (counted as loss, exactly
// like a churn departure's).
//
// Determinism. Estimates are plain (sum, count) pairs indexed by host;
// a host's deliveries happen in identical order in the sequential and
// sharded engines, and a host belongs to exactly one shard, so the means
// are bit-identical across execution modes. Passes fire as ordinary DES
// events in the sequential engine (scheduled at build time, after the
// membership events, so same-instant churn applies first) and at
// coordinator quiesce barriers in sharded runs — the same device the
// membership control plane uses — so sharded re-optimizing runs stay
// bit-identical to sequential ones.

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/overlay"
	"repro/internal/topo"
	"repro/internal/xrand"
)

// ReoptConfig parameterises the re-optimization plane. The zero value
// disables it.
type ReoptConfig struct {
	// Every is the period between re-optimization passes. 0 disables the
	// plane entirely.
	Every des.Duration
	// MinImprove is the hysteresis threshold: a candidate change is
	// accepted only when its predicted delay undercuts the measured one
	// by at least this fraction. Default 0.1.
	MinImprove float64
	// Cooldown is the per-group quiet period after an accepted change,
	// so a freshly rewired tree accumulates fresh measurements before it
	// is judged again. Default: one period (Every).
	Cooldown des.Duration
	// MaxMoves bounds the members rewired per pass per group. Default 1.
	MaxMoves int
	// Rebuild switches the pass from local rewiring to a full strategy
	// rebuild over the group's current member set, accepted when the
	// rebuilt tree's worst propagation path undercuts the current one by
	// MinImprove — the heavy hammer for trees structurally degraded by
	// heavy churn.
	Rebuild bool
}

// Enabled reports whether the plane is configured.
func (r *ReoptConfig) Enabled() bool { return r.Every > 0 }

func (r *ReoptConfig) fillDefaults(scheme Scheme) {
	if r.Every < 0 {
		panic("core: Reopt.Every must be non-negative")
	}
	if !r.Enabled() {
		return
	}
	if !scheme.Regulated() {
		panic("core: tree re-optimization requires a regulated scheme")
	}
	if r.MinImprove == 0 {
		r.MinImprove = 0.1
	}
	if r.MinImprove < 0 || r.MinImprove >= 1 {
		panic(fmt.Sprintf("core: Reopt.MinImprove %v outside [0,1)", r.MinImprove))
	}
	if r.Cooldown == 0 {
		r.Cooldown = r.Every
	}
	if r.MaxMoves == 0 {
		r.MaxMoves = 1
	}
	if r.MaxMoves < 0 {
		panic("core: Reopt.MaxMoves must be non-negative")
	}
}

// reoptTimes lists the pass instants: k·Every for k ≥ 1, up to and
// including the traffic duration (later passes would only see the drain
// tail).
func reoptTimes(every des.Duration, duration des.Duration) []des.Time {
	var times []des.Time
	for at := des.Time(every); at <= duration; at += every {
		times = append(times, at)
	}
	return times
}

// delayEst is one (group, host) running delay estimate.
type delayEst struct {
	sum float64
	n   uint64
}

// reoptPlane owns the measurement state and executes passes. Both engines
// share one instance; observe is called from the delivery path (each host
// is observed by exactly one engine), passes run with every engine
// quiesced.
type reoptPlane struct {
	cfg    ReoptConfig
	net    *topo.Network
	groups []*groupState
	hosts  []*host
	seed   uint64

	est      [][]delayEst // [group][host] delay means since the last accepted change
	cooldown []des.Time   // per-group earliest next accepted change
	rebuilds []int        // per-group accepted rebuild count (derives rebuild seeds)

	accepted, moves, rejected int
}

func newReoptPlane(sub *substrate, hosts []*host) *reoptPlane {
	ro := &reoptPlane{
		cfg:      sub.cfg.Reopt,
		net:      sub.net,
		groups:   sub.groups,
		hosts:    hosts,
		seed:     sub.cfg.Seed,
		est:      make([][]delayEst, len(sub.groups)),
		cooldown: make([]des.Time, len(sub.groups)),
		rebuilds: make([]int, len(sub.groups)),
	}
	for g := range ro.est {
		ro.est[g] = make([]delayEst, sub.cfg.NumHosts)
	}
	return ro
}

// observe folds one delivery into the (group, host) estimate. Hot path:
// two adds and a branch.
func (ro *reoptPlane) observe(g, id int, d float64) {
	e := &ro.est[g][id]
	e.sum += d
	e.n++
}

// mean returns member m's measured mean delay in group g, falling back to
// the tree-path propagation delay for members that have not received yet
// (the source, by definition, sits at delay 0).
func (ro *reoptPlane) mean(g, m int) float64 {
	if e := &ro.est[g][m]; e.n > 0 {
		return e.sum / float64(e.n)
	}
	return ro.groups[g].tree.PathLatency(ro.net, m).Seconds()
}

// reoptimize runs one pass over every group at simulated time at.
func (ro *reoptPlane) reoptimize(at des.Time) {
	for g := range ro.groups {
		ro.pass(g, at)
	}
}

func (ro *reoptPlane) pass(g int, at des.Time) {
	st := ro.groups[g]
	if st.strat == nil || at < ro.cooldown[g] {
		return
	}
	if len(st.detached) > 0 {
		// A partition severed subtrees off this group's tree; the rewire
		// candidate scan and the rebuild both assume every member is
		// attached, so the pass holds off until the heal re-attaches them.
		return
	}
	if ro.cfg.Rebuild {
		ro.rebuild(g, at)
		return
	}
	// moved excludes members already rewired this pass from re-selection:
	// their estimates still describe the old placement, so picking the
	// same member again would walk it through progressively worse
	// parents instead of rewiring MaxMoves distinct members.
	moved := make(map[int]bool, ro.cfg.MaxMoves)
	for move := 0; move < ro.cfg.MaxMoves; move++ {
		if !ro.rewire(g, moved) {
			break
		}
	}
	if len(moved) > 0 {
		ro.accepted++
		ro.resetGroup(g, at)
	} else {
		ro.rejected++
	}
}

// rewire attempts one measurement-driven edge swap in group g: move the
// worst-measured member not yet touched this pass under the attached
// parent with the best predicted delay, if the prediction clears the
// hysteresis margin. Returns whether a move was applied (recording it in
// moved).
func (ro *reoptPlane) rewire(g int, moved map[int]bool) bool {
	st := ro.groups[g]
	t := st.tree
	// Worst measured member (ties break to the lower id; members the run
	// has not reached yet have no measurement to improve on).
	w, worst := -1, 0.0
	for _, m := range t.Members {
		if m == t.Source || moved[m] {
			continue
		}
		e := &ro.est[g][m]
		if e.n == 0 {
			continue
		}
		mean := e.sum / float64(e.n)
		if w < 0 || mean > worst || (mean == worst && m < w) {
			w, worst = m, mean
		}
	}
	if w < 0 {
		return false
	}
	oldParent := t.Parent(w)
	subHeight := t.SubtreeHeight(w)
	// w's own subtree is excluded from candidacy (a descendant parent
	// would cycle); one walk up front keeps the candidate scan linear.
	inSub := map[int]bool{w: true}
	for level := []int{w}; len(level) > 0; {
		var next []int
		for _, v := range level {
			for _, c := range t.Children(v) {
				inSub[c] = true
				next = append(next, c)
			}
		}
		level = next
	}
	// Best candidate parent by predicted delay est(p) + latency(p, w),
	// under the strategy's fanout rule and height limit. Passes run
	// between control-plane operations, so every member is attached — no
	// detachment check needed.
	p, predicted := -1, 0.0
	for _, m := range t.Members {
		if m == oldParent || inSub[m] {
			continue
		}
		if !st.strat.FanoutOK(ro.net, t, m, st.lim) {
			continue
		}
		if st.lim.MaxHeight > 0 && t.Depth(m)+1+subHeight > st.lim.MaxHeight {
			continue
		}
		pred := ro.mean(g, m) + ro.net.Latency(m, w).Seconds()
		if p < 0 || pred < predicted || (pred == predicted && m < p) {
			p, predicted = m, pred
		}
	}
	if p < 0 || predicted >= worst*(1-ro.cfg.MinImprove) {
		return false
	}
	if err := t.Reparent(w, p); err != nil {
		panic(fmt.Sprintf("core: reopt rewire: %v", err))
	}
	// Host wiring mirrors a churn leave+join for the moved edge: the old
	// parent drops the child (abandoning any backlog it held exclusively
	// for that subtree — counted as loss), the new parent picks it up.
	st.lost += uint64(ro.hosts[oldParent].removeChild(g, w))
	ro.hosts[p].attachChild(g, w)
	ro.moves++
	moved[w] = true
	return true
}

// rebuild re-runs the group's strategy constructor over its current
// member set and swaps the whole tree in when the rebuilt worst-case
// propagation path clears the hysteresis margin.
func (ro *reoptPlane) rebuild(g int, at des.Time) {
	st := ro.groups[g]
	t := st.tree
	members := append([]int(nil), t.Members...)
	sort.Ints(members)
	bcfg := st.treeCfg
	bcfg.Seed = xrand.DeriveSeed(bcfg.Seed, len(ro.groups)+ro.rebuilds[g])
	cand, err := st.strat.Build(ro.net, members, t.Source, bcfg)
	if err != nil {
		panic(fmt.Sprintf("core: reopt rebuild: %v", err))
	}
	maxPath := func(tr *overlay.Tree) float64 {
		worst := 0.0
		for _, m := range tr.Members {
			if d := tr.PathLatency(ro.net, m).Seconds(); d > worst {
				worst = d
			}
		}
		return worst
	}
	if maxPath(cand) >= maxPath(t)*(1-ro.cfg.MinImprove) {
		ro.rejected++
		return
	}
	// Apply the rebuild as an edge diff: members whose parent is the same
	// in the rebuilt tree keep their forwarding state (and regulators)
	// untouched; only genuinely moved edges detach (old parent abandons
	// the backlog it held for that child — counted, as on a churn
	// departure) and re-attach. Removals complete before attachments so a
	// host's child set never transiently holds both the old and new edge.
	var movedMembers []int
	for _, m := range members {
		if m != cand.Source && cand.Parent(m) != t.Parent(m) {
			movedMembers = append(movedMembers, m)
			st.lost += uint64(ro.hosts[t.Parent(m)].removeChild(g, m))
		}
	}
	st.tree = cand
	for _, m := range movedMembers {
		ro.hosts[cand.Parent(m)].attachChild(g, m)
		ro.moves++
	}
	if len(movedMembers) == 0 {
		// The rebuilt tree improved the propagation metric without moving
		// any edge — impossible in practice, but count it as rejected
		// rather than as an accepted no-op change.
		ro.rejected++
		return
	}
	ro.rebuilds[g]++
	ro.accepted++
	ro.resetGroup(g, at)
}

// resetGroup clears the group's estimates after an accepted change — the
// old measurements describe a tree that no longer exists — and starts the
// cooldown window.
func (ro *reoptPlane) resetGroup(g int, at des.Time) {
	est := ro.est[g]
	for i := range est {
		est[i] = delayEst{}
	}
	ro.cooldown[g] = at + des.Time(ro.cfg.Cooldown)
}
