package core

import (
	"math"
	"testing"

	"repro/internal/calculus"
	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/traffic"
)

func TestSchemeStrings(t *testing.T) {
	for _, s := range []Scheme{SchemeCapacityAware, SchemeSigmaRho, SchemeSRL, SchemeAdaptive, Scheme(42)} {
		if s.String() == "" {
			t.Fatal("empty scheme name")
		}
	}
	if SchemeCapacityAware.Regulated() || !SchemeSRL.Regulated() {
		t.Fatal("Regulated() misclassifies")
	}
}

func TestWorkloadBuilders(t *testing.T) {
	for _, w := range []Workload{WorkloadExtremal, WorkloadVBR} {
		srcs := w.BuildSources(traffic.MixVideo, 1, 1.02, 0.15)
		specs := w.BuildSpecs(traffic.MixVideo, 1, 1.02, 0.15, 5)
		if len(srcs) != 3 || len(specs) != 3 {
			t.Fatalf("%v: %d sources, %d specs", w, len(srcs), len(specs))
		}
		for i, sp := range specs {
			if sp.Rate != traffic.VideoRate {
				t.Fatalf("%v spec %d rate %v", w, i, sp.Rate)
			}
			if sp.Rho <= sp.Rate || sp.Sigma <= 0 {
				t.Fatalf("%v spec %d envelope (σ=%v, ρ=%v) invalid", w, i, sp.Sigma, sp.Rho)
			}
		}
		if w.String() == "" {
			t.Fatal("empty workload name")
		}
	}
}

func TestExtremalSpecsAreExact(t *testing.T) {
	specs := Workload(WorkloadExtremal).BuildSpecs(traffic.MixAudio, 1, 1.02, 0.15, 0)
	wantSigma := 0.15*1.02*traffic.AudioRate + 1280
	if math.Abs(specs[0].Sigma-wantSigma) > 1e-9 {
		t.Fatalf("σ = %v, want %v", specs[0].Sigma, wantSigma)
	}
}

func TestMeasureSpecsPanicsOnBadMargin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeasureSpecs(traffic.MixAudio, 1, 0.9, 1)
}

func TestRegulatorBursts(t *testing.T) {
	specs := []FlowSpec{{Rate: 100, Sigma: 50, Rho: 110}, {Rate: 200, Sigma: 80, Rho: 220}}
	bursts := RegulatorBursts(specs, 1000)
	if bursts[0] != 50 || bursts[1] != 80 {
		t.Fatalf("bursts = %v", bursts)
	}
}

func TestRegulatorBurstsPanicsWhenOverCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegulatorBursts([]FlowSpec{{Rate: 900, Sigma: 10, Rho: 1100}}, 1000)
}

func TestThresholdUtilizationMatchesCalculus(t *testing.T) {
	if got, want := ThresholdUtilization(3, true), calculus.ThresholdUtilizationHomog(3); got != want {
		t.Fatalf("homog threshold %v != %v", got, want)
	}
	if got, want := ThresholdUtilization(3, false), calculus.ThresholdUtilizationHetero(3); got != want {
		t.Fatalf("hetero threshold %v != %v", got, want)
	}
}

// --- Simulation I ---

func TestSingleHopDeterministic(t *testing.T) {
	cfg := SingleHopConfig{Mix: traffic.MixVideo, Load: 0.8, Scheme: SchemeSRL,
		Duration: 13 * des.Second, Seed: 7}
	a := RunSingleHop(cfg)
	b := RunSingleHop(cfg)
	if a.WDB != b.WDB || a.Delivered != b.Delivered || a.MeanDelay != b.MeanDelay {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSingleHopDeliversEverything(t *testing.T) {
	res := RunSingleHop(SingleHopConfig{Mix: traffic.MixAudio, Load: 0.5,
		Scheme: SchemeSigmaRho, Duration: 13 * des.Second, Seed: 1})
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.WDB <= 0 || res.MeanDelay <= 0 {
		t.Fatalf("degenerate delays: %+v", res)
	}
	if res.WDB < res.MeanDelay {
		t.Fatal("WDB below mean")
	}
}

// Fig. 4 shape: the (σ,ρ,λ) curve is flat-ish and loses at low load, the
// (σ,ρ) curve rises and loses at high load, with the crossover in the
// paper's band.
func TestSingleHopFig4Shape(t *testing.T) {
	for _, mix := range []traffic.Mix{traffic.MixAudio, traffic.MixVideo} {
		low := 0.40
		high := 0.90
		srLow := RunSingleHop(SingleHopConfig{Mix: mix, Load: low, Scheme: SchemeSigmaRho, Seed: 1})
		srlLow := RunSingleHop(SingleHopConfig{Mix: mix, Load: low, Scheme: SchemeSRL, Seed: 1})
		srHigh := RunSingleHop(SingleHopConfig{Mix: mix, Load: high, Scheme: SchemeSigmaRho, Seed: 1})
		srlHigh := RunSingleHop(SingleHopConfig{Mix: mix, Load: high, Scheme: SchemeSRL, Seed: 1})
		if srLow.WDB >= srlLow.WDB {
			t.Fatalf("%v: (σ,ρ) should win at low load: %v vs %v", mix, srLow.WDB, srlLow.WDB)
		}
		if srHigh.WDB <= srlHigh.WDB {
			t.Fatalf("%v: (σ,ρ,λ) should win at high load: %v vs %v", mix, srHigh.WDB, srlHigh.WDB)
		}
		// Improvement at high load is a multiple, as in Fig. 4.
		if ratio := srHigh.WDB / srlHigh.WDB; ratio < 2 {
			t.Fatalf("%v: improvement ratio %v at load %v too small", mix, ratio, high)
		}
	}
}

func TestSingleHopAdaptiveTracksBestScheme(t *testing.T) {
	// The adaptive scheme should be within a small factor of the better
	// fixed scheme at both ends of the load range.
	for _, load := range []float64{0.4, 0.9} {
		sr := RunSingleHop(SingleHopConfig{Mix: traffic.MixVideo, Load: load, Scheme: SchemeSigmaRho, Seed: 1})
		srl := RunSingleHop(SingleHopConfig{Mix: traffic.MixVideo, Load: load, Scheme: SchemeSRL, Seed: 1})
		ad := RunSingleHop(SingleHopConfig{Mix: traffic.MixVideo, Load: load, Scheme: SchemeAdaptive, Seed: 1})
		best := sr.WDB
		if srl.WDB < best {
			best = srl.WDB
		}
		// The first burst lands before the rate estimator has warmed up,
		// so the adaptive run pays one pre-switch worst case; allow for it.
		if ad.WDB > 3.5*best {
			t.Fatalf("load %v: adaptive %v far above best fixed %v", load, ad.WDB, best)
		}
	}
}

func TestSingleHopStaggerAblation(t *testing.T) {
	// Aligned duty cycles collide at the MUX: worst-case delay must not
	// improve versus staggered phases at high load.
	st := RunSingleHop(SingleHopConfig{Mix: traffic.MixVideo, Load: 0.9, Scheme: SchemeSRL, Seed: 1})
	al := RunSingleHop(SingleHopConfig{Mix: traffic.MixVideo, Load: 0.9, Scheme: SchemeSRL,
		Seed: 1, StaggerAligned: true})
	if al.WDB < st.WDB*0.9 {
		t.Fatalf("aligned %v beat staggered %v", al.WDB, st.WDB)
	}
}

func TestSingleHopValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { RunSingleHop(SingleHopConfig{Mix: traffic.MixAudio, Load: 0, Scheme: SchemeSRL}) },
		func() { RunSingleHop(SingleHopConfig{Mix: traffic.MixAudio, Load: 1.2, Scheme: SchemeSRL}) },
		func() { RunSingleHop(SingleHopConfig{Mix: traffic.MixAudio, Load: 0.5, Scheme: SchemeCapacityAware}) },
		func() {
			RunSingleHopWith(SingleHopConfig{Mix: traffic.MixAudio, Load: 0.5, Scheme: SchemeSRL,
				Specs: []FlowSpec{{Rate: 1, Sigma: 1, Rho: 2}}}, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

// --- Simulation II ---

func smallSession(scheme Scheme, tree TreeKind, load float64) Config {
	return Config{
		NumHosts: 60,
		Mix:      traffic.MixAudio,
		Load:     load,
		Scheme:   scheme,
		Tree:     tree,
		Duration: 13 * des.Second,
		Seed:     3,
	}
}

func TestSessionDeterministic(t *testing.T) {
	a := Run(smallSession(SchemeSRL, TreeDSCT, 0.8))
	b := Run(smallSession(SchemeSRL, TreeDSCT, 0.8))
	if a.WDB != b.WDB || a.Delivered != b.Delivered {
		t.Fatalf("non-deterministic session: %v/%d vs %v/%d", a.WDB, a.Delivered, b.WDB, b.Delivered)
	}
}

func TestSessionDeliversToAllMembers(t *testing.T) {
	s := NewSession(smallSession(SchemeSigmaRho, TreeDSCT, 0.5))
	res := s.Run()
	if res.Delivered == 0 {
		t.Fatal("no deliveries")
	}
	// Every non-source member of every group should receive packets:
	// deliveries >= (members-1) * groups (at least one packet each).
	if res.Delivered < uint64((60-1)*3) {
		t.Fatalf("deliveries %d below one-per-member floor", res.Delivered)
	}
	for g, w := range res.PerGroupWDB {
		if w <= 0 {
			t.Fatalf("group %d WDB = %v", g, w)
		}
	}
}

func TestSessionFig6Shape(t *testing.T) {
	// The paper's primary Fig. 6 claim: above the threshold the (σ,ρ,λ)
	// scheme is best; below it the (σ,ρ) scheme beats it.
	low, high := 0.4, 0.9
	srLow := Run(smallSession(SchemeSigmaRho, TreeDSCT, low))
	srlLow := Run(smallSession(SchemeSRL, TreeDSCT, low))
	if srLow.WDB >= srlLow.WDB {
		t.Fatalf("(σ,ρ) should win at low load: %v vs %v", srLow.WDB, srlLow.WDB)
	}
	srHigh := Run(smallSession(SchemeSigmaRho, TreeDSCT, high))
	srlHigh := Run(smallSession(SchemeSRL, TreeDSCT, high))
	caHigh := Run(smallSession(SchemeCapacityAware, TreeDSCT, high))
	if srlHigh.WDB >= srHigh.WDB {
		t.Fatalf("(σ,ρ,λ) should win at high load: %v vs %v", srlHigh.WDB, srHigh.WDB)
	}
	if srlHigh.WDB >= caHigh.WDB {
		t.Fatalf("(σ,ρ,λ) should beat capacity-aware at high load: %v vs %v",
			srlHigh.WDB, caHigh.WDB)
	}
}

func TestSessionTableShape(t *testing.T) {
	// Tables I–III: regulated tree layers constant in load; capacity-aware
	// layers grow.
	srlLow := Run(smallSession(SchemeSRL, TreeDSCT, 0.4))
	srlHigh := Run(smallSession(SchemeSRL, TreeDSCT, 0.9))
	if srlLow.Layers != srlHigh.Layers {
		t.Fatalf("regulated layers changed with load: %d vs %d", srlLow.Layers, srlHigh.Layers)
	}
	caLow := Run(smallSession(SchemeCapacityAware, TreeDSCT, 0.4))
	caHigh := Run(smallSession(SchemeCapacityAware, TreeDSCT, 0.9))
	if caHigh.Layers <= caLow.Layers {
		t.Fatalf("capacity-aware layers did not grow: %d vs %d", caLow.Layers, caHigh.Layers)
	}
}

func TestSessionDSCTBeatsNICE(t *testing.T) {
	d := Run(smallSession(SchemeSRL, TreeDSCT, 0.8))
	n := Run(smallSession(SchemeSRL, TreeNICE, 0.8))
	// DSCT's locality means its mean delay should not exceed NICE's
	// appreciably (WDB is bursty; compare means).
	if d.MeanDelay > n.MeanDelay*1.1 {
		t.Fatalf("DSCT mean %v above NICE mean %v", d.MeanDelay, n.MeanDelay)
	}
}

func TestSessionCapacityAwareSharesOneTree(t *testing.T) {
	s := NewSession(smallSession(SchemeCapacityAware, TreeDSCT, 0.5))
	trees := s.Trees()
	for g := 1; g < len(trees); g++ {
		if trees[g] != trees[0] {
			t.Fatal("capacity-aware groups must share one tree")
		}
	}
	if err := trees[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionRegulatedUsesPerGroupTrees(t *testing.T) {
	s := NewSession(smallSession(SchemeSRL, TreeDSCT, 0.5))
	trees := s.Trees()
	if trees[0] == trees[1] {
		t.Fatal("regulated groups must have distinct trees")
	}
	for g, tr := range trees {
		if tr.Source != g {
			t.Fatalf("group %d rooted at %d", g, tr.Source)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
	}
}

func TestSessionAdaptiveRuns(t *testing.T) {
	res := Run(smallSession(SchemeAdaptive, TreeDSCT, 0.9))
	if res.Delivered == 0 {
		t.Fatal("adaptive session delivered nothing")
	}
	if res.ModeSwitches == 0 {
		t.Fatal("adaptive session at high load never switched to (σ,ρ,λ)")
	}
}

func TestSessionLIFOvsFIFODiscipline(t *testing.T) {
	lifo := Run(smallSession(SchemeSigmaRho, TreeDSCT, 0.9))
	cfg := smallSession(SchemeSigmaRho, TreeDSCT, 0.9)
	cfg.Discipline = mux.FIFO
	fifo := Run(cfg)
	if fifo.WDB >= lifo.WDB {
		t.Fatalf("FIFO WDB %v should be below the LIFO adversary %v", fifo.WDB, lifo.WDB)
	}
}

func TestSessionQueuedTransitWorks(t *testing.T) {
	cfg := smallSession(SchemeSRL, TreeDSCT, 0.5)
	cfg.Transit = 1 // netsim.QueuedTransit
	res := Run(cfg)
	if res.Delivered == 0 {
		t.Fatal("queued transit delivered nothing")
	}
}

func TestSessionVBRWorkload(t *testing.T) {
	cfg := smallSession(SchemeSigmaRho, TreeDSCT, 0.5)
	cfg.Workload = WorkloadVBR
	cfg.EnvelopeHorizonSec = 13
	res := Run(cfg)
	if res.Delivered == 0 {
		t.Fatal("VBR workload delivered nothing")
	}
}

func TestSessionValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { Run(Config{NumHosts: 1, Mix: traffic.MixAudio, Load: 0.5}) },
		func() { Run(Config{NumHosts: 10, Mix: traffic.MixAudio, Load: 0}) },
		func() { Run(Config{NumHosts: 10, Mix: traffic.MixAudio, Load: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSessionResultEchoesSpecs(t *testing.T) {
	res := Run(smallSession(SchemeSRL, TreeDSCT, 0.5))
	if len(res.Specs) != 3 {
		t.Fatalf("specs len %d", len(res.Specs))
	}
	if res.ConnCapacity <= 0 || res.ThresholdUtil <= 0 {
		t.Fatalf("missing result metadata: %+v", res)
	}
}
