package core

// Checkpoint/restore for whole sessions: a versioned flat binary snapshot
// (internal/snap) captures the full mutable runtime of a quiesced session —
// pending engine events, component queues and counters, per-group trees and
// membership, plane state, measurement accumulators, source positions, and
// (sharded) the coordinator's mailboxes — while everything derivable from
// the Config is recomputed, not serialized: the restored session rebuilds
// the substrate (network, envelopes, initial trees) from the same Config,
// then overwrites the mutable half from the snapshot.
//
// The contract, pinned by the golden differential tests: for any supported
// configuration, run-to-T equals run-to-T/2 → Snapshot → Restore →
// run-to-T, bit for bit, in both the sequential and the sharded engine.
// The mechanism rests on three invariants:
//
//   - Quiesce: Snapshot is taken between RunTo calls, so every event at or
//     before the checkpoint instant T has fired and every pending event is
//     strictly after T (sharded: every engine parked at exactly T, all
//     mailboxes drained into sorted pending buffers by CheckpointDrain).
//   - Kind registry: every event that can be pending at a quiesce point
//     carries a des.Kind* tag plus a component-slot argument, so closures
//     rehydrate by re-binding the component's stored callback. Build-plane
//     events (membership/fault/reopt schedules) are tagged KindBuild and
//     skipped: the restore re-creates them from the Config, filtered to
//     instants after T.
//   - Replay order: serialized runtime events replay through
//     SchedulePrioKind in original sequence order with their original
//     (at, prio) stamps. Fresh ascending sequence numbers preserve every
//     relative (at, prio, seq) comparison, and the KindBuild events are
//     scheduled first — exactly as the original build did — so the restored
//     firing order is the original's.
//
// Every supported configuration snapshots (format version 2): the
// adaptive controller ticks, the VBR audio/video sources, and the
// QueuedTransit router links all carry kind tags and rehydrate. The des
// engine's KindNone check backstops anything new that forgets to tag.

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/regulator"
	"repro/internal/snap"
	"repro/internal/traffic"
)

// SnapshotVersion is the snapshot format version. Bump on any layout
// change; Restore rejects other versions.
//
// v2: type-tagged source records (extremal/audio/video), per-host
// controller window state, and a fabric record for QueuedTransit link
// queues.
const SnapshotVersion = 2

// Snapshot record types. Append-only: these appear in snapshot files.
const (
	recMeta uint16 = iota + 1
	recGroup
	recHosts
	recSources
	recControl
	recFaults
	recReopt
	recComponents
	recEngine
	recStats
	recCoord
	recEnd
	// recFabric (QueuedTransit link queues) rides between recComponents and
	// recEngine in the stream; it took the next free number when added.
	recFabric
)

// Source type tags inside recSources. Append-only, same rule as records.
const (
	srcExtremal uint8 = iota + 1
	srcAudio
	srcVideo
)

// Checkpointer is a session that can be stepped to quiesce points and
// snapshotted between them. Both the sequential Session and the
// ShardedSession implement it; Run() remains Start + Finish.
type Checkpointer interface {
	Runner
	// Start launches the traffic sources (idempotent).
	Start()
	// RunTo advances the simulation to exactly time t, a quiesce point.
	RunTo(t des.Time)
	// Snapshot serializes the full mutable runtime at the current quiesce
	// point. Valid only after Start and between RunTo calls.
	Snapshot() ([]byte, error)
	// Finish runs out the remaining events and returns the measurements.
	Finish() Result
}

// NewCheckpointer builds the session cfg asks for as a Checkpointer — the
// same dispatch as New.
func NewCheckpointer(cfg Config) Checkpointer {
	if cfg.Shards > 1 && cfg.Transit == netsim.PipeTransit {
		return NewShardedSession(cfg)
	}
	return NewSession(cfg)
}

// snapshotGuard rejects snapshots taken outside the valid lifecycle
// window. Configuration coverage is total as of format v2; the engine's
// KindNone check backstops any future untagged event family.
func snapshotGuard(started bool) error {
	if !started {
		return fmt.Errorf("core: snapshot before Start")
	}
	return nil
}

// snapMeta is the decoded recMeta sanity block: enough of the
// configuration to reject a snapshot restored under the wrong Config, plus
// the checkpoint instant.
type snapMeta struct {
	at          des.Time
	duration    des.Duration
	seed        uint64
	trafficSeed uint64
	shards      int
	numHosts    int
	numGroups   int
	scheme      Scheme
	workload    Workload
	load        float64
}

func writeMeta(w *snap.Writer, cfg Config, at des.Time, shards, numHosts, numGroups int) {
	w.Begin(recMeta)
	w.I64(int64(at))
	w.I64(int64(cfg.Duration))
	w.U64(cfg.Seed)
	w.U64(cfg.TrafficSeed.Or(cfg.Seed))
	w.U32(uint32(shards))
	w.U32(uint32(numHosts))
	w.U32(uint32(numGroups))
	w.U8(uint8(cfg.Scheme))
	w.U8(uint8(cfg.Workload))
	w.F64(cfg.Load)
	w.End()
}

func readMeta(r *snap.Reader) snapMeta {
	return snapMeta{
		at:          des.Time(r.I64()),
		duration:    des.Duration(r.I64()),
		seed:        r.U64(),
		trafficSeed: r.U64(),
		shards:      int(r.U32()),
		numHosts:    int(r.U32()),
		numGroups:   int(r.U32()),
		scheme:      Scheme(r.U8()),
		workload:    Workload(r.U8()),
		load:        r.F64(),
	}
}

// checkMeta validates a decoded meta block against the compiled substrate.
func checkMeta(m snapMeta, sub *substrate) error {
	cfg := sub.cfg
	switch {
	case m.numHosts != cfg.NumHosts,
		m.numGroups != sub.numGroups(),
		m.duration != cfg.Duration,
		m.seed != cfg.Seed,
		m.trafficSeed != cfg.TrafficSeed.Or(cfg.Seed),
		m.scheme != cfg.Scheme,
		m.workload != cfg.Workload,
		m.load != cfg.Load:
		return fmt.Errorf("core: snapshot was taken from a different configuration")
	}
	return nil
}

// expect consumes the next record header and checks its type.
func expect(r *snap.Reader, want uint16) error {
	typ, ok := r.Next()
	if !ok {
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("core: snapshot truncated before record %d", want)
	}
	if typ != want {
		return fmt.Errorf("core: snapshot record %d where %d expected", typ, want)
	}
	return nil
}

// --- Shared (engine-independent) mutable state ---

func writeGroup(w *snap.Writer, st *groupState) {
	w.Begin(recGroup)
	st.tree.Snapshot(w)
	w.U64(st.lost)
	w.Len(len(st.detached))
	for _, d := range st.detached {
		w.I64(int64(d))
	}
	w.End()
}

func readGroup(r *snap.Reader, st *groupState) error {
	st.tree = overlay.RestoreTree(r)
	for i := range st.member {
		st.member[i] = false
	}
	for _, m := range st.tree.Members {
		if m < 0 || m >= len(st.member) {
			return fmt.Errorf("core: snapshot tree member %d out of range", m)
		}
		st.member[m] = true
	}
	st.lost = r.U64()
	n := r.Len()
	st.detached = nil
	for i := 0; i < n; i++ {
		st.detached = append(st.detached, int(r.I64()))
	}
	return nil
}

func writeHosts(w *snap.Writer, hosts []*host) {
	w.Begin(recHosts)
	w.Len(len(hosts))
	for _, h := range hosts {
		w.U8(uint8(h.mode))
		w.Bool(h.modeSet)
		w.U32(uint32(h.switches))
		w.Bool(h.srlCycling)
		// Bank allocated-ness is state in its own right, distinct from the
		// entries: attachGroup only fills group slots of an already
		// allocated bank (a host whose children were all pruned keeps its
		// empty bank), so a restored host must present the same shape or a
		// post-restore join would silently skip regulator creation.
		w.Bool(h.srBank != nil)
		w.Bool(h.srlBank != nil)
		// Adaptive controller: a running controller's window estimator is
		// mutable runtime state; its pending tick rides as a KindCtlTick
		// event in the engine record.
		w.Bool(h.rate != nil)
		if h.rate != nil {
			h.rate.Snapshot(w)
		}
	}
	w.End()
}

func readHosts(r *snap.Reader, hosts []*host) error {
	if n := r.Len(); n != len(hosts) {
		return fmt.Errorf("core: snapshot has %d hosts, session has %d", n, len(hosts))
	}
	for _, h := range hosts {
		h.mode = Scheme(r.U8())
		h.modeSet = r.Bool()
		h.switches = int(r.U32())
		h.srlCycling = r.Bool()
		if r.Bool() && h.srBank == nil {
			h.srBank = make([]*regulator.SigmaRho, len(h.env.specs))
		}
		if r.Bool() && h.srlBank == nil {
			h.srlBank = make([]*regulator.SRL, len(h.env.specs))
		}
		if r.Bool() {
			// Re-arm the controller closure without scheduling its tick (the
			// pending tick replays from the engine record), then overwrite
			// the fresh window with the serialized one.
			h.prepareController(ctlWindow, ctlInterval, h.env.threshold)
			h.rate.Restore(r)
		}
	}
	return nil
}

func writeSources(w *snap.Writer, sources []traffic.Source) error {
	w.Begin(recSources)
	w.Len(len(sources))
	for g, src := range sources {
		switch s := src.(type) {
		case *traffic.Extremal:
			nextID, start := s.SnapState()
			w.U8(srcExtremal)
			w.U64(nextID)
			w.I64(int64(start))
		case *traffic.Audio:
			st := s.SnapState()
			w.U8(srcAudio)
			w.U64(st.NextID)
			w.I64(int64(st.TalkEnd))
			w.U64(st.RNG)
		case *traffic.Video:
			st := s.SnapState()
			w.U8(srcVideo)
			w.U64(st.NextID)
			w.I64(int64(st.Frame))
			w.Bool(st.ScenePending)
			w.U64(st.RNG)
		default:
			return fmt.Errorf("core: group %d source %T cannot be snapshotted", g, src)
		}
	}
	w.End()
	return nil
}

// srcState is one decoded source record awaiting resume; tag selects which
// of the per-type fields are meaningful.
type srcState struct {
	tag    uint8
	nextID uint64
	start  des.Time // extremal cycle start
	audio  traffic.AudioState
	video  traffic.VideoState
}

func readSources(r *snap.Reader, numGroups int) ([]srcState, error) {
	if n := r.Len(); n != numGroups {
		return nil, fmt.Errorf("core: snapshot has %d sources, session has %d groups", n, numGroups)
	}
	sts := make([]srcState, numGroups)
	for g := range sts {
		st := &sts[g]
		st.tag = r.U8()
		switch st.tag {
		case srcExtremal:
			st.nextID = r.U64()
			st.start = des.Time(r.I64())
		case srcAudio:
			st.audio.NextID = r.U64()
			st.audio.TalkEnd = des.Time(r.I64())
			st.audio.RNG = r.U64()
		case srcVideo:
			st.video.NextID = r.U64()
			st.video.Frame = int(r.I64())
			st.video.ScenePending = r.Bool()
			st.video.RNG = r.U64()
		default:
			if err := r.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: snapshot source %d has unknown type tag %d", g, st.tag)
		}
	}
	return sts, nil
}

// resumeSource re-binds one rebuilt source to its engine and serialized
// stream position. The source's pending events replay separately.
func resumeSource(g int, src traffic.Source, st srcState, eng *des.Engine, until des.Time, emit func(traffic.Packet)) error {
	switch s := src.(type) {
	case *traffic.Extremal:
		if st.tag != srcExtremal {
			return fmt.Errorf("core: snapshot source %d has tag %d, session built an extremal source", g, st.tag)
		}
		s.Resume(eng, until, emit, st.nextID, st.start)
	case *traffic.Audio:
		if st.tag != srcAudio {
			return fmt.Errorf("core: snapshot source %d has tag %d, session built an audio source", g, st.tag)
		}
		s.Resume(eng, until, emit, st.audio)
	case *traffic.Video:
		if st.tag != srcVideo {
			return fmt.Errorf("core: snapshot source %d has tag %d, session built a video source", g, st.tag)
		}
		s.Resume(eng, until, emit, st.video)
	default:
		return fmt.Errorf("core: group %d source %T cannot be restored", g, src)
	}
	return nil
}

func (cp *controlPlane) snapshot(w *snap.Writer) {
	w.Begin(recControl)
	w.U32(uint32(cp.joins))
	w.U32(uint32(cp.leaves))
	w.U32(uint32(cp.regrafts))
	w.U32(uint32(cp.rejected))
	w.End()
}

func (cp *controlPlane) restoreState(r *snap.Reader) {
	cp.joins = int(r.U32())
	cp.leaves = int(r.U32())
	cp.regrafts = int(r.U32())
	cp.rejected = int(r.U32())
}

// snapshot serializes the fault plane's mutable state. The events, their
// kinds/times, and the sentinel bookkeeping arrays' shapes are rebuilt by
// newFaultPlane from the Config; this covers what execution changed.
func (fp *faultPlane) snapshot(w *snap.Writer) {
	w.Begin(recFaults)
	// Outage bitmap, as ascending indices.
	nd := 0
	for _, d := range fp.down {
		if d {
			nd++
		}
	}
	w.Len(nd)
	for h, d := range fp.down {
		if d {
			w.U32(uint32(h))
		}
	}
	// Recorded memberships awaiting restore, by ascending outage ID.
	ids := make([]int, 0, len(fp.restoreSets))
	for id := range fp.restoreSets {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: tiny set
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	w.Len(len(ids))
	for _, id := range ids {
		w.I64(int64(id))
		mem := fp.restoreSets[id]
		w.Len(len(mem))
		for _, hosts := range mem {
			w.Len(len(hosts))
			for _, h := range hosts {
				w.U32(uint32(h))
			}
		}
	}
	// Active partition cut.
	w.Bool(fp.cutOn)
	if fp.cutOn {
		w.U32(uint32(fp.cutIdx))
		nc := 0
		for _, c := range fp.cutHost {
			if c {
				nc++
			}
		}
		w.Len(nc)
		for h, c := range fp.cutHost {
			if c {
				w.U32(uint32(h))
			}
		}
	}
	// Outcomes accumulated so far (Kind/AtSec/Group are rebuilt).
	w.Len(len(fp.outcomes))
	for i := range fp.outcomes {
		oc := &fp.outcomes[i]
		w.U32(uint32(oc.Hosts))
		w.U32(uint32(oc.Regrafts))
		w.U64(oc.Lost)
		w.F64(oc.RecoverySec)
		w.U32(uint32(oc.Unrecovered))
	}
	// Recovery sentinels: per-event tracked pair lists, then the live
	// tracker cells (trackIdx/firstAt) sparsely.
	w.Len(len(fp.tracked))
	for _, pairs := range fp.tracked {
		w.Len(len(pairs))
		for _, tr := range pairs {
			w.U32(uint32(tr.g))
			w.U32(uint32(tr.h))
		}
	}
	nt := 0
	for g := range fp.trackIdx {
		for h := range fp.trackIdx[g] {
			if fp.trackIdx[g][h] >= 0 {
				nt++
			}
		}
	}
	w.Len(nt)
	for g := range fp.trackIdx {
		for h := range fp.trackIdx[g] {
			if fp.trackIdx[g][h] >= 0 {
				w.U32(uint32(g))
				w.U32(uint32(h))
				w.I64(int64(fp.trackIdx[g][h]))
				w.I64(int64(fp.firstAt[g][h]))
			}
		}
	}
	w.End()
}

func (fp *faultPlane) restoreState(r *snap.Reader) error {
	for i := range fp.down {
		fp.down[i] = false
	}
	nd := r.Len()
	for i := 0; i < nd; i++ {
		h := int(r.U32())
		if h < 0 || h >= len(fp.down) {
			return fmt.Errorf("core: snapshot down host %d out of range", h)
		}
		fp.down[h] = true
	}
	ni := r.Len()
	for i := 0; i < ni; i++ {
		id := int(r.I64())
		ng := r.Len()
		mem := make([][]int, ng)
		for g := 0; g < ng; g++ {
			nh := r.Len()
			for j := 0; j < nh; j++ {
				mem[g] = append(mem[g], int(r.U32()))
			}
		}
		fp.restoreSets[id] = mem
	}
	fp.cutOn = r.Bool()
	fp.cutHost = nil
	if fp.cutOn {
		fp.cutIdx = int(r.U32())
		fp.cutHost = make([]bool, len(fp.hosts))
		nc := r.Len()
		for i := 0; i < nc; i++ {
			h := int(r.U32())
			if h < 0 || h >= len(fp.cutHost) {
				return fmt.Errorf("core: snapshot cut host %d out of range", h)
			}
			fp.cutHost[h] = true
		}
	}
	if n := r.Len(); n != len(fp.outcomes) {
		return fmt.Errorf("core: snapshot has %d fault outcomes, session has %d", n, len(fp.outcomes))
	}
	for i := range fp.outcomes {
		oc := &fp.outcomes[i]
		oc.Hosts = int(r.U32())
		oc.Regrafts = int(r.U32())
		oc.Lost = r.U64()
		oc.RecoverySec = r.F64()
		oc.Unrecovered = int(r.U32())
	}
	if n := r.Len(); n != len(fp.tracked) {
		return fmt.Errorf("core: snapshot has %d tracked lists, session has %d", n, len(fp.tracked))
	}
	for i := range fp.tracked {
		np := r.Len()
		fp.tracked[i] = nil
		for j := 0; j < np; j++ {
			fp.tracked[i] = append(fp.tracked[i], faultTrack{g: int(r.U32()), h: int(r.U32())})
		}
	}
	nt := r.Len()
	for i := 0; i < nt; i++ {
		g, h := int(r.U32()), int(r.U32())
		if g < 0 || g >= len(fp.trackIdx) || h < 0 || h >= len(fp.trackIdx[g]) {
			return fmt.Errorf("core: snapshot tracker cell (%d,%d) out of range", g, h)
		}
		fp.trackIdx[g][h] = int32(r.I64())
		fp.firstAt[g][h] = des.Time(r.I64())
	}
	return nil
}

// snapshot serializes the re-optimization plane's mutable state (the
// estimate cells sparsely — only cells with observations).
func (ro *reoptPlane) snapshot(w *snap.Writer) {
	w.Begin(recReopt)
	ne := 0
	for g := range ro.est {
		for h := range ro.est[g] {
			if ro.est[g][h].n > 0 {
				ne++
			}
		}
	}
	w.Len(ne)
	for g := range ro.est {
		for h := range ro.est[g] {
			if e := &ro.est[g][h]; e.n > 0 {
				w.U32(uint32(g))
				w.U32(uint32(h))
				w.F64(e.sum)
				w.U64(e.n)
			}
		}
	}
	for g := range ro.cooldown {
		w.I64(int64(ro.cooldown[g]))
		w.U32(uint32(ro.rebuilds[g]))
	}
	w.U32(uint32(ro.accepted))
	w.U32(uint32(ro.moves))
	w.U32(uint32(ro.rejected))
	w.End()
}

func (ro *reoptPlane) restoreState(r *snap.Reader) error {
	for g := range ro.est {
		for h := range ro.est[g] {
			ro.est[g][h] = delayEst{}
		}
	}
	ne := r.Len()
	for i := 0; i < ne; i++ {
		g, h := int(r.U32()), int(r.U32())
		if g < 0 || g >= len(ro.est) || h < 0 || h >= len(ro.est[g]) {
			return fmt.Errorf("core: snapshot estimate cell (%d,%d) out of range", g, h)
		}
		ro.est[g][h] = delayEst{sum: r.F64(), n: r.U64()}
	}
	for g := range ro.cooldown {
		ro.cooldown[g] = des.Time(r.I64())
		ro.rebuilds[g] = int(r.U32())
	}
	ro.accepted = int(r.U32())
	ro.moves = int(r.U32())
	ro.rejected = int(r.U32())
	return nil
}

// --- Per-engine component slot tables and pending events ---

// writeComponents serializes one engine's component registry: every
// component that is live (installed in its host) or referenced by a
// pending event of that engine. Dead unreferenced components (detached
// regulators whose events were cancelled, dropped MUXes that drained) are
// garbage and skipped; a dead-but-referenced component — a dropped MUX
// still draining its queue, a detached SRL mid-transmission — serializes
// with live=false so the replayed event finds it without re-installing it.
func writeComponents(w *snap.Writer, env *hostEnv, hosts []*host, evs []des.PendingEvent) {
	muxRef := make(map[uint32]bool)
	srRef := make(map[uint32]bool)
	srlRef := make(map[uint32]bool)
	for _, ev := range evs {
		switch ev.Kind {
		case des.KindMuxDone:
			muxRef[ev.Arg] = true
		case des.KindSRRetry:
			srRef[ev.Arg] = true
		case des.KindSRLDone, des.KindSRLOn, des.KindSRLOff:
			srlRef[ev.Arg] = true
		}
	}
	w.Begin(recComponents)

	type sel struct {
		slot int
		live bool
	}
	var ms []sel
	for slot, m := range env.muxReg {
		id := env.muxIdent[slot]
		live := hosts[id.host].muxAt(int(id.sub)) == m
		if live || muxRef[uint32(slot)] {
			ms = append(ms, sel{slot, live})
		}
	}
	w.Len(len(ms))
	for _, e := range ms {
		id := env.muxIdent[e.slot]
		m := env.muxReg[e.slot]
		w.U32(uint32(e.slot))
		w.U32(uint32(id.host))
		w.U32(uint32(id.sub))
		w.Bool(e.live)
		// Capacity is creation-time state (capacity-aware connections split
		// the uplink by the connection count at creation), so it rides along.
		w.F64(m.Capacity())
		m.Snapshot(w)
	}

	var ss []sel
	for slot, s := range env.srReg {
		id := env.srIdent[slot]
		h := hosts[id.host]
		live := h.srBank != nil && h.srBank[id.sub] == s
		if live || srRef[uint32(slot)] {
			ss = append(ss, sel{slot, live})
		}
	}
	w.Len(len(ss))
	for _, e := range ss {
		id := env.srIdent[e.slot]
		w.U32(uint32(e.slot))
		w.U32(uint32(id.host))
		w.U32(uint32(id.sub))
		w.Bool(e.live)
		env.srReg[e.slot].Snapshot(w)
	}

	var ls []sel
	for slot, sr := range env.srlReg {
		id := env.srlIdent[slot]
		h := hosts[id.host]
		live := h.srlBank != nil && h.srlBank[id.sub] == sr
		if live || srlRef[uint32(slot)] {
			ls = append(ls, sel{slot, live})
		}
	}
	w.Len(len(ls))
	for _, e := range ls {
		id := env.srlIdent[e.slot]
		w.U32(uint32(e.slot))
		w.U32(uint32(id.host))
		w.U32(uint32(id.sub))
		w.Bool(e.live)
		env.srlReg[e.slot].Snapshot(w)
	}
	w.End()
}

// compMaps routes a serialized event's old component slot to the restored
// component during replay.
type compMaps struct {
	mux map[uint32]*mux.Mux
	sr  map[uint32]*regulator.SigmaRho
	srl map[uint32]*regulator.SRL
}

// readComponents rebuilds one engine's serialized components through the
// host restore factories (which re-register them, assigning fresh slots)
// and installs the live ones.
func readComponents(r *snap.Reader, hosts []*host, numGroups int) (compMaps, error) {
	cm := compMaps{
		mux: make(map[uint32]*mux.Mux),
		sr:  make(map[uint32]*regulator.SigmaRho),
		srl: make(map[uint32]*regulator.SRL),
	}
	nm := r.Len()
	for i := 0; i < nm; i++ {
		slot := r.U32()
		hid, child := int(r.U32()), int(r.U32())
		live := r.Bool()
		capacity := r.F64()
		if hid < 0 || hid >= len(hosts) || child < 0 || child >= len(hosts) {
			return cm, fmt.Errorf("core: snapshot mux ident (%d,%d) out of range", hid, child)
		}
		h := hosts[hid]
		m := h.restoreMux(child, capacity)
		m.Restore(r)
		if live {
			h.installMux(child, m)
		}
		cm.mux[slot] = m
	}
	ns := r.Len()
	for i := 0; i < ns; i++ {
		slot := r.U32()
		hid, g := int(r.U32()), int(r.U32())
		live := r.Bool()
		if hid < 0 || hid >= len(hosts) || g < 0 || g >= numGroups {
			return cm, fmt.Errorf("core: snapshot regulator ident (%d,%d) out of range", hid, g)
		}
		h := hosts[hid]
		s := h.restoreSR(g)
		s.Restore(r)
		if live {
			h.installSR(g, s)
		}
		cm.sr[slot] = s
	}
	nl := r.Len()
	for i := 0; i < nl; i++ {
		slot := r.U32()
		hid, g := int(r.U32()), int(r.U32())
		live := r.Bool()
		if hid < 0 || hid >= len(hosts) || g < 0 || g >= numGroups {
			return cm, fmt.Errorf("core: snapshot regulator ident (%d,%d) out of range", hid, g)
		}
		h := hosts[hid]
		sr := h.restoreSRL(g)
		sr.Restore(r)
		if live {
			h.installSRL(g, sr)
		}
		cm.srl[slot] = sr
	}
	return cm, nil
}

// replayEv is one decoded runtime event awaiting replay.
type replayEv struct {
	at, prio des.Time
	kind     uint16
	arg      uint32
	via      int            // KindHopFlight payload: next router, or -1 for an access leg
	dst      int            // KindFlight / KindHopFlight payload
	pkt      traffic.Packet // KindFlight / KindHopFlight payload
}

// writeEvents serializes one engine's pending runtime events in seq order.
// KindBuild events are skipped (rebuilt from the Config); KindFlight and
// KindHopFlight events carry their in-flight delivery inline, because the
// flight-pool node index in arg is meaningless across processes.
func writeEvents(w *snap.Writer, evs []des.PendingEvent, fabric *netsim.Fabric) {
	w.Begin(recEngine)
	n := 0
	for _, ev := range evs {
		if ev.Kind != des.KindBuild {
			n++
		}
	}
	w.Len(n)
	for _, ev := range evs {
		if ev.Kind == des.KindBuild {
			continue
		}
		w.I64(int64(ev.At))
		w.I64(int64(ev.Prio))
		w.U16(ev.Kind)
		w.U32(ev.Arg)
		switch ev.Kind {
		case des.KindFlight:
			dst, p := fabric.PendingFlight(ev.Arg)
			w.U32(uint32(dst))
			p.Snapshot(w)
		case des.KindHopFlight:
			via, dst, p := fabric.PendingHop(ev.Arg)
			w.I64(int64(via))
			w.U32(uint32(dst))
			p.Snapshot(w)
		}
	}
	w.End()
}

func readEvents(r *snap.Reader) []replayEv {
	n := r.Len()
	evs := make([]replayEv, 0, n)
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			break
		}
		ev := replayEv{
			at:   des.Time(r.I64()),
			prio: des.Time(r.I64()),
			kind: r.U16(),
			arg:  r.U32(),
		}
		switch ev.kind {
		case des.KindFlight:
			ev.dst = int(r.U32())
			ev.pkt = traffic.RestorePacket(r)
		case des.KindHopFlight:
			ev.via = int(r.I64())
			ev.dst = int(r.U32())
			ev.pkt = traffic.RestorePacket(r)
		}
		evs = append(evs, ev)
	}
	return evs
}

// replayEvents re-schedules one engine's serialized events in original
// order, after the engine's clock has been restored. Fresh ascending
// sequence numbers preserve the original relative firing order.
func replayEvents(evs []replayEv, cm compMaps, fabric *netsim.Fabric, sources []traffic.Source, hosts []*host) error {
	for _, ev := range evs {
		switch ev.kind {
		case des.KindMuxDone:
			m := cm.mux[ev.arg]
			if m == nil {
				return fmt.Errorf("core: snapshot event names unknown mux slot %d", ev.arg)
			}
			m.RestoreDone(ev.at, ev.prio)
		case des.KindSRRetry:
			s := cm.sr[ev.arg]
			if s == nil {
				return fmt.Errorf("core: snapshot event names unknown regulator slot %d", ev.arg)
			}
			s.RestoreRetry(ev.at, ev.prio)
		case des.KindSRLDone, des.KindSRLOn, des.KindSRLOff:
			sr := cm.srl[ev.arg]
			if sr == nil {
				return fmt.Errorf("core: snapshot event names unknown regulator slot %d", ev.arg)
			}
			switch ev.kind {
			case des.KindSRLDone:
				sr.RestoreDone(ev.at, ev.prio)
			case des.KindSRLOn:
				sr.RestoreOn(ev.at, ev.prio)
			default:
				sr.RestoreOff(ev.at, ev.prio)
			}
		case des.KindFlight:
			fabric.RestoreFlight(ev.at, ev.prio, ev.dst, ev.pkt)
		case des.KindHopFlight:
			fabric.RestoreHop(ev.at, ev.prio, ev.via, ev.dst, ev.pkt)
		case des.KindLinkDone:
			if err := fabric.RestoreLinkDone(ev.arg, ev.at, ev.prio); err != nil {
				return err
			}
		case des.KindSrcCycle, des.KindSrcTick:
			if int(ev.arg) >= len(sources) {
				return fmt.Errorf("core: snapshot event names unknown source %d", ev.arg)
			}
			ex, ok := sources[ev.arg].(*traffic.Extremal)
			if !ok {
				return fmt.Errorf("core: snapshot event kind %d names a %T source", ev.kind, sources[ev.arg])
			}
			if ev.kind == des.KindSrcCycle {
				ex.RestoreCycle(ev.at, ev.prio)
			} else {
				ex.RestoreTick(ev.at, ev.prio)
			}
		case des.KindAudioTalk, des.KindAudioWake:
			if int(ev.arg) >= len(sources) {
				return fmt.Errorf("core: snapshot event names unknown source %d", ev.arg)
			}
			a, ok := sources[ev.arg].(*traffic.Audio)
			if !ok {
				return fmt.Errorf("core: snapshot event kind %d names a %T source", ev.kind, sources[ev.arg])
			}
			if ev.kind == des.KindAudioTalk {
				a.RestoreTalk(ev.at, ev.prio)
			} else {
				a.RestoreWake(ev.at, ev.prio)
			}
		case des.KindVideoTick:
			if int(ev.arg) >= len(sources) {
				return fmt.Errorf("core: snapshot event names unknown source %d", ev.arg)
			}
			v, ok := sources[ev.arg].(*traffic.Video)
			if !ok {
				return fmt.Errorf("core: snapshot event kind %d names a %T source", ev.kind, sources[ev.arg])
			}
			v.RestoreTick(ev.at, ev.prio)
		case des.KindCtlTick:
			if int(ev.arg) >= len(hosts) {
				return fmt.Errorf("core: snapshot event names unknown host %d", ev.arg)
			}
			h := hosts[ev.arg]
			if h.ctlFn == nil {
				return fmt.Errorf("core: snapshot controller tick for host %d, but its controller was not restored", ev.arg)
			}
			h.restoreCtlTick(ev.at, ev.prio)
		default:
			return fmt.Errorf("core: snapshot event has unknown kind %d", ev.kind)
		}
	}
	return nil
}

// --- Sequential session ---

// Snapshot serializes the session at the current quiesce point.
func (s *Session) Snapshot() ([]byte, error) {
	if err := snapshotGuard(s.started); err != nil {
		return nil, err
	}
	evs, err := s.eng.PendingEvents()
	if err != nil {
		return nil, err
	}
	w := snap.NewWriterSize(SnapshotVersion, s.snapSize)
	writeMeta(w, s.cfg, s.eng.Now(), 1, len(s.hosts), len(s.specs))
	for _, st := range s.groups {
		writeGroup(w, st)
	}
	writeHosts(w, s.hosts)
	if err := writeSources(w, s.sources); err != nil {
		return nil, err
	}
	if s.ctl != nil {
		s.ctl.snapshot(w)
	}
	if s.fp != nil {
		s.fp.snapshot(w)
	}
	if s.ro != nil {
		s.ro.snapshot(w)
	}
	writeComponents(w, s.env, s.hosts, evs)
	if s.cfg.Transit == netsim.QueuedTransit {
		w.Begin(recFabric)
		s.fabric.SnapshotLinks(w)
		w.End()
	}
	writeEvents(w, evs, s.fabric)
	w.Begin(recStats)
	for g := range s.perGroup {
		s.perGroup[g].Snapshot(w)
	}
	s.delays.Snapshot(w)
	w.U64(s.deliver)
	w.Bool(s.windows != nil)
	if s.windows != nil {
		s.windows.Snapshot(w)
	}
	w.Len(len(s.faultCut))
	for _, n := range s.faultCut {
		w.U64(n)
	}
	w.End()
	w.Begin(recEnd)
	w.End()
	blob, err := w.Finish()
	if err == nil {
		s.snapSize = len(blob)
	}
	return blob, err
}

func (s *Session) restore(r *snap.Reader, meta snapMeta) error {
	numGroups := len(s.specs)
	for g := 0; g < numGroups; g++ {
		if err := expect(r, recGroup); err != nil {
			return err
		}
		if err := readGroup(r, s.groups[g]); err != nil {
			return err
		}
	}
	// Forwarding fan-out derives from the restored trees, exactly as the
	// live session derives it from mutations: a host's children are its
	// child sets in the current trees.
	chl := s.sub.compileChildren()
	for id, h := range s.hosts {
		h.children = chl[id]
	}
	if err := expect(r, recHosts); err != nil {
		return err
	}
	if err := readHosts(r, s.hosts); err != nil {
		return err
	}
	if err := expect(r, recSources); err != nil {
		return err
	}
	srcSts, err := readSources(r, numGroups)
	if err != nil {
		return err
	}
	if s.ctl != nil {
		if err := expect(r, recControl); err != nil {
			return err
		}
		s.ctl.restoreState(r)
	}
	if s.fp != nil {
		if err := expect(r, recFaults); err != nil {
			return err
		}
		if err := s.fp.restoreState(r); err != nil {
			return err
		}
	}
	if s.ro != nil {
		if err := expect(r, recReopt); err != nil {
			return err
		}
		if err := s.ro.restoreState(r); err != nil {
			return err
		}
	}
	if err := expect(r, recComponents); err != nil {
		return err
	}
	cm, err := readComponents(r, s.hosts, numGroups)
	if err != nil {
		return err
	}
	if s.cfg.Transit == netsim.QueuedTransit {
		if err := expect(r, recFabric); err != nil {
			return err
		}
		if err := s.fabric.RestoreLinks(r); err != nil {
			return err
		}
	}
	if err := expect(r, recEngine); err != nil {
		return err
	}
	evs := readEvents(r)
	if err := expect(r, recStats); err != nil {
		return err
	}
	for g := range s.perGroup {
		s.perGroup[g].Restore(r)
	}
	s.delays.Restore(r)
	s.deliver = r.U64()
	if r.Bool() {
		if s.windows == nil {
			return fmt.Errorf("core: snapshot has a window series, session has none")
		}
		if err := s.windows.Restore(r); err != nil {
			return err
		}
	} else if s.windows != nil {
		return fmt.Errorf("core: snapshot has no window series, session expects one")
	}
	if n := r.Len(); n != len(s.faultCut) {
		return fmt.Errorf("core: snapshot has %d cut counters, session has %d", n, len(s.faultCut))
	}
	for i := range s.faultCut {
		s.faultCut[i] = r.U64()
	}
	if err := expect(r, recEnd); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	// Sources resume at their serialized stream positions; their pending
	// emission events arrive through the replay below.
	cfg := s.cfg
	s.sources = cfg.Workload.BuildSourcesN(cfg.Mix, numGroups, cfg.TrafficSeed.Or(cfg.Seed),
		cfg.EnvelopeMargin, cfg.BurstSec)
	for g, src := range s.sources {
		if err := resumeSource(g, src, srcSts[g], s.eng, cfg.Duration, s.emitFn(g, s.groups[g].tree.Source)); err != nil {
			return err
		}
	}
	s.started = true
	s.eng.RestoreNow(meta.at)
	return replayEvents(evs, cm, s.fabric, s.sources, s.hosts)
}

// --- Sharded session ---

// Snapshot serializes the sharded session at the current quiesce point
// (between coordinator Run calls: every engine parked at the same instant).
func (s *ShardedSession) Snapshot() ([]byte, error) {
	if s.seq != nil {
		return s.seq.Snapshot()
	}
	if err := snapshotGuard(s.started); err != nil {
		return nil, err
	}
	at := s.sh[0].eng.Now()
	for _, sh := range s.sh {
		if sh.eng.Now() != at {
			return nil, fmt.Errorf("core: snapshot requires a quiesced coordinator (engines at different times)")
		}
	}
	// Fold every mailbox into the sorted pending buffers so the snapshot
	// sees all undelivered cross-shard records in one place.
	s.coord.CheckpointDrain()
	numGroups := s.sub.numGroups()
	w := snap.NewWriterSize(SnapshotVersion, s.snapSize)
	writeMeta(w, s.sub.cfg, at, len(s.sh), len(s.hosts), numGroups)
	for _, st := range s.sub.groups {
		writeGroup(w, st)
	}
	writeHosts(w, s.hosts)
	if err := writeSources(w, s.sources); err != nil {
		return nil, err
	}
	if s.ctl != nil {
		s.ctl.snapshot(w)
	}
	if s.fp != nil {
		s.fp.snapshot(w)
	}
	if s.ro != nil {
		s.ro.snapshot(w)
	}
	for _, sh := range s.sh {
		evs, err := sh.eng.PendingEvents()
		if err != nil {
			return nil, err
		}
		writeComponents(w, sh.env, s.hosts, evs)
		writeEvents(w, evs, sh.fabric)
		w.Begin(recStats)
		for g := range sh.perGroup {
			sh.perGroup[g].Snapshot(w)
		}
		sh.delays.Snapshot(w)
		w.U64(sh.deliver)
		for _, n := range sh.lost {
			w.U64(n)
		}
		w.Bool(sh.windows != nil)
		if sh.windows != nil {
			sh.windows.Snapshot(w)
		}
		w.Len(len(sh.faultCut))
		for _, n := range sh.faultCut {
			w.U64(n)
		}
		w.End()
	}
	w.Begin(recCoord)
	seqs := s.coord.SrcSeqs()
	w.Len(len(seqs))
	for _, q := range seqs {
		w.U64(q)
	}
	epochs, messages, stallNum, stallDen := s.coord.Diagnostics()
	w.U64(epochs)
	w.U64(messages)
	w.U64(stallNum)
	w.U64(stallDen)
	for dst := range s.sh {
		recs, err := s.coord.PendingRecords(dst)
		if err != nil {
			return nil, err
		}
		w.Len(len(recs))
		for _, rc := range recs {
			w.I64(int64(rc.At))
			w.I64(int64(rc.Lamport))
			w.U64(rc.Seq)
			w.I64(int64(rc.Src))
			w.U32(uint32(rc.Payload.host))
			rc.Payload.p.Snapshot(w)
		}
	}
	w.End()
	w.Begin(recEnd)
	w.End()
	blob, err := w.Finish()
	if err == nil {
		s.snapSize = len(blob)
	}
	return blob, err
}

func (s *ShardedSession) restore(r *snap.Reader, meta snapMeta) error {
	cfg := s.sub.cfg
	numGroups := s.sub.numGroups()
	for g := 0; g < numGroups; g++ {
		if err := expect(r, recGroup); err != nil {
			return err
		}
		if err := readGroup(r, s.sub.groups[g]); err != nil {
			return err
		}
	}
	chl := s.sub.compileChildren()
	for id, h := range s.hosts {
		h.children = chl[id]
	}
	if err := expect(r, recHosts); err != nil {
		return err
	}
	if err := readHosts(r, s.hosts); err != nil {
		return err
	}
	if err := expect(r, recSources); err != nil {
		return err
	}
	srcSts, err := readSources(r, numGroups)
	if err != nil {
		return err
	}
	if s.ctl != nil {
		if err := expect(r, recControl); err != nil {
			return err
		}
		s.ctl.restoreState(r)
	}
	if s.fp != nil {
		if err := expect(r, recFaults); err != nil {
			return err
		}
		if err := s.fp.restoreState(r); err != nil {
			return err
		}
	}
	if s.ro != nil {
		if err := expect(r, recReopt); err != nil {
			return err
		}
		if err := s.ro.restoreState(r); err != nil {
			return err
		}
	}
	cms := make([]compMaps, len(s.sh))
	evss := make([][]replayEv, len(s.sh))
	for si, sh := range s.sh {
		if err := expect(r, recComponents); err != nil {
			return err
		}
		if cms[si], err = readComponents(r, s.hosts, numGroups); err != nil {
			return err
		}
		if err := expect(r, recEngine); err != nil {
			return err
		}
		evss[si] = readEvents(r)
		if err := expect(r, recStats); err != nil {
			return err
		}
		for g := range sh.perGroup {
			sh.perGroup[g].Restore(r)
		}
		sh.delays.Restore(r)
		sh.deliver = r.U64()
		for g := range sh.lost {
			sh.lost[g] = r.U64()
		}
		if r.Bool() {
			if sh.windows == nil {
				return fmt.Errorf("core: snapshot has a window series, session has none")
			}
			if err := sh.windows.Restore(r); err != nil {
				return err
			}
		} else if sh.windows != nil {
			return fmt.Errorf("core: snapshot has no window series, session expects one")
		}
		if n := r.Len(); n != len(sh.faultCut) {
			return fmt.Errorf("core: snapshot has %d cut counters, shard has %d", n, len(sh.faultCut))
		}
		for i := range sh.faultCut {
			sh.faultCut[i] = r.U64()
		}
	}
	if err := expect(r, recCoord); err != nil {
		return err
	}
	if n := r.Len(); n != len(s.sh) {
		return fmt.Errorf("core: snapshot has %d source-seq counters, session has %d shards", n, len(s.sh))
	}
	seqs := make([]uint64, len(s.sh))
	for i := range seqs {
		seqs[i] = r.U64()
	}
	s.coord.RestoreSrcSeqs(seqs)
	epochs, messages, stallNum, stallDen := r.U64(), r.U64(), r.U64(), r.U64()
	s.coord.RestoreDiagnostics(epochs, messages, stallNum, stallDen)
	for dst := range s.sh {
		n := r.Len()
		recs := make([]des.ShardRec[shardPacket], 0, n)
		for i := 0; i < n; i++ {
			if r.Err() != nil {
				break
			}
			rc := des.ShardRec[shardPacket]{
				At:      des.Time(r.I64()),
				Lamport: des.Time(r.I64()),
				Seq:     r.U64(),
				Src:     int32(r.I64()),
			}
			rc.Payload.host = int(r.U32())
			rc.Payload.p = traffic.RestorePacket(r)
			recs = append(recs, rc)
		}
		s.coord.RestorePending(dst, recs)
	}
	if err := expect(r, recEnd); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.sources = cfg.Workload.BuildSourcesN(cfg.Mix, numGroups, cfg.TrafficSeed.Or(cfg.Seed),
		cfg.EnvelopeMargin, cfg.BurstSec)
	for g, src := range s.sources {
		root := s.sub.groups[g].tree.Source
		if err := resumeSource(g, src, srcSts[g], s.sh[s.owner[root]].eng, cfg.Duration, s.emitFn(g, root)); err != nil {
			return err
		}
	}
	s.started = true
	for si, sh := range s.sh {
		sh.eng.RestoreNow(meta.at)
		if err := replayEvents(evss[si], cms[si], sh.fabric, s.sources, s.hosts); err != nil {
			return err
		}
	}
	return nil
}

// Restore rebuilds a session from cfg and a snapshot taken by Snapshot
// under the same cfg, positioned at the checkpoint instant and ready to
// continue with RunTo/Finish — bit-identically to the original run.
func Restore(cfg Config, data []byte) (Checkpointer, error) {
	r, version, err := snap.NewReader(data)
	if err != nil {
		return nil, err
	}
	if version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", version, SnapshotVersion)
	}
	if err := expect(r, recMeta); err != nil {
		return nil, err
	}
	meta := readMeta(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	sub := compileSubstrate(cfg)
	if err := checkMeta(meta, sub); err != nil {
		return nil, err
	}
	rs := &resumeState{at: meta.at}
	if sub.cfg.Shards > 1 && sub.cfg.Transit == netsim.PipeTransit {
		s := newShardedFrom(sub, rs)
		if s.seq != nil {
			if meta.shards != 1 {
				return nil, fmt.Errorf("core: snapshot has %d shards, session degenerates to 1", meta.shards)
			}
			if err := s.seq.restore(r, meta); err != nil {
				return nil, err
			}
			return s, nil
		}
		if meta.shards != len(s.sh) {
			return nil, fmt.Errorf("core: snapshot has %d shards, session has %d", meta.shards, len(s.sh))
		}
		if err := s.restore(r, meta); err != nil {
			return nil, err
		}
		return s, nil
	}
	if meta.shards != 1 {
		return nil, fmt.Errorf("core: snapshot has %d shards, session is sequential", meta.shards)
	}
	s := newSessionFrom(sub, rs)
	if err := s.restore(r, meta); err != nil {
		return nil, err
	}
	return s, nil
}
