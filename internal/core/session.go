package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TreeKind selects the overlay architecture of Simulation II.
type TreeKind int

// The two tree families compared in Fig. 6.
const (
	TreeDSCT TreeKind = iota
	TreeNICE
)

// String implements fmt.Stringer.
func (t TreeKind) String() string {
	if t == TreeNICE {
		return "NICE"
	}
	return "DSCT"
}

// Config parameterises one multi-group EMcast run (one point of Fig. 6 /
// Tables I–III).
type Config struct {
	// NumHosts is the network population; every host joins every group
	// (the paper: "665 end hosts ... who join in 3 groups"). Default 665.
	NumHosts int
	// Mix selects the per-group real-time flows. One flow per group.
	Mix traffic.Mix
	// Load is the x-axis of every figure: the aggregate normalised input
	// rate Σρᵢ/C at each end host, in (0, 1).
	Load float64
	// Scheme is the traffic-control scheme at every host.
	Scheme Scheme
	// Tree selects DSCT or NICE.
	Tree TreeKind
	// Duration is the simulated time; WDB is the max delay observed.
	// Default 5 s.
	Duration des.Duration
	// Seed drives the structural randomness: host attachment and tree
	// construction (and, unless TrafficSeed overrides it, the workload).
	Seed uint64
	// TrafficSeed separately seeds the workload's randomness (VBR models,
	// measured envelopes). Zero means "use Seed". Sweep drivers derive a
	// distinct TrafficSeed per sweep point so the traffic streams of the
	// points are statistically independent while the network and trees —
	// which the paper holds fixed across a sweep — stay identical.
	TrafficSeed uint64
	// CapacityFactor is C_out/C for the capacity-aware scheme (see
	// DESIGN.md). Default 2.0.
	CapacityFactor float64
	// EnvelopeMargin sets the regulators' ρ headroom over the true average
	// rate. Default 1.02.
	EnvelopeMargin float64
	// EnvelopeHorizonSec is the measurement horizon for flow envelopes.
	// Default 30 s.
	EnvelopeHorizonSec float64
	// ClusterK is the DSCT/NICE cluster parameter. Default 3.
	ClusterK int
	// Discipline selects the general MUX service order. Default LIFO.
	Discipline mux.Discipline
	// Transit selects the underlay model. Default PipeTransit.
	Transit netsim.TransitMode
	// StaggerAligned disables the round-robin phase offsets (ablation).
	StaggerAligned bool
	// Workload selects extremal (default) or VBR group flows.
	Workload Workload
	// BurstSec sets the extremal flows' σ in seconds of their ρ.
	// Default 0.15.
	BurstSec float64
	// Specs, when non-nil, overrides envelope measurement (used by
	// sweeps to measure once and share).
	Specs []FlowSpec
}

func (c *Config) fillDefaults() {
	if c.NumHosts == 0 {
		c.NumHosts = 665
	}
	if c.NumHosts < 2 {
		panic("core: need at least two hosts")
	}
	if c.Load <= 0 || c.Load >= 1 {
		panic(fmt.Sprintf("core: load %v outside (0,1)", c.Load))
	}
	if c.Duration == 0 {
		c.Duration = 5 * des.Second
	}
	if c.CapacityFactor == 0 {
		c.CapacityFactor = 2.0
	}
	if c.EnvelopeMargin == 0 {
		c.EnvelopeMargin = DefaultEnvelopeMargin
	}
	if c.EnvelopeHorizonSec == 0 {
		c.EnvelopeHorizonSec = DefaultEnvelopeHorizonSec
	}
	if c.ClusterK == 0 {
		c.ClusterK = 3
	}
	if c.BurstSec == 0 {
		c.BurstSec = DefaultBurstSec
	}
	if c.TrafficSeed == 0 {
		c.TrafficSeed = c.Seed
	}
}

// Result reports one run's measurements.
type Result struct {
	// WDB is the worst-case multicast delay in seconds: the largest
	// source-to-member delay over all packets, members, and groups.
	WDB float64
	// PerGroupWDB breaks WDB down by group.
	PerGroupWDB []float64
	// MeanDelay is the average delivery delay across all receptions.
	MeanDelay float64
	// Layers is the max layer count over the group trees (Tables I–III).
	Layers int
	// TreeLayers breaks Layers down by group.
	TreeLayers []int
	// Delivered counts packet receptions across all members and groups.
	Delivered uint64
	// ThresholdUtil is the adaptive algorithm's switching utilisation.
	ThresholdUtil float64
	// ModeSwitches counts regulator-model switches across hosts
	// (meaningful for SchemeAdaptive).
	ModeSwitches int
	// ConnCapacity is the per-connection capacity C implied by the load.
	ConnCapacity float64
	// Specs echoes the flow envelopes used, for reuse across a sweep.
	Specs []FlowSpec
}

// Session is a fully wired multi-group EMcast simulation.
type Session struct {
	cfg    Config
	eng    *des.Engine
	net    *topo.Network
	fabric *netsim.Fabric
	trees  []*overlay.Tree
	hosts  []*host
	specs  []FlowSpec

	perGroup []stats.MaxTracker
	delays   stats.Welford
	deliver  uint64
}

// NewSession builds the network, trees, and host machinery for cfg.
func NewSession(cfg Config) *Session {
	cfg.fillDefaults()
	s := &Session{cfg: cfg, eng: des.New()}
	s.net = topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{
		NumHosts: cfg.NumHosts,
		Seed:     cfg.Seed,
	})
	s.fabric = netsim.NewFabric(s.eng, s.net, netsim.FabricConfig{Mode: cfg.Transit})

	// Flow envelopes.
	s.specs = cfg.Specs
	if s.specs == nil {
		s.specs = cfg.Workload.BuildSpecs(cfg.Mix, cfg.TrafficSeed, cfg.EnvelopeMargin,
			cfg.BurstSec, cfg.EnvelopeHorizonSec)
	}
	numGroups := len(s.specs)

	// Per-connection capacity from the x-axis load.
	conn := cfg.Mix.TotalRate() / cfg.Load

	// Trees. Regulated schemes build one tree per group (sources at hosts
	// 0..numGroups-1). The capacity-aware scheme instead shares a single
	// cluster-capped tree across all groups, exactly as the paper's
	// Fig. 1(b) reconstructs one tree carrying both flows: its fanout
	// budget ⌊C_out/Σρᵢ⌋ only yields a stable schedule when the same d
	// children receive every flow.
	members := make([]int, cfg.NumHosts)
	for i := range members {
		members[i] = i
	}
	build := func(src int, tc overlay.Config) *overlay.Tree {
		if cfg.Tree == TreeNICE {
			return overlay.BuildNICE(s.net, members, src, tc)
		}
		return overlay.BuildDSCT(s.net, members, src, tc)
	}
	s.trees = make([]*overlay.Tree, numGroups)
	if cfg.Scheme == SchemeCapacityAware {
		fanout := overlay.FanoutBound(cfg.Load, cfg.CapacityFactor)
		var shared *overlay.Tree
		if cfg.Tree == TreeNICE {
			shared = overlay.BuildFlatBlind(s.net, members, 0, fanout, cfg.Seed*1000)
		} else {
			shared = overlay.BuildFlat(s.net, members, 0, fanout)
		}
		for g := range s.trees {
			s.trees[g] = shared
		}
	} else {
		for g := 0; g < numGroups; g++ {
			tc := overlay.Config{K: cfg.ClusterK, Seed: cfg.Seed*1000 + uint64(g)}
			s.trees[g] = build(g%cfg.NumHosts, tc)
		}
	}

	// Host machinery.
	env := &hostEnv{
		eng:        s.eng,
		specs:      s.specs,
		conn:       conn,
		bursts:     RegulatorBursts(s.specs, conn),
		discipline: cfg.Discipline,
		aligned:    cfg.StaggerAligned,
		send:       func(from, to int, p traffic.Packet) { s.fabric.Send(from, to, p) },
	}
	if cfg.Scheme == SchemeCapacityAware {
		agg := cfg.CapacityFactor * conn
		env.connCap = func(numConns int) float64 {
			if numConns < 1 {
				numConns = 1
			}
			return agg / float64(numConns)
		}
	}
	s.hosts = make([]*host, cfg.NumHosts)
	threshold := ThresholdUtilization(numGroups, cfg.Mix.Homogeneous())
	for id := 0; id < cfg.NumHosts; id++ {
		children := make([][]int, numGroups)
		for g := 0; g < numGroups; g++ {
			children[g] = s.trees[g].Children(id)
		}
		s.hosts[id] = newHost(id, env, children, cfg.Scheme)
		if cfg.Scheme == SchemeAdaptive && s.hosts[id].muxes != nil && len(s.hosts[id].muxes) > 0 {
			s.hosts[id].startController(des.Second, 250*des.Millisecond, threshold)
		}
		id := id
		s.fabric.SetReceiver(id, func(p traffic.Packet) { s.receive(id, p) })
	}

	s.perGroup = make([]stats.MaxTracker, numGroups)
	return s
}

// receive records delivery of a group packet at a member and hands it to
// the host's forwarding pipeline.
func (s *Session) receive(id int, p traffic.Packet) {
	g := p.Flow
	d := p.Delay(s.eng.Now()).Seconds()
	s.perGroup[g].Observe(d, p.ID)
	s.delays.Add(d)
	s.deliver++
	h := s.hosts[id]
	h.observe(p)
	h.forward(g, p)
}

// Run drives the simulation for the configured duration plus a drain tail
// and returns the measurements.
func (s *Session) Run() Result {
	cfg := s.cfg
	numGroups := len(s.specs)
	// Sources: group g's flow enters the network at its tree root. The
	// root host "receives" at delay zero conceptually; measurement only
	// counts downstream deliveries, so the source feeds forward() direct.
	for g, src := range cfg.Workload.BuildSources(cfg.Mix, cfg.TrafficSeed, cfg.EnvelopeMargin, cfg.BurstSec) {
		g := g
		root := s.trees[g].Source
		src.Start(s.eng, cfg.Duration, func(p traffic.Packet) {
			s.hosts[root].observe(p)
			s.hosts[root].forward(g, p)
		})
	}
	// Drain tail: generous for duty-cycle vacations at every hop.
	s.eng.RunUntil(cfg.Duration + 20*des.Second)

	res := Result{
		PerGroupWDB:   make([]float64, numGroups),
		TreeLayers:    make([]int, numGroups),
		MeanDelay:     s.delays.Mean(),
		Delivered:     s.deliver,
		ThresholdUtil: ThresholdUtilization(numGroups, cfg.Mix.Homogeneous()),
		ConnCapacity:  cfg.Mix.TotalRate() / cfg.Load,
		Specs:         s.specs,
	}
	for g := 0; g < numGroups; g++ {
		res.PerGroupWDB[g] = s.perGroup[g].Max()
		if res.PerGroupWDB[g] > res.WDB {
			res.WDB = res.PerGroupWDB[g]
		}
		res.TreeLayers[g] = s.trees[g].Layers()
		if res.TreeLayers[g] > res.Layers {
			res.Layers = res.TreeLayers[g]
		}
	}
	for _, h := range s.hosts {
		res.ModeSwitches += h.switches
	}
	return res
}

// Trees exposes the built group trees (for inspection tools and tests).
func (s *Session) Trees() []*overlay.Tree { return s.trees }

// Network exposes the underlay (for inspection tools and tests).
func (s *Session) Network() *topo.Network { return s.net }

// Run builds a session for cfg and runs it.
func Run(cfg Config) Result {
	return NewSession(cfg).Run()
}
