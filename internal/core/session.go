package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mux"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TreeKind selects the overlay architecture of Simulation II.
type TreeKind int

// The two tree families compared in Fig. 6.
const (
	TreeDSCT TreeKind = iota
	TreeNICE
)

// String implements fmt.Stringer.
func (t TreeKind) String() string {
	if t == TreeNICE {
		return "NICE"
	}
	return "DSCT"
}

// GroupSpec describes one multicast group of a session: who is in it and
// which member sources its flow. The paper's implicit model — every host
// joins every group — is the nil-Groups default of Config; scenarios with
// partial or overlapping membership pass explicit GroupSpecs.
type GroupSpec struct {
	// Source is the host originating the group's flow. Must be a member.
	Source int
	// Members lists the hosts subscribed to the group (including Source).
	// The group's delivery tree spans exactly this set; non-members never
	// carry or receive the group's packets.
	Members []int
}

// Config parameterises one multi-group EMcast run (one point of Fig. 6 /
// Tables I–III, or one scenario-layer session).
type Config struct {
	// NumHosts is the network population (the paper: "665 end hosts ...
	// who join in 3 groups"). Default 665.
	NumHosts int
	// Mix selects the per-group real-time flow pattern; with more groups
	// than the mix's three flows the pattern cycles (see
	// traffic.Mix.SourcesN).
	Mix traffic.Mix
	// Load is the x-axis of every figure: the aggregate normalised input
	// rate Σρᵢ/C at a host carrying every group, in (0, 1).
	Load float64
	// Scheme is the traffic-control scheme at every host.
	Scheme Scheme
	// Tree selects DSCT or NICE.
	Tree TreeKind
	// Strategy names the overlay tree-construction strategy from the
	// overlay registry ("dsct", "nice", "spt", "greedy", ...). Empty
	// derives it from Tree, preserving the legacy enum: TreeDSCT → "dsct",
	// TreeNICE → "nice". The capacity-aware scheme keeps its own flat
	// shared-tree construction and rejects an explicit strategy.
	Strategy string
	// Reopt configures the online tree re-optimization plane: periodic
	// DES events that rewire (or rebuild) each group's delivery tree from
	// measured per-member delay estimates, under hysteresis. The zero
	// value disables it, leaving the session byte-identical to a static
	// build. Requires a regulated scheme. See reopt.go.
	Reopt ReoptConfig
	// Duration is the simulated time; WDB is the max delay observed.
	// Default 5 s.
	Duration des.Duration
	// Seed drives the structural randomness: host attachment, membership,
	// and tree construction (and, unless TrafficSeed overrides it, the
	// workload).
	Seed uint64
	// TrafficSeed separately seeds the workload's randomness (VBR models,
	// measured envelopes). Unset means "use Seed"; an explicitly set
	// value — including 0 — is honoured as given. Sweep drivers derive a
	// distinct TrafficSeed per sweep point so the traffic streams of the
	// points are statistically independent while the network and trees —
	// which the paper holds fixed across a sweep — stay identical.
	TrafficSeed SeedOpt
	// CapacityFactor is C_out/C for the capacity-aware scheme (see
	// DESIGN.md). Default 2.0.
	CapacityFactor float64
	// EnvelopeMargin sets the regulators' ρ headroom over the true average
	// rate. Default 1.02.
	EnvelopeMargin float64
	// EnvelopeHorizonSec is the measurement horizon for flow envelopes.
	// Default 30 s.
	EnvelopeHorizonSec float64
	// ClusterK is the DSCT/NICE cluster parameter. Default 3.
	ClusterK int
	// Discipline selects the general MUX service order. Default LIFO.
	Discipline mux.Discipline
	// Transit selects the underlay model. Default PipeTransit.
	Transit netsim.TransitMode
	// StaggerAligned disables the round-robin phase offsets (ablation).
	StaggerAligned bool
	// Workload selects extremal (default) or VBR group flows.
	Workload Workload
	// BurstSec sets the extremal flows' σ in seconds of their ρ.
	// Default 0.15.
	BurstSec float64
	// Specs, when non-nil, overrides envelope measurement (used by
	// sweeps to measure once and share). Length must equal the group
	// count.
	Specs []FlowSpec

	// Topology generates the underlay router graph. Nil selects the
	// paper's fixed 19-router backbone.
	Topology topo.Generator
	// Groups, when non-nil, gives each group its explicit member set and
	// source. Nil selects the paper's model: every host joins all
	// NumGroups groups and group g's flow enters at host g % NumHosts.
	Groups []GroupSpec
	// NumGroups sets the group count when Groups is nil. 0 means one
	// group per mix flow (the paper's 3). Ignored when Groups is non-nil.
	NumGroups int
	// UplinkClasses draws heterogeneous per-host capacity multipliers
	// (see topo.UplinkClass). Empty keeps the paper's homogeneous hosts.
	UplinkClasses []topo.UplinkClass

	// Events, when non-empty, turns on the session control plane: the
	// listed membership changes are applied as DES events during the run —
	// joins graft new members onto the group tree, leaves prune them and
	// repair the orphaned subtrees (see control.go). Requires a regulated
	// scheme (the capacity-aware comparator's shared tree cannot express
	// per-group membership drift). An empty Events compiles to exactly the
	// static session of the paper.
	Events []MembershipEvent
	// Faults, when non-empty, turns on the fault-injection plane: the
	// listed correlated failures (domain outages, partition/heal, mass
	// membership transitions) execute as DES events during the run and
	// their recovery is measured per event (see faults.go). Requires a
	// regulated scheme, like Events. The schedule is validated strictly at
	// build time; an empty Faults compiles to exactly the fault-free
	// session.
	Faults []FaultEvent
	// WindowSec, when > 0, records a max-delay series in buckets of this
	// many seconds — the transient view of worst-case delay around churn
	// events. 0 disables windowed measurement.
	WindowSec float64

	// Shards, when > 1, runs the session as a sharded conservative-
	// parallel simulation: hosts partition into router-granular shards,
	// each with a private engine, advanced in lock-step epochs by a
	// des.Coordinator (see shard.go). 0 or 1 selects the sequential
	// engine, which is the bit-identity baseline. Sharded execution
	// requires PipeTransit; New falls back to sequential otherwise.
	Shards int
	// GlobalMinLookahead forces the sharded coordinator onto the legacy
	// single global-min epoch width instead of the per-(src, dst) pair
	// lookahead matrix. Physics are identical either way (pinned by the
	// pair-vs-global differential tests); per-pair bounds just run fewer,
	// wider epochs. Kept as an A/B lever for those tests and debugging.
	GlobalMinLookahead bool
}

func (c *Config) fillDefaults() {
	if c.NumHosts == 0 {
		c.NumHosts = 665
	}
	if c.NumHosts < 2 {
		panic("core: need at least two hosts")
	}
	if c.Load <= 0 || c.Load >= 1 {
		panic(fmt.Sprintf("core: load %v outside (0,1)", c.Load))
	}
	if c.Duration == 0 {
		c.Duration = 5 * des.Second
	}
	if c.CapacityFactor == 0 {
		c.CapacityFactor = 2.0
	}
	if c.EnvelopeMargin == 0 {
		c.EnvelopeMargin = DefaultEnvelopeMargin
	}
	if c.EnvelopeHorizonSec == 0 {
		c.EnvelopeHorizonSec = DefaultEnvelopeHorizonSec
	}
	if c.ClusterK == 0 {
		c.ClusterK = 3
	}
	if c.BurstSec == 0 {
		c.BurstSec = DefaultBurstSec
	}
	if c.Topology == nil {
		c.Topology = topo.Backbone19Generator{}
	}
	if !c.TrafficSeed.IsSet() {
		c.TrafficSeed = UseSeed(c.Seed)
	}
	if len(c.Events) > 0 && !c.Scheme.Regulated() {
		panic("core: membership churn requires a regulated scheme")
	}
	if len(c.Faults) > 0 && !c.Scheme.Regulated() {
		panic("core: fault injection requires a regulated scheme")
	}
	if c.Strategy != "" && c.Scheme == SchemeCapacityAware {
		panic("core: the capacity-aware scheme builds its own shared flat tree; Strategy does not apply")
	}
	c.Reopt.fillDefaults(c.Scheme)
	if c.WindowSec < 0 {
		panic("core: WindowSec must be non-negative")
	}
	if c.Shards < 0 {
		panic("core: Shards must be non-negative")
	}
}

// strategyName resolves the session's overlay strategy name: the explicit
// Strategy when set, else the legacy Tree enum's name.
func (c *Config) strategyName() string {
	if c.Strategy != "" {
		return c.Strategy
	}
	if c.Tree == TreeNICE {
		return "nice"
	}
	return "dsct"
}

// groupCount resolves the session's number of groups. Call after
// fillDefaults.
func (c *Config) groupCount() int {
	if c.Groups != nil {
		return len(c.Groups)
	}
	if c.NumGroups > 0 {
		return c.NumGroups
	}
	return c.Mix.NumFlows()
}

// resolveGroups materialises the per-group member sets and sources: the
// explicit Groups when given (validated), otherwise the paper's implicit
// full-membership model.
func (c *Config) resolveGroups(numGroups int) []GroupSpec {
	if c.Groups != nil {
		everyone := make([]int, c.NumHosts)
		for i := range everyone {
			everyone[i] = i
		}
		groups := make([]GroupSpec, numGroups)
		for g, spec := range c.Groups {
			if len(spec.Members) == 0 {
				// An empty member set means "everyone" — so scenarios can
				// mix full and partial groups without spelling out 10⁵
				// members.
				spec.Members = everyone
			}
			found := false
			for _, m := range spec.Members {
				if m < 0 || m >= c.NumHosts {
					panic(fmt.Sprintf("core: group %d member %d outside [0,%d)", g, m, c.NumHosts))
				}
				if m == spec.Source {
					found = true
				}
			}
			if !found {
				panic(fmt.Sprintf("core: group %d source %d not in its member set", g, spec.Source))
			}
			groups[g] = spec
		}
		return groups
	}
	members := make([]int, c.NumHosts)
	for i := range members {
		members[i] = i
	}
	groups := make([]GroupSpec, numGroups)
	for g := range groups {
		groups[g] = GroupSpec{Source: g % c.NumHosts, Members: members}
	}
	return groups
}

// Result reports one run's measurements.
type Result struct {
	// WDB is the worst-case multicast delay in seconds: the largest
	// source-to-member delay over all packets, members, and groups.
	WDB float64
	// PerGroupWDB breaks WDB down by group.
	PerGroupWDB []float64
	// MeanDelay is the average delivery delay across all receptions.
	MeanDelay float64
	// Layers is the max layer count over the group trees (Tables I–III).
	Layers int
	// TreeLayers breaks Layers down by group.
	TreeLayers []int
	// Delivered counts packet receptions across all members and groups.
	Delivered uint64
	// ThresholdUtil is the adaptive algorithm's switching utilisation.
	ThresholdUtil float64
	// ModeSwitches counts regulator-model switches across hosts
	// (meaningful for SchemeAdaptive).
	ModeSwitches int
	// ConnCapacity is the base per-connection capacity C implied by the
	// load (heterogeneous hosts scale it by their uplink class).
	ConnCapacity float64
	// Specs echoes the flow envelopes used, for reuse across a sweep.
	Specs []FlowSpec

	// Control-plane outcome (zero for static sessions): applied joins and
	// leaves, orphan subtrees re-parented during repair, and events that
	// were no-ops (join of a member, leave of a non-member or source).
	Joins, Leaves, Regrafts, RejectedEvents int
	// Re-optimization outcome (zero unless Config.Reopt is enabled):
	// accepted tree changes (rewires plus rebuilds), members re-parented
	// by those changes, and per-group passes that evaluated a candidate
	// but kept the tree (hysteresis held, or no candidate improved).
	Reopts, ReoptMoves, ReoptRejected int
	// Lost counts disruption casualties: packets that arrived at a host
	// outside its membership interval (in flight across a leave) plus
	// regulator backlog abandoned when a forwarder departed.
	Lost uint64
	// PerGroupLost breaks Lost down by group.
	PerGroupLost []uint64
	// WindowMax is the per-window max-delay series (bucket width
	// WindowSec); nil unless Config.WindowSec was set.
	WindowMax []float64
	// WindowSec echoes the configured bucket width.
	WindowSec float64

	// Faults reports each injected fault event's measured impact and
	// recovery, in schedule order; empty unless Config.Faults was set.
	Faults []FaultOutcome
	// FaultLost totals the loss attributed to fault events: regulator
	// backlog abandoned by fault teardowns (also counted in Lost, like
	// churn teardowns) plus partition-cut drops (CutLost).
	FaultLost uint64
	// CutLost counts packets dropped crossing an active partition cut —
	// underlay loss, disjoint from the membership accounting in Lost.
	CutLost uint64

	// Sharded-execution diagnostics. Shards is the engine count the run
	// actually used (1 for the sequential engine or a degenerate
	// partition); the rest are zero unless Shards > 1.
	Shards int
	// Epochs is the number of conservative epochs the coordinator ran.
	Epochs uint64
	// CrossShardMsgs is the number of boundary packets relayed between
	// shards.
	CrossShardMsgs uint64
	// StallShare is the measured epoch load imbalance in [0, 1): the
	// fraction of per-epoch worker capacity spent waiting at barriers
	// (0 = perfectly balanced). Deterministic — it is a function of
	// per-shard executed-event counts, not wall time.
	StallShare float64
}

// groupState is the mutable per-group runtime: the current member set,
// the delivery tree, and the disruption tally. The control plane mutates
// it mid-run; static sessions build it once and never touch it again, so
// a session with no Events is bit-identical to the pre-control-plane
// architecture.
type groupState struct {
	spec   GroupSpec     // the compiled (initial) membership
	tree   *overlay.Tree // current delivery tree
	member []bool        // current membership by host id
	lost   uint64        // packets lost to membership churn (see Result.Lost)
	// strat and lim are the strategy that built the tree and its graft
	// constraints, kept so churn grafts/repairs and re-optimization use
	// strategy-specific placement. Nil for the capacity-aware scheme's
	// shared flat trees, which the control plane never mutates.
	strat overlay.Strategy
	lim   overlay.Limits
	// treeCfg is the overlay build configuration the tree was compiled
	// with, reused (with a derived seed) by full rebuilds.
	treeCfg overlay.Config
	// detached parks the subtree roots a partition severed off the tree,
	// ascending, until the heal re-attaches them (see faults.go). While it
	// is non-empty the tree does not span the member set and the reopt
	// plane holds off.
	detached []int
}

// Session is a fully wired multi-group EMcast simulation: an immutable
// compiled substrate (underlay, fabric, flow envelopes, host machinery
// skeleton) plus the mutable per-group runtime in groups, driven by the
// control plane when membership events are configured.
type Session struct {
	cfg    Config
	sub    *substrate
	eng    *des.Engine
	net    *topo.Network
	fabric *netsim.Fabric
	env    *hostEnv
	hosts  []*host
	specs  []FlowSpec
	groups []*groupState
	ctl    *controlPlane // nil for static sessions
	ro     *reoptPlane   // nil unless cfg.Reopt is enabled
	fp     *faultPlane   // nil unless cfg.Faults is set

	faultCut []uint64 // per fault event: packets dropped at its cut

	perGroup []stats.MaxTracker
	delays   stats.Welford
	deliver  uint64
	windows  *stats.WindowMax // nil unless cfg.WindowSec > 0

	sources  []traffic.Source // built by Start (or a snapshot restore)
	started  bool
	snapSize int // previous snapshot size: capacity hint for the next one
}

// resumeState marks a session build as a checkpoint-restore skeleton: the
// engine-independent structure compiles as usual, but hosts come up bare
// (children, MUXes, regulators, and modes arrive from the snapshot) and
// the build planes only schedule events strictly after the checkpoint
// instant — events at or before it already fired in the original run.
type resumeState struct {
	at des.Time // checkpoint instant
}

// NewSession builds the network, trees, and host machinery for cfg.
func NewSession(cfg Config) *Session {
	return newSessionFrom(compileSubstrate(cfg), nil)
}

// newSessionFrom wires the sequential engine over a compiled substrate.
// The wiring order (hosts in id order, controllers immediately after their
// host, control plane last) fixes the engine's event sequence numbers and
// is pinned by the golden bit-identity tests.
func newSessionFrom(sub *substrate, rs *resumeState) *Session {
	cfg := sub.cfg
	s := &Session{cfg: cfg, sub: sub, eng: des.New(), net: sub.net, specs: sub.specs, groups: sub.groups}
	// The Drop hook reads the fault plane through s at send time; it is
	// nil — zero overhead, byte-identical fabric — without faults.
	var drop func(src, dst int) bool
	if len(cfg.Faults) > 0 {
		drop = func(src, dst int) bool { return s.fp.cutDrop(s.faultCut, src, dst) }
	}
	s.fabric = netsim.NewFabric(s.eng, s.net, netsim.FabricConfig{Mode: cfg.Transit, Drop: drop})

	numGroups := sub.numGroups()
	// Host machinery.
	env := &hostEnv{
		eng:        s.eng,
		specs:      s.specs,
		conn:       sub.conn,
		mults:      sub.mults,
		bursts:     RegulatorBursts(s.specs, sub.conn),
		discipline: cfg.Discipline,
		aligned:    cfg.StaggerAligned,
		threshold:  sub.threshold,
		send:       func(from, to int, p traffic.Packet) { s.fabric.Send(from, to, p) },
	}
	s.env = env
	if cfg.Scheme == SchemeCapacityAware {
		env.capAware = true
		env.capFactor = cfg.CapacityFactor
	}
	// after gates build-plane scheduling on resume: only events strictly
	// after the checkpoint instant are re-created (the rest already fired).
	after := des.Time(-1)
	if rs != nil {
		after = rs.at
	}
	chl := sub.compileChildren()
	conns := hostConns(chl)
	s.hosts = make([]*host, cfg.NumHosts)
	for id := 0; id < cfg.NumHosts; id++ {
		if rs != nil {
			s.hosts[id] = newHostBare(id, env, cfg.Scheme)
		} else {
			s.hosts[id] = newHostWired(id, env, chl[id], conns[id], cfg.Scheme)
			if cfg.Scheme == SchemeAdaptive && len(s.hosts[id].muxes) > 0 {
				s.hosts[id].startController(ctlWindow, ctlInterval, sub.threshold)
			}
		}
		id := id
		s.fabric.SetReceiver(id, func(p traffic.Packet) { s.receive(id, p) })
	}

	s.perGroup = make([]stats.MaxTracker, numGroups)
	if cfg.WindowSec > 0 {
		s.windows = stats.NewWindowMax(cfg.WindowSec)
	}
	if len(cfg.Faults) > 0 {
		// Scheduled before the membership events so that at a shared
		// instant faults apply first, then churn — the order the sharded
		// coordinator barriers reproduce.
		s.fp = newFaultPlane(sub, s.hosts, faultsWithin(cfg.Faults, cfg.Duration))
		s.faultCut = make([]uint64, len(s.fp.events))
		s.fp.scheduleAfter(s.eng, after)
	}
	if len(cfg.Events) > 0 {
		s.ctl = newControlPlane(sub, s.hosts)
		if s.fp != nil {
			s.ctl.down = s.fp.down
		}
		s.ctl.scheduleAfter(s.eng, cfg.Duration, cfg.Events, after)
	}
	if cfg.Reopt.Enabled() {
		// Scheduled after the membership events so that at a shared
		// instant churn applies first, then the pass sees the churned
		// tree — the order the sharded coordinator barriers reproduce.
		s.ro = newReoptPlane(sub, s.hosts)
		for _, at := range reoptTimes(cfg.Reopt.Every, cfg.Duration) {
			if at <= after {
				continue
			}
			at := at
			s.eng.ScheduleKind(at, des.KindBuild, 0, func() { s.ro.reoptimize(at) })
		}
	}
	return s
}

// receive records delivery of a group packet at a member and hands it to
// the host's forwarding pipeline. A packet arriving at a host outside its
// membership interval — it was in flight when the host left the group —
// is dropped and counted as churn loss, never measured or forwarded: the
// membership invariant the control-plane tests pin down.
func (s *Session) receive(id int, p traffic.Packet) {
	g := p.Flow
	st := s.groups[g]
	if !st.member[id] {
		st.lost++
		return
	}
	d := p.Delay(s.eng.Now()).Seconds()
	s.perGroup[g].Observe(d, p.ID)
	s.delays.Add(d)
	s.deliver++
	if s.windows != nil {
		s.windows.Observe(s.eng.Now().Seconds(), d)
	}
	if s.ro != nil {
		s.ro.observe(g, id, d)
	}
	if s.fp != nil {
		s.fp.onDeliver(g, id, s.eng.Now())
	}
	h := s.hosts[id]
	h.observe(p)
	h.forward(g, p)
}

// emitFn is a source's injection callback: group g's flow enters the
// network at its tree root. The root host "receives" at delay zero
// conceptually; measurement only counts downstream deliveries, so the
// source feeds forward() direct.
func (s *Session) emitFn(g, root int) func(traffic.Packet) {
	return func(p traffic.Packet) {
		s.hosts[root].observe(p)
		s.hosts[root].forward(g, p)
	}
}

// end is the simulation horizon: the traffic duration plus a drain tail,
// generous for duty-cycle vacations at every hop.
func (s *Session) end() des.Time { return des.Time(s.cfg.Duration) + 20*des.Second }

// Start builds and launches the traffic sources. Idempotent; Run calls it,
// and checkpoint drivers call it once before stepping with RunTo.
func (s *Session) Start() {
	if s.started {
		return
	}
	s.started = true
	cfg := s.cfg
	s.sources = cfg.Workload.BuildSourcesN(cfg.Mix, len(s.specs), cfg.TrafficSeed.Or(cfg.Seed),
		cfg.EnvelopeMargin, cfg.BurstSec)
	for g, src := range s.sources {
		src.Start(s.eng, cfg.Duration, s.emitFn(g, s.groups[g].tree.Source))
	}
}

// RunTo advances the simulation to exactly time t (a quiesce point: every
// event at or before t has fired and the clock sits at t).
func (s *Session) RunTo(t des.Time) { s.eng.RunUntil(t) }

// Finish runs out the remaining events through the drain tail and returns
// the measurements.
func (s *Session) Finish() Result {
	cfg := s.cfg
	numGroups := len(s.specs)
	s.eng.RunUntil(s.end())

	res := Result{
		PerGroupWDB:   make([]float64, numGroups),
		TreeLayers:    make([]int, numGroups),
		PerGroupLost:  make([]uint64, numGroups),
		MeanDelay:     s.delays.Mean(),
		Delivered:     s.deliver,
		ThresholdUtil: ThresholdUtilization(numGroups, cfg.Mix.Homogeneous()),
		ConnCapacity:  cfg.Mix.TotalRateN(numGroups) / cfg.Load,
		Specs:         s.specs,
		WindowSec:     cfg.WindowSec,
		Shards:        1,
	}
	for g := 0; g < numGroups; g++ {
		res.PerGroupWDB[g] = s.perGroup[g].Max()
		if res.PerGroupWDB[g] > res.WDB {
			res.WDB = res.PerGroupWDB[g]
		}
		res.TreeLayers[g] = s.groups[g].tree.Layers()
		if res.TreeLayers[g] > res.Layers {
			res.Layers = res.TreeLayers[g]
		}
		res.PerGroupLost[g] = s.groups[g].lost
		res.Lost += s.groups[g].lost
	}
	for _, h := range s.hosts {
		res.ModeSwitches += h.switches
	}
	if s.ctl != nil {
		res.Joins, res.Leaves = s.ctl.joins, s.ctl.leaves
		res.Regrafts, res.RejectedEvents = s.ctl.regrafts, s.ctl.rejected
	}
	if s.ro != nil {
		res.Reopts, res.ReoptMoves, res.ReoptRejected = s.ro.accepted, s.ro.moves, s.ro.rejected
	}
	if s.windows != nil {
		res.WindowMax = s.windows.Series()
	}
	if s.fp != nil {
		s.fp.finish(&res, s.faultCut)
	}
	return res
}

// Run drives the simulation for the configured duration plus a drain tail
// and returns the measurements.
func (s *Session) Run() Result {
	s.Start()
	return s.Finish()
}

// Trees exposes the current group trees (for inspection tools and tests).
// Under churn the trees reflect the membership at the time of the call.
func (s *Session) Trees() []*overlay.Tree {
	out := make([]*overlay.Tree, len(s.groups))
	for g, st := range s.groups {
		out[g] = st.tree
	}
	return out
}

// Groups exposes the compiled (initial) per-group member sets and
// sources; the control plane's mutations are visible through IsMember and
// Trees instead.
func (s *Session) Groups() []GroupSpec {
	out := make([]GroupSpec, len(s.groups))
	for g, st := range s.groups {
		out[g] = st.spec
	}
	return out
}

// IsMember reports host id's current membership in group g — the live
// control-plane state, which static sessions never change.
func (s *Session) IsMember(g, id int) bool { return s.groups[g].member[id] }

// Network exposes the underlay (for inspection tools and tests).
func (s *Session) Network() *topo.Network { return s.net }

// Run builds a session for cfg and runs it: sequential by default,
// sharded conservative-parallel when cfg.Shards > 1 (see shard.go).
func Run(cfg Config) Result {
	return New(cfg).Run()
}
