package core

// The fault-injection plane: correlated failures as first-class DES
// events. Where the control plane (control.go) perturbs membership one
// host at a time, this plane executes the correlated events real fleets
// see — a whole router domain going dark (and coming back), the substrate
// partitioning along a router bipartition and healing, and epoch-style
// mass membership transitions — and measures how the session recovers
// from each one.
//
// Execution model. Fault events are compiled into the Config (typically
// by the scenario layer, on a dedicated xrand stream, so enabling faults
// perturbs nothing else) and execute exactly like membership events: as
// build-time-scheduled events on the sequential engine, and at
// coordinator quiesce barriers in sharded runs. At a shared instant the
// order is faults → membership churn → re-optimization, in both modes.
// All batch work is done in pinned orders — victims ascending, orphan
// roots ascending (overlay.PruneAll), groups ascending — so sharded runs
// stay bit-identical to sequential ones.
//
// Semantics worth pinning down:
//   - Group sources are immune to outages and mass leaves: a group's flow
//     enters at its root, so the domain-mates of a source go dark while
//     the source itself keeps sending.
//   - An outage removes its victims from every group at once and repairs
//     the orphaned subtrees immediately; a restore re-grafts exactly the
//     memberships recorded at outage time (hosts are barred from churn
//     joins while down).
//   - A partition severs every tree edge whose endpoints straddle the
//     router cut but repairs nothing: the severed subtree roots wait in
//     groupState.detached until the heal re-attaches them in ascending
//     order. While the cut is active the fabric drops (and counts) every
//     packet sent across it; packets already in flight still deliver.
//   - Recovery per event is measured at sentinel hosts (re-attached
//     subtree roots, restored members, mass joiners): RecoverySec is the
//     largest gap from the event instant to a sentinel's next delivery —
//     the service-interruption view. Sentinels that never deliver again
//     before the run ends count as Unrecovered; a later fault tracking
//     the same (group, host) supersedes the earlier sentinel.

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/topo"
)

// FaultKind enumerates the correlated failure events.
type FaultKind int

// The fault event kinds (see the package comment for semantics).
const (
	// FaultOutage takes a host set (typically a whole router domain) out
	// of every group at one instant.
	FaultOutage FaultKind = iota
	// FaultRestore brings a prior outage's hosts back, re-grafting the
	// memberships recorded when the outage hit.
	FaultRestore
	// FaultPartition cuts the substrate along a router bipartition.
	FaultPartition
	// FaultHeal closes the active partition and batch-repairs every
	// severed subtree.
	FaultHeal
	// FaultMassLeave removes a batch of one group's members at one instant.
	FaultMassLeave
	// FaultMassJoin adds a batch of members to one group at one instant —
	// the arriving cohort of an epoch transition.
	FaultMassJoin
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultOutage:
		return "outage"
	case FaultRestore:
		return "restore"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultMassLeave:
		return "mass_leave"
	case FaultMassJoin:
		return "mass_join"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one compiled fault: Kind strikes at simulated time At.
// Events are validated strictly at session build time — unlike membership
// churn, a malformed fault schedule is a configuration bug, not a race to
// shrug off.
type FaultEvent struct {
	At   des.Time
	Kind FaultKind
	// ID pairs an outage with its restore and a partition with its heal.
	ID int
	// Group targets FaultMassLeave/FaultMassJoin; -1 for the session-wide
	// kinds.
	Group int
	// Hosts lists the affected hosts, strictly ascending: the domain for
	// outage/restore, the cohort for the mass kinds. Nil for
	// partition/heal.
	Hosts []int
	// Side is the router bipartition of a FaultPartition (true = side A),
	// indexed by router id over the whole backbone. Nil for other kinds.
	Side []bool
}

// String implements fmt.Stringer.
func (e FaultEvent) String() string {
	return fmt.Sprintf("%v %s (id %d)", e.At, e.Kind, e.ID)
}

// FaultOutcome reports one fault event's measured impact and recovery.
type FaultOutcome struct {
	// Kind and AtSec echo the event.
	Kind  string  `json:"kind"`
	AtSec float64 `json:"at_sec"`
	// Group is the targeted group for the mass kinds, -1 otherwise.
	Group int `json:"group"`
	// Hosts counts what the event touched: hosts taken down (outage),
	// memberships re-grafted (restore), tree edges severed (partition),
	// victims removed (mass_leave), or members added (mass_join).
	Hosts int `json:"hosts"`
	// Regrafts counts orphan subtrees re-attached while handling the
	// event.
	Regrafts int `json:"regrafts"`
	// Lost is the loss attributed to this event: regulator backlog
	// abandoned by its teardowns plus packets dropped at its partition
	// cut.
	Lost uint64 `json:"lost"`
	// RecoverySec is the service-interruption time: the largest gap from
	// the event instant to a sentinel host's next delivery (0 when the
	// event tracked no sentinels).
	RecoverySec float64 `json:"recovery_sec"`
	// Unrecovered counts sentinels that never delivered again before the
	// run ended.
	Unrecovered int `json:"unrecovered"`
}

// faultsWithin returns the fault events at or before duration, stably
// sorted by time — the shared application order of both execution modes,
// mirroring sortedEventsWithin.
func faultsWithin(events []FaultEvent, duration des.Duration) []FaultEvent {
	evs := append([]FaultEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	n := 0
	for _, ev := range evs {
		if ev.At <= duration {
			evs[n] = ev
			n++
		}
	}
	return evs[:n]
}

// validateFaults panics on a structurally invalid schedule: malformed
// events, broken outage/restore or partition/heal pairing, or overlapping
// outages. It runs over the time-sorted compiled list.
func validateFaults(events []FaultEvent, numHosts, numGroups, numRouters int) {
	hostsOK := func(ev FaultEvent) {
		if len(ev.Hosts) == 0 {
			panic(fmt.Sprintf("core: fault %v needs a host set", ev))
		}
		for i, h := range ev.Hosts {
			if h < 0 || h >= numHosts {
				panic(fmt.Sprintf("core: fault %v host %d outside [0,%d)", ev, h, numHosts))
			}
			if i > 0 && h <= ev.Hosts[i-1] {
				panic(fmt.Sprintf("core: fault %v hosts not strictly ascending", ev))
			}
		}
	}
	down := make(map[int]int)      // host -> outage ID holding it down
	outages := make(map[int][]int) // active outage ID -> hosts
	cut := false
	cutID := 0
	for _, ev := range events {
		if ev.At <= 0 {
			panic(fmt.Sprintf("core: fault %v must strike after time zero", ev))
		}
		switch ev.Kind {
		case FaultOutage:
			hostsOK(ev)
			if ev.Group != -1 {
				panic(fmt.Sprintf("core: fault %v is session-wide; Group must be -1", ev))
			}
			if _, dup := outages[ev.ID]; dup {
				panic(fmt.Sprintf("core: fault %v reuses an active outage id", ev))
			}
			for _, h := range ev.Hosts {
				if id, isDown := down[h]; isDown {
					panic(fmt.Sprintf("core: fault %v overlaps outage %d on host %d", ev, id, h))
				}
				down[h] = ev.ID
			}
			outages[ev.ID] = ev.Hosts
		case FaultRestore:
			hostsOK(ev)
			if ev.Group != -1 {
				panic(fmt.Sprintf("core: fault %v is session-wide; Group must be -1", ev))
			}
			prev, ok := outages[ev.ID]
			if !ok {
				panic(fmt.Sprintf("core: fault %v restores an unknown outage", ev))
			}
			if len(prev) != len(ev.Hosts) {
				panic(fmt.Sprintf("core: fault %v host set differs from its outage", ev))
			}
			for i, h := range prev {
				if ev.Hosts[i] != h {
					panic(fmt.Sprintf("core: fault %v host set differs from its outage", ev))
				}
				delete(down, h)
			}
			delete(outages, ev.ID)
		case FaultPartition:
			if ev.Group != -1 {
				panic(fmt.Sprintf("core: fault %v is session-wide; Group must be -1", ev))
			}
			if cut {
				panic(fmt.Sprintf("core: fault %v overlaps partition %d", ev, cutID))
			}
			if len(ev.Side) != numRouters {
				panic(fmt.Sprintf("core: fault %v side bitmap has %d routers, want %d", ev, len(ev.Side), numRouters))
			}
			a := 0
			for _, s := range ev.Side {
				if s {
					a++
				}
			}
			if a == 0 || a == numRouters {
				panic(fmt.Sprintf("core: fault %v bipartition has an empty side", ev))
			}
			cut, cutID = true, ev.ID
		case FaultHeal:
			if ev.Group != -1 {
				panic(fmt.Sprintf("core: fault %v is session-wide; Group must be -1", ev))
			}
			if !cut {
				panic(fmt.Sprintf("core: fault %v heals without an active partition", ev))
			}
			if ev.ID != cutID {
				panic(fmt.Sprintf("core: fault %v heals partition %d, but %d is active", ev, ev.ID, cutID))
			}
			cut = false
		case FaultMassLeave, FaultMassJoin:
			hostsOK(ev)
			if ev.Group < 0 || ev.Group >= numGroups {
				panic(fmt.Sprintf("core: fault %v group outside [0,%d)", ev, numGroups))
			}
		default:
			panic(fmt.Sprintf("core: unknown fault kind %d", int(ev.Kind)))
		}
	}
}

// faultTrack is one recovery sentinel: a (group, host) whose next
// delivery closes the event's recovery window.
type faultTrack struct{ g, h int }

// faultPlane executes the fault schedule against a session's per-group
// runtime. Like the control plane it holds the substrate's shared
// structures directly, so the sequential engine and the sharded
// coordinator drive the same instance — mutations happen only with every
// engine quiesced at the event time.
type faultPlane struct {
	net    *topo.Network
	groups []*groupState
	hosts  []*host
	events []FaultEvent // time-sorted, within the traffic duration

	down        []bool          // hosts currently under an outage (barred from joins)
	restoreSets map[int][][]int // outage ID -> per-group memberships to re-graft

	// Active partition cut: per-host side, derived from the router
	// bipartition at partition time. Written only at quiesce points; the
	// fabric Drop hook reads it on every send.
	cutHost []bool
	cutOn   bool
	cutIdx  int // outcome index cut drops are attributed to

	outcomes []FaultOutcome
	tracked  [][]faultTrack // per event: its recovery sentinels
	// trackIdx/firstAt index [group][host]: which event (if any) is
	// tracking the pair, and its first delivery at or after that event
	// (-1 while pending). firstAt is written by the owning shard's
	// delivery path only; trackIdx only at quiesce points.
	trackIdx [][]int32
	firstAt  [][]des.Time
}

func newFaultPlane(sub *substrate, hosts []*host, events []FaultEvent) *faultPlane {
	validateFaults(events, len(hosts), len(sub.groups), sub.net.Backbone.NumNodes())
	fp := &faultPlane{
		net:         sub.net,
		groups:      sub.groups,
		hosts:       hosts,
		events:      events,
		down:        make([]bool, len(hosts)),
		restoreSets: make(map[int][][]int),
		outcomes:    make([]FaultOutcome, len(events)),
		tracked:     make([][]faultTrack, len(events)),
		trackIdx:    make([][]int32, len(sub.groups)),
		firstAt:     make([][]des.Time, len(sub.groups)),
	}
	for i, ev := range events {
		fp.outcomes[i] = FaultOutcome{Kind: ev.Kind.String(), AtSec: ev.At.Seconds(), Group: ev.Group}
	}
	for g := range fp.trackIdx {
		ti := make([]int32, len(hosts))
		for i := range ti {
			ti[i] = -1
		}
		fp.trackIdx[g] = ti
		fp.firstAt[g] = make([]des.Time, len(hosts))
	}
	return fp
}

// scheduleAfter enqueues the events strictly after the given instant on
// the sequential engine (after = -1 schedules everything; a checkpoint
// restore passes the snapshot instant). Called before the control plane's
// scheduling, so at a shared instant faults win the tie — the order the
// sharded barriers reproduce. Events are tagged KindBuild: they are
// rebuilt from the config on restore, never serialized.
func (fp *faultPlane) scheduleAfter(eng *des.Engine, after des.Time) {
	for i := range fp.events {
		if fp.events[i].At <= after {
			continue
		}
		i := i
		eng.ScheduleKind(fp.events[i].At, des.KindBuild, 0, func() { fp.apply(i) })
	}
}

// apply executes event i with every engine quiesced at its instant.
func (fp *faultPlane) apply(i int) {
	ev := fp.events[i]
	switch ev.Kind {
	case FaultOutage:
		fp.outage(i, ev)
	case FaultRestore:
		fp.restore(i, ev)
	case FaultPartition:
		fp.partition(i, ev)
	case FaultHeal:
		fp.heal(i)
	case FaultMassLeave:
		fp.massLeave(i, ev)
	case FaultMassJoin:
		fp.massJoin(i, ev)
	}
}

// outage takes ev.Hosts down: each group loses the victims among its
// current members (sources are immune), the orphaned subtrees repair
// immediately, and the per-group victim lists are recorded for the
// restore. Down hosts are barred from churn joins until restored.
func (fp *faultPlane) outage(i int, ev FaultEvent) {
	oc := &fp.outcomes[i]
	oc.Hosts = len(ev.Hosts)
	for _, h := range ev.Hosts {
		fp.down[h] = true
	}
	mem := make([][]int, len(fp.groups))
	for g, st := range fp.groups {
		var victims []int
		for _, h := range ev.Hosts {
			if st.member[h] && h != st.tree.Source {
				victims = append(victims, h)
			}
		}
		mem[g] = victims
		if len(victims) > 0 && st.strat != nil {
			fp.removeBatch(i, g, victims)
		}
	}
	fp.restoreSets[ev.ID] = mem
}

// restore clears the outage's down flags and re-grafts the memberships
// recorded when it hit, in group-ascending then host-ascending order.
// Each re-grafted host becomes a recovery sentinel.
func (fp *faultPlane) restore(i int, ev FaultEvent) {
	oc := &fp.outcomes[i]
	for _, h := range ev.Hosts {
		fp.down[h] = false
	}
	mem := fp.restoreSets[ev.ID]
	delete(fp.restoreSets, ev.ID)
	for g, hosts := range mem {
		for _, h := range hosts {
			if fp.graft(g, h) {
				oc.Hosts++
				fp.track(i, g, h)
			}
		}
	}
}

// partition activates the cut and severs, per group in ascending member
// order, every tree edge whose endpoints straddle it. Severed subtree
// roots are parked in groupState.detached — nothing repairs until the
// heal, so the dark side stays dark. The vacating parents' abandoned
// backlog is counted against this event.
func (fp *faultPlane) partition(i int, ev FaultEvent) {
	if fp.cutOn {
		panic("core: partition while another partition is active")
	}
	oc := &fp.outcomes[i]
	side := make([]bool, len(fp.hosts))
	for h := range side {
		side[h] = ev.Side[fp.net.Hosts[h].Router]
	}
	fp.cutHost = side
	fp.cutOn = true
	fp.cutIdx = i
	type edge struct{ m, p int }
	for g, st := range fp.groups {
		t := st.tree
		var cuts []edge
		for _, m := range t.Members {
			if m == t.Source {
				continue
			}
			p, ok := t.ParentOf(m)
			if !ok || p < 0 {
				continue
			}
			if side[m] != side[p] {
				cuts = append(cuts, edge{m, p})
			}
		}
		sort.Slice(cuts, func(a, b int) bool { return cuts[a].m < cuts[b].m })
		for _, e := range cuts {
			if err := t.Detach(e.m); err != nil {
				panic(fmt.Sprintf("core: partition detach: %v", err))
			}
			n := uint64(fp.hosts[e.p].removeChild(g, e.m))
			st.lost += n
			oc.Lost += n
			st.detached = append(st.detached, e.m)
		}
		sort.Ints(st.detached)
		oc.Hosts += len(cuts)
	}
}

// heal deactivates the cut and batch-repairs every group's parked
// subtree roots in ascending order; each re-attached root becomes a
// recovery sentinel.
func (fp *faultPlane) heal(i int) {
	if !fp.cutOn {
		panic("core: heal without an active partition")
	}
	oc := &fp.outcomes[i]
	fp.cutOn = false
	fp.cutHost = nil
	for g, st := range fp.groups {
		if len(st.detached) == 0 {
			continue
		}
		roots := st.detached
		st.detached = nil
		sort.Ints(roots)
		fp.repair(i, g, roots, oc)
	}
}

// massLeave removes the victims still in the group (sources immune,
// already-churned-out hosts skipped) and repairs immediately.
func (fp *faultPlane) massLeave(i int, ev FaultEvent) {
	st := fp.groups[ev.Group]
	oc := &fp.outcomes[i]
	var victims []int
	for _, h := range ev.Hosts {
		if st.member[h] && h != st.tree.Source {
			victims = append(victims, h)
		}
	}
	oc.Hosts = len(victims)
	if len(victims) > 0 && st.strat != nil {
		fp.removeBatch(i, ev.Group, victims)
	}
}

// massJoin grafts the cohort onto the group in ascending order, skipping
// hosts that are down or already members (they churned in during an
// epoch's overlap window). Each joiner becomes a recovery sentinel.
func (fp *faultPlane) massJoin(i int, ev FaultEvent) {
	oc := &fp.outcomes[i]
	for _, h := range ev.Hosts {
		if fp.down[h] {
			continue
		}
		if fp.graft(ev.Group, h) {
			oc.Hosts++
			fp.track(i, ev.Group, h)
		}
	}
}

// removeBatch removes victims (ascending, all current members, none the
// source) from group g in one step: membership clears and forwarding
// state tears down victim-by-victim in ascending order, surviving feed
// edges unhook, and the orphaned subtrees repair in the pinned ascending
// order overlay.PruneAll returns. Victims that were parked detached
// roots leave the deferred-repair set with their membership.
func (fp *faultPlane) removeBatch(i, g int, victims []int) {
	st := fp.groups[g]
	oc := &fp.outcomes[i]
	vset := make(map[int]bool, len(victims))
	for _, v := range victims {
		vset[v] = true
	}
	// Feed edges from surviving parents, captured before the batch prune
	// erases them.
	type edge struct{ v, p int }
	var feeds []edge
	for _, v := range victims {
		if p, ok := st.tree.ParentOf(v); ok && p >= 0 && !vset[p] {
			feeds = append(feeds, edge{v, p})
		}
	}
	orphans, err := st.tree.PruneAll(victims)
	if err != nil {
		panic(fmt.Sprintf("core: fault prune: %v", err))
	}
	for _, v := range victims {
		st.member[v] = false
		n := uint64(fp.hosts[v].detachGroup(g))
		st.lost += n
		oc.Lost += n
	}
	for _, e := range feeds {
		n := uint64(fp.hosts[e.p].removeChild(g, e.v))
		st.lost += n
		oc.Lost += n
	}
	if len(st.detached) > 0 {
		n := 0
		for _, r := range st.detached {
			if !vset[r] {
				st.detached[n] = r
				n++
			}
		}
		st.detached = st.detached[:n]
	}
	fp.repair(i, g, orphans, oc)
}

// repair re-attaches detached subtree roots through the group strategy's
// graft rule, in the given (ascending) order — earlier re-attached
// subtrees become candidates for later ones — and starts recovery
// tracking on each root.
func (fp *faultPlane) repair(i, g int, roots []int, oc *FaultOutcome) {
	st := fp.groups[g]
	parents, err := st.tree.RepairWith(roots, func(o, subHeight int) (int, error) {
		return st.strat.GraftPoint(fp.net, st.tree, o, subHeight, st.lim)
	})
	if err != nil {
		panic(fmt.Sprintf("core: fault repair: %v", err))
	}
	for j, o := range roots {
		fp.hosts[parents[j]].attachChild(g, o)
		oc.Regrafts++
		fp.track(i, g, o)
	}
}

// graft adds h to group g as a leaf under its strategy graft point — the
// fault plane's join, counted against fault outcomes rather than churn
// counters. Returns false for a no-op (already a member, or no strategy).
func (fp *faultPlane) graft(g, h int) bool {
	st := fp.groups[g]
	if st.strat == nil || st.member[h] {
		return false
	}
	parent, err := st.strat.GraftPoint(fp.net, st.tree, h, 0, st.lim)
	if err != nil {
		return false
	}
	if err := st.tree.Graft(h, parent); err != nil {
		panic(fmt.Sprintf("core: fault graft: %v", err))
	}
	st.member[h] = true
	fp.hosts[parent].attachChild(g, h)
	return true
}

// track registers (g, h) as a recovery sentinel of event i, superseding
// any earlier event tracking the same pair.
func (fp *faultPlane) track(i, g, h int) {
	fp.trackIdx[g][h] = int32(i)
	fp.firstAt[g][h] = -1
	fp.tracked[i] = append(fp.tracked[i], faultTrack{g, h})
}

// onDeliver stamps a tracked pair's first delivery. Hot path: two array
// loads and a branch; called only when the plane exists.
func (fp *faultPlane) onDeliver(g, id int, now des.Time) {
	if fp.trackIdx[g][id] >= 0 && fp.firstAt[g][id] < 0 {
		fp.firstAt[g][id] = now
	}
}

// cutDrop is the fabric Drop hook: a packet crossing the active cut is
// discarded and attributed to the partition event in the caller's
// counter — shard-local in sharded runs, merged after the run in shard
// order, so attribution is deterministic in every mode.
func (fp *faultPlane) cutDrop(counter []uint64, src, dst int) bool {
	if !fp.cutOn || fp.cutHost[src] == fp.cutHost[dst] {
		return false
	}
	counter[fp.cutIdx]++
	return true
}

// finish folds the recovery measurements into the outcomes and attaches
// them to the result. cut is the per-event partition-drop tally (summed
// across shards by the caller).
func (fp *faultPlane) finish(res *Result, cut []uint64) {
	res.Faults = make([]FaultOutcome, len(fp.outcomes))
	for i := range fp.outcomes {
		oc := fp.outcomes[i]
		oc.Lost += cut[i]
		res.CutLost += cut[i]
		worst := des.Time(-1)
		for _, tr := range fp.tracked[i] {
			if fp.trackIdx[tr.g][tr.h] != int32(i) {
				continue // superseded by a later event tracking this pair
			}
			at := fp.firstAt[tr.g][tr.h]
			if at < 0 {
				oc.Unrecovered++
				continue
			}
			if d := at - fp.events[i].At; d > worst {
				worst = d
			}
		}
		if worst >= 0 {
			oc.RecoverySec = worst.Seconds()
		}
		res.Faults[i] = oc
		res.FaultLost += oc.Lost
	}
}
