package core

import (
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/traffic"
)

// checkpointCases are the workload archetypes the snapshot contract is
// pinned over: static trees, membership churn, correlated faults (outage +
// partition spanning the checkpoint), online re-optimization under churn,
// the adaptive per-host controller, VBR stochastic sources (audio and
// video), and queued router-link transit.
func checkpointCases() []struct {
	name string
	cfg  Config
} {
	static := shardBaseConfig(7)
	churn := churnConfig(SchemeSRL, 13)
	fault := faultBaseConfig(29)
	reopt := churnConfig(SchemeSigmaRho, 17)
	reopt.Reopt = ReoptConfig{Every: 250 * des.Millisecond, MinImprove: 0.02, MaxMoves: 2}
	adaptive := shardBaseConfig(37)
	adaptive.Scheme = SchemeAdaptive
	vbr := shardBaseConfig(41)
	vbr.Workload = WorkloadVBR
	vbr.Mix = traffic.MixHetero
	queued := shardBaseConfig(43)
	queued.Transit = netsim.QueuedTransit
	return []struct {
		name string
		cfg  Config
	}{
		{"static", static},
		{"churn", churn},
		{"fault", fault},
		{"reopt-churn", reopt},
		{"adaptive", adaptive},
		{"vbr", vbr},
		{"queued", queued},
	}
}

// normalizeDiag zeroes the coordinator's load-balance diagnostics. Epoch
// count and stall share depend on how the run was sliced into Run calls —
// RunTo(mid) clamps epoch ends at mid even without a snapshot — so they
// are outside the bit-identity contract, which covers the physics: every
// delivery statistic, loss counter, window entry, and fault outcome.
func normalizeDiag(res Result) Result {
	res.Epochs = 0
	res.StallShare = 0
	return res
}

// finishVia runs cfg to completion through the Checkpointer interface,
// snapshotting and restoring at each of the given instants along the way:
// run to t, serialize, rebuild a fresh session from the bytes, continue.
// With no instants it is a plain run.
func finishVia(t *testing.T, cfg Config, at ...des.Time) Result {
	t.Helper()
	s := NewCheckpointer(cfg)
	s.Start()
	for _, ckpt := range at {
		s.RunTo(ckpt)
		blob, err := s.Snapshot()
		if err != nil {
			t.Fatalf("snapshot at %v: %v", ckpt, err)
		}
		restored, err := Restore(cfg, blob)
		if err != nil {
			t.Fatalf("restore at %v: %v", ckpt, err)
		}
		s = restored
	}
	return s.Finish()
}

// TestCheckpointRestoreBitIdentical is the snapshot golden: for every
// workload archetype, sequential and 4-shard, run-to-end must equal
// run-to-T/2 → snapshot → restore → run-to-end on the full Result — every
// per-packet delivery statistic, loss counter, window series entry, and
// fault outcome, bit for bit.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	for _, tc := range checkpointCases() {
		for _, shards := range []int{1, 4} {
			cfg := tc.cfg
			cfg.Shards = shards
			name := tc.name + map[bool]string{true: "/sharded", false: "/sequential"}[shards > 1]
			t.Run(name, func(t *testing.T) {
				baseline := normalizeDiag(finishVia(t, cfg))
				if baseline.Delivered == 0 {
					t.Fatal("inert baseline — workload is broken")
				}
				mid := des.Time(cfg.Duration) / 2
				restored := normalizeDiag(finishVia(t, cfg, mid))
				if !reflect.DeepEqual(baseline, restored) {
					t.Fatalf("restored run diverged from baseline:\n  baseline %+v\n  restored %+v",
						baseline, restored)
				}
			})
		}
	}
}

// A restored session must itself snapshot and restore cleanly: chain two
// checkpoints (the second from a session that was already rebuilt once,
// with freshly assigned component slots) and still match the straight run.
func TestCheckpointChained(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := faultBaseConfig(31)
		cfg.Shards = shards
		baseline := normalizeDiag(finishVia(t, cfg))
		d := des.Time(cfg.Duration)
		restored := normalizeDiag(finishVia(t, cfg, d/4, (3*d)/4))
		if !reflect.DeepEqual(baseline, restored) {
			t.Fatalf("shards=%d: chained restore diverged:\n  baseline %+v\n  restored %+v",
				shards, baseline, restored)
		}
	}
}

// Checkpointing at an instant with no special structure (between events,
// mid-burst) must work as well as the aligned midpoints above.
func TestCheckpointUnalignedInstant(t *testing.T) {
	cfg := churnConfig(SchemeSRL, 23)
	baseline := normalizeDiag(finishVia(t, cfg))
	restored := normalizeDiag(finishVia(t, cfg, des.Seconds(1.234567)))
	if !reflect.DeepEqual(baseline, restored) {
		t.Fatalf("unaligned restore diverged:\n  baseline %+v\n  restored %+v", baseline, restored)
	}
}

// TestSnapshotGuards pins the remaining explicit refusal: an unstarted
// session fails with an error, not a corrupt snapshot. (Configuration
// coverage is total as of format v2 — the previously refused adaptive,
// VBR, and QueuedTransit families are pinned bit-identical by
// TestCheckpointRestoreBitIdentical.)
func TestSnapshotGuards(t *testing.T) {
	cfg := shardBaseConfig(3)
	if _, err := NewSession(cfg).Snapshot(); err == nil {
		t.Error("snapshot before Start did not fail")
	}
}

// TestRestoreRejectsMismatch pins the sanity checks: a snapshot restored
// under a different configuration, a wrong shard count, a truncated
// stream, or a wrong version fails with an error.
func TestRestoreRejectsMismatch(t *testing.T) {
	cfg := shardBaseConfig(5)
	s := NewCheckpointer(cfg)
	s.Start()
	s.RunTo(des.Second)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	wrong := cfg
	wrong.Seed = 6
	if _, err := Restore(wrong, blob); err == nil {
		t.Error("restore under a different seed did not fail")
	}
	sharded := cfg
	sharded.Shards = 4
	if _, err := Restore(sharded, blob); err == nil {
		t.Error("restore of a sequential snapshot into a sharded session did not fail")
	}
	if _, err := Restore(cfg, blob[:len(blob)/2]); err == nil {
		t.Error("restore of a truncated snapshot did not fail")
	}
	if _, err := Restore(cfg, []byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("restore of garbage did not fail")
	}

	// The happy path still works after all the failed attempts above
	// (Restore must not mutate shared state before validation passes).
	restored, err := Restore(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeDiag(restored.Finish()), normalizeDiag(Run(cfg)); !reflect.DeepEqual(got, want) {
		t.Fatalf("restore after rejected attempts diverged:\n  got  %+v\n  want %+v", got, want)
	}
}

// BenchmarkCheckpoint measures one snapshot+restore round trip on a
// mid-size churn workload, for the overhead table in EXPERIMENTS.md §4.
func BenchmarkCheckpoint(b *testing.B) {
	cfg := churnConfig(SchemeSRL, 41)
	s := NewCheckpointer(cfg)
	s.Start()
	s.RunTo(des.Time(cfg.Duration) / 2)
	blob, err := s.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(blob)), "bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
		if _, err := Restore(cfg, blob); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = traffic.MixAudio // keep the import stable across edits
