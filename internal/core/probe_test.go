package core

import (
	"testing"

	"repro/internal/traffic"
)

// TestProbeSingleHopCurves prints the Fig-4-style curves at a few loads.
// Exploratory: run with -v. Kept as a cheap smoke test (no assertions
// beyond sanity) because it documents the expected curve shapes.
func TestProbeSingleHopCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is informational")
	}
	for _, mix := range []traffic.Mix{traffic.MixAudio, traffic.MixVideo, traffic.MixHetero} {
		specs := Workload(WorkloadExtremal).BuildSpecs(mix, 1, 1.04, 0.05, 30)
		t.Logf("mix=%v specs=%+v", mix, specs)
		for _, load := range []float64{0.35, 0.5, 0.65, 0.7, 0.75, 0.8, 0.9, 0.95} {
			sr := RunSingleHop(SingleHopConfig{Mix: mix, Load: load, Scheme: SchemeSigmaRho,
				Seed: 1, Specs: specs})
			srl := RunSingleHop(SingleHopConfig{Mix: mix, Load: load, Scheme: SchemeSRL,
				Seed: 1, Specs: specs})
			t.Logf("  load=%.2f  sr: wdb=%.4f mean=%.4f mux=%.4f  srl: wdb=%.4f mean=%.4f reg=%.4f  (thr=%.3f)",
				load, sr.WDB, sr.MeanDelay, sr.MuxMax, srl.WDB, srl.MeanDelay, srl.RegulatorMax, sr.ThresholdUtil)
		}
	}
}
