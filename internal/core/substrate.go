package core

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/overlay"
	"repro/internal/topo"
	"repro/internal/xrand"
)

// substrate is the engine-independent compiled structure of a session:
// everything NewSession derives from a Config before any simulation
// machinery is wired — the underlay network, flow envelopes, resolved
// member sets, delivery trees, base connection capacity, and uplink
// multipliers. It is the shared front half of both the sequential Session
// and the sharded session: compiling it involves no engine, so sequential
// and sharded builds start from bit-identical structure.
//
// The groups field is the mutable per-group runtime (trees and member
// bitmaps the control plane drives), so a substrate belongs to exactly
// one session; compile a fresh one per run. The expensive immutable parts
// (network, built trees, resolved member sets) live in a shared blueprint
// (see blueprintFor) and are cloned into the substrate, so compiling the
// N-th substrate for the same structural Config costs a tree clone, not a
// tree build.
type substrate struct {
	cfg       Config // fillDefaults applied
	net       *topo.Network
	specs     []FlowSpec
	groups    []*groupState
	conn      float64   // base per-connection capacity C (bits/second)
	mults     []float64 // per-host uplink multipliers; nil when homogeneous
	threshold float64   // adaptive switching utilisation
}

func (sub *substrate) numGroups() int { return len(sub.specs) }

// blueprint is the immutable, shareable half of a compiled substrate: the
// parts that depend only on the Config's structural identity (population,
// seed, topology, membership, tree construction inputs) and are read-only
// after construction. One blueprint serves any number of concurrent
// sessions — sweeps over load/traffic-seed grids, auto-tune probes, and
// snapshot restores all reuse the same one (see blueprintFor).
type blueprint struct {
	net      *topo.Network
	groups   []GroupSpec     // resolved member sets; read-only
	trees    []*overlay.Tree // built trees; cloned per session
	shared   bool            // all trees alias one build (capacity-aware, implicit membership)
	strat    overlay.Strategy
	treeCfgs []overlay.Config
	mults    []float64 // per-host uplink multipliers; nil when homogeneous
	minMult  float64   // smallest multiplier (envelope-fit check); 1 when homogeneous
}

// parallelIndexed runs fn(i) for i in [0, n) across a bounded worker pool,
// propagating the first panic to the caller. Each fn writes only its own
// pre-sized slot, so the result is identical to the sequential loop
// regardless of scheduling. workers <= 1 degenerates to the plain loop —
// the reference order the golden tests pin.
func parallelIndexed(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// compileWorkers is the worker-pool width for substrate compilation.
func compileWorkers() int { return runtime.GOMAXPROCS(0) }

// blueprintKey fingerprints the structural identity of a Config: every
// field that feeds the blueprint (and nothing that doesn't). Configs that
// differ only in load, traffic seed, duration, scheme (among the regulated
// schemes), discipline, shard count, or the runtime planes (churn, faults,
// reopt) map to the same key and share one blueprint. The capacity-aware
// scheme's trees depend on the fanout bound — a function of load — so its
// key includes that bound.
func blueprintKey(cfg *Config, numGroups int) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "v1|hosts=%d|seed=%d|groups=%d\n", cfg.NumHosts, cfg.Seed, numGroups)
	fmt.Fprintf(h, "topo=%T%+v\n", cfg.Topology, cfg.Topology)
	fmt.Fprintf(h, "uplinks=%+v\n", cfg.UplinkClasses)
	if cfg.Groups == nil {
		fmt.Fprintf(h, "members=all\n")
	} else {
		for g, spec := range cfg.Groups {
			fmt.Fprintf(h, "g%d src=%d members=%v\n", g, spec.Source, spec.Members)
		}
	}
	if cfg.Scheme == SchemeCapacityAware {
		fmt.Fprintf(h, "capaware tree=%d fanout=%d implicit=%v\n",
			cfg.Tree, overlay.FanoutBound(cfg.Load, cfg.CapacityFactor), cfg.Groups == nil)
	} else {
		fmt.Fprintf(h, "regulated strat=%s k=%d\n", cfg.strategyName(), cfg.ClusterK)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// The blueprint cache: a small mutex-guarded LRU keyed by blueprintKey.
// Eight entries cover the realistic working set (a sweep's distinct
// capacity-aware fanout bounds plus the regulated key) while bounding the
// memory pinned by retired scenarios' networks.
const blueprintCacheSize = 8

var blueprintCache struct {
	sync.Mutex
	entries map[[32]byte]*blueprint
	order   [][32]byte // LRU order, oldest first
}

// blueprintCacheLen reports the cached entry count (tests).
func blueprintCacheLen() int {
	blueprintCache.Lock()
	defer blueprintCache.Unlock()
	return len(blueprintCache.entries)
}

// FlushSubstrateCache drops every cached substrate blueprint. Sessions
// already compiled keep their clones; only the shared immutable halves
// (networks, built trees, resolved member sets) are released. Useful for
// memory-sensitive callers retiring a large scenario, and for benchmarks
// that need to measure a cold compile.
func FlushSubstrateCache() {
	blueprintCache.Lock()
	defer blueprintCache.Unlock()
	blueprintCache.entries = nil
	blueprintCache.order = nil
}

// blueprintFor returns the shared blueprint for cfg, compiling (and
// caching) it on first use. The build runs outside the cache lock so
// concurrent sweep workers never serialize on a compile; two racing
// workers may both build the same blueprint, in which case the first
// insert wins and the loser's copy is garbage (both are identical).
func blueprintFor(cfg *Config, numGroups int) *blueprint {
	key := blueprintKey(cfg, numGroups)
	blueprintCache.Lock()
	if bp, ok := blueprintCache.entries[key]; ok {
		for i, k := range blueprintCache.order {
			if k == key {
				copy(blueprintCache.order[i:], blueprintCache.order[i+1:])
				blueprintCache.order[len(blueprintCache.order)-1] = key
				break
			}
		}
		blueprintCache.Unlock()
		return bp
	}
	blueprintCache.Unlock()

	bp := buildBlueprint(cfg, numGroups, compileWorkers())

	blueprintCache.Lock()
	defer blueprintCache.Unlock()
	if prior, ok := blueprintCache.entries[key]; ok {
		return prior
	}
	if blueprintCache.entries == nil {
		blueprintCache.entries = make(map[[32]byte]*blueprint, blueprintCacheSize)
	}
	for len(blueprintCache.order) >= blueprintCacheSize {
		oldest := blueprintCache.order[0]
		blueprintCache.order = blueprintCache.order[1:]
		delete(blueprintCache.entries, oldest)
	}
	blueprintCache.entries[key] = bp
	blueprintCache.order = append(blueprintCache.order, key)
	return bp
}

// buildBlueprint compiles the immutable half of a substrate: the underlay
// network, resolved member sets, and delivery trees. Per-group tree builds
// fan across the worker pool into pre-sized slots — each group's random
// stream is derived independently (xrand.DeriveSeed(Seed, g)), so the
// result is bit-identical to the sequential build the goldens pin.
// workers == 1 is that sequential reference.
func buildBlueprint(cfg *Config, numGroups, workers int) *blueprint {
	bp := &blueprint{}
	bp.net = topo.NewNetwork(cfg.Topology.Build(cfg.Seed), topo.NetworkConfig{
		NumHosts:      cfg.NumHosts,
		Seed:          cfg.Seed,
		UplinkClasses: cfg.UplinkClasses,
	})
	bp.groups = cfg.resolveGroups(numGroups)

	// Trees. Regulated schemes build one tree per group over the group's
	// member set, rooted at its source. The capacity-aware scheme under
	// the paper's full-membership model instead shares a single
	// cluster-capped tree across all groups, exactly as the paper's
	// Fig. 1(b) reconstructs one tree carrying both flows: its fanout
	// budget ⌊C_out/Σρᵢ⌋ only yields a stable schedule when the same d
	// children receive every flow. With explicit (possibly disjoint)
	// member sets no shared tree can span every group, so the scheme
	// falls back to one capped flat tree per group. A failed build is a
	// panic here: the configs the scenario layer compiles are validated
	// before any session exists, so this indicates a programming error.
	must := func(t *overlay.Tree, err error) *overlay.Tree {
		if err != nil {
			panic(err)
		}
		return t
	}
	bp.trees = make([]*overlay.Tree, numGroups)
	bp.treeCfgs = make([]overlay.Config, numGroups)
	if cfg.Scheme == SchemeCapacityAware {
		fanout := overlay.FanoutBound(cfg.Load, cfg.CapacityFactor)
		if cfg.Groups == nil {
			var shared *overlay.Tree
			members := bp.groups[0].Members
			if cfg.Tree == TreeNICE {
				shared = must(overlay.BuildFlatBlind(bp.net, members, 0, fanout, xrand.DeriveSeed(cfg.Seed, 0)))
			} else {
				shared = must(overlay.BuildFlat(bp.net, members, 0, fanout))
			}
			for g := range bp.trees {
				bp.trees[g] = shared
			}
			bp.shared = true
		} else {
			parallelIndexed(numGroups, workers, func(g int) {
				if cfg.Tree == TreeNICE {
					bp.trees[g] = must(overlay.BuildFlatBlind(bp.net, bp.groups[g].Members,
						bp.groups[g].Source, fanout, xrand.DeriveSeed(cfg.Seed, g)))
				} else {
					bp.trees[g] = must(overlay.BuildFlat(bp.net, bp.groups[g].Members,
						bp.groups[g].Source, fanout))
				}
			})
		}
	} else {
		// Regulated schemes build through the named overlay strategy —
		// "dsct" and "nice" resolve to the exact builders (and random
		// streams) the pre-strategy substrate called, pinned by the golden
		// bit-identity tests. Strategies are stateless; all randomness
		// enters through the per-group seed, so the builds are independent.
		strat, err := overlay.LookupStrategy(cfg.strategyName())
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		bp.strat = strat
		parallelIndexed(numGroups, workers, func(g int) {
			tc := overlay.Config{K: cfg.ClusterK, Seed: xrand.DeriveSeed(cfg.Seed, g)}
			bp.treeCfgs[g] = tc
			bp.trees[g] = must(strat.Build(bp.net, bp.groups[g].Members, bp.groups[g].Source, tc))
		})
	}

	bp.minMult = 1
	if len(cfg.UplinkClasses) > 0 {
		bp.mults = make([]float64, cfg.NumHosts)
		bp.minMult = bp.net.Hosts[0].UplinkMult
		for id := range bp.mults {
			bp.mults[id] = bp.net.Hosts[id].UplinkMult
			if bp.mults[id] < bp.minMult {
				bp.minMult = bp.mults[id]
			}
		}
	}
	return bp
}

// compileSubstrate validates cfg and builds the session structure. The
// derivation order and every random stream match the pre-shard NewSession
// exactly — pinned by the paper-fig4/paper-fig6 golden bit-identity tests.
// The immutable half comes from the shared blueprint cache; the per-
// session half (flow envelopes at this traffic seed, connection capacity
// at this load, cloned trees and member bitmaps the control plane will
// mutate) is instantiated fresh on every call.
func compileSubstrate(cfg Config) *substrate {
	cfg.fillDefaults()
	numGroups := cfg.groupCount()
	bp := blueprintFor(&cfg, numGroups)

	sub := &substrate{cfg: cfg, net: bp.net, mults: bp.mults}

	// Flow envelopes: one flow per group.
	sub.specs = cfg.Specs
	if sub.specs == nil {
		sub.specs = cfg.Workload.BuildSpecsN(cfg.Mix, numGroups, cfg.TrafficSeed.Or(cfg.Seed),
			cfg.EnvelopeMargin, cfg.BurstSec, cfg.EnvelopeHorizonSec)
	} else if len(sub.specs) != numGroups {
		panic(fmt.Sprintf("core: %d specs for %d groups", len(sub.specs), numGroups))
	}

	// Base per-connection capacity from the x-axis load: sized so a host
	// carrying every group flow runs at the configured utilisation.
	sub.conn = cfg.Mix.TotalRateN(numGroups) / cfg.Load

	// Per-group runtime: the mutable state the control plane drives. Each
	// session gets its own tree clones and member bitmaps; the blueprint's
	// trees stay pristine for the next session. Slots are pre-sized and
	// written independently, so the clone fan-out is order-free.
	sub.groups = make([]*groupState, numGroups)
	var sharedClone *overlay.Tree
	if bp.shared {
		sharedClone = bp.trees[0].Clone()
	}
	parallelIndexed(numGroups, compileWorkers(), func(g int) {
		member := make([]bool, cfg.NumHosts)
		for _, m := range bp.groups[g].Members {
			member[m] = true
		}
		tree := sharedClone
		if tree == nil {
			tree = bp.trees[g].Clone()
		}
		st := &groupState{spec: bp.groups[g], tree: tree, member: member}
		if bp.strat != nil {
			st.strat = bp.strat
			st.lim = bp.strat.Limits(bp.treeCfgs[g], cfg.NumHosts)
			st.treeCfg = bp.treeCfgs[g]
		}
		sub.groups[g] = st
	})

	if len(cfg.UplinkClasses) > 0 {
		// Every flow envelope must fit inside the slowest class's uplink:
		// a host whose C sits at or below some ρᵢ cannot regulate flow i
		// (NewSRL requires ρ < C), and even a host that never forwards
		// flow i folds W_i = σᵢ/(C−ρᵢ) into its stagger offsets — a
		// negative W would silently corrupt the schedule. Fail loudly at
		// build time instead.
		for g, sp := range sub.specs {
			if sp.Rho >= bp.minMult*sub.conn {
				panic(fmt.Sprintf(
					"core: group %d envelope rate %.0f bps exceeds the slowest uplink class capacity %.0f bps (mult %.2g of C=%.0f); lower the load or raise the class multiplier",
					g, sp.Rho, bp.minMult*sub.conn, bp.minMult, sub.conn))
			}
		}
	}
	sub.threshold = ThresholdUtilization(numGroups, cfg.Mix.Homogeneous())
	return sub
}

// compileChildren flattens every host's per-group child sets in
// O(total tree edges): a counting pass sizes one arena per backing array
// (group ids, child-list headers, child ids), then a group-ascending fill
// pass carves each host's slots out of the arenas. Three bulk allocations
// replace the per-(host, group) slice copies the previous version made —
// at 100k hosts × 512 groups that is millions of heap objects the GC no
// longer scans. Each carved slice is capacity-capped at its own window, so
// a control-plane append reallocates off-arena instead of bleeding into
// the neighbouring slot.
//
// The counting pass fans across the worker pool (per-worker count arrays,
// summed after the join); the fill pass walks groups in ascending order so
// each host's slots come out sorted by group id without any per-host sort,
// exactly as before. Children are copied out of the trees: trees own their
// child slices and the control plane mutates host child sets independently
// of tree bookkeeping.
func (sub *substrate) compileChildren() []groupChildren {
	numHosts := sub.cfg.NumHosts
	numGroups := len(sub.groups)
	workers := compileWorkers()
	if workers > numGroups {
		workers = numGroups
	}
	if workers < 1 {
		workers = 1
	}

	// Counting pass: per-worker slot/kid counts per host, merged below.
	slotCounts := make([][]int32, workers)
	kidCounts := make([][]int32, workers)
	var wg sync.WaitGroup
	var nextGroup atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slots := make([]int32, numHosts)
			kids := make([]int32, numHosts)
			slotCounts[w], kidCounts[w] = slots, kids
			for {
				g := int(nextGroup.Add(1)) - 1
				if g >= numGroups {
					return
				}
				sub.groups[g].tree.EachParent(func(p int, cs []int) {
					slots[p]++
					kids[p] += int32(len(cs))
				})
			}
		}(w)
	}
	wg.Wait()
	slotCount, kidCount := slotCounts[0], kidCounts[0]
	for w := 1; w < workers; w++ {
		for p := 0; p < numHosts; p++ {
			slotCount[p] += slotCounts[w][p]
			kidCount[p] += kidCounts[w][p]
		}
	}

	totalSlots, totalKids := 0, 0
	for p := 0; p < numHosts; p++ {
		totalSlots += int(slotCount[p])
		totalKids += int(kidCount[p])
	}

	// Carve each host's windows out of the arenas, capacity-capped.
	per := make([]groupChildren, numHosts)
	groupArena := make([]int32, 0, totalSlots)
	hdrArena := make([][]int, 0, totalSlots)
	kidArena := make([]int, totalKids)
	so, ko := 0, 0
	kidCur := make([]int32, numHosts) // per-host fill cursor into its kid window
	kidStart := make([]int, numHosts)
	for p := 0; p < numHosts; p++ {
		ns, nk := int(slotCount[p]), int(kidCount[p])
		if ns > 0 {
			per[p].groups = groupArena[so : so : so+ns]
			per[p].kids = hdrArena[so : so : so+ns]
		}
		kidStart[p] = ko
		so += ns
		ko += nk
	}

	// Fill pass: groups ascending, so slots land sorted by group id.
	for g := 0; g < numGroups; g++ {
		g32 := int32(g)
		sub.groups[g].tree.EachParent(func(p int, cs []int) {
			gc := &per[p]
			gc.groups = append(gc.groups, g32)
			start := kidStart[p] + int(kidCur[p])
			end := start + len(cs)
			dst := kidArena[start:end:end]
			copy(dst, cs)
			gc.kids = append(gc.kids, dst)
			kidCur[p] += int32(len(cs))
		})
	}
	return per
}

// hostConns returns each host's distinct child connections, sorted — the
// per-host wiring plan newHost consumes. The per-host de-duplication is
// pure (it reads only that host's flattened child sets), so the plan fans
// across the worker pool; MUX creation itself stays sequential because
// component registry slots must be assigned in host order.
func hostConns(per []groupChildren) [][]int {
	conns := make([][]int, len(per))
	parallelIndexed(len(per), compileWorkers(), func(p int) {
		gc := &per[p]
		var out []int
		for _, cs := range gc.kids {
			for _, c := range cs {
				out = insertSortedDistinct(out, c)
			}
		}
		conns[p] = out
	})
	return conns
}

// insertSortedDistinct inserts v into sorted ascending s, skipping
// duplicates.
func insertSortedDistinct(s []int, v int) []int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == v {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}
