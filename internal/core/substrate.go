package core

import (
	"fmt"

	"repro/internal/overlay"
	"repro/internal/topo"
	"repro/internal/xrand"
)

// substrate is the engine-independent compiled structure of a session:
// everything NewSession derives from a Config before any simulation
// machinery is wired — the underlay network, flow envelopes, resolved
// member sets, delivery trees, base connection capacity, and uplink
// multipliers. It is the shared front half of both the sequential Session
// and the sharded session: compiling it involves no engine, so sequential
// and sharded builds start from bit-identical structure.
//
// The groups field is the mutable per-group runtime (trees and member
// bitmaps the control plane drives), so a substrate belongs to exactly
// one session; compile a fresh one per run.
type substrate struct {
	cfg       Config // fillDefaults applied
	net       *topo.Network
	specs     []FlowSpec
	groups    []*groupState
	conn      float64   // base per-connection capacity C (bits/second)
	mults     []float64 // per-host uplink multipliers; nil when homogeneous
	threshold float64   // adaptive switching utilisation
}

func (sub *substrate) numGroups() int { return len(sub.specs) }

// compileSubstrate validates cfg and builds the session structure. The
// derivation order and every random stream match the pre-shard NewSession
// exactly — pinned by the paper-fig4/paper-fig6 golden bit-identity tests.
func compileSubstrate(cfg Config) *substrate {
	cfg.fillDefaults()
	sub := &substrate{cfg: cfg}
	sub.net = topo.NewNetwork(cfg.Topology.Build(cfg.Seed), topo.NetworkConfig{
		NumHosts:      cfg.NumHosts,
		Seed:          cfg.Seed,
		UplinkClasses: cfg.UplinkClasses,
	})

	// Flow envelopes: one flow per group.
	numGroups := cfg.groupCount()
	sub.specs = cfg.Specs
	if sub.specs == nil {
		sub.specs = cfg.Workload.BuildSpecsN(cfg.Mix, numGroups, cfg.TrafficSeed.Or(cfg.Seed),
			cfg.EnvelopeMargin, cfg.BurstSec, cfg.EnvelopeHorizonSec)
	} else if len(sub.specs) != numGroups {
		panic(fmt.Sprintf("core: %d specs for %d groups", len(sub.specs), numGroups))
	}
	groups := cfg.resolveGroups(numGroups)

	// Base per-connection capacity from the x-axis load: sized so a host
	// carrying every group flow runs at the configured utilisation.
	sub.conn = cfg.Mix.TotalRateN(numGroups) / cfg.Load

	// Trees. Regulated schemes build one tree per group over the group's
	// member set, rooted at its source. The capacity-aware scheme under
	// the paper's full-membership model instead shares a single
	// cluster-capped tree across all groups, exactly as the paper's
	// Fig. 1(b) reconstructs one tree carrying both flows: its fanout
	// budget ⌊C_out/Σρᵢ⌋ only yields a stable schedule when the same d
	// children receive every flow. With explicit (possibly disjoint)
	// member sets no shared tree can span every group, so the scheme
	// falls back to one capped flat tree per group. A failed build is a
	// panic here: the configs the scenario layer compiles are validated
	// before any session exists, so this indicates a programming error.
	must := func(t *overlay.Tree, err error) *overlay.Tree {
		if err != nil {
			panic(err)
		}
		return t
	}
	trees := make([]*overlay.Tree, numGroups)
	treeCfgs := make([]overlay.Config, numGroups)
	var strat overlay.Strategy
	if cfg.Scheme == SchemeCapacityAware {
		fanout := overlay.FanoutBound(cfg.Load, cfg.CapacityFactor)
		if cfg.Groups == nil {
			var shared *overlay.Tree
			members := groups[0].Members
			if cfg.Tree == TreeNICE {
				shared = must(overlay.BuildFlatBlind(sub.net, members, 0, fanout, xrand.DeriveSeed(cfg.Seed, 0)))
			} else {
				shared = must(overlay.BuildFlat(sub.net, members, 0, fanout))
			}
			for g := range trees {
				trees[g] = shared
			}
		} else {
			for g := range trees {
				if cfg.Tree == TreeNICE {
					trees[g] = must(overlay.BuildFlatBlind(sub.net, groups[g].Members,
						groups[g].Source, fanout, xrand.DeriveSeed(cfg.Seed, g)))
				} else {
					trees[g] = must(overlay.BuildFlat(sub.net, groups[g].Members,
						groups[g].Source, fanout))
				}
			}
		}
	} else {
		// Regulated schemes build through the named overlay strategy —
		// "dsct" and "nice" resolve to the exact builders (and random
		// streams) the pre-strategy substrate called, pinned by the golden
		// bit-identity tests.
		var err error
		strat, err = overlay.LookupStrategy(cfg.strategyName())
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		for g := 0; g < numGroups; g++ {
			tc := overlay.Config{K: cfg.ClusterK, Seed: xrand.DeriveSeed(cfg.Seed, g)}
			treeCfgs[g] = tc
			trees[g] = must(strat.Build(sub.net, groups[g].Members, groups[g].Source, tc))
		}
	}

	// Per-group runtime: the mutable state the control plane drives.
	sub.groups = make([]*groupState, numGroups)
	for g := range sub.groups {
		member := make([]bool, cfg.NumHosts)
		for _, m := range groups[g].Members {
			member[m] = true
		}
		sub.groups[g] = &groupState{spec: groups[g], tree: trees[g], member: member}
		if strat != nil {
			sub.groups[g].strat = strat
			sub.groups[g].lim = strat.Limits(treeCfgs[g], cfg.NumHosts)
			sub.groups[g].treeCfg = treeCfgs[g]
		}
	}

	if len(cfg.UplinkClasses) > 0 {
		sub.mults = make([]float64, cfg.NumHosts)
		minMult := sub.net.Hosts[0].UplinkMult
		for id := range sub.mults {
			sub.mults[id] = sub.net.Hosts[id].UplinkMult
			if sub.mults[id] < minMult {
				minMult = sub.mults[id]
			}
		}
		// Every flow envelope must fit inside the slowest class's uplink:
		// a host whose C sits at or below some ρᵢ cannot regulate flow i
		// (NewSRL requires ρ < C), and even a host that never forwards
		// flow i folds W_i = σᵢ/(C−ρᵢ) into its stagger offsets — a
		// negative W would silently corrupt the schedule. Fail loudly at
		// build time instead.
		for g, sp := range sub.specs {
			if sp.Rho >= minMult*sub.conn {
				panic(fmt.Sprintf(
					"core: group %d envelope rate %.0f bps exceeds the slowest uplink class capacity %.0f bps (mult %.2g of C=%.0f); lower the load or raise the class multiplier",
					g, sp.Rho, minMult*sub.conn, minMult, sub.conn))
			}
		}
	}
	sub.threshold = ThresholdUtilization(numGroups, cfg.Mix.Homogeneous())
	return sub
}

// compileChildren flattens every host's per-group child sets in a single
// O(total tree edges) pass — group-major, so each host's slots come out
// sorted by group id without any per-host sort. The per-host childrenOf
// loop this replaces walked hosts × groups tree lookups (51M at 100k ×
// 512) and allocated a dense [][]int per host. Children are copied: trees
// own their child slices and the control plane mutates host child sets
// independently of tree bookkeeping.
func (sub *substrate) compileChildren() []groupChildren {
	per := make([]groupChildren, sub.cfg.NumHosts)
	for g, st := range sub.groups {
		g32 := int32(g)
		st.tree.EachParent(func(p int, kids []int) {
			gc := &per[p]
			gc.groups = append(gc.groups, g32)
			gc.kids = append(gc.kids, append([]int(nil), kids...))
		})
	}
	return per
}
