package core

// groupChildren is one host's per-group child sets, flattened into
// parallel index arrays: groups holds the (ascending) group ids in which
// the host has at least one child, kids the matching child lists. The
// dense [][]int representation this replaces spends 24 bytes of slice
// header per (host, group) pair whether or not the host forwards that
// group — over 1 GB at 100k hosts × 512 groups — while a typical
// forwarder serves only a handful of groups. Lookups are a binary search
// over that handful.
//
// The zero value is a host with no children anywhere.
type groupChildren struct {
	groups []int32
	kids   [][]int
}

// find returns the slot index of group g, or -1.
func (gc *groupChildren) find(g int) int {
	lo, hi := 0, len(gc.groups)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(gc.groups[mid]) < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(gc.groups) && int(gc.groups[lo]) == g {
		return lo
	}
	return -1
}

// get returns group g's child list (nil when the host has no children in
// g). The returned slice is owned by gc; callers must not retain it
// across mutations.
func (gc *groupChildren) get(g int) []int {
	if i := gc.find(g); i >= 0 {
		return gc.kids[i]
	}
	return nil
}

// add appends child c to group g, creating g's slot (kept sorted) on
// demand.
func (gc *groupChildren) add(g, c int) {
	lo, hi := 0, len(gc.groups)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(gc.groups[mid]) < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(gc.groups) && int(gc.groups[lo]) == g {
		gc.kids[lo] = append(gc.kids[lo], c)
		return
	}
	gc.groups = append(gc.groups, 0)
	gc.kids = append(gc.kids, nil)
	copy(gc.groups[lo+1:], gc.groups[lo:])
	copy(gc.kids[lo+1:], gc.kids[lo:])
	gc.groups[lo] = int32(g)
	gc.kids[lo] = []int{c}
}

// drop removes group g's slot entirely (a no-op when absent).
func (gc *groupChildren) drop(g int) {
	i := gc.find(g)
	if i < 0 {
		return
	}
	copy(gc.groups[i:], gc.groups[i+1:])
	copy(gc.kids[i:], gc.kids[i+1:])
	gc.groups = gc.groups[:len(gc.groups)-1]
	gc.kids[len(gc.kids)-1] = nil
	gc.kids = gc.kids[:len(gc.kids)-1]
}

// each calls fn for every group with children, in ascending group order —
// the same order the dense representation's index loops visited, which
// the regulator-bank creation order (and so the goldens) depends on.
func (gc *groupChildren) each(fn func(g int, kids []int)) {
	for i, g := range gc.groups {
		fn(int(g), gc.kids[i])
	}
}

// denseChildren converts a dense per-group child-list slice into the
// flattened representation (test convenience).
func denseChildren(lists [][]int) groupChildren {
	var gc groupChildren
	for g, cs := range lists {
		for _, c := range cs {
			gc.add(g, c)
		}
	}
	return gc
}
