package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/traffic"
)

// churnEvents builds a deterministic mixed schedule over the partial
// groups of partialGroups(n): outsiders join, members leave, and some
// events are deliberate no-ops (double join, source leave).
func churnEvents(groups []GroupSpec, n int) []MembershipEvent {
	inGroup := make([]map[int]bool, len(groups))
	for g, spec := range groups {
		inGroup[g] = make(map[int]bool)
		for _, m := range spec.Members {
			inGroup[g][m] = true
		}
	}
	var evs []MembershipEvent
	at := 200 * des.Millisecond
	for g := range groups {
		// Two joins of hosts outside the group.
		joined := 0
		for h := 0; h < n && joined < 2; h++ {
			if !inGroup[g][h] {
				evs = append(evs, MembershipEvent{At: at, Group: g, Host: h, Join: true})
				at += 150 * des.Millisecond
				joined++
			}
		}
		// Two leaves of non-source members (one likely a forwarder).
		left := 0
		for _, m := range groups[g].Members {
			if m != groups[g].Source && left < 2 {
				evs = append(evs, MembershipEvent{At: at, Group: g, Host: m})
				at += 150 * des.Millisecond
				left++
			}
		}
		// No-ops: join of the source (already a member), leave of the source.
		evs = append(evs, MembershipEvent{At: at, Group: g, Host: groups[g].Source, Join: true})
		evs = append(evs, MembershipEvent{At: at, Group: g, Host: groups[g].Source})
	}
	return evs
}

func churnConfig(scheme Scheme, seed uint64) Config {
	groups := partialGroups(48)
	return Config{NumHosts: 48, Mix: traffic.MixAudio, Load: 0.8, Scheme: scheme,
		Duration: 4 * des.Second, Seed: seed, Groups: groups,
		Events: churnEvents(groups, 48), WindowSec: 0.5}
}

func TestChurnSessionDeterministic(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSigmaRho, SchemeSRL, SchemeAdaptive} {
		cfg := churnConfig(scheme, 11)
		a, b := Run(cfg), Run(cfg)
		if a.WDB != b.WDB || a.Delivered != b.Delivered || a.MeanDelay != b.MeanDelay ||
			a.Lost != b.Lost || a.Joins != b.Joins || a.Leaves != b.Leaves ||
			a.Regrafts != b.Regrafts {
			t.Fatalf("%v churn session diverged: %+v vs %+v", scheme, a, b)
		}
		if a.Joins == 0 || a.Leaves == 0 {
			t.Fatalf("%v: no churn applied (joins=%d leaves=%d)", scheme, a.Joins, a.Leaves)
		}
		if a.RejectedEvents == 0 {
			t.Fatalf("%v: the deliberate no-op events were not rejected", scheme)
		}
		if a.Delivered == 0 {
			t.Fatalf("%v: churn session delivered nothing", scheme)
		}
	}
}

// The membership invariant: a packet is measured and forwarded only while
// its receiving host is a member of the packet's group. Arrivals outside
// the membership interval (in flight across a leave) are dropped and
// counted as lost, and joined members really start receiving.
func TestChurnMembershipInvariant(t *testing.T) {
	cfg := churnConfig(SchemeSRL, 3)
	s := NewSession(cfg)
	type arrival struct{ member, counted bool }
	var arrivals []arrival
	joinedDeliveries := make(map[int]int) // per joined host
	var joiners []int
	for _, ev := range cfg.Events {
		if ev.Join && !s.IsMember(ev.Group, ev.Host) {
			joiners = append(joiners, ev.Host)
		}
	}
	for id := 0; id < cfg.NumHosts; id++ {
		id := id
		s.fabric.SetReceiver(id, func(p traffic.Packet) {
			member := s.IsMember(p.Flow, id)
			before := s.deliver
			s.receive(id, p)
			counted := s.deliver == before+1
			arrivals = append(arrivals, arrival{member: member, counted: counted})
			if counted {
				joinedDeliveries[id]++
			}
		})
	}
	res := s.Run()
	droppedArrivals := uint64(0)
	for i, a := range arrivals {
		if a.member != a.counted {
			t.Fatalf("arrival %d: member=%v counted=%v — packet measured outside membership interval",
				i, a.member, a.counted)
		}
		if !a.member {
			droppedArrivals++
		}
	}
	if res.Leaves > 0 && droppedArrivals == 0 {
		t.Log("no in-flight packet crossed a leave (acceptable, but churn may be too gentle)")
	}
	if droppedArrivals > res.Lost {
		t.Fatalf("dropped arrivals %d exceed accounted loss %d", droppedArrivals, res.Lost)
	}
	got := 0
	for _, h := range joiners {
		got += joinedDeliveries[h]
	}
	if len(joiners) > 0 && got == 0 {
		t.Fatal("no joined host ever received a packet")
	}
	if res.Joins == 0 {
		t.Fatal("no joins applied")
	}
}

// After every event fires, the live trees must still be valid spanning
// trees of the live member sets.
func TestChurnTreesStayValid(t *testing.T) {
	cfg := churnConfig(SchemeSRL, 7)
	s := NewSession(cfg)
	res := s.Run()
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("churn not applied: %d joins, %d leaves", res.Joins, res.Leaves)
	}
	if res.Regrafts == 0 {
		t.Fatal("no orphan subtree was re-parented — the leaves never hit a forwarder")
	}
	for g, tr := range s.Trees() {
		if err := tr.Validate(); err != nil {
			t.Fatalf("group %d tree invalid after churn: %v", g, err)
		}
		for _, m := range tr.Members {
			if !s.IsMember(g, m) {
				t.Fatalf("group %d tree spans non-member %d", g, m)
			}
		}
	}
}

func TestChurnWindowedSeries(t *testing.T) {
	cfg := churnConfig(SchemeSRL, 5)
	res := Run(cfg)
	if res.WindowSec != 0.5 {
		t.Fatalf("WindowSec = %v", res.WindowSec)
	}
	if len(res.WindowMax) == 0 {
		t.Fatal("no windowed max-delay series recorded")
	}
	peak := 0.0
	for _, w := range res.WindowMax {
		if w > peak {
			peak = w
		}
	}
	if peak != res.WDB {
		t.Fatalf("windowed peak %v != WDB %v", peak, res.WDB)
	}
}

// Static sessions must not pay for the control plane: no events means no
// churn state, zero disruption counters, and (pinned elsewhere by the
// golden tests) bit-identical results to the pre-control-plane engine.
func TestStaticSessionHasNoChurnState(t *testing.T) {
	res := Run(Config{NumHosts: 40, Mix: traffic.MixAudio, Load: 0.8,
		Scheme: SchemeSRL, Duration: 2 * des.Second, Seed: 1})
	if res.Joins != 0 || res.Leaves != 0 || res.Lost != 0 || res.Regrafts != 0 {
		t.Fatalf("static session reports churn: %+v", res)
	}
	if res.WindowMax != nil {
		t.Fatal("static session recorded windows without WindowSec")
	}
}

func TestChurnRequiresRegulatedScheme(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity-aware churn")
		}
	}()
	NewSession(Config{NumHosts: 20, Mix: traffic.MixAudio, Load: 0.5,
		Scheme: SchemeCapacityAware, Seed: 1,
		Events: []MembershipEvent{{At: des.Second, Group: 0, Host: 3}}})
}

// Events beyond the traffic duration are dropped, and out-of-range
// event targets are rejected, not crashed on.
func TestChurnEventEdgeCases(t *testing.T) {
	groups := partialGroups(30)
	res := Run(Config{NumHosts: 30, Mix: traffic.MixAudio, Load: 0.7,
		Scheme: SchemeSRL, Duration: des.Second, Seed: 2, Groups: groups,
		Events: []MembershipEvent{
			{At: 5 * des.Second, Group: 0, Host: 1, Join: true}, // past duration
			{At: des.Millisecond, Group: 99, Host: 1, Join: true},
			{At: des.Millisecond, Group: 0, Host: -4, Join: true},
		}})
	if res.Joins != 0 || res.Leaves != 0 {
		t.Fatalf("edge events were applied: %+v", res)
	}
	if res.RejectedEvents != 2 {
		t.Fatalf("rejected = %d, want 2 (the out-of-range pair)", res.RejectedEvents)
	}
}
