package core

// Sharded conservative-parallel execution of a multi-group session: the
// host population partitions into router-granular shards (whole local
// domains stay together), each shard owns a private engine with its own
// fabric view, regulator banks, MUXes, and shard-local measurement, and a
// des.Coordinator advances the shards in lock-step epochs whose width is
// the minimum cross-shard propagation delay. Packets whose destination
// lives on another shard hand off through the coordinator's per-pair
// mailboxes and are merged into the destination engine at epoch barriers
// under the (at, lamport, srcShard, seq) total order, so runs are
// bit-stable for a fixed shard count. Control-plane membership events —
// which mutate trees and host state spanning shards — apply at
// coordinator barriers with every engine quiesced at exactly the event
// time, reproducing the sequential engine's "control events win same-time
// ties" rule.
//
// Shards=1 never reaches this file: New compiles it to the sequential
// Session, whose output is pinned bit-for-bit by the golden tests.

import (
	"sort"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Runner is a built session (sequential or sharded) ready to Run once.
type Runner interface {
	Run() Result
}

// New builds the session runner cfg asks for: a sharded conservative-
// parallel session when Shards > 1 and the transit model allows it
// (PipeTransit — QueuedTransit serialises through router links that are
// shared state across shards), otherwise the sequential Session.
func New(cfg Config) Runner {
	if cfg.Shards > 1 && cfg.Transit == netsim.PipeTransit {
		return NewShardedSession(cfg)
	}
	return NewSession(cfg)
}

// shardPacket is the flat cross-shard payload: a packet bound for a host
// on another shard. It travels through the coordinator's pooled mailbox
// records — no per-packet closure, no boxing — so the boundary handoff
// allocates nothing in steady state.
type shardPacket struct {
	host int
	p    traffic.Packet
}

// shardRuntime is one shard's private execution state: an engine, a
// fabric bound to it, the host environment, and shard-local measurement
// (merged after the run — observation must never cross shards mid-run).
type shardRuntime struct {
	id     int
	eng    *des.Engine
	fabric *netsim.Fabric
	env    *hostEnv

	perGroup []stats.MaxTracker
	delays   stats.Welford
	deliver  uint64
	lost     []uint64         // per-group churn drops observed at owned hosts
	windows  *stats.WindowMax // nil unless cfg.WindowSec > 0
	faultCut []uint64         // per fault event: cut drops at owned senders
}

// ShardedSession runs one multi-group session across multiple engines.
// Build with NewShardedSession (or core.New), run once with Run.
type ShardedSession struct {
	sub   *substrate
	seq   *Session // non-nil when the partition degenerates to one shard
	owner []int    // host id -> shard
	sh    []*shardRuntime
	hosts []*host // global host array, each wired to its owning shard's env
	coord *des.Coordinator[shardPacket]
	ctl   *controlPlane
	ro    *reoptPlane
	fp    *faultPlane

	sources  []traffic.Source // built by Start (or a snapshot restore)
	started  bool
	snapSize int // previous snapshot size: capacity hint for the next one
}

// NewShardedSession compiles cfg for sharded execution. The structural
// substrate (network, envelopes, member sets, trees) is identical to the
// sequential build; only the wiring differs. When the topology yields a
// single populated shard (or cfg.Shards <= 1) the session falls back to
// the sequential engine — the two are equivalent, the sequential one is
// just cheaper.
func NewShardedSession(cfg Config) *ShardedSession {
	return newShardedFrom(compileSubstrate(cfg), nil)
}

// newShardedFrom wires the sharded engines over a compiled substrate; a
// non-nil rs builds the checkpoint-restore skeleton instead (bare hosts,
// barrier schedule filtered to instants after the checkpoint).
func newShardedFrom(sub *substrate, rs *resumeState) *ShardedSession {
	cfg := sub.cfg
	s := &ShardedSession{sub: sub}
	owner := netsim.PartitionHosts(sub.net, cfg.Shards)
	nsh := netsim.NumShards(owner)
	if nsh <= 1 || cfg.Shards <= 1 {
		s.seq = newSessionFrom(sub, rs)
		return s
	}
	s.owner = owner

	engines := make([]*des.Engine, nsh)
	for i := range engines {
		engines[i] = des.New()
	}
	if cfg.GlobalMinLookahead {
		// Legacy regime: one uniform epoch window sized by the global
		// minimum cross-shard latency. Kept as the differential baseline
		// for the per-pair bounds.
		lookahead, haveCross := netsim.Lookahead(sub.net, owner)
		if !haveCross {
			// Multiple shards but no cross-shard pair can exist
			// (disconnected populations): epochs may be unbounded.
			lookahead = des.Time(1)<<62 - 1
		}
		s.coord = des.NewCoordinator[shardPacket](engines, lookahead)
	} else {
		// Per-(src, dst) pair lookahead: distant shard pairs stop
		// over-synchronising each other. Bit-identical physics (pinned by
		// the pair-vs-global differential tests); strictly fewer barriers.
		mat, _ := netsim.LookaheadMatrix(sub.net, owner)
		s.coord = des.NewCoordinatorMatrix[shardPacket](engines, mat)
	}
	s.coord.OnDeliver(func(dst int, m shardPacket) {
		s.sh[dst].fabric.Deliver(m.host, m.p)
	})

	var faults []FaultEvent
	if len(cfg.Faults) > 0 {
		faults = faultsWithin(cfg.Faults, cfg.Duration)
	}

	numGroups := sub.numGroups()
	s.sh = make([]*shardRuntime, nsh)
	for si := 0; si < nsh; si++ {
		si := si
		sh := &shardRuntime{
			id:       si,
			eng:      engines[si],
			perGroup: make([]stats.MaxTracker, numGroups),
			lost:     make([]uint64, numGroups),
		}
		if cfg.WindowSec > 0 {
			sh.windows = stats.NewWindowMax(cfg.WindowSec)
		}
		// The Drop hook reads the fault plane through s at send time (the
		// plane is built after the hosts); cut drops tally shard-locally
		// and merge in shard order after the run.
		var drop func(src, dst int) bool
		if len(faults) > 0 {
			sh.faultCut = make([]uint64, len(faults))
			drop = func(src, dst int) bool { return s.fp.cutDrop(sh.faultCut, src, dst) }
		}
		sh.fabric = netsim.NewFabric(sh.eng, sub.net, netsim.FabricConfig{
			Mode:  cfg.Transit,
			Local: func(h int) bool { return owner[h] == si },
			Remote: func(dst int, at des.Time, p traffic.Packet) {
				s.coord.PostPayload(si, owner[dst], at, shardPacket{host: dst, p: p})
			},
			Drop: drop,
		})
		sh.env = &hostEnv{
			eng:        sh.eng,
			specs:      sub.specs,
			conn:       sub.conn,
			mults:      sub.mults,
			bursts:     RegulatorBursts(sub.specs, sub.conn),
			discipline: cfg.Discipline,
			aligned:    cfg.StaggerAligned,
			threshold:  sub.threshold,
			send:       func(from, to int, p traffic.Packet) { sh.fabric.Send(from, to, p) },
		}
		if cfg.Scheme == SchemeCapacityAware {
			sh.env.capAware = true
			sh.env.capFactor = cfg.CapacityFactor
		}
		s.sh[si] = sh
	}

	// Hosts wire in global id order, exactly as the sequential build does:
	// each shard engine's event sequence is then the projection of the
	// sequential schedule onto its hosts.
	chl := sub.compileChildren()
	conns := hostConns(chl)
	s.hosts = make([]*host, cfg.NumHosts)
	for id := 0; id < cfg.NumHosts; id++ {
		sh := s.sh[owner[id]]
		if rs != nil {
			s.hosts[id] = newHostBare(id, sh.env, cfg.Scheme)
		} else {
			s.hosts[id] = newHostWired(id, sh.env, chl[id], conns[id], cfg.Scheme)
			if cfg.Scheme == SchemeAdaptive && len(s.hosts[id].muxes) > 0 {
				s.hosts[id].startController(ctlWindow, ctlInterval, sub.threshold)
			}
		}
		id, sh := id, sh
		sh.fabric.SetReceiver(id, func(p traffic.Packet) { s.receive(sh, id, p) })
	}

	if len(faults) > 0 {
		s.fp = newFaultPlane(sub, s.hosts, faults)
	}
	var events []MembershipEvent
	if len(cfg.Events) > 0 {
		s.ctl = newControlPlane(sub, s.hosts)
		if s.fp != nil {
			s.ctl.down = s.fp.down
		}
		events = sortedEventsWithin(cfg.Events, cfg.Duration)
	}
	var reopts []des.Time
	if cfg.Reopt.Enabled() {
		s.ro = newReoptPlane(sub, s.hosts)
		reopts = reoptTimes(cfg.Reopt.Every, cfg.Duration)
	}
	if len(faults) > 0 || len(events) > 0 || len(reopts) > 0 {
		// One merged ascending barrier list for all three planes: at a
		// shared instant the faults apply first, then the membership
		// events, then the re-optimization pass — the order the sequential
		// engine's build-time scheduling produces.
		var times []des.Time
		for _, ev := range faults {
			times = append(times, ev.At)
		}
		for _, ev := range events {
			times = append(times, ev.At)
		}
		times = append(times, reopts...)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		n := 0
		for i, at := range times {
			if i == 0 || at != times[n-1] {
				times[n] = at
				n++
			}
		}
		times = times[:n]
		nextF, next, nextRo := 0, 0, 0
		if rs != nil {
			// Resume: barriers at or before the checkpoint already fired in
			// the original run — drop them and prime the cursors so the
			// remaining barriers index the full event lists correctly.
			for nextF < len(faults) && faults[nextF].At <= rs.at {
				nextF++
			}
			for next < len(events) && events[next].At <= rs.at {
				next++
			}
			for nextRo < len(reopts) && reopts[nextRo] <= rs.at {
				nextRo++
			}
			keep := times[:0]
			for _, at := range times {
				if at > rs.at {
					keep = append(keep, at)
				}
			}
			times = keep
		}
		s.coord.AtBarriers(times, func(at des.Time) {
			// Apply every event at this instant in the shared sorted
			// order, with all shards quiesced at exactly `at` — the same
			// mutation order the sequential engine's tie-break produces.
			for nextF < len(faults) && faults[nextF].At == at {
				s.fp.apply(nextF)
				nextF++
			}
			for next < len(events) && events[next].At == at {
				s.ctl.apply(events[next])
				next++
			}
			if nextRo < len(reopts) && reopts[nextRo] == at {
				s.ro.reoptimize(at)
				nextRo++
			}
		})
	}
	return s
}

// Shards reports how many shards the session actually runs on (1 when the
// partition degenerated to the sequential engine).
func (s *ShardedSession) Shards() int {
	if s.seq != nil {
		return 1
	}
	return len(s.sh)
}

// Lookahead reports the conservative epoch width (0 for the sequential
// fallback).
func (s *ShardedSession) Lookahead() des.Duration {
	if s.seq != nil {
		return 0
	}
	return s.coord.Lookahead()
}

// receive is the shard-local delivery path — Session.receive with every
// observation folded into the owning shard's accumulators. Membership
// reads are safe: the bitmaps only change at coordinator barriers, when
// no shard is executing.
func (s *ShardedSession) receive(sh *shardRuntime, id int, p traffic.Packet) {
	g := p.Flow
	st := s.sub.groups[g]
	if !st.member[id] {
		sh.lost[g]++
		return
	}
	d := p.Delay(sh.eng.Now()).Seconds()
	sh.perGroup[g].Observe(d, p.ID)
	sh.delays.Add(d)
	sh.deliver++
	if sh.windows != nil {
		sh.windows.Observe(sh.eng.Now().Seconds(), d)
	}
	if s.ro != nil {
		// Safe across shards: host id is owned by exactly one shard, so
		// each (group, host) estimate cell has a single writer.
		s.ro.observe(g, id, d)
	}
	if s.fp != nil {
		// Same single-writer argument: only id's owning shard delivers to
		// it, so its firstAt cell has one writer.
		s.fp.onDeliver(g, id, sh.eng.Now())
	}
	h := s.hosts[id]
	h.observe(p)
	h.forward(g, p)
}

// emitFn is a source's injection callback (see Session.emitFn).
func (s *ShardedSession) emitFn(g, root int) func(traffic.Packet) {
	rootHost := s.hosts[root]
	return func(p traffic.Packet) {
		rootHost.observe(p)
		rootHost.forward(g, p)
	}
}

// Start builds and launches the traffic sources. Idempotent; Run calls it,
// and checkpoint drivers call it once before stepping with RunTo.
// Sources: group g's flow enters at its tree root, on the root's shard.
// Sources are built in group order from the same derived streams as the
// sequential run, so emissions are identical.
func (s *ShardedSession) Start() {
	if s.seq != nil {
		s.seq.Start()
		return
	}
	if s.started {
		return
	}
	s.started = true
	cfg := s.sub.cfg
	s.sources = cfg.Workload.BuildSourcesN(cfg.Mix, s.sub.numGroups(), cfg.TrafficSeed.Or(cfg.Seed),
		cfg.EnvelopeMargin, cfg.BurstSec)
	for g, src := range s.sources {
		root := s.sub.groups[g].tree.Source
		src.Start(s.sh[s.owner[root]].eng, cfg.Duration, s.emitFn(g, root))
	}
}

// RunTo advances every shard to exactly time t: all events and barriers at
// or before t have fired and every engine is parked at t — a global
// quiesce point.
func (s *ShardedSession) RunTo(t des.Time) {
	if s.seq != nil {
		s.seq.RunTo(t)
		return
	}
	s.coord.Run(t)
}

// Finish runs out the remaining events through the drain tail and returns
// the merged measurements. Merge order is fixed (group-major, shard-
// minor), so results are deterministic for a given shard count.
func (s *ShardedSession) Finish() Result {
	if s.seq != nil {
		return s.seq.Finish()
	}
	cfg := s.sub.cfg
	numGroups := s.sub.numGroups()
	// Drain tail: generous for duty-cycle vacations at every hop.
	s.coord.Run(cfg.Duration + 20*des.Second)

	res := Result{
		PerGroupWDB:    make([]float64, numGroups),
		TreeLayers:     make([]int, numGroups),
		PerGroupLost:   make([]uint64, numGroups),
		ThresholdUtil:  s.sub.threshold,
		ConnCapacity:   s.sub.conn,
		Specs:          s.sub.specs,
		WindowSec:      cfg.WindowSec,
		Shards:         len(s.sh),
		Epochs:         s.coord.Epochs(),
		CrossShardMsgs: s.coord.Messages(),
		StallShare:     s.coord.StallShare(),
	}
	var delays stats.Welford
	var windows *stats.WindowMax
	for _, sh := range s.sh {
		delays.Merge(sh.delays)
		res.Delivered += sh.deliver
		if sh.windows != nil {
			if windows == nil {
				windows = stats.NewWindowMax(cfg.WindowSec)
			}
			windows.Merge(sh.windows)
		}
	}
	res.MeanDelay = delays.Mean()
	for g := 0; g < numGroups; g++ {
		var mt stats.MaxTracker
		lost := s.sub.groups[g].lost // control-plane losses (quiesced writes)
		for _, sh := range s.sh {
			mt.Merge(sh.perGroup[g])
			lost += sh.lost[g]
		}
		res.PerGroupWDB[g] = mt.Max()
		if res.PerGroupWDB[g] > res.WDB {
			res.WDB = res.PerGroupWDB[g]
		}
		res.TreeLayers[g] = s.sub.groups[g].tree.Layers()
		if res.TreeLayers[g] > res.Layers {
			res.Layers = res.TreeLayers[g]
		}
		res.PerGroupLost[g] = lost
		res.Lost += lost
	}
	for _, h := range s.hosts {
		res.ModeSwitches += h.switches
	}
	if s.ctl != nil {
		res.Joins, res.Leaves = s.ctl.joins, s.ctl.leaves
		res.Regrafts, res.RejectedEvents = s.ctl.regrafts, s.ctl.rejected
	}
	if s.ro != nil {
		res.Reopts, res.ReoptMoves, res.ReoptRejected = s.ro.accepted, s.ro.moves, s.ro.rejected
	}
	if windows != nil {
		res.WindowMax = windows.Series()
	}
	if s.fp != nil {
		cut := make([]uint64, len(s.fp.events))
		for _, sh := range s.sh {
			for i, n := range sh.faultCut {
				cut[i] += n
			}
		}
		s.fp.finish(&res, cut)
	}
	return res
}

// Run drives the sharded simulation for the configured duration plus the
// drain tail and returns the merged measurements.
func (s *ShardedSession) Run() Result {
	s.Start()
	return s.Finish()
}
