package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/traffic"
)

func testEnv(eng *des.Engine, sent *[]int) *hostEnv {
	return &hostEnv{
		eng: eng,
		specs: []FlowSpec{
			{Rate: 100_000, Sigma: 10_000, Rho: 102_000},
			{Rate: 100_000, Sigma: 10_000, Rho: 102_000},
		},
		conn:   1_000_000,
		bursts: []float64{10_000, 10_000},
		send: func(from, to int, p traffic.Packet) {
			*sent = append(*sent, to)
		},
	}
}

func TestHostLeafBuildsNoMachinery(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(1, testEnv(eng, &sent), denseChildren([][]int{nil, nil}), SchemeSRL)
	if len(h.muxes) != 0 || h.srBank != nil || h.srlBank != nil {
		t.Fatal("leaf host built forwarding machinery")
	}
	// Forwarding to a leaf is a no-op, not a crash.
	eng.Schedule(0, func() { h.forward(0, traffic.Packet{Flow: 0, Size: 1000}) })
	eng.Run()
	if len(sent) != 0 {
		t.Fatal("leaf host sent packets")
	}
}

func TestHostReplicatesPerGroupChildren(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(0, testEnv(eng, &sent), denseChildren([][]int{{1, 2}, {2, 3}}), SchemeCapacityAware)
	eng.Schedule(0, func() {
		h.forward(0, traffic.Packet{Flow: 0, Size: 1000})
		h.forward(1, traffic.Packet{Flow: 1, Size: 1000})
	})
	eng.Run()
	// Flow 0 -> children 1,2; flow 1 -> children 2,3.
	got := map[int]int{}
	for _, to := range sent {
		got[to]++
	}
	if got[1] != 1 || got[2] != 2 || got[3] != 1 {
		t.Fatalf("replication counts = %v", got)
	}
}

func TestHostDistinctConnectionsDeDuplicated(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(0, testEnv(eng, &sent), denseChildren([][]int{{1, 2}, {2, 1}}), SchemeSigmaRho)
	if len(h.muxes) != 2 {
		t.Fatalf("expected 2 connections, got %d", len(h.muxes))
	}
}

func TestHostModeSwitchKeepsForwarding(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(0, testEnv(eng, &sent), denseChildren([][]int{{1}, {1}}), SchemeSigmaRho)
	// Feed in σρ mode, switch to SRL mid-run, feed more.
	eng.Schedule(0, func() { h.forward(0, traffic.Packet{ID: 1, Flow: 0, Size: 1000}) })
	eng.Schedule(des.Millisecond, func() { h.setMode(SchemeSRL) })
	eng.Schedule(2*des.Millisecond, func() { h.forward(0, traffic.Packet{ID: 2, Flow: 0, Size: 1000}) })
	eng.Schedule(30*des.Second, func() { eng.Stop() })
	eng.Run()
	if len(sent) != 2 {
		t.Fatalf("sent %d packets across a mode switch, want 2", len(sent))
	}
	if h.switches != 1 {
		t.Fatalf("switches = %d", h.switches)
	}
}

func TestHostModeSwitchRoundTrip(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(0, testEnv(eng, &sent), denseChildren([][]int{{1}, {1}}), SchemeSigmaRho)
	eng.Schedule(0, func() {
		h.setMode(SchemeSRL)
		h.setMode(SchemeSigmaRho)
		h.setMode(SchemeSRL)
		h.setMode(SchemeSRL) // no-op
	})
	eng.Schedule(des.Second, func() { eng.Stop() })
	eng.Run()
	if h.switches != 3 {
		t.Fatalf("switches = %d, want 3", h.switches)
	}
	if h.mode != SchemeSRL {
		t.Fatalf("mode = %v", h.mode)
	}
}

func TestHostSRLResidueDrainsAfterSwitchAway(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(0, testEnv(eng, &sent), denseChildren([][]int{{1}, {1}}), SchemeSRL)
	// Queue a packet while every SRL is off (cycles just started with
	// offsets), then immediately switch to σρ: the residue must drain.
	eng.Schedule(0, func() {
		h.forward(0, traffic.Packet{ID: 1, Flow: 0, Size: 1000})
		h.setMode(SchemeSigmaRho)
	})
	eng.Schedule(10*des.Second, func() { eng.Stop() })
	eng.Run()
	if len(sent) != 1 {
		t.Fatalf("SRL residue lost on switch: sent %d", len(sent))
	}
}

func TestHostControllerSwitchesAboveThreshold(t *testing.T) {
	eng := des.New()
	var sent []int
	env := testEnv(eng, &sent)
	h := newHost(0, env, denseChildren([][]int{{1}, {1}}), SchemeAdaptive)
	h.startController(des.Second, 100*des.Millisecond, 0.15) // low threshold
	// Offered load ~0.2 of conn: 200 kbps vs 1 Mbps -> above 0.15.
	src := traffic.NewCBR(0, 200_000, 1000)
	src.Start(eng, 3*des.Second, func(p traffic.Packet) {
		h.observe(p)
		h.forward(0, p)
	})
	eng.RunUntil(3 * des.Second)
	if h.mode != SchemeSRL {
		t.Fatalf("controller did not engage SRL above threshold (mode %v)", h.mode)
	}
	if len(sent) == 0 {
		t.Fatal("nothing forwarded")
	}
}

func TestHostControllerStaysBelowThreshold(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(0, testEnv(eng, &sent), denseChildren([][]int{{1}, {1}}), SchemeAdaptive)
	h.startController(des.Second, 100*des.Millisecond, 0.9)
	src := traffic.NewCBR(0, 200_000, 1000) // 0.2 of conn, below 0.9
	src.Start(eng, 2*des.Second, func(p traffic.Packet) {
		h.observe(p)
		h.forward(0, p)
	})
	eng.RunUntil(2 * des.Second)
	if h.mode != SchemeSigmaRho {
		t.Fatalf("controller left σρ mode below threshold (mode %v)", h.mode)
	}
	if h.switches != 0 {
		t.Fatalf("spurious switches: %d", h.switches)
	}
}

func TestHostCapacityAwareConnCap(t *testing.T) {
	eng := des.New()
	var sent []int
	env := testEnv(eng, &sent)
	env.capAware = true
	env.capFactor = 2.0
	h := newHost(0, env, denseChildren([][]int{{1, 2, 3}, nil}), SchemeCapacityAware)
	for _, m := range h.muxes {
		if m.Capacity() != 2.0*1_000_000/3 {
			t.Fatalf("connection capacity %v, want aggregate/3", m.Capacity())
		}
	}
}

func TestHostEnvDefaultConnCap(t *testing.T) {
	env := &hostEnv{conn: 12345}
	if env.connectionCapacity(0, 7) != 12345 {
		t.Fatal("regulated schemes must get the full per-connection C")
	}
}

func TestHostEnvUplinkMultScalesCapacity(t *testing.T) {
	env := &hostEnv{conn: 1_000_000, mults: []float64{1, 0.5, 4}}
	if env.hostConn(0) != 1_000_000 || env.hostConn(1) != 500_000 || env.hostConn(2) != 4_000_000 {
		t.Fatalf("hostConn = %v/%v/%v", env.hostConn(0), env.hostConn(1), env.hostConn(2))
	}
	env.capAware = true
	env.capFactor = 2
	if env.connectionCapacity(1, 4) != 2*500_000/4.0 {
		t.Fatalf("capacity-aware connCap = %v", env.connectionCapacity(1, 4))
	}
}

func TestHostSetModePanicsOnAdaptive(t *testing.T) {
	eng := des.New()
	var sent []int
	h := newHost(0, testEnv(eng, &sent), denseChildren([][]int{{1}, nil}), SchemeSigmaRho)
	defer func() {
		if recover() == nil {
			t.Fatal("setMode(SchemeAdaptive) must panic — it is not a concrete mode")
		}
	}()
	h.setMode(SchemeAdaptive)
}
