package harness

// The sweep fleet: ScenarioSweep farmed out to worker processes over a
// shared work directory. The parent compiles the sweep plan, writes a
// manifest pinning every plan input (scenario spec, resolved seed, load
// grid, duration, shard count), and spawns N workers; each worker
// rebuilds the identical plan from the manifest — newSweepPlan is a pure
// function of its inputs — claims whole combos via O_EXCL claim files,
// runs every load of a claimed combo, and writes the cells as one atomic
// result file. The parent merges result files through the same aggregate
// as the in-process sweep, so the merged ScenarioResult is byte-identical
// to ScenarioSweep's (sweepCell carries only types that round-trip
// bit-exactly through encoding/json).
//
// The directory is the whole protocol, which makes a killed sweep
// resumable: re-running FleetSweep on the same directory validates the
// manifest byte-for-byte, clears claims whose result never landed, and
// workers skip combos whose results exist.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"repro/internal/des"
	"repro/internal/scenario"
)

// FleetOptions configures a distributed sweep.
type FleetOptions struct {
	// Workers is the number of worker processes to spawn (default 1).
	Workers int
	// Dir is the shared work directory holding the manifest, claims, and
	// results. Empty means a fresh temporary directory, removed after a
	// successful merge — resumable sweeps need an explicit directory.
	Dir string
	// Spawn launches one worker against the work directory and blocks
	// until it exits. Nil means re-exec this binary with
	// "-fleet-worker <dir>" (the wdcsim entry point); tests inject an
	// in-process worker.
	Spawn func(dir string) error
}

// fleetManifest pins every input of the sweep plan. The parent writes it
// once; a resume validates the existing file byte-for-byte, so two
// invocations can never silently mix cells from different sweeps.
type fleetManifest struct {
	SchemaVersion int             `json:"schema_version"`
	Scenario      json.RawMessage `json:"scenario"`
	Seed          uint64          `json:"seed"`
	Loads         []float64       `json:"loads"`
	Combos        int             `json:"combos"`
	Single        bool            `json:"single_hop"`
	DurationNS    int64           `json:"duration_ns"`
	NumHosts      int             `json:"num_hosts"`
	Strategy      string          `json:"strategy"`
	Shards        int             `json:"shards"`
}

// fleetComboResult is one worker's output for one combo: the cells for
// every load, in load order.
type fleetComboResult struct {
	SchemaVersion int         `json:"schema_version"`
	Combo         int         `json:"combo"`
	Cells         []sweepCell `json:"cells"`
}

const fleetManifestName = "manifest.json"

func fleetClaimPath(dir string, ci int) string {
	return filepath.Join(dir, fmt.Sprintf("combo_%d.claim", ci))
}

func fleetResultPath(dir string, ci int) string {
	return filepath.Join(dir, fmt.Sprintf("combo_%d.json", ci))
}

// writeFileAtomic writes via a temp file and rename, so readers only ever
// see absent or complete result files — a killed worker leaves at worst a
// stale .tmp, never a truncated result.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// fleetManifestFor captures the compiled plan and the original inputs.
// Resolved values (seed, loads, duration, shards) go into the manifest
// rather than raw options, so the worker's option precedence rules cannot
// drift from what the parent actually ran.
func fleetManifestFor(sc scenario.Scenario, opts Options, p *sweepPlan) (fleetManifest, error) {
	spec, err := sc.JSON()
	if err != nil {
		return fleetManifest{}, err
	}
	var dur des.Duration
	if p.single && len(p.shCfgs) > 0 {
		dur = p.shCfgs[0].Duration
	} else if len(p.cfgs) > 0 {
		dur = p.cfgs[0].Duration
	}
	return fleetManifest{
		SchemaVersion: SchemaVersion,
		Scenario:      spec,
		Seed:          p.seed,
		Loads:         p.loads,
		Combos:        len(p.combos),
		Single:        p.single,
		DurationNS:    int64(dur),
		NumHosts:      opts.NumHosts,
		Strategy:      opts.Strategy,
		Shards:        p.shards,
	}, nil
}

// planFromManifest rebuilds the sweep plan a manifest pins. Workers and
// the resuming parent both come through here, so every party compiles
// from the same inputs.
func planFromManifest(m fleetManifest) (*sweepPlan, error) {
	sc, err := scenario.Parse(m.Scenario)
	if err != nil {
		return nil, fmt.Errorf("harness: fleet manifest scenario: %w", err)
	}
	opts := Options{
		Seed:     m.Seed,
		Loads:    m.Loads,
		NumHosts: m.NumHosts,
		Strategy: m.Strategy,
		Shards:   m.Shards,
	}
	if m.Single {
		opts.SingleHopDuration = des.Duration(m.DurationNS)
	} else {
		opts.Duration = des.Duration(m.DurationNS)
	}
	p, err := newSweepPlan(sc, opts)
	if err != nil {
		return nil, err
	}
	if len(p.combos) != m.Combos || p.single != m.Single {
		return nil, fmt.Errorf("harness: fleet manifest compiled to %d combos (single=%v), manifest says %d (single=%v)",
			len(p.combos), p.single, m.Combos, m.Single)
	}
	return p, nil
}

// readFleetManifest loads and version-checks a work directory's manifest.
func readFleetManifest(dir string) (fleetManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, fleetManifestName))
	if err != nil {
		return fleetManifest{}, err
	}
	if err := checkSchemaVersion(data); err != nil {
		return fleetManifest{}, err
	}
	var m fleetManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fleetManifest{}, fmt.Errorf("harness: fleet manifest does not parse: %w", err)
	}
	return m, nil
}

// prepareFleetDir writes the manifest into a fresh directory, or — on
// resume — verifies the existing manifest matches byte-for-byte and
// clears stale claims (a claim whose result never landed marks a combo a
// killed worker was holding; removing it lets the next worker reclaim).
func prepareFleetDir(dir string, m fleetManifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	want, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fleetManifestName)
	existing, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return writeFileAtomic(path, want)
	case err != nil:
		return err
	}
	if !bytes.Equal(existing, want) {
		return fmt.Errorf("harness: fleet dir %s holds a different sweep's manifest; use a fresh directory", dir)
	}
	for ci := 0; ci < m.Combos; ci++ {
		if _, err := os.Stat(fleetResultPath(dir, ci)); errors.Is(err, fs.ErrNotExist) {
			if err := os.Remove(fleetClaimPath(dir, ci)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// fleetWorker is the worker loop: claim a combo nobody holds, run every
// load of it, write the result atomically, repeat until no combo is left
// unclaimed. maxCombos < 0 means unlimited; ran, when non-nil, observes
// each combo this worker actually executed (tests count re-runs with it).
func fleetWorker(dir string, maxCombos int, ran func(ci int)) error {
	m, err := readFleetManifest(dir)
	if err != nil {
		return err
	}
	p, err := planFromManifest(m)
	if err != nil {
		return err
	}
	done := 0
	for ci := range p.combos {
		if maxCombos >= 0 && done >= maxCombos {
			return nil
		}
		if _, err := os.Stat(fleetResultPath(dir, ci)); err == nil {
			continue // another worker (or a previous run) finished this combo
		}
		claim, err := os.OpenFile(fleetClaimPath(dir, ci), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			if errors.Is(err, fs.ErrExist) {
				continue // another live worker holds it
			}
			return err
		}
		claim.Close()
		cells := make([]sweepCell, len(p.loads))
		for li := range p.loads {
			cells[li] = p.runCell(li*len(p.combos) + ci)
		}
		out, err := json.MarshalIndent(fleetComboResult{
			SchemaVersion: SchemaVersion,
			Combo:         ci,
			Cells:         cells,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFileAtomic(fleetResultPath(dir, ci), out); err != nil {
			return err
		}
		if ran != nil {
			ran(ci)
		}
		done++
	}
	return nil
}

// RunFleetWorker runs one fleet worker against a prepared work directory
// until no unclaimed combo remains — the "-fleet-worker" entry point.
func RunFleetWorker(dir string) error {
	return fleetWorker(dir, -1, nil)
}

// defaultSpawn re-execs the current binary as a fleet worker; wdcsim
// implements the flag. Worker stderr passes through for diagnostics.
func defaultSpawn(dir string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(exe, "-fleet-worker", dir)
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

// mergeFleet reads every combo result and reassembles the flat cell
// array the in-process sweep would have produced.
func mergeFleet(dir string, p *sweepPlan) ([]sweepCell, error) {
	cells := make([]sweepCell, p.cellCount())
	for ci := range p.combos {
		data, err := os.ReadFile(fleetResultPath(dir, ci))
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("harness: fleet sweep incomplete: combo %d has no result (a worker died; re-run with the same -fleet-dir to resume)", ci)
		}
		if err != nil {
			return nil, err
		}
		if err := checkSchemaVersion(data); err != nil {
			return nil, err
		}
		var res fleetComboResult
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, fmt.Errorf("harness: fleet result %d does not parse: %w", ci, err)
		}
		if res.Combo != ci || len(res.Cells) != len(p.loads) {
			return nil, fmt.Errorf("harness: fleet result %d is for combo %d with %d cells (want %d)",
				ci, res.Combo, len(res.Cells), len(p.loads))
		}
		for li, c := range res.Cells {
			cells[li*len(p.combos)+ci] = c
		}
	}
	return cells, nil
}

// FleetSweep runs ScenarioSweep distributed across worker processes. The
// merged result is byte-identical (through ScenarioResult.JSON) to the
// in-process ScenarioSweep of the same scenario and options, and a sweep
// killed partway resumes from its work directory without re-running
// completed combos.
func FleetSweep(sc scenario.Scenario, opts Options, fo FleetOptions) (ScenarioResult, error) {
	p, err := newSweepPlan(sc, opts)
	if err != nil {
		return ScenarioResult{}, err
	}
	dir := fo.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "wdcsim-fleet-")
		if err != nil {
			return ScenarioResult{}, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	m, err := fleetManifestFor(sc, opts, p)
	if err != nil {
		return ScenarioResult{}, err
	}
	if err := prepareFleetDir(dir, m); err != nil {
		return ScenarioResult{}, err
	}

	workers := fo.Workers
	if workers < 1 {
		workers = 1
	}
	spawn := fo.Spawn
	if spawn == nil {
		spawn = defaultSpawn
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = spawn(dir)
		}(w)
	}
	wg.Wait()

	cells, err := mergeFleet(dir, p)
	if err != nil {
		// A worker failure explains the missing results better than the
		// merge error alone.
		for _, werr := range errs {
			if werr != nil {
				return ScenarioResult{}, fmt.Errorf("%w (worker: %v)", err, werr)
			}
		}
		return ScenarioResult{}, err
	}
	return p.aggregate(cells), nil
}
