package harness

// The sweep fleet: ScenarioSweep farmed out to worker processes over a
// shared work directory. The parent compiles the sweep plan, writes a
// manifest pinning every plan input (scenario spec, resolved seed, load
// grid, duration, shard count), and spawns N workers; each worker
// rebuilds the identical plan from the manifest — newSweepPlan is a pure
// function of its inputs — claims individual (combo, load) cells via
// O_EXCL claim files, runs each claimed cell, and writes it as one atomic
// result file. Cell-level granularity lets a sweep with few combos but
// many loads still spread across every worker. The parent merges result
// files through the same aggregate as the in-process sweep, so the merged
// ScenarioResult is byte-identical to ScenarioSweep's (sweepCell carries
// only types that round-trip bit-exactly through encoding/json).
//
// The directory is the whole protocol, which makes a killed sweep
// resumable: re-running FleetSweep on the same directory validates the
// manifest byte-for-byte, clears claims whose result never landed, and
// workers skip cells whose results exist.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"repro/internal/des"
	"repro/internal/scenario"
)

// FleetOptions configures a distributed sweep.
type FleetOptions struct {
	// Workers is the number of worker processes to spawn (default 1).
	Workers int
	// Dir is the shared work directory holding the manifest, claims, and
	// results. Empty means a fresh temporary directory, removed after a
	// successful merge — resumable sweeps need an explicit directory.
	Dir string
	// Spawn launches one worker against the work directory and blocks
	// until it exits. Nil means re-exec this binary with
	// "-fleet-worker <dir>" (the wdcsim entry point); tests inject an
	// in-process worker.
	Spawn func(dir string) error
}

// fleetManifest pins every input of the sweep plan. The parent writes it
// once; a resume validates the existing file byte-for-byte, so two
// invocations can never silently mix cells from different sweeps.
type fleetManifest struct {
	SchemaVersion int             `json:"schema_version"`
	Scenario      json.RawMessage `json:"scenario"`
	Seed          uint64          `json:"seed"`
	Loads         []float64       `json:"loads"`
	Combos        int             `json:"combos"`
	Single        bool            `json:"single_hop"`
	DurationNS    int64           `json:"duration_ns"`
	NumHosts      int             `json:"num_hosts"`
	Strategy      string          `json:"strategy"`
	Shards        int             `json:"shards"`
}

// fleetCellResult is one worker's output for one (combo, load) cell.
type fleetCellResult struct {
	SchemaVersion int       `json:"schema_version"`
	Combo         int       `json:"combo"`
	Load          int       `json:"load"`
	Cell          sweepCell `json:"cell"`
}

const fleetManifestName = "manifest.json"

func fleetClaimPath(dir string, ci, li int) string {
	return filepath.Join(dir, fmt.Sprintf("cell_%d_%d.claim", ci, li))
}

func fleetResultPath(dir string, ci, li int) string {
	return filepath.Join(dir, fmt.Sprintf("cell_%d_%d.json", ci, li))
}

// writeFileAtomic writes via a temp file and rename, so readers only ever
// see absent or complete result files — a killed worker leaves at worst a
// stale .tmp, never a truncated result.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// fleetManifestFor captures the compiled plan and the original inputs.
// Resolved values (seed, loads, duration, shards) go into the manifest
// rather than raw options, so the worker's option precedence rules cannot
// drift from what the parent actually ran.
func fleetManifestFor(sc scenario.Scenario, opts Options, p *sweepPlan) (fleetManifest, error) {
	spec, err := sc.JSON()
	if err != nil {
		return fleetManifest{}, err
	}
	var dur des.Duration
	if p.single && len(p.shCfgs) > 0 {
		dur = p.shCfgs[0].Duration
	} else if len(p.cfgs) > 0 {
		dur = p.cfgs[0].Duration
	}
	return fleetManifest{
		SchemaVersion: SchemaVersion,
		Scenario:      spec,
		Seed:          p.seed,
		Loads:         p.loads,
		Combos:        len(p.combos),
		Single:        p.single,
		DurationNS:    int64(dur),
		NumHosts:      opts.NumHosts,
		Strategy:      opts.Strategy,
		Shards:        p.shards,
	}, nil
}

// planFromManifest rebuilds the sweep plan a manifest pins. Workers and
// the resuming parent both come through here, so every party compiles
// from the same inputs.
func planFromManifest(m fleetManifest) (*sweepPlan, error) {
	sc, err := scenario.Parse(m.Scenario)
	if err != nil {
		return nil, fmt.Errorf("harness: fleet manifest scenario: %w", err)
	}
	opts := Options{
		Seed:     m.Seed,
		Loads:    m.Loads,
		NumHosts: m.NumHosts,
		Strategy: m.Strategy,
		Shards:   m.Shards,
	}
	if m.Single {
		opts.SingleHopDuration = des.Duration(m.DurationNS)
	} else {
		opts.Duration = des.Duration(m.DurationNS)
	}
	p, err := newSweepPlan(sc, opts)
	if err != nil {
		return nil, err
	}
	if len(p.combos) != m.Combos || p.single != m.Single {
		return nil, fmt.Errorf("harness: fleet manifest compiled to %d combos (single=%v), manifest says %d (single=%v)",
			len(p.combos), p.single, m.Combos, m.Single)
	}
	return p, nil
}

// readFleetManifest loads and version-checks a work directory's manifest.
func readFleetManifest(dir string) (fleetManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, fleetManifestName))
	if err != nil {
		return fleetManifest{}, err
	}
	if err := checkSchemaVersion(data); err != nil {
		return fleetManifest{}, err
	}
	var m fleetManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fleetManifest{}, fmt.Errorf("harness: fleet manifest does not parse: %w", err)
	}
	return m, nil
}

// prepareFleetDir writes the manifest into a fresh directory, or — on
// resume — verifies the existing manifest matches byte-for-byte and
// clears stale claims (a claim whose result never landed marks a cell a
// killed worker was holding; removing it lets the next worker reclaim).
func prepareFleetDir(dir string, m fleetManifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	want, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fleetManifestName)
	existing, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return writeFileAtomic(path, want)
	case err != nil:
		return err
	}
	if !bytes.Equal(existing, want) {
		return fmt.Errorf("harness: fleet dir %s holds a different sweep's manifest; use a fresh directory", dir)
	}
	for ci := 0; ci < m.Combos; ci++ {
		for li := range m.Loads {
			if _, err := os.Stat(fleetResultPath(dir, ci, li)); errors.Is(err, fs.ErrNotExist) {
				if err := os.Remove(fleetClaimPath(dir, ci, li)); err != nil && !errors.Is(err, fs.ErrNotExist) {
					return err
				}
			}
		}
	}
	return nil
}

// fleetWorker is the worker loop: claim a (combo, load) cell nobody
// holds, run it, write the result atomically, repeat until no cell is
// left unclaimed. maxCells < 0 means unlimited; ran, when non-nil,
// observes each cell this worker actually executed (tests count re-runs
// with it).
func fleetWorker(dir string, maxCells int, ran func(ci, li int)) error {
	m, err := readFleetManifest(dir)
	if err != nil {
		return err
	}
	p, err := planFromManifest(m)
	if err != nil {
		return err
	}
	done := 0
	for ci := range p.combos {
		for li := range p.loads {
			if maxCells >= 0 && done >= maxCells {
				return nil
			}
			if _, err := os.Stat(fleetResultPath(dir, ci, li)); err == nil {
				continue // another worker (or a previous run) finished this cell
			}
			claim, err := os.OpenFile(fleetClaimPath(dir, ci, li), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				if errors.Is(err, fs.ErrExist) {
					continue // another live worker holds it
				}
				return err
			}
			claim.Close()
			out, err := json.MarshalIndent(fleetCellResult{
				SchemaVersion: SchemaVersion,
				Combo:         ci,
				Load:          li,
				Cell:          p.runCell(li*len(p.combos) + ci),
			}, "", "  ")
			if err != nil {
				return err
			}
			if err := writeFileAtomic(fleetResultPath(dir, ci, li), out); err != nil {
				return err
			}
			if ran != nil {
				ran(ci, li)
			}
			done++
		}
	}
	return nil
}

// RunFleetWorker runs one fleet worker against a prepared work directory
// until no unclaimed cell remains — the "-fleet-worker" entry point.
func RunFleetWorker(dir string) error {
	return fleetWorker(dir, -1, nil)
}

// defaultSpawn re-execs the current binary as a fleet worker; wdcsim
// implements the flag. Worker stderr passes through for diagnostics.
func defaultSpawn(dir string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(exe, "-fleet-worker", dir)
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

// mergeFleet reads every cell result and reassembles the flat cell
// array the in-process sweep would have produced.
func mergeFleet(dir string, p *sweepPlan) ([]sweepCell, error) {
	cells := make([]sweepCell, p.cellCount())
	for ci := range p.combos {
		for li := range p.loads {
			data, err := os.ReadFile(fleetResultPath(dir, ci, li))
			if errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("harness: fleet sweep incomplete: cell (combo %d, load %d) has no result (a worker died; re-run with the same -fleet-dir to resume)", ci, li)
			}
			if err != nil {
				return nil, err
			}
			if err := checkSchemaVersion(data); err != nil {
				return nil, err
			}
			var res fleetCellResult
			if err := json.Unmarshal(data, &res); err != nil {
				return nil, fmt.Errorf("harness: fleet result (%d,%d) does not parse: %w", ci, li, err)
			}
			if res.Combo != ci || res.Load != li {
				return nil, fmt.Errorf("harness: fleet result (%d,%d) is stamped for cell (%d,%d)",
					ci, li, res.Combo, res.Load)
			}
			cells[li*len(p.combos)+ci] = res.Cell
		}
	}
	return cells, nil
}

// FleetSweep runs ScenarioSweep distributed across worker processes. The
// merged result is byte-identical (through ScenarioResult.JSON) to the
// in-process ScenarioSweep of the same scenario and options, and a sweep
// killed partway resumes from its work directory without re-running
// completed cells.
func FleetSweep(sc scenario.Scenario, opts Options, fo FleetOptions) (ScenarioResult, error) {
	p, err := newSweepPlan(sc, opts)
	if err != nil {
		return ScenarioResult{}, err
	}
	dir := fo.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "wdcsim-fleet-")
		if err != nil {
			return ScenarioResult{}, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	m, err := fleetManifestFor(sc, opts, p)
	if err != nil {
		return ScenarioResult{}, err
	}
	if err := prepareFleetDir(dir, m); err != nil {
		return ScenarioResult{}, err
	}

	workers := fo.Workers
	if workers < 1 {
		workers = 1
	}
	spawn := fo.Spawn
	if spawn == nil {
		spawn = defaultSpawn
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = spawn(dir)
		}(w)
	}
	wg.Wait()

	cells, err := mergeFleet(dir, p)
	if err != nil {
		// A worker failure explains the missing results better than the
		// merge error alone.
		for _, werr := range errs {
			if werr != nil {
				return ScenarioResult{}, fmt.Errorf("%w (worker: %v)", err, werr)
			}
		}
		return ScenarioResult{}, err
	}
	return p.aggregate(cells), nil
}
