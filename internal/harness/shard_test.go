package harness

import (
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/scenario"
)

func envShards(t testing.TB) int {
	if v := os.Getenv("WDCSIM_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad WDCSIM_SHARDS=%q", v)
		}
		return n
	}
	return 4
}

// TestShardDifferentialChurnWaxman16 is the acceptance differential: the
// full-scale churn-waxman-16 cell (2000 hosts, 16 Zipf groups, Poisson
// churn on a 64-router Waxman underlay) run sharded must agree with the
// shards=1 run on delivery count, loss count, and per-group max delay.
func TestShardDifferentialChurnWaxman16(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale differential; skipped under -short")
	}
	sc := scenario.MustLookup("churn-waxman-16")
	groups := sc.Groups(1)
	cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, 1, core.UseSeed(2),
		2*des.Second, nil, groups)
	if err != nil {
		t.Fatal(err)
	}
	seqr := core.Run(cfg)
	if seqr.Delivered == 0 || seqr.Joins == 0 {
		t.Fatalf("inert workload: %+v", seqr)
	}
	cfg.Shards = envShards(t)
	shr := core.Run(cfg)

	if seqr.Delivered != shr.Delivered {
		t.Errorf("delivery count: %d sequential vs %d sharded", seqr.Delivered, shr.Delivered)
	}
	if seqr.Lost != shr.Lost {
		t.Errorf("loss count: %d sequential vs %d sharded", seqr.Lost, shr.Lost)
	}
	for g := range seqr.PerGroupWDB {
		if math.Float64bits(seqr.PerGroupWDB[g]) != math.Float64bits(shr.PerGroupWDB[g]) {
			t.Errorf("group %d max delay: %.17g vs %.17g", g, seqr.PerGroupWDB[g], shr.PerGroupWDB[g])
		}
	}
	if seqr.Joins != shr.Joins || seqr.Leaves != shr.Leaves || seqr.Regrafts != shr.Regrafts {
		t.Errorf("churn counters (%d,%d,%d) vs (%d,%d,%d)",
			seqr.Joins, seqr.Leaves, seqr.Regrafts, shr.Joins, shr.Leaves, shr.Regrafts)
	}
}

// TestScenarioSweepShardsOption plumbs Options.Shards end to end through
// a reduced sweep and checks the totals match the unsharded sweep.
func TestScenarioSweepShardsOption(t *testing.T) {
	sc := scenario.MustLookup("waxman-zipf-16").Quick()
	base := Options{Seed: 5, Loads: []float64{0.8}, Duration: des.Second}
	a, err := ScenarioSweep(sc, base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = envShards(t)
	b, err := ScenarioSweep(sc, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Lost != b.Lost {
		t.Fatalf("sweep totals diverged: %d/%d vs %d/%d", a.Delivered, a.Lost, b.Delivered, b.Lost)
	}
	for ci := range a.Curves {
		for li := range a.Loads {
			if a.Curves[ci].WDB.Y[li] != b.Curves[ci].WDB.Y[li] {
				t.Fatalf("combo %d load %d WDB %v vs %v", ci, li,
					a.Curves[ci].WDB.Y[li], b.Curves[ci].WDB.Y[li])
			}
		}
	}
}

// TestShardDifferentialReoptChurnWaxman16 is the re-optimization
// acceptance differential: the full-scale reopt-churn-waxman-16 cell
// (2000 hosts, 16 Zipf groups, Poisson churn, 1 s measurement-driven
// rewire passes) run sharded must agree with the shards=1 run on
// delivery count, loss count, per-group max-delay bits, and the churn
// and re-optimization counters — re-optimization passes apply at
// coordinator quiesce barriers, so nothing may drift.
func TestShardDifferentialReoptChurnWaxman16(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale differential; skipped under -short")
	}
	sc := scenario.MustLookup("reopt-churn-waxman-16")
	groups := sc.Groups(1)
	cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, 1, core.UseSeed(2),
		2*des.Second, nil, groups)
	if err != nil {
		t.Fatal(err)
	}
	seqr := core.Run(cfg)
	if seqr.Delivered == 0 || seqr.Joins == 0 {
		t.Fatalf("inert workload: %+v", seqr)
	}
	if seqr.Reopts+seqr.ReoptRejected == 0 {
		t.Fatal("no re-optimization passes evaluated")
	}
	cfg.Shards = envShards(t)
	shr := core.Run(cfg)

	if seqr.Delivered != shr.Delivered {
		t.Errorf("delivery count: %d sequential vs %d sharded", seqr.Delivered, shr.Delivered)
	}
	if seqr.Lost != shr.Lost {
		t.Errorf("loss count: %d sequential vs %d sharded", seqr.Lost, shr.Lost)
	}
	for g := range seqr.PerGroupWDB {
		if math.Float64bits(seqr.PerGroupWDB[g]) != math.Float64bits(shr.PerGroupWDB[g]) {
			t.Errorf("group %d max delay: %.17g vs %.17g", g, seqr.PerGroupWDB[g], shr.PerGroupWDB[g])
		}
	}
	if seqr.Joins != shr.Joins || seqr.Leaves != shr.Leaves || seqr.Regrafts != shr.Regrafts {
		t.Errorf("churn counters (%d,%d,%d) vs (%d,%d,%d)",
			seqr.Joins, seqr.Leaves, seqr.Regrafts, shr.Joins, shr.Leaves, shr.Regrafts)
	}
	if seqr.Reopts != shr.Reopts || seqr.ReoptMoves != shr.ReoptMoves || seqr.ReoptRejected != shr.ReoptRejected {
		t.Errorf("reopt counters (%d,%d,%d) vs (%d,%d,%d)",
			seqr.Reopts, seqr.ReoptMoves, seqr.ReoptRejected, shr.Reopts, shr.ReoptMoves, shr.ReoptRejected)
	}
}

// TestScenarioSweepStrategyOption forces a sweep onto one strategy and
// checks the override reaches the compiled configs: the forced sweep
// must equal a sweep of the scenario with the strategy set declaratively.
func TestScenarioSweepStrategyOption(t *testing.T) {
	sc := scenario.MustLookup("waxman-zipf-16").Quick()
	opts := Options{Seed: 5, Loads: []float64{0.8}, Duration: des.Second}
	forcedOpts := opts
	forcedOpts.Strategy = "greedy"
	forced, err := ScenarioSweep(sc, forcedOpts)
	if err != nil {
		t.Fatal(err)
	}
	declared := sc
	declared.Strategy = "greedy"
	declared.Combos = []scenario.Combo{
		{Scheme: "sigma-rho-lambda"},
		{Scheme: "sigma-rho"},
	}
	want, err := ScenarioSweep(declared, opts)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Delivered != want.Delivered {
		t.Fatalf("forced sweep delivered %d, declarative %d", forced.Delivered, want.Delivered)
	}
	for i := range forced.Curves {
		for j := range forced.Loads {
			if math.Float64bits(forced.Curves[i].WDB.Y[j]) != math.Float64bits(want.Curves[i].WDB.Y[j]) {
				t.Fatalf("curve %d load %d: WDB %.17g vs %.17g",
					i, j, forced.Curves[i].WDB.Y[j], want.Curves[i].WDB.Y[j])
			}
		}
	}
	// The forced sweep must differ from the unforced dsct baseline —
	// otherwise the override silently did nothing.
	base, err := ScenarioSweep(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(base.Curves[0].WDB.Y[0]) == math.Float64bits(forced.Curves[0].WDB.Y[0]) {
		t.Fatal("greedy override produced the dsct result")
	}
}

// assertFaultRunsEquivalent compares the fault-plane view of two runs:
// delivery/loss counts, per-group max-delay bits, the window series, and
// the per-event outcomes (hosts touched, regrafts, attributed loss,
// recovery seconds) must be identical bit for bit.
func assertFaultRunsEquivalent(t *testing.T, seqr, shr core.Result) {
	t.Helper()
	if seqr.Delivered != shr.Delivered {
		t.Errorf("delivery count: %d sequential vs %d sharded", seqr.Delivered, shr.Delivered)
	}
	if seqr.Lost != shr.Lost {
		t.Errorf("loss count: %d sequential vs %d sharded", seqr.Lost, shr.Lost)
	}
	if seqr.CutLost != shr.CutLost || seqr.FaultLost != shr.FaultLost {
		t.Errorf("fault losses (cut %d, fault %d) vs (cut %d, fault %d)",
			seqr.CutLost, seqr.FaultLost, shr.CutLost, shr.FaultLost)
	}
	for g := range seqr.PerGroupWDB {
		if math.Float64bits(seqr.PerGroupWDB[g]) != math.Float64bits(shr.PerGroupWDB[g]) {
			t.Errorf("group %d max delay: %.17g vs %.17g", g, seqr.PerGroupWDB[g], shr.PerGroupWDB[g])
		}
	}
	if len(seqr.WindowMax) != len(shr.WindowMax) {
		t.Errorf("window series length %d vs %d", len(seqr.WindowMax), len(shr.WindowMax))
	} else {
		for i := range seqr.WindowMax {
			if math.Float64bits(seqr.WindowMax[i]) != math.Float64bits(shr.WindowMax[i]) {
				t.Errorf("window %d max %.17g vs %.17g", i, seqr.WindowMax[i], shr.WindowMax[i])
			}
		}
	}
	if len(seqr.Faults) != len(shr.Faults) {
		t.Fatalf("fault outcome count %d vs %d", len(seqr.Faults), len(shr.Faults))
	}
	for i := range seqr.Faults {
		a, b := seqr.Faults[i], shr.Faults[i]
		if a.Kind != b.Kind || a.Hosts != b.Hosts || a.Regrafts != b.Regrafts ||
			a.Lost != b.Lost || a.Unrecovered != b.Unrecovered ||
			math.Float64bits(a.RecoverySec) != math.Float64bits(b.RecoverySec) {
			t.Errorf("fault %d outcome diverged:\n  sequential %+v\n  sharded    %+v", i, a, b)
		}
	}
}

// TestShardDifferentialOutageWaxman16 is the fault-injection acceptance
// differential: the full-scale outage-waxman-16 cell (2000 hosts, 16 Zipf
// groups, a restored domain outage plus a healed partition) run sharded
// must agree with the shards=1 run bit for bit — fault events apply at
// coordinator quiesce barriers, packets crossing the cut are dropped
// shard-locally and merged in shard order, and recovery sentinels are
// single-writer, so nothing may drift.
func TestShardDifferentialOutageWaxman16(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale differential; skipped under -short")
	}
	sc := scenario.MustLookup("outage-waxman-16")
	groups := sc.Groups(1)
	cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, 1, core.UseSeed(2),
		3*des.Second, nil, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Faults) == 0 {
		t.Fatal("no fault events compiled")
	}
	seqr := core.Run(cfg)
	if seqr.Delivered == 0 || len(seqr.Faults) == 0 {
		t.Fatalf("inert workload: %+v", seqr)
	}
	cfg.Shards = envShards(t)
	shr := core.Run(cfg)
	assertFaultRunsEquivalent(t, seqr, shr)
}

// TestShardDifferentialEpochChurnWaxman16 covers the mass-membership
// kinds under concurrent Poisson churn: the mass leave, the epoch
// join/leave pair, and the churn events share barrier instants, and the
// pinned order (faults before churn at one instant) must hold in both
// modes.
func TestShardDifferentialEpochChurnWaxman16(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale differential; skipped under -short")
	}
	sc := scenario.MustLookup("epoch-churn-waxman-16")
	groups := sc.Groups(1)
	cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, 1, core.UseSeed(2),
		3*des.Second, nil, groups)
	if err != nil {
		t.Fatal(err)
	}
	seqr := core.Run(cfg)
	if seqr.Delivered == 0 || len(seqr.Faults) == 0 || seqr.Joins == 0 {
		t.Fatalf("inert workload: %+v", seqr)
	}
	cfg.Shards = envShards(t)
	shr := core.Run(cfg)
	assertFaultRunsEquivalent(t, seqr, shr)
	if seqr.Joins != shr.Joins || seqr.Leaves != shr.Leaves || seqr.Regrafts != shr.Regrafts {
		t.Errorf("churn counters (%d,%d,%d) vs (%d,%d,%d)",
			seqr.Joins, seqr.Leaves, seqr.Regrafts, shr.Joins, shr.Leaves, shr.Regrafts)
	}
}
