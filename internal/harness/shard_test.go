package harness

import (
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/scenario"
)

func envShards(t testing.TB) int {
	if v := os.Getenv("WDCSIM_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad WDCSIM_SHARDS=%q", v)
		}
		return n
	}
	return 4
}

// TestShardDifferentialChurnWaxman16 is the acceptance differential: the
// full-scale churn-waxman-16 cell (2000 hosts, 16 Zipf groups, Poisson
// churn on a 64-router Waxman underlay) run sharded must agree with the
// shards=1 run on delivery count, loss count, and per-group max delay.
func TestShardDifferentialChurnWaxman16(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale differential; skipped under -short")
	}
	sc := scenario.MustLookup("churn-waxman-16")
	groups := sc.Groups(1)
	cfg, err := sc.SessionConfig(sc.Combos[0], 0.8, 1, core.UseSeed(2),
		2*des.Second, nil, groups)
	if err != nil {
		t.Fatal(err)
	}
	seqr := core.Run(cfg)
	if seqr.Delivered == 0 || seqr.Joins == 0 {
		t.Fatalf("inert workload: %+v", seqr)
	}
	cfg.Shards = envShards(t)
	shr := core.Run(cfg)

	if seqr.Delivered != shr.Delivered {
		t.Errorf("delivery count: %d sequential vs %d sharded", seqr.Delivered, shr.Delivered)
	}
	if seqr.Lost != shr.Lost {
		t.Errorf("loss count: %d sequential vs %d sharded", seqr.Lost, shr.Lost)
	}
	for g := range seqr.PerGroupWDB {
		if math.Float64bits(seqr.PerGroupWDB[g]) != math.Float64bits(shr.PerGroupWDB[g]) {
			t.Errorf("group %d max delay: %.17g vs %.17g", g, seqr.PerGroupWDB[g], shr.PerGroupWDB[g])
		}
	}
	if seqr.Joins != shr.Joins || seqr.Leaves != shr.Leaves || seqr.Regrafts != shr.Regrafts {
		t.Errorf("churn counters (%d,%d,%d) vs (%d,%d,%d)",
			seqr.Joins, seqr.Leaves, seqr.Regrafts, shr.Joins, shr.Leaves, shr.Regrafts)
	}
}

// TestScenarioSweepShardsOption plumbs Options.Shards end to end through
// a reduced sweep and checks the totals match the unsharded sweep.
func TestScenarioSweepShardsOption(t *testing.T) {
	sc := scenario.MustLookup("waxman-zipf-16").Quick()
	base := Options{Seed: 5, Loads: []float64{0.8}, Duration: des.Second}
	a, err := ScenarioSweep(sc, base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = envShards(t)
	b, err := ScenarioSweep(sc, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Lost != b.Lost {
		t.Fatalf("sweep totals diverged: %d/%d vs %d/%d", a.Delivered, a.Lost, b.Delivered, b.Lost)
	}
	for ci := range a.Curves {
		for li := range a.Loads {
			if a.Curves[ci].WDB.Y[li] != b.Curves[ci].WDB.Y[li] {
				t.Fatalf("combo %d load %d WDB %v vs %v", ci, li,
					a.Curves[ci].WDB.Y[li], b.Curves[ci].WDB.Y[li])
			}
		}
	}
}
