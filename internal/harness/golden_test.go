package harness

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/scenario"
)

// The control-plane refactor's safety contract: a static scenario must
// compile to the exact same runtime state — and therefore the exact same
// results, bit for bit — as the pre-refactor build-then-Run architecture.
// The hex float bits below were captured from the engine immediately
// before the control plane was introduced (see EXPERIMENTS.md §"Static
// byte-identity"); any change to these values means a supposedly
// behaviour-preserving change to the static pipeline was not.

func TestGoldenPaperFig4StaticBitIdentity(t *testing.T) {
	opts := Options{Seed: 7, Loads: []float64{0.45, 0.7, 0.95}, SingleHopDuration: 9 * des.Second}
	r, err := ScenarioSweep(scenario.MustLookup("paper-fig4"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 8136 {
		t.Fatalf("delivered = %d, want 8136", r.Delivered)
	}
	want := map[string][]uint64{
		// combo -> WDB bits, mean-delay bits per load
		"sigma-rho": {
			0x3fbd66cf41f212d7, 0x3f800425bf3203ce,
			0x3fd3765faa81eb9f, 0x3f89da2ec8e2e437,
			0x3fff38baab25f7d0, 0x3f9dd3456e4cb2ec,
		},
		"sigma-rho-lambda": {
			0x3fc7ff957d666e5a, 0x3fb6ee352bc0ee8f,
			0x3fcecbf25807e50d, 0x3fb7d8b63c6e66c8,
			0x3fd2950759f7a956, 0x3fb9ef829fac47f0,
		},
	}
	for _, c := range r.Curves {
		bits := want[c.Combo.String()]
		if bits == nil {
			t.Fatalf("unexpected combo %v", c.Combo)
		}
		for i := range r.Loads {
			if got := math.Float64bits(c.WDB.Y[i]); got != bits[2*i] {
				t.Fatalf("%v WDB at %.2f: 0x%016x, want 0x%016x — static pipeline diverged from pre-refactor",
					c.Combo, r.Loads[i], got, bits[2*i])
			}
			if got := math.Float64bits(c.MeanDelay.Y[i]); got != bits[2*i+1] {
				t.Fatalf("%v mean at %.2f: 0x%016x, want 0x%016x",
					c.Combo, r.Loads[i], got, bits[2*i+1])
			}
		}
	}
}

func TestGoldenPaperFig6StaticBitIdentity(t *testing.T) {
	opts := Options{Seed: 7, NumHosts: 48, Loads: []float64{0.5, 0.9}, Duration: 6 * des.Second}
	r, err := ScenarioSweep(scenario.MustLookup("paper-fig6"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 514368 {
		t.Fatalf("delivered = %d, want 514368", r.Delivered)
	}
	type golden struct {
		wdb, mean []uint64
		layers    []int
	}
	want := map[string]golden{
		"capacity-aware dsct": {
			wdb:    []uint64{0x3fda471edfb680d2, 0x3ff12c663489c1d8},
			mean:   []uint64{0x3f9e0f098789b0e0, 0x3fa8bc68beaa7b1c},
			layers: []int{5, 6},
		},
		"sigma-rho dsct": {
			wdb:    []uint64{0x3fc28397ab1324dc, 0x3ff0c6afde54899a},
			mean:   []uint64{0x3f8b63542a473cd0, 0x3f9baab0719aeae2},
			layers: []int{4, 4},
		},
		"sigma-rho-lambda dsct": {
			wdb:    []uint64{0x3fd4e12d124309d1, 0x3fd8d479e0a7dc39},
			mean:   []uint64{0x3fc29faca33c1267, 0x3fc33178140b279c},
			layers: []int{4, 4},
		},
		"capacity-aware nice": {
			wdb:    []uint64{0x3fda89939776ff91, 0x3ff15a0b04625cb9},
			mean:   []uint64{0x3fa0fdaac0626d0f, 0x3fac9df51ce3edbc},
			layers: []int{5, 6},
		},
		"sigma-rho nice": {
			wdb:    []uint64{0x3fb442951072e9d7, 0x3fc977500ddf66ad},
			mean:   []uint64{0x3f8811e653768041, 0x3f9219a374400093},
			layers: []int{4, 4},
		},
		"sigma-rho-lambda nice": {
			wdb:    []uint64{0x3fd4ce3cecf8efc9, 0x3fd9dc5eec85b5f3},
			mean:   []uint64{0x3fc17331c68125c7, 0x3fc22097da25b7fa},
			layers: []int{4, 4},
		},
	}
	for _, c := range r.Curves {
		g, ok := want[c.Combo.String()]
		if !ok {
			t.Fatalf("unexpected combo %v", c.Combo)
		}
		for i := range r.Loads {
			if got := math.Float64bits(c.WDB.Y[i]); got != g.wdb[i] {
				t.Fatalf("%v WDB at %.2f: 0x%016x, want 0x%016x — static pipeline diverged from pre-refactor",
					c.Combo, r.Loads[i], got, g.wdb[i])
			}
			if got := math.Float64bits(c.MeanDelay.Y[i]); got != g.mean[i] {
				t.Fatalf("%v mean at %.2f: 0x%016x, want 0x%016x",
					c.Combo, r.Loads[i], got, g.mean[i])
			}
			if c.Layers[i] != g.layers[i] {
				t.Fatalf("%v layers at %.2f: %d, want %d", c.Combo, r.Loads[i], c.Layers[i], g.layers[i])
			}
		}
	}
}
