package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// The sweep drivers fan their points out over a bounded worker pool: one
// engine per goroutine, results written to index-addressed slots, every
// per-point random stream derived purely from (sweep seed, point index).
// Nothing about the outcome depends on which worker runs which point or in
// what order, so parallel and sequential execution are bit-identical — the
// property the determinism tests in parallel_test.go pin down.

// runJobs executes jobs 0..n-1 via job. With opts.Sequential it runs them
// in order on the calling goroutine (the debugging mode); otherwise it uses
// min(Workers or GOMAXPROCS, n) goroutines pulling indices from a shared
// counter. job must only write to its own point's slots.
func runJobs(n int, opts Options, job func(i int)) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if opts.Sequential || workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// DeriveSeed maps (sweep seed, point index) to the point's traffic seed.
// It is xrand.DeriveSeed — the repository-wide derivation rule — re-
// exported here because the sweep drivers are its original home and the
// facade documents it.
func DeriveSeed(base uint64, point int) uint64 {
	return xrand.DeriveSeed(base, point)
}

// sweepSpecs builds the flow envelopes one time for a whole sweep, from
// the sweep's base seed.
//
// Invariant (why sharing is sound): a FlowSpec is a function of the
// workload, mix, seed, and envelope parameters ONLY. The load axis moves
// the connection capacity C = TotalRate/load, never the flow envelopes, so
// every point of a sweep sees identical specs no matter which point
// measures them. The seed code threaded the first run's measured specs
// through the remaining runs sequentially, which worked only by this
// invariant and was impossible to parallelise safely; building them up
// front makes the invariant explicit and removes the cross-point data
// dependency. assertSpecsMatch guards the sharing at every point.
func sweepSpecs(w core.Workload, mix traffic.Mix, opts Options) []core.FlowSpec {
	return core.DefaultSpecs(w, mix, opts.Seed)
}

// assertSpecsMatch verifies a run's echoed specs are exactly the sweep's
// shared specs — the cheap guard that no point rebuilt or mutated the
// envelopes behind the sweep's back (which would silently decouple the
// curves from each other).
func assertSpecsMatch(shared, got []core.FlowSpec, load float64) {
	if len(shared) != len(got) {
		panic(fmt.Sprintf("harness: run at load %.2f used %d specs, sweep built %d",
			load, len(got), len(shared)))
	}
	for i := range shared {
		if shared[i] != got[i] {
			panic(fmt.Sprintf("harness: run at load %.2f diverged on spec %d: %+v != %+v",
				load, i, got[i], shared[i]))
		}
	}
}
