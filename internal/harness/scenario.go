package harness

import (
	"encoding/json"
	"fmt"

	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/overlay"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// ScenarioCurve is one combo's series across the load grid.
type ScenarioCurve struct {
	Combo scenario.Combo
	// WDB is the worst-case delay per load.
	WDB *stats.Series
	// MeanDelay is the mean delivery delay per load.
	MeanDelay *stats.Series
	// Layers is the max tree layer count per load (0 for single-hop).
	Layers []int
	// Bound is the theoretical worst-case multicast delay per load
	// (Remark 2 for (σ,ρ), Theorem 7 for (σ,ρ,λ), at the measured layer
	// count and the slowest uplink class's capacity); 0 where no closed
	// form applies (capacity-aware, adaptive, single-hop).
	Bound []float64
	// Violations counts loads whose measured WDB exceeded Bound — under
	// static membership this stays 0; churn repair transients may breach
	// the static bound, which is exactly what the metric surfaces.
	Violations int
	// Lost is the per-load churn-disruption count (packets dropped outside
	// membership intervals plus regulator backlog abandoned at departures).
	Lost []uint64
	// WindowMax holds the per-load windowed max-delay series (bucket
	// width WindowSec) — the transient view around churn events. Empty
	// when the scenario sets no window.
	WindowMax [][]float64
	// WindowSec is the window bucket width (0 when unset).
	WindowSec float64
	// Reopts and ReoptMoves total the accepted re-optimization passes and
	// the members they re-parented across the load grid (zero unless the
	// scenario enables re-optimization).
	Reopts, ReoptMoves int
	// Faults holds the per-load fault outcomes — one record per injected
	// fault event with its measured impact and recovery time. Nil when the
	// scenario injects no faults.
	Faults [][]core.FaultOutcome
	// CutLost is the per-load count of packets dropped at partition cuts
	// (disjoint from Lost, which counts teardown backlog).
	CutLost []uint64
	// Sharded-execution diagnostics per load, nil when every cell ran on
	// the sequential engine: shard count, barrier epochs, cross-shard
	// messages, and the barrier-stall share (fraction of shard-step
	// capacity idled at epoch barriers).
	Shards         []int
	Epochs         []uint64
	CrossShardMsgs []uint64
	StallShare     []float64
}

// ScenarioResult is a full scenario sweep: one curve per combo.
type ScenarioResult struct {
	Scenario scenario.Scenario
	Loads    []float64
	Curves   []ScenarioCurve
	// Delivered totals packet receptions across every cell of the sweep.
	Delivered uint64
	// Churn disruption totals across every cell (zero without churn).
	Joins, Leaves, Regrafts int
	Lost                    uint64
	// Re-optimization totals across every cell (zero unless enabled).
	Reopts, ReoptMoves int
	// Fault-attributed losses across every cell (zero without faults):
	// FaultLost is teardown backlog plus cut drops attributed to fault
	// events; CutLost is the partition-cut share alone.
	FaultLost, CutLost uint64
	// Shards is the largest shard count any cell actually ran with (0
	// when every cell ran on the sequential engine).
	Shards int
}

// sweepCell is one (load, combo) cell's raw measurements — the engine
// outputs the sweep aggregates from. Fleet workers ship cells verbatim as
// JSON (float64 values round-trip bit-exactly through encoding/json), so
// a distributed sweep merges to the byte-identical result of an
// in-process one. Slice nil-ness is significant (nil = the feature was
// off), hence no omitempty.
type sweepCell struct {
	WDB        float64             `json:"wdb"`
	Mean       float64             `json:"mean"`
	Layers     int                 `json:"layers"`
	Delivered  uint64              `json:"delivered"`
	Lost       uint64              `json:"lost"`
	Joins      int                 `json:"joins"`
	Leaves     int                 `json:"leaves"`
	Regrafts   int                 `json:"regrafts"`
	Reopts     int                 `json:"reopts"`
	ReoptMoves int                 `json:"reopt_moves"`
	Windows    []float64           `json:"windows"`
	WindowSec  float64             `json:"window_sec"`
	Faults     []core.FaultOutcome `json:"faults"`
	FaultLost  uint64              `json:"fault_lost"`
	CutLost    uint64              `json:"cut_lost"`
	Shards     int                 `json:"shards"`
	Epochs     uint64              `json:"epochs"`
	CrossMsgs  uint64              `json:"cross_shard_msgs"`
	Stall      float64             `json:"stall_share"`
}

// sweepPlan is a fully compiled scenario sweep: the (possibly overridden)
// scenario, the resolved grid and duration, shared specs and membership,
// and one ready-to-run config per (load, combo) cell. Building the plan is
// a pure function of (scenario, options), so a fleet worker handed the
// same inputs compiles the identical plan — the basis of the distributed
// sweep's merge-identical guarantee.
type sweepPlan struct {
	sc     scenario.Scenario
	seed   uint64
	loads  []float64
	single bool
	mix    traffic.Mix
	specs  []core.FlowSpec
	combos []scenario.Combo
	shCfgs []core.SingleHopConfig // single-hop cells (nil otherwise)
	cfgs   []core.Config          // multi-group cells (nil for single-hop)
	shards int                    // resolved per-run shard count (AutoShards applied)
}

// newSweepPlan validates and compiles the sweep: option overrides applied,
// grid and duration resolved, specs and membership materialised once, and
// every cell's config built up front so configuration errors surface
// before any engine runs.
func newSweepPlan(sc scenario.Scenario, opts Options) (*sweepPlan, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	if opts.NumHosts > 0 {
		sc.NumHosts = opts.NumHosts
	}
	if opts.Strategy != "" {
		// Force the sweep onto one strategy: clear per-combo selections
		// (on a copy — the combo slice may be shared with the registry)
		// and deduplicate combos the override made identical. Capacity-
		// aware combos keep their own construction and are untouched.
		sc.Strategy = opts.Strategy
		var combos []scenario.Combo
		seen := map[string]bool{}
		for _, c := range sc.Combos {
			if scheme, err := scenario.ParseScheme(c.Scheme); err == nil && scheme != core.SchemeCapacityAware {
				c.Tree, c.Strategy = "", ""
			}
			if key := c.String(); !seen[key] {
				seen[key] = true
				combos = append(combos, c)
			}
		}
		sc.Combos = combos
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}
	// An explicitly passed grid beats the scenario's own, which beats the
	// paper grid — mirroring the NumHosts/duration precedence.
	loads := opts.Loads
	if len(loads) == 0 {
		loads = sc.Loads
	}
	if len(loads) == 0 {
		loads = PaperLoads
	}
	single := sc.Kind == scenario.KindSingleHop
	var dur des.Duration
	switch {
	case single && opts.SingleHopDuration > 0:
		dur = opts.SingleHopDuration
	case !single && opts.Duration > 0:
		dur = opts.Duration
	case sc.DurationSec > 0:
		dur = des.Seconds(sc.DurationSec)
	case single:
		dur = 36 * des.Second
	default:
		dur = 15 * des.Second
	}

	mix, err := sc.ParseMix()
	if err != nil {
		return nil, err
	}
	workload, err := sc.ParseWorkload()
	if err != nil {
		return nil, err
	}
	specs := core.DefaultSpecsN(workload, mix, sc.GroupCount(), seed)

	p := &sweepPlan{sc: sc, seed: seed, loads: loads, single: single,
		mix: mix, specs: specs, combos: sc.Combos}
	n := len(loads) * len(p.combos)
	if single {
		p.shCfgs = make([]core.SingleHopConfig, n)
		for i := range p.shCfgs {
			li, ci := i/len(p.combos), i%len(p.combos)
			p.shCfgs[i], err = sc.SingleHopConfig(p.combos[ci], loads[li], seed,
				core.UseSeed(DeriveSeed(seed, li)), dur, specs)
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	// Membership is a pure function of (scenario, seed): materialise
	// it once and share it read-only across every cell.
	groups := sc.Groups(seed)
	p.cfgs = make([]core.Config, n)
	for i := range p.cfgs {
		li, ci := i/len(p.combos), i%len(p.combos)
		p.cfgs[i], err = sc.SessionConfig(p.combos[ci], loads[li], seed,
			core.UseSeed(DeriveSeed(seed, li)), dur, specs, groups)
		if err != nil {
			return nil, err
		}
	}
	if opts.AutoShards && n > 0 {
		// Tune on the heaviest cell (last load, last combo): stall share
		// is a load-balance property, and the heaviest cell is where an
		// imbalanced partition hurts most.
		best, _ := core.AutoTuneShards(p.cfgs[n-1], nil, 0)
		opts.Shards = best
	}
	if opts.Shards > 1 {
		p.shards = opts.Shards
		for i := range p.cfgs {
			p.cfgs[i].Shards = opts.Shards
		}
	}
	return p, nil
}

// cellCount is the number of (load, combo) cells in the sweep.
func (p *sweepPlan) cellCount() int { return len(p.loads) * len(p.combos) }

// runCell executes cell i = load-index × combos + combo-index — pure:
// the same plan and index give the bit-identical cell anywhere.
func (p *sweepPlan) runCell(i int) sweepCell {
	if p.single {
		r := core.RunSingleHop(p.shCfgs[i])
		assertSpecsMatch(p.specs, r.Specs, p.shCfgs[i].Load)
		return sweepCell{WDB: r.WDB, Mean: r.MeanDelay, Delivered: r.Delivered}
	}
	r := core.Run(p.cfgs[i])
	assertSpecsMatch(p.specs, r.Specs, p.cfgs[i].Load)
	return sweepCell{WDB: r.WDB, Mean: r.MeanDelay, Layers: r.Layers,
		Delivered: r.Delivered, Lost: r.Lost,
		Joins: r.Joins, Leaves: r.Leaves, Regrafts: r.Regrafts,
		Reopts: r.Reopts, ReoptMoves: r.ReoptMoves,
		Windows: r.WindowMax, WindowSec: r.WindowSec,
		Faults: r.Faults, FaultLost: r.FaultLost, CutLost: r.CutLost,
		Shards: r.Shards, Epochs: r.Epochs, CrossMsgs: r.CrossShardMsgs,
		Stall: r.StallShare}
}

// aggregate folds the cells into the sweep result — shared verbatim
// between the in-process sweep and the fleet merge, so both emit the same
// bytes from the same cells.
func (p *sweepPlan) aggregate(cells []sweepCell) ScenarioResult {
	res := ScenarioResult{Scenario: p.sc, Loads: p.loads}
	for _, c := range p.combos {
		res.Curves = append(res.Curves, ScenarioCurve{
			Combo:     c,
			WDB:       &stats.Series{Name: c.String()},
			MeanDelay: &stats.Series{Name: c.String() + " mean"},
			Layers:    make([]int, len(p.loads)),
			Bound:     make([]float64, len(p.loads)),
			Lost:      make([]uint64, len(p.loads)),
		})
	}
	for li, load := range p.loads {
		for ci := range p.combos {
			c := cells[li*len(p.combos)+ci]
			res.Curves[ci].WDB.Add(load, c.WDB)
			res.Curves[ci].MeanDelay.Add(load, c.Mean)
			res.Curves[ci].Layers[li] = c.Layers
			res.Curves[ci].Lost[li] = c.Lost
			if c.Windows != nil {
				if res.Curves[ci].WindowMax == nil {
					res.Curves[ci].WindowMax = make([][]float64, len(p.loads))
				}
				res.Curves[ci].WindowMax[li] = c.Windows
				res.Curves[ci].WindowSec = c.WindowSec
			}
			res.Curves[ci].Reopts += c.Reopts
			res.Curves[ci].ReoptMoves += c.ReoptMoves
			if c.Shards > 1 {
				if res.Curves[ci].Shards == nil {
					res.Curves[ci].Shards = make([]int, len(p.loads))
					res.Curves[ci].Epochs = make([]uint64, len(p.loads))
					res.Curves[ci].CrossShardMsgs = make([]uint64, len(p.loads))
					res.Curves[ci].StallShare = make([]float64, len(p.loads))
				}
				res.Curves[ci].Shards[li] = c.Shards
				res.Curves[ci].Epochs[li] = c.Epochs
				res.Curves[ci].CrossShardMsgs[li] = c.CrossMsgs
				res.Curves[ci].StallShare[li] = c.Stall
				if c.Shards > res.Shards {
					res.Shards = c.Shards
				}
			}
			if c.Faults != nil {
				if res.Curves[ci].Faults == nil {
					res.Curves[ci].Faults = make([][]core.FaultOutcome, len(p.loads))
					res.Curves[ci].CutLost = make([]uint64, len(p.loads))
				}
				res.Curves[ci].Faults[li] = c.Faults
				res.Curves[ci].CutLost[li] = c.CutLost
				res.FaultLost += c.FaultLost
				res.CutLost += c.CutLost
			}
			bound := theoryBound(p.sc, p.combos[ci], p.mix, p.specs, load, c.Layers)
			res.Curves[ci].Bound[li] = bound
			if bound > 0 && c.WDB > bound {
				res.Curves[ci].Violations++
			}
			res.Delivered += c.Delivered
			res.Lost += c.Lost
			res.Joins += c.Joins
			res.Leaves += c.Leaves
			res.Regrafts += c.Regrafts
			res.Reopts += c.Reopts
			res.ReoptMoves += c.ReoptMoves
		}
	}
	return res
}

// ScenarioSweep runs a scenario over its load grid with one engine per
// (load, combo) cell, fanned out over the same worker pool as the figure
// drivers and under the same determinism rules: the structural seed
// (opts.Seed) pins network, membership, and trees across the whole sweep;
// each load's traffic seed derives from (seed, load index) so combos at
// one load stay paired; specs are built once and shared read-only.
// Sequential and parallel execution are bit-identical, as is a
// distributed FleetSweep of the same scenario and options.
//
// Precedence for the grid and duration: an explicit opts value beats the
// scenario's own, which beats the defaults. The paper's Fig. 4/Fig. 6
// drivers are the special case ScenarioSweep(Lookup("paper-fig4"/"-fig6"))
// — pinned by tests in scenario_test.go.
func ScenarioSweep(sc scenario.Scenario, opts Options) (ScenarioResult, error) {
	p, err := newSweepPlan(sc, opts)
	if err != nil {
		return ScenarioResult{}, err
	}
	cells := make([]sweepCell, p.cellCount())
	runJobs(len(cells), opts, func(i int) { cells[i] = p.runCell(i) })
	return p.aggregate(cells), nil
}

// theoryBound computes the closed-form worst-case multicast delay for one
// (combo, load) cell: Remark 2's (H−1)·Dg for (σ, ρ) end hosts, Theorem
// 7's (H−1)·D̂g for (σ, ρ, λ), at the cell's measured layer count, with
// every envelope normalised by the slowest uplink class's connection
// capacity (the binding hop). Schemes without a closed form — capacity-
// aware reshaping, the adaptive switcher mid-flight — report 0.
func theoryBound(sc scenario.Scenario, combo scenario.Combo, mix traffic.Mix,
	specs []core.FlowSpec, load float64, layers int) float64 {
	if sc.Kind == scenario.KindSingleHop || layers < 2 {
		return 0
	}
	scheme, err := scenario.ParseScheme(combo.Scheme)
	if err != nil || (scheme != core.SchemeSigmaRho && scheme != core.SchemeSRL) {
		return 0
	}
	// Under churn or re-optimization the reported layer count is an
	// end-of-run snapshot; the whole-run WDB must be compared against a
	// height that held at every instant. The control plane enforces the
	// strategy's height bound on grafts, repairs, and rewires — for the
	// cluster strategies that is the Lemma 2 bound — so bound at that cap
	// instead of the snapshot. Strategies without a closed-form height
	// bound (spt, greedy) fall back to the snapshot, so their churn-time
	// bound column is best-effort.
	if sc.Churn.Enabled() || sc.Reopt.Enabled() {
		if strat, err := overlay.LookupStrategy(strategyName(sc, combo)); err == nil {
			lim := strat.Limits(overlay.Config{K: sc.ClusterK}, sc.Hosts())
			if lim.MaxHeight > 0 {
				layers = lim.MaxHeight + 1
			}
		}
	}
	conn := mix.TotalRateN(len(specs)) / load
	minMult := 1.0
	if classes := sc.UplinkClasses(); len(classes) > 0 {
		minMult = classes[0].Mult
		for _, c := range classes[1:] {
			if c.Mult < minMult {
				minMult = c.Mult
			}
		}
	}
	c := minMult * conn
	sigmas := make([]float64, len(specs))
	rhos := make([]float64, len(specs))
	for i, sp := range specs {
		sigmas[i], rhos[i] = calculus.Normalize(sp.Sigma, sp.Rho, c)
	}
	if scheme == core.SchemeSRL {
		return calculus.MulticastDhatHetero(layers, sigmas, rhos)
	}
	return calculus.MulticastDgHetero(layers, sigmas, rhos)
}

// strategyName resolves the overlay strategy in force for a combo —
// StrategyFor, with the legacy dsct default made explicit so bound and
// table code can always name the strategy.
func strategyName(sc scenario.Scenario, combo scenario.Combo) string {
	if sc.Kind == scenario.KindSingleHop {
		return ""
	}
	if name := sc.StrategyFor(combo); name != "" {
		return name
	}
	if scheme, err := scenario.ParseScheme(combo.Scheme); err == nil && scheme == core.SchemeCapacityAware {
		return "flat"
	}
	return "dsct"
}

// StrategyTable renders the comparative per-strategy view of a sweep:
// one row per combo with its resolved overlay strategy, the worst-case
// and mean delay at the heaviest load, the theory bound and its violation
// count, and the disruption totals (churn losses, re-optimization
// activity) — the at-a-glance answer to "which strategy wins here".
func (r ScenarioResult) StrategyTable() *stats.Table {
	t := stats.NewTable("combo", "strategy", "wdb [s]", "mean [s]", "layers",
		"bound [s]", "viol", "lost", "reopts", "moves")
	if len(r.Loads) == 0 {
		return t
	}
	last := len(r.Loads) - 1
	for _, c := range r.Curves {
		strat := strategyName(r.Scenario, c.Combo)
		if strat == "" {
			strat = "-"
		}
		bound := "-"
		if c.Bound[last] > 0 {
			bound = fmt.Sprintf("%.4f", c.Bound[last])
		}
		var lost uint64
		for _, l := range c.Lost {
			lost += l
		}
		t.AddRow(c.Combo.Scheme, strat,
			fmt.Sprintf("%.4f", c.WDB.Y[last]),
			fmt.Sprintf("%.4f", c.MeanDelay.Y[last]),
			fmt.Sprintf("%d", c.Layers[last]),
			bound,
			fmt.Sprintf("%d", c.Violations),
			fmt.Sprintf("%d", lost),
			fmt.Sprintf("%d", c.Reopts),
			fmt.Sprintf("%d", c.ReoptMoves))
	}
	return t
}

// FaultTable renders the recovery view of a fault-injection sweep at the
// heaviest load: one row per (combo, fault event) with the event's reach,
// the orphan subtrees re-grafted while handling it, the loss attributed
// to it, the measured service-interruption time, and the transient WDB
// spike — the peak of the windowed max-delay series in the second after
// the event struck. Returns an empty table when the sweep injected no
// faults.
func (r ScenarioResult) FaultTable() *stats.Table {
	t := stats.NewTable("combo", "strategy", "event", "at [s]", "group",
		"hosts", "regrafts", "lost", "recov [s]", "spike [s]")
	if len(r.Loads) == 0 {
		return t
	}
	last := len(r.Loads) - 1
	for _, c := range r.Curves {
		if c.Faults == nil || c.Faults[last] == nil {
			continue
		}
		strat := strategyName(r.Scenario, c.Combo)
		if strat == "" {
			strat = "-"
		}
		for _, oc := range c.Faults[last] {
			group := "-"
			if oc.Group >= 0 {
				group = fmt.Sprintf("%d", oc.Group)
			}
			recov := fmt.Sprintf("%.4f", oc.RecoverySec)
			if oc.Unrecovered > 0 {
				recov += fmt.Sprintf(" (+%d open)", oc.Unrecovered)
			}
			spike := "-"
			if c.WindowSec > 0 && c.WindowMax != nil && len(c.WindowMax[last]) > 0 {
				spike = fmt.Sprintf("%.4f",
					stats.MaxIn(c.WindowMax[last], c.WindowSec, oc.AtSec, oc.AtSec+1))
			}
			t.AddRow(c.Combo.Scheme, strat, oc.Kind,
				fmt.Sprintf("%.2f", oc.AtSec), group,
				fmt.Sprintf("%d", oc.Hosts),
				fmt.Sprintf("%d", oc.Regrafts),
				fmt.Sprintf("%d", oc.Lost),
				recov, spike)
		}
	}
	return t
}

// HasFaults reports whether any curve carries fault outcomes.
func (r ScenarioResult) HasFaults() bool {
	for _, c := range r.Curves {
		if c.Faults != nil {
			return true
		}
	}
	return false
}

// Table renders the WDB curves in the figure layout: one column per
// combo, one row per load.
func (r ScenarioResult) Table() *stats.Table {
	header := []string{"rho*K"}
	for _, c := range r.Curves {
		header = append(header, c.Combo.String()+" [s]")
	}
	t := stats.NewTable(header...)
	for i, x := range r.Loads {
		row := []string{fmt.Sprintf("%.2f", x)}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.4f", c.WDB.Y[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Summary gives the one-line outcome: the winning combo at the heaviest
// load, plus the churn disruption totals when membership was dynamic.
func (r ScenarioResult) Summary() string {
	if len(r.Loads) == 0 || len(r.Curves) == 0 {
		return fmt.Sprintf("scenario %s: empty sweep", r.Scenario.Name)
	}
	last := len(r.Loads) - 1
	best := 0
	for i, c := range r.Curves {
		if c.WDB.Y[last] < r.Curves[best].WDB.Y[last] {
			best = i
		}
	}
	out := fmt.Sprintf("scenario %s: best at load %.2f is %v (WDB %.4fs); %d deliveries",
		r.Scenario.Name, r.Loads[last], r.Curves[best].Combo, r.Curves[best].WDB.Y[last],
		r.Delivered)
	if r.Joins+r.Leaves > 0 {
		out += fmt.Sprintf("; churn: %d joins, %d leaves, %d regrafts, %d packets lost",
			r.Joins, r.Leaves, r.Regrafts, r.Lost)
	}
	if r.Reopts+r.ReoptMoves > 0 {
		out += fmt.Sprintf("; reopt: %d accepted passes, %d members moved", r.Reopts, r.ReoptMoves)
	}
	if r.HasFaults() {
		out += fmt.Sprintf("; faults: %d packets lost to fault events (%d at partition cuts)",
			r.FaultLost, r.CutLost)
	}
	return out
}

// SchemaVersion is stamped into every machine-readable harness record —
// sweep records, fleet manifests, and fleet combo results. Decoders
// reject records whose version is missing or unknown instead of
// misreading a future layout; bump it on any breaking field change.
const SchemaVersion = 1

// ScenarioRecord is the machine-readable sweep record, the structured
// counterpart of Table/Summary so bench and CI tooling stops scraping
// text tables.
type ScenarioRecord struct {
	SchemaVersion int                   `json:"schema_version"`
	Scenario      string                `json:"scenario"`
	Kind          string                `json:"kind"`
	Loads         []float64             `json:"loads"`
	Delivered     uint64                `json:"delivered"`
	Joins         int                   `json:"joins,omitempty"`
	Leaves        int                   `json:"leaves,omitempty"`
	Regrafts      int                   `json:"regrafts,omitempty"`
	Lost          uint64                `json:"lost,omitempty"`
	Reopts        int                   `json:"reopts,omitempty"`
	Moves         int                   `json:"reopt_moves,omitempty"`
	FaultLost     uint64                `json:"fault_lost,omitempty"`
	CutLost       uint64                `json:"cut_lost,omitempty"`
	Shards        int                   `json:"shards,omitempty"`
	Curves        []ScenarioCurveRecord `json:"curves"`
}

// ScenarioCurveRecord is one combo's slice of a ScenarioRecord.
type ScenarioCurveRecord struct {
	Combo      string      `json:"combo"`
	Strategy   string      `json:"strategy,omitempty"`
	WDB        []float64   `json:"wdb"`
	MeanDelay  []float64   `json:"mean_delay"`
	Layers     []int       `json:"layers,omitempty"`
	Bound      []float64   `json:"bound,omitempty"`
	Violations int         `json:"violations"`
	Lost       []uint64    `json:"lost,omitempty"`
	Reopts     int         `json:"reopts,omitempty"`
	Moves      int         `json:"reopt_moves,omitempty"`
	WindowSec  float64     `json:"window_sec,omitempty"`
	WindowMax  [][]float64 `json:"window_max,omitempty"`
	// Faults nests the per-load fault outcomes (reusing the core record's
	// JSON shape); CutLost is the per-load partition-drop tally.
	Faults  [][]core.FaultOutcome `json:"faults,omitempty"`
	CutLost []uint64              `json:"cut_lost,omitempty"`
	// Sharded-execution diagnostics per load (absent for sequential runs).
	Shards         []int     `json:"shards,omitempty"`
	Epochs         []uint64  `json:"epochs,omitempty"`
	CrossShardMsgs []uint64  `json:"cross_shard_msgs,omitempty"`
	StallShare     []float64 `json:"stall_share,omitempty"`
}

// JSON renders the sweep as an indented machine-readable record: per-combo
// max delay, mean delay, layer counts, theory bound, bound violations, and
// churn losses over the load grid.
func (r ScenarioResult) JSON() ([]byte, error) {
	kind := string(r.Scenario.Kind)
	if kind == "" {
		kind = string(scenario.KindMultiGroup)
	}
	rec := ScenarioRecord{
		SchemaVersion: SchemaVersion,
		Scenario:      r.Scenario.Name,
		Kind:          kind,
		Loads:         r.Loads,
		Delivered:     r.Delivered,
		Joins:         r.Joins,
		Leaves:        r.Leaves,
		Regrafts:      r.Regrafts,
		Lost:          r.Lost,
		Reopts:        r.Reopts,
		Moves:         r.ReoptMoves,
		FaultLost:     r.FaultLost,
		CutLost:       r.CutLost,
		Shards:        r.Shards,
	}
	for _, c := range r.Curves {
		rec.Curves = append(rec.Curves, ScenarioCurveRecord{
			Combo:          c.Combo.String(),
			Strategy:       strategyName(r.Scenario, c.Combo),
			WDB:            c.WDB.Y,
			MeanDelay:      c.MeanDelay.Y,
			Layers:         c.Layers,
			Bound:          c.Bound,
			Violations:     c.Violations,
			Lost:           c.Lost,
			WindowSec:      c.WindowSec,
			WindowMax:      c.WindowMax,
			Faults:         c.Faults,
			CutLost:        c.CutLost,
			Shards:         c.Shards,
			Epochs:         c.Epochs,
			CrossShardMsgs: c.CrossShardMsgs,
			StallShare:     c.StallShare,
		})
	}
	return json.MarshalIndent(rec, "", "  ")
}

// checkSchemaVersion probes a harness JSON record's schema_version field
// and rejects a missing or unknown version before the caller decodes the
// body — the guard every harness record decoder shares.
func checkSchemaVersion(data []byte) error {
	var probe struct {
		SchemaVersion *int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("harness: record does not parse: %w", err)
	}
	if probe.SchemaVersion == nil {
		return fmt.Errorf("harness: record has no schema_version (want %d)", SchemaVersion)
	}
	if *probe.SchemaVersion != SchemaVersion {
		return fmt.Errorf("harness: record schema_version %d not supported (want %d)",
			*probe.SchemaVersion, SchemaVersion)
	}
	return nil
}

// DecodeScenarioJSON parses a record produced by ScenarioResult.JSON. It
// rejects records whose schema_version is missing or unknown, so tooling
// fails loudly on a layout it was not built for.
func DecodeScenarioJSON(data []byte) (ScenarioRecord, error) {
	if err := checkSchemaVersion(data); err != nil {
		return ScenarioRecord{}, err
	}
	var rec ScenarioRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return ScenarioRecord{}, fmt.Errorf("harness: scenario record does not parse: %w", err)
	}
	return rec, nil
}
