package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// ScenarioCurve is one combo's series across the load grid.
type ScenarioCurve struct {
	Combo scenario.Combo
	// WDB is the worst-case delay per load.
	WDB *stats.Series
	// MeanDelay is the mean delivery delay per load.
	MeanDelay *stats.Series
	// Layers is the max tree layer count per load (0 for single-hop).
	Layers []int
}

// ScenarioResult is a full scenario sweep: one curve per combo.
type ScenarioResult struct {
	Scenario scenario.Scenario
	Loads    []float64
	Curves   []ScenarioCurve
	// Delivered totals packet receptions across every cell of the sweep.
	Delivered uint64
}

// ScenarioSweep runs a scenario over its load grid with one engine per
// (load, combo) cell, fanned out over the same worker pool as the figure
// drivers and under the same determinism rules: the structural seed
// (opts.Seed) pins network, membership, and trees across the whole sweep;
// each load's traffic seed derives from (seed, load index) so combos at
// one load stay paired; specs are built once and shared read-only.
// Sequential and parallel execution are bit-identical.
//
// Precedence for the grid and duration: an explicit opts value beats the
// scenario's own, which beats the defaults. The paper's Fig. 4/Fig. 6
// drivers are the special case ScenarioSweep(Lookup("paper-fig4"/"-fig6"))
// — pinned by tests in scenario_test.go.
func ScenarioSweep(sc scenario.Scenario, opts Options) (ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return ScenarioResult{}, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	if opts.NumHosts > 0 {
		sc.NumHosts = opts.NumHosts
	}
	// An explicitly passed grid beats the scenario's own, which beats the
	// paper grid — mirroring the NumHosts/duration precedence.
	loads := opts.Loads
	if len(loads) == 0 {
		loads = sc.Loads
	}
	if len(loads) == 0 {
		loads = PaperLoads
	}
	single := sc.Kind == scenario.KindSingleHop
	var dur des.Duration
	switch {
	case single && opts.SingleHopDuration > 0:
		dur = opts.SingleHopDuration
	case !single && opts.Duration > 0:
		dur = opts.Duration
	case sc.DurationSec > 0:
		dur = des.Seconds(sc.DurationSec)
	case single:
		dur = 36 * des.Second
	default:
		dur = 15 * des.Second
	}

	mix, err := sc.ParseMix()
	if err != nil {
		return ScenarioResult{}, err
	}
	workload, err := sc.ParseWorkload()
	if err != nil {
		return ScenarioResult{}, err
	}
	specs := core.DefaultSpecsN(workload, mix, sc.GroupCount(), seed)

	res := ScenarioResult{Scenario: sc, Loads: loads}
	for _, c := range sc.Combos {
		res.Curves = append(res.Curves, ScenarioCurve{
			Combo:     c,
			WDB:       &stats.Series{Name: c.String()},
			MeanDelay: &stats.Series{Name: c.String() + " mean"},
			Layers:    make([]int, len(loads)),
		})
	}

	combos := sc.Combos
	type cell struct {
		wdb, mean float64
		layers    int
		delivered uint64
	}
	cells := make([]cell, len(loads)*len(combos))

	// Compile every cell's config up front: configuration errors surface
	// before any engine runs, and the worker job body stays pure.
	if single {
		cfgs := make([]core.SingleHopConfig, len(cells))
		for i := range cells {
			li, ci := i/len(combos), i%len(combos)
			cfgs[i], err = sc.SingleHopConfig(combos[ci], loads[li], seed,
				core.UseSeed(DeriveSeed(seed, li)), dur, specs)
			if err != nil {
				return ScenarioResult{}, err
			}
		}
		runJobs(len(cells), opts, func(i int) {
			r := core.RunSingleHop(cfgs[i])
			assertSpecsMatch(specs, r.Specs, cfgs[i].Load)
			cells[i] = cell{wdb: r.WDB, mean: r.MeanDelay, delivered: r.Delivered}
		})
	} else {
		// Membership is a pure function of (scenario, seed): materialise
		// it once and share it read-only across every cell.
		groups := sc.Groups(seed)
		cfgs := make([]core.Config, len(cells))
		for i := range cells {
			li, ci := i/len(combos), i%len(combos)
			cfgs[i], err = sc.SessionConfig(combos[ci], loads[li], seed,
				core.UseSeed(DeriveSeed(seed, li)), dur, specs, groups)
			if err != nil {
				return ScenarioResult{}, err
			}
		}
		runJobs(len(cells), opts, func(i int) {
			r := core.Run(cfgs[i])
			assertSpecsMatch(specs, r.Specs, cfgs[i].Load)
			cells[i] = cell{wdb: r.WDB, mean: r.MeanDelay, layers: r.Layers, delivered: r.Delivered}
		})
	}

	for li, load := range loads {
		for ci := range combos {
			c := cells[li*len(combos)+ci]
			res.Curves[ci].WDB.Add(load, c.wdb)
			res.Curves[ci].MeanDelay.Add(load, c.mean)
			res.Curves[ci].Layers[li] = c.layers
			res.Delivered += c.delivered
		}
	}
	return res, nil
}

// Table renders the WDB curves in the figure layout: one column per
// combo, one row per load.
func (r ScenarioResult) Table() *stats.Table {
	header := []string{"rho*K"}
	for _, c := range r.Curves {
		header = append(header, c.Combo.String()+" [s]")
	}
	t := stats.NewTable(header...)
	for i, x := range r.Loads {
		row := []string{fmt.Sprintf("%.2f", x)}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.4f", c.WDB.Y[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Summary gives the one-line outcome: the winning combo at the heaviest
// load.
func (r ScenarioResult) Summary() string {
	if len(r.Loads) == 0 || len(r.Curves) == 0 {
		return fmt.Sprintf("scenario %s: empty sweep", r.Scenario.Name)
	}
	last := len(r.Loads) - 1
	best := 0
	for i, c := range r.Curves {
		if c.WDB.Y[last] < r.Curves[best].WDB.Y[last] {
			best = i
		}
	}
	return fmt.Sprintf("scenario %s: best at load %.2f is %v (WDB %.4fs); %d deliveries",
		r.Scenario.Name, r.Loads[last], r.Curves[best].Combo, r.Curves[best].WDB.Y[last],
		r.Delivered)
}
