package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/scenario"
)

// benchCompile measures full session construction — substrate compile plus
// host wiring — for the heaviest cell of a scenario. The cold variant
// flushes the blueprint cache every iteration, so it prices the
// parallel compile itself; the warm variant prices the cached path a
// sweep cell, auto-tune probe, or restore actually pays.
func benchCompile(b *testing.B, name string, warm bool) {
	p, err := newSweepPlan(scenario.MustLookup(name),
		Options{Seed: 1, Duration: des.Duration(des.Seconds(0.5))})
	if err != nil {
		b.Fatal(err)
	}
	cfg := p.cfgs[len(p.cfgs)-1]
	core.FlushSubstrateCache()
	if warm {
		core.NewSession(cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			core.FlushSubstrateCache()
		}
		core.NewSession(cfg)
	}
}

func BenchmarkSubstrateCompile(b *testing.B) {
	for _, name := range []string{"waxman-zipf-16", "waxman-zipf-512"} {
		b.Run(name+"/cold", func(b *testing.B) { benchCompile(b, name, false) })
		b.Run(name+"/warm", func(b *testing.B) { benchCompile(b, name, true) })
	}
}
