package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/traffic"
)

func TestQuickOptions(t *testing.T) {
	o := Quick(5)
	o.fill()
	if o.NumHosts != 120 || len(o.Loads) != 5 || o.Seed != 5 {
		t.Fatalf("quick options: %+v", o)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Seed != 1 || o.NumHosts != 665 || len(o.Loads) != 13 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestFig4ShapeQuick(t *testing.T) {
	r := Fig4(traffic.MixVideo, Quick(1))
	if len(r.SigmaRho.Y) != 5 || len(r.SRL.Y) != 5 {
		t.Fatalf("series lengths %d/%d", len(r.SigmaRho.Y), len(r.SRL.Y))
	}
	if !r.CrossoverOK {
		t.Fatalf("no crossover found: %s", r.Summary())
	}
	if r.Crossover < 0.5 || r.Crossover > 0.85 {
		t.Fatalf("crossover %.2f outside the paper band", r.Crossover)
	}
	if r.MaxRatio < 1.5 {
		t.Fatalf("max improvement %.2f too small", r.MaxRatio)
	}
	// Monotone-ish SR curve: last point far above first.
	n := len(r.SigmaRho.Y)
	if r.SigmaRho.Y[n-1] < 3*r.SigmaRho.Y[0] {
		t.Fatalf("(σ,ρ) curve not rising: %v", r.SigmaRho.Y)
	}
	tab := r.Table().String()
	if !strings.Contains(tab, "0.95") {
		t.Fatalf("table missing load rows:\n%s", tab)
	}
	if r.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestFig4WithAdaptive(t *testing.T) {
	o := Quick(1)
	o.Loads = []float64{0.4, 0.9}
	o.IncludeAdaptive = true
	r := Fig4(traffic.MixAudio, o)
	if r.Adaptive == nil || len(r.Adaptive.Y) != 2 {
		t.Fatal("adaptive series missing")
	}
	if !strings.Contains(r.Table().String(), "adaptive") {
		t.Fatal("table missing adaptive column")
	}
}

func TestFig6ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 6 sweep; skipped in -short (the race job's quick suite)")
	}
	o := Quick(1)
	o.NumHosts = 60
	o.Loads = []float64{0.4, 0.9}
	r := Fig6(traffic.MixAudio, o)
	if len(r.Curves) != 6 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	srl := r.Curves[SchemeTree{core.SchemeSRL, core.TreeDSCT}]
	sr := r.Curves[SchemeTree{core.SchemeSigmaRho, core.TreeDSCT}]
	// Low load: (σ,ρ) wins; high load: (σ,ρ,λ) wins.
	if sr.Y[0] >= srl.Y[0] {
		t.Fatalf("(σ,ρ) should win at 0.4: %v vs %v", sr.Y[0], srl.Y[0])
	}
	if srl.Y[1] >= sr.Y[1] {
		t.Fatalf("(σ,ρ,λ) should win at 0.9: %v vs %v", srl.Y[1], sr.Y[1])
	}
	// Layer tables: capacity-aware grows, regulated constant.
	ca := r.Layers[SchemeTree{core.SchemeCapacityAware, core.TreeDSCT}]
	reg := r.Layers[SchemeTree{core.SchemeSRL, core.TreeDSCT}]
	if ca[1] <= ca[0] {
		t.Fatalf("capacity-aware layers did not grow: %v", ca)
	}
	if reg[0] != reg[1] {
		t.Fatalf("regulated layers changed: %v", reg)
	}
	out := r.Table().String()
	if !strings.Contains(out, "capacity-aware DSCT") {
		t.Fatalf("table missing combo columns:\n%s", out)
	}
	if !strings.Contains(r.LayerTable().String(), "DSCT with") {
		t.Fatal("layer table malformed")
	}
	_ = r.Summary()
}

func TestLayerSweepTableShape(t *testing.T) {
	o := Quick(1)
	o.NumHosts = 200
	o.Loads = []float64{0.35, 0.65, 0.95}
	r := LayerSweep(traffic.MixAudio, o)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[2].CapacityAware <= r.Rows[0].CapacityAware {
		t.Fatalf("capacity-aware layers should grow: %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.RegulatedLayers != r.Rows[0].RegulatedLayers {
			t.Fatalf("regulated layers vary: %+v", r.Rows)
		}
	}
	if !strings.Contains(r.Table().String(), "0.95") {
		t.Fatal("table missing rows")
	}
}

func TestFig2TraceZigZag(t *testing.T) {
	pts := Fig2Trace(10_000, 250_000, 1_000_000, des.Seconds(1), 200)
	if len(pts) != 200 {
		t.Fatalf("points = %d", len(pts))
	}
	// Cumulative output is non-decreasing and alternates on/off states.
	transitions := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].CumOut < pts[i-1].CumOut {
			t.Fatal("cumulative output decreased")
		}
		if pts[i].On != pts[i-1].On {
			transitions++
		}
	}
	if transitions < 4 {
		t.Fatalf("only %d on/off transitions in the trace", transitions)
	}
	// Output never exceeds input.
	for _, p := range pts {
		if p.CumOut > p.CumIn+1e-9 {
			t.Fatal("output exceeded input")
		}
	}
	if !strings.Contains(Fig2Table(pts).String(), "backlog") {
		t.Fatal("fig2 table malformed")
	}
}

func TestRhoStarTable(t *testing.T) {
	out := RhoStarTable(5).String()
	for _, want := range []string{"0.7321", "0.7913", "K"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRhoStarTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RhoStarTable(1)
}

func TestImprovementTable(t *testing.T) {
	out := ImprovementTable(3, nil).String()
	if !strings.Contains(out, "0.95") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// Custom load grid.
	out = ImprovementTable(3, []float64{0.9}).String()
	if !strings.Contains(out, "0.90") {
		t.Fatalf("custom grid ignored:\n%s", out)
	}
}

func TestFig2TracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fig2Trace(1000, 100, 1000, des.Second, 1)
}
