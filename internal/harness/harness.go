// Package harness regenerates every table and figure of the paper's
// evaluation section: Fig. 4(a–c) (single regulated hop), Fig. 6(a–c)
// (multi-group EMcast under six scheme/tree combinations), Tables I–III
// (tree layer counts), plus the theory artefacts (ρ* thresholds, O(Kⁿ)
// improvement bands) and the Fig. 2 regulator trace.
//
// Each driver returns structured series/rows and can render itself as the
// same row layout the paper reports. EXPERIMENTS.md records paper-vs-
// measured values produced by these drivers. ScenarioSweep generalises
// them: it runs any registered internal/scenario entry over the same
// pool with the same determinism rules (the paper's Fig. 4/Fig. 6 are
// the entries "paper-fig4"/"paper-fig6").
package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// PaperLoads is the x-axis grid of every figure and table:
// ρ̄K ∈ {0.35, 0.40, …, 0.95}.
var PaperLoads = []float64{0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95}

// Options tunes an experiment sweep.
type Options struct {
	// Seed drives all randomness. Default 1.
	Seed uint64
	// Loads is the x-axis grid. Default PaperLoads.
	Loads []float64
	// NumHosts for the multi-group runs. Default 665 (the paper's
	// population). Reduced sizes preserve the curve shapes.
	NumHosts int
	// Duration per multi-group run. Default 15 s (one extremal period
	// plus warm-up).
	Duration des.Duration
	// SingleHopDuration per Fig. 4 run. Default 36 s.
	SingleHopDuration des.Duration
	// IncludeAdaptive adds the adaptive algorithm as an extra series
	// (beyond the paper's two curves).
	IncludeAdaptive bool
	// Sequential runs all sweep points in order on the calling goroutine
	// (for debugging and as the determinism oracle). The default fans the
	// points out over a worker pool; results are identical either way.
	Sequential bool
	// Workers bounds the sweep worker pool. 0 means GOMAXPROCS.
	Workers int
	// Shards, when > 1, runs each multi-group session as a sharded
	// conservative-parallel simulation (core.Config.Shards): parallelism
	// *within* a run, complementing the pool's parallelism *across* runs.
	// Physics are preserved (delivery/loss/WDB match the sequential
	// engine); use it when a single big session, not the sweep, is the
	// bottleneck — sweeps with many cells usually saturate the cores
	// already, and shard workers then compete with pool workers.
	Shards int
	// AutoShards picks the shard count by measurement instead: before a
	// scenario sweep runs, core.AutoTuneShards probes candidate counts on
	// the heaviest cell and the count with the lowest barrier-stall share
	// overrides Shards (wdcsim -shards auto). Ignored by the figure
	// drivers, which run at paper scale where sharding never pays.
	AutoShards bool
	// Strategy, when non-empty, forces every regulated combo of a
	// scenario sweep onto the named overlay strategy (wdcsim -strategy),
	// overriding per-combo tree/strategy selections. Combos that become
	// identical under the override are deduplicated.
	Strategy string
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Loads) == 0 {
		o.Loads = PaperLoads
	}
	if o.NumHosts == 0 {
		o.NumHosts = 665
	}
	if o.Duration == 0 {
		o.Duration = 15 * des.Second
	}
	if o.SingleHopDuration == 0 {
		o.SingleHopDuration = 36 * des.Second
	}
}

// Quick returns reduced-scale options for tests and benchmarks: 120 hosts,
// a 5-point load grid, shorter runs. Shapes (who wins, where the crossover
// falls) are preserved.
func Quick(seed uint64) Options {
	return Options{
		Seed:              seed,
		Loads:             []float64{0.35, 0.50, 0.65, 0.80, 0.95},
		NumHosts:          120,
		Duration:          13 * des.Second,
		SingleHopDuration: 13 * des.Second,
	}
}

// Fig4Result holds one Fig. 4 panel: the WDB curves of the two regulators
// over the load grid, with the crossover (the empirical rate threshold ρ*)
// and the maximum improvement the paper reports alongside.
type Fig4Result struct {
	Mix      traffic.Mix
	Loads    []float64
	SigmaRho *stats.Series
	SRL      *stats.Series
	Adaptive *stats.Series // nil unless Options.IncludeAdaptive
	// Crossover is the first load at which the (σ,ρ,λ) curve dips below
	// the (σ,ρ) curve — the empirical ρ*·K.
	Crossover   float64
	CrossoverOK bool
	// MaxRatio is max over loads ≥ Crossover of WDB(σ,ρ)/WDB(σ,ρ,λ), at
	// MaxRatioAt.
	MaxRatio   float64
	MaxRatioAt float64
	// TheoryThreshold is K·ρ* from Theorems 3/4.
	TheoryThreshold float64
}

// Fig4 reproduces one panel of Fig. 4 (a: audio, b: video, c: hetero).
// The (load, scheme) grid is embarrassingly parallel: envelopes are built
// once up front (see sweepSpecs for the invariant that makes the sharing
// sound), every point runs on its own engine with a traffic seed derived
// from (Options.Seed, load index), and the schemes at one load share that
// seed so their curves stay paired.
func Fig4(mix traffic.Mix, opts Options) Fig4Result {
	opts.fill()
	res := Fig4Result{
		Mix:      mix,
		Loads:    opts.Loads,
		SigmaRho: &stats.Series{Name: "sigma-rho"},
		SRL:      &stats.Series{Name: "sigma-rho-lambda"},
	}
	schemes := []core.Scheme{core.SchemeSigmaRho, core.SchemeSRL}
	if opts.IncludeAdaptive {
		res.Adaptive = &stats.Series{Name: "adaptive"}
		schemes = append(schemes, core.SchemeAdaptive)
	}
	specs := sweepSpecs(core.WorkloadExtremal, mix, opts)
	cells := make([]core.SingleHopResult, len(opts.Loads)*len(schemes))
	runJobs(len(cells), opts, func(i int) {
		li, si := i/len(schemes), i%len(schemes)
		load := opts.Loads[li]
		cells[i] = core.RunSingleHop(core.SingleHopConfig{
			Mix: mix, Load: load, Scheme: schemes[si],
			Duration: opts.SingleHopDuration, Seed: opts.Seed,
			TrafficSeed: core.UseSeed(DeriveSeed(opts.Seed, li)), Specs: specs,
		})
		assertSpecsMatch(specs, cells[i].Specs, load)
	})
	res.TheoryThreshold = cells[0].ThresholdUtil
	for li, load := range opts.Loads {
		row := cells[li*len(schemes):]
		res.SigmaRho.Add(load, row[0].WDB)
		res.SRL.Add(load, row[1].WDB)
		if res.Adaptive != nil {
			res.Adaptive.Add(load, row[2].WDB)
		}
	}
	res.Crossover, res.CrossoverOK = stats.Crossover(res.SRL, res.SigmaRho)
	if res.CrossoverOK {
		res.MaxRatio, res.MaxRatioAt = stats.MaxRatio(res.SigmaRho, res.SRL, res.Crossover)
	}
	return res
}

// Table renders the panel in the paper's row layout.
func (r Fig4Result) Table() *stats.Table {
	cols := []string{"rho*K", "WDB (σ,ρ) [s]", "WDB (σ,ρ,λ) [s]"}
	if r.Adaptive != nil {
		cols = append(cols, "WDB adaptive [s]")
	}
	t := stats.NewTable(cols...)
	for i, x := range r.Loads {
		row := []string{
			fmt.Sprintf("%.2f", x),
			fmt.Sprintf("%.4f", r.SigmaRho.Y[i]),
			fmt.Sprintf("%.4f", r.SRL.Y[i]),
		}
		if r.Adaptive != nil {
			row = append(row, fmt.Sprintf("%.4f", r.Adaptive.Y[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Summary gives the one-line comparison against the paper.
func (r Fig4Result) Summary() string {
	if !r.CrossoverOK {
		return fmt.Sprintf("mix=%v no crossover observed (theory threshold %.2f)",
			r.Mix, r.TheoryThreshold)
	}
	return fmt.Sprintf("mix=%v crossover=%.2f (theory %.2f); max improvement %.2fx at %.2f",
		r.Mix, r.Crossover, r.TheoryThreshold, r.MaxRatio, r.MaxRatioAt)
}

// SchemeTree names one of the six Fig. 6 combinations.
type SchemeTree struct {
	Scheme core.Scheme
	Tree   core.TreeKind
}

// String implements fmt.Stringer ("capacity-aware DSCT" etc.).
func (st SchemeTree) String() string {
	return fmt.Sprintf("%v %v", st.Scheme, st.Tree)
}

// Fig6Combos lists the paper's six scheme/tree combinations.
var Fig6Combos = []SchemeTree{
	{core.SchemeCapacityAware, core.TreeDSCT},
	{core.SchemeSigmaRho, core.TreeDSCT},
	{core.SchemeSRL, core.TreeDSCT},
	{core.SchemeCapacityAware, core.TreeNICE},
	{core.SchemeSigmaRho, core.TreeNICE},
	{core.SchemeSRL, core.TreeNICE},
}

// Fig6Result holds one Fig. 6 panel: six WDB curves plus the layer counts
// that feed Tables I–III.
type Fig6Result struct {
	Mix    traffic.Mix
	Loads  []float64
	Curves map[SchemeTree]*stats.Series
	// Layers[st][i] is the max tree layer count of combination st at
	// Loads[i] (constant in load for regulated schemes).
	Layers map[SchemeTree][]int
	// Crossover and MaxRatio compare DSCT's (σ,ρ,λ) curve against its
	// (σ,ρ) curve, as the paper does.
	Crossover       float64
	CrossoverOK     bool
	MaxRatio        float64
	MaxRatioAt      float64
	TheoryThreshold float64
}

// Fig6 reproduces one panel of Fig. 6 (a: audio, b: video, c: hetero).
// All (load, scheme/tree) points fan out over the worker pool with one
// engine each; Options.Seed pins the shared network and trees across the
// sweep (the paper holds them fixed) while each load gets its own derived
// traffic seed.
func Fig6(mix traffic.Mix, opts Options) Fig6Result {
	opts.fill()
	res := Fig6Result{
		Mix:    mix,
		Loads:  opts.Loads,
		Curves: make(map[SchemeTree]*stats.Series),
		Layers: make(map[SchemeTree][]int),
	}
	for _, st := range Fig6Combos {
		res.Curves[st] = &stats.Series{Name: st.String()}
	}
	specs := sweepSpecs(core.WorkloadExtremal, mix, opts)
	cells := make([]core.Result, len(opts.Loads)*len(Fig6Combos))
	runJobs(len(cells), opts, func(i int) {
		li, ci := i/len(Fig6Combos), i%len(Fig6Combos)
		load := opts.Loads[li]
		st := Fig6Combos[ci]
		cells[i] = core.Run(core.Config{
			NumHosts:    opts.NumHosts,
			Mix:         mix,
			Load:        load,
			Scheme:      st.Scheme,
			Tree:        st.Tree,
			Duration:    opts.Duration,
			Seed:        opts.Seed,
			TrafficSeed: core.UseSeed(DeriveSeed(opts.Seed, li)),
			Specs:       specs,
			Shards:      opts.Shards,
		})
		assertSpecsMatch(specs, cells[i].Specs, load)
	})
	res.TheoryThreshold = cells[0].ThresholdUtil
	for li, load := range opts.Loads {
		for ci, st := range Fig6Combos {
			r := cells[li*len(Fig6Combos)+ci]
			res.Curves[st].Add(load, r.WDB)
			res.Layers[st] = append(res.Layers[st], r.Layers)
		}
	}
	dsctSRL := res.Curves[SchemeTree{core.SchemeSRL, core.TreeDSCT}]
	dsctSR := res.Curves[SchemeTree{core.SchemeSigmaRho, core.TreeDSCT}]
	res.Crossover, res.CrossoverOK = stats.Crossover(dsctSRL, dsctSR)
	if res.CrossoverOK {
		res.MaxRatio, res.MaxRatioAt = stats.MaxRatio(dsctSR, dsctSRL, res.Crossover)
	}
	return res
}

// Table renders the six curves in the paper's layout.
func (r Fig6Result) Table() *stats.Table {
	header := []string{"rho*K"}
	for _, st := range Fig6Combos {
		header = append(header, st.String()+" [s]")
	}
	t := stats.NewTable(header...)
	for i, x := range r.Loads {
		row := []string{fmt.Sprintf("%.2f", x)}
		for _, st := range Fig6Combos {
			row = append(row, fmt.Sprintf("%.4f", r.Curves[st].Y[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Summary gives the one-line comparison against the paper.
func (r Fig6Result) Summary() string {
	if !r.CrossoverOK {
		return fmt.Sprintf("mix=%v DSCT curves never cross (theory threshold %.2f)",
			r.Mix, r.TheoryThreshold)
	}
	return fmt.Sprintf("mix=%v DSCT crossover=%.2f (theory %.2f); max improvement %.2fx at %.2f",
		r.Mix, r.Crossover, r.TheoryThreshold, r.MaxRatio, r.MaxRatioAt)
}

// LayerTable renders the Tables I–III comparison: capacity-aware DSCT
// layer count versus regulated DSCT layer count per load.
func (r Fig6Result) LayerTable() *stats.Table {
	t := stats.NewTable("rho*K", "Capacity-aware DSCT", "DSCT with (σ,ρ,λ)")
	ca := r.Layers[SchemeTree{core.SchemeCapacityAware, core.TreeDSCT}]
	srl := r.Layers[SchemeTree{core.SchemeSRL, core.TreeDSCT}]
	for i, x := range r.Loads {
		t.AddRow(fmt.Sprintf("%.2f", x), fmt.Sprintf("%d", ca[i]), fmt.Sprintf("%d", srl[i]))
	}
	return t
}
