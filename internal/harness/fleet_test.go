package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/scenario"
)

// inProcessSpawn runs the fleet worker in this process — the test stand-in
// for re-execing the binary.
func inProcessSpawn(dir string) error { return RunFleetWorker(dir) }

// TestFleetSweepByteIdentical is the fleet golden: a distributed sweep
// merged from worker result files must render the byte-identical JSON
// record of the in-process sweep — churn, fault outcomes, window series,
// and sharded diagnostics included.
func TestFleetSweepByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		opts   Options
		fleets int
	}{
		{"churn-waxman-16", Options{Seed: 3}, 2},
		{"outage-waxman-16", Options{Seed: 5, Shards: 2}, 3},
		// More workers than combos: per-cell claims let a 2-combo × 3-load
		// sweep spread 6 ways instead of idling 4 workers.
		{"waxman-zipf-16", Options{Seed: 11}, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := scenario.MustLookup(tc.name).Quick()
			want, err := ScenarioSweep(sc, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FleetSweep(sc, tc.opts, FleetOptions{
				Workers: tc.fleets,
				Dir:     filepath.Join(t.TempDir(), "work"),
				Spawn:   inProcessSpawn,
			})
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := want.JSON()
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := got.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("fleet sweep JSON diverged from in-process sweep:\n--- in-process\n%s\n--- fleet\n%s",
					wantJSON, gotJSON)
			}
		})
	}
}

// TestFleetSweepResume kills the fleet after one cell, then resumes on
// the same directory: the completed cell's result file must survive
// byte-for-byte (not re-run), a stale claim without a result must be
// reclaimed, and the merged output must still match the in-process sweep.
func TestFleetSweepResume(t *testing.T) {
	sc := scenario.MustLookup("churn-waxman-16").Quick()
	opts := Options{Seed: 7}
	dir := filepath.Join(t.TempDir(), "work")

	// First attempt: the lone worker dies after finishing one cell.
	_, err := FleetSweep(sc, opts, FleetOptions{
		Workers: 1,
		Dir:     dir,
		Spawn:   func(d string) error { return fleetWorker(d, 1, nil) },
	})
	if err == nil {
		t.Fatal("partial fleet run did not report an incomplete sweep")
	}
	first, err := os.ReadFile(fleetResultPath(dir, 0, 0))
	if err != nil {
		t.Fatalf("cell (0,0) result missing after partial run: %v", err)
	}
	// A worker killed mid-cell leaves a claim with no result; the resume
	// must clear it so the cell is reclaimed.
	if err := os.WriteFile(fleetClaimPath(dir, 1, 0), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var reran [][2]int
	got, err := FleetSweep(sc, opts, FleetOptions{
		Workers: 2,
		Dir:     dir,
		Spawn: func(d string) error {
			return fleetWorker(d, -1, func(ci, li int) {
				mu.Lock()
				reran = append(reran, [2]int{ci, li})
				mu.Unlock()
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range reran {
		if cell == [2]int{0, 0} {
			t.Error("resume re-ran cell (0,0), which already had a result")
		}
	}
	if len(reran) == 0 {
		t.Error("resume ran no cells despite missing results")
	}
	after, err := os.ReadFile(fleetResultPath(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, after) {
		t.Error("resume rewrote the completed cell's result file")
	}

	want, err := ScenarioSweep(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := want.JSON()
	gotJSON, _ := got.JSON()
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("resumed fleet sweep diverged from in-process sweep:\n--- in-process\n%s\n--- fleet\n%s",
			wantJSON, gotJSON)
	}
}

// TestFleetDirMismatch pins the manifest guard: resuming a directory that
// holds a different sweep's manifest fails instead of mixing cells.
func TestFleetDirMismatch(t *testing.T) {
	sc := scenario.MustLookup("churn-waxman-16").Quick()
	dir := filepath.Join(t.TempDir(), "work")
	if _, err := FleetSweep(sc, Options{Seed: 7}, FleetOptions{Dir: dir, Spawn: inProcessSpawn}); err != nil {
		t.Fatal(err)
	}
	if _, err := FleetSweep(sc, Options{Seed: 8}, FleetOptions{Dir: dir, Spawn: inProcessSpawn}); err == nil {
		t.Fatal("fleet run on a different sweep's directory did not fail")
	}
}

// TestFleetResultVersionGuard pins the record version check end to end: a
// result file stamped with a future schema version fails the merge.
func TestFleetResultVersionGuard(t *testing.T) {
	sc := scenario.MustLookup("churn-waxman-16").Quick()
	dir := filepath.Join(t.TempDir(), "work")
	if _, err := FleetSweep(sc, Options{Seed: 7}, FleetOptions{Dir: dir, Spawn: inProcessSpawn}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(fleetResultPath(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var res fleetCellResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	res.SchemaVersion = SchemaVersion + 1
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fleetResultPath(dir, 0, 0), out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FleetSweep(sc, Options{Seed: 7}, FleetOptions{Dir: dir, Spawn: inProcessSpawn}); err == nil {
		t.Fatal("merge accepted a result with an unknown schema version")
	}
}

// TestDecodeScenarioJSON pins the sweep-record version guard: the
// round-trip works, a missing schema_version is rejected, and an unknown
// one is rejected.
func TestDecodeScenarioJSON(t *testing.T) {
	r, err := ScenarioSweep(scenario.MustLookup("waxman-zipf-16").Quick(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeScenarioJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SchemaVersion != SchemaVersion || rec.Scenario != "waxman-zipf-16" {
		t.Fatalf("decoded record header wrong: %+v", rec)
	}

	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "schema_version")
	missing, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeScenarioJSON(missing); err == nil {
		t.Fatal("record without schema_version was accepted")
	}

	raw["schema_version"] = json.RawMessage("999")
	future, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeScenarioJSON(future); err == nil {
		t.Fatal("record with unknown schema_version was accepted")
	}
}
