package harness

import (
	"testing"

	"repro/internal/des"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// The paper's figures are registry entries, not special cases: sweeping
// the paper-fig6 scenario must reproduce the Fig6 driver bit for bit.
func TestScenarioSweepMatchesFig6(t *testing.T) {
	opts := Quick(1)
	opts.NumHosts = 40
	opts.Loads = []float64{0.45, 0.9}
	opts.Duration = 6 * des.Second

	fig := Fig6(traffic.MixAudio, opts)
	sw, err := ScenarioSweep(scenario.MustLookup("paper-fig6"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Curves) != len(Fig6Combos) {
		t.Fatalf("%d curves, want %d", len(sw.Curves), len(Fig6Combos))
	}
	for ci, st := range Fig6Combos {
		curve := sw.Curves[ci]
		for i := range opts.Loads {
			if curve.WDB.Y[i] != fig.Curves[st].Y[i] {
				t.Fatalf("%v at %.2f: scenario %v vs driver %v",
					st, opts.Loads[i], curve.WDB.Y[i], fig.Curves[st].Y[i])
			}
			if curve.Layers[i] != fig.Layers[st][i] {
				t.Fatalf("%v layers diverged at %.2f", st, opts.Loads[i])
			}
		}
	}
}

// Same equivalence for Simulation I: paper-fig4 must reproduce Fig4.
func TestScenarioSweepMatchesFig4(t *testing.T) {
	opts := Quick(2)
	opts.Loads = []float64{0.5, 0.9}

	fig := Fig4(traffic.MixAudio, opts)
	sw, err := ScenarioSweep(scenario.MustLookup("paper-fig4"), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range opts.Loads {
		if sw.Curves[0].WDB.Y[i] != fig.SigmaRho.Y[i] {
			t.Fatalf("sigma-rho at %.2f: scenario %v vs driver %v",
				opts.Loads[i], sw.Curves[0].WDB.Y[i], fig.SigmaRho.Y[i])
		}
		if sw.Curves[1].WDB.Y[i] != fig.SRL.Y[i] {
			t.Fatalf("srl at %.2f: scenario %v vs driver %v",
				opts.Loads[i], sw.Curves[1].WDB.Y[i], fig.SRL.Y[i])
		}
	}
}

// The scenario sweep inherits the pool's determinism contract: parallel
// equals sequential bit for bit — including for partial membership,
// alternate topologies, and heterogeneous uplinks.
func TestScenarioSweepParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"waxman-zipf-16", "transit-stub-dsl-fibre"} {
		sc := scenario.MustLookup(name).Quick()

		seq := Options{Seed: 3, Sequential: true}
		a, err := ScenarioSweep(sc, seq)
		if err != nil {
			t.Fatal(err)
		}
		par := Options{Seed: 3, Workers: 3} // deliberately not a divisor
		b, err := ScenarioSweep(sc, par)
		if err != nil {
			t.Fatal(err)
		}
		if a.Delivered != b.Delivered {
			t.Fatalf("%s: delivered %d vs %d", name, a.Delivered, b.Delivered)
		}
		for ci := range a.Curves {
			for i := range a.Loads {
				if a.Curves[ci].WDB.Y[i] != b.Curves[ci].WDB.Y[i] ||
					a.Curves[ci].MeanDelay.Y[i] != b.Curves[ci].MeanDelay.Y[i] ||
					a.Curves[ci].Layers[i] != b.Curves[ci].Layers[i] {
					t.Fatalf("%s: %v at %.2f diverged between sequential and parallel",
						name, a.Curves[ci].Combo, a.Loads[i])
				}
			}
		}
	}
}

// Every registered scenario must build and run at quick scale — the same
// coverage `make scenarios` smokes from the CLI.
func TestEveryRegisteredScenarioRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-registry smoke; skipped in -short (the race job's quick suite)")
	}
	for _, sc := range scenario.All() {
		q := sc.Quick()
		r, err := ScenarioSweep(q, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if r.Delivered == 0 {
			t.Fatalf("%s: no deliveries at quick scale", sc.Name)
		}
		for _, c := range r.Curves {
			for i, y := range c.WDB.Y {
				if y <= 0 {
					t.Fatalf("%s: %v WDB %v at load %.2f", sc.Name, c.Combo, y, r.Loads[i])
				}
			}
		}
	}
}

func TestScenarioSweepRejectsInvalid(t *testing.T) {
	if _, err := ScenarioSweep(scenario.Scenario{Name: "broken"}, Options{}); err == nil {
		t.Fatal("invalid scenario must be rejected")
	}
}

func TestScenarioTableAndSummary(t *testing.T) {
	r, err := ScenarioSweep(scenario.MustLookup("ring-sparse").Quick(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Table().String() == "" || r.Summary() == "" {
		t.Fatal("empty rendering")
	}
}
