package harness

import (
	"encoding/json"
	"testing"

	"repro/internal/scenario"
)

// The churn scenario inherits the pool's determinism contract: parallel
// equals sequential bit for bit, disruption metrics included.
func TestChurnScenarioParallelMatchesSequential(t *testing.T) {
	sc := scenario.MustLookup("churn-waxman-16").Quick()
	a, err := ScenarioSweep(sc, Options{Seed: 3, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScenarioSweep(sc, Options{Seed: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Lost != b.Lost ||
		a.Joins != b.Joins || a.Leaves != b.Leaves || a.Regrafts != b.Regrafts {
		t.Fatalf("sequential %+v vs parallel %+v", a, b)
	}
	for ci := range a.Curves {
		for i := range a.Loads {
			if a.Curves[ci].WDB.Y[i] != b.Curves[ci].WDB.Y[i] ||
				a.Curves[ci].MeanDelay.Y[i] != b.Curves[ci].MeanDelay.Y[i] ||
				a.Curves[ci].Lost[i] != b.Curves[ci].Lost[i] {
				t.Fatalf("curve %v at %.2f diverged between sequential and parallel",
					a.Curves[ci].Combo, a.Loads[i])
			}
		}
	}
	if a.Joins == 0 || a.Leaves == 0 {
		t.Fatalf("quick churn sweep applied no churn: %d joins, %d leaves", a.Joins, a.Leaves)
	}
}

// Static regulated scenarios must sit inside their closed-form bounds;
// the bound columns must be populated for the regulated combos.
func TestScenarioBoundsHoldForStaticRegulated(t *testing.T) {
	sc := scenario.MustLookup("waxman-zipf-16").Quick()
	r, err := ScenarioSweep(sc, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Curves {
		for i := range r.Loads {
			if c.Bound[i] <= 0 {
				t.Fatalf("%v: no bound at load %.2f", c.Combo, r.Loads[i])
			}
			if c.WDB.Y[i] > c.Bound[i] {
				t.Fatalf("%v: WDB %v exceeds bound %v at load %.2f (static membership)",
					c.Combo, c.WDB.Y[i], c.Bound[i], r.Loads[i])
			}
		}
		if c.Violations != 0 {
			t.Fatalf("%v: %d violations under static membership", c.Combo, c.Violations)
		}
	}
}

func TestScenarioResultJSON(t *testing.T) {
	r, err := ScenarioSweep(scenario.MustLookup("churn-waxman-16").Quick(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Scenario  string    `json:"scenario"`
		Kind      string    `json:"kind"`
		Loads     []float64 `json:"loads"`
		Delivered uint64    `json:"delivered"`
		Joins     int       `json:"joins"`
		Curves    []struct {
			Combo      string      `json:"combo"`
			WDB        []float64   `json:"wdb"`
			Bound      []float64   `json:"bound"`
			Violations int         `json:"violations"`
			Lost       []uint64    `json:"lost"`
			WindowSec  float64     `json:"window_sec"`
			WindowMax  [][]float64 `json:"window_max"`
		} `json:"curves"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("JSON record does not parse: %v", err)
	}
	if rec.Scenario != "churn-waxman-16" || rec.Kind != "multi-group" {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if rec.Delivered == 0 || rec.Joins == 0 {
		t.Fatalf("record missing measurements: %+v", rec)
	}
	if len(rec.Curves) != 2 || len(rec.Curves[0].WDB) != len(rec.Loads) {
		t.Fatalf("curve shape wrong: %+v", rec.Curves)
	}
	// The transient series must survive into the record: one windowed
	// max-delay series per load, at the scenario's bucket width.
	c0 := rec.Curves[0]
	if c0.WindowSec != 0.5 || len(c0.WindowMax) != len(rec.Loads) || len(c0.WindowMax[0]) == 0 {
		t.Fatalf("windowed series missing from record: sec=%v series=%v", c0.WindowSec, c0.WindowMax)
	}
}

// Churn must actually disrupt something at quick scale — the disruption
// metrics are the point of the scenario — while the static byte-identity
// of churn-free scenarios is pinned by the golden tests.
func TestChurnScenarioReportsDisruption(t *testing.T) {
	r, err := ScenarioSweep(scenario.MustLookup("churn-waxman-16").Quick(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Joins == 0 || r.Leaves == 0 {
		t.Fatalf("no disruption recorded: joins=%d leaves=%d", r.Joins, r.Leaves)
	}
	// Regrafts need a departing *forwarder*; at quick scale churned-in
	// members are usually leaves, so regrafts are exercised by the core
	// control-plane tests instead (initial forwarders leave there).
}
