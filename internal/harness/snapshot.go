package harness

// SnapshotDiff is the checkpoint/restore differential harness: for every
// combo of a scenario sweep it runs the heaviest-load cell straight
// through, then again with a snapshot + restore at the halfway instant,
// and demands the two Results match bit for bit. CI drives it through
// "wdcsim -snapshot-diff" (make snapshot) so the restore contract is
// checked on real scenario workloads, not just the core unit fixtures.

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/scenario"
)

// snapshotNormalize zeroes the coordinator's load-balance diagnostics.
// Epoch count and stall share depend on how a run is sliced into Run
// calls — RunTo(mid) clamps epoch ends at mid even without a snapshot —
// so they sit outside the bit-identity contract, which covers the
// physics: every delivery statistic, loss counter, window entry, and
// fault outcome.
func snapshotNormalize(res core.Result) core.Result {
	res.Epochs = 0
	res.StallShare = 0
	return res
}

// SnapshotDiff checks run-to-end against run-to-half → snapshot →
// restore → run-to-end for each combo of the scenario at its heaviest
// load, and returns one report line per combo. Every supported
// configuration snapshots as of format v2; a combo is reported as
// skipped only if Snapshot refuses it (e.g. a future untagged event
// family). A non-nil error means at least one combo diverged — the
// restore contract is broken.
func SnapshotDiff(sc scenario.Scenario, opts Options) ([]string, error) {
	p, err := newSweepPlan(sc, opts)
	if err != nil {
		return nil, err
	}
	if p.single {
		return nil, fmt.Errorf("harness: scenario %s is single-hop: no session state to snapshot", p.sc.Name)
	}
	if len(p.loads) == 0 || len(p.combos) == 0 {
		return nil, fmt.Errorf("harness: scenario %s has an empty sweep", p.sc.Name)
	}
	li := len(p.loads) - 1
	var lines []string
	var diverged int
	for ci, combo := range p.combos {
		cfg := p.cfgs[li*len(p.combos)+ci]
		mid := des.Time(cfg.Duration) / 2

		ck := core.NewCheckpointer(cfg)
		ck.Start()
		ck.RunTo(mid)
		blob, err := ck.Snapshot()
		if err != nil {
			lines = append(lines, fmt.Sprintf("%v @ load %.2f: skipped (%v)", combo, p.loads[li], err))
			continue
		}
		restored, err := core.Restore(cfg, blob)
		if err != nil {
			return lines, fmt.Errorf("harness: %v: restore failed: %w", combo, err)
		}
		got := snapshotNormalize(restored.Finish())
		want := snapshotNormalize(core.Run(cfg))
		if !reflect.DeepEqual(got, want) {
			diverged++
			lines = append(lines, fmt.Sprintf("%v @ load %.2f: DIVERGED after restore at %v (snapshot %d bytes)",
				combo, p.loads[li], mid, len(blob)))
			continue
		}
		lines = append(lines, fmt.Sprintf("%v @ load %.2f: identical (%d deliveries, snapshot %d bytes, shards %d)",
			combo, p.loads[li], want.Delivered, len(blob), cfg.Shards))
	}
	if diverged > 0 {
		return lines, fmt.Errorf("harness: scenario %s: %d combo(s) diverged after checkpoint/restore", p.sc.Name, diverged)
	}
	return lines, nil
}
