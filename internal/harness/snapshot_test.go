package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/scenario"
)

// TestSnapshotDiffScenarios runs the differential harness over the
// scenario workloads CI exercises: every combo must restore
// bit-identically, sequential and sharded.
func TestSnapshotDiffScenarios(t *testing.T) {
	for _, name := range []string{"waxman-zipf-16", "churn-waxman-16", "outage-waxman-16"} {
		for _, shards := range []int{1, 4} {
			lines, err := SnapshotDiff(scenario.MustLookup(name).Quick(), Options{Seed: 2, Shards: shards})
			if err != nil {
				t.Fatalf("%s shards=%d: %v\n%s", name, shards, err, strings.Join(lines, "\n"))
			}
			for _, l := range lines {
				if !strings.Contains(l, "identical") {
					t.Errorf("%s shards=%d: combo not verified: %s", name, shards, l)
				}
			}
		}
	}
}

// TestSnapshotDiffCoversAdaptive pins total scheme coverage: the
// adaptive-scheme combo — which earlier snapshot format versions refused
// and the diff reported as skipped — now restore-verifies like every
// other combo.
func TestSnapshotDiffCoversAdaptive(t *testing.T) {
	sc := scenario.MustLookup("waxman-zipf-16").Quick()
	sc.Combos = append([]scenario.Combo(nil), sc.Combos...)
	sc.Combos = append(sc.Combos, scenario.Combo{Scheme: "adaptive"})
	lines, err := SnapshotDiff(sc, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var adaptive bool
	for _, l := range lines {
		if strings.Contains(l, "skipped") {
			t.Errorf("combo was skipped instead of verified: %s", l)
		}
		adaptive = adaptive || (strings.Contains(l, "adaptive") && strings.Contains(l, "identical"))
	}
	if !adaptive {
		t.Fatalf("adaptive combo did not restore-verify:\n%s", strings.Join(lines, "\n"))
	}
}

// BenchmarkSnapshotRoundTrip measures one snapshot + restore cycle on the
// 100k-host stress benchmark, at a shortened horizon so the checkpoint
// carries a realistic mid-run state without a minutes-long setup. The
// bytes metric records the snapshot size.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	sc := scenario.MustLookup("waxman-zipf-512")
	p, err := newSweepPlan(sc, Options{Seed: 1, Duration: des.Duration(des.Seconds(0.5))})
	if err != nil {
		b.Fatal(err)
	}
	cfg := p.cfgs[len(p.cfgs)-1]
	ck := core.NewCheckpointer(cfg)
	ck.Start()
	ck.RunTo(des.Time(cfg.Duration) / 2)
	blob, err := ck.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(blob)), "bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.Snapshot(); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Restore(cfg, blob); err != nil {
			b.Fatal(err)
		}
	}
}
