package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/traffic"
)

// The parallel harness must be a pure speed-up: identical results to the
// sequential sweep, bit for bit, at any worker count.

func TestFig4ParallelMatchesSequential(t *testing.T) {
	o := Quick(3)
	o.Loads = []float64{0.4, 0.7, 0.9}
	o.IncludeAdaptive = true

	seq := o
	seq.Sequential = true
	a := Fig4(traffic.MixHetero, seq)

	par := o
	par.Workers = 4
	b := Fig4(traffic.MixHetero, par)

	for i := range a.Loads {
		if a.SigmaRho.Y[i] != b.SigmaRho.Y[i] || a.SRL.Y[i] != b.SRL.Y[i] ||
			a.Adaptive.Y[i] != b.Adaptive.Y[i] {
			t.Fatalf("load %.2f: sequential %v/%v/%v vs parallel %v/%v/%v",
				a.Loads[i], a.SigmaRho.Y[i], a.SRL.Y[i], a.Adaptive.Y[i],
				b.SigmaRho.Y[i], b.SRL.Y[i], b.Adaptive.Y[i])
		}
	}
	if a.Crossover != b.Crossover || a.CrossoverOK != b.CrossoverOK {
		t.Fatalf("crossover diverged: %v/%v vs %v/%v",
			a.Crossover, a.CrossoverOK, b.Crossover, b.CrossoverOK)
	}
}

func TestFig6ParallelMatchesSequential(t *testing.T) {
	o := Quick(1)
	o.NumHosts = 40
	o.Loads = []float64{0.45, 0.9}
	o.Duration = 6 * des.Second

	seq := o
	seq.Sequential = true
	a := Fig6(traffic.MixAudio, seq)

	par := o
	par.Workers = 5 // deliberately not a divisor of the 12 points
	b := Fig6(traffic.MixAudio, par)

	for _, st := range Fig6Combos {
		for i := range a.Loads {
			if a.Curves[st].Y[i] != b.Curves[st].Y[i] {
				t.Fatalf("%v at %.2f: sequential %v vs parallel %v",
					st, a.Loads[i], a.Curves[st].Y[i], b.Curves[st].Y[i])
			}
			if a.Layers[st][i] != b.Layers[st][i] {
				t.Fatalf("%v layers diverged at %.2f", st, a.Loads[i])
			}
		}
	}
}

func TestLayerSweepParallelMatchesSequential(t *testing.T) {
	o := Quick(2)
	o.NumHosts = 150
	o.Loads = []float64{0.35, 0.65, 0.95}

	seq := o
	seq.Sequential = true
	a := LayerSweep(traffic.MixVideo, seq)
	par := o
	b := LayerSweep(traffic.MixVideo, par)
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// Same seed, same config => bit-identical WDB: the engines must be
// deterministic run to run (and hence safe to replicate across workers).
func TestEnginesAreDeterministic(t *testing.T) {
	sh := core.SingleHopConfig{Mix: traffic.MixVideo, Load: 0.8,
		Scheme: core.SchemeSRL, Duration: 7 * des.Second, Seed: 11}
	if a, b := core.RunSingleHop(sh), core.RunSingleHop(sh); a.WDB != b.WDB || a.Delivered != b.Delivered {
		t.Fatalf("single hop diverged: %v/%d vs %v/%d", a.WDB, a.Delivered, b.WDB, b.Delivered)
	}
	mg := core.Config{NumHosts: 40, Mix: traffic.MixAudio, Load: 0.7,
		Scheme: core.SchemeAdaptive, Duration: 5 * des.Second, Seed: 7}
	if a, b := core.Run(mg), core.Run(mg); a.WDB != b.WDB || a.Delivered != b.Delivered {
		t.Fatalf("session diverged: %v/%d vs %v/%d", a.WDB, a.Delivered, b.WDB, b.Delivered)
	}
}

// The specs-sharing invariant the sweeps rely on: flow envelopes are a
// function of (workload, mix, seed) only — never of the load axis.
func TestSpecsAreLoadInvariant(t *testing.T) {
	for _, w := range []core.Workload{core.WorkloadExtremal, core.WorkloadVBR} {
		lo := core.RunSingleHop(core.SingleHopConfig{Mix: traffic.MixHetero, Load: 0.4,
			Scheme: core.SchemeSigmaRho, Duration: des.Second, Seed: 5, Workload: w,
			EnvelopeHorizonSec: 5})
		hi := core.RunSingleHop(core.SingleHopConfig{Mix: traffic.MixHetero, Load: 0.9,
			Scheme: core.SchemeSigmaRho, Duration: des.Second, Seed: 5, Workload: w,
			EnvelopeHorizonSec: 5})
		if len(lo.Specs) != len(hi.Specs) {
			t.Fatalf("%v: spec counts differ", w)
		}
		for i := range lo.Specs {
			if lo.Specs[i] != hi.Specs[i] {
				t.Fatalf("%v: spec %d differs across loads: %+v vs %+v",
					w, i, lo.Specs[i], hi.Specs[i])
			}
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) || DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed collisions across neighbouring points")
	}
	for i := 0; i < 64; i++ {
		if DeriveSeed(uint64(i), i) == 0 {
			t.Fatal("DeriveSeed produced the reserved zero value")
		}
	}
}
