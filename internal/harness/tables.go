package harness

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/regulator"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// LayerRow is one row of Tables I–III.
type LayerRow struct {
	Load            float64
	CapacityAware   int
	RegulatedLayers int
}

// LayerSweepResult reproduces one of Tables I–III without running traffic:
// layer counts are a pure function of the tree construction.
type LayerSweepResult struct {
	Mix  traffic.Mix
	Rows []LayerRow
}

// LayerSweep builds the capacity-aware and regulated DSCT trees at every
// load and reports their layer counts (Tables I: audio, II: video,
// III: heterogeneous — the mix only matters through the load axis, as in
// the paper, where the same table shape repeats per workload).
func LayerSweep(mix traffic.Mix, opts Options) LayerSweepResult {
	opts.fill()
	res := LayerSweepResult{Mix: mix}
	// The regulated tree is load-independent: build it once.
	regulated := core.NewSession(core.Config{
		NumHosts: opts.NumHosts, Mix: mix, Load: 0.5, Scheme: core.SchemeSRL,
		Seed: opts.Seed,
	})
	regLayers := 0
	for _, tr := range regulated.Trees() {
		if l := tr.Layers(); l > regLayers {
			regLayers = l
		}
	}
	// The capacity-aware tree's fanout bound shrinks with load: build one
	// per load, in parallel (tree construction only, no traffic).
	res.Rows = make([]LayerRow, len(opts.Loads))
	runJobs(len(opts.Loads), opts, func(i int) {
		load := opts.Loads[i]
		ca := core.NewSession(core.Config{
			NumHosts: opts.NumHosts, Mix: mix, Load: load,
			Scheme: core.SchemeCapacityAware, Seed: opts.Seed,
		})
		caLayers := 0
		for _, tr := range ca.Trees() {
			if l := tr.Layers(); l > caLayers {
				caLayers = l
			}
		}
		res.Rows[i] = LayerRow{Load: load, CapacityAware: caLayers, RegulatedLayers: regLayers}
	})
	return res
}

// Table renders the rows in the paper's Tables I–III layout.
func (r LayerSweepResult) Table() *stats.Table {
	t := stats.NewTable("rho*K", "Capacity-aware DSCT", "DSCT with (σ,ρ,λ)")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.2f", row.Load),
			fmt.Sprintf("%d", row.CapacityAware),
			fmt.Sprintf("%d", row.RegulatedLayers))
	}
	return t
}

// Fig2Point is one sample of the (σ, ρ, λ) regulator operation trace.
type Fig2Point struct {
	T       float64 // seconds
	On      bool
	CumIn   float64 // bits entered
	CumOut  float64 // bits emitted
	Backlog float64 // bits queued
}

// Fig2Trace reproduces Fig. 2: the zig-zag cumulative-output curve of one
// (σ, ρ, λ) regulator fed by a greedy (σ, ρ) flow, sampled on a fine grid.
func Fig2Trace(sigma, rho, c float64, dur des.Duration, samples int) []Fig2Point {
	if samples < 2 {
		panic("harness: need at least two samples")
	}
	eng := des.New()
	var out float64
	reg := regulator.NewSRL(eng, sigma, rho, c, func(p traffic.Packet) { out += p.Size })
	var in float64
	src := traffic.NewGreedy(0, sigma, rho, sigma/16)
	src.Start(eng, dur, func(p traffic.Packet) {
		in += p.Size
		reg.Enqueue(p)
	})
	reg.StartCycle(0)
	points := make([]Fig2Point, 0, samples)
	step := dur / des.Duration(samples-1)
	for i := 0; i < samples; i++ {
		eng.RunUntil(des.Duration(i) * step)
		points = append(points, Fig2Point{
			T:       eng.Now().Seconds(),
			On:      reg.On(),
			CumIn:   in,
			CumOut:  out,
			Backlog: reg.Backlog(),
		})
	}
	reg.StopCycle()
	return points
}

// Fig2Table renders the trace.
func Fig2Table(points []Fig2Point) *stats.Table {
	t := stats.NewTable("t [s]", "state", "cum-in [bits]", "cum-out [bits]", "backlog [bits]")
	for _, p := range points {
		state := "off"
		if p.On {
			state = "on"
		}
		t.AddRow(fmt.Sprintf("%.4f", p.T), state,
			fmt.Sprintf("%.0f", p.CumIn), fmt.Sprintf("%.0f", p.CumOut),
			fmt.Sprintf("%.0f", p.Backlog))
	}
	return t
}

// RhoStarTable tabulates Theorems 3/4: the rate threshold per K, its
// aggregate-utilisation form, and the control-range fraction, with the
// K→∞ limits on the last row.
func RhoStarTable(maxK int) *stats.Table {
	if maxK < 2 {
		panic("harness: maxK must be >= 2")
	}
	t := stats.NewTable("K", "rho* homog", "K*rho* homog", "range homog",
		"rho* hetero", "K*rho* hetero", "range hetero")
	for k := 2; k <= maxK; k++ {
		hom := calculus.RhoStarHomog(k)
		het := calculus.RhoStarHetero(k)
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.5f", hom),
			fmt.Sprintf("%.4f", float64(k)*hom),
			fmt.Sprintf("%.4f", calculus.ControlRange(k, hom)),
			fmt.Sprintf("%.5f", het),
			fmt.Sprintf("%.4f", float64(k)*het),
			fmt.Sprintf("%.4f", calculus.ControlRange(k, het)))
	}
	t.AddRow("inf", "", "0.7321", fmt.Sprintf("%.4f", calculus.HomogRangeLimit),
		"", "0.7913", fmt.Sprintf("%.4f", calculus.HeteroRangeLimit))
	return t
}

// ImprovementTable tabulates Theorems 5/6: the guaranteed Dg/D̂g lower
// bound across the load range for a given K.
func ImprovementTable(k int, loads []float64) *stats.Table {
	if len(loads) == 0 {
		loads = PaperLoads
	}
	t := stats.NewTable("rho*K", "bound homog", "bound hetero")
	for _, x := range loads {
		rho := x / float64(k)
		t.AddRow(fmt.Sprintf("%.2f", x),
			fmt.Sprintf("%.3f", calculus.ImprovementHomog(k, rho)),
			fmt.Sprintf("%.3f", calculus.ImprovementHetero(k, rho)))
	}
	return t
}
