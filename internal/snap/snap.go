// Package snap is the flat binary snapshot codec: a versioned header
// followed by length-prefixed records of fixed-width little-endian
// primitives. It is deliberately dumb — no reflection, no varints, no
// compression — so encoding is a straight memory copy and the byte
// layout is specifiable in a dozen lines (DESIGN.md §11).
//
// A snapshot is
//
//	magic "wdcsnap\n" | u32 version | record*
//
// and each record is
//
//	u16 type | u32 length | payload
//
// Record types and payload layouts belong to the consumer (the core
// checkpointer); snap only frames them. Writers build one record at a
// time between Begin and End; readers iterate records with Next and pull
// primitives in the exact order they were written. Both sides accumulate
// the first error and make every later call a cheap no-op, so encode and
// decode paths read as straight-line code with a single Err check at the
// end.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Magic identifies a snapshot byte stream. The trailing newline guards
// against text-mode mangling, in the spirit of the PNG signature.
const Magic = "wdcsnap\n"

// Writer serializes records into an in-memory buffer. Records are framed
// in place: Begin reserves a four-byte length slot and End backpatches it,
// so a payload is written exactly once — no staging buffer, no copy per
// record.
type Writer struct {
	buf     []byte // header + ended records + the open record so far
	lenAt   int    // offset of the open record's length slot
	recType uint16
	inRec   bool
	err     error
}

// NewWriter starts a snapshot with the given format version.
func NewWriter(version uint32) *Writer { return NewWriterSize(version, 1<<12) }

// NewWriterSize is NewWriter with a capacity hint — pass the previous
// snapshot's size when checkpointing repeatedly and the whole stream is
// built in one allocation instead of log(size) grow-and-copy doublings.
func NewWriterSize(version uint32, sizeHint int) *Writer {
	if sizeHint < 1<<12 {
		sizeHint = 1 << 12
	}
	w := &Writer{buf: make([]byte, 0, sizeHint)}
	w.buf = append(w.buf, Magic...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, version)
	return w
}

// Begin opens a record of the given type. Nesting records is a bug.
func (w *Writer) Begin(typ uint16) {
	if w.err != nil {
		return
	}
	if w.inRec {
		w.fail(fmt.Errorf("snap: Begin(%d) inside open record %d", typ, w.recType))
		return
	}
	w.inRec = true
	w.recType = typ
	w.buf = binary.LittleEndian.AppendUint16(w.buf, typ)
	w.lenAt = len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0)
}

// End closes the open record, backpatching its length slot.
func (w *Writer) End() {
	if w.err != nil {
		return
	}
	if !w.inRec {
		w.fail(fmt.Errorf("snap: End without Begin"))
		return
	}
	n := len(w.buf) - w.lenAt - 4
	if int64(n) > math.MaxUint32 {
		w.fail(fmt.Errorf("snap: record %d payload %d bytes overflows length prefix", w.recType, n))
		return
	}
	binary.LittleEndian.PutUint32(w.buf[w.lenAt:], uint32(n))
	w.inRec = false
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// open reports whether a record is open for primitive writes, latching an
// error if not. The happy path is a two-flag check that inlines into the
// primitive writers; the error path is split out to keep it that way.
func (w *Writer) open() bool {
	if w.err == nil && w.inRec {
		return true
	}
	w.openFail()
	return false
}

func (w *Writer) openFail() {
	if w.err == nil {
		w.fail(fmt.Errorf("snap: write outside record"))
	}
}

// U8 appends an unsigned byte to the open record.
func (w *Writer) U8(v uint8) {
	if w.open() {
		w.buf = append(w.buf, v)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	if w.open() {
		w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	if w.open() {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	}
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	if w.open() {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	}
}

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern, so every value —
// including NaN payloads and signed zeros — round-trips exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Len appends a collection length as a uint32, rejecting negatives and
// overflow so decoders can trust the prefix.
func (w *Writer) Len(n int) {
	if n < 0 || int64(n) > math.MaxUint32 {
		w.fail(fmt.Errorf("snap: length %d out of range", n))
		return
	}
	w.U32(uint32(n))
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Len(len(b))
	if w.open() {
		w.buf = append(w.buf, b...)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	if w.open() {
		w.buf = append(w.buf, s...)
	}
}

// Err returns the first error, if any.
func (w *Writer) Err() error { return w.err }

// Finish returns the completed snapshot bytes, or the first error. An
// unclosed record is an error: it means an encoder path forgot End.
func (w *Writer) Finish() ([]byte, error) {
	if w.err == nil && w.inRec {
		w.fail(fmt.Errorf("snap: Finish with open record %d", w.recType))
	}
	if w.err != nil {
		return nil, w.err
	}
	return w.buf, nil
}

// Reader decodes a snapshot produced by Writer.
type Reader struct {
	data    []byte
	pos     int
	rec     []byte // payload of the current record
	rpos    int
	recType uint16
	err     error
}

// NewReader validates the header and returns a reader plus the stream's
// format version. Callers check the version before touching records.
func NewReader(data []byte) (*Reader, uint32, error) {
	if len(data) < len(Magic)+4 {
		return nil, 0, fmt.Errorf("snap: %d bytes is shorter than the header", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, 0, fmt.Errorf("snap: bad magic %q", data[:len(Magic)])
	}
	version := binary.LittleEndian.Uint32(data[len(Magic):])
	return &Reader{data: data, pos: len(Magic) + 4}, version, nil
}

// Next advances to the next record, returning its type. It returns false
// at end of stream or after an error; an under-consumed previous record
// is an error (the decode schema disagrees with the encode schema).
func (r *Reader) Next() (uint16, bool) {
	if r.err != nil {
		return 0, false
	}
	if r.rpos != len(r.rec) {
		r.fail(fmt.Errorf("snap: record %d has %d unread payload bytes", r.recType, len(r.rec)-r.rpos))
		return 0, false
	}
	if r.pos == len(r.data) {
		return 0, false
	}
	if len(r.data)-r.pos < 6 {
		r.fail(fmt.Errorf("snap: truncated record header at offset %d", r.pos))
		return 0, false
	}
	r.recType = binary.LittleEndian.Uint16(r.data[r.pos:])
	n := int(binary.LittleEndian.Uint32(r.data[r.pos+2:]))
	r.pos += 6
	if len(r.data)-r.pos < n {
		r.fail(fmt.Errorf("snap: record %d claims %d bytes, %d remain", r.recType, n, len(r.data)-r.pos))
		return 0, false
	}
	r.rec = r.data[r.pos : r.pos+n]
	r.rpos = 0
	r.pos += n
	return r.recType, true
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.rec)-r.rpos < n {
		r.fail(fmt.Errorf("snap: record %d payload short: want %d bytes, %d left", r.recType, n, len(r.rec)-r.rpos))
		return nil
	}
	b := r.rec[r.rpos : r.rpos+n]
	r.rpos += n
	return b
}

// U8 reads an unsigned byte from the current record.
func (r *Reader) U8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a one-byte bool, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	switch v := r.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("snap: record %d bool byte is %d", r.recType, v))
		return false
	}
}

// Len reads a collection length written by Writer.Len, bounding it by
// the bytes remaining in the record (each element costs at least one
// byte) so corrupt prefixes cannot drive huge allocations.
func (r *Reader) Len() int {
	n := int(r.U32())
	if r.err == nil && n > len(r.rec)-r.rpos {
		r.fail(fmt.Errorf("snap: record %d length prefix %d exceeds %d remaining bytes", r.recType, n, len(r.rec)-r.rpos))
		return 0
	}
	return n
}

// Bytes reads a length-prefixed byte slice (a copy).
func (r *Reader) Bytes() []byte {
	n := r.Len()
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Remaining reports the unread payload bytes in the current record.
func (r *Reader) Remaining() int { return len(r.rec) - r.rpos }

// Err returns the first error, if any.
func (r *Reader) Err() error { return r.err }
