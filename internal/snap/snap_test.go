package snap

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	w := NewWriter(7)
	w.Begin(3)
	w.U8(0xab)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.F64(math.Pi)
	w.F64(math.Copysign(0, -1))
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.String("hello, snapshot")
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.End()
	w.Begin(9)
	w.Len(2)
	w.U8(5)
	w.U8(6)
	w.End()
	data, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	r, version, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if version != 7 {
		t.Fatalf("version = %d, want 7", version)
	}
	typ, ok := r.Next()
	if !ok || typ != 3 {
		t.Fatalf("Next = (%d, %v), want (3, true)", typ, ok)
	}
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("negative zero lost: %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("-Inf lost: %v", got)
	}
	if got := r.Bool(); !got {
		t.Errorf("Bool = false, want true")
	}
	if got := r.Bool(); got {
		t.Errorf("Bool = true, want false")
	}
	if got := r.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	typ, ok = r.Next()
	if !ok || typ != 9 {
		t.Fatalf("second Next = (%d, %v), want (9, true)", typ, ok)
	}
	if n := r.Len(); n != 2 {
		t.Fatalf("Len = %d", n)
	}
	if a, b := r.U8(), r.U8(); a != 5 || b != 6 {
		t.Errorf("elements = %d, %d", a, b)
	}
	if _, ok := r.Next(); ok {
		t.Fatalf("Next past end returned a record")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, _, err := NewReader([]byte("not a snapshot stream")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, err := NewReader([]byte("wdc")); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTruncationDetected(t *testing.T) {
	w := NewWriter(1)
	w.Begin(1)
	w.U64(12345)
	w.End()
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(Magic) + 4 + 1; cut < len(data); cut++ {
		r, _, err := NewReader(data[:cut])
		if err != nil {
			continue // header itself truncated
		}
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			r.U64()
		}
		if r.Err() == nil {
			t.Fatalf("truncation at %d bytes undetected", cut)
		}
	}
}

func TestShortReadDetected(t *testing.T) {
	w := NewWriter(1)
	w.Begin(1)
	w.U8(1)
	w.End()
	data, _ := w.Finish()
	r, _, _ := NewReader(data)
	r.Next()
	r.U8()
	if r.U64(); r.Err() == nil {
		t.Fatal("read past record payload undetected")
	}
}

func TestUnderReadDetected(t *testing.T) {
	w := NewWriter(1)
	w.Begin(1)
	w.U64(1)
	w.End()
	w.Begin(2)
	w.End()
	data, _ := w.Finish()
	r, _, _ := NewReader(data)
	r.Next()
	// Skip the payload entirely, then try to advance.
	if _, ok := r.Next(); ok || r.Err() == nil {
		t.Fatal("under-consumed record undetected")
	}
}

func TestBogusLengthPrefixRejected(t *testing.T) {
	w := NewWriter(1)
	w.Begin(1)
	w.U32(1 << 30) // length prefix far beyond the record payload
	w.End()
	data, _ := w.Finish()
	r, _, _ := NewReader(data)
	r.Next()
	if r.Len(); r.Err() == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func TestBadBoolRejected(t *testing.T) {
	w := NewWriter(1)
	w.Begin(1)
	w.U8(7)
	w.End()
	data, _ := w.Finish()
	r, _, _ := NewReader(data)
	r.Next()
	if r.Bool(); r.Err() == nil {
		t.Fatal("bool byte 7 accepted")
	}
}

func TestWriterMisuse(t *testing.T) {
	w := NewWriter(1)
	w.U64(1) // outside any record
	if _, err := w.Finish(); err == nil {
		t.Fatal("write outside record accepted")
	}

	w = NewWriter(1)
	w.Begin(1)
	w.Begin(2)
	if _, err := w.Finish(); err == nil {
		t.Fatal("nested Begin accepted")
	}

	w = NewWriter(1)
	w.Begin(1)
	if _, err := w.Finish(); err == nil {
		t.Fatal("Finish with open record accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	build := func() []byte {
		w := NewWriter(2)
		w.Begin(4)
		w.String("abc")
		w.F64(1.5)
		w.End()
		b, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("same writes produced different bytes")
	}
}
