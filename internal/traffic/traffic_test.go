package traffic

import (
	"math"
	"testing"

	"repro/internal/des"
)

// runSource collects all packets a source emits over dur seconds.
func runSource(src Source, dur float64) []Packet {
	eng := des.New()
	var pkts []Packet
	until := des.Seconds(dur)
	src.Start(eng, until, func(p Packet) { pkts = append(pkts, p) })
	eng.RunUntil(until)
	return pkts
}

func measuredRate(pkts []Packet, dur float64) float64 {
	total := 0.0
	for _, p := range pkts {
		total += p.Size
	}
	return total / dur
}

func TestCBRRateAndSpacing(t *testing.T) {
	src := NewCBR(0, 100_000, 1000)
	pkts := runSource(src, 10)
	rate := measuredRate(pkts, 10)
	if math.Abs(rate-100_000)/100_000 > 0.01 {
		t.Fatalf("CBR rate = %v", rate)
	}
	gap := des.Seconds(1000.0 / 100_000)
	for i := 1; i < len(pkts); i++ {
		if d := pkts[i].CreatedAt - pkts[i-1].CreatedAt; d != gap {
			t.Fatalf("gap %d = %v, want %v", i, d, gap)
		}
	}
}

func TestCBRIDsMonotone(t *testing.T) {
	pkts := runSource(NewCBR(3, 50_000, 500), 2)
	for i, p := range pkts {
		if p.ID != uint64(i) || p.Flow != 3 {
			t.Fatalf("packet %d: id=%d flow=%d", i, p.ID, p.Flow)
		}
	}
}

func TestCBRStopsAtHorizon(t *testing.T) {
	pkts := runSource(NewCBR(0, 1e6, 1000), 1)
	for _, p := range pkts {
		if p.CreatedAt >= des.Seconds(1) {
			t.Fatalf("packet emitted at %v past horizon", p.CreatedAt)
		}
	}
}

func TestCBRValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewCBR(0, 0, 100) },
		func() { NewCBR(0, 100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPoissonRate(t *testing.T) {
	src := NewPoisson(0, 200_000, 1000, 42)
	pkts := runSource(src, 30)
	rate := measuredRate(pkts, 30)
	if math.Abs(rate-200_000)/200_000 > 0.05 {
		t.Fatalf("Poisson rate = %v", rate)
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	a := runSource(NewPoisson(0, 1e5, 1000, 9), 5)
	b := runSource(NewPoisson(0, 1e5, 1000, 9), 5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGreedyBurstThenSteady(t *testing.T) {
	src := NewGreedy(0, 10_000, 50_000, 1000)
	pkts := runSource(src, 4)
	// First 10 packets form the instantaneous burst.
	burst := 0
	for _, p := range pkts {
		if p.CreatedAt == pkts[0].CreatedAt {
			burst++
		}
	}
	if burst != 10 {
		t.Fatalf("burst packets = %d, want 10", burst)
	}
	// Tail runs at ρ: total ≈ σ + ρ·T.
	total := 0.0
	for _, p := range pkts {
		total += p.Size
	}
	want := 10_000 + 50_000*4.0
	if math.Abs(total-want)/want > 0.02 {
		t.Fatalf("greedy total bits = %v, want ~%v", total, want)
	}
}

func TestGreedyConformsToOwnEnvelope(t *testing.T) {
	src := NewGreedy(0, 20_000, 100_000, 1000)
	eng := des.New()
	meter := NewMeter(100_000)
	until := des.Seconds(5)
	src.Start(eng, until, func(p Packet) { meter.Observe(eng.Now(), p.Size) })
	eng.RunUntil(until)
	if !meter.Conforms(20_000) {
		t.Fatalf("greedy source violates its envelope: σ̂=%v", meter.Sigma())
	}
	// And the measured σ should be nearly the configured burst (tight).
	if meter.Sigma() < 15_000 {
		t.Fatalf("measured σ %v suspiciously loose vs configured 20000", meter.Sigma())
	}
}

func TestAudioLongRunRate(t *testing.T) {
	src := PaperAudio(0, 7)
	pkts := runSource(src, 120)
	rate := measuredRate(pkts, 120)
	if math.Abs(rate-AudioRate)/AudioRate > 0.15 {
		t.Fatalf("audio long-run rate = %v, want ~%v", rate, AudioRate)
	}
}

func TestAudioIsBursty(t *testing.T) {
	src := PaperAudio(0, 3)
	pkts := runSource(src, 60)
	// There must be silence gaps much longer than the packet interval.
	peakGap := des.Seconds(src.PacketSize / src.PeakRate())
	longGaps := 0
	for i := 1; i < len(pkts); i++ {
		if pkts[i].CreatedAt-pkts[i-1].CreatedAt > 10*peakGap {
			longGaps++
		}
	}
	if longGaps < 5 {
		t.Fatalf("audio shows only %d silence gaps in 60s", longGaps)
	}
}

func TestAudioPeakRateIdentity(t *testing.T) {
	src := PaperAudio(0, 1)
	onFrac := 0.250 / (0.250 + 0.060)
	want := AudioRate / onFrac
	if math.Abs(src.PeakRate()-want) > 1 {
		t.Fatalf("peak = %v, want %v", src.PeakRate(), want)
	}
}

func TestVideoLongRunRate(t *testing.T) {
	src := PaperVideo(0, 11)
	pkts := runSource(src, 60)
	rate := measuredRate(pkts, 60)
	if math.Abs(rate-VideoRate)/VideoRate > 0.08 {
		t.Fatalf("video long-run rate = %v, want ~%v", rate, VideoRate)
	}
}

func TestVideoGOPStructure(t *testing.T) {
	// I frames (every 12th) must be larger on average than B frames.
	v := NewVideo(0, VideoRate, 5)
	v.JitterSig = 0  // isolate the deterministic pattern
	v.SceneBoost = 0 // disable scene changes
	var iSum, bSum float64
	var iN, bN int
	for f := 0; f < 120; f++ {
		size := v.frameSize()
		switch f % 12 {
		case 0:
			iSum += size
			iN++
		case 1, 2:
			bSum += size
			bN++
		}
	}
	iMean, bMean := iSum/float64(iN), bSum/float64(bN)
	if iMean <= 4.5*bMean || iMean >= 5.5*bMean {
		t.Fatalf("I/B ratio = %v, want ~5", iMean/bMean)
	}
}

func TestVideoFramesPacketised(t *testing.T) {
	src := PaperVideo(0, 13)
	pkts := runSource(src, 2)
	for _, p := range pkts {
		if p.Size <= 0 || p.Size > src.PacketSize {
			t.Fatalf("packet size %v outside (0, MTU]", p.Size)
		}
	}
	// Multiple packets share each frame instant.
	sameInstant := 0
	for i := 1; i < len(pkts); i++ {
		if pkts[i].CreatedAt == pkts[i-1].CreatedAt {
			sameInstant++
		}
	}
	if sameInstant == 0 {
		t.Fatal("no frame produced multiple packets")
	}
}

func TestMixProperties(t *testing.T) {
	cases := []struct {
		mix   Mix
		total float64
		homog bool
	}{
		{MixAudio, 3 * AudioRate, true},
		{MixVideo, 3 * VideoRate, true},
		{MixHetero, VideoRate + 2*AudioRate, false},
	}
	for _, c := range cases {
		if c.mix.TotalRate() != c.total {
			t.Fatalf("%v total = %v", c.mix, c.mix.TotalRate())
		}
		if c.mix.Homogeneous() != c.homog {
			t.Fatalf("%v homogeneous = %v", c.mix, c.mix.Homogeneous())
		}
		srcs := c.mix.Sources(1)
		if len(srcs) != 3 {
			t.Fatalf("%v sources = %d", c.mix, len(srcs))
		}
		sum := 0.0
		for i, s := range srcs {
			if s == nil {
				t.Fatalf("%v source %d nil", c.mix, i)
			}
			sum += s.AvgRate()
		}
		if math.Abs(sum-c.total) > 1 {
			t.Fatalf("%v source rates sum to %v", c.mix, sum)
		}
	}
}

func TestMixString(t *testing.T) {
	if MixAudio.String() == "" || MixVideo.String() == "" || MixHetero.String() == "" {
		t.Fatal("mix names must be non-empty")
	}
	if Mix(99).String() == "" {
		t.Fatal("unknown mix should still format")
	}
}

func TestPacketDelay(t *testing.T) {
	p := Packet{CreatedAt: des.Seconds(1)}
	if d := p.Delay(des.Seconds(3)); d != des.Seconds(2) {
		t.Fatalf("delay = %v", d)
	}
}

func BenchmarkVideoGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := NewVideo(0, VideoRate, uint64(i))
		eng := des.New()
		until := des.Seconds(1)
		src.Start(eng, until, func(Packet) {})
		eng.RunUntil(until)
	}
}

func BenchmarkAudioGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := NewAudio(0, AudioRate, uint64(i))
		eng := des.New()
		until := des.Seconds(10)
		src.Start(eng, until, func(Packet) {})
		eng.RunUntil(until)
	}
}
