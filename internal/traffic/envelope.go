package traffic

import "repro/internal/des"

// Envelope is a (σ, ρ) arrival-curve constraint: in any interval [t1, t2]
// the stream delivers at most σ + ρ·(t2−t1) bits (the paper's R ~ (σ, ρ)).
type Envelope struct {
	Sigma float64 // burst allowance, bits
	Rho   float64 // long-term rate bound, bits/second
}

// Bits returns the maximum bits the envelope admits over a span.
func (e Envelope) Bits(span des.Duration) float64 {
	return e.Sigma + e.Rho*span.Seconds()
}

// Meter measures the tightest σ for a fixed ρ over an observed arrival
// stream, streaming in O(1) space:
//
//	σ̂ = max_{t1<t2} [A(t2)−A(t1) − ρ(t2−t1)]
//	   = max_t [ (A(t)−ρt) − min_{s<=t} (A(s)−ρs) ]
//
// where A is cumulative arrivals. Feeding the Meter the flow's long-run
// average rate yields the σ the regulators should be configured with.
type Meter struct {
	rho     float64
	cum     float64
	minSeen float64
	sigma   float64
	n       uint64
	primed  bool
}

// NewMeter returns a meter for rate bound rho (bits/second).
func NewMeter(rho float64) *Meter {
	if rho < 0 {
		panic("traffic: meter rho must be non-negative")
	}
	return &Meter{rho: rho}
}

// Observe folds in an arrival of `bits` at time t. Arrivals must be in
// non-decreasing time order.
func (m *Meter) Observe(t des.Time, bits float64) {
	// Evaluate the deviation just before this arrival so the minimum can
	// be taken at arbitrary points between arrivals.
	dev := m.cum - m.rho*t.Seconds()
	if !m.primed || dev < m.minSeen {
		m.minSeen = dev
		m.primed = true
	}
	m.cum += bits
	if after := m.cum - m.rho*t.Seconds() - m.minSeen; after > m.sigma {
		m.sigma = after
	}
	m.n++
}

// Sigma returns the tightest burst estimate so far.
func (m *Meter) Sigma() float64 { return m.sigma }

// Count returns the number of arrivals observed.
func (m *Meter) Count() uint64 { return m.n }

// TotalBits returns cumulative observed arrivals.
func (m *Meter) TotalBits() float64 { return m.cum }

// Conforms reports whether every prefix of the observed stream satisfied
// the envelope (sigma, rho) for the meter's rho.
func (m *Meter) Conforms(sigma float64) bool { return m.sigma <= sigma+1e-9 }

// MeasureEnvelope runs src in isolation for the given duration and returns
// the tightest (σ, ρ) envelope at ρ = margin × AvgRate. This is how the
// experiment harness derives regulator parameters for the VBR media models
// — the paper assumes flows arrive already characterised by (σᵢ, ρᵢ).
func MeasureEnvelope(src Source, margin float64, dur des.Duration) Envelope {
	if margin <= 0 {
		panic("traffic: envelope margin must be positive")
	}
	eng := des.New()
	rho := margin * src.AvgRate()
	meter := NewMeter(rho)
	src.Start(eng, dur, func(p Packet) { meter.Observe(eng.Now(), p.Size) })
	eng.RunUntil(dur)
	return Envelope{Sigma: meter.Sigma(), Rho: rho}
}
