package traffic

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/xrand"
)

// Paper workloads (Section VI): "64Kbps audio streams and 1.5Mbps MPEG-1
// video streams", both explicitly variable-bit-rate. The models below
// reproduce the mean rates with realistic burst structure.
const (
	// AudioRate is the paper's audio stream average rate.
	AudioRate = 64_000 // bits/second
	// VideoRate is the paper's MPEG-1 video stream average rate.
	VideoRate = 1_500_000 // bits/second
)

// Audio is a VBR voice model: exponentially distributed talkspurts and
// silence gaps (Brady's on/off model). During a talkspurt the codec emits
// fixed packets at the peak rate; silences emit nothing. The peak rate is
// chosen so the long-run average equals Rate.
type Audio struct {
	Flow        int
	Rate        float64      // long-run average, bits/second
	PacketSize  float64      // bits (default 1280 = 160-byte frames)
	MeanTalk    des.Duration // mean talkspurt length
	MeanSilence des.Duration // mean silence length

	rng    *xrand.Rand
	nextID uint64
}

// NewAudio returns a talkspurt audio source scaled to the given average
// rate. The default on/off scales (250 ms talk, 150 ms silence) sit at
// packet-burst granularity: the resulting (σ, ρ) envelope is a few tens of
// kilobits, matching the sub-second worst-case delays of the paper's
// Fig. 4(a) (classic Brady telephony scales of ~1 s talkspurts would give
// envelopes hundreds of kilobits deep and swamp the load dependence the
// experiment sweeps).
func NewAudio(flow int, rate float64, seed uint64) *Audio {
	if rate <= 0 {
		panic("traffic: audio rate must be positive")
	}
	return &Audio{
		Flow:        flow,
		Rate:        rate,
		PacketSize:  1280,
		MeanTalk:    des.Millis(250),
		MeanSilence: des.Millis(60),
		rng:         xrand.New(seed),
	}
}

// Name implements Source.
func (a *Audio) Name() string { return fmt.Sprintf("audio-%.0fbps", a.Rate) }

// AvgRate implements Source.
func (a *Audio) AvgRate() float64 { return a.Rate }

// PeakRate returns the on-state emission rate.
func (a *Audio) PeakRate() float64 {
	onFrac := a.MeanTalk.Seconds() / (a.MeanTalk.Seconds() + a.MeanSilence.Seconds())
	return a.Rate / onFrac
}

// Start implements Source.
func (a *Audio) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	peak := a.PeakRate()
	interval := des.Seconds(a.PacketSize / peak)
	var talk func(end des.Time)
	var silence func()
	talk = func(end des.Time) {
		now := eng.Now()
		if now >= until {
			return
		}
		if now >= end {
			silence()
			return
		}
		emit(Packet{ID: a.nextID, Flow: a.Flow, Size: a.PacketSize, CreatedAt: now})
		a.nextID++
		eng.ScheduleIn(interval, func() { talk(end) })
	}
	silence = func() {
		gap := des.Seconds(a.rng.Exp(a.MeanSilence.Seconds()))
		eng.ScheduleIn(gap, func() {
			if eng.Now() >= until {
				return
			}
			dur := des.Seconds(a.rng.Exp(a.MeanTalk.Seconds()))
			talk(eng.Now() + dur)
		})
	}
	// Begin with a talkspurt so measurement starts promptly.
	eng.ScheduleIn(0, func() {
		dur := des.Seconds(a.rng.Exp(a.MeanTalk.Seconds()))
		talk(eng.Now() + dur)
	})
}

// Video is an MPEG-1-style VBR model: frames at a fixed rate, sizes
// following the 12-frame IBBPBBPBBPBB group-of-pictures pattern with
// I:P:B size ratio 5:2:1 and per-frame lognormal jitter, packetised into
// MTU-sized packets. The scale is normalised so the long-run average rate
// equals Rate.
type Video struct {
	Flow       int
	Rate       float64 // long-run average, bits/second
	FPS        float64
	PacketSize float64 // bits per packet (MTU)
	JitterSig  float64 // lognormal sigma for frame-size jitter
	// SceneMean is the mean spacing of scene changes; at each scene
	// change the next I-frame is SceneBoost× its normal size, modelling
	// the intra-coded refresh real MPEG-1 emits on a cut. SceneBoost <= 1
	// disables scene changes.
	SceneMean  des.Duration
	SceneBoost float64

	rng          *xrand.Rand
	nextID       uint64
	frame        int
	scenePending bool
}

// gopPattern holds relative frame weights for IBBPBBPBBPBB.
var gopPattern = [12]float64{5, 1, 1, 2, 1, 1, 2, 1, 1, 2, 1, 1}

// gopWeight is the sum of gopPattern.
const gopWeight = 5 + 2*3 + 1*8

// NewVideo returns an MPEG-1-style video source at the given average rate,
// 25 frames/second, 10000-bit packets, and moderate frame jitter.
func NewVideo(flow int, rate float64, seed uint64) *Video {
	if rate <= 0 {
		panic("traffic: video rate must be positive")
	}
	return &Video{
		Flow:       flow,
		Rate:       rate,
		FPS:        25,
		PacketSize: 10_000,
		JitterSig:  0.2,
		SceneMean:  des.Seconds(4),
		SceneBoost: 2.5,
		rng:        xrand.New(seed),
	}
}

// Name implements Source.
func (v *Video) Name() string { return fmt.Sprintf("video-%.0fbps", v.Rate) }

// AvgRate implements Source.
func (v *Video) AvgRate() float64 { return v.Rate }

// frameSize draws the size in bits of the next frame.
func (v *Video) frameSize() float64 {
	meanFrame := v.Rate / v.FPS
	unit := meanFrame * 12 / gopWeight
	idx := v.frame % 12
	base := unit * gopPattern[idx]
	v.frame++
	if v.SceneBoost > 1 {
		// Bernoulli scene-change arrival at rate 1/SceneMean.
		if v.rng.Bool(1 / (v.FPS * v.SceneMean.Seconds())) {
			v.scenePending = true
		}
		if v.scenePending && idx == 0 {
			v.scenePending = false
			base *= v.SceneBoost
		}
	}
	// Lognormal jitter with unit mean: exp(N(−σ²/2, σ)).
	jitter := v.rng.LogNormal(-v.JitterSig*v.JitterSig/2, v.JitterSig)
	return base * jitter
}

// Start implements Source.
func (v *Video) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	frameGap := des.Seconds(1 / v.FPS)
	var tick func()
	tick = func() {
		now := eng.Now()
		if now >= until {
			return
		}
		// Packetise the frame; all packets of a frame leave together,
		// modelling the encoder handing a complete frame to the stack.
		size := v.frameSize()
		for size > 0 {
			p := v.PacketSize
			if size < p {
				p = size
			}
			emit(Packet{ID: v.nextID, Flow: v.Flow, Size: p, CreatedAt: now})
			v.nextID++
			size -= p
		}
		eng.ScheduleIn(frameGap, tick)
	}
	eng.ScheduleIn(0, tick)
}

// PaperAudio builds the paper's 64 kbps audio workload for the given flow.
func PaperAudio(flow int, seed uint64) *Audio { return NewAudio(flow, AudioRate, seed) }

// PaperVideo builds the paper's 1.5 Mbps MPEG-1 workload for the given flow.
func PaperVideo(flow int, seed uint64) *Video { return NewVideo(flow, VideoRate, seed) }

// Mix describes the three traffic patterns of the evaluation: 3 audio
// streams, 3 video streams, or 1 video + 2 audio.
type Mix int

// The paper's three workload mixes.
const (
	MixAudio  Mix = iota // three 64 kbps audio streams
	MixVideo             // three 1.5 Mbps video streams
	MixHetero            // one video + two audio streams
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	switch m {
	case MixAudio:
		return "3xAudio"
	case MixVideo:
		return "3xVideo"
	case MixHetero:
		return "1xVideo+2xAudio"
	default:
		return fmt.Sprintf("Mix(%d)", int(m))
	}
}

// NumFlows returns the mix's native flow count (the paper's K=3).
func (m Mix) NumFlows() int { return 3 }

// VideoFlow reports whether flow i of an n-flow instantiation of the mix
// is a video flow: the mix's three-flow pattern repeats cyclically, so
// MixHetero at n=6 is video,audio,audio,video,audio,audio.
func (m Mix) VideoFlow(i int) bool {
	switch m {
	case MixAudio:
		return false
	case MixVideo:
		return true
	case MixHetero:
		return i%3 == 0
	default:
		panic("traffic: unknown mix")
	}
}

// Sources instantiates the K=3 flows of the mix. Same-type flows share
// one stream seed, i.e. the groups carry identical copies of one stream —
// exactly the paper's Simulation II setup ("each of the three groups is
// fed with the same 64Kbps audio stream"). Identical copies burst in
// lockstep, which is what makes the un-staggered (σ, ρ) multiplexer
// realise its worst case and the staggered (σ, ρ, λ) regulator pay off.
func (m Mix) Sources(seed uint64) []Source {
	return m.SourcesN(m.NumFlows(), seed)
}

// SourcesN instantiates n flows by cycling the mix's three-flow pattern —
// how a K-group scenario drives K > 3 groups with the paper's media
// models. As in Sources, same-type flows share one stream seed (lockstep
// copies, the multi-group worst case); SourcesN(3, seed) is stream-for-
// stream identical to Sources(seed).
func (m Mix) SourcesN(n int, seed uint64) []Source {
	if n < 1 {
		panic("traffic: SourcesN needs at least one flow")
	}
	base := xrand.New(seed)
	audioSeed, videoSeed := base.Uint64(), base.Uint64()
	out := make([]Source, n)
	for i := 0; i < n; i++ {
		if m.VideoFlow(i) {
			out[i] = PaperVideo(i, videoSeed)
		} else {
			out[i] = PaperAudio(i, audioSeed)
		}
	}
	return out
}

// TotalRate returns the aggregate average rate of the mix in bits/second.
func (m Mix) TotalRate() float64 { return m.TotalRateN(m.NumFlows()) }

// TotalRateN returns the aggregate average rate of an n-flow
// instantiation of the mix.
func (m Mix) TotalRateN(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		if m.VideoFlow(i) {
			total += VideoRate
		} else {
			total += AudioRate
		}
	}
	return total
}

// Homogeneous reports whether all flows in the mix share one rate.
func (m Mix) Homogeneous() bool { return m != MixHetero }
