package traffic

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/xrand"
)

// Paper workloads (Section VI): "64Kbps audio streams and 1.5Mbps MPEG-1
// video streams", both explicitly variable-bit-rate. The models below
// reproduce the mean rates with realistic burst structure.
const (
	// AudioRate is the paper's audio stream average rate.
	AudioRate = 64_000 // bits/second
	// VideoRate is the paper's MPEG-1 video stream average rate.
	VideoRate = 1_500_000 // bits/second
)

// Audio is a VBR voice model: exponentially distributed talkspurts and
// silence gaps (Brady's on/off model). During a talkspurt the codec emits
// fixed packets at the peak rate; silences emit nothing. The peak rate is
// chosen so the long-run average equals Rate.
type Audio struct {
	Flow        int
	Rate        float64      // long-run average, bits/second
	PacketSize  float64      // bits (default 1280 = 160-byte frames)
	MeanTalk    des.Duration // mean talkspurt length
	MeanSilence des.Duration // mean silence length

	// Runtime state. rng/nextID/talkEnd are the mutable words a checkpoint
	// captures; the closures are built once per Start/Resume and reschedule
	// themselves through the engine's event pool.
	rng     *xrand.Rand
	nextID  uint64
	talkEnd des.Time
	eng     *des.Engine
	talkFn  func()
	wakeFn  func()
}

// NewAudio returns a talkspurt audio source scaled to the given average
// rate. The default on/off scales (250 ms talk, 150 ms silence) sit at
// packet-burst granularity: the resulting (σ, ρ) envelope is a few tens of
// kilobits, matching the sub-second worst-case delays of the paper's
// Fig. 4(a) (classic Brady telephony scales of ~1 s talkspurts would give
// envelopes hundreds of kilobits deep and swamp the load dependence the
// experiment sweeps).
func NewAudio(flow int, rate float64, seed uint64) *Audio {
	if rate <= 0 {
		panic("traffic: audio rate must be positive")
	}
	return &Audio{
		Flow:        flow,
		Rate:        rate,
		PacketSize:  1280,
		MeanTalk:    des.Millis(250),
		MeanSilence: des.Millis(60),
		rng:         xrand.New(seed),
	}
}

// Name implements Source.
func (a *Audio) Name() string { return fmt.Sprintf("audio-%.0fbps", a.Rate) }

// AvgRate implements Source.
func (a *Audio) AvgRate() float64 { return a.Rate }

// PeakRate returns the on-state emission rate.
func (a *Audio) PeakRate() float64 {
	onFrac := a.MeanTalk.Seconds() / (a.MeanTalk.Seconds() + a.MeanSilence.Seconds())
	return a.Rate / onFrac
}

// Start implements Source. Emission begins with a talkspurt so
// measurement starts promptly — the initial event is a wake, exactly like
// the end of a silence gap.
func (a *Audio) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	a.prepare(eng, until, emit)
	eng.ScheduleInKind(0, des.KindAudioWake, uint32(a.Flow), a.wakeFn)
}

// prepare builds the emission closures over the engine and sink. They read
// a.talkEnd/a.nextID from the struct (not captured locals) so a checkpoint
// can capture them and Resume can rebuild identical callbacks mid-stream.
// Talk ticks and wakes carry kind tags with arg = Flow.
func (a *Audio) prepare(eng *des.Engine, until des.Time, emit func(Packet)) {
	peak := a.PeakRate()
	interval := des.Seconds(a.PacketSize / peak)
	arg := uint32(a.Flow)
	a.eng = eng
	var talk func()
	talk = func() {
		now := eng.Now()
		if now >= until {
			return
		}
		if now >= a.talkEnd {
			// The talkspurt is over: draw the silence gap now (same rng
			// order as emitting would have) and sleep until the wake.
			gap := des.Seconds(a.rng.Exp(a.MeanSilence.Seconds()))
			eng.ScheduleInKind(gap, des.KindAudioWake, arg, a.wakeFn)
			return
		}
		emit(Packet{ID: a.nextID, Flow: a.Flow, Size: a.PacketSize, CreatedAt: now})
		a.nextID++
		eng.ScheduleInKind(interval, des.KindAudioTalk, arg, talk)
	}
	wake := func() {
		if eng.Now() >= until {
			return
		}
		dur := des.Seconds(a.rng.Exp(a.MeanTalk.Seconds()))
		a.talkEnd = eng.Now() + dur
		talk()
	}
	a.talkFn, a.wakeFn = talk, wake
}

// AudioState is the source's mutable runtime for a checkpoint.
type AudioState struct {
	NextID  uint64
	TalkEnd des.Time
	RNG     uint64
}

// SnapState returns the source's mutable runtime words for a checkpoint.
func (a *Audio) SnapState() AudioState {
	return AudioState{NextID: a.nextID, TalkEnd: a.talkEnd, RNG: a.rng.State()}
}

// Resume rebuilds the emission closures at a checkpoint restore without
// scheduling anything — the restored engine replays the serialized talk/
// wake events through RestoreTalk/RestoreWake instead.
func (a *Audio) Resume(eng *des.Engine, until des.Time, emit func(Packet), st AudioState) {
	a.prepare(eng, until, emit)
	a.nextID = st.NextID
	a.talkEnd = st.TalkEnd
	a.rng.SetState(st.RNG)
}

// RestoreTalk re-schedules a serialized in-talkspurt packet tick.
func (a *Audio) RestoreTalk(at, prio des.Time) {
	a.eng.SchedulePrioKind(at, prio, des.KindAudioTalk, uint32(a.Flow), a.talkFn)
}

// RestoreWake re-schedules a serialized end-of-silence wake.
func (a *Audio) RestoreWake(at, prio des.Time) {
	a.eng.SchedulePrioKind(at, prio, des.KindAudioWake, uint32(a.Flow), a.wakeFn)
}

// Video is an MPEG-1-style VBR model: frames at a fixed rate, sizes
// following the 12-frame IBBPBBPBBPBB group-of-pictures pattern with
// I:P:B size ratio 5:2:1 and per-frame lognormal jitter, packetised into
// MTU-sized packets. The scale is normalised so the long-run average rate
// equals Rate.
type Video struct {
	Flow       int
	Rate       float64 // long-run average, bits/second
	FPS        float64
	PacketSize float64 // bits per packet (MTU)
	JitterSig  float64 // lognormal sigma for frame-size jitter
	// SceneMean is the mean spacing of scene changes; at each scene
	// change the next I-frame is SceneBoost× its normal size, modelling
	// the intra-coded refresh real MPEG-1 emits on a cut. SceneBoost <= 1
	// disables scene changes.
	SceneMean  des.Duration
	SceneBoost float64

	// Runtime state. rng/nextID/frame/scenePending are the mutable words a
	// checkpoint captures; the tick closure is built once per Start/Resume.
	rng          *xrand.Rand
	nextID       uint64
	frame        int
	scenePending bool
	eng          *des.Engine
	tickFn       func()
}

// gopPattern holds relative frame weights for IBBPBBPBBPBB.
var gopPattern = [12]float64{5, 1, 1, 2, 1, 1, 2, 1, 1, 2, 1, 1}

// gopWeight is the sum of gopPattern.
const gopWeight = 5 + 2*3 + 1*8

// NewVideo returns an MPEG-1-style video source at the given average rate,
// 25 frames/second, 10000-bit packets, and moderate frame jitter.
func NewVideo(flow int, rate float64, seed uint64) *Video {
	if rate <= 0 {
		panic("traffic: video rate must be positive")
	}
	return &Video{
		Flow:       flow,
		Rate:       rate,
		FPS:        25,
		PacketSize: 10_000,
		JitterSig:  0.2,
		SceneMean:  des.Seconds(4),
		SceneBoost: 2.5,
		rng:        xrand.New(seed),
	}
}

// Name implements Source.
func (v *Video) Name() string { return fmt.Sprintf("video-%.0fbps", v.Rate) }

// AvgRate implements Source.
func (v *Video) AvgRate() float64 { return v.Rate }

// frameSize draws the size in bits of the next frame.
func (v *Video) frameSize() float64 {
	meanFrame := v.Rate / v.FPS
	unit := meanFrame * 12 / gopWeight
	idx := v.frame % 12
	base := unit * gopPattern[idx]
	v.frame++
	if v.SceneBoost > 1 {
		// Bernoulli scene-change arrival at rate 1/SceneMean.
		if v.rng.Bool(1 / (v.FPS * v.SceneMean.Seconds())) {
			v.scenePending = true
		}
		if v.scenePending && idx == 0 {
			v.scenePending = false
			base *= v.SceneBoost
		}
	}
	// Lognormal jitter with unit mean: exp(N(−σ²/2, σ)).
	jitter := v.rng.LogNormal(-v.JitterSig*v.JitterSig/2, v.JitterSig)
	return base * jitter
}

// Start implements Source.
func (v *Video) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	v.prepare(eng, until, emit)
	eng.ScheduleInKind(0, des.KindVideoTick, uint32(v.Flow), v.tickFn)
}

// prepare builds the frame-tick closure over the engine and sink; ticks
// carry kind tags with arg = Flow so a checkpoint can rehydrate them.
func (v *Video) prepare(eng *des.Engine, until des.Time, emit func(Packet)) {
	frameGap := des.Seconds(1 / v.FPS)
	arg := uint32(v.Flow)
	v.eng = eng
	var tick func()
	tick = func() {
		now := eng.Now()
		if now >= until {
			return
		}
		// Packetise the frame; all packets of a frame leave together,
		// modelling the encoder handing a complete frame to the stack.
		size := v.frameSize()
		for size > 0 {
			p := v.PacketSize
			if size < p {
				p = size
			}
			emit(Packet{ID: v.nextID, Flow: v.Flow, Size: p, CreatedAt: now})
			v.nextID++
			size -= p
		}
		eng.ScheduleInKind(frameGap, des.KindVideoTick, arg, tick)
	}
	v.tickFn = tick
}

// VideoState is the source's mutable runtime for a checkpoint.
type VideoState struct {
	NextID       uint64
	Frame        int
	ScenePending bool
	RNG          uint64
}

// SnapState returns the source's mutable runtime words for a checkpoint.
func (v *Video) SnapState() VideoState {
	return VideoState{NextID: v.nextID, Frame: v.frame, ScenePending: v.scenePending, RNG: v.rng.State()}
}

// Resume rebuilds the frame-tick closure at a checkpoint restore without
// scheduling anything — the restored engine replays the serialized tick
// through RestoreTick instead.
func (v *Video) Resume(eng *des.Engine, until des.Time, emit func(Packet), st VideoState) {
	v.prepare(eng, until, emit)
	v.nextID = st.NextID
	v.frame = st.Frame
	v.scenePending = st.ScenePending
	v.rng.SetState(st.RNG)
}

// RestoreTick re-schedules a serialized frame tick.
func (v *Video) RestoreTick(at, prio des.Time) {
	v.eng.SchedulePrioKind(at, prio, des.KindVideoTick, uint32(v.Flow), v.tickFn)
}

// PaperAudio builds the paper's 64 kbps audio workload for the given flow.
func PaperAudio(flow int, seed uint64) *Audio { return NewAudio(flow, AudioRate, seed) }

// PaperVideo builds the paper's 1.5 Mbps MPEG-1 workload for the given flow.
func PaperVideo(flow int, seed uint64) *Video { return NewVideo(flow, VideoRate, seed) }

// Mix describes the three traffic patterns of the evaluation: 3 audio
// streams, 3 video streams, or 1 video + 2 audio.
type Mix int

// The paper's three workload mixes.
const (
	MixAudio  Mix = iota // three 64 kbps audio streams
	MixVideo             // three 1.5 Mbps video streams
	MixHetero            // one video + two audio streams
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	switch m {
	case MixAudio:
		return "3xAudio"
	case MixVideo:
		return "3xVideo"
	case MixHetero:
		return "1xVideo+2xAudio"
	default:
		return fmt.Sprintf("Mix(%d)", int(m))
	}
}

// NumFlows returns the mix's native flow count (the paper's K=3).
func (m Mix) NumFlows() int { return 3 }

// VideoFlow reports whether flow i of an n-flow instantiation of the mix
// is a video flow: the mix's three-flow pattern repeats cyclically, so
// MixHetero at n=6 is video,audio,audio,video,audio,audio.
func (m Mix) VideoFlow(i int) bool {
	switch m {
	case MixAudio:
		return false
	case MixVideo:
		return true
	case MixHetero:
		return i%3 == 0
	default:
		panic("traffic: unknown mix")
	}
}

// Sources instantiates the K=3 flows of the mix. Same-type flows share
// one stream seed, i.e. the groups carry identical copies of one stream —
// exactly the paper's Simulation II setup ("each of the three groups is
// fed with the same 64Kbps audio stream"). Identical copies burst in
// lockstep, which is what makes the un-staggered (σ, ρ) multiplexer
// realise its worst case and the staggered (σ, ρ, λ) regulator pay off.
func (m Mix) Sources(seed uint64) []Source {
	return m.SourcesN(m.NumFlows(), seed)
}

// SourcesN instantiates n flows by cycling the mix's three-flow pattern —
// how a K-group scenario drives K > 3 groups with the paper's media
// models. As in Sources, same-type flows share one stream seed (lockstep
// copies, the multi-group worst case); SourcesN(3, seed) is stream-for-
// stream identical to Sources(seed).
func (m Mix) SourcesN(n int, seed uint64) []Source {
	if n < 1 {
		panic("traffic: SourcesN needs at least one flow")
	}
	base := xrand.New(seed)
	audioSeed, videoSeed := base.Uint64(), base.Uint64()
	out := make([]Source, n)
	for i := 0; i < n; i++ {
		if m.VideoFlow(i) {
			out[i] = PaperVideo(i, videoSeed)
		} else {
			out[i] = PaperAudio(i, audioSeed)
		}
	}
	return out
}

// TotalRate returns the aggregate average rate of the mix in bits/second.
func (m Mix) TotalRate() float64 { return m.TotalRateN(m.NumFlows()) }

// TotalRateN returns the aggregate average rate of an n-flow
// instantiation of the mix.
func (m Mix) TotalRateN(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		if m.VideoFlow(i) {
			total += VideoRate
		} else {
			total += AudioRate
		}
	}
	return total
}

// Homogeneous reports whether all flows in the mix share one rate.
func (m Mix) Homogeneous() bool { return m != MixHetero }
