package traffic

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/xrand"
)

// Source is a traffic generator. Start schedules packet emissions on the
// engine up to (and excluding) the `until` horizon, delivering each packet
// through emit. Sources are single-use: create a fresh one per run.
type Source interface {
	// Name identifies the model for logs and tables.
	Name() string
	// AvgRate is the long-run average rate in bits/second.
	AvgRate() float64
	// Start begins emission. Implementations must be deterministic given
	// their construction-time seed.
	Start(eng *des.Engine, until des.Time, emit func(Packet))
}

// CBR emits fixed-size packets at a perfectly regular interval — the
// simplest conforming (0, rate) stream.
type CBR struct {
	Flow       int
	Rate       float64 // bits/second
	PacketSize float64 // bits
	Offset     des.Duration

	nextID uint64
}

// NewCBR returns a CBR source. It panics on non-positive rate or size.
func NewCBR(flow int, rate, packetSize float64) *CBR {
	if rate <= 0 || packetSize <= 0 {
		panic("traffic: CBR rate and packet size must be positive")
	}
	return &CBR{Flow: flow, Rate: rate, PacketSize: packetSize}
}

// Name implements Source.
func (c *CBR) Name() string { return fmt.Sprintf("cbr-%.0fbps", c.Rate) }

// AvgRate implements Source.
func (c *CBR) AvgRate() float64 { return c.Rate }

// Start implements Source. The emission loop is a rearming ticker: one
// pooled event per packet, no per-tick closure.
func (c *CBR) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	interval := des.Seconds(c.PacketSize / c.Rate)
	if interval <= 0 {
		interval = 1
	}
	var tk *des.Ticker
	tk = eng.ScheduleEvery(c.Offset, interval, func() {
		now := eng.Now()
		if now >= until {
			tk.Stop()
			return
		}
		emit(Packet{ID: c.nextID, Flow: c.Flow, Size: c.PacketSize, CreatedAt: now})
		c.nextID++
	})
}

// Poisson emits fixed-size packets with exponentially distributed
// inter-arrival times (a memoryless stream at the configured average rate).
type Poisson struct {
	Flow       int
	Rate       float64
	PacketSize float64
	rng        *xrand.Rand
	nextID     uint64
}

// NewPoisson returns a Poisson source seeded deterministically.
func NewPoisson(flow int, rate, packetSize float64, seed uint64) *Poisson {
	if rate <= 0 || packetSize <= 0 {
		panic("traffic: Poisson rate and packet size must be positive")
	}
	return &Poisson{Flow: flow, Rate: rate, PacketSize: packetSize, rng: xrand.New(seed)}
}

// Name implements Source.
func (p *Poisson) Name() string { return fmt.Sprintf("poisson-%.0fbps", p.Rate) }

// AvgRate implements Source.
func (p *Poisson) AvgRate() float64 { return p.Rate }

// Start implements Source.
func (p *Poisson) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	meanGap := p.PacketSize / p.Rate
	var tick func()
	tick = func() {
		now := eng.Now()
		if now >= until {
			return
		}
		emit(Packet{ID: p.nextID, Flow: p.Flow, Size: p.PacketSize, CreatedAt: now})
		p.nextID++
		eng.ScheduleIn(des.Seconds(p.rng.Exp(meanGap)), tick)
	}
	eng.ScheduleIn(des.Seconds(p.rng.Exp(meanGap)), tick)
}

// Greedy emits the extremal trajectory of a (σ, ρ) envelope: the full burst
// σ at start-up, then a steady stream at exactly ρ. This is the adversarial
// input that achieves Cruz's worst-case backlog, used by the regulator and
// bound tests.
type Greedy struct {
	Flow       int
	Sigma      float64 // burst, bits
	Rho        float64 // sustained rate, bits/second
	PacketSize float64
	nextID     uint64
}

// NewGreedy returns a greedy (σ,ρ)-extremal source.
func NewGreedy(flow int, sigma, rho, packetSize float64) *Greedy {
	if sigma < 0 || rho <= 0 || packetSize <= 0 {
		panic("traffic: invalid greedy source parameters")
	}
	return &Greedy{Flow: flow, Sigma: sigma, Rho: rho, PacketSize: packetSize}
}

// Name implements Source.
func (g *Greedy) Name() string { return fmt.Sprintf("greedy(σ=%.0f,ρ=%.0f)", g.Sigma, g.Rho) }

// AvgRate implements Source.
func (g *Greedy) AvgRate() float64 { return g.Rho }

// Start implements Source.
func (g *Greedy) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	eng.ScheduleIn(0, func() {
		now := eng.Now()
		// Burst: σ bits emitted instantaneously.
		for sent := 0.0; sent+g.PacketSize <= g.Sigma; sent += g.PacketSize {
			emit(Packet{ID: g.nextID, Flow: g.Flow, Size: g.PacketSize, CreatedAt: now})
			g.nextID++
		}
		// Steady tail at exactly ρ.
		interval := des.Seconds(g.PacketSize / g.Rho)
		var tick func()
		tick = func() {
			if eng.Now() >= until {
				return
			}
			emit(Packet{ID: g.nextID, Flow: g.Flow, Size: g.PacketSize, CreatedAt: eng.Now()})
			g.nextID++
			eng.ScheduleIn(interval, tick)
		}
		eng.ScheduleIn(interval, tick)
	})
}
