package traffic

import (
	"repro/internal/des"
	"repro/internal/snap"
)

// Snapshot appends the packet's fields to the open record. Packets are
// serialized wherever they sit in mutable state — regulator and MUX
// queues, in-flight deliveries — so the layout lives here, once.
func (p Packet) Snapshot(w *snap.Writer) {
	w.U64(p.ID)
	w.I64(int64(p.Flow))
	w.F64(p.Size)
	w.I64(int64(p.CreatedAt))
}

// RestorePacket reads a packet written by Packet.Snapshot.
func RestorePacket(r *snap.Reader) Packet {
	return Packet{
		ID:        r.U64(),
		Flow:      int(r.I64()),
		Size:      r.F64(),
		CreatedAt: des.Time(r.I64()),
	}
}
