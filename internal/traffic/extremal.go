package traffic

import (
	"fmt"

	"repro/internal/des"
)

// Extremal is a deterministic, envelope-extremal periodic flow: once per
// period it emits its full burst allowance σ instantaneously, and in
// between it runs as CBR at (slightly below) its average rate. This is the
// admissible trajectory Cruz's (σ, ρ) delay bounds are tight against: a
// burst of Σσ arriving at a multiplexer that keeps receiving the sustained
// base rate drains at C−Σρ̄, so the realised busy period approaches the
// paper's Σσᵢ/(C(1−ρ̄K)) — which stochastic VBR models essentially never
// realise (a worst-case-delay study driven by typical-case traffic would
// be vacuous; the VBR models remain the workload of the examples and the
// realism ablation — see DESIGN.md).
//
// The flow conforms to (σ + one packet, ρ) for any ρ ≥ its average rate.
type Extremal struct {
	Flow       int
	Rate       float64 // bits/second long-run average
	Rho        float64 // declared envelope rate, > Rate
	Sigma      float64 // burst, bits
	PacketSize float64
	Period     des.Duration

	// Runtime state. nextID and start are the flow's only mutable words
	// (SnapState captures them); the closures are built once per
	// Start/Resume and re-scheduled through the engine's event pool.
	nextID  uint64
	start   des.Time
	eng     *des.Engine
	cycleFn func()
	tickFn  func()
}

// NewExtremal builds an extremal flow with the given average rate and
// envelope rate ρ > rate. burstSec sets σ = burstSec·ρ. The default
// period is 12 s.
func NewExtremal(flow int, rate, rho, burstSec float64) *Extremal {
	if rate <= 0 || rho <= rate {
		panic("traffic: extremal flow needs 0 < rate < rho")
	}
	if burstSec <= 0 {
		panic("traffic: extremal burstSec must be positive")
	}
	e := &Extremal{
		Flow:       flow,
		Rate:       rate,
		Rho:        rho,
		Sigma:      burstSec * rho,
		PacketSize: 10_000,
		Period:     des.Seconds(12),
	}
	if e.baseRate() <= 0 {
		panic("traffic: extremal burst exceeds the period budget")
	}
	return e
}

// baseRate returns the CBR rate between bursts that restores the long-run
// average: Rate·T = σ + base·T.
func (e *Extremal) baseRate() float64 {
	t := e.Period.Seconds()
	return (e.Rate*t - e.Sigma) / t
}

// Name implements Source.
func (e *Extremal) Name() string {
	return fmt.Sprintf("extremal(σ=%.0f,ρ=%.0f)", e.Sigma, e.Rho)
}

// AvgRate implements Source.
func (e *Extremal) AvgRate() float64 { return e.Rate }

// Envelope returns the exact (σ, ρ) constraint the flow conforms to
// (plus one packet of packetisation slack).
func (e *Extremal) Envelope() Envelope {
	return Envelope{Sigma: e.Sigma + e.PacketSize, Rho: e.Rho}
}

// Start implements Source. Every callback below is built once: the burst/
// base-rate loop reschedules the same three closures through the engine's
// event pool, so steady-state emission is allocation-free.
func (e *Extremal) Start(eng *des.Engine, until des.Time, emit func(Packet)) {
	e.prepare(eng, until, emit)
	eng.ScheduleInKind(0, des.KindSrcCycle, uint32(e.Flow), e.cycleFn)
}

// prepare builds the emission closures over the engine and sink. The
// closures read e.start/e.nextID from the struct (not locals) so a
// checkpoint can capture them and Resume can rebuild identical callbacks
// mid-stream. Cycle and tick events carry kind tags with arg = Flow.
func (e *Extremal) prepare(eng *des.Engine, until des.Time, emit func(Packet)) {
	base := e.baseRate()
	gap := des.Seconds(e.PacketSize / base)
	arg := uint32(e.Flow)
	e.eng = eng
	emitPkt := func(size float64) {
		emit(Packet{ID: e.nextID, Flow: e.Flow, Size: size, CreatedAt: eng.Now()})
		e.nextID++
	}
	var cycle, step, tick func()
	tick = func() {
		if eng.Now() >= until {
			return
		}
		emitPkt(e.PacketSize)
		step()
	}
	// step schedules the next base-rate packet, or the next cycle once the
	// period's budget is spent.
	step = func() {
		now := eng.Now()
		if now >= until {
			return
		}
		if now-e.start+gap > e.Period {
			eng.ScheduleKind(e.start+e.Period, des.KindSrcCycle, arg, cycle)
			return
		}
		eng.ScheduleInKind(gap, des.KindSrcTick, arg, tick)
	}
	cycle = func() {
		if eng.Now() >= until {
			return
		}
		e.start = eng.Now()
		// Burst σ at one instant.
		remaining := e.Sigma
		for remaining >= e.PacketSize {
			emitPkt(e.PacketSize)
			remaining -= e.PacketSize
		}
		if remaining > 1 {
			emitPkt(remaining)
		}
		// CBR base for the rest of the period.
		step()
	}
	e.cycleFn, e.tickFn = cycle, tick
}

// SnapState returns the flow's mutable runtime words for a checkpoint.
func (e *Extremal) SnapState() (nextID uint64, start des.Time) {
	return e.nextID, e.start
}

// Resume rebuilds the emission closures at a checkpoint restore without
// scheduling anything — the restored engine replays the serialized cycle/
// tick events through RestoreCycle/RestoreTick instead.
func (e *Extremal) Resume(eng *des.Engine, until des.Time, emit func(Packet), nextID uint64, start des.Time) {
	e.prepare(eng, until, emit)
	e.nextID = nextID
	e.start = start
}

// RestoreCycle re-schedules a serialized period-start event.
func (e *Extremal) RestoreCycle(at, prio des.Time) {
	e.eng.SchedulePrioKind(at, prio, des.KindSrcCycle, uint32(e.Flow), e.cycleFn)
}

// RestoreTick re-schedules a serialized base-rate emission event.
func (e *Extremal) RestoreTick(at, prio des.Time) {
	e.eng.SchedulePrioKind(at, prio, des.KindSrcTick, uint32(e.Flow), e.tickFn)
}

// ExtremalMix builds the K=3 extremal flows matching a media mix's rates:
// audio flows use small packets (1280 bits) and video flows MTU packets,
// all aligned in phase (the multi-group worst case — the paper feeds every
// group the same stream). rhoMargin is the envelope headroom (e.g. 1.04);
// burstSec sets each flow's σ in seconds of its ρ.
func ExtremalMix(m Mix, rhoMargin, burstSec float64) []Source {
	return ExtremalMixN(m, m.NumFlows(), rhoMargin, burstSec)
}

// ExtremalMixN builds n extremal flows by cycling the mix's three-flow
// pattern (see Mix.VideoFlow) — the K-group scenario counterpart of
// ExtremalMix. All flows stay phase-aligned, preserving the multi-group
// worst case at any K.
func ExtremalMixN(m Mix, n int, rhoMargin, burstSec float64) []Source {
	if rhoMargin <= 1 {
		panic("traffic: rhoMargin must exceed 1")
	}
	if n < 1 {
		panic("traffic: ExtremalMixN needs at least one flow")
	}
	out := make([]Source, n)
	for i := 0; i < n; i++ {
		rate, pkt := float64(AudioRate), 1280.0
		if m.VideoFlow(i) {
			rate, pkt = VideoRate, 10_000
		}
		e := NewExtremal(i, rate, rhoMargin*rate, burstSec)
		e.PacketSize = pkt
		out[i] = e
	}
	return out
}

// ExtremalSpecsFor returns the exact flow envelopes of ExtremalMix's
// flows: (σ + packet, ρ) per flow.
func ExtremalSpecsFor(m Mix, rhoMargin, burstSec float64) []Envelope {
	return ExtremalSpecsForN(m, m.NumFlows(), rhoMargin, burstSec)
}

// ExtremalSpecsForN returns the exact envelopes of ExtremalMixN's flows.
func ExtremalSpecsForN(m Mix, n int, rhoMargin, burstSec float64) []Envelope {
	out := make([]Envelope, 0, n)
	for _, s := range ExtremalMixN(m, n, rhoMargin, burstSec) {
		out = append(out, s.(*Extremal).Envelope())
	}
	return out
}
