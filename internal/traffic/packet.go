// Package traffic defines the packet type and the real-time traffic models
// used throughout the reproduction: constant-bit-rate flows, the paper's
// two media workloads (64 kbps VBR audio and 1.5 Mbps MPEG-1-style VBR
// video), greedy (σ,ρ)-extremal sources for worst-case tests, and arrival-
// envelope measurement that converts an observed stream into the (σ, ρ)
// parameters the regulators are configured with.
package traffic

import "repro/internal/des"

// Packet is one unit of simulated traffic. Packets are small value types:
// overlay replication copies them, so they carry no pointers and no
// ownership semantics.
type Packet struct {
	ID        uint64   // unique within its flow
	Flow      int      // flow index (== group index in multi-group runs)
	Size      float64  // bits
	CreatedAt des.Time // emission time at the original source
}

// Delay returns the packet's age at time now — the end-to-end delay when
// invoked at the moment of final delivery.
func (p Packet) Delay(now des.Time) des.Duration { return now - p.CreatedAt }
