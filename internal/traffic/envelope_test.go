package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/xrand"
)

func TestEnvelopeBits(t *testing.T) {
	e := Envelope{Sigma: 1000, Rho: 500}
	if got := e.Bits(des.Seconds(2)); got != 2000 {
		t.Fatalf("Bits = %v", got)
	}
	if got := e.Bits(0); got != 1000 {
		t.Fatalf("Bits(0) = %v", got)
	}
}

func TestMeterCBRHasTinySigma(t *testing.T) {
	// A CBR stream at exactly ρ needs only one packet of burst.
	src := NewCBR(0, 100_000, 1000)
	eng := des.New()
	m := NewMeter(100_000)
	until := des.Seconds(10)
	src.Start(eng, until, func(p Packet) { m.Observe(eng.Now(), p.Size) })
	eng.RunUntil(until)
	if m.Sigma() > 1001 {
		t.Fatalf("CBR σ̂ = %v, want <= packet size", m.Sigma())
	}
	if m.Count() == 0 {
		t.Fatal("meter saw no packets")
	}
}

func TestMeterDetectsBurst(t *testing.T) {
	m := NewMeter(1000) // ρ = 1000 bits/s
	// 5000 bits at t=0 instantaneously: σ must be ≈ 5000.
	for i := 0; i < 5; i++ {
		m.Observe(0, 1000)
	}
	if math.Abs(m.Sigma()-5000) > 1e-6 {
		t.Fatalf("σ̂ = %v, want 5000", m.Sigma())
	}
}

func TestMeterBurstAfterIdle(t *testing.T) {
	m := NewMeter(1000)
	m.Observe(0, 100)
	// Long idle: deviation drops, then a burst at t=10s.
	for i := 0; i < 4; i++ {
		m.Observe(des.Seconds(10), 1000)
	}
	// The burst of 4000 bits in zero time needs σ ≈ 4000 regardless of
	// earlier credit (Cruz's envelope has no credit accumulation).
	if m.Sigma() < 3999 {
		t.Fatalf("σ̂ = %v, want >= 4000", m.Sigma())
	}
}

func TestMeterConforms(t *testing.T) {
	m := NewMeter(1e6)
	m.Observe(0, 500)
	if !m.Conforms(500) {
		t.Fatalf("σ̂ = %v should conform to 500", m.Sigma())
	}
	if m.Conforms(100) {
		t.Fatal("should not conform to σ=100 after 500-bit burst")
	}
}

func TestMeterTotalBits(t *testing.T) {
	m := NewMeter(100)
	m.Observe(0, 10)
	m.Observe(des.Second, 20)
	if m.TotalBits() != 30 {
		t.Fatalf("total = %v", m.TotalBits())
	}
}

func TestMeterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rho accepted")
		}
	}()
	NewMeter(-1)
}

// Property: for any arrival sequence, the measured σ makes the envelope
// tight — replaying the arrivals against (σ̂, ρ) never violates it, and
// (σ̂ − ε, ρ) is violated.
func TestQuickMeterTightness(t *testing.T) {
	rng := xrand.New(55)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		rho := 1000.0
		m := NewMeter(rho)
		now := des.Time(0)
		type arr struct {
			t    des.Time
			bits float64
		}
		var arrivals []arr
		for _, v := range raw {
			now += des.Duration(rng.Intn(100)) * des.Millisecond
			bits := float64(v) * 10
			if bits == 0 {
				continue
			}
			arrivals = append(arrivals, arr{now, bits})
			m.Observe(now, bits)
		}
		if len(arrivals) == 0 {
			return true
		}
		sigma := m.Sigma()
		// Replay: cumulative arrivals minus envelope must stay <= 0 for
		// every pair (t1 just-before-arrival, t2 at-arrival).
		for i := range arrivals {
			var cum float64
			// deviation check across all windows starting at j
			for j := i; j < len(arrivals); j++ {
				cum += arrivals[j].bits
				span := (arrivals[j].t - arrivals[i].t).Seconds()
				if cum > sigma+rho*span+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureEnvelopeVideo(t *testing.T) {
	env := MeasureEnvelope(PaperVideo(0, 21), 1.0, des.Seconds(20))
	if env.Rho != VideoRate {
		t.Fatalf("rho = %v", env.Rho)
	}
	// A VBR video must need a non-trivial burst allowance at ρ = mean:
	// at least one I-frame's worth, at most a few GOPs.
	if env.Sigma < 50_000 || env.Sigma > 3_000_000 {
		t.Fatalf("video σ = %v outside plausible band", env.Sigma)
	}
}

func TestMeasureEnvelopeMarginShrinksSigma(t *testing.T) {
	tight := MeasureEnvelope(PaperVideo(0, 21), 1.0, des.Seconds(20))
	loose := MeasureEnvelope(PaperVideo(0, 21), 1.2, des.Seconds(20))
	if loose.Sigma >= tight.Sigma {
		t.Fatalf("σ at margin 1.2 (%v) should be below σ at margin 1.0 (%v)",
			loose.Sigma, tight.Sigma)
	}
}

func TestMeasureEnvelopePanicsOnBadMargin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeasureEnvelope(PaperAudio(0, 1), 0, des.Second)
}

func BenchmarkMeterObserve(b *testing.B) {
	m := NewMeter(1e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(des.Time(i)*des.Microsecond, 1000)
	}
}
