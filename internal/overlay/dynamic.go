package overlay

// Incremental tree operations for the event-driven session control plane:
// members graft and prune mid-run, and the subtrees orphaned by a
// departing forwarder re-attach under the Lemma 2 height bound. The
// build-time invariants (single parent, membership-internal edges, no
// cycles) are re-checked incrementally here instead of only at
// construction time; genuine impossibilities (a cycle through the parent
// map) remain panics, while caller mistakes return errors.

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/topo"
)

// depthAttached returns the hop distance from the source to h and whether
// h is connected to the source at all — false for orphan subtree roots
// awaiting Repair and for every node inside such a detached subtree.
func (t *Tree) depthAttached(h int) (int, bool) {
	d, v := 0, h
	for {
		p, ok := t.parent[v]
		if !ok {
			return 0, false
		}
		if p < 0 {
			return d, true
		}
		v = p
		d++
		if d > len(t.Members) {
			panic("overlay: parent cycle")
		}
	}
}

// SubtreeHeight returns the height of the subtree rooted at h (0 for a
// leaf), following child edges only — valid for detached subtrees too.
func (t *Tree) SubtreeHeight(h int) int {
	height := 0
	level := []int{h}
	for {
		var next []int
		for _, v := range level {
			next = append(next, t.child[v]...)
		}
		if len(next) == 0 {
			return height
		}
		height++
		level = next
		if height > len(t.Members) {
			panic("overlay: child cycle")
		}
	}
}

// Graft attaches h under parent: either a brand-new member joining the
// group, or a detached subtree root left by Prune (whose descendants stay
// members throughout). The parent must be a member attached to the
// source, which also guarantees acyclicity — a detached subtree cannot
// contain an attached node.
func (t *Tree) Graft(h, parent int) error {
	if h == t.Source {
		return fmt.Errorf("overlay: cannot graft the source %d", h)
	}
	if _, has := t.parent[h]; has {
		return fmt.Errorf("overlay: graft of %d, which is already attached (parent %d)", h, t.parent[h])
	}
	if !t.member[parent] {
		return fmt.Errorf("overlay: graft of %d under non-member %d", h, parent)
	}
	if _, ok := t.depthAttached(parent); !ok {
		return fmt.Errorf("overlay: graft of %d under detached member %d", h, parent)
	}
	if !t.member[h] {
		t.member[h] = true
		t.Members = append(t.Members, h)
	}
	t.setParent(h, parent)
	return nil
}

// Prune removes member h from the tree: h leaves the member set and its
// children become detached orphan subtree roots (returned in child
// order), which the caller must re-attach with Repair. Pruning the source
// is an error — a group's flow enters at its root, so the control plane
// never churns it out.
func (t *Tree) Prune(h int) ([]int, error) {
	if h == t.Source {
		return nil, fmt.Errorf("overlay: cannot prune the source %d", h)
	}
	if !t.member[h] {
		return nil, fmt.Errorf("overlay: prune of non-member %d", h)
	}
	p, ok := t.parent[h]
	if !ok {
		return nil, fmt.Errorf("overlay: prune of already-detached member %d", h)
	}
	siblings := t.child[p]
	for i, c := range siblings {
		if c == h {
			t.child[p] = append(siblings[:i], siblings[i+1:]...)
			break
		}
	}
	if len(t.child[p]) == 0 {
		delete(t.child, p)
	}
	delete(t.parent, h)
	delete(t.member, h)
	for i, m := range t.Members {
		if m == h {
			t.Members = append(t.Members[:i], t.Members[i+1:]...)
			break
		}
	}
	orphans := append([]int(nil), t.child[h]...)
	delete(t.child, h)
	for _, o := range orphans {
		delete(t.parent, o)
	}
	return orphans, nil
}

// Detach severs the parent edge of attached member h, leaving h as a
// detached subtree root; h and its descendants stay members throughout —
// the partition primitive: a severed subtree keeps its internal shape and
// re-attaches wholesale (Graft of the root) at the heal.
func (t *Tree) Detach(h int) error {
	if h == t.Source {
		return fmt.Errorf("overlay: cannot detach the source %d", h)
	}
	if !t.member[h] {
		return fmt.Errorf("overlay: detach of non-member %d", h)
	}
	p, ok := t.parent[h]
	if !ok {
		return fmt.Errorf("overlay: detach of already-detached member %d", h)
	}
	siblings := t.child[p]
	for i, c := range siblings {
		if c == h {
			t.child[p] = append(siblings[:i], siblings[i+1:]...)
			break
		}
	}
	if len(t.child[p]) == 0 {
		delete(t.child, p)
	}
	delete(t.parent, h)
	return nil
}

// PruneAll removes a whole batch of members in one step — a correlated
// failure (domain outage, mass leave) taking out many forwarders at the
// same DES instant. Victims may be attached or detached; edges between two
// victims vanish with them. It returns the surviving subtree roots newly
// detached by the removal, sorted ascending by host id.
//
// That ascending order is the pinned batch-repair order: RepairWith
// processes orphans in input order (earlier re-attached subtrees become
// candidates for later ones), and both the sequential engine and the
// sharded coordinator repair mass-failure orphans in exactly this order,
// which is what keeps their runs bit-identical. Do not reorder.
func (t *Tree) PruneAll(victims []int) ([]int, error) {
	if len(victims) == 0 {
		return nil, nil
	}
	vs := make(map[int]bool, len(victims))
	for _, v := range victims {
		if v == t.Source {
			return nil, fmt.Errorf("overlay: cannot prune the source %d", v)
		}
		if !t.member[v] {
			return nil, fmt.Errorf("overlay: prune of non-member %d", v)
		}
		if vs[v] {
			return nil, fmt.Errorf("overlay: duplicate victim %d", v)
		}
		vs[v] = true
	}
	// Unhook each victim from a surviving parent (victim-to-victim edges
	// disappear when the victims' own child lists are dropped below).
	for _, v := range victims {
		p, ok := t.parent[v]
		if ok && p >= 0 && !vs[p] {
			siblings := t.child[p]
			for i, c := range siblings {
				if c == v {
					t.child[p] = append(siblings[:i], siblings[i+1:]...)
					break
				}
			}
			if len(t.child[p]) == 0 {
				delete(t.child, p)
			}
		}
		delete(t.parent, v)
	}
	// Surviving children of victims lose their parent edge and become the
	// detached roots of disjoint subtrees (a deeper survivor under another
	// victim is its own root — its edge was severed too, not inherited).
	var orphans []int
	for _, v := range victims {
		for _, c := range t.child[v] {
			if !vs[c] {
				delete(t.parent, c)
				orphans = append(orphans, c)
			}
		}
		delete(t.child, v)
	}
	for _, v := range victims {
		delete(t.member, v)
	}
	n := 0
	for _, m := range t.Members {
		if !vs[m] {
			t.Members[n] = m
			n++
		}
	}
	t.Members = t.Members[:n]
	sort.Ints(orphans)
	return orphans, nil
}

// GraftPoint picks the deterministic adoption parent for a node — a fresh
// joiner, or an orphan subtree root of height subHeight: the attached
// member nearest to h by RTT (ties broken by id) whose fanout stays below
// maxFanout and whose depth keeps depth+1+subHeight within maxHeight (the
// Lemma 2 bound). When no member satisfies both constraints they relax in
// order — first fanout, then height — so a graft point always exists
// while the tree has an attached member besides h's own subtree. A
// non-positive maxFanout or maxHeight disables that constraint.
func (t *Tree) GraftPoint(net *topo.Network, h, subHeight, maxFanout, maxHeight int) (int, error) {
	type candidate struct {
		id  int
		rtt des.Duration
		ok  bool
	}
	better := func(best candidate, id int, rtt des.Duration) bool {
		if !best.ok {
			return true
		}
		if rtt != best.rtt {
			return rtt < best.rtt
		}
		return id < best.id
	}
	var full, loose, any candidate
	for _, m := range t.Members {
		if m == h {
			continue
		}
		depth, attached := t.depthAttached(m)
		if !attached {
			continue
		}
		rtt := net.RTT(h, m)
		if better(any, m, rtt) {
			any = candidate{id: m, rtt: rtt, ok: true}
		}
		heightOK := maxHeight <= 0 || depth+1+subHeight <= maxHeight
		if heightOK && better(loose, m, rtt) {
			loose = candidate{id: m, rtt: rtt, ok: true}
		}
		fanoutOK := maxFanout <= 0 || len(t.child[m]) < maxFanout
		if heightOK && fanoutOK && better(full, m, rtt) {
			full = candidate{id: m, rtt: rtt, ok: true}
		}
	}
	switch {
	case full.ok:
		return full.id, nil
	case loose.ok:
		return loose.id, nil
	case any.ok:
		return any.id, nil
	default:
		return -1, fmt.Errorf("overlay: no attached member to graft %d under", h)
	}
}

// InSubtree reports whether h lies in the subtree rooted at root
// (including root itself), following child edges only — valid for
// detached subtrees too.
func (t *Tree) InSubtree(root, h int) bool {
	if root == h {
		return true
	}
	steps := 0
	level := []int{root}
	for len(level) > 0 {
		var next []int
		for _, v := range level {
			for _, c := range t.child[v] {
				if c == h {
					return true
				}
				next = append(next, c)
			}
		}
		level = next
		steps++
		if steps > len(t.Members) {
			panic("overlay: child cycle")
		}
	}
	return false
}

// Reparent moves attached member h — with its whole subtree — under
// newParent: the re-optimization plane's local rewire. Unlike Prune+Graft
// it never leaves the member set or the subtree's internal edges, so a
// rewire is purely an edge swap. The new parent must be an attached
// member outside h's own subtree (which rules out cycles).
func (t *Tree) Reparent(h, newParent int) error {
	if h == t.Source {
		return fmt.Errorf("overlay: cannot reparent the source %d", h)
	}
	if !t.member[h] {
		return fmt.Errorf("overlay: reparent of non-member %d", h)
	}
	old, ok := t.parent[h]
	if !ok {
		return fmt.Errorf("overlay: reparent of detached member %d", h)
	}
	if newParent == old {
		return fmt.Errorf("overlay: reparent of %d under its current parent %d", h, old)
	}
	if !t.member[newParent] {
		return fmt.Errorf("overlay: reparent of %d under non-member %d", h, newParent)
	}
	if _, attached := t.depthAttached(newParent); !attached {
		return fmt.Errorf("overlay: reparent of %d under detached member %d", h, newParent)
	}
	if t.InSubtree(h, newParent) {
		return fmt.Errorf("overlay: reparent of %d under its own descendant %d", h, newParent)
	}
	siblings := t.child[old]
	for i, c := range siblings {
		if c == h {
			t.child[old] = append(siblings[:i], siblings[i+1:]...)
			break
		}
	}
	if len(t.child[old]) == 0 {
		delete(t.child, old)
	}
	t.parent[h] = newParent
	t.child[newParent] = append(t.child[newParent], h)
	return nil
}

// RepairWith re-attaches the orphan subtree roots left by Prune, each
// under the parent the choose function picks for (orphan, subtree
// height), and returns the parent chosen for each orphan in input order.
// Repairing in input order is deterministic: earlier re-attached
// subtrees become candidates for later orphans. The control plane passes
// the group strategy's GraftPoint as choose, so repairs follow the rule
// that built the tree.
func (t *Tree) RepairWith(orphans []int, choose func(orphan, subHeight int) (int, error)) ([]int, error) {
	parents := make([]int, len(orphans))
	for i, o := range orphans {
		p, err := choose(o, t.SubtreeHeight(o))
		if err != nil {
			return nil, err
		}
		if err := t.Graft(o, p); err != nil {
			return nil, err
		}
		parents[i] = p
	}
	return parents, nil
}

// Repair is RepairWith under the fixed RTT-nearest graft rule of
// Tree.GraftPoint — the pre-strategy repair protocol, which the cluster
// strategies still resolve to.
func (t *Tree) Repair(net *topo.Network, orphans []int, maxFanout, maxHeight int) ([]int, error) {
	return t.RepairWith(orphans, func(o, subHeight int) (int, error) {
		return t.GraftPoint(net, o, subHeight, maxFanout, maxHeight)
	})
}
