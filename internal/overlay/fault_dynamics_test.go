package overlay

// Tests for the correlated-failure tree operations: the batch prune
// (PruneAll), the partition primitives (Detach + Graft at the heal), and
// the pinned repair order that keeps sequential and sharded fault
// handling bit-identical.

import (
	"sort"
	"testing"

	"repro/internal/calculus"
	"repro/internal/xrand"
)

// sameShape compares two trees edge for edge over their member sets.
func sameShape(t *testing.T, a, b *Tree) {
	t.Helper()
	if len(a.Members) != len(b.Members) {
		t.Fatalf("member counts differ: %d vs %d", len(a.Members), len(b.Members))
	}
	am := append([]int(nil), a.Members...)
	bm := append([]int(nil), b.Members...)
	sort.Ints(am)
	sort.Ints(bm)
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("member sets differ at %d: %d vs %d", i, am[i], bm[i])
		}
		pa, oka := a.ParentOf(am[i])
		pb, okb := b.ParentOf(bm[i])
		if oka != okb || pa != pb {
			t.Fatalf("parent of %d differs: (%d,%v) vs (%d,%v)", am[i], pa, oka, pb, okb)
		}
	}
}

// TestBatchRepairOrderPinned pins the mass-failure repair order the fault
// plane depends on: PruneAll returns the newly detached subtree roots
// sorted ascending by host id regardless of the victims' input order, so
// sequential and sharded runs — which both repair in exactly that order —
// re-attach every orphan identically. A change to this contract is a
// determinism break, not a refactor.
func TestBatchRepairOrderPinned(t *testing.T) {
	net := network(160, 31)
	fwd, rev := mustDSCT(t, net, allMembers(120), 0, Config{Seed: 31}),
		mustDSCT(t, net, allMembers(120), 0, Config{Seed: 31})

	// Victims: a handful of forwarders (so the prune actually orphans
	// subtrees) plus a leaf, ascending.
	var victims []int
	for _, m := range fwd.Members {
		if m != fwd.Source && len(fwd.Children(m)) > 0 {
			victims = append(victims, m)
			if len(victims) == 5 {
				break
			}
		}
	}
	if len(victims) < 2 {
		t.Skip("tree too flat for a meaningful batch")
	}
	sort.Ints(victims)

	oa, err := fwd.PruneAll(append([]int(nil), victims...))
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]int, len(victims))
	for i, v := range victims {
		reversed[len(victims)-1-i] = v
	}
	ob, err := rev.PruneAll(reversed)
	if err != nil {
		t.Fatal(err)
	}

	if !sort.IntsAreSorted(oa) {
		t.Fatalf("PruneAll orphans not ascending: %v", oa)
	}
	if len(oa) != len(ob) {
		t.Fatalf("orphan counts differ by input order: %v vs %v", oa, ob)
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("orphan order depends on victim input order: %v vs %v", oa, ob)
		}
	}
	sameShape(t, fwd, rev)

	// Repairing both in the pinned order must pick identical parents and
	// leave identical trees.
	bound := calculus.DSCTHeightBoundMax(160, 3)
	pa, err := fwd.Repair(net, oa, 8, bound)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rev.Repair(net, ob, 8, bound)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("repair parents differ at %d: %d vs %d", i, pa[i], pb[i])
		}
	}
	sameShape(t, fwd, rev)
	if err := fwd.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPruneAllRejectsBadBatches(t *testing.T) {
	net := network(30, 32)
	tree := mustDSCT(t, net, allMembers(20), 0, Config{Seed: 32})
	if _, err := tree.PruneAll([]int{0, 5}); err == nil {
		t.Fatal("batch containing the source must fail")
	}
	if _, err := tree.PruneAll([]int{5, 25}); err == nil {
		t.Fatal("batch containing a non-member must fail")
	}
	if _, err := tree.PruneAll([]int{5, 5}); err == nil {
		t.Fatal("batch with a duplicate victim must fail")
	}
	if orphans, err := tree.PruneAll(nil); err != nil || orphans != nil {
		t.Fatalf("empty batch: %v, %v", orphans, err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("rejected batches must leave the tree intact: %v", err)
	}
}

func TestDetachAndHealKeepSubtreeIntact(t *testing.T) {
	net := network(100, 33)
	tree := mustDSCT(t, net, allMembers(80), 0, Config{Seed: 33})
	victim, most := -1, 0
	for _, m := range tree.Members {
		if m != tree.Source && len(tree.Children(m)) > most {
			victim, most = m, len(tree.Children(m))
		}
	}
	if victim < 0 {
		t.Skip("no forwarder")
	}
	kids := append([]int(nil), tree.Children(victim)...)
	if err := tree.Detach(victim); err != nil {
		t.Fatal(err)
	}
	if tree.Attached(victim) {
		t.Fatal("detached root still attached")
	}
	if !tree.IsMember(victim) {
		t.Fatal("detach must keep membership")
	}
	for _, c := range kids {
		if p, ok := tree.ParentOf(c); !ok || p != victim {
			t.Fatalf("detach broke the subtree: child %d parent (%d,%v)", c, p, ok)
		}
		if tree.Attached(c) {
			t.Fatalf("descendant %d of a detached root reads attached", c)
		}
	}
	if err := tree.Detach(victim); err == nil {
		t.Fatal("double detach must fail")
	}
	if err := tree.Detach(tree.Source); err == nil {
		t.Fatal("detaching the source must fail")
	}
	// Heal: graft the root back; the subtree comes with it.
	bound := calculus.DSCTHeightBoundMax(100, 3)
	p, err := tree.GraftPoint(net, victim, tree.SubtreeHeight(victim), 8, bound)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Graft(victim, p); err != nil {
		t.Fatal(err)
	}
	for _, c := range kids {
		if !tree.Attached(c) {
			t.Fatalf("descendant %d still detached after the heal", c)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultCyclesPreserveInvariants is the correlated-failure property
// test: many random rounds of batch prune+repair (outage / mass leave),
// detach-then-heal (partition), and joins — the fault plane's exact call
// pattern — must keep the tree a valid spanning tree of the surviving
// member set whenever no partition is open, with the fanout cap and
// Lemma 2 height bound holding as in the single-victim property test.
func TestFaultCyclesPreserveInvariants(t *testing.T) {
	const (
		hosts  = 140
		k      = 3
		cap    = 3*k - 1
		cycles = 320
	)
	bound := calculus.DSCTHeightBoundMax(hosts, k)
	for _, seed := range []uint64{1, 2, 3} {
		net := network(hosts, seed)
		tree := mustDSCT(t, net, allMembers(100), 0, Config{Seed: seed})
		rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
		member := make(map[int]bool, 100)
		for _, m := range tree.Members {
			member[m] = true
		}
		fanoutCap := cap
		if f := tree.MaxFanout(); f > fanoutCap {
			fanoutCap = f
		}
		var detached []int // open-partition roots, ascending
		inDetached := func(h int) bool {
			i := sort.SearchInts(detached, h)
			return i < len(detached) && detached[i] == h
		}
		check := func(step int) {
			t.Helper()
			if len(detached) > 0 {
				return // Validate requires every member attached; checked at heal
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if f := tree.MaxFanout(); f > fanoutCap {
				t.Fatalf("seed %d step %d: fanout %d exceeds cap %d", seed, step, f, fanoutCap)
			}
			if h := tree.Height(); h > bound {
				t.Fatalf("seed %d step %d: height %d exceeds Lemma 2 bound %d", seed, step, h, bound)
			}
		}
		repairAll := func(step int, roots []int) {
			t.Helper()
			if _, err := tree.RepairWith(roots, func(o, sh int) (int, error) {
				return tree.GraftPoint(net, o, sh, cap, bound)
			}); err != nil {
				t.Fatalf("seed %d step %d: repair: %v", seed, step, err)
			}
		}
		pickMembers := func(n int, pred func(int) bool) []int {
			var out []int
			seen := map[int]bool{}
			for tries := 0; tries < 10*n && len(out) < n; tries++ {
				h := rng.Intn(hosts)
				if member[h] && h != tree.Source && !seen[h] && pred(h) {
					out = append(out, h)
					seen[h] = true
				}
			}
			sort.Ints(out)
			return out
		}
		for step := 0; step < cycles; step++ {
			op := rng.Intn(4)
			if tree.Size() < 30 {
				op = 3 // refill before shrinking further
			}
			switch op {
			case 0: // correlated batch leave: PruneAll + pinned-order repair
				victims := pickMembers(1+rng.Intn(5), func(int) bool { return true })
				if len(victims) == 0 {
					continue
				}
				orphans, err := tree.PruneAll(victims)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				if !sort.IntsAreSorted(orphans) {
					t.Fatalf("seed %d step %d: orphans not ascending: %v", seed, step, orphans)
				}
				for _, v := range victims {
					member[v] = false
				}
				// Victims may have been parked partition roots; mirror the
				// fault plane and drop them from the deferred set.
				n := 0
				for _, r := range detached {
					victim := false
					for _, v := range victims {
						if v == r {
							victim = true
							break
						}
					}
					if !victim {
						detached[n] = r
						n++
					}
				}
				detached = detached[:n]
				repairAll(step, orphans)
			case 1: // partition: detach a batch of attached members
				if len(detached) > 0 {
					continue // one cut at a time, as in the fault plane
				}
				roots := pickMembers(1+rng.Intn(5), tree.Attached)
				for _, r := range roots {
					// An earlier detach may have covered r's subtree.
					if !tree.Attached(r) {
						continue
					}
					if err := tree.Detach(r); err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					detached = append(detached, r)
				}
				sort.Ints(detached)
			case 2: // heal: re-attach every parked root in ascending order
				if len(detached) == 0 {
					continue
				}
				roots := detached
				detached = nil
				repairAll(step, roots)
			case 3: // join a non-member (skip hosts inside detached subtrees)
				h := rng.Intn(hosts)
				for member[h] {
					h = (h + 1) % hosts
				}
				p, err := tree.GraftPoint(net, h, 0, cap, bound)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				if inDetached(p) || !tree.Attached(p) {
					t.Fatalf("seed %d step %d: graft point %d not attached", seed, step, p)
				}
				if err := tree.Graft(h, p); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				member[h] = true
			}
			check(step)
		}
		// Close any open cut and verify the final tree.
		if len(detached) > 0 {
			roots := detached
			detached = nil
			repairAll(cycles, roots)
		}
		check(cycles)
	}
}
