package overlay

// Fuzz for the mass-orphan batch repair path: for arbitrary (seeded)
// trees and victim sets, PruneAll must either reject the batch cleanly or
// remove exactly the victims, hand back the newly detached subtree roots
// in ascending order independent of the victims' input order, and leave a
// tree that Repair restores to a valid spanning tree of the survivors.

import (
	"sort"
	"testing"

	"repro/internal/calculus"
	"repro/internal/xrand"
)

func FuzzBatchRepair(f *testing.F) {
	f.Add(uint64(1), uint8(60), uint64(7), uint8(5))
	f.Add(uint64(9), uint8(20), uint64(0), uint8(1))
	f.Add(uint64(42), uint8(110), uint64(3), uint8(12))
	f.Fuzz(func(t *testing.T, seed uint64, size uint8, victimSeed uint64, count uint8) {
		n := int(size)%120 + 4 // population 4..123
		net := network(n, seed)
		fwd, err := BuildDSCT(net, allMembers(n), 0, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rev, err := BuildDSCT(net, allMembers(n), 0, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}

		// Derive a victim set (non-source, no duplicates) from the fuzzed
		// sub-seed; leave at least one survivor besides the source.
		vrng := xrand.New(victimSeed ^ 0x6a09e667f3bcc909)
		want := int(count)%(n-2) + 1
		seen := map[int]bool{}
		var victims []int
		for tries := 0; tries < 4*want && len(victims) < want; tries++ {
			h := 1 + vrng.Intn(n-1)
			if !seen[h] {
				seen[h] = true
				victims = append(victims, h)
			}
		}
		if len(victims) == 0 {
			return
		}
		sort.Ints(victims)
		reversed := make([]int, len(victims))
		for i, v := range victims {
			reversed[len(victims)-1-i] = v
		}

		oa, err := fwd.PruneAll(victims)
		if err != nil {
			t.Fatalf("PruneAll over valid victims: %v", err)
		}
		ob, err := rev.PruneAll(reversed)
		if err != nil {
			t.Fatalf("PruneAll reversed: %v", err)
		}
		if !sort.IntsAreSorted(oa) {
			t.Fatalf("orphans not ascending: %v", oa)
		}
		if len(oa) != len(ob) {
			t.Fatalf("orphan sets differ by input order: %v vs %v", oa, ob)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("orphan order depends on input order: %v vs %v", oa, ob)
			}
		}
		for _, v := range victims {
			if fwd.IsMember(v) {
				t.Fatalf("victim %d still a member", v)
			}
		}
		if fwd.Size() != n-len(victims) {
			t.Fatalf("size %d after removing %d of %d", fwd.Size(), len(victims), n)
		}

		// The pinned-order repair must restore a valid tree on both copies
		// with identical parent choices.
		bound := calculus.DSCTHeightBoundMax(n, 3)
		pa, err := fwd.Repair(net, oa, 8, bound)
		if err != nil {
			t.Fatalf("repair: %v", err)
		}
		pb, err := rev.Repair(net, ob, 8, bound)
		if err != nil {
			t.Fatalf("repair reversed: %v", err)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("repair parents differ at %d: %d vs %d", i, pa[i], pb[i])
			}
		}
		if err := fwd.Validate(); err != nil {
			t.Fatalf("repaired tree invalid: %v", err)
		}
	})
}
