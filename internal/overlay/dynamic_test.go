package overlay

import (
	"testing"

	"repro/internal/calculus"
	"repro/internal/xrand"
)

func TestGraftAddsMemberAndValidates(t *testing.T) {
	net := network(60, 21)
	tree := mustDSCT(t, net, allMembers(50), 0, Config{Seed: 1})
	p, err := tree.GraftPoint(net, 55, 0, 8, calculus.DSCTHeightBoundMax(51, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Graft(55, p); err != nil {
		t.Fatal(err)
	}
	if !tree.IsMember(55) || tree.Parent(55) != p || tree.Size() != 51 {
		t.Fatalf("graft bookkeeping wrong: member=%v parent=%d size=%d",
			tree.IsMember(55), tree.Parent(55), tree.Size())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraftRejectsBadTargets(t *testing.T) {
	net := network(30, 22)
	tree := mustDSCT(t, net, allMembers(20), 0, Config{Seed: 2})
	if err := tree.Graft(5, 0); err == nil {
		t.Fatal("grafting an attached member must fail")
	}
	if err := tree.Graft(0, 1); err == nil {
		t.Fatal("grafting the source must fail")
	}
	if err := tree.Graft(25, 29); err == nil {
		t.Fatal("grafting under a non-member must fail")
	}
}

func TestPruneLeafShrinksTree(t *testing.T) {
	net := network(40, 23)
	tree := mustDSCT(t, net, allMembers(40), 0, Config{Seed: 3})
	var leaf int
	for _, m := range tree.Members {
		if m != tree.Source && len(tree.Children(m)) == 0 {
			leaf = m
			break
		}
	}
	orphans, err := tree.Prune(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("leaf prune produced %d orphans", len(orphans))
	}
	if tree.IsMember(leaf) || tree.Size() != 39 {
		t.Fatal("leaf not removed")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPruneForwarderRepairReattachesOrphans(t *testing.T) {
	net := network(120, 24)
	tree := mustDSCT(t, net, allMembers(120), 0, Config{Seed: 4})
	// Pick the deepest non-source forwarder so the repair has real work.
	victim, most := -1, 0
	for _, m := range tree.Members {
		if m != tree.Source && len(tree.Children(m)) > most {
			victim, most = m, len(tree.Children(m))
		}
	}
	if victim < 0 {
		t.Skip("no forwarder")
	}
	bound := calculus.DSCTHeightBoundMax(120, 3)
	orphans, err := tree.Prune(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != most {
		t.Fatalf("%d orphans, want %d", len(orphans), most)
	}
	parents, err := tree.Repair(net, orphans, 8, bound)
	if err != nil {
		t.Fatal(err)
	}
	if len(parents) != len(orphans) {
		t.Fatalf("%d parents for %d orphans", len(parents), len(orphans))
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}
	if tree.IsMember(victim) {
		t.Fatal("victim still a member")
	}
	for i, o := range orphans {
		if tree.Parent(o) != parents[i] {
			t.Fatalf("orphan %d under %d, Repair said %d", o, tree.Parent(o), parents[i])
		}
	}
}

// Churning a tree through many prune/repair/graft rounds must keep it a
// valid spanning tree of the surviving member set, inside the Lemma 2
// height bound whenever the constraints were satisfiable.
func TestChurnRoundsPreserveInvariants(t *testing.T) {
	net := network(200, 25)
	tree := mustDSCT(t, net, allMembers(150), 0, Config{Seed: 5})
	bound := calculus.DSCTHeightBoundMax(200, 3)
	next := 150
	for round := 0; round < 40; round++ {
		// Leave: the (round mod size)-th non-source member.
		victim := -1
		for i, m := range tree.Members {
			if m != tree.Source && i%7 == round%7 {
				victim = m
				break
			}
		}
		if victim >= 0 {
			orphans, err := tree.Prune(victim)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if _, err := tree.Repair(net, orphans, 8, bound); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		// Join: a brand-new host.
		p, err := tree.GraftPoint(net, next, 0, 8, bound)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := tree.Graft(next, p); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		next++
		if err := tree.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if tree.Height() > bound {
		t.Fatalf("height %d exceeds the Lemma 2 bound %d after churn", tree.Height(), bound)
	}
}

func TestPruneRejectsSourceAndNonMembers(t *testing.T) {
	net := network(20, 26)
	tree := mustDSCT(t, net, allMembers(15), 3, Config{Seed: 6})
	if _, err := tree.Prune(3); err == nil {
		t.Fatal("pruning the source must fail")
	}
	if _, err := tree.Prune(17); err == nil {
		t.Fatal("pruning a non-member must fail")
	}
}

func TestGraftPointPrefersNearAndRespectsBounds(t *testing.T) {
	net := network(50, 27)
	tree := mustFlat(t, net, allMembers(10), 0, 2)
	// With a fanout cap of 2 every interior node is full; only leaves (and
	// sub-full nodes) qualify, so the chosen parent must have spare fanout.
	p, err := tree.GraftPoint(net, 20, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children(p)) >= 2 {
		t.Fatalf("graft point %d already has %d children", p, len(tree.Children(p)))
	}
	// Determinism: same inputs, same answer.
	q, err := tree.GraftPoint(net, 20, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Fatalf("graft point not deterministic: %d vs %d", p, q)
	}
}

func TestSubtreeHeight(t *testing.T) {
	tr := newTree(0, []int{0, 1, 2, 3})
	tr.setParent(1, 0)
	tr.setParent(2, 1)
	tr.setParent(3, 2)
	if h := tr.SubtreeHeight(0); h != 3 {
		t.Fatalf("SubtreeHeight(root) = %d, want 3", h)
	}
	if h := tr.SubtreeHeight(2); h != 1 {
		t.Fatalf("SubtreeHeight(2) = %d, want 1", h)
	}
	if h := tr.SubtreeHeight(3); h != 0 {
		t.Fatalf("SubtreeHeight(leaf) = %d, want 0", h)
	}
}

// TestDynamicsPropertyInvariants is the property test for the dynamic
// tree operations: after many random graft/prune/repair cycles (the
// control plane's exact call pattern) a DSCT tree must still satisfy the
// structural invariants — it spans exactly its member set acyclically
// (Validate), the height stays within the Lemma 2 bound for the host
// population, and no member's fanout exceeds the worse of the 3K−1
// cluster cap and the build-time maximum (a core that led clusters on
// several layers can start above the cap; grafts must then never widen
// it further, because GraftPoint only targets members below the cap).
// Constraint relaxation inside GraftPoint (fanout first, then height)
// only triggers when no conforming member exists; with this population
// there is always slack, so the caps must hold exactly.
func TestDynamicsPropertyInvariants(t *testing.T) {
	const (
		hosts  = 140
		k      = 3
		cap    = 3*k - 1
		cycles = 400
	)
	bound := calculus.DSCTHeightBoundMax(hosts, k)
	for _, seed := range []uint64{1, 2, 3} {
		net := network(hosts, seed)
		tree := mustDSCT(t, net, allMembers(100), 0, Config{Seed: seed})
		rng := xrand.New(seed ^ 0xbf58476d1ce4e5b9)
		member := make(map[int]bool, 100)
		for _, m := range tree.Members {
			member[m] = true
		}
		fanoutCap := cap
		if f := tree.MaxFanout(); f > fanoutCap {
			fanoutCap = f
		}
		check := func(step int) {
			t.Helper()
			if err := tree.Validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if f := tree.MaxFanout(); f > fanoutCap {
				t.Fatalf("seed %d step %d: fanout %d exceeds cap %d", seed, step, f, fanoutCap)
			}
			if h := tree.Height(); h > bound {
				t.Fatalf("seed %d step %d: height %d exceeds Lemma 2 bound %d", seed, step, h, bound)
			}
		}
		for step := 0; step < cycles; step++ {
			join := rng.Intn(2) == 0
			if tree.Size() <= 5 {
				join = true // keep the tree from draining away
			} else if tree.Size() >= hosts {
				join = false
			}
			if join {
				// Pick a random non-member to graft.
				h := rng.Intn(hosts)
				for member[h] {
					h = (h + 1) % hosts
				}
				p, err := tree.GraftPoint(net, h, 0, cap, bound)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				if err := tree.Graft(h, p); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				member[h] = true
			} else {
				// Pick a random non-source member to prune, then repair.
				h := rng.Intn(hosts)
				for !member[h] || h == tree.Source {
					h = (h + 1) % hosts
				}
				orphans, err := tree.Prune(h)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				member[h] = false
				if _, err := tree.Repair(net, orphans, cap, bound); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
			check(step)
		}
	}
}
