// Package overlay builds and measures the end-host multicast trees of the
// paper's evaluation: DSCT (the location-aware hierarchy-and-cluster tree
// of ref [14]), NICE (the location-blind hierarchical clustering of ref
// [8]), their capacity-aware variants (cluster sizes capped by host output
// capacity, the Fig. 1 scheme), and a flat degree-bounded capacity-aware
// tree for small examples.
package overlay

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/topo"
)

// Tree is a source-rooted multicast delivery tree over a set of member
// hosts. Packets flow from the source along parent→child edges; each edge
// is one overlay hop (one underlay unicast path).
type Tree struct {
	Source  int
	Members []int
	parent  map[int]int
	child   map[int][]int
	member  map[int]bool
}

func newTree(source int, members []int) *Tree {
	t := &Tree{
		Source:  source,
		Members: append([]int(nil), members...),
		parent:  make(map[int]int, len(members)),
		child:   make(map[int][]int),
		member:  make(map[int]bool, len(members)),
	}
	for _, m := range members {
		t.member[m] = true
	}
	t.parent[source] = -1
	return t
}

func (t *Tree) setParent(node, parent int) {
	if node == t.Source {
		panic("overlay: cannot assign a parent to the source")
	}
	if _, dup := t.parent[node]; dup {
		panic(fmt.Sprintf("overlay: host %d assigned two parents", node))
	}
	t.parent[node] = parent
	t.child[parent] = append(t.child[parent], node)
}

// Clone returns a deep copy of the tree: a session can mutate the copy
// (churn grafts, reopt rewires, fault pruning) without touching the
// original. Child-slice orderings are preserved exactly — forwarding
// fan-out order and the snapshot codec both depend on them — so a cloned
// tree is observably identical to a freshly built one.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		Source:  t.Source,
		Members: append([]int(nil), t.Members...),
		parent:  make(map[int]int, len(t.parent)),
		child:   make(map[int][]int, len(t.child)),
		member:  make(map[int]bool, len(t.member)),
	}
	for n, p := range t.parent {
		c.parent[n] = p
	}
	for p, kids := range t.child {
		c.child[p] = append([]int(nil), kids...)
	}
	for m, ok := range t.member {
		c.member[m] = ok
	}
	return c
}

// Parent returns the parent of member h, or -1 for the source.
func (t *Tree) Parent(h int) int { return t.parent[h] }

// ParentOf returns h's parent edge and whether one exists — unlike Parent
// it distinguishes a detached member (no edge) from a child of host 0.
func (t *Tree) ParentOf(h int) (int, bool) {
	p, ok := t.parent[h]
	return p, ok
}

// Attached reports whether member h is connected to the source. Detached
// subtree roots (and every node inside such a subtree) report false.
func (t *Tree) Attached(h int) bool {
	_, ok := t.depthAttached(h)
	return ok
}

// IsMember reports whether h is currently in the tree's member set.
func (t *Tree) IsMember(h int) bool { return t.member[h] }

// Children returns h's direct children (owned by the tree; do not mutate).
func (t *Tree) Children(h int) []int { return t.child[h] }

// EachParent calls fn for every node with at least one child, passing the
// tree-owned child slice (callers must copy to retain). Iteration order
// is unspecified (map order); callers needing determinism must not depend
// on it. It exists so a session build can flatten all child sets in
// O(edges) instead of probing every (host, group) pair.
func (t *Tree) EachParent(fn func(parent int, children []int)) {
	for p, cs := range t.child {
		if len(cs) > 0 {
			fn(p, cs)
		}
	}
}

// Size returns the number of members.
func (t *Tree) Size() int { return len(t.Members) }

// Depth returns the number of overlay hops from the source to h.
func (t *Tree) Depth(h int) int {
	d := 0
	for v := h; t.parent[v] >= 0; v = t.parent[v] {
		d++
		if d > len(t.Members) {
			panic("overlay: parent cycle")
		}
	}
	return d
}

// Height returns the maximum Depth over all members — the paper's tree
// height minus one (a tree of H layers has height H−1 hops).
func (t *Tree) Height() int {
	max := 0
	for _, m := range t.Members {
		if d := t.Depth(m); d > max {
			max = d
		}
	}
	return max
}

// Layers returns the layer count the paper's Tables I–III report:
// Height() + 1.
func (t *Tree) Layers() int { return t.Height() + 1 }

// MaxFanout returns the largest child count of any member.
func (t *Tree) MaxFanout() int {
	max := 0
	for _, cs := range t.child {
		if len(cs) > max {
			max = len(cs)
		}
	}
	return max
}

// AvgFanout returns the mean child count over forwarding (non-leaf)
// members, or 0 for a single-member tree.
func (t *Tree) AvgFanout() float64 {
	if len(t.child) == 0 {
		return 0
	}
	total := 0
	for _, cs := range t.child {
		total += len(cs)
	}
	return float64(total) / float64(len(t.child))
}

// Validate checks the tree spans exactly its member set with no cycles and
// every parent edge internal to the membership.
func (t *Tree) Validate() error {
	inSet := make(map[int]bool, len(t.Members))
	for _, m := range t.Members {
		if inSet[m] {
			return fmt.Errorf("overlay: duplicate member %d", m)
		}
		inSet[m] = true
	}
	if !inSet[t.Source] {
		return fmt.Errorf("overlay: source %d not a member", t.Source)
	}
	for _, m := range t.Members {
		p, ok := t.parent[m]
		if !ok {
			return fmt.Errorf("overlay: member %d detached", m)
		}
		if m == t.Source {
			if p != -1 {
				return fmt.Errorf("overlay: source has parent %d", p)
			}
			continue
		}
		if !inSet[p] {
			return fmt.Errorf("overlay: member %d has foreign parent %d", m, p)
		}
		// Walk to the root to prove reachability (Depth panics on cycles;
		// convert that to an error here).
		steps, v := 0, m
		for t.parent[v] >= 0 {
			v = t.parent[v]
			steps++
			if steps > len(t.Members) {
				return fmt.Errorf("overlay: cycle through member %d", m)
			}
		}
		if v != t.Source {
			return fmt.Errorf("overlay: member %d roots at %d, not the source", m, v)
		}
	}
	return nil
}

// PathLatency returns the summed underlay propagation delay from the
// source to member h along tree edges.
func (t *Tree) PathLatency(net *topo.Network, h int) des.Duration {
	var total des.Duration
	for v := h; t.parent[v] >= 0; v = t.parent[v] {
		total += net.Latency(t.parent[v], v)
	}
	return total
}

// Stretch returns the mean ratio of tree path latency to direct unicast
// latency over all non-source members (RMP/stretch metric).
func (t *Tree) Stretch(net *topo.Network) float64 {
	var sum float64
	n := 0
	for _, m := range t.Members {
		if m == t.Source {
			continue
		}
		direct := net.Latency(t.Source, m)
		if direct <= 0 {
			continue
		}
		sum += float64(t.PathLatency(net, m)) / float64(direct)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// LinkStress counts, for each directed backbone link, how many overlay
// edges route across it, returning the maximum and mean over used links.
func (t *Tree) LinkStress(net *topo.Network) (max int, avg float64) {
	type edge struct{ a, b topo.NodeID }
	stress := make(map[edge]int)
	for _, m := range t.Members {
		p := t.parent[m]
		if p < 0 {
			continue
		}
		path := net.RouterPath(p, m)
		for i := 0; i+1 < len(path); i++ {
			stress[edge{path[i], path[i+1]}]++
		}
	}
	if len(stress) == 0 {
		return 0, 0
	}
	total := 0
	for _, s := range stress {
		total += s
		if s > max {
			max = s
		}
	}
	return max, float64(total) / float64(len(stress))
}

// sortByRTT orders ids by round-trip time to the pivot (ties broken by
// id for determinism). The pivot itself, if present, sorts first.
func sortByRTT(net *topo.Network, pivot int, ids []int) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := net.RTT(pivot, ids[i]), net.RTT(pivot, ids[j])
		if a != b {
			return a < b
		}
		return ids[i] < ids[j]
	})
}

// rttCentroid returns the member of cluster minimising total RTT to the
// others — NICE's "graph-theoretic centre" leader rule. Ties break by id.
func rttCentroid(net *topo.Network, cluster []int) int {
	best, bestCost := -1, des.Duration(0)
	for _, c := range cluster {
		var cost des.Duration
		for _, o := range cluster {
			cost += net.RTT(c, o)
		}
		if best < 0 || cost < bestCost || (cost == bestCost && c < best) {
			best, bestCost = c, cost
		}
	}
	return best
}
