package overlay

import (
	"sort"

	"repro/internal/snap"
)

// Checkpoint support. A tree serializes as its member list plus its edge
// lists: parents in ascending order, each parent's children in child-
// slice order. Restoring replays the edges through setParent, which is
// the only constructor of parent/child entries, so the rebuilt maps
// match the originals exactly — including the child-slice orderings the
// session's compiled forwarding fan-out depends on, and the absent
// parent entries that mark detached subtree roots.

// Snapshot appends the tree's full structure to the open record.
func (t *Tree) Snapshot(w *snap.Writer) {
	w.I64(int64(t.Source))
	w.Len(len(t.Members))
	for _, m := range t.Members {
		w.I64(int64(m))
	}
	parents := make([]int, 0, len(t.child))
	for p := range t.child {
		parents = append(parents, p)
	}
	sort.Ints(parents)
	w.Len(len(parents))
	for _, p := range parents {
		w.I64(int64(p))
		w.Len(len(t.child[p]))
		for _, c := range t.child[p] {
			w.I64(int64(c))
		}
	}
}

// RestoreTree rebuilds a tree written by Snapshot.
func RestoreTree(r *snap.Reader) *Tree {
	source := int(r.I64())
	members := make([]int, r.Len())
	for i := range members {
		members[i] = int(r.I64())
	}
	t := newTree(source, members)
	np := r.Len()
	for i := 0; i < np; i++ {
		p := int(r.I64())
		nc := r.Len()
		for j := 0; j < nc; j++ {
			if r.Err() != nil {
				return t
			}
			t.setParent(int(r.I64()), p)
		}
	}
	return t
}
