package overlay

// The shared clustering machinery of the hierarchy builders: every
// cluster-based strategy (DSCT, NICE, and any future variant) partitions
// an ordered member list into RTT-proximity clusters, elects a core per
// cluster, and iterates the surviving cores into the next layer. Factored
// out of the strategy constructors so the strategies differ only in how
// they order and partition the bottom layer, not in the layering loop.

import (
	"fmt"

	"repro/internal/topo"
	"repro/internal/xrand"
)

// clusterize partitions ids (in the given order) into proximity clusters.
// Each cluster is seeded by the first unassigned member and completed with
// its nearest unassigned neighbours by RTT. Sizes are drawn from
// [k, 3k−1], capped by sizeCap, exactly as the DSCT paper specifies: when
// no more than the maximum cluster size remains, the remainder forms the
// final cluster.
func clusterize(net *topo.Network, ids []int, k, sizeCap int, rng *xrand.Rand) [][]int {
	limit := 3*k - 1
	lo := k
	if sizeCap >= 2 && sizeCap < limit {
		limit = sizeCap
		if lo > limit {
			lo = limit
		}
	}
	unassigned := append([]int(nil), ids...)
	var clusters [][]int
	for len(unassigned) > 0 {
		size := len(unassigned)
		if size > limit {
			size = rng.IntRange(lo, limit)
		}
		pivot := unassigned[0]
		rest := unassigned[1:]
		sortByRTT(net, pivot, rest)
		cluster := make([]int, 0, size)
		cluster = append(cluster, pivot)
		cluster = append(cluster, rest[:size-1]...)
		clusters = append(clusters, cluster)
		unassigned = append(unassigned[:0], rest[size-1:]...)
	}
	return clusters
}

// pickCore selects the cluster core: the multicast source always wins its
// clusters (so the delivery tree roots at the source); otherwise the RTT
// centroid leads.
func pickCore(net *topo.Network, cluster []int, source int) int {
	for _, m := range cluster {
		if m == source {
			return source
		}
	}
	return rttCentroid(net, cluster)
}

// buildHierarchy runs the layered clustering loop over one ordered member
// set, assigning parent edges into t, and returns the surviving top core.
func buildHierarchy(t *Tree, net *topo.Network, layer []int, source int, k, sizeCap int, rng *xrand.Rand) int {
	for len(layer) > 1 {
		clusters := clusterize(net, layer, k, sizeCap, rng)
		next := make([]int, 0, len(clusters))
		for _, cluster := range clusters {
			core := pickCore(net, cluster, source)
			for _, m := range cluster {
				if m != core {
					t.setParent(m, core)
				}
			}
			next = append(next, core)
		}
		layer = next
	}
	return layer[0]
}

func checkMembership(members []int, source int) error {
	if len(members) == 0 {
		return fmt.Errorf("overlay: empty member set")
	}
	for _, m := range members {
		if m == source {
			return nil
		}
	}
	return fmt.Errorf("overlay: source %d not in member set of %d hosts", source, len(members))
}
