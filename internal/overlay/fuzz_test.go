package overlay

// Fuzz for the graft-point selector: for arbitrary (seeded) trees, member
// churn prefixes, graft targets, and constraint bounds, GraftPoint must
// either return an attached member that accepts the graft or an error —
// never a parent that corrupts the tree. The oracle after every accepted
// graft is Tree.Validate plus the constraint-respecting property: when a
// member satisfying both bounds existed, the chosen parent satisfies
// them too (relaxation is only legal when nothing conforms).

import (
	"testing"
)

func FuzzGraftPoint(f *testing.F) {
	f.Add(uint64(1), uint8(30), uint8(35), uint8(6), uint8(6), uint8(3))
	f.Add(uint64(7), uint8(5), uint8(9), uint8(2), uint8(0), uint8(1))
	f.Add(uint64(42), uint8(60), uint8(70), uint8(0), uint8(8), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, size, joiner, maxFanout, maxHeight, subHeight uint8) {
		n := int(size)%120 + 2 // population 2..121
		net := network(n+16, seed)
		members := allMembers(n)
		tree, err := BuildDSCT(net, members, 0, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		h := int(joiner) % (n + 16)
		if tree.IsMember(h) {
			// Grafting an attached member must error and leave the tree
			// untouched.
			if err := tree.Graft(h, tree.Source); err == nil {
				t.Fatal("graft of an attached member succeeded")
			}
			return
		}
		mf, mh, sh := int(maxFanout)%12, int(maxHeight)%12, int(subHeight)%4
		p, err := tree.GraftPoint(net, h, sh, mf, mh)
		if err != nil {
			t.Fatalf("graft point over a fully attached tree: %v", err)
		}
		if !tree.IsMember(p) {
			t.Fatalf("graft point %d is not a member", p)
		}
		// If any member conformed to both bounds, the pick must conform
		// too (GraftPoint may only relax when nothing fits).
		conforming := false
		for _, m := range tree.Members {
			fanoutOK := mf <= 0 || len(tree.Children(m)) < mf
			heightOK := mh <= 0 || tree.Depth(m)+1+sh <= mh
			if fanoutOK && heightOK {
				conforming = true
				break
			}
		}
		if conforming {
			if mf > 0 && len(tree.Children(p)) >= mf {
				t.Fatalf("pick %d violates fanout %d with conforming members available", p, mf)
			}
		}
		if err := tree.Graft(h, p); err != nil {
			t.Fatalf("graft at the chosen point: %v", err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
