package overlay

import (
	"testing"

	"repro/internal/calculus"
	"repro/internal/topo"
	"repro/internal/xrand"
)

func network(n int, seed uint64) *topo.Network {
	return topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: n, Seed: seed})
}

func allMembers(n int) []int {
	ms := make([]int, n)
	for i := range ms {
		ms[i] = i
	}
	return ms
}

func mustDSCT(t testing.TB, net *topo.Network, members []int, source int, cfg Config) *Tree {
	t.Helper()
	tr, err := BuildDSCT(net, members, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustNICE(t testing.TB, net *topo.Network, members []int, source int, cfg Config) *Tree {
	t.Helper()
	tr, err := BuildNICE(net, members, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustFlat(t testing.TB, net *topo.Network, members []int, source, fanout int) *Tree {
	t.Helper()
	tr, err := BuildFlat(net, members, source, fanout)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildDSCTSpansAndValidates(t *testing.T) {
	net := network(200, 1)
	tree := mustDSCT(t, net, allMembers(200), 0, Config{Seed: 1})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 200 {
		t.Fatalf("size = %d", tree.Size())
	}
	if tree.Source != 0 || tree.Parent(0) != -1 {
		t.Fatal("root must be the source")
	}
}

func TestBuildDSCTDeterministic(t *testing.T) {
	net := network(120, 2)
	a := mustDSCT(t, net, allMembers(120), 5, Config{Seed: 9})
	b := mustDSCT(t, net, allMembers(120), 5, Config{Seed: 9})
	for _, m := range a.Members {
		if a.Parent(m) != b.Parent(m) {
			t.Fatalf("member %d parents differ", m)
		}
	}
	c := mustDSCT(t, net, allMembers(120), 5, Config{Seed: 10})
	diff := false
	for _, m := range a.Members {
		if a.Parent(m) != c.Parent(m) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds built identical trees (suspicious)")
	}
}

// Lemma 2 property: for many (n, seed) draws the measured DSCT layer count
// never exceeds the height bound with j1 = 0.
func TestDSCTHeightWithinLemma2Bound(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(600)
		net := network(n, uint64(trial))
		tree := mustDSCT(t, net, allMembers(n), rng.Intn(n), Config{Seed: uint64(trial)})
		if err := tree.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bound := calculus.DSCTHeightBoundMax(n, 3)
		// The domain partition adds at most the inter-cluster hierarchy on
		// top of the deepest domain; with 19 domains the inter layers are
		// <= ceil(log_3(19+..)) ~ 3, already inside the Lemma 2 count for
		// the sizes we test, since cluster sizes range up to 3k−1 > k.
		if got := tree.Layers(); got > bound+1 {
			t.Fatalf("trial %d: n=%d layers=%d exceeds bound %d", trial, n, got, bound)
		}
	}
}

func TestDSCTSingleMember(t *testing.T) {
	net := network(10, 4)
	tree := mustDSCT(t, net, []int{3}, 3, Config{})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Height() != 0 || tree.Layers() != 1 {
		t.Fatalf("height=%d layers=%d", tree.Height(), tree.Layers())
	}
}

func TestDSCTLocalityBeatsNICE(t *testing.T) {
	// DSCT clusters within router domains, so its mean overlay-hop
	// stretch must not exceed NICE's on the same membership (this is the
	// paper's stated reason DSCT wins in Fig. 6).
	net := network(300, 7)
	members := allMembers(300)
	var dsctStretch, niceStretch float64
	for seed := uint64(0); seed < 5; seed++ {
		dsctStretch += mustDSCT(t, net, members, 0, Config{Seed: seed}).Stretch(net)
		niceStretch += mustNICE(t, net, members, 0, Config{Seed: seed}).Stretch(net)
	}
	if dsctStretch >= niceStretch {
		t.Fatalf("DSCT stretch %v >= NICE stretch %v", dsctStretch/5, niceStretch/5)
	}
}

func TestBuildNICEValidates(t *testing.T) {
	net := network(150, 5)
	tree := mustNICE(t, net, allMembers(150), 7, Config{Seed: 3})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Source != 7 {
		t.Fatal("wrong source")
	}
}

func TestSubsetMembership(t *testing.T) {
	net := network(100, 6)
	members := []int{2, 3, 5, 8, 13, 21, 34, 55, 89}
	tree := mustDSCT(t, net, members, 13, Config{Seed: 1})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != len(members) {
		t.Fatalf("size = %d", tree.Size())
	}
	for _, m := range members {
		if m != 13 && tree.Parent(m) < 0 {
			t.Fatalf("member %d unattached", m)
		}
	}
}

func TestCapacityCapShrinksFanoutAndDeepens(t *testing.T) {
	net := network(400, 8)
	members := allMembers(400)
	free := mustDSCT(t, net, members, 0, Config{Seed: 2})
	capped := mustDSCT(t, net, members, 0, Config{Seed: 2, SizeCap: 3})
	if err := capped.Validate(); err != nil {
		t.Fatal(err)
	}
	if capped.MaxFanout() > free.MaxFanout() && free.MaxFanout() > 0 {
		// capped fanout should not exceed the free tree's
		t.Fatalf("capped fanout %d > free fanout %d", capped.MaxFanout(), free.MaxFanout())
	}
	if capped.Layers() <= free.Layers() {
		t.Fatalf("capacity cap did not deepen the tree: %d vs %d layers",
			capped.Layers(), free.Layers())
	}
}

func TestFanoutBound(t *testing.T) {
	cases := []struct {
		load, factor float64
		want         int
	}{
		{0.35, 2.0, 5},
		{0.50, 2.0, 3}, // 4·0.5 = 2.0 is critically loaded; backed off
		{0.75, 2.0, 2},
		{0.95, 2.0, 2}, // clamped
		{0.35, 1.5, 4},
		{0.20, 1.0, 4}, // 5·0.2 = 1.0 critically loaded; backed off
	}
	for _, c := range cases {
		if got := FanoutBound(c.load, c.factor); got != c.want {
			t.Fatalf("FanoutBound(%v,%v) = %d, want %d", c.load, c.factor, got, c.want)
		}
	}
}

func TestCapacityConfig(t *testing.T) {
	cfg := CapacityConfig(Config{K: 3, Seed: 1}, 0.35, 1.5)
	if cfg.SizeCap != 5 {
		t.Fatalf("SizeCap = %d", cfg.SizeCap)
	}
	if cfg.K != 3 || cfg.Seed != 1 {
		t.Fatal("base config fields lost")
	}
}

func TestCapacityAwareLayersGrowWithLoad(t *testing.T) {
	// The Tables I–III shape: layer count rises as the load grows, while
	// the unconstrained tree's layer count is load-independent.
	net := network(500, 9)
	members := allMembers(500)
	low := mustDSCT(t, net, members, 0, CapacityConfig(Config{Seed: 4}, 0.35, 1.5))
	high := mustDSCT(t, net, members, 0, CapacityConfig(Config{Seed: 4}, 0.95, 1.5))
	if low.Layers() >= high.Layers() {
		t.Fatalf("layers low=%d high=%d — no growth with load", low.Layers(), high.Layers())
	}
}

func TestBuildFlatFig1Shapes(t *testing.T) {
	// The paper's Fig. 1: 5 hosts, capacity C = 5ρ. One group ⇒ fanout 5
	// ⇒ star. Two groups ⇒ fanout 2 ⇒ two-level tree.
	net := network(5, 10)
	members := allMembers(5)
	star := mustFlat(t, net, members, 0, 5)
	if err := star.Validate(); err != nil {
		t.Fatal(err)
	}
	if star.Height() != 1 || len(star.Children(0)) != 4 {
		t.Fatalf("fanout-5 tree: height %d, children %d", star.Height(), len(star.Children(0)))
	}
	deep := mustFlat(t, net, members, 0, 2)
	if err := deep.Validate(); err != nil {
		t.Fatal(err)
	}
	if deep.Height() != 2 || len(deep.Children(0)) != 2 {
		t.Fatalf("fanout-2 tree: height %d, children %d", deep.Height(), len(deep.Children(0)))
	}
}

func TestBuildFlatRespectsFanout(t *testing.T) {
	net := network(100, 11)
	tree := mustFlat(t, net, allMembers(100), 0, 3)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.MaxFanout() > 3 {
		t.Fatalf("fanout %d exceeds bound 3", tree.MaxFanout())
	}
}

func TestTreeMetrics(t *testing.T) {
	net := network(50, 12)
	tree := mustDSCT(t, net, allMembers(50), 0, Config{Seed: 6})
	if tree.AvgFanout() <= 0 {
		t.Fatal("avg fanout must be positive")
	}
	if s := tree.Stretch(net); s < 1 {
		t.Fatalf("stretch %v < 1", s)
	}
	max, avg := tree.LinkStress(net)
	if max < 1 || avg <= 0 {
		t.Fatalf("stress max=%d avg=%v", max, avg)
	}
	for _, m := range tree.Members {
		if m == tree.Source {
			continue
		}
		if tree.PathLatency(net, m) <= 0 {
			t.Fatalf("member %d path latency not positive", m)
		}
		if tree.Depth(m) < 1 {
			t.Fatalf("member %d depth %d", m, tree.Depth(m))
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	net := network(30, 13)
	tree := mustDSCT(t, net, allMembers(30), 0, Config{Seed: 1})
	// Detach a member.
	var victim int
	for _, m := range tree.Members {
		if m != tree.Source {
			victim = m
			break
		}
	}
	delete(tree.parent, victim)
	if tree.Validate() == nil {
		t.Fatal("validation missed a detached member")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	net := network(30, 14)
	tree := mustDSCT(t, net, allMembers(30), 0, Config{Seed: 1})
	// Create a cycle between two non-source members.
	var a, b = -1, -1
	for _, m := range tree.Members {
		if m == tree.Source {
			continue
		}
		if a < 0 {
			a = m
		} else {
			b = m
			break
		}
	}
	tree.parent[a] = b
	tree.parent[b] = a
	if tree.Validate() == nil {
		t.Fatal("validation missed a cycle")
	}
}

// The public build API reports bad specs as errors, not panics, so a
// scenario sweep can surface the offending configuration.
func TestBuilderErrors(t *testing.T) {
	net := network(10, 15)
	for i, fn := range []func() error{
		func() error { _, err := BuildDSCT(net, nil, 0, Config{}); return err },
		func() error { _, err := BuildDSCT(net, []int{1, 2}, 5, Config{}); return err }, // source not member
		func() error { _, err := BuildDSCT(net, []int{1, 2}, 1, Config{K: 1}); return err },
		func() error { _, err := BuildDSCT(net, []int{1, 2}, 1, Config{SizeCap: 1}); return err },
		func() error { _, err := BuildNICE(net, nil, 0, Config{}); return err },
		func() error { _, err := BuildFlat(net, []int{1, 2}, 1, 0); return err },
		func() error { _, err := BuildFlatBlind(net, []int{1, 2}, 5, 2, 1); return err },
	} {
		if fn() == nil {
			t.Fatalf("case %d: no error", i)
		}
	}
	// Internal invariants stay panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("FanoutBound(0,1): no panic")
			}
		}()
		FanoutBound(0, 1)
	}()
}

func TestSetParentGuards(t *testing.T) {
	tr := newTree(0, []int{0, 1})
	tr.setParent(1, 0)
	for i, fn := range []func(){
		func() { tr.setParent(0, 1) }, // source reparent
		func() { tr.setParent(1, 0) }, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: every cluster from clusterize is within size limits and the
// clusters partition the input.
func TestQuickClusterize(t *testing.T) {
	net := network(300, 16)
	rng := xrand.New(17)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		ids := rng.Perm(300)[:n]
		k := 2 + rng.Intn(3)
		cap := 0
		if rng.Bool(0.5) {
			cap = 2 + rng.Intn(6)
		}
		clusters := clusterize(net, ids, k, cap, rng)
		seen := make(map[int]bool)
		total := 0
		limit := 3*k - 1
		if cap >= 2 && cap < limit {
			limit = cap
		}
		for _, c := range clusters {
			if len(c) > limit {
				t.Fatalf("trial %d: cluster size %d over limit %d", trial, len(c), limit)
			}
			for _, m := range c {
				if seen[m] {
					t.Fatalf("trial %d: member %d in two clusters", trial, m)
				}
				seen[m] = true
				total++
			}
		}
		if total != n {
			t.Fatalf("trial %d: clusters cover %d of %d", trial, total, n)
		}
	}
}

func BenchmarkBuildDSCT665(b *testing.B) {
	net := network(665, 1)
	members := allMembers(665)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustDSCT(b, net, members, 0, Config{Seed: uint64(i)})
	}
}

func BenchmarkBuildNICE665(b *testing.B) {
	net := network(665, 1)
	members := allMembers(665)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustNICE(b, net, members, 0, Config{Seed: uint64(i)})
	}
}
