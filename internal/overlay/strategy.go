package overlay

// The pluggable overlay-strategy layer: tree construction is a named,
// registered Strategy instead of a hard-coded free function, so sessions,
// scenarios, and the CLI select the algorithm by name ("dsct", "nice",
// "spt", "greedy") and the control plane grafts, repairs, and re-optimises
// through the same strategy that built the tree. Strategies are stateless
// singletons; per-group randomness comes in through Config.Seed exactly as
// it did for the free-function builders, so the "dsct" and "nice"
// strategies are byte-identical to BuildDSCT/BuildNICE.

import (
	"fmt"
	"sort"

	"repro/internal/calculus"
	"repro/internal/des"
	"repro/internal/topo"
)

// Limits are a strategy's graft-time constraints: the child budget of a
// forwarding member and the tree height cap the control plane enforces on
// joins and repairs. A non-positive field disables that constraint.
type Limits struct {
	MaxFanout int
	MaxHeight int
}

// Strategy builds and incrementally maintains one family of delivery
// trees. Build constructs a tree over a member set; Limits reports the
// graft constraints for a population of n hosts; GraftPoint picks the
// adoption parent for a joining host or an orphan subtree root under the
// strategy's own placement rule (RTT-proximity for the cluster
// hierarchies, accumulated path delay for the shortest-path family,
// capacity-scaled fanout for the greedy family).
type Strategy interface {
	Name() string
	Build(net *topo.Network, members []int, source int, cfg Config) (*Tree, error)
	Limits(cfg Config, n int) Limits
	GraftPoint(net *topo.Network, t *Tree, h, subHeight int, lim Limits) (int, error)
	// FanoutOK reports whether member m may accept one more child under
	// the strategy's fanout rule — the flat lim.MaxFanout cap for the
	// cluster and shortest-path families, the capacity-scaled per-host
	// budget for greedy. Graft points and re-optimization rewires filter
	// candidates through this, so every mutation path enforces the same
	// budget the constructor did.
	FanoutOK(net *topo.Network, t *Tree, m int, lim Limits) bool
}

// flatFanoutOK is the shared flat-cap fanout rule.
func flatFanoutOK(t *Tree, m int, lim Limits) bool {
	return lim.MaxFanout <= 0 || len(t.child[m]) < lim.MaxFanout
}

var strategies = map[string]Strategy{}

// RegisterStrategy adds s to the registry. Duplicate names are a
// programming error and panic.
func RegisterStrategy(s Strategy) {
	if _, dup := strategies[s.Name()]; dup {
		panic(fmt.Sprintf("overlay: duplicate strategy %q", s.Name()))
	}
	strategies[s.Name()] = s
}

// LookupStrategy resolves a strategy by name.
func LookupStrategy(name string) (Strategy, error) {
	s, ok := strategies[name]
	if !ok {
		return nil, fmt.Errorf("overlay: unknown strategy %q (have %v)", name, StrategyNames())
	}
	return s, nil
}

// MustStrategy is LookupStrategy for static names.
func MustStrategy(name string) Strategy {
	s, err := LookupStrategy(name)
	if err != nil {
		panic(err)
	}
	return s
}

// StrategyNames lists the registered strategies, sorted.
func StrategyNames() []string {
	out := make([]string, 0, len(strategies))
	for n := range strategies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterStrategy(dsctStrategy{})
	RegisterStrategy(niceStrategy{})
	RegisterStrategy(sptStrategy{})
	RegisterStrategy(greedyStrategy{})
}

// clusterLimits are the constraints shared by the cluster hierarchies:
// the 3K−1 cluster-size cap as the child budget and the Lemma 2 height
// bound — exactly what the control plane enforced before strategies
// existed, so "dsct" churn behaviour is unchanged.
func clusterLimits(cfg Config, n int) Limits {
	k := cfg.K
	if k == 0 {
		k = 3
	}
	return Limits{MaxFanout: 3*k - 1, MaxHeight: calculus.DSCTHeightBoundMax(n, k)}
}

// dsctStrategy is the paper's DSCT builder behind the Strategy interface.
type dsctStrategy struct{}

func (dsctStrategy) Name() string { return "dsct" }
func (dsctStrategy) Build(net *topo.Network, members []int, source int, cfg Config) (*Tree, error) {
	return BuildDSCT(net, members, source, cfg)
}
func (dsctStrategy) Limits(cfg Config, n int) Limits { return clusterLimits(cfg, n) }
func (dsctStrategy) GraftPoint(net *topo.Network, t *Tree, h, subHeight int, lim Limits) (int, error) {
	return t.GraftPoint(net, h, subHeight, lim.MaxFanout, lim.MaxHeight)
}
func (dsctStrategy) FanoutOK(net *topo.Network, t *Tree, m int, lim Limits) bool {
	return flatFanoutOK(t, m, lim)
}

// niceStrategy is the location-blind NICE builder behind the interface.
type niceStrategy struct{}

func (niceStrategy) Name() string { return "nice" }
func (niceStrategy) Build(net *topo.Network, members []int, source int, cfg Config) (*Tree, error) {
	return BuildNICE(net, members, source, cfg)
}
func (niceStrategy) Limits(cfg Config, n int) Limits { return clusterLimits(cfg, n) }
func (niceStrategy) GraftPoint(net *topo.Network, t *Tree, h, subHeight int, lim Limits) (int, error) {
	return t.GraftPoint(net, h, subHeight, lim.MaxFanout, lim.MaxHeight)
}
func (niceStrategy) FanoutOK(net *topo.Network, t *Tree, m int, lim Limits) bool {
	return flatFanoutOK(t, m, lim)
}

// sptStrategy builds a delay-weighted shortest-path tree over the router
// graph: members attach Prim-style, each new member adopting the attached
// parent minimising its accumulated source-to-member propagation delay
// (parent's tree-path delay plus the underlay latency of the new hop),
// under the 3K−1 child budget. The result approximates the underlay
// shortest-path tree restricted to overlay fanout — the delay-metric
// routing of the dynamic-overlay literature, against which the paper's
// proximity clustering can be compared.
type sptStrategy struct{}

func (sptStrategy) Name() string { return "spt" }

func (sptStrategy) Limits(cfg Config, n int) Limits {
	k := cfg.K
	if k == 0 {
		k = 3
	}
	// No cluster hierarchy, so no Lemma 2 form: height is whatever the
	// delay metric yields (bounded in practice by the fanout budget).
	return Limits{MaxFanout: 3*k - 1, MaxHeight: 0}
}

func (s sptStrategy) Build(net *topo.Network, members []int, source int, cfg Config) (*Tree, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := checkMembership(members, source); err != nil {
		return nil, err
	}
	fanout := s.Limits(cfg, len(members)).MaxFanout
	t := newTree(source, members)

	// Prim over the overlay metric d(m) = d(parent) + latency(parent, m).
	// best[m] caches the cheapest attachment seen so far; when a parent
	// fills up, the nodes that cached it recompute over the attached set.
	const unset = -1
	dist := make(map[int]des.Duration, len(members))
	kids := make(map[int]int, len(members))
	dist[source] = 0
	attached := []int{source}
	type edge struct {
		cost   des.Duration
		parent int
	}
	best := make(map[int]edge, len(members))
	unattached := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m == source {
			continue
		}
		unattached = append(unattached, m)
		best[m] = edge{cost: dist[source] + net.Latency(source, m), parent: source}
	}
	// Deterministic candidate order: ids ascending.
	sort.Ints(unattached)

	recompute := func(m int) edge {
		e := edge{parent: unset}
		for _, a := range attached {
			if kids[a] >= fanout {
				continue
			}
			c := dist[a] + net.Latency(a, m)
			if e.parent == unset || c < e.cost || (c == e.cost && a < e.parent) {
				e = edge{cost: c, parent: a}
			}
		}
		return e
	}

	for len(unattached) > 0 {
		// Pick the unattached member with the cheapest valid attachment
		// (ties by id — unattached stays id-sorted throughout).
		pick, pickAt := edge{parent: unset}, -1
		for i, m := range unattached {
			e := best[m]
			if kids[e.parent] >= fanout {
				e = recompute(m)
				best[m] = e
			}
			if e.parent == unset {
				continue
			}
			if pickAt < 0 || e.cost < pick.cost {
				pick, pickAt = e, i
			}
		}
		if pickAt < 0 {
			// Unreachable while fanout >= 1: every attachment adds budget.
			return nil, fmt.Errorf("overlay: spt build stuck with %d members unattached", len(unattached))
		}
		m := unattached[pickAt]
		t.setParent(m, pick.parent)
		dist[m] = pick.cost
		kids[pick.parent]++
		attached = append(attached, m)
		unattached = append(unattached[:pickAt], unattached[pickAt+1:]...)
		delete(best, m)
		// The new member may now be the cheapest parent for the rest.
		for _, u := range unattached {
			c := dist[m] + net.Latency(m, u)
			e := best[u]
			if e.parent == unset || c < e.cost || (c == e.cost && m < e.parent) {
				best[u] = edge{cost: c, parent: m}
			}
		}
	}
	return t, nil
}

// GraftPoint for spt minimises the joiner's accumulated path delay —
// attached member m with the smallest PathLatency(m) + latency(m, h) —
// under the fanout budget, relaxing the budget only when every attached
// member is full (mirroring Tree.GraftPoint's relaxation order).
func (sptStrategy) GraftPoint(net *topo.Network, t *Tree, h, subHeight int, lim Limits) (int, error) {
	type candidate struct {
		id   int
		cost des.Duration
		ok   bool
	}
	better := func(best candidate, id int, cost des.Duration) bool {
		if !best.ok {
			return true
		}
		if cost != best.cost {
			return cost < best.cost
		}
		return id < best.id
	}
	var full, any candidate
	for _, m := range t.Members {
		if m == h {
			continue
		}
		if _, attached := t.depthAttached(m); !attached {
			continue
		}
		cost := t.PathLatency(net, m) + net.Latency(m, h)
		if better(any, m, cost) {
			any = candidate{id: m, cost: cost, ok: true}
		}
		if !flatFanoutOK(t, m, lim) {
			continue
		}
		if better(full, m, cost) {
			full = candidate{id: m, cost: cost, ok: true}
		}
	}
	switch {
	case full.ok:
		return full.id, nil
	case any.ok:
		return any.id, nil
	default:
		return -1, fmt.Errorf("overlay: no attached member to graft %d under", h)
	}
}

func (sptStrategy) FanoutOK(net *topo.Network, t *Tree, m int, lim Limits) bool {
	return flatFanoutOK(t, m, lim)
}

// greedyStrategy builds the capacity-aware fanout-greedy tree: breadth-
// first from the source, each host adopting its nearest unattached members
// by RTT up to a child budget scaled by the host's uplink-class multiplier
// (⌊Fanout × mult⌋, floored at 1) — fast hosts fan wide, slow hosts stay
// near the leaves. With homogeneous uplinks this degenerates to BuildFlat
// at fanout Config.Fanout.
type greedyStrategy struct{}

func (greedyStrategy) Name() string { return "greedy" }

func (greedyStrategy) Limits(cfg Config, n int) Limits {
	f := cfg.Fanout
	if f == 0 {
		f = DefaultGreedyFanout
	}
	return Limits{MaxFanout: f, MaxHeight: 0}
}

// budget returns host h's child allowance under the base fanout.
func greedyBudget(net *topo.Network, h, base int) int {
	b := int(float64(base) * net.Hosts[h].UplinkMult)
	if b < 1 {
		b = 1
	}
	return b
}

func (g greedyStrategy) Build(net *topo.Network, members []int, source int, cfg Config) (*Tree, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := checkMembership(members, source); err != nil {
		return nil, err
	}
	base := g.Limits(cfg, len(members)).MaxFanout
	t := newTree(source, members)
	unattached := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m != source {
			unattached = append(unattached, m)
		}
	}
	queue := []int{source}
	for len(queue) > 0 && len(unattached) > 0 {
		v := queue[0]
		queue = queue[1:]
		sortByRTT(net, v, unattached)
		take := greedyBudget(net, v, base)
		if take > len(unattached) {
			take = len(unattached)
		}
		for _, c := range unattached[:take] {
			t.setParent(c, v)
			queue = append(queue, c)
		}
		unattached = unattached[take:]
	}
	if len(unattached) > 0 {
		// Impossible while every budget >= 1, but fail loudly over panicking
		// deep inside a sweep.
		return nil, fmt.Errorf("overlay: greedy build left %d members unattached", len(unattached))
	}
	return t, nil
}

// GraftPoint for greedy is RTT-nearest under the per-host capacity-scaled
// budget, relaxing the budget only when every attached member is full.
func (greedyStrategy) GraftPoint(net *topo.Network, t *Tree, h, subHeight int, lim Limits) (int, error) {
	type candidate struct {
		id  int
		rtt des.Duration
		ok  bool
	}
	better := func(best candidate, id int, rtt des.Duration) bool {
		if !best.ok {
			return true
		}
		if rtt != best.rtt {
			return rtt < best.rtt
		}
		return id < best.id
	}
	var fits, any candidate
	for _, m := range t.Members {
		if m == h {
			continue
		}
		if _, attached := t.depthAttached(m); !attached {
			continue
		}
		rtt := net.RTT(h, m)
		if better(any, m, rtt) {
			any = candidate{id: m, rtt: rtt, ok: true}
		}
		if !(greedyStrategy{}).FanoutOK(net, t, m, lim) {
			continue
		}
		if better(fits, m, rtt) {
			fits = candidate{id: m, rtt: rtt, ok: true}
		}
	}
	switch {
	case fits.ok:
		return fits.id, nil
	case any.ok:
		return any.id, nil
	default:
		return -1, fmt.Errorf("overlay: no attached member to graft %d under", h)
	}
}

func (greedyStrategy) FanoutOK(net *topo.Network, t *Tree, m int, lim Limits) bool {
	return lim.MaxFanout <= 0 || len(t.child[m]) < greedyBudget(net, m, lim.MaxFanout)
}
