package overlay

import (
	"fmt"

	"repro/internal/topo"
	"repro/internal/xrand"
)

// Config controls the cluster-hierarchy builders (DSCT and NICE).
type Config struct {
	// K is the cluster parameter: intra/inter-cluster sizes are drawn
	// uniformly from [K, 3K−1] (the paper's Eq. (1)/(2) of ref [14];
	// K = 3 in all published experiments). Default 3.
	K int
	// SizeCap, when >= 2, caps every cluster size — the capacity-aware
	// variant, where a host may only feed ⌊C_out/Σρᵢ⌋ children so the
	// cluster it leads cannot exceed that fanout + 1.
	SizeCap int
	// Fanout is the "greedy" strategy's base child budget per host,
	// scaled by each host's uplink-class multiplier and floored at 1.
	// Default 4. The cluster strategies ignore it.
	Fanout int
	// Seed drives the random cluster-size draws.
	Seed uint64
}

// DefaultGreedyFanout is the greedy strategy's base child budget when
// Config.Fanout is unset.
const DefaultGreedyFanout = 4

func (c *Config) fillDefaults() error {
	if c.K == 0 {
		c.K = 3
	}
	if c.K < 2 {
		return fmt.Errorf("overlay: cluster parameter K must be >= 2, got %d", c.K)
	}
	if c.SizeCap != 0 && c.SizeCap < 2 {
		return fmt.Errorf("overlay: SizeCap must be 0 (none) or >= 2, got %d", c.SizeCap)
	}
	if c.Fanout < 0 {
		return fmt.Errorf("overlay: Fanout must be non-negative, got %d", c.Fanout)
	}
	if c.Fanout == 0 {
		c.Fanout = DefaultGreedyFanout
	}
	return nil
}

// BuildDSCT constructs the paper's DSCT tree (Section V): members are
// first partitioned into local domains (hosts attached to the same
// backbone router), each domain builds an intra-cluster hierarchy bottom-
// up, and the surviving local cores build the inter-cluster hierarchy.
// The delivery tree is rooted at the multicast source (the source wins
// core election in every cluster containing it). A bad member set or
// cluster configuration is reported as an error, not a panic, so scenario
// sweeps can surface the offending spec instead of crashing mid-run.
func BuildDSCT(net *topo.Network, members []int, source int, cfg Config) (*Tree, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := checkMembership(members, source); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed ^ 0x5851f42d4c957f2d)
	t := newTree(source, members)
	inGroup := make(map[int]bool, len(members))
	for _, m := range members {
		inGroup[m] = true
	}
	// Local domains in deterministic router order, preserving attachment
	// order within a domain.
	var localCores []int
	for r := 0; r < net.Backbone.NumNodes(); r++ {
		var domain []int
		for _, h := range net.HostsAtRouter(topo.NodeID(r)) {
			if inGroup[h] {
				domain = append(domain, h)
			}
		}
		if len(domain) == 0 {
			continue
		}
		localCores = append(localCores, buildHierarchy(t, net, domain, source, cfg.K, cfg.SizeCap, rng))
	}
	buildHierarchy(t, net, localCores, source, cfg.K, cfg.SizeCap, rng)
	return t, nil
}

// BuildNICE constructs a NICE-style tree (ref [8]): the same hierarchical
// clustering as DSCT but location-blind — no domain partition, and the
// bottom layer is visited in seeded random order, so low-layer clusters
// freely span backbone domains. Cluster sizes and leader election follow
// the NICE rules ([k, 3k−1], RTT centre).
func BuildNICE(net *topo.Network, members []int, source int, cfg Config) (*Tree, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := checkMembership(members, source); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	t := newTree(source, members)
	layer := append([]int(nil), members...)
	rng.ShuffleInts(layer)
	buildHierarchy(t, net, layer, source, cfg.K, cfg.SizeCap, rng)
	return t, nil
}

// FanoutBound is the capacity-aware child budget of Fig. 1: a host whose
// aggregate output capacity is `factor` × the per-connection capacity C,
// serving flows with total normalised load `load` = Σρᵢ/C per connection,
// can feed at most ⌊factor/load⌋ children. The result is clamped to at
// least 2 (a bound of 1 would degenerate every tree into a chain, which
// no published capacity-aware protocol does — they fall back to minimum
// branching instead).
func FanoutBound(load, factor float64) int {
	if load <= 0 || factor <= 0 {
		panic("overlay: load and factor must be positive")
	}
	d := int(factor / load)
	// Keep strictly inside the budget: at d·load == C_out the per-
	// connection queues are critically loaded and delays diverge.
	for d > 2 && float64(d)*load > 0.97*factor {
		d--
	}
	if d < 2 {
		d = 2
	}
	return d
}

// CapacityConfig derives the capacity-aware cluster cap for the given
// normalised load: cluster size = fanout bound + 1 (core plus children).
func CapacityConfig(base Config, load, factor float64) Config {
	base.SizeCap = FanoutBound(load, factor) + 1
	return base
}

// BuildFlat constructs the flat degree-bounded capacity-aware tree of the
// paper's Fig. 1: breadth-first from the source, each host adopting up to
// `fanout` nearest unattached members by RTT. This is the capacity-aware
// comparator of the experiments (the location-aware "capacity-aware DSCT"
// flavour); BuildFlatBlind is its location-blind NICE counterpart. Unlike
// a cluster-size cap on the hierarchy builders, the flat builder bounds
// each host's *total* fanout, which is what the capacity budget
// ⌊C_out/Σρᵢ⌋ actually constrains.
func BuildFlat(net *topo.Network, members []int, source, fanout int) (*Tree, error) {
	if err := checkMembership(members, source); err != nil {
		return nil, err
	}
	if fanout < 1 {
		return nil, fmt.Errorf("overlay: fanout must be >= 1, got %d", fanout)
	}
	t := newTree(source, members)
	unattached := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m != source {
			unattached = append(unattached, m)
		}
	}
	queue := []int{source}
	for len(queue) > 0 && len(unattached) > 0 {
		v := queue[0]
		queue = queue[1:]
		sortByRTT(net, v, unattached)
		take := fanout
		if take > len(unattached) {
			take = len(unattached)
		}
		for _, c := range unattached[:take] {
			t.setParent(c, v)
			queue = append(queue, c)
		}
		unattached = unattached[take:]
	}
	return t, nil
}

// BuildFlatBlind is BuildFlat without locality: children are adopted in a
// seeded random order instead of nearest-by-RTT, so overlay hops freely
// span backbone domains — the capacity-aware NICE comparator.
func BuildFlatBlind(net *topo.Network, members []int, source, fanout int, seed uint64) (*Tree, error) {
	if err := checkMembership(members, source); err != nil {
		return nil, err
	}
	if fanout < 1 {
		return nil, fmt.Errorf("overlay: fanout must be >= 1, got %d", fanout)
	}
	rng := xrand.New(seed ^ 0xa24baed4963ee407)
	t := newTree(source, members)
	unattached := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m != source {
			unattached = append(unattached, m)
		}
	}
	rng.ShuffleInts(unattached)
	queue := []int{source}
	for len(queue) > 0 && len(unattached) > 0 {
		v := queue[0]
		queue = queue[1:]
		take := fanout
		if take > len(unattached) {
			take = len(unattached)
		}
		for _, c := range unattached[:take] {
			t.setParent(c, v)
			queue = append(queue, c)
		}
		unattached = unattached[take:]
	}
	return t, nil
}
