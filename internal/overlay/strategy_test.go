package overlay

import (
	"reflect"
	"testing"

	"repro/internal/topo"
)

func TestStrategyRegistryNames(t *testing.T) {
	want := []string{"dsct", "greedy", "nice", "spt"}
	if got := StrategyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StrategyNames = %v, want %v", got, want)
	}
	if _, err := LookupStrategy("no-such"); err == nil {
		t.Fatal("unknown strategy must not resolve")
	}
	for _, name := range want {
		s, err := LookupStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.Name())
		}
	}
}

// sameTree asserts two trees have identical parent assignments.
func sameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for _, m := range a.Members {
		if a.Parent(m) != b.Parent(m) {
			t.Fatalf("member %d: parent %d vs %d", m, a.Parent(m), b.Parent(m))
		}
	}
}

// The named "dsct" and "nice" strategies must be the exact legacy
// builders — the substrate's byte-identity depends on it.
func TestClusterStrategiesMatchLegacyBuilders(t *testing.T) {
	net := network(90, 31)
	cfg := Config{Seed: 42}
	viaStrategy, err := MustStrategy("dsct").Build(net, allMembers(90), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, viaStrategy, mustDSCT(t, net, allMembers(90), 3, Config{Seed: 42}))

	viaStrategy, err = MustStrategy("nice").Build(net, allMembers(90), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, viaStrategy, mustNICE(t, net, allMembers(90), 3, Config{Seed: 42}))
}

func TestSPTBuildsValidBoundedTree(t *testing.T) {
	net := network(150, 7)
	tr, err := MustStrategy("spt").Build(net, allMembers(150), 0, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	lim := MustStrategy("spt").Limits(Config{}, 150)
	if tr.MaxFanout() > lim.MaxFanout {
		t.Fatalf("fanout %d exceeds cap %d", tr.MaxFanout(), lim.MaxFanout)
	}
	// Determinism: the same inputs rebuild the same tree.
	again, err := MustStrategy("spt").Build(net, allMembers(150), 0, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, tr, again)
}

// The delay-weighted SPT should beat the proximity-cluster hierarchy on
// its own metric: worst source-to-member propagation delay.
func TestSPTImprovesWorstPathOverDSCT(t *testing.T) {
	net := network(200, 11)
	spt, err := MustStrategy("spt").Build(net, allMembers(200), 0, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dsct := mustDSCT(t, net, allMembers(200), 0, Config{Seed: 11})
	worst := func(tr *Tree) float64 {
		w := 0.0
		for _, m := range tr.Members {
			if d := tr.PathLatency(net, m).Seconds(); d > w {
				w = d
			}
		}
		return w
	}
	if worst(spt) >= worst(dsct) {
		t.Fatalf("spt worst path %.6f not better than dsct %.6f", worst(spt), worst(dsct))
	}
}

func TestGreedyRespectsPerHostBudgets(t *testing.T) {
	net := topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{
		NumHosts: 160,
		Seed:     5,
		UplinkClasses: []topo.UplinkClass{
			{Mult: 0.5, Weight: 0.5},
			{Mult: 2.0, Weight: 0.5},
		},
	})
	tr, err := MustStrategy("greedy").Build(net, allMembers(160), 0, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	lim := MustStrategy("greedy").Limits(Config{}, 160)
	for _, m := range tr.Members {
		budget := greedyBudget(net, m, DefaultGreedyFanout)
		if got := len(tr.Children(m)); got > budget {
			t.Fatalf("host %d (mult %.1f) has %d children, budget %d",
				m, net.Hosts[m].UplinkMult, got, budget)
		}
		// FanoutOK — the filter rewires and grafts share — must agree
		// with the per-host budget, not the flat cap.
		if want := len(tr.Children(m)) < budget; MustStrategy("greedy").FanoutOK(net, tr, m, lim) != want {
			t.Fatalf("host %d: FanoutOK disagrees with budget %d at %d children",
				m, budget, len(tr.Children(m)))
		}
	}
}

func TestGreedyHomogeneousMatchesFlat(t *testing.T) {
	net := network(120, 9)
	tr, err := MustStrategy("greedy").Build(net, allMembers(120), 0, Config{Seed: 9, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, tr, mustFlat(t, net, allMembers(120), 0, 3))
}

func TestStrategyGraftPoints(t *testing.T) {
	net := network(100, 13)
	for _, name := range []string{"dsct", "nice", "spt", "greedy"} {
		strat := MustStrategy(name)
		tr, err := strat.Build(net, allMembers(90), 0, Config{Seed: 13})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lim := strat.Limits(Config{}, 100)
		p, err := strat.GraftPoint(net, tr, 95, 0, lim)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tr.IsMember(p) {
			t.Fatalf("%s: graft point %d not a member", name, p)
		}
		if err := tr.Graft(95, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// The spt graft rule minimises accumulated path delay, which can differ
// from the RTT-nearest rule when the nearest member sits deep in the
// tree; at minimum the chosen parent must be optimal under its own
// metric among members with free fanout.
func TestSPTGraftPointMinimisesPathDelay(t *testing.T) {
	net := network(80, 17)
	strat := MustStrategy("spt")
	tr, err := strat.Build(net, allMembers(70), 0, Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	lim := strat.Limits(Config{}, 80)
	h := 75
	p, err := strat.GraftPoint(net, tr, h, 0, lim)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.PathLatency(net, p) + net.Latency(p, h)
	for _, m := range tr.Members {
		if len(tr.Children(m)) >= lim.MaxFanout {
			continue
		}
		if cost := tr.PathLatency(net, m) + net.Latency(m, h); cost < got {
			t.Fatalf("graft point %d cost %v beaten by %d cost %v", p, got, m, cost)
		}
	}
}

func TestReparentMovesSubtree(t *testing.T) {
	net := network(60, 19)
	tr := mustDSCT(t, net, allMembers(60), 0, Config{Seed: 19})
	// Find a member with children whose parent is not the source.
	var w int
	for _, m := range tr.Members {
		if m != tr.Source && len(tr.Children(m)) > 0 && tr.Parent(m) != tr.Source {
			w = m
			break
		}
	}
	if w == 0 {
		t.Skip("no movable forwarder")
	}
	kids := append([]int(nil), tr.Children(w)...)
	if err := tr.Reparent(w, tr.Source); err != nil {
		t.Fatal(err)
	}
	if tr.Parent(w) != tr.Source {
		t.Fatalf("parent = %d, want source", tr.Parent(w))
	}
	if !reflect.DeepEqual(tr.Children(w), kids) {
		t.Fatal("subtree children changed across a reparent")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReparentRejectsBadMoves(t *testing.T) {
	net := network(40, 23)
	tr := mustDSCT(t, net, allMembers(40), 0, Config{Seed: 23})
	var w int
	for _, m := range tr.Members {
		if m != tr.Source && len(tr.Children(m)) > 0 {
			w = m
			break
		}
	}
	if w == 0 {
		t.Skip("no forwarder")
	}
	child := tr.Children(w)[0]
	if err := tr.Reparent(tr.Source, w); err == nil {
		t.Fatal("reparenting the source must fail")
	}
	if err := tr.Reparent(w, child); err == nil {
		t.Fatal("reparenting under a descendant must fail")
	}
	if err := tr.Reparent(w, tr.Parent(w)); err == nil {
		t.Fatal("reparenting under the current parent must fail")
	}
	if err := tr.Reparent(w, 99); err == nil {
		t.Fatal("reparenting under a non-member must fail")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInSubtree(t *testing.T) {
	net := network(50, 29)
	tr := mustDSCT(t, net, allMembers(50), 0, Config{Seed: 29})
	for _, m := range tr.Members {
		if !tr.InSubtree(tr.Source, m) {
			t.Fatalf("member %d not in the source's subtree", m)
		}
		if m != tr.Source && tr.InSubtree(m, tr.Source) {
			t.Fatalf("source inside %d's subtree", m)
		}
		if !tr.InSubtree(m, m) {
			t.Fatalf("member %d not in its own subtree", m)
		}
	}
}
