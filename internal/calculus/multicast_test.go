package calculus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDSCTHeightBoundPaperValues(t *testing.T) {
	// The paper's Simulation II population: 665 members, k = 3, j1 = 0:
	// ⌈log₃(3 + 665·2)⌉ = ⌈log₃ 1333⌉ = 7.
	if got := DSCTHeightBoundMax(665, 3); got != 7 {
		t.Fatalf("H(665, 3) = %d, want 7", got)
	}
	// Fig. 1-scale sanity: 5 members, k=3 → ⌈log₃ 13⌉ = 3.
	if got := DSCTHeightBoundMax(5, 3); got != 3 {
		t.Fatalf("H(5, 3) = %d, want 3", got)
	}
}

func TestDSCTHeightBoundExactPowers(t *testing.T) {
	// n chosen so k + (n−j1)(k−1) is exactly k^h: no off-by-one from
	// float logs. k=3, target 3^4=81 → n = (81−3)/2 = 39.
	if got := DSCTHeightBound(39, 3, 0); got != 4 {
		t.Fatalf("H = %d, want 4", got)
	}
	// One more member pushes to the next layer... only when the target
	// crosses the power: n=40 → target 83 → still ⌈log₃83⌉ = 5? log₃83≈4.02.
	if got := DSCTHeightBound(40, 3, 0); got != 5 {
		t.Fatalf("H = %d, want 5", got)
	}
}

func TestDSCTHeightBoundSmallGroups(t *testing.T) {
	// For n = 1 the bound is tight only with j1 = 1 (the single member is
	// "unassigned" in L1): ⌈log₃3⌉ = 1. The worst case j1 = 0 gives 2.
	if got := DSCTHeightBound(1, 3, 1); got != 1 {
		t.Fatalf("single member height = %d", got)
	}
	if got := DSCTHeightBoundMax(1, 3); got != 2 {
		t.Fatalf("single member worst-case bound = %d", got)
	}
	if got := DSCTHeightBoundMax(2, 2); got != 2 {
		t.Fatalf("H(2,2) = %d", got)
	}
}

// Property: the bound is monotone in n and decreasing in k, and j1 can
// only lower it.
func TestQuickHeightBoundMonotone(t *testing.T) {
	f := func(rawN uint16, rawK, rawJ uint8) bool {
		n := 1 + int(rawN)%5000
		k := 2 + int(rawK)%5
		j1 := int(rawJ) % k
		h := DSCTHeightBound(n, k, j1)
		if h < 1 {
			return false
		}
		if DSCTHeightBound(n+1, k, j1) < h {
			return false
		}
		if DSCTHeightBound(n, k+1, j1) > h {
			return false
		}
		return DSCTHeightBound(n, k, 0) >= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDSCTHeightBoundValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { DSCTHeightBound(0, 3, 0) },
		func() { DSCTHeightBound(5, 1, 0) },
		func() { DSCTHeightBound(5, 3, -1) },
		func() { DSCTHeightBound(5, 3, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMulticastBoundsScaleWithHeight(t *testing.T) {
	sigmas := []float64{0.01, 0.02, 0.015}
	rhos := []float64{0.2, 0.25, 0.22}
	perHopG := DgHetero(sigmas, rhos)
	perHopHat := DhatHetero(sigmas, rhos)
	for h := 2; h <= 10; h++ {
		if got := MulticastDgHetero(h, sigmas, rhos); math.Abs(got-float64(h-1)*perHopG) > 1e-12 {
			t.Fatalf("Dmg(h=%d) = %v", h, got)
		}
		if got := MulticastDhatHetero(h, sigmas, rhos); math.Abs(got-float64(h-1)*perHopHat) > 1e-12 {
			t.Fatalf("D̂mg(h=%d) = %v", h, got)
		}
	}
}

func TestMulticastHomogForms(t *testing.T) {
	h, k, sigma, rho := 7, 3, 0.01, 0.2
	if got, want := MulticastDgHomog(h, k, sigma, rho), 6*DgHomog(k, sigma, rho); math.Abs(got-want) > 1e-12 {
		t.Fatalf("homog Dmg = %v, want %v", got, want)
	}
	if got, want := MulticastDhatHomog(h, k, sigma, sigma, rho), 6*DhatHomog(k, sigma, sigma, rho); math.Abs(got-want) > 1e-12 {
		t.Fatalf("homog D̂mg = %v, want %v", got, want)
	}
}

// Theorem 8(ii) shape: above the threshold the multicast λ bound wins;
// below it the plain bound wins. Height cancels, so this reduces to the
// per-hop ordering — but verify through the multicast forms regardless.
func TestMulticastThresholdOrdering(t *testing.T) {
	k, h, sigma := 3, 7, 0.01
	rhoStar := RhoStarHomog(k)
	below := rhoStar * 0.5
	above := rhoStar + 0.9*(1/float64(k)-rhoStar)
	if MulticastDhatHomog(h, k, sigma, sigma, below) < MulticastDgHomog(h, k, sigma, below) {
		t.Fatal("λ regulator should not win below ρ*")
	}
	if MulticastDhatHomog(h, k, sigma, sigma, above) > MulticastDgHomog(h, k, sigma, above) {
		t.Fatal("λ regulator should win above ρ*")
	}
}

func TestMulticastHeightValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulticastDgHomog(1, 3, 0.01, 0.2)
}

func BenchmarkDSCTHeightBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DSCTHeightBoundMax(665, 3)
	}
}
