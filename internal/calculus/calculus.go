// Package calculus implements the paper's network-calculus results in
// closed form: the (σ, ρ, λ) duty-cycle identities (Section III), the
// worst-case delay bounds for regulated general MUXes (Lemma 1, Theorems
// 1–2, Remark 1), the rate threshold ρ* (Theorems 3–4), the improvement
// ratios (Theorems 5–6), the DSCT height bound (Lemma 2), and the
// multicast bounds (Theorems 7–8, Remark 2).
//
// All quantities are normalised the way the paper normalises them:
// capacity C = 1, each rate ρ is a fraction of capacity in (0, 1), each
// burst σ is in capacity-seconds (bits divided by the link rate in
// bits/second), and all delays come back in seconds. Use Normalize to
// convert physical flow parameters.
package calculus

import (
	"fmt"
	"math"
)

// Normalize converts a physical (σ bits, ρ bits/s) flow on a link of
// capacity c bits/s into the paper's normalised units.
func Normalize(sigmaBits, rhoBps, c float64) (sigma, rho float64) {
	if c <= 0 {
		panic("calculus: capacity must be positive")
	}
	return sigmaBits / c, rhoBps / c
}

// Lambda returns the control factor λ = 1/(1−ρ) of Eq. (1).
// It panics unless 0 < ρ < 1.
func Lambda(rho float64) float64 {
	checkRho(rho)
	return 1 / (1 - rho)
}

// WorkPeriod returns W = σ/(1−ρ), the on-state length in seconds.
func WorkPeriod(sigma, rho float64) float64 {
	checkSigma(sigma)
	checkRho(rho)
	return sigma / (1 - rho)
}

// Vacation returns V = σ/ρ, the off-state length in seconds.
func Vacation(sigma, rho float64) float64 {
	checkSigma(sigma)
	checkRho(rho)
	return sigma / rho
}

// Period returns the regulator period P = W + V = λσ/ρ in seconds.
func Period(sigma, rho float64) float64 {
	return WorkPeriod(sigma, rho) + Vacation(sigma, rho)
}

// Lemma1Delay bounds the delay a flow with envelope (σ*, ρ) suffers in a
// (σ, ρ, λ) regulator: D = (σ*−σ)⁺/ρ + 2λσ/ρ.
func Lemma1Delay(sigmaStar, sigma, rho float64) float64 {
	checkSigma(sigma)
	checkRho(rho)
	excess := sigmaStar - sigma
	if excess < 0 {
		excess = 0
	}
	return excess/rho + 2*Lambda(rho)*sigma/rho
}

// SigmaStar computes the per-flow regulator bursts of Theorem 1:
// σ*ᵢ = ρᵢ(1−ρᵢ)·min_j { σⱼ / (ρⱼ(1−ρⱼ)) }.
func SigmaStar(sigmas, rhos []float64) []float64 {
	checkFlows(sigmas, rhos)
	m := math.Inf(1)
	for j := range sigmas {
		if v := sigmas[j] / (rhos[j] * (1 - rhos[j])); v < m {
			m = v
		}
	}
	out := make([]float64, len(sigmas))
	for i := range out {
		out[i] = rhos[i] * (1 - rhos[i]) * m
	}
	return out
}

// DgHetero is Remark 1 (Cruz): the worst-case delay of a (σᵢ, ρᵢ)-regulated
// general MUX with K heterogeneous flows, Σσᵢ / (1 − Σρᵢ).
// It panics when the stability condition Σρᵢ < 1 fails.
func DgHetero(sigmas, rhos []float64) float64 {
	checkFlows(sigmas, rhos)
	var sumS, sumR float64
	for i := range sigmas {
		sumS += sigmas[i]
		sumR += rhos[i]
	}
	if sumR >= 1 {
		panic(fmt.Sprintf("calculus: unstable MUX, Σρ = %v >= 1", sumR))
	}
	return sumS / (1 - sumR)
}

// DgHomog is Remark 1 for K homogeneous flows: Kσ₀/(1−Kρ).
func DgHomog(k int, sigma0, rho float64) float64 {
	checkK(k)
	checkSigma(sigma0)
	checkRho(rho)
	if float64(k)*rho >= 1 {
		panic("calculus: unstable MUX, Kρ >= 1")
	}
	return float64(k) * sigma0 / (1 - float64(k)*rho)
}

// DhatHetero is Theorem 1: the worst-case delay of a (σ*ᵢ, ρᵢ, λᵢ)-
// regulated general MUX with K heterogeneous input flows of envelopes
// (σᵢ, ρᵢ):
//
//	D̂g = Σ σ*ᵢ/(1−ρᵢ) + 2·min{σᵢ/(ρᵢ(1−ρᵢ))} + max{(σᵢ−σ*ᵢ)/ρᵢ}.
func DhatHetero(sigmas, rhos []float64) float64 {
	checkFlows(sigmas, rhos)
	star := SigmaStar(sigmas, rhos)
	var sum, minTerm, maxTerm float64
	minTerm = math.Inf(1)
	for i := range sigmas {
		sum += star[i] / (1 - rhos[i])
		if v := sigmas[i] / (rhos[i] * (1 - rhos[i])); v < minTerm {
			minTerm = v
		}
		if v := (sigmas[i] - star[i]) / rhos[i]; v > maxTerm {
			maxTerm = v
		}
	}
	return sum + 2*minTerm + maxTerm
}

// DhatHomog is Theorem 2: K homogeneous flows with input envelope
// (σ₀, ρ) through (σ, ρ, λ) regulators:
//
//	D̂g = Kσ/(1−ρ) + (σ₀−σ)⁺/ρ + 2λσ/ρ.
func DhatHomog(k int, sigma, sigma0, rho float64) float64 {
	checkK(k)
	checkSigma(sigma)
	checkRho(rho)
	excess := sigma0 - sigma
	if excess < 0 {
		excess = 0
	}
	return float64(k)*sigma/(1-rho) + excess/rho + 2*Lambda(rho)*sigma/rho
}

// G1Hetero is the left side of Theorem 3's threshold equation, in units of
// σ (the 1/ρmin additive constant is dropped, as in the paper's proof):
// g1(ρ̄) = K/(1−ρ̄) + 2/(ρ̄(1−ρ̄)) + 1/ρ̄.
func G1Hetero(k int, rhoBar float64) float64 {
	checkK(k)
	checkRho(rhoBar)
	return float64(k)/(1-rhoBar) + 2/(rhoBar*(1-rhoBar)) + 1/rhoBar
}

// G1Homog is the homogeneous counterpart (Theorem 4's proof sketch):
// g1(ρ) = K/(1−ρ) + 2/(ρ(1−ρ)).
func G1Homog(k int, rho float64) float64 {
	checkK(k)
	checkRho(rho)
	return float64(k)/(1-rho) + 2/(rho*(1-rho))
}

// G2 is the (σ, ρ) baseline in the same units: g2(ρ̄) = K/(1−Kρ̄),
// defined for ρ̄ < 1/K.
func G2(k int, rhoBar float64) float64 {
	checkK(k)
	if rhoBar <= 0 || float64(k)*rhoBar >= 1 {
		panic("calculus: G2 requires 0 < ρ̄ < 1/K")
	}
	return float64(k) / (1 - float64(k)*rhoBar)
}

// RhoStarHetero solves Theorem 3's threshold equation
// (K²−2K)ρ̄² + (3K+1)ρ̄ − 3 = 0 for the unique root in (0, 1/K).
// Requires K >= 2; K = 2 degenerates to the linear equation 7ρ̄ = 3.
func RhoStarHetero(k int) float64 {
	checkK(k)
	kf := float64(k)
	a := kf*kf - 2*kf
	b := 3*kf + 1
	const c = -3.0
	if a == 0 { // K == 2
		return -c / b
	}
	return (-b + math.Sqrt(b*b-4*a*c)) / (2 * a)
}

// RhoStarHomog solves the homogeneous threshold equation
// (K²−K)ρ² + 2Kρ − 2 = 0 (Theorem 4) for the root in (0, 1/K).
func RhoStarHomog(k int) float64 {
	checkK(k)
	kf := float64(k)
	a := kf*kf - kf
	b := 2 * kf
	const c = -2.0
	return (-b + math.Sqrt(b*b-4*a*c)) / (2 * a)
}

// Control-range limits: as K→∞ the fraction of the stability interval
// (0, 1/K) in which the (σ, ρ, λ) regulator wins converges to these
// constants (Theorem 3(ii) and Theorem 4(ii)).
var (
	// HeteroRangeLimit = (5−√21)/2 ≈ 0.2087.
	HeteroRangeLimit = (5 - math.Sqrt(21)) / 2
	// HomogRangeLimit = 2−√3 ≈ 0.2679.
	HomogRangeLimit = 2 - math.Sqrt(3)
)

// ControlRange returns the fraction of the stability interval above the
// threshold: (1/K − ρ*)/(1/K) = 1 − Kρ*.
func ControlRange(k int, rhoStar float64) float64 {
	checkK(k)
	return 1 - float64(k)*rhoStar
}

// ThresholdUtilizationHetero returns K·ρ* for heterogeneous flows — the
// aggregate-utilisation form of the threshold (→ 0.79 as K→∞, the
// paper's "ρ* = 0.79C").
func ThresholdUtilizationHetero(k int) float64 {
	return float64(k) * RhoStarHetero(k)
}

// ThresholdUtilizationHomog returns K·ρ* for homogeneous flows
// (→ 0.73 as K→∞, the paper's "ρ* = 0.73C").
func ThresholdUtilizationHomog(k int) float64 {
	return float64(k) * RhoStarHomog(k)
}

// ImprovementHetero is Theorem 5's lower bound on Dg/D̂g:
// Kρ̄(1−ρ̄) / ((1−Kρ̄)(3+(K−1)ρ̄)), valid for ρ̄ ∈ (0, 1/K).
func ImprovementHetero(k int, rhoBar float64) float64 {
	checkK(k)
	kf := float64(k)
	if rhoBar <= 0 || kf*rhoBar >= 1 {
		panic("calculus: improvement ratio requires 0 < ρ̄ < 1/K")
	}
	return kf * rhoBar * (1 - rhoBar) / ((1 - kf*rhoBar) * (3 + (kf-1)*rhoBar))
}

// ImprovementHomog is Theorem 6's counterpart with σ₀ = σ:
// Kρ(1−ρ) / ((1−Kρ)(2+Kρ)).
func ImprovementHomog(k int, rho float64) float64 {
	checkK(k)
	kf := float64(k)
	if rho <= 0 || kf*rho >= 1 {
		panic("calculus: improvement ratio requires 0 < ρ < 1/K")
	}
	return kf * rho * (1 - rho) / ((1 - kf*rho) * (2 + kf*rho))
}

// RhoBarForOrder returns the band edge ρ̄ = 1/K − 1/K^(n+1) at which
// Theorems 5–6 guarantee an O(Kⁿ) improvement.
func RhoBarForOrder(k, n int) float64 {
	checkK(k)
	if n < 1 {
		panic("calculus: order n must be >= 1")
	}
	kf := float64(k)
	return 1/kf - 1/math.Pow(kf, float64(n+1))
}

func checkRho(rho float64) {
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("calculus: ρ = %v outside (0,1)", rho))
	}
}

func checkSigma(sigma float64) {
	if sigma < 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("calculus: σ = %v invalid", sigma))
	}
}

func checkK(k int) {
	if k < 2 {
		panic("calculus: K must be >= 2")
	}
}

func checkFlows(sigmas, rhos []float64) {
	if len(sigmas) == 0 || len(sigmas) != len(rhos) {
		panic("calculus: sigma/rho slices must be non-empty and equal length")
	}
	for i := range rhos {
		checkSigma(sigmas[i])
		checkRho(rhos[i])
	}
}
