package calculus

import "math"

// DSCTHeightBound is Lemma 2: the height of a DSCT tree over n members
// with cluster parameter k and j1 last-unassigned members in the lowest
// layer is at most ⌈log_k(k + (n−j1)(k−1))⌉. Computed with integer powers,
// avoiding float logarithm edge cases on exact powers.
func DSCTHeightBound(n, k, j1 int) int {
	if n < 1 {
		panic("calculus: group size must be >= 1")
	}
	if k < 2 {
		panic("calculus: cluster parameter k must be >= 2")
	}
	if j1 < 0 || j1 > k-1 {
		panic("calculus: j1 must be in [0, k-1]")
	}
	target := k + (n-j1)*(k-1)
	h := 1
	pow := k
	for pow < target {
		// Guard against overflow on absurd n: heights above 62 are
		// impossible for int inputs anyway.
		if pow > math.MaxInt64/k {
			return h + 1
		}
		pow *= k
		h++
	}
	return h
}

// DSCTHeightBoundMax is Lemma 2 at the worst case j1 = 0.
func DSCTHeightBoundMax(n, k int) int { return DSCTHeightBound(n, k, 0) }

// MulticastDgHetero is Remark 2: the worst-case multicast delay through a
// DSCT tree of height bound H whose end hosts run (σᵢ, ρᵢ)-regulated
// general MUXes: (H−1) · Σσᵢ/(1−Σρᵢ).
func MulticastDgHetero(h int, sigmas, rhos []float64) float64 {
	checkHeight(h)
	return float64(h-1) * DgHetero(sigmas, rhos)
}

// MulticastDgHomog is Remark 2 for homogeneous flows:
// (H−1) · Kσ₀/(1−Kρ).
func MulticastDgHomog(h, k int, sigma0, rho float64) float64 {
	checkHeight(h)
	return float64(h-1) * DgHomog(k, sigma0, rho)
}

// MulticastDhatHetero is Theorem 7(i): the worst-case multicast delay
// through the DSCT tree with (σ*ᵢ, ρᵢ, λᵢ)-regulated MUXes,
// (H−1) × the per-hop bound of Theorem 1.
func MulticastDhatHetero(h int, sigmas, rhos []float64) float64 {
	checkHeight(h)
	return float64(h-1) * DhatHetero(sigmas, rhos)
}

// MulticastDhatHomog is Theorem 8(i): homogeneous flows,
// (H−1) × the per-hop bound of Theorem 2.
func MulticastDhatHomog(h, k int, sigma, sigma0, rho float64) float64 {
	checkHeight(h)
	return float64(h-1) * DhatHomog(k, sigma, sigma0, rho)
}

func checkHeight(h int) {
	if h < 2 {
		panic("calculus: tree height bound must be >= 2 (source plus one hop)")
	}
}
