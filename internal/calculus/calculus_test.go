package calculus

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalize(t *testing.T) {
	s, r := Normalize(50_000, 1_500_000, 6_000_000)
	if !close(s, 50_000.0/6_000_000, 1e-15) || !close(r, 0.25, 1e-15) {
		t.Fatalf("normalize = %v, %v", s, r)
	}
}

func TestLambdaEq1(t *testing.T) {
	if got := Lambda(0.5); got != 2 {
		t.Fatalf("λ(0.5) = %v", got)
	}
	if got := Lambda(0.25); !close(got, 4.0/3.0, 1e-15) {
		t.Fatalf("λ(0.25) = %v", got)
	}
}

func TestDutyCycleIdentities(t *testing.T) {
	sigma, rho := 0.02, 0.3
	w := WorkPeriod(sigma, rho)
	v := Vacation(sigma, rho)
	p := Period(sigma, rho)
	if !close(w, sigma/(1-rho), 1e-15) {
		t.Fatalf("W = %v", w)
	}
	if !close(v, sigma/rho, 1e-15) {
		t.Fatalf("V = %v", v)
	}
	// P = λσ/ρ (Section III).
	if !close(p, Lambda(rho)*sigma/rho, 1e-12) {
		t.Fatalf("P = %v", p)
	}
}

// Property: for any valid (σ, ρ), the duty ratio W/P equals ρ —
// the regulator's long-run output rate is exactly the flow rate.
func TestQuickDutyRatio(t *testing.T) {
	f := func(a, b uint16) bool {
		sigma := 0.001 + float64(a)/65536.0
		rho := 0.01 + 0.98*float64(b)/65536.0
		return close(WorkPeriod(sigma, rho)/Period(sigma, rho), rho, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Physical rationale from Section III: at saturation (ρ → 1/K̂) the
// vacation approaches the sum of the other K̂−1 working periods.
func TestVacationApproximatesOthersWork(t *testing.T) {
	for _, k := range []int{2, 3, 5, 10} {
		rho := 1/float64(k) - 1e-9
		sigma := 0.01
		v := Vacation(sigma, rho)
		othersWork := float64(k-1) * WorkPeriod(sigma, rho)
		if math.Abs(v-othersWork)/v > 0.01 {
			t.Fatalf("K=%d: V=%v vs (K−1)W=%v", k, v, othersWork)
		}
	}
}

func TestLemma1Delay(t *testing.T) {
	// σ* <= σ: only the 2λσ/ρ term.
	if got := Lemma1Delay(0.01, 0.02, 0.5); !close(got, 2*2*0.02/0.5, 1e-12) {
		t.Fatalf("Lemma1 (σ*<σ) = %v", got)
	}
	// σ* > σ: adds (σ*−σ)/ρ.
	want := (0.03-0.02)/0.5 + 2*2*0.02/0.5
	if got := Lemma1Delay(0.03, 0.02, 0.5); !close(got, want, 1e-12) {
		t.Fatalf("Lemma1 (σ*>σ) = %v", got)
	}
}

func TestSigmaStarEqualisesNormalisedBurst(t *testing.T) {
	sigmas := []float64{0.02, 0.05, 0.01}
	rhos := []float64{0.2, 0.3, 0.25}
	star := SigmaStar(sigmas, rhos)
	// All σ*ᵢ/(ρᵢ(1−ρᵢ)) must equal the min of σⱼ/(ρⱼ(1−ρⱼ)).
	want := math.Inf(1)
	for j := range sigmas {
		if v := sigmas[j] / (rhos[j] * (1 - rhos[j])); v < want {
			want = v
		}
	}
	for i := range star {
		if got := star[i] / (rhos[i] * (1 - rhos[i])); !close(got, want, 1e-12) {
			t.Fatalf("flow %d normalised burst %v, want %v", i, got, want)
		}
		if star[i] > sigmas[i]+1e-15 {
			t.Fatalf("σ*_%d = %v exceeds σ_%d = %v", i, star[i], i, sigmas[i])
		}
	}
}

func TestDgHetero(t *testing.T) {
	got := DgHetero([]float64{0.01, 0.02}, []float64{0.3, 0.4})
	if !close(got, 0.03/0.3, 1e-12) {
		t.Fatalf("Dg = %v", got)
	}
}

func TestDgHomogMatchesHetero(t *testing.T) {
	k, sigma, rho := 3, 0.02, 0.2
	hom := DgHomog(k, sigma, rho)
	het := DgHetero([]float64{sigma, sigma, sigma}, []float64{rho, rho, rho})
	if !close(hom, het, 1e-12) {
		t.Fatalf("homog %v != hetero %v", hom, het)
	}
}

func TestDgUnstablePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { DgHetero([]float64{0.01, 0.01}, []float64{0.5, 0.5}) },
		func() { DgHomog(3, 0.01, 0.34) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDhatHomogFormula(t *testing.T) {
	k, sigma, rho := 3, 0.02, 0.25
	// σ₀ = σ: D̂ = Kσ/(1−ρ) + 2λσ/ρ.
	want := 3*sigma/(1-rho) + 2*Lambda(rho)*sigma/rho
	if got := DhatHomog(k, sigma, sigma, rho); !close(got, want, 1e-12) {
		t.Fatalf("D̂ = %v, want %v", got, want)
	}
	// σ₀ > σ adds (σ₀−σ)/ρ.
	if got := DhatHomog(k, sigma, sigma+0.01, rho); !close(got, want+0.01/rho, 1e-12) {
		t.Fatalf("D̂ with excess = %v", got)
	}
}

func TestDhatHeteroReducesNearHomog(t *testing.T) {
	// With identical flows, Theorem 1 must agree with Theorem 2 at σ₀=σ*.
	k, sigma, rho := 4, 0.02, 0.2
	sigmas := []float64{sigma, sigma, sigma, sigma}
	rhos := []float64{rho, rho, rho, rho}
	het := DhatHetero(sigmas, rhos)
	// σ*ᵢ = σᵢ for identical flows, so max term = 0 and
	// min term = σ/(ρ(1−ρ)) = λσ/ρ:
	want := float64(k)*sigma/(1-rho) + 2*Lambda(rho)*sigma/rho
	if !close(het, want, 1e-12) {
		t.Fatalf("hetero(identical) = %v, want %v", het, want)
	}
	if hom := DhatHomog(k, sigma, sigma, rho); !close(het, hom, 1e-12) {
		t.Fatalf("hetero %v != homog %v", het, hom)
	}
}

func TestRhoStarHeteroRoots(t *testing.T) {
	// K=2 degenerates to 7ρ = 3.
	if got := RhoStarHetero(2); !close(got, 3.0/7.0, 1e-12) {
		t.Fatalf("ρ*(2) = %v", got)
	}
	// Each root must satisfy the paper's quadratic exactly.
	for k := 3; k <= 50; k++ {
		kf := float64(k)
		r := RhoStarHetero(k)
		resid := (kf*kf-2*kf)*r*r + (3*kf+1)*r - 3
		if math.Abs(resid) > 1e-9 {
			t.Fatalf("K=%d: residual %v", k, resid)
		}
		if r <= 0 || r >= 1/kf {
			t.Fatalf("K=%d: ρ* = %v outside (0, 1/K)", k, r)
		}
	}
}

func TestRhoStarHomogRoots(t *testing.T) {
	for k := 2; k <= 50; k++ {
		kf := float64(k)
		r := RhoStarHomog(k)
		resid := (kf*kf-kf)*r*r + 2*kf*r - 2
		if math.Abs(resid) > 1e-9 {
			t.Fatalf("K=%d: residual %v", k, resid)
		}
		if r <= 0 || r >= 1/kf {
			t.Fatalf("K=%d: ρ* = %v outside (0, 1/K)", k, r)
		}
	}
}

// Theorem 3/4 existence: ρ* is where g1 crosses g2; verify by bisection
// against the closed-form root (heterogeneous case).
func TestRhoStarMatchesBisection(t *testing.T) {
	for _, k := range []int{3, 5, 10, 30} {
		root := RhoStarHetero(k)
		f := func(x float64) float64 { return G1Hetero(k, x) - G2(k, x) }
		lo, hi := 1e-6, 1/float64(k)-1e-9
		if f(lo) <= 0 || f(hi) >= 0 {
			t.Fatalf("K=%d: g1−g2 does not bracket a root", k)
		}
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if f(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		if !close((lo+hi)/2, root, 1e-6) {
			t.Fatalf("K=%d: bisection %v vs closed form %v", k, (lo+hi)/2, root)
		}
	}
}

// Theorem 3(i)/4(i): g1 >= g2 below ρ*, g1 <= g2 above it.
func TestThresholdSeparates(t *testing.T) {
	for _, k := range []int{3, 4, 8} {
		root := RhoStarHetero(k)
		below := root * 0.7
		above := root + 0.7*(1/float64(k)-root)
		if G1Hetero(k, below) < G2(k, below) {
			t.Fatalf("K=%d: g1 < g2 below threshold", k)
		}
		if G1Hetero(k, above) > G2(k, above) {
			t.Fatalf("K=%d: g1 > g2 above threshold", k)
		}
	}
}

// Theorem 3(ii): 1 − Kρ* → (5−√21)/2 ≈ 0.21; Theorem 4(ii): → 2−√3 ≈ 0.27.
func TestControlRangeLimits(t *testing.T) {
	if !close(HeteroRangeLimit, 0.2087, 5e-4) {
		t.Fatalf("hetero limit const = %v", HeteroRangeLimit)
	}
	if !close(HomogRangeLimit, 0.2679, 5e-4) {
		t.Fatalf("homog limit const = %v", HomogRangeLimit)
	}
	het := ControlRange(100000, RhoStarHetero(100000))
	if !close(het, HeteroRangeLimit, 1e-3) {
		t.Fatalf("hetero range at large K = %v, want %v", het, HeteroRangeLimit)
	}
	hom := ControlRange(100000, RhoStarHomog(100000))
	if !close(hom, HomogRangeLimit, 1e-3) {
		t.Fatalf("homog range at large K = %v, want %v", hom, HomogRangeLimit)
	}
}

// The paper's headline numbers: ρ*·K → 0.73C (homogeneous), 0.79C
// (heterogeneous) for large K.
func TestThresholdUtilizations(t *testing.T) {
	if got := ThresholdUtilizationHomog(100000); !close(got, 0.7321, 1e-3) {
		t.Fatalf("homog utilisation = %v", got)
	}
	if got := ThresholdUtilizationHetero(100000); !close(got, 0.7913, 1e-3) {
		t.Fatalf("hetero utilisation = %v", got)
	}
}

// Property: ρ* lies in (0, 1/K) and Kρ* is monotonically approaching the
// limit for growing K.
func TestQuickRhoStarInRange(t *testing.T) {
	f := func(raw uint8) bool {
		k := 2 + int(raw)%500
		het := RhoStarHetero(k)
		hom := RhoStarHomog(k)
		inv := 1 / float64(k)
		return het > 0 && het < inv && hom > 0 && hom < inv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Theorems 5/6: at ρ̄ = 1/K − 1/K^(n+1) the guaranteed ratio is Ω(Kⁿ):
// specifically ≥ (1−1/Kⁿ)(1−1/K)Kⁿ/4 per the Theorem 5 proof.
func TestImprovementOrderKn(t *testing.T) {
	for _, k := range []int{3, 5, 10} {
		for n := 1; n <= 3; n++ {
			rb := RhoBarForOrder(k, n)
			if rb <= RhoStarHetero(k) {
				continue // band not applicable at this (K, n)
			}
			got := ImprovementHetero(k, rb)
			kf := float64(k)
			floor := (1 - math.Pow(kf, -float64(n))) * (1 - 1/kf) * math.Pow(kf, float64(n)) / 4
			if got < floor {
				t.Fatalf("K=%d n=%d: ratio %v below theorem floor %v", k, n, got, floor)
			}
		}
	}
}

func TestImprovementHomogGrowsNearSaturation(t *testing.T) {
	k := 3
	low := ImprovementHomog(k, 0.25)
	high := ImprovementHomog(k, 0.33)
	if high <= low {
		t.Fatalf("improvement not increasing: %v -> %v", low, high)
	}
	if high < 10 {
		t.Fatalf("near-saturation improvement %v suspiciously small", high)
	}
}

func TestRhoBarForOrder(t *testing.T) {
	if got := RhoBarForOrder(3, 1); !close(got, 1.0/3-1.0/9, 1e-12) {
		t.Fatalf("band edge = %v", got)
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { Lambda(0) },
		func() { Lambda(1) },
		func() { WorkPeriod(-1, 0.5) },
		func() { Vacation(0.01, 1.5) },
		func() { SigmaStar(nil, nil) },
		func() { SigmaStar([]float64{1}, []float64{0.5, 0.5}) },
		func() { G2(3, 0.5) },
		func() { RhoStarHetero(1) },
		func() { RhoStarHomog(0) },
		func() { ImprovementHetero(3, 0.4) },
		func() { ImprovementHomog(3, 0) },
		func() { RhoBarForOrder(3, 0) },
		func() { Normalize(1, 1, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

// Cross-check Theorem 1 ≥ actual achievable and Theorem 3 ordering with
// randomly drawn heterogeneous flow sets: above the threshold the λ bound
// beats the plain bound (with condition (6) enforced by construction of
// near-homogeneous flows).
func TestQuickBoundsOrderAboveThreshold(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 200; trial++ {
		k := 3 + rng.Intn(5)
		// Near-homogeneous flows above the threshold utilisation.
		util := 0.9 // Σρ = 0.9 > Kρ* always (threshold util < 0.84)
		rho := util / float64(k)
		sigmas := make([]float64, k)
		rhos := make([]float64, k)
		for i := range sigmas {
			sigmas[i] = 0.01 + 0.001*rng.Float64() // near-equal bursts
			rhos[i] = rho
		}
		dg := DgHetero(sigmas, rhos)
		dhat := DhatHetero(sigmas, rhos)
		if dhat > dg {
			t.Fatalf("trial %d (K=%d): D̂=%v > D=%v above threshold", trial, k, dhat, dg)
		}
	}
}

func BenchmarkRhoStar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RhoStarHetero(2 + i%100)
		RhoStarHomog(2 + i%100)
	}
}

func BenchmarkDhatHetero(b *testing.B) {
	sigmas := []float64{0.01, 0.02, 0.03}
	rhos := []float64{0.2, 0.25, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DhatHetero(sigmas, rhos)
	}
}
