package topo

import (
	"testing"

	"repro/internal/des"
)

func TestBackbone19Shape(t *testing.T) {
	g := Backbone19()
	if g.NumNodes() != BackboneNodes {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 31 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("backbone must be connected")
	}
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(NodeID(v))
		if d < 1 || d > 6 {
			t.Fatalf("router %d degree %d outside [1,6]", v, d)
		}
	}
}

func TestBackboneDelaysPlausible(t *testing.T) {
	g := Backbone19()
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Neighbors(NodeID(v)) {
			if e.Delay < 100*des.Microsecond || e.Delay > 3*des.Millisecond {
				t.Fatalf("link %d-%d delay %v outside plausible band", v, e.To, e.Delay)
			}
		}
	}
	// Diameter sanity: all-pairs delays under ~10ms.
	apsp := g.AllPairs()
	var max des.Duration
	for i := 0; i < g.NumNodes(); i++ {
		for j := 0; j < g.NumNodes(); j++ {
			if apsp.Delay[i][j] > max {
				max = apsp.Delay[i][j]
			}
		}
	}
	if max <= 0 || max > 10*des.Millisecond {
		t.Fatalf("backbone diameter %v outside (0, 10ms]", max)
	}
}

func TestBackboneDeterministic(t *testing.T) {
	a, b := Backbone19(), Backbone19()
	for v := 0; v < a.NumNodes(); v++ {
		na, nb := a.Neighbors(NodeID(v)), b.Neighbors(NodeID(v))
		if len(na) != len(nb) {
			t.Fatalf("router %d neighbor counts differ", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("router %d edge %d differs", v, i)
			}
		}
	}
}

func TestNewNetworkAttachment(t *testing.T) {
	net := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 665, Seed: 1})
	if len(net.Hosts) != 665 {
		t.Fatalf("hosts = %d", len(net.Hosts))
	}
	total := 0
	for r := 0; r < BackboneNodes; r++ {
		total += len(net.HostsAtRouter(NodeID(r)))
	}
	if total != 665 {
		t.Fatalf("router partition covers %d hosts", total)
	}
	for _, h := range net.Hosts {
		if h.AccessDelay < 100*des.Microsecond || h.AccessDelay > des.Millisecond {
			t.Fatalf("host %d access delay %v outside defaults", h.ID, h.AccessDelay)
		}
		if int(h.Router) < 0 || int(h.Router) >= BackboneNodes {
			t.Fatalf("host %d router %d", h.ID, h.Router)
		}
	}
}

func TestNetworkDeterministicPerSeed(t *testing.T) {
	a := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 100, Seed: 7})
	b := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 100, Seed: 7})
	c := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 100, Seed: 8})
	for i := range a.Hosts {
		if a.Hosts[i] != b.Hosts[i] {
			t.Fatalf("same seed produced different host %d", i)
		}
	}
	diff := false
	for i := range a.Hosts {
		if a.Hosts[i] != c.Hosts[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical attachments")
	}
}

func TestLatencySymmetricPositive(t *testing.T) {
	net := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 50, Seed: 3})
	for a := 0; a < 50; a += 7 {
		for b := 0; b < 50; b += 5 {
			la, lb := net.Latency(a, b), net.Latency(b, a)
			if la != lb {
				t.Fatalf("latency asymmetric %d<->%d: %v vs %v", a, b, la, lb)
			}
			if a == b && la != 0 {
				t.Fatalf("self latency = %v", la)
			}
			if a != b && la <= 0 {
				t.Fatalf("latency %d->%d = %v", a, b, la)
			}
			if net.RTT(a, b) != 2*la {
				t.Fatal("RTT != 2*latency")
			}
		}
	}
}

func TestLatencySameRouterSkipsBackbone(t *testing.T) {
	net := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 200, Seed: 5})
	var r NodeID = -1
	var pair [2]int
	for router := 0; router < BackboneNodes; router++ {
		hs := net.HostsAtRouter(NodeID(router))
		if len(hs) >= 2 {
			r = NodeID(router)
			pair = [2]int{hs[0], hs[1]}
			break
		}
	}
	if r < 0 {
		t.Skip("no router with two hosts at this seed")
	}
	want := net.Hosts[pair[0]].AccessDelay + net.Hosts[pair[1]].AccessDelay
	if got := net.Latency(pair[0], pair[1]); got != want {
		t.Fatalf("same-router latency %v, want %v", got, want)
	}
}

func TestRouterPath(t *testing.T) {
	net := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 100, Seed: 11})
	// Find two hosts on different routers.
	var a, b = -1, -1
	for i := range net.Hosts {
		for j := range net.Hosts {
			if net.Hosts[i].Router != net.Hosts[j].Router {
				a, b = i, j
				break
			}
		}
		if a >= 0 {
			break
		}
	}
	p := net.RouterPath(a, b)
	if len(p) < 2 {
		t.Fatalf("path = %v", p)
	}
	if p[0] != net.Hosts[a].Router || p[len(p)-1] != net.Hosts[b].Router {
		t.Fatalf("path endpoints wrong: %v", p)
	}
}

func TestDomains(t *testing.T) {
	net := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 665, Seed: 1})
	doms := net.Domains()
	if len(doms) == 0 || len(doms) > BackboneNodes {
		t.Fatalf("domains = %d", len(doms))
	}
	count := 0
	for _, members := range doms {
		if len(members) == 0 {
			t.Fatal("empty domain returned")
		}
		count += len(members)
	}
	if count != 665 {
		t.Fatalf("domains cover %d hosts", count)
	}
}

func TestNewNetworkPanicsWithoutHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(Backbone19(), NetworkConfig{})
}

func BenchmarkNewNetwork665(b *testing.B) {
	g := Backbone19()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewNetwork(g, NetworkConfig{NumHosts: 665, Seed: uint64(i)})
	}
}

func BenchmarkLatency(b *testing.B) {
	net := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 665, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Latency(i%665, (i*31)%665)
	}
}
