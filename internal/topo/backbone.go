package topo

import (
	"repro/internal/des"
	"repro/internal/xrand"
)

// Backbone constants. The paper's Fig. 5 shows a 19-router backbone; the
// exact edge set is not legible from the published figure, so we lay the 19
// routers out on a plausible continental plane and connect them with a
// fixed edge set of comparable density (31 links, degree 2..5, diameter 5).
// Only path-delay sums and the router partition matter to the experiments
// (see DESIGN.md, substitution table).
const (
	// BackboneNodes is the router count of Fig. 5.
	BackboneNodes = 19
	// DefaultBackboneCapacity keeps the core uncongested, matching the
	// paper's setup where the bottleneck is end-host output capacity.
	DefaultBackboneCapacity = 1e9 // 1 Gbit/s
	// propagation speed proxy: ~5 microseconds per simulated km.
	microsecondsPerUnit = 5.0
)

// Backbone19 builds the 19-router backbone used by every multi-group
// experiment. Link propagation delays derive from planar distance at
// ~5 µs per unit, yielding one-hop delays of roughly 0.4–1.6 ms and a
// network diameter of ~6 ms, typical of a national ISP core.
func Backbone19() *Graph {
	g := NewGraph(BackboneNodes)
	coords := []Point{
		{120, 300}, // 0
		{220, 180}, // 1
		{260, 420}, // 2
		{380, 120}, // 3
		{400, 300}, // 4
		{360, 520}, // 5
		{520, 200}, // 6
		{540, 400}, // 7
		{500, 580}, // 8
		{660, 100}, // 9
		{680, 300}, // 10
		{640, 500}, // 11
		{780, 200}, // 12
		{800, 420}, // 13
		{760, 580}, // 14
		{900, 120}, // 15
		{920, 320}, // 16
		{880, 520}, // 17
		{40, 480},  // 18
	}
	for i, p := range coords {
		g.SetCoord(NodeID(i), p)
	}
	edges := [][2]NodeID{
		{0, 1}, {0, 2}, {0, 18}, {1, 2}, {1, 3}, {2, 5}, {2, 18},
		{3, 4}, {3, 6}, {4, 5}, {4, 6}, {4, 7}, {5, 8}, {6, 9},
		{6, 10}, {7, 10}, {7, 11}, {8, 11}, {8, 14}, {9, 12},
		{9, 15}, {10, 12}, {10, 13}, {11, 13}, {11, 14}, {12, 15},
		{12, 16}, {13, 16}, {13, 17}, {14, 17}, {16, 17},
	}
	for _, e := range edges {
		d := g.Coord(e[0]).Dist(g.Coord(e[1]))
		delay := des.Time(d * microsecondsPerUnit * float64(des.Microsecond))
		g.AddEdge(e[0], e[1], delay, DefaultBackboneCapacity)
	}
	return g
}

// Host is an end host attached to a backbone router through an access link.
type Host struct {
	ID          int
	Router      NodeID
	AccessDelay des.Duration // one-way host<->router propagation
	Coord       Point
	// UplinkMult scales this host's output capacity relative to the
	// session's base per-connection capacity C. 1 (the default) is the
	// paper's homogeneous population; NetworkConfig.UplinkClasses draws
	// heterogeneous multipliers (e.g. a DSL/fibre split).
	UplinkMult float64
}

// UplinkClass is one capacity tier of a heterogeneous host population.
type UplinkClass struct {
	// Mult is the capacity multiplier of hosts in this class.
	Mult float64
	// Weight is the class's relative population share.
	Weight float64
}

// Network bundles the backbone, its routing tables, and the attached hosts.
// It is the single source of truth for inter-host latency, used both by the
// overlay tree builders (RTT-based clustering) and by the EMcast simulator
// (per-hop propagation delay).
type Network struct {
	Backbone *Graph
	Routes   *APSP
	Hosts    []Host
	byRouter [][]int
}

// NetworkConfig controls host attachment.
type NetworkConfig struct {
	NumHosts int
	// AccessDelayMin/Max bound the uniformly drawn host<->router one-way
	// propagation delay. Defaults: 0.1ms .. 1ms.
	AccessDelayMin des.Duration
	AccessDelayMax des.Duration
	Seed           uint64
	// UplinkClasses, when non-empty, assigns each host a capacity
	// multiplier drawn from the weighted classes. Empty means every host
	// gets multiplier 1 (the paper's homogeneous population). The class
	// draw uses its own generator, so enabling heterogeneity never
	// perturbs the attachment/access-delay stream.
	UplinkClasses []UplinkClass
}

func (c *NetworkConfig) fillDefaults() {
	if c.AccessDelayMin <= 0 {
		c.AccessDelayMin = 100 * des.Microsecond
	}
	if c.AccessDelayMax < c.AccessDelayMin {
		c.AccessDelayMax = des.Millisecond
	}
}

// NewNetwork attaches cfg.NumHosts end hosts to the given backbone,
// distributing them across routers deterministically (router weights are
// drawn once from the seed, so some domains are denser than others, as in
// real deployments). It panics if NumHosts <= 0.
func NewNetwork(backbone *Graph, cfg NetworkConfig) *Network {
	if cfg.NumHosts <= 0 {
		panic("topo: NumHosts must be positive")
	}
	cfg.fillDefaults()
	rng := xrand.New(cfg.Seed ^ 0xd1b54a32d192ed03)
	n := backbone.NumNodes()
	// Router popularity weights: uniform in [1, 3).
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 1 + 2*rng.Float64()
		total += weights[i]
	}
	net := &Network{
		Backbone: backbone,
		Routes:   backbone.AllPairs(),
		Hosts:    make([]Host, cfg.NumHosts),
		byRouter: make([][]int, n),
	}
	// Capacity classes draw from a separate stream (see UplinkClasses).
	var crng *xrand.Rand
	var classTotal float64
	if len(cfg.UplinkClasses) > 0 {
		crng = xrand.New(cfg.Seed ^ 0x94d049bb133111eb)
		for _, c := range cfg.UplinkClasses {
			if c.Mult <= 0 || c.Weight <= 0 {
				panic("topo: uplink class Mult and Weight must be positive")
			}
			classTotal += c.Weight
		}
	}
	for h := 0; h < cfg.NumHosts; h++ {
		// Weighted router choice.
		pick := rng.Float64() * total
		router := NodeID(n - 1)
		for i, w := range weights {
			if pick < w {
				router = NodeID(i)
				break
			}
			pick -= w
		}
		span := float64(cfg.AccessDelayMax - cfg.AccessDelayMin)
		access := cfg.AccessDelayMin + des.Duration(rng.Float64()*span)
		rc := backbone.Coord(router)
		mult := 1.0
		if crng != nil {
			cpick := crng.Float64() * classTotal
			mult = cfg.UplinkClasses[len(cfg.UplinkClasses)-1].Mult
			for _, c := range cfg.UplinkClasses {
				if cpick < c.Weight {
					mult = c.Mult
					break
				}
				cpick -= c.Weight
			}
		}
		net.Hosts[h] = Host{
			ID:          h,
			Router:      router,
			AccessDelay: access,
			Coord: Point{
				X: rc.X + 20*(rng.Float64()-0.5),
				Y: rc.Y + 20*(rng.Float64()-0.5),
			},
			UplinkMult: mult,
		}
		net.byRouter[router] = append(net.byRouter[router], h)
	}
	return net
}

// HostsAtRouter returns the IDs of hosts attached to router r — the
// paper's "local domain" for DSCT construction.
func (n *Network) HostsAtRouter(r NodeID) []int { return n.byRouter[r] }

// Domains returns the non-empty local domains (router ID + member hosts).
func (n *Network) Domains() map[NodeID][]int {
	out := make(map[NodeID][]int)
	for r, hosts := range n.byRouter {
		if len(hosts) > 0 {
			out[NodeID(r)] = hosts
		}
	}
	return out
}

// Latency returns the one-way propagation delay between two hosts:
// access + backbone shortest path + access. Hosts on the same router
// communicate through it (both access links, no backbone hops).
func (n *Network) Latency(a, b int) des.Duration {
	ha, hb := &n.Hosts[a], &n.Hosts[b]
	if a == b {
		return 0
	}
	core := des.Duration(0)
	if ha.Router != hb.Router {
		core = n.Routes.Delay[ha.Router][hb.Router]
	}
	return ha.AccessDelay + core + hb.AccessDelay
}

// RTT returns the round-trip time between two hosts, the metric DSCT and
// NICE use for "closest member" decisions.
func (n *Network) RTT(a, b int) des.Duration { return 2 * n.Latency(a, b) }

// RouterPath returns the router sequence a's packets traverse to reach b
// (excluding the access links), or nil for hosts on a shared router.
func (n *Network) RouterPath(a, b int) []NodeID {
	ra, rb := n.Hosts[a].Router, n.Hosts[b].Router
	if ra == rb {
		return []NodeID{ra}
	}
	return n.Routes.Path(ra, rb)
}
