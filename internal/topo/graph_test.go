package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/xrand"
)

func lineGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), des.Millisecond, 1e9)
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	cases := []func(){
		func() { g.AddEdge(0, 0, 1, 1) }, // self loop
		func() { g.AddEdge(0, 5, 1, 1) }, // out of range
		func() { g.AddEdge(0, 1, 0, 1) }, // zero delay
		func() { g.AddEdge(0, 1, 1, 0) }, // zero capacity
		func() { NewGraph(0) },           // empty graph
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEdgesAreUndirected(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, des.Millisecond, 1e6)
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees %d/%d", g.Degree(0), g.Degree(1))
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Neighbors(1)[0].To != 0 {
		t.Fatal("reverse edge missing")
	}
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(5)
	dist, prev := g.Dijkstra(0)
	for i := 0; i < 5; i++ {
		want := des.Duration(i) * des.Millisecond
		if dist[i] != want {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], want)
		}
	}
	path := PathTo(prev, 0, 4)
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("path = %v", path)
	}
}

func TestDijkstraPicksShorterRoute(t *testing.T) {
	// 0-1-2 costs 2ms, direct 0-2 costs 5ms.
	g := NewGraph(3)
	g.AddEdge(0, 1, des.Millisecond, 1e9)
	g.AddEdge(1, 2, des.Millisecond, 1e9)
	g.AddEdge(0, 2, 5*des.Millisecond, 1e9)
	dist, prev := g.Dijkstra(0)
	if dist[2] != 2*des.Millisecond {
		t.Fatalf("dist[2] = %v", dist[2])
	}
	path := PathTo(prev, 0, 2)
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path = %v", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, des.Millisecond, 1e9)
	g.AddEdge(2, 3, des.Millisecond, 1e9)
	dist, prev := g.Dijkstra(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable dist = %v/%v", dist[2], dist[3])
	}
	if PathTo(prev, 0, 3) != nil {
		t.Fatal("path to unreachable node should be nil")
	}
	if !g.Connected() {
		// expected: the graph is disconnected
	} else {
		t.Fatal("Connected() on a disconnected graph")
	}
}

func TestPathToSelf(t *testing.T) {
	g := lineGraph(3)
	_, prev := g.Dijkstra(1)
	p := PathTo(prev, 1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestAPSPPathAndNextHop(t *testing.T) {
	g := lineGraph(4)
	a := g.AllPairs()
	if a.NextHop(0, 3) != 1 {
		t.Fatalf("NextHop(0,3) = %d", a.NextHop(0, 3))
	}
	if a.NextHop(0, 0) != -1 {
		t.Fatalf("NextHop to self = %d", a.NextHop(0, 0))
	}
	path := a.Path(0, 3)
	want := []NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v", path)
		}
	}
	if got := a.Path(2, 2); len(got) != 1 {
		t.Fatalf("self path = %v", got)
	}
}

func randomConnectedGraph(rng *xrand.Rand, n int) *Graph {
	g := NewGraph(n)
	// Random spanning tree first, then extra chords.
	for i := 1; i < n; i++ {
		j := NodeID(rng.Intn(i))
		g.AddEdge(NodeID(i), j, des.Duration(1+rng.Intn(1000))*des.Microsecond, 1e9)
	}
	extra := rng.Intn(n)
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(NodeID(a), NodeID(b), des.Duration(1+rng.Intn(1000))*des.Microsecond, 1e9)
		}
	}
	return g
}

// Property: Dijkstra-based APSP agrees with Floyd-Warshall on random graphs.
func TestQuickAPSPMatchesFloydWarshall(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		g := randomConnectedGraph(rng, n)
		apsp := g.AllPairs()
		fw := g.FloydWarshall()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if apsp.Delay[i][j] != fw[i][j] {
					t.Fatalf("trial %d: delay[%d][%d] dijkstra=%v fw=%v",
						trial, i, j, apsp.Delay[i][j], fw[i][j])
				}
			}
		}
	}
}

// Property: APSP path delays telescope to the distance matrix.
func TestQuickAPSPPathConsistency(t *testing.T) {
	rng := xrand.New(123)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		g := randomConnectedGraph(rng, n)
		apsp := g.AllPairs()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				path := apsp.Path(NodeID(i), NodeID(j))
				if path == nil {
					t.Fatalf("nil path in connected graph %d->%d", i, j)
				}
				var total des.Duration
				for k := 0; k+1 < len(path); k++ {
					// find min edge delay between path[k], path[k+1]
					best := des.Duration(1) << 62
					for _, e := range g.Neighbors(path[k]) {
						if e.To == path[k+1] && e.Delay < best {
							best = e.Delay
						}
					}
					total += best
				}
				if total != apsp.Delay[i][j] {
					t.Fatalf("path delay %v != matrix %v for %d->%d", total, apsp.Delay[i][j], i, j)
				}
			}
		}
	}
}

func TestPointDist(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Fatalf("dist = %v", d)
	}
	if d := p.Dist(p); d != 0 {
		t.Fatalf("self dist = %v", d)
	}
}

// Property: triangle inequality for shortest-path delays.
func TestQuickTriangleInequality(t *testing.T) {
	rng := xrand.New(7)
	g := randomConnectedGraph(rng, 12)
	apsp := g.AllPairs()
	f := func(a, b, c uint8) bool {
		i, j, k := int(a)%12, int(b)%12, int(c)%12
		return apsp.Delay[i][j] <= apsp.Delay[i][k]+apsp.Delay[k][j]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstraBackbone(b *testing.B) {
	g := Backbone19()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(NodeID(i % BackboneNodes))
	}
}

func BenchmarkAllPairsBackbone(b *testing.B) {
	g := Backbone19()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairs()
	}
}
