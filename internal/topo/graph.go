// Package topo models the underlay network topology: the backbone router
// graph of the paper's Fig. 5, deterministic attachment of group end hosts
// to backbone routers, and shortest-path routing. Overlay hop latencies and
// the DSCT tree's "local domain" partition both derive from this package.
package topo

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// NodeID identifies a router in the backbone graph.
type NodeID int

// Edge is one directed half of a backbone link.
type Edge struct {
	To       NodeID
	Delay    des.Duration // propagation delay
	Capacity float64      // bits/second
}

// Point is a 2-D coordinate used to synthesise geographically plausible
// propagation delays.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	// math.Sqrt, not math.Hypot: coordinates are small so overflow is
	// impossible, and this sits on the tree-construction hot path.
	return math.Sqrt(dx*dx + dy*dy)
}

// Graph is an undirected multigraph over n routers.
type Graph struct {
	n      int
	adj    [][]Edge
	coords []Point
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("topo: graph must have at least one node")
	}
	return &Graph{n: n, adj: make([][]Edge, n), coords: make([]Point, n)}
}

// NumNodes returns the number of routers.
func (g *Graph) NumNodes() int { return g.n }

// SetCoord records the planar coordinate of node v.
func (g *Graph) SetCoord(v NodeID, p Point) { g.coords[v] = p }

// Coord returns the planar coordinate of node v.
func (g *Graph) Coord(v NodeID) Point { return g.coords[v] }

// AddEdge inserts an undirected link between a and b with the given
// propagation delay and capacity. It panics on self-loops or out-of-range
// nodes.
func (g *Graph) AddEdge(a, b NodeID, delay des.Duration, capacity float64) {
	if a == b {
		panic("topo: self loop")
	}
	if int(a) < 0 || int(a) >= g.n || int(b) < 0 || int(b) >= g.n {
		panic(fmt.Sprintf("topo: edge %d-%d out of range [0,%d)", a, b, g.n))
	}
	if delay <= 0 || capacity <= 0 {
		panic("topo: edge delay and capacity must be positive")
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Delay: delay, Capacity: capacity})
	g.adj[b] = append(g.adj[b], Edge{To: a, Delay: delay, Capacity: capacity})
}

// Neighbors returns the outgoing edges of v. The slice is owned by the
// graph; callers must not mutate it.
func (g *Graph) Neighbors(v NodeID) []Edge { return g.adj[v] }

// NumEdges returns the number of undirected links.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// Degree returns the number of links incident to v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	seen := make([]bool, g.n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

const inf = des.Time(1) << 62

// Dijkstra computes single-source shortest path delays from src. It returns
// the delay to every node (infinite delays are reported as negative) and the
// predecessor array for path extraction.
func (g *Graph) Dijkstra(src NodeID) (dist []des.Duration, prev []NodeID) {
	dist = make([]des.Duration, g.n)
	prev = make([]NodeID, g.n)
	visited := make([]bool, g.n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	// A flat-array priority queue: at the graph sizes used here (19-node
	// backbone) a linear scan beats heap bookkeeping and has no allocation.
	for {
		best := NodeID(-1)
		bestD := inf
		for v := 0; v < g.n; v++ {
			if !visited[v] && dist[v] < bestD {
				best, bestD = NodeID(v), dist[v]
			}
		}
		if best < 0 {
			break
		}
		visited[best] = true
		for _, e := range g.adj[best] {
			if nd := bestD + e.Delay; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = best
			}
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist, prev
}

// PathTo reconstructs the node sequence src..dst from a predecessor array
// returned by Dijkstra(src). It returns nil when dst is unreachable.
func PathTo(prev []NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if prev[dst] < 0 {
		return nil
	}
	var rev []NodeID
	for v := dst; v >= 0; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// APSP holds all-pairs shortest path delays and next-hop tables.
type APSP struct {
	Delay [][]des.Duration
	next  [][]NodeID
}

// AllPairs runs Dijkstra from every node and assembles routing tables.
func (g *Graph) AllPairs() *APSP {
	a := &APSP{
		Delay: make([][]des.Duration, g.n),
		next:  make([][]NodeID, g.n),
	}
	for s := 0; s < g.n; s++ {
		dist, prev := g.Dijkstra(NodeID(s))
		a.Delay[s] = dist
		a.next[s] = make([]NodeID, g.n)
		for d := 0; d < g.n; d++ {
			a.next[s][d] = -1
			if d == s || dist[d] < 0 {
				continue
			}
			// Walk back from d to find the first hop out of s.
			v := NodeID(d)
			for prev[v] != NodeID(s) {
				v = prev[v]
			}
			a.next[s][d] = v
		}
	}
	return a
}

// NextHop returns the next router on the shortest path from src toward dst,
// or -1 when dst is unreachable or equal to src.
func (a *APSP) NextHop(src, dst NodeID) NodeID { return a.next[src][dst] }

// Path returns the router sequence src..dst, or nil when unreachable.
func (a *APSP) Path(src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if a.next[src][dst] < 0 {
		return nil
	}
	path := []NodeID{src}
	for v := src; v != dst; {
		v = a.next[v][dst]
		path = append(path, v)
	}
	return path
}

// FloydWarshall computes all-pairs shortest delays directly; used as a
// cross-check oracle for AllPairs in tests.
func (g *Graph) FloydWarshall() [][]des.Duration {
	d := make([][]des.Duration, g.n)
	for i := range d {
		d[i] = make([]des.Duration, g.n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for v := 0; v < g.n; v++ {
		for _, e := range g.adj[v] {
			if e.Delay < d[v][e.To] {
				d[v][e.To] = e.Delay
			}
		}
	}
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			dik := d[i][k]
			if dik == inf {
				continue
			}
			for j := 0; j < g.n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	for i := range d {
		for j := range d[i] {
			if d[i][j] == inf {
				d[i][j] = -1
			}
		}
	}
	return d
}
