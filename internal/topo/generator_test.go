package topo

import (
	"testing"
)

func generators() []Generator {
	return []Generator{
		Backbone19Generator{},
		Waxman{},
		Waxman{N: 64},
		TransitStub{},
		TransitStub{Transits: 3, StubsPerTransit: 2, StubSize: 5},
		Ring{},
		Star{},
	}
}

func TestGeneratorsProduceConnectedGraphs(t *testing.T) {
	for _, gen := range generators() {
		for seed := uint64(1); seed <= 5; seed++ {
			g := gen.Build(seed)
			if g.NumNodes() < 2 {
				t.Fatalf("%s(seed %d): %d nodes", gen.Name(), seed, g.NumNodes())
			}
			if !g.Connected() {
				t.Fatalf("%s(seed %d): disconnected graph", gen.Name(), seed)
			}
			for v := 0; v < g.NumNodes(); v++ {
				for _, e := range g.Neighbors(NodeID(v)) {
					if e.Delay <= 0 || e.Capacity <= 0 {
						t.Fatalf("%s(seed %d): edge %d-%d has delay %v capacity %v",
							gen.Name(), seed, v, e.To, e.Delay, e.Capacity)
					}
				}
			}
		}
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	for _, gen := range generators() {
		a, b := gen.Build(7), gen.Build(7)
		if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: same seed, different shape", gen.Name())
		}
		da, db := a.FloydWarshall(), b.FloydWarshall()
		for i := range da {
			for j := range da[i] {
				if da[i][j] != db[i][j] {
					t.Fatalf("%s: same seed, different delays at %d-%d", gen.Name(), i, j)
				}
			}
		}
	}
}

func TestWaxmanSeedsDiffer(t *testing.T) {
	w := Waxman{N: 48}
	a, b := w.Build(1), w.Build(2)
	if a.NumEdges() == b.NumEdges() {
		// Edge counts can collide; fall back to comparing a distance.
		da, _ := a.Dijkstra(0)
		db, _ := b.Dijkstra(0)
		same := true
		for i := range da {
			if da[i] != db[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("Waxman ignores its seed")
		}
	}
}

func TestTransitStubNodeCount(t *testing.T) {
	ts := TransitStub{Transits: 3, StubsPerTransit: 2, StubSize: 5}
	g := ts.Build(1)
	if want := 3 * (1 + 2*5); g.NumNodes() != want {
		t.Fatalf("transit-stub nodes = %d, want %d", g.NumNodes(), want)
	}
}

// Heterogeneous uplinks must be purely additive: enabling classes draws
// from a separate stream, so attachment, access delays, and coordinates
// stay bit-identical to the homogeneous population.
func TestUplinkClassesDoNotPerturbAttachment(t *testing.T) {
	base := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 200, Seed: 5})
	classes := NewNetwork(Backbone19(), NetworkConfig{NumHosts: 200, Seed: 5,
		UplinkClasses: []UplinkClass{{Mult: 0.5, Weight: 1}, {Mult: 4, Weight: 1}}})
	sawHalf, sawQuad := false, false
	for i := range base.Hosts {
		b, c := base.Hosts[i], classes.Hosts[i]
		if b.Router != c.Router || b.AccessDelay != c.AccessDelay || b.Coord != c.Coord {
			t.Fatalf("host %d attachment perturbed by uplink classes", i)
		}
		if b.UplinkMult != 1 {
			t.Fatalf("host %d default UplinkMult = %v, want 1", i, b.UplinkMult)
		}
		switch c.UplinkMult {
		case 0.5:
			sawHalf = true
		case 4:
			sawQuad = true
		default:
			t.Fatalf("host %d UplinkMult = %v, not a class multiplier", i, c.UplinkMult)
		}
	}
	if !sawHalf || !sawQuad {
		t.Fatal("class draw never produced one of the two classes")
	}
}

func TestUplinkClassesDeterministic(t *testing.T) {
	cfg := NetworkConfig{NumHosts: 100, Seed: 9,
		UplinkClasses: []UplinkClass{{Mult: 1, Weight: 3}, {Mult: 2, Weight: 1}}}
	a, b := NewNetwork(Backbone19(), cfg), NewNetwork(Backbone19(), cfg)
	for i := range a.Hosts {
		if a.Hosts[i].UplinkMult != b.Hosts[i].UplinkMult {
			t.Fatalf("host %d class draw not deterministic", i)
		}
	}
}
