package topo

import (
	"math"

	"repro/internal/des"
	"repro/internal/xrand"
)

// Generator builds an underlay router graph from a seed. The paper's fixed
// 19-router backbone is one instance; the others synthesise families of
// topologies (random Waxman graphs, transit-stub hierarchies, ring/star
// degenerate cases) so the scenario layer can ask "does the result survive
// a different underlay?" without touching the simulation engines. Every
// generator must return a connected graph with positive delays and
// capacities; Build must be a pure function of the seed.
type Generator interface {
	// Name identifies the family for CLI/registry output.
	Name() string
	// Build synthesises the graph. Implementations mix the seed with a
	// family-specific constant so distinct families fed the same seed do
	// not correlate.
	Build(seed uint64) *Graph
}

// delayFor converts planar distance to a propagation delay at the same
// ~5 µs/unit scale the paper backbone uses, clamped to a positive floor so
// coincident points still yield a legal edge.
func delayFor(d float64) des.Duration {
	delay := des.Time(d * microsecondsPerUnit * float64(des.Microsecond))
	if delay < 10*des.Microsecond {
		delay = 10 * des.Microsecond
	}
	return delay
}

// connect adds an edge a-b with distance-derived delay unless it exists.
func connect(g *Graph, a, b NodeID, capacity float64) {
	if a == b {
		return
	}
	for _, e := range g.Neighbors(a) {
		if e.To == b {
			return
		}
	}
	g.AddEdge(a, b, delayFor(g.Coord(a).Dist(g.Coord(b))), capacity)
}

// stitch makes g connected: every node unreachable from node 0 is linked
// to its nearest reachable node, in ascending node order (deterministic).
func stitch(g *Graph, capacity float64) {
	n := g.NumNodes()
	seen := make([]bool, n)
	var walk func(v NodeID)
	walk = func(v NodeID) {
		seen[v] = true
		for _, e := range g.Neighbors(v) {
			if !seen[e.To] {
				walk(e.To)
			}
		}
	}
	walk(0)
	for v := 1; v < n; v++ {
		if seen[v] {
			continue
		}
		best, bestD := NodeID(-1), math.Inf(1)
		for u := 0; u < n; u++ {
			if !seen[u] {
				continue
			}
			if d := g.Coord(NodeID(v)).Dist(g.Coord(NodeID(u))); d < bestD {
				best, bestD = NodeID(u), d
			}
		}
		connect(g, NodeID(v), best, capacity)
		walk(NodeID(v))
	}
}

// Backbone19Generator wraps the paper's fixed 19-router backbone (Fig. 5)
// in the Generator interface. The seed is ignored: the backbone is the one
// deterministic constant of the evaluation.
type Backbone19Generator struct{}

// Name implements Generator.
func (Backbone19Generator) Name() string { return "backbone19" }

// Build implements Generator.
func (Backbone19Generator) Build(uint64) *Graph { return Backbone19() }

// Waxman generates the classic Waxman (1988) random graph: N routers
// uniform on a Size×Size plane, each pair linked with probability
// α·exp(−d/(β·L)) where L is the plane diagonal. Larger α densifies the
// graph uniformly; larger β favours long-haul links. The result is
// stitched to connectivity (isolated routers attach to their nearest
// reachable neighbour), so every seed yields a usable underlay.
type Waxman struct {
	N        int     // routers; default 32
	Alpha    float64 // edge probability scale; default 0.35
	Beta     float64 // distance decay scale; default 0.25
	Size     float64 // plane edge length; default 1000 units
	Capacity float64 // link capacity; default DefaultBackboneCapacity
}

func (w Waxman) withDefaults() Waxman {
	if w.N == 0 {
		w.N = 32
	}
	if w.N < 2 {
		panic("topo: Waxman needs at least two routers")
	}
	if w.Alpha == 0 {
		w.Alpha = 0.35
	}
	if w.Beta == 0 {
		w.Beta = 0.25
	}
	if w.Size == 0 {
		w.Size = 1000
	}
	if w.Capacity == 0 {
		w.Capacity = DefaultBackboneCapacity
	}
	return w
}

// Name implements Generator.
func (w Waxman) Name() string { return "waxman" }

// Build implements Generator.
func (w Waxman) Build(seed uint64) *Graph {
	w = w.withDefaults()
	rng := xrand.New(seed ^ 0xb5297a4d3a2d9fcb)
	g := NewGraph(w.N)
	for i := 0; i < w.N; i++ {
		g.SetCoord(NodeID(i), Point{X: rng.Float64() * w.Size, Y: rng.Float64() * w.Size})
	}
	l := math.Sqrt2 * w.Size
	for i := 0; i < w.N; i++ {
		for j := i + 1; j < w.N; j++ {
			d := g.Coord(NodeID(i)).Dist(g.Coord(NodeID(j)))
			if rng.Float64() < w.Alpha*math.Exp(-d/(w.Beta*l)) {
				connect(g, NodeID(i), NodeID(j), w.Capacity)
			}
		}
	}
	stitch(g, w.Capacity)
	return g
}

// TransitStub generates a two-level transit-stub hierarchy in the spirit
// of GT-ITM: Transits core routers on a ring (with seeded chords), each
// with StubsPerTransit stub domains of StubSize routers hanging off it.
// Stub routers chain locally and uplink to their transit router, so
// stub-to-stub paths climb into the core — the regime where overlay
// locality (DSCT's domain partition) matters most.
type TransitStub struct {
	Transits        int     // core routers; default 4
	StubsPerTransit int     // stub domains per core router; default 3
	StubSize        int     // routers per stub domain; default 4
	Capacity        float64 // link capacity; default DefaultBackboneCapacity
}

func (t TransitStub) withDefaults() TransitStub {
	if t.Transits == 0 {
		t.Transits = 4
	}
	if t.StubsPerTransit == 0 {
		t.StubsPerTransit = 3
	}
	if t.StubSize == 0 {
		t.StubSize = 4
	}
	if t.Transits < 2 || t.StubsPerTransit < 1 || t.StubSize < 1 {
		panic("topo: TransitStub needs >=2 transits and positive stub dimensions")
	}
	if t.Capacity == 0 {
		t.Capacity = DefaultBackboneCapacity
	}
	return t
}

// Name implements Generator.
func (t TransitStub) Name() string { return "transit-stub" }

// NumNodes returns the total router count of the generated graph.
func (t TransitStub) NumNodes() int {
	t = t.withDefaults()
	return t.Transits * (1 + t.StubsPerTransit*t.StubSize)
}

// Build implements Generator.
func (t TransitStub) Build(seed uint64) *Graph {
	t = t.withDefaults()
	rng := xrand.New(seed ^ 0x1d8e4e27c47d124f)
	n := t.NumNodes()
	g := NewGraph(n)
	// Transit core: a ring of radius 400 centred on (500, 500).
	for i := 0; i < t.Transits; i++ {
		ang := 2 * math.Pi * float64(i) / float64(t.Transits)
		g.SetCoord(NodeID(i), Point{X: 500 + 400*math.Cos(ang), Y: 500 + 400*math.Sin(ang)})
	}
	for i := 0; i < t.Transits; i++ {
		connect(g, NodeID(i), NodeID((i+1)%t.Transits), t.Capacity)
	}
	// Seeded chords roughly halve the core diameter.
	for i := 0; i+2 < t.Transits; i += 2 {
		if rng.Bool(0.5) {
			connect(g, NodeID(i), NodeID(i+2), t.Capacity)
		}
	}
	// Stub domains: clusters of routers placed near their transit router.
	next := t.Transits
	for tr := 0; tr < t.Transits; tr++ {
		base := g.Coord(NodeID(tr))
		for s := 0; s < t.StubsPerTransit; s++ {
			centre := Point{
				X: base.X + 120*(rng.Float64()-0.5)*2,
				Y: base.Y + 120*(rng.Float64()-0.5)*2,
			}
			for k := 0; k < t.StubSize; k++ {
				g.SetCoord(NodeID(next), Point{
					X: centre.X + 30*(rng.Float64()-0.5),
					Y: centre.Y + 30*(rng.Float64()-0.5),
				})
				if k == 0 {
					connect(g, NodeID(next), NodeID(tr), t.Capacity)
				} else {
					connect(g, NodeID(next), NodeID(next-1), t.Capacity)
				}
				next++
			}
			// A second uplink from the stub tail guards against one-cut
			// partitions inside larger stubs.
			if t.StubSize > 2 {
				connect(g, NodeID(next-1), NodeID(tr), t.Capacity)
			}
		}
	}
	return g
}

// Ring generates an N-router cycle — the worst-diameter degenerate case:
// shortest paths average N/4 hops, so propagation dominates and tree
// locality is nearly meaningless.
type Ring struct {
	N        int     // routers; default 16
	Capacity float64 // link capacity; default DefaultBackboneCapacity
}

// Name implements Generator.
func (r Ring) Name() string { return "ring" }

// Build implements Generator.
func (r Ring) Build(uint64) *Graph {
	if r.N == 0 {
		r.N = 16
	}
	if r.N < 3 {
		panic("topo: ring needs at least three routers")
	}
	if r.Capacity == 0 {
		r.Capacity = DefaultBackboneCapacity
	}
	g := NewGraph(r.N)
	for i := 0; i < r.N; i++ {
		ang := 2 * math.Pi * float64(i) / float64(r.N)
		g.SetCoord(NodeID(i), Point{X: 500 + 450*math.Cos(ang), Y: 500 + 450*math.Sin(ang)})
	}
	for i := 0; i < r.N; i++ {
		connect(g, NodeID(i), NodeID((i+1)%r.N), r.Capacity)
	}
	return g
}

// Star generates a hub-and-spoke graph — the opposite degenerate case:
// every router pair is at most two hops apart, so the underlay contributes
// almost nothing and end-host capacity effects stand alone.
type Star struct {
	N        int     // routers including the hub; default 16
	Capacity float64 // link capacity; default DefaultBackboneCapacity
}

// Name implements Generator.
func (s Star) Name() string { return "star" }

// Build implements Generator.
func (s Star) Build(uint64) *Graph {
	if s.N == 0 {
		s.N = 16
	}
	if s.N < 2 {
		panic("topo: star needs at least two routers")
	}
	if s.Capacity == 0 {
		s.Capacity = DefaultBackboneCapacity
	}
	g := NewGraph(s.N)
	g.SetCoord(0, Point{X: 500, Y: 500})
	for i := 1; i < s.N; i++ {
		ang := 2 * math.Pi * float64(i-1) / float64(s.N-1)
		g.SetCoord(NodeID(i), Point{X: 500 + 420*math.Cos(ang), Y: 500 + 420*math.Sin(ang)})
		connect(g, NodeID(i), 0, s.Capacity)
	}
	return g
}
