// Package netsim provides the packet-level underlay transport for the
// EMcast experiments: store-and-forward links, a pure-delay pipe, and the
// Fabric that carries overlay-hop traffic between end hosts across the
// backbone of internal/topo.
//
// Two transit modes are offered. PipeTransit delivers a host-to-host
// packet after the shortest-path propagation delay with no router
// queueing — the appropriate model when (as in the paper's evaluation)
// the backbone is provisioned far above the offered load and the only
// contended resource is end-host output capacity. QueuedTransit routes
// packets hop by hop through per-direction router links with FIFO
// serialisation, for experiments that want core queueing effects.
package netsim

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/snap"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// transit wraps a packet with its final destination host for hop-by-hop
// routing inside the Fabric, plus the router it is heading to while on an
// access uplink.
type transit struct {
	p   traffic.Packet
	dst int
	via topo.NodeID
}

// flightPool recycles the carrier nodes for packets that are "in flight"
// on a pure delay (pipe latency, wire propagation, access uplinks). Any
// number of packets propagate concurrently, so a single stored callback is
// not enough — instead each node binds its own firing closure once, at
// node allocation, and nodes cycle through a free list. Steady-state sends
// therefore allocate nothing: the high-water mark of concurrently flying
// packets bounds the pool.
type flightPool struct {
	eng     *des.Engine
	free    *flightNode
	deliver func(transit)
	// Checkpoint support: a pool with a non-zero kind tags its events and
	// tracks every node it ever allocated, indexed by the node's idx — the
	// event arg — so a snapshot can read the in-flight transit a pending
	// event refers to. Untagged pools stay snapshot-incompatible.
	kind  uint16
	nodes []*flightNode
}

type flightNode struct {
	tr   transit
	idx  uint32
	next *flightNode
	fire func()
}

func newFlightPool(eng *des.Engine, deliver func(transit)) *flightPool {
	return &flightPool{eng: eng, deliver: deliver}
}

func (fp *flightPool) alloc() *flightNode {
	n := fp.free
	if n == nil {
		n = &flightNode{idx: uint32(len(fp.nodes))}
		fp.nodes = append(fp.nodes, n)
		n.fire = func() {
			tr := n.tr
			n.tr = transit{} // drop the packet reference while pooled
			n.next = fp.free
			fp.free = n
			fp.deliver(tr)
		}
	} else {
		fp.free = n.next
	}
	return n
}

// send schedules tr for delivery after d.
func (fp *flightPool) send(d des.Duration, tr transit) {
	n := fp.alloc()
	n.tr = tr
	if fp.kind != 0 {
		fp.eng.ScheduleInKind(d, fp.kind, n.idx, n.fire)
	} else {
		fp.eng.ScheduleIn(d, n.fire)
	}
}

// restore re-schedules a serialized in-flight delivery under its original
// (at, prio) stamps; the fresh node index becomes the event's new arg.
func (fp *flightPool) restore(at, prio des.Time, tr transit) {
	n := fp.alloc()
	n.tr = tr
	fp.eng.SchedulePrioKind(at, prio, fp.kind, n.idx, n.fire)
}

// Pipe is a fixed-latency, infinite-capacity conduit.
type Pipe struct {
	delay des.Duration
	pool  *flightPool
}

// NewPipe returns a pipe with the given one-way delay.
func NewPipe(eng *des.Engine, delay des.Duration, out func(traffic.Packet)) *Pipe {
	if delay < 0 {
		panic("netsim: pipe delay must be non-negative")
	}
	if out == nil {
		panic("netsim: nil output")
	}
	return &Pipe{
		delay: delay,
		pool:  newFlightPool(eng, func(tr transit) { out(tr.p) }),
	}
}

// Send delivers p after the pipe delay.
func (pi *Pipe) Send(p traffic.Packet) {
	pi.pool.send(pi.delay, transit{p: p})
}

// Link is a store-and-forward link: packets serialise at the link capacity
// in FIFO order, then propagate for the configured delay. Multiple packets
// may be "in flight" (propagating) simultaneously, as on a real wire.
type Link struct {
	eng      *des.Engine
	capacity float64 // bits/second
	prop     des.Duration

	queue   []transit
	head    int
	busy    bool
	bits    float64
	cur     transit // packet in serialisation (valid while busy)
	done    func()  // stored serialisation-completion callback
	flying  *flightPool
	Dropped uint64 // packets dropped by the queue cap, 0 = unlimited
	MaxQ    int    // cap on queued packets; 0 = unlimited

	// Checkpoint support: a link tagged by the fabric (see tagLink) carries
	// kind/arg on its serialisation-done events and propagates through the
	// fabric's shared, kind-tagged hop pool instead of its private one.
	// Untagged links (standalone use) stay snapshot-incompatible.
	kind uint16
	arg  uint32
	fly  func(d des.Duration, tr transit)
}

// NewLink returns a link serialising at capacity bits/second with the
// given propagation delay.
func NewLink(eng *des.Engine, capacity float64, prop des.Duration, out func(transit)) *Link {
	if capacity <= 0 {
		panic("netsim: link capacity must be positive")
	}
	if prop < 0 {
		panic("netsim: propagation delay must be non-negative")
	}
	if out == nil {
		panic("netsim: nil output")
	}
	l := &Link{eng: eng, capacity: capacity, prop: prop}
	l.flying = newFlightPool(eng, out)
	l.fly = func(d des.Duration, tr transit) { l.flying.send(d, tr) }
	l.done = func() {
		// Serialisation finished: the packet propagates while the link
		// starts on the next one.
		l.fly(l.prop, l.cur)
		l.serve()
	}
	return l
}

// Backlog returns the bits waiting for serialisation.
func (l *Link) Backlog() float64 { return l.bits }

// QueueLen returns the packets waiting for serialisation.
func (l *Link) QueueLen() int { return len(l.queue) - l.head }

// Send enqueues tr for transmission. When MaxQ > 0 and the queue is full
// the packet is dropped and counted.
func (l *Link) Send(tr transit) {
	if l.MaxQ > 0 && l.QueueLen() >= l.MaxQ {
		l.Dropped++
		return
	}
	l.queue = append(l.queue, tr)
	l.bits += tr.p.Size
	if !l.busy {
		l.serve()
	}
}

func (l *Link) serve() {
	if l.head >= len(l.queue) {
		l.busy = false
		return
	}
	l.busy = true
	tr := l.queue[l.head]
	l.head++
	if l.head > 64 && l.head*2 >= len(l.queue) {
		n := copy(l.queue, l.queue[l.head:])
		l.queue = l.queue[:n]
		l.head = 0
	}
	l.bits -= tr.p.Size
	l.cur = tr
	d := des.Seconds(tr.p.Size / l.capacity)
	if l.kind != 0 {
		l.eng.ScheduleInKind(d, l.kind, l.arg, l.done)
	} else {
		l.eng.ScheduleIn(d, l.done)
	}
}

// TransitMode selects how the Fabric carries host-to-host traffic.
type TransitMode int

// Fabric transit modes.
const (
	// PipeTransit delivers after end-to-end propagation with no core
	// queueing (default; matches the paper's uncongested backbone).
	PipeTransit TransitMode = iota
	// QueuedTransit routes hop-by-hop through serialising router links.
	QueuedTransit
)

// Fabric is the underlay transport connecting all end hosts.
type Fabric struct {
	eng       *des.Engine
	net       *topo.Network
	mode      TransitMode
	receivers []func(traffic.Packet)
	// pipes carries PipeTransit packets end to end; hops carries every
	// QueuedTransit pure-delay propagation — sender uplinks (via = the
	// sender's router), backbone wires (via = the receiving router), and
	// access-link descent to the host (via < 0). One shared, kind-tagged
	// pool means every in-flight hop rehydrates from (via, dst, packet).
	pipes *flightPool
	hops  *flightPool
	// QueuedTransit state: one Link per directed backbone edge, keyed by
	// [from][to], plus per-host access links. linkReg numbers every link in
	// a deterministic order (backbone edges router-ascending, then access
	// links host-ascending) — the slot a link's serialisation-done events
	// carry as their arg, and the order the checkpoint serializes them in.
	links   map[topo.NodeID]map[topo.NodeID]*Link
	access  []*Link // host uplink+downlink combined as one serialising stage
	linkReg []*Link
	// Sharded delivery (see FabricConfig.Local/Remote).
	local  func(host int) bool
	remote func(dst int, at des.Time, p traffic.Packet)
	drop   func(src, dst int) bool
	// Delivered counts packets handed to receivers.
	Delivered uint64
}

// FabricConfig tunes the underlay.
type FabricConfig struct {
	Mode TransitMode
	// AccessCapacity is the host access-link rate for QueuedTransit
	// (bits/second). Zero selects 100 Mbit/s.
	AccessCapacity float64
	// Local and Remote, when set together, shard the fabric for
	// conservative-parallel execution: this instance owns the hosts Local
	// reports true for, and a packet addressed to any other host is handed
	// to Remote with its computed arrival time instead of being scheduled
	// here — the peer shard delivers it through its own Fabric.Deliver.
	// Sharded delivery requires PipeTransit: QueuedTransit serialises
	// through router links that would be shared mutable state across
	// shards.
	Local  func(host int) bool
	Remote func(dst int, at des.Time, p traffic.Packet)
	// Drop, when set, is consulted for every host-to-host send with
	// src != dst; returning true discards the packet before it enters the
	// underlay — the fault plane's partition cut. The hook runs before the
	// sharded Remote handoff, so every execution mode makes the drop
	// decision at the same point: send time, at the sender. Packets already
	// in flight when a cut opens still deliver. The hook owns its own
	// accounting; the fabric counts nothing for dropped packets.
	Drop func(src, dst int) bool
}

// NewFabric builds the transport over the given network.
func NewFabric(eng *des.Engine, net *topo.Network, cfg FabricConfig) *Fabric {
	if (cfg.Remote == nil) != (cfg.Local == nil) {
		panic("netsim: sharded fabric needs both Local and Remote")
	}
	if cfg.Remote != nil && cfg.Mode != PipeTransit {
		panic("netsim: sharded delivery requires PipeTransit")
	}
	f := &Fabric{
		eng:       eng,
		net:       net,
		mode:      cfg.Mode,
		receivers: make([]func(traffic.Packet), len(net.Hosts)),
		local:     cfg.Local,
		remote:    cfg.Remote,
		drop:      cfg.Drop,
	}
	f.pipes = newFlightPool(eng, func(tr transit) { f.deliver(tr.dst, tr.p) })
	f.pipes.kind = des.KindFlight
	f.hops = newFlightPool(eng, func(tr transit) {
		if tr.via < 0 {
			f.deliver(tr.dst, tr.p)
			return
		}
		f.arriveAtRouter(tr.via, tr)
	})
	f.hops.kind = des.KindHopFlight
	if cfg.Mode == QueuedTransit {
		if cfg.AccessCapacity <= 0 {
			cfg.AccessCapacity = 100e6
		}
		// tagLink registers a link for checkpointing: its serialisation-done
		// events carry the registry slot, and packets leaving it propagate
		// through the shared hop pool addressed by via.
		tagLink := func(l *Link, via topo.NodeID) {
			l.kind = des.KindLinkDone
			l.arg = uint32(len(f.linkReg))
			l.fly = func(d des.Duration, tr transit) {
				tr.via = via
				f.hops.send(d, tr)
			}
			f.linkReg = append(f.linkReg, l)
		}
		f.links = make(map[topo.NodeID]map[topo.NodeID]*Link)
		g := net.Backbone
		for v := 0; v < g.NumNodes(); v++ {
			from := topo.NodeID(v)
			f.links[from] = make(map[topo.NodeID]*Link)
			for _, e := range g.Neighbors(from) {
				edge := e
				l := NewLink(eng, edge.Capacity, edge.Delay, func(tr transit) {
					f.arriveAtRouter(edge.To, tr)
				})
				tagLink(l, edge.To)
				f.links[from][edge.To] = l
			}
		}
		f.access = make([]*Link, len(net.Hosts))
		for i := range net.Hosts {
			host := i
			l := NewLink(eng, cfg.AccessCapacity, net.Hosts[i].AccessDelay, func(tr transit) {
				f.deliver(host, tr.p)
			})
			tagLink(l, -1)
			f.access[i] = l
		}
	}
	return f
}

// SetReceiver registers the delivery callback for a host.
func (f *Fabric) SetReceiver(host int, fn func(traffic.Packet)) {
	f.receivers[host] = fn
}

// Send carries p from host src to host dst and invokes dst's receiver.
// On a sharded fabric, packets to hosts owned by other shards are handed
// to the Remote hook with their arrival time instead.
func (f *Fabric) Send(src, dst int, p traffic.Packet) {
	if src == dst {
		f.deliver(dst, p)
		return
	}
	if f.drop != nil && f.drop(src, dst) {
		return
	}
	if f.remote != nil && !f.local(dst) {
		f.remote(dst, f.eng.Now()+f.net.Latency(src, dst), p)
		return
	}
	switch f.mode {
	case QueuedTransit:
		// Uplink propagation only: the sender's serialisation is already
		// modelled by its per-connection MUX, so the uplink is a pure
		// delay here; downlink serialises at the access link.
		f.hops.send(f.net.Hosts[src].AccessDelay,
			transit{p: p, dst: dst, via: f.net.Hosts[src].Router})
	default:
		f.pipes.send(f.net.Latency(src, dst), transit{p: p, dst: dst})
	}
}

func (f *Fabric) arriveAtRouter(r topo.NodeID, tr transit) {
	dstRouter := f.net.Hosts[tr.dst].Router
	if r == dstRouter {
		f.access[tr.dst].Send(tr)
		return
	}
	next := f.net.Routes.NextHop(r, dstRouter)
	if next < 0 {
		panic("netsim: no route between backbone routers")
	}
	f.links[r][next].Send(tr)
}

// Deliver hands p to host's receiver directly — the entry point a peer
// shard's coordinator uses for cross-shard arrivals at their scheduled
// time.
func (f *Fabric) Deliver(host int, p traffic.Packet) { f.deliver(host, p) }

// PendingFlight reads the in-flight delivery a pending KindFlight event
// (by its arg) refers to, for serialization.
func (f *Fabric) PendingFlight(arg uint32) (dst int, p traffic.Packet) {
	tr := f.pipes.nodes[arg].tr
	return tr.dst, tr.p
}

// RestoreFlight re-schedules a serialized in-flight delivery under its
// original (at, prio) stamps.
func (f *Fabric) RestoreFlight(at, prio des.Time, dst int, p traffic.Packet) {
	f.pipes.restore(at, prio, transit{p: p, dst: dst})
}

func (f *Fabric) deliver(host int, p traffic.Packet) {
	f.Delivered++
	if fn := f.receivers[host]; fn != nil {
		fn(p)
	}
}

// --- Checkpoint support (QueuedTransit) ---

func writeTransit(w *snap.Writer, tr transit) {
	w.U32(uint32(tr.dst))
	w.I64(int64(tr.via))
	tr.p.Snapshot(w)
}

func readTransit(r *snap.Reader) transit {
	dst := int(r.U32())
	via := topo.NodeID(r.I64())
	return transit{p: traffic.RestorePacket(r), dst: dst, via: via}
}

// SnapshotLinks writes every registered link's mutable state — the
// serialisation queue, the packet on the wire head (if busy), the backlog
// accumulator (verbatim: it is a running float sum a recomputation would
// not reproduce bit for bit), and the drop counter. In-flight propagation
// rides separately as KindHopFlight events.
func (f *Fabric) SnapshotLinks(w *snap.Writer) {
	w.Len(len(f.linkReg))
	for _, l := range f.linkReg {
		w.Bool(l.busy)
		if l.busy {
			writeTransit(w, l.cur)
		}
		w.Len(l.QueueLen())
		for _, tr := range l.queue[l.head:] {
			writeTransit(w, tr)
		}
		w.F64(l.bits)
		w.U64(l.Dropped)
	}
}

// RestoreLinks overwrites every registered link's mutable state from the
// open record. A busy link's serialisation-done event arrives separately
// through RestoreLinkDone during event replay.
func (f *Fabric) RestoreLinks(r *snap.Reader) error {
	if n := r.Len(); n != len(f.linkReg) {
		return fmt.Errorf("netsim: snapshot has %d links, fabric has %d", n, len(f.linkReg))
	}
	for _, l := range f.linkReg {
		l.busy = r.Bool()
		l.cur = transit{}
		if l.busy {
			l.cur = readTransit(r)
		}
		n := r.Len()
		l.queue = make([]transit, n)
		l.head = 0
		for i := range l.queue {
			l.queue[i] = readTransit(r)
		}
		l.bits = r.F64()
		l.Dropped = r.U64()
	}
	return r.Err()
}

// RestoreLinkDone re-schedules a serialized serialisation-completion event
// for the link in registry slot arg.
func (f *Fabric) RestoreLinkDone(arg uint32, at, prio des.Time) error {
	if int(arg) >= len(f.linkReg) {
		return fmt.Errorf("netsim: snapshot event names unknown link slot %d", arg)
	}
	l := f.linkReg[arg]
	l.eng.SchedulePrioKind(at, prio, l.kind, l.arg, l.done)
	return nil
}

// PendingHop reads the in-flight hop a pending KindHopFlight event (by its
// arg) refers to, for serialization.
func (f *Fabric) PendingHop(arg uint32) (via, dst int, p traffic.Packet) {
	tr := f.hops.nodes[arg].tr
	return int(tr.via), tr.dst, tr.p
}

// RestoreHop re-schedules a serialized in-flight hop under its original
// (at, prio) stamps.
func (f *Fabric) RestoreHop(at, prio des.Time, via, dst int, p traffic.Packet) {
	f.hops.restore(at, prio, transit{p: p, dst: dst, via: topo.NodeID(via)})
}
