package netsim

// Sharding support: partitioning the host population for conservative-
// parallel execution and extracting the model's lookahead — the minimum
// simulated latency any cross-shard packet can have, which bounds how far
// shards may run ahead of each other.
//
// Hosts are partitioned at router granularity: a router's whole local
// domain shares a shard. Same-router hosts exchange packets in as little
// as two access delays (~0.2 ms), while inter-domain paths also pay at
// least one backbone hop; keeping domains intact therefore multiplies the
// conservative lookahead — and with it the epoch width — by the backbone
// delay, and it keeps DSCT's domain-local traffic (the bulk of a tree's
// edges) off the cross-shard path entirely.

import (
	"sort"

	"repro/internal/des"
	"repro/internal/topo"
)

// PartitionHosts assigns whole router domains to at most n shards,
// balancing attached-host counts greedily (largest domain into the least-
// loaded shard, ties to the lowest index — a deterministic function of the
// network alone). It returns owner[host] = shard; the number of shards
// actually used is max(owner)+1, which is below n when the network has
// fewer populated domains than requested shards. n <= 1 yields the
// all-zero single-shard assignment.
func PartitionHosts(net *topo.Network, n int) []int {
	owner := make([]int, len(net.Hosts))
	if n <= 1 {
		return owner
	}
	type domain struct{ router, hosts int }
	var domains []domain
	for r := 0; r < net.Backbone.NumNodes(); r++ {
		if c := len(net.HostsAtRouter(topo.NodeID(r))); c > 0 {
			domains = append(domains, domain{router: r, hosts: c})
		}
	}
	if n > len(domains) {
		n = len(domains)
	}
	if n <= 1 {
		return owner
	}
	sort.Slice(domains, func(i, j int) bool {
		if domains[i].hosts != domains[j].hosts {
			return domains[i].hosts > domains[j].hosts
		}
		return domains[i].router < domains[j].router
	})
	load := make([]int, n)
	shardOf := make([]int, net.Backbone.NumNodes())
	for _, d := range domains {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shardOf[d.router] = best
		load[best] += d.hosts
	}
	for h := range net.Hosts {
		owner[h] = shardOf[net.Hosts[h].Router]
	}
	return owner
}

// NumShards returns the shard count an owner assignment actually uses.
func NumShards(owner []int) int {
	max := 0
	for _, s := range owner {
		if s > max {
			max = s
		}
	}
	return max + 1
}

// Lookahead returns the conservative cross-shard lookahead under the given
// owner assignment: the exact minimum host-to-host propagation latency
// (access + backbone shortest path + access, the PipeTransit delivery
// delay) over all pairs of hosts in different shards. With router-granular
// partitioning cross-shard pairs always sit on different routers, so the
// minimum is found over populated router pairs using each router's
// smallest access delay — O(routers²), not O(hosts²). It returns ok=false
// when no cross-shard pair exists (a single populated shard), in which
// case the caller may treat the lookahead as unbounded.
// LookaheadMatrix returns the per-(src, dst) shard-pair conservative
// lookahead under the given owner assignment: la[s][t] is the exact
// minimum host-to-host propagation latency from any host in shard s to
// any host in shard t (access + backbone shortest path + access, the
// PipeTransit delivery delay). Entries with no cross-shard path — and the
// diagonal — hold an effectively infinite sentinel (1<<62-1), which the
// coordinator's saturating arithmetic treats as "never constrains".
// Distant shard pairs get entries far above the global minimum, which is
// exactly the slack per-pair epoch bounds exploit. Computed over populated
// router pairs using each router's per-shard minimum access delay, so it
// is O(routers²) for router-granular partitions (every router hosts one
// shard), not O(hosts²). ok=false when no finite cross-shard entry exists
// (a single populated shard). min over the matrix equals Lookahead.
func LookaheadMatrix(net *topo.Network, owner []int) (la [][]des.Duration, ok bool) {
	const none = des.Time(1)<<62 - 1
	nsh := NumShards(owner)
	la = make([][]des.Duration, nsh)
	for i := range la {
		la[i] = make([]des.Duration, nsh)
		for j := range la[i] {
			la[i][j] = none
		}
	}
	nr := net.Backbone.NumNodes()
	shards := make([][]int, nr)       // shard ids present at each router
	acc := make([][]des.Duration, nr) // parallel per-shard min access delay
	for h := range net.Hosts {
		r := net.Hosts[h].Router
		s := owner[h]
		d := net.Hosts[h].AccessDelay
		found := false
		for i, sh := range shards[r] {
			if sh == s {
				if d < acc[r][i] {
					acc[r][i] = d
				}
				found = true
				break
			}
		}
		if !found {
			shards[r] = append(shards[r], s)
			acc[r] = append(acc[r], d)
		}
	}
	upd := func(s, t int, d des.Duration) {
		if d < la[s][t] {
			la[s][t] = d
		}
	}
	for a := 0; a < nr; a++ {
		if len(shards[a]) == 0 {
			continue
		}
		// A router whose domain spans shards (not produced by
		// PartitionHosts, but legal input): two access delays, no backbone
		// hop, in both directions.
		for i, s := range shards[a] {
			for j, t := range shards[a] {
				if i != j {
					upd(s, t, acc[a][i]+acc[a][j])
				}
			}
		}
		for b := 0; b < nr; b++ {
			if b == a || len(shards[b]) == 0 {
				continue
			}
			core := net.Routes.Delay[a][b]
			if core < 0 {
				continue // unreachable pair cannot exchange packets
			}
			for i, s := range shards[a] {
				for j, t := range shards[b] {
					if s != t {
						upd(s, t, acc[a][i]+core+acc[b][j])
					}
				}
			}
		}
	}
	for i := range la {
		for j := range la[i] {
			if i != j && la[i][j] != none {
				ok = true
			}
		}
	}
	return la, ok
}

func Lookahead(net *topo.Network, owner []int) (la des.Duration, ok bool) {
	const none = des.Time(1)<<62 - 1
	nr := net.Backbone.NumNodes()
	minAccess := make([]des.Duration, nr)
	secondAccess := make([]des.Duration, nr)
	shardOf := make([]int, nr)
	mixed := make([]bool, nr)
	for r := range minAccess {
		minAccess[r] = none
		secondAccess[r] = none
		shardOf[r] = -1
	}
	for h := range net.Hosts {
		r := net.Hosts[h].Router
		d := net.Hosts[h].AccessDelay
		if d < minAccess[r] {
			minAccess[r], secondAccess[r] = d, minAccess[r]
		} else if d < secondAccess[r] {
			secondAccess[r] = d
		}
		if shardOf[r] < 0 {
			shardOf[r] = owner[h]
		} else if shardOf[r] != owner[h] {
			mixed[r] = true
		}
	}
	best := none
	// A router whose domain spans shards (not produced by PartitionHosts,
	// but legal input) bounds the lookahead by its two smallest access
	// delays — a conservative floor for any same-router cross-shard pair.
	for r := 0; r < nr; r++ {
		if mixed[r] && secondAccess[r] != none {
			if d := minAccess[r] + secondAccess[r]; d < best {
				best = d
			}
		}
	}
	for a := 0; a < nr; a++ {
		if minAccess[a] == none {
			continue
		}
		for b := a + 1; b < nr; b++ {
			if minAccess[b] == none {
				continue
			}
			if shardOf[a] == shardOf[b] && !mixed[a] && !mixed[b] {
				continue
			}
			core := net.Routes.Delay[a][b]
			if core < 0 {
				continue // unreachable pair cannot exchange packets
			}
			if d := minAccess[a] + core + minAccess[b]; d < best {
				best = d
			}
		}
	}
	if best == none {
		return 0, false
	}
	return best, true
}
