package netsim

import (
	"testing"

	"repro/internal/des"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func shardTestNetwork(t *testing.T, hosts int) *topo.Network {
	t.Helper()
	return topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: hosts, Seed: 7})
}

func TestPartitionHostsRouterGranular(t *testing.T) {
	net := shardTestNetwork(t, 300)
	for _, n := range []int{1, 2, 4, 8} {
		owner := PartitionHosts(net, n)
		if len(owner) != 300 {
			t.Fatalf("n=%d: owner length %d", n, len(owner))
		}
		// Router granularity: hosts on one router share a shard.
		byRouter := map[topo.NodeID]int{}
		for h, s := range owner {
			r := net.Hosts[h].Router
			if prev, ok := byRouter[r]; ok && prev != s {
				t.Fatalf("n=%d: router %d split across shards %d and %d", n, r, prev, s)
			}
			byRouter[r] = s
			if s < 0 || s >= n {
				t.Fatalf("n=%d: host %d assigned to shard %d", n, h, s)
			}
		}
		used := NumShards(owner)
		if n <= 19 && used != n {
			t.Fatalf("n=%d: only %d shards used", n, used)
		}
		// Balance: no shard more than twice the ideal share (greedy on the
		// 19-domain backbone should stay well within this).
		if n > 1 {
			counts := make([]int, used)
			for _, s := range owner {
				counts[s]++
			}
			for s, c := range counts {
				if c == 0 {
					t.Fatalf("n=%d: shard %d empty", n, s)
				}
				if c > 2*300/n {
					t.Fatalf("n=%d: shard %d holds %d of 300 hosts", n, s, c)
				}
			}
		}
	}
}

func TestPartitionHostsDeterministic(t *testing.T) {
	net := shardTestNetwork(t, 200)
	a := PartitionHosts(net, 4)
	b := PartitionHosts(net, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("partition not deterministic at host %d", i)
		}
	}
}

func TestLookaheadIsExactCrossShardMinimum(t *testing.T) {
	net := shardTestNetwork(t, 150)
	owner := PartitionHosts(net, 4)
	la, ok := Lookahead(net, owner)
	if !ok {
		t.Fatal("expected a cross-shard pair")
	}
	// Brute force over all host pairs.
	want := des.Time(1)<<62 - 1
	for a := range net.Hosts {
		for b := range net.Hosts {
			if a == b || owner[a] == owner[b] {
				continue
			}
			if d := net.Latency(a, b); d < want {
				want = d
			}
		}
	}
	if la != want {
		t.Fatalf("lookahead = %v, brute force min = %v", la, want)
	}
	if la <= 0 {
		t.Fatalf("lookahead must be positive, got %v", la)
	}
}

func TestLookaheadSingleShard(t *testing.T) {
	net := shardTestNetwork(t, 50)
	if _, ok := Lookahead(net, make([]int, 50)); ok {
		t.Fatal("single-shard assignment reported a cross-shard lookahead")
	}
}

// TestLookaheadMixedRouterConservative pins the arbitrary-owner fallback:
// splitting one router's domain across shards must bound the lookahead by
// same-router access delays.
func TestLookaheadMixedRouterConservative(t *testing.T) {
	net := shardTestNetwork(t, 80)
	owner := make([]int, 80)
	for h := range owner {
		owner[h] = h % 2 // ignores routers entirely
	}
	la, ok := Lookahead(net, owner)
	if !ok {
		t.Fatal("expected cross-shard pairs")
	}
	// Conservative: la must not exceed any true cross-shard latency.
	for a := range net.Hosts {
		for b := range net.Hosts {
			if a == b || owner[a] == owner[b] {
				continue
			}
			if d := net.Latency(a, b); d < la {
				t.Fatalf("lookahead %v exceeds cross-shard latency %v (hosts %d,%d)", la, d, a, b)
			}
		}
	}
}

func TestFabricRemoteHook(t *testing.T) {
	net := shardTestNetwork(t, 20)
	owner := PartitionHosts(net, 2)
	eng := des.New()
	var posted []int
	var postedAt []des.Time
	fab := NewFabric(eng, net, FabricConfig{
		Mode:  PipeTransit,
		Local: func(h int) bool { return owner[h] == 0 },
		Remote: func(dst int, at des.Time, p traffic.Packet) {
			posted = append(posted, dst)
			postedAt = append(postedAt, at)
		},
	})
	gotLocal := 0
	src, localDst, remoteDst := -1, -1, -1
	for h := range owner {
		switch {
		case owner[h] == 0 && src < 0:
			src = h
		case owner[h] == 0 && localDst < 0:
			localDst = h
		case owner[h] == 1 && remoteDst < 0:
			remoteDst = h
		}
	}
	if src < 0 || localDst < 0 || remoteDst < 0 {
		t.Skip("partition degenerate for this seed")
	}
	fab.SetReceiver(localDst, func(traffic.Packet) { gotLocal++ })
	fab.Send(src, localDst, traffic.Packet{Size: 1000})
	fab.Send(src, remoteDst, traffic.Packet{Size: 1000})
	eng.Run()
	if gotLocal != 1 {
		t.Fatalf("local delivery count = %d, want 1", gotLocal)
	}
	if len(posted) != 1 || posted[0] != remoteDst {
		t.Fatalf("remote hook saw %v, want [%d]", posted, remoteDst)
	}
	if want := net.Latency(src, remoteDst); postedAt[0] != want {
		t.Fatalf("remote arrival %v, want latency %v", postedAt[0], want)
	}
}

func TestShardedFabricRejectsQueuedTransit(t *testing.T) {
	net := shardTestNetwork(t, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("QueuedTransit sharded fabric did not panic")
		}
	}()
	NewFabric(des.New(), net, FabricConfig{
		Mode:   QueuedTransit,
		Local:  func(int) bool { return true },
		Remote: func(int, des.Time, traffic.Packet) {},
	})
}

// TestLookaheadMatrixIsExactPairwiseMinimum checks every matrix entry
// against the O(hosts²) brute force: la[i][j] must equal the minimum
// latency over host pairs (a in shard i, b in shard j).
func TestLookaheadMatrixIsExactPairwiseMinimum(t *testing.T) {
	net := shardTestNetwork(t, 150)
	owner := PartitionHosts(net, 4)
	nsh := NumShards(owner)
	la, ok := LookaheadMatrix(net, owner)
	if !ok {
		t.Fatal("expected a cross-shard pair")
	}
	if len(la) != nsh {
		t.Fatalf("matrix has %d rows, want %d", len(la), nsh)
	}
	none := des.Time(1)<<62 - 1
	for i := 0; i < nsh; i++ {
		for j := 0; j < nsh; j++ {
			want := none
			if i != j {
				for a := range net.Hosts {
					if owner[a] != i {
						continue
					}
					for b := range net.Hosts {
						if owner[b] != j {
							continue
						}
						if d := net.Latency(a, b); d < want {
							want = d
						}
					}
				}
			}
			if la[i][j] != want {
				t.Fatalf("la[%d][%d] = %v, brute force = %v", i, j, la[i][j], want)
			}
			if i != j && la[i][j] <= 0 {
				t.Fatalf("la[%d][%d] = %v, must be positive", i, j, la[i][j])
			}
		}
	}
}

// TestLookaheadMatrixMinEqualsScalar pins the compatibility contract: the
// minimum off-diagonal matrix entry is exactly the scalar Lookahead, so a
// coordinator driven by the matrix is never less safe than the global-min
// coordinator it replaces.
func TestLookaheadMatrixMinEqualsScalar(t *testing.T) {
	net := shardTestNetwork(t, 200)
	for _, n := range []int{2, 3, 4, 8} {
		owner := PartitionHosts(net, n)
		scalar, okS := Lookahead(net, owner)
		la, okM := LookaheadMatrix(net, owner)
		if okS != okM {
			t.Fatalf("n=%d: scalar ok=%v, matrix ok=%v", n, okS, okM)
		}
		if !okS {
			continue
		}
		min := des.Time(1)<<62 - 1
		for i := range la {
			for j := range la[i] {
				if i != j && la[i][j] < min {
					min = la[i][j]
				}
			}
		}
		if min != scalar {
			t.Fatalf("n=%d: min matrix entry %v, scalar lookahead %v", n, min, scalar)
		}
	}
}

// TestLookaheadMatrixMixedRouters covers owner assignments that split a
// router's hosts across shards: entries must still match the brute force
// (same-router cross-shard pairs bound by access delays).
func TestLookaheadMatrixMixedRouters(t *testing.T) {
	net := shardTestNetwork(t, 80)
	owner := make([]int, 80)
	for h := range owner {
		owner[h] = h % 2
	}
	la, ok := LookaheadMatrix(net, owner)
	if !ok {
		t.Fatal("expected cross-shard pairs")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if i == j {
				continue
			}
			want := des.Time(1)<<62 - 1
			for a := range net.Hosts {
				for b := range net.Hosts {
					if a == b || owner[a] != i || owner[b] != j {
						continue
					}
					if d := net.Latency(a, b); d < want {
						want = d
					}
				}
			}
			if la[i][j] != want {
				t.Fatalf("la[%d][%d] = %v, brute force = %v", i, j, la[i][j], want)
			}
		}
	}
}

// TestLookaheadMatrixSingleShard mirrors the scalar contract.
func TestLookaheadMatrixSingleShard(t *testing.T) {
	net := shardTestNetwork(t, 50)
	if _, ok := LookaheadMatrix(net, make([]int, 50)); ok {
		t.Fatal("single-shard assignment reported cross-shard lookahead")
	}
}
