package netsim

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func TestPipeDelaysExactly(t *testing.T) {
	eng := des.New()
	var at des.Time = -1
	p := NewPipe(eng, 5*des.Millisecond, func(traffic.Packet) { at = eng.Now() })
	eng.Schedule(des.Millisecond, func() { p.Send(traffic.Packet{ID: 1, Size: 100}) })
	eng.Run()
	if at != 6*des.Millisecond {
		t.Fatalf("delivered at %v", at)
	}
}

func TestPipeNoSerialisation(t *testing.T) {
	// Two packets sent together arrive together: pipes have no capacity.
	eng := des.New()
	var times []des.Time
	p := NewPipe(eng, des.Millisecond, func(traffic.Packet) { times = append(times, eng.Now()) })
	eng.Schedule(0, func() {
		p.Send(traffic.Packet{ID: 1, Size: 1e9})
		p.Send(traffic.Packet{ID: 2, Size: 1e9})
	})
	eng.Run()
	if len(times) != 2 || times[0] != times[1] {
		t.Fatalf("times = %v", times)
	}
}

func TestPipeValidation(t *testing.T) {
	eng := des.New()
	for i, fn := range []func(){
		func() { NewPipe(eng, -1, func(traffic.Packet) {}) },
		func() { NewPipe(eng, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLinkSerialisesThenPropagates(t *testing.T) {
	eng := des.New()
	var at des.Time = -1
	// 1000 bits at 1e6 bps = 1ms serialisation + 2ms propagation.
	l := NewLink(eng, 1e6, 2*des.Millisecond, func(tr transit) { at = eng.Now() })
	eng.Schedule(0, func() { l.Send(transit{p: traffic.Packet{ID: 1, Size: 1000}}) })
	eng.Run()
	if at != 3*des.Millisecond {
		t.Fatalf("delivered at %v, want 3ms", at)
	}
}

func TestLinkPipelinesPropagation(t *testing.T) {
	// Second packet starts serialising while the first propagates:
	// arrivals at 1ms+5ms and 2ms+5ms.
	eng := des.New()
	var times []des.Time
	l := NewLink(eng, 1e6, 5*des.Millisecond, func(tr transit) { times = append(times, eng.Now()) })
	eng.Schedule(0, func() {
		l.Send(transit{p: traffic.Packet{ID: 1, Size: 1000}})
		l.Send(transit{p: traffic.Packet{ID: 2, Size: 1000}})
	})
	eng.Run()
	if len(times) != 2 || times[0] != 6*des.Millisecond || times[1] != 7*des.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestLinkFIFOUnderLoad(t *testing.T) {
	eng := des.New()
	var ids []uint64
	l := NewLink(eng, 1e6, des.Millisecond, func(tr transit) { ids = append(ids, tr.p.ID) })
	eng.Schedule(0, func() {
		for i := 0; i < 200; i++ {
			l.Send(transit{p: traffic.Packet{ID: uint64(i), Size: 1000}})
		}
	})
	eng.Run()
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("order violated at %d", i)
		}
	}
	if l.Backlog() != 0 || l.QueueLen() != 0 {
		t.Fatal("link not drained")
	}
}

func TestLinkDropsWhenCapped(t *testing.T) {
	eng := des.New()
	delivered := 0
	l := NewLink(eng, 1e3, des.Millisecond, func(transit) { delivered++ })
	l.MaxQ = 5
	eng.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			l.Send(transit{p: traffic.Packet{ID: uint64(i), Size: 1000}})
		}
	})
	eng.Run()
	// 1 in service + 5 queued admitted at t=0; the rest dropped.
	if delivered != 6 {
		t.Fatalf("delivered %d, want 6", delivered)
	}
	if l.Dropped != 94 {
		t.Fatalf("dropped %d", l.Dropped)
	}
}

func TestLinkValidation(t *testing.T) {
	eng := des.New()
	out := func(transit) {}
	for i, fn := range []func(){
		func() { NewLink(eng, 0, 1, out) },
		func() { NewLink(eng, 1, -1, out) },
		func() { NewLink(eng, 1, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func testNetwork(t *testing.T) *topo.Network {
	t.Helper()
	return topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: 60, Seed: 4})
}

func TestFabricPipeModeMatchesLatency(t *testing.T) {
	net := testNetwork(t)
	eng := des.New()
	f := NewFabric(eng, net, FabricConfig{Mode: PipeTransit})
	var at des.Time = -1
	f.SetReceiver(7, func(p traffic.Packet) { at = eng.Now() })
	eng.Schedule(0, func() { f.Send(3, 7, traffic.Packet{ID: 1, Size: 1000}) })
	eng.Run()
	if at != net.Latency(3, 7) {
		t.Fatalf("delivered at %v, want %v", at, net.Latency(3, 7))
	}
	if f.Delivered != 1 {
		t.Fatalf("delivered counter = %d", f.Delivered)
	}
}

func TestFabricSelfSendImmediate(t *testing.T) {
	net := testNetwork(t)
	eng := des.New()
	f := NewFabric(eng, net, FabricConfig{})
	got := false
	f.SetReceiver(5, func(traffic.Packet) { got = true })
	eng.Schedule(0, func() { f.Send(5, 5, traffic.Packet{ID: 1}) })
	eng.Run()
	if !got {
		t.Fatal("self-send not delivered")
	}
}

func TestFabricQueuedModeDelivers(t *testing.T) {
	net := testNetwork(t)
	eng := des.New()
	f := NewFabric(eng, net, FabricConfig{Mode: QueuedTransit})
	var at des.Time = -1
	f.SetReceiver(11, func(p traffic.Packet) { at = eng.Now() })
	eng.Schedule(0, func() { f.Send(2, 11, traffic.Packet{ID: 1, Size: 1000}) })
	eng.Run()
	if at < 0 {
		t.Fatal("queued transit never delivered")
	}
	// Must be at least the pipe latency (propagation) and not wildly more
	// on an idle network (serialisation at 1 Gb/s core + 100 Mb/s access
	// adds microseconds).
	base := net.Latency(2, 11)
	if at < base {
		t.Fatalf("queued %v beat pure propagation %v", at, base)
	}
	if at > base+des.Millisecond {
		t.Fatalf("idle queued transit %v far above propagation %v", at, base)
	}
}

func TestFabricQueuedModeCongestionDelays(t *testing.T) {
	// Saturate one access downlink: later packets must queue.
	net := testNetwork(t)
	eng := des.New()
	f := NewFabric(eng, net, FabricConfig{Mode: QueuedTransit, AccessCapacity: 1e6})
	var times []des.Time
	f.SetReceiver(9, func(p traffic.Packet) { times = append(times, eng.Now()) })
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			f.Send(1, 9, traffic.Packet{ID: uint64(i), Size: 10_000})
		}
	})
	eng.Run()
	if len(times) != 50 {
		t.Fatalf("delivered %d", len(times))
	}
	// Serialisation at 1e6 bps of 10_000 bits = 10ms each: the last packet
	// must arrive >= 490ms after the first.
	span := times[len(times)-1] - times[0]
	if span < 400*des.Millisecond {
		t.Fatalf("no queueing visible: span %v", span)
	}
}

func TestFabricQueuedPreservesOrderPerPath(t *testing.T) {
	net := testNetwork(t)
	eng := des.New()
	f := NewFabric(eng, net, FabricConfig{Mode: QueuedTransit})
	var ids []uint64
	f.SetReceiver(20, func(p traffic.Packet) { ids = append(ids, p.ID) })
	eng.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			f.Send(4, 20, traffic.Packet{ID: uint64(i), Size: 1000})
		}
	})
	eng.Run()
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("reorder at %d: %v", i, ids)
		}
	}
}

func TestFabricBothModesAgreeOnIdleNetwork(t *testing.T) {
	// With no congestion, queued-mode delivery times exceed pipe mode by
	// only serialisation epsilon.
	net := testNetwork(t)
	for src := 0; src < 10; src++ {
		dst := 59 - src
		var pipeAt, queuedAt des.Time
		{
			eng := des.New()
			f := NewFabric(eng, net, FabricConfig{Mode: PipeTransit})
			f.SetReceiver(dst, func(traffic.Packet) { pipeAt = eng.Now() })
			eng.Schedule(0, func() { f.Send(src, dst, traffic.Packet{Size: 1000}) })
			eng.Run()
		}
		{
			eng := des.New()
			f := NewFabric(eng, net, FabricConfig{Mode: QueuedTransit})
			f.SetReceiver(dst, func(traffic.Packet) { queuedAt = eng.Now() })
			eng.Schedule(0, func() { f.Send(src, dst, traffic.Packet{Size: 1000}) })
			eng.Run()
		}
		diff := math.Abs(float64(queuedAt - pipeAt))
		if diff > float64(des.Millisecond) {
			t.Fatalf("modes diverge by %v ns for %d->%d", diff, src, dst)
		}
	}
}

func BenchmarkFabricPipeSend(b *testing.B) {
	net := topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: 100, Seed: 1})
	eng := des.New()
	f := NewFabric(eng, net, FabricConfig{})
	f.SetReceiver(50, func(traffic.Packet) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now(), func() { f.Send(1, 50, traffic.Packet{Size: 1000}) })
		eng.Step()
	}
}

func BenchmarkFabricQueuedSend(b *testing.B) {
	net := topo.NewNetwork(topo.Backbone19(), topo.NetworkConfig{NumHosts: 100, Seed: 1})
	eng := des.New()
	f := NewFabric(eng, net, FabricConfig{Mode: QueuedTransit})
	f.SetReceiver(50, func(traffic.Packet) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now(), func() { f.Send(1, 50, traffic.Packet{Size: 1000}) })
		for eng.Step() {
		}
	}
}

// TestFabricDropHook: the partition hook runs once per send, after the
// self-send shortcut; a dropped packet never reaches the receiver and is
// not counted as delivered — the hook owns the accounting.
func TestFabricDropHook(t *testing.T) {
	net := testNetwork(t)
	eng := des.New()
	dropped := 0
	cut := true
	f := NewFabric(eng, net, FabricConfig{Mode: PipeTransit,
		Drop: func(src, dst int) bool {
			if cut && src == 3 {
				dropped++
				return true
			}
			return false
		}})
	got := 0
	f.SetReceiver(7, func(traffic.Packet) { got++ })
	f.SetReceiver(3, func(traffic.Packet) { got++ })
	eng.Schedule(0, func() { f.Send(3, 7, traffic.Packet{ID: 1, Size: 100}) })
	eng.Schedule(0, func() { f.Send(3, 3, traffic.Packet{ID: 2, Size: 100}) }) // self-send bypasses the hook
	eng.Schedule(des.Millisecond, func() { cut = false })
	eng.Schedule(2*des.Millisecond, func() { f.Send(3, 7, traffic.Packet{ID: 3, Size: 100}) })
	eng.Run()
	if dropped != 1 {
		t.Fatalf("hook dropped %d packets, want 1", dropped)
	}
	if got != 2 {
		t.Fatalf("delivered %d packets, want 2 (self-send + post-heal)", got)
	}
	if f.Delivered != 2 {
		t.Fatalf("delivered counter = %d, want 2", f.Delivered)
	}
}
