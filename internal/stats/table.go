package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned columns.
// The experiment harness uses it to print the same row/series layout the
// paper's tables and figures report.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Cells beyond the header width are kept; short rows
// are padded when rendering.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with the corresponding verb.
// verbs and values must have equal length.
func (t *Table) AddRowf(verbs []string, values ...any) {
	if len(verbs) != len(values) {
		panic("stats: AddRowf verb/value length mismatch")
	}
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf(verbs[i], v)
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < cols-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence — one curve of a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the y value for the given x, or NaN if x is absent.
func (s *Series) YAt(x float64) float64 {
	for i, v := range s.X {
		if v == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Crossover returns the first x at which series a stops exceeding series b
// (i.e. a.Y <= b.Y), scanning the shared x grid in order. This locates the
// rate threshold ρ* in the experiment curves: below the crossover the
// (σ,ρ,λ) curve (a) lies above the (σ,ρ) curve (b), above it the order
// flips. The second return is false when the curves never cross.
func Crossover(a, b *Series) (float64, bool) {
	n := len(a.X)
	if len(b.X) < n {
		n = len(b.X)
	}
	for i := 0; i < n; i++ {
		if a.X[i] != b.X[i] {
			panic("stats: Crossover requires a shared x grid")
		}
		if a.Y[i] <= b.Y[i] {
			return a.X[i], true
		}
	}
	return 0, false
}

// MaxRatio returns max over the shared grid of a.Y/b.Y restricted to x >=
// from, together with the x where it occurs. It quantifies the paper's
// "maximum worst-case delay improvement" of scheme b over scheme a when
// a is the baseline (ratio = baseline/new).
func MaxRatio(a, b *Series, from float64) (ratio, atX float64) {
	n := len(a.X)
	if len(b.X) < n {
		n = len(b.X)
	}
	for i := 0; i < n; i++ {
		if a.X[i] < from || b.Y[i] <= 0 {
			continue
		}
		r := a.Y[i] / b.Y[i]
		if r > ratio {
			ratio, atX = r, a.X[i]
		}
	}
	return ratio, atX
}
