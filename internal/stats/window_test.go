package stats

import "testing"

func TestWindowMaxBucketsAndSeries(t *testing.T) {
	w := NewWindowMax(1.0)
	w.Observe(0.2, 3)
	w.Observe(0.9, 1)
	w.Observe(2.5, 7)
	w.Observe(2.6, 4)
	got := w.Series()
	want := []float64{3, 0, 7}
	if len(got) != len(want) {
		t.Fatalf("series length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if w.NumWindows() != 3 || w.Width() != 1.0 {
		t.Fatalf("NumWindows=%d Width=%v", w.NumWindows(), w.Width())
	}
}

func TestWindowMaxNegativeTimeAndZeroSamples(t *testing.T) {
	w := NewWindowMax(0.5)
	w.Observe(-1, 2)
	w.Observe(0.1, 0) // a genuine 0 sample must register
	if s := w.Series(); s[0] != 2 {
		t.Fatalf("bucket 0 = %v, want 2", s[0])
	}
	w2 := NewWindowMax(0.5)
	w2.Observe(0.1, 0)
	if s := w2.Series(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("zero-sample bucket = %v", s)
	}
}

func TestWindowMaxPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for width 0")
		}
	}()
	NewWindowMax(0)
}

func TestWindowMaxMerge(t *testing.T) {
	a := NewWindowMax(1)
	b := NewWindowMax(1)
	a.Observe(0.5, 1.0)
	a.Observe(1.5, 4.0)
	b.Observe(1.2, 2.0)
	b.Observe(3.7, 9.0) // longer series
	a.Merge(b)
	want := []float64{1, 4, 0, 9}
	got := a.Series()
	if len(got) != len(want) {
		t.Fatalf("series %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	a.Merge(nil) // no-op
	if len(a.Series()) != 4 {
		t.Fatal("nil merge changed the series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch did not panic")
		}
	}()
	a.Merge(NewWindowMax(2))
}
