package stats

import (
	"math"
	"testing"

	"repro/internal/des"
)

func TestWindowRateSteadyStream(t *testing.T) {
	w := NewWindowRate(des.Second)
	// 1000 bits every 10ms = 100,000 bits/s
	for i := 1; i <= 200; i++ {
		w.Observe(des.Time(i)*10*des.Millisecond, 1000)
	}
	got := w.Rate(200 * 10 * des.Millisecond)
	if math.Abs(got-100000) > 2000 {
		t.Fatalf("rate = %v, want ~100000", got)
	}
}

func TestWindowRateExpiry(t *testing.T) {
	w := NewWindowRate(des.Second)
	w.Observe(0, 1e6)
	if r := w.Rate(des.Millisecond); r <= 0 {
		t.Fatalf("rate right after burst = %v", r)
	}
	if r := w.Rate(2 * des.Second); r != 0 {
		t.Fatalf("rate after window expiry = %v, want 0", r)
	}
}

func TestWindowRateEmptyIsZero(t *testing.T) {
	w := NewWindowRate(des.Second)
	if w.Rate(des.Second) != 0 {
		t.Fatal("empty window should report 0")
	}
}

func TestWindowRateGrowth(t *testing.T) {
	// More observations in one window than the initial ring capacity.
	w := NewWindowRate(des.Second)
	for i := 0; i < 1000; i++ {
		w.Observe(des.Time(i)*des.Microsecond, 1)
	}
	got := w.Rate(1000 * des.Microsecond)
	if math.Abs(got-1000) > 5 {
		t.Fatalf("rate = %v, want ~1000 bits/s (1000 bits in 1s window)", got)
	}
}

func TestWindowRateStepChange(t *testing.T) {
	w := NewWindowRate(100 * des.Millisecond)
	// Phase 1: 10 bits/ms for 200ms, phase 2: 50 bits/ms for 200ms.
	var now des.Time
	for i := 0; i < 200; i++ {
		now = des.Time(i) * des.Millisecond
		w.Observe(now, 10)
	}
	for i := 200; i < 400; i++ {
		now = des.Time(i) * des.Millisecond
		w.Observe(now, 50)
	}
	got := w.Rate(now)
	want := 50.0 * 1000 // 50 bits per ms = 50000 bits/s
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("rate after step = %v, want ~%v", got, want)
	}
}

func TestWindowRatePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindowRate(0)
}

func TestEWMARateConverges(t *testing.T) {
	e := NewEWMARate(0.1)
	// 500 bits every 5ms = 100,000 bits/s
	for i := 0; i <= 400; i++ {
		e.Observe(des.Time(i)*5*des.Millisecond, 500)
	}
	got := e.Rate(0)
	if math.Abs(got-100000)/100000 > 0.02 {
		t.Fatalf("EWMA rate = %v, want ~100000", got)
	}
}

func TestEWMARateFirstObservationOnlyPrimes(t *testing.T) {
	e := NewEWMARate(0.5)
	e.Observe(des.Second, 1000)
	if e.Rate(0) != 0 {
		t.Fatal("rate after single observation should be 0 (no interval yet)")
	}
}

func TestEWMARatePanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v did not panic", a)
				}
			}()
			NewEWMARate(a)
		}()
	}
}

func TestCounterThroughput(t *testing.T) {
	var c Counter
	c.Add(0, 1000)
	c.Add(des.Second, 1000)
	c.Add(2*des.Second, 1000)
	if c.N != 3 || c.Total != 3000 {
		t.Fatalf("n=%d total=%v", c.N, c.Total)
	}
	if got := c.Throughput(); math.Abs(got-1500) > 1e-9 {
		t.Fatalf("throughput = %v, want 1500 (3000 bits over 2s)", got)
	}
}

func TestCounterSinglePointThroughputZero(t *testing.T) {
	var c Counter
	c.Add(des.Second, 500)
	if c.Throughput() != 0 {
		t.Fatal("single observation should yield zero throughput")
	}
}

func BenchmarkWindowRateObserve(b *testing.B) {
	w := NewWindowRate(des.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(des.Time(i)*des.Microsecond, 1000)
	}
}

func BenchmarkEWMAObserve(b *testing.B) {
	e := NewEWMARate(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(des.Time(i)*des.Microsecond, 1000)
	}
}
