package stats

import "math"

// WindowMax accumulates a max-per-window time series: samples fold into
// fixed-width time buckets, and the series of per-bucket maxima shows how
// an extreme metric (worst-case delay) evolves over a run — the transient
// view needed around membership-churn events, where a single end-of-run
// maximum would hide when the excursion happened.
type WindowMax struct {
	width   float64
	buckets []float64
	filled  []bool
}

// NewWindowMax returns an accumulator with the given bucket width in the
// sample's time unit (seconds throughout this repository). It panics on a
// non-positive width.
func NewWindowMax(width float64) *WindowMax {
	if width <= 0 {
		panic("stats: window width must be positive")
	}
	return &WindowMax{width: width}
}

// Width returns the bucket width.
func (w *WindowMax) Width() float64 { return w.width }

// Observe folds sample x at time t into its bucket. Negative times fold
// into bucket 0.
func (w *WindowMax) Observe(t, x float64) {
	i := 0
	if t > 0 {
		i = int(t / w.width)
	}
	for len(w.buckets) <= i {
		w.buckets = append(w.buckets, 0)
		w.filled = append(w.filled, false)
	}
	if !w.filled[i] || x > w.buckets[i] {
		w.buckets[i] = x
		w.filled[i] = true
	}
}

// Merge folds another accumulator's buckets into w (per-bucket max), so
// per-shard series can be combined after a sharded run. The widths must
// match; merging is commutative, so the result is independent of shard
// order.
func (w *WindowMax) Merge(o *WindowMax) {
	if o == nil {
		return
	}
	if w.width != o.width {
		panic("stats: merging WindowMax accumulators with different widths")
	}
	for len(w.buckets) < len(o.buckets) {
		w.buckets = append(w.buckets, 0)
		w.filled = append(w.filled, false)
	}
	for i, filled := range o.filled {
		if filled && (!w.filled[i] || o.buckets[i] > w.buckets[i]) {
			w.buckets[i] = o.buckets[i]
			w.filled[i] = true
		}
	}
}

// Series returns a copy of the per-bucket maxima, index i covering times
// [i·width, (i+1)·width). Buckets with no samples hold 0.
func (w *WindowMax) Series() []float64 {
	return append([]float64(nil), w.buckets...)
}

// NumWindows returns how many buckets have been opened.
func (w *WindowMax) NumWindows() int { return len(w.buckets) }

// MaxIn returns the largest value of a WindowMax series over the time
// range [from, to), given the series' bucket width — the transient spike
// extractor: the harness reads the worst windowed delay in the seconds
// following a fault event from the run's full series. Buckets partially
// overlapping the range count. Returns 0 for an empty intersection or a
// non-positive width.
func MaxIn(series []float64, width, from, to float64) float64 {
	if width <= 0 || to <= from || len(series) == 0 {
		return 0
	}
	lo := 0
	if from > 0 {
		lo = int(from / width)
	}
	hi := len(series)
	if b := int(math.Ceil(to / width)); b < hi {
		hi = b
	}
	max := 0.0
	for i := lo; i < hi && i < len(series); i++ {
		if series[i] > max {
			max = series[i]
		}
	}
	return max
}
