package stats

import "repro/internal/des"

// RateEstimator is implemented by the estimators the adaptive controller
// can consult for the average input rate ρ̄ of a flow.
type RateEstimator interface {
	// Observe records that `bits` arrived at time t.
	Observe(t des.Time, bits float64)
	// Rate returns the estimated arrival rate in bits/second as of time t.
	Rate(t des.Time) float64
}

// WindowRate measures arrival rate over a sliding window: the total bits
// that arrived in the last Window nanoseconds divided by the window length.
// This is the default estimator: it is exactly the "average input rate over
// the recent past" the paper's algorithm consults.
type WindowRate struct {
	window des.Duration
	// ring buffer of (time, bits) arrivals inside the window
	times []des.Time
	bits  []float64
	head  int
	n     int
	sum   float64
}

// NewWindowRate returns an estimator with the given window. It panics if
// window <= 0.
func NewWindowRate(window des.Duration) *WindowRate {
	if window <= 0 {
		panic("stats: rate window must be positive")
	}
	const initial = 64
	return &WindowRate{
		window: window,
		times:  make([]des.Time, initial),
		bits:   make([]float64, initial),
	}
}

// Observe records an arrival of `bits` at time t. Observations must be
// delivered in non-decreasing time order (the DES guarantees this).
func (w *WindowRate) Observe(t des.Time, bits float64) {
	w.expire(t)
	if w.n == len(w.times) {
		w.grow()
	}
	idx := (w.head + w.n) % len(w.times)
	w.times[idx] = t
	w.bits[idx] = bits
	w.n++
	w.sum += bits
}

func (w *WindowRate) grow() {
	nt := make([]des.Time, 2*len(w.times))
	nb := make([]float64, 2*len(w.bits))
	for i := 0; i < w.n; i++ {
		idx := (w.head + i) % len(w.times)
		nt[i] = w.times[idx]
		nb[i] = w.bits[idx]
	}
	w.times, w.bits, w.head = nt, nb, 0
}

func (w *WindowRate) expire(t des.Time) {
	cutoff := t - w.window
	for w.n > 0 && w.times[w.head] <= cutoff {
		w.sum -= w.bits[w.head]
		w.head = (w.head + 1) % len(w.times)
		w.n--
	}
}

// Rate returns bits/second over the window ending at t.
func (w *WindowRate) Rate(t des.Time) float64 {
	w.expire(t)
	return w.sum / w.window.Seconds()
}

// EWMARate estimates rate with an exponentially weighted moving average of
// instantaneous inter-arrival rates. Cheaper than WindowRate (O(1) memory)
// but lags on abrupt load changes; offered as the ablation alternative.
type EWMARate struct {
	alpha float64
	last  des.Time
	rate  float64
	seen  bool
}

// NewEWMARate returns an estimator with smoothing factor alpha in (0, 1].
func NewEWMARate(alpha float64) *EWMARate {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMARate{alpha: alpha}
}

// Observe records an arrival of `bits` at time t.
func (e *EWMARate) Observe(t des.Time, bits float64) {
	if !e.seen {
		e.seen = true
		e.last = t
		return
	}
	dt := (t - e.last).Seconds()
	e.last = t
	if dt <= 0 {
		return
	}
	inst := bits / dt
	e.rate = e.alpha*inst + (1-e.alpha)*e.rate
}

// Rate returns the smoothed estimate; t is accepted for interface
// compatibility but the EWMA does not decay between arrivals.
func (e *EWMARate) Rate(des.Time) float64 { return e.rate }

// Counter tracks a monotone count and total (e.g. packets and bits
// delivered), with a convenience throughput query.
type Counter struct {
	N     uint64
	Total float64
	first des.Time
	last  des.Time
	seen  bool
}

// Add records amount at time t.
func (c *Counter) Add(t des.Time, amount float64) {
	if !c.seen {
		c.first = t
		c.seen = true
	}
	c.last = t
	c.N++
	c.Total += amount
}

// Throughput returns Total divided by the observation span, or 0 when the
// span is empty.
func (c *Counter) Throughput() float64 {
	span := (c.last - c.first).Seconds()
	if span <= 0 {
		return 0
	}
	return c.Total / span
}
