// Package stats provides the streaming statistics used by the simulator:
// numerically stable moments (Welford), extreme-value trackers for
// worst-case delay measurement, histograms, exact and reservoir quantiles,
// and the rate estimators the adaptive controller consults.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in a single pass using
// Welford's numerically stable recurrence, plus min/max. The zero value is
// an empty accumulator.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (Chan et al. parallel variant),
// so per-shard accumulators can be combined after a parallel sweep.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Count returns the number of samples.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample, or 0 for an empty accumulator.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample, or 0 for an empty accumulator.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// String summarises the accumulator for logs.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		w.n, w.Mean(), w.StdDev(), w.Min(), w.Max())
}

// MaxTracker records the largest observation together with a numeric tag
// (typically the packet ID at which the maximum occurred). It is the core
// of worst-case-delay measurement. The tag is deliberately a plain uint64,
// not an interface: Observe sits on the per-delivery hot path, and boxing
// a tag per packet was a measurable allocation source.
type MaxTracker struct {
	n     uint64
	max   float64
	tag   uint64
	atMax bool
}

// Observe folds in a sample with its tag.
func (m *MaxTracker) Observe(x float64, tag uint64) {
	m.n++
	if !m.atMax || x > m.max {
		m.max = x
		m.tag = tag
		m.atMax = true
	}
}

// Merge folds another tracker into m, so per-shard trackers can be
// combined after a sharded run. On an exact tie the receiver's tag wins;
// merging shards in a fixed order therefore keeps the combined tag
// deterministic.
func (m *MaxTracker) Merge(o MaxTracker) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	m.n += o.n
	if o.atMax && (!m.atMax || o.max > m.max) {
		m.max = o.max
		m.tag = o.tag
		m.atMax = true
	}
}

// Max returns the largest observation, or 0 if none were recorded.
func (m *MaxTracker) Max() float64 { return m.max }

// Tag returns the tag recorded with the maximum, or 0.
func (m *MaxTracker) Tag() uint64 { return m.tag }

// Count returns how many observations were recorded.
func (m *MaxTracker) Count() uint64 { return m.n }

// Histogram is a fixed-width linear-bin histogram over [lo, hi); samples
// outside the range are counted in the underflow/overflow bins.
type Histogram struct {
	lo, hi float64
	width  float64
	bins   []uint64
	under  uint64
	over   uint64
	total  uint64
	sum    float64
}

// NewHistogram returns a histogram with n bins over [lo, hi).
// It panics on a degenerate range or n <= 0.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || !(hi > lo) {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), bins: make([]uint64, n)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		h.bins[int((x-h.lo)/h.width)]++
	}
}

// Count returns the total number of samples, including out-of-range ones.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean of all samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// NumBins returns the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the histogram bins. Underflow samples are treated as lo and
// overflow samples as hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// Quantiles computes exact sample quantiles of xs (which it sorts in place)
// using the nearest-rank-with-interpolation convention. An empty input
// yields zeros.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sort.Float64s(xs)
	for i, q := range qs {
		out[i] = quantileSorted(xs, q)
	}
	return out
}

func quantileSorted(xs []float64, q float64) float64 {
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(xs) {
		return xs[lo]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// Reservoir is a fixed-capacity uniform sample of a stream (Vitter's
// algorithm R) for bounded-memory quantile estimation over long runs.
type Reservoir struct {
	cap   int
	seen  uint64
	data  []float64
	randU func() uint64 // injectable for determinism
}

// NewReservoir returns a reservoir holding at most capacity samples, using
// randU as its entropy source. randU must not be nil.
func NewReservoir(capacity int, randU func() uint64) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	if randU == nil {
		panic("stats: reservoir needs a rand source")
	}
	return &Reservoir{cap: capacity, randU: randU}
}

// Add offers a sample to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	j := r.randU() % r.seen
	if j < uint64(r.cap) {
		r.data[j] = x
	}
}

// Seen returns the number of samples offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Quantile estimates the q-quantile from the retained sample.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.data) == 0 {
		return 0
	}
	tmp := make([]float64, len(r.data))
	copy(tmp, r.data)
	sort.Float64s(tmp)
	return quantileSorted(tmp, q)
}
