package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	// population variance is 4; unbiased sample variance = 32/7
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("single sample should have zero variance")
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("single sample min/max")
	}
}

// Property: merging split halves equals accumulating the whole stream.
func TestQuickWelfordMerge(t *testing.T) {
	f := func(raw []int16, split uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 16.0
		}
		k := int(split) % len(xs)
		var whole, a, b Welford
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		return a.Count() == whole.Count() &&
			almostEqual(a.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(a.Variance(), whole.Variance(), 1e-6) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(b) // merge empty into non-empty
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	var c Welford
	c.Merge(a) // merge non-empty into empty
	if c.Count() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty lost data")
	}
}

func TestMaxTracker(t *testing.T) {
	var m MaxTracker
	m.Observe(1.0, 10)
	m.Observe(5.0, 20)
	m.Observe(3.0, 30)
	if m.Max() != 5.0 || m.Tag() != 20 || m.Count() != 3 {
		t.Fatalf("max=%v tag=%v n=%d", m.Max(), m.Tag(), m.Count())
	}
}

func TestMaxTrackerNegative(t *testing.T) {
	var m MaxTracker
	m.Observe(-5, 1)
	m.Observe(-2, 2)
	m.Observe(-9, 3)
	if m.Max() != -2 || m.Tag() != 2 {
		t.Fatalf("max=%v tag=%v", m.Max(), m.Tag())
	}
}

func TestHistogramBinsAndQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10.0) // 0.0 .. 9.9 uniform
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 10 {
			t.Fatalf("bin %d = %d", i, h.Bin(i))
		}
	}
	med := h.Quantile(0.5)
	if med < 4.5 || med > 5.5 {
		t.Fatalf("median = %v", med)
	}
	if !almostEqual(h.Mean(), 4.95, 1e-9) {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-1)
	h.Add(2)
	h.Add(0.5)
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Fatalf("under=%d over=%d", under, over)
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 1 {
		t.Fatal("extreme quantiles should clamp to range")
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantilesExact(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	got := Quantiles(xs, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("quantiles = %v", got)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	got := Quantiles(nil, 0.5)
	if got[0] != 0 {
		t.Fatalf("empty quantile = %v", got[0])
	}
}

func TestQuantilesInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	got := Quantiles(xs, 0.25)
	if !almostEqual(got[0], 2.5, 1e-12) {
		t.Fatalf("q25 = %v", got[0])
	}
}

// Property: histogram quantile approximates exact quantile within bin width.
func TestQuickHistogramQuantile(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram(0, 1, 100)
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = rng.Float64()
			h.Add(xs[i])
		}
		sort.Float64s(xs)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			exact := quantileSorted(xs, q)
			approx := h.Quantile(q)
			if math.Abs(exact-approx) > 0.03 {
				t.Fatalf("trial %d q=%v exact=%v approx=%v", trial, q, exact, approx)
			}
		}
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rng := xrand.New(1)
	r := NewReservoir(100, rng.Uint64)
	for i := 0; i < 50; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 50 {
		t.Fatalf("seen = %d", r.Seen())
	}
	// With fewer samples than capacity the quantiles are exact.
	if got := r.Quantile(1); got != 49 {
		t.Fatalf("max = %v", got)
	}
	if got := r.Quantile(0); got != 0 {
		t.Fatalf("min = %v", got)
	}
}

func TestReservoirLargeStreamApproximates(t *testing.T) {
	rng := xrand.New(2)
	r := NewReservoir(1000, rng.Uint64)
	for i := 0; i < 100000; i++ {
		r.Add(rng.Float64())
	}
	med := r.Quantile(0.5)
	if med < 0.42 || med > 0.58 {
		t.Fatalf("reservoir median = %v", med)
	}
}

func TestReservoirPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoir(0, xrand.New(1).Uint64)
}

func TestMaxTrackerMerge(t *testing.T) {
	var a, b, empty MaxTracker
	a.Observe(1.5, 10)
	a.Observe(0.5, 11)
	b.Observe(2.5, 20)
	b.Observe(2.0, 21)
	a.Merge(b)
	if a.Max() != 2.5 || a.Tag() != 20 || a.Count() != 4 {
		t.Fatalf("merged = max %v tag %d n %d", a.Max(), a.Tag(), a.Count())
	}
	// Merging an empty tracker is a no-op; merging into an empty adopts.
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatalf("empty merge changed the tracker")
	}
	var c MaxTracker
	c.Merge(a)
	if c != a {
		t.Fatalf("merge into empty did not adopt")
	}
	// Exact tie: the receiver's tag wins, so shard-order merges are stable.
	var x, y MaxTracker
	x.Observe(3.0, 1)
	y.Observe(3.0, 2)
	x.Merge(y)
	if x.Tag() != 1 {
		t.Fatalf("tie tag = %d, want the receiver's 1", x.Tag())
	}
}
