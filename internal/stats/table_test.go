package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("rho", "WDB(s)")
	tb.AddRow("0.35", "0.010")
	tb.AddRow("0.95", "0.900")
	out := tb.String()
	if !strings.Contains(out, "rho") || !strings.Contains(out, "0.95") {
		t.Fatalf("render missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRowf([]string{"%.2f", "%d"}, 1.2345, 42)
	out := tb.String()
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "42") {
		t.Fatalf("AddRowf output:\n%s", out)
	}
}

func TestTableAddRowfMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("a").AddRowf([]string{"%d", "%d"}, 1)
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3", "4")
	out := tb.String()
	if !strings.Contains(out, "4") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestSeriesAddAndYAt(t *testing.T) {
	var s Series
	s.Add(0.35, 1.0)
	s.Add(0.40, 2.0)
	if got := s.YAt(0.40); got != 2.0 {
		t.Fatalf("YAt = %v", got)
	}
	if got := s.YAt(0.99); !math.IsNaN(got) {
		t.Fatalf("YAt missing x = %v, want NaN", got)
	}
}

func TestCrossoverFindsFlip(t *testing.T) {
	// a starts above b, crosses at x=0.7.
	a := &Series{Name: "srl"}
	b := &Series{Name: "sr"}
	for _, p := range []struct{ x, ya, yb float64 }{
		{0.5, 10, 5}, {0.6, 9, 7}, {0.7, 8, 9}, {0.8, 7, 15},
	} {
		a.Add(p.x, p.ya)
		b.Add(p.x, p.yb)
	}
	x, ok := Crossover(a, b)
	if !ok || x != 0.7 {
		t.Fatalf("crossover = %v ok=%v", x, ok)
	}
}

func TestCrossoverNever(t *testing.T) {
	a := &Series{}
	b := &Series{}
	a.Add(1, 10)
	b.Add(1, 1)
	if _, ok := Crossover(a, b); ok {
		t.Fatal("crossover reported where none exists")
	}
}

func TestCrossoverGridMismatchPanics(t *testing.T) {
	a := &Series{}
	b := &Series{}
	a.Add(1, 10)
	b.Add(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on grid mismatch")
		}
	}()
	Crossover(a, b)
}

func TestMaxRatio(t *testing.T) {
	a := &Series{} // baseline (σ,ρ)
	b := &Series{} // (σ,ρ,λ)
	for _, p := range []struct{ x, ya, yb float64 }{
		{0.6, 8, 10}, {0.7, 9, 9}, {0.8, 20, 5}, {0.9, 30, 12},
	} {
		a.Add(p.x, p.ya)
		b.Add(p.x, p.yb)
	}
	ratio, at := MaxRatio(a, b, 0.7)
	if at != 0.8 || math.Abs(ratio-4.0) > 1e-12 {
		t.Fatalf("max ratio = %v at %v", ratio, at)
	}
	// Restricting the range excludes the 0.8 point.
	ratio, at = MaxRatio(a, b, 0.85)
	if at != 0.9 || math.Abs(ratio-2.5) > 1e-12 {
		t.Fatalf("restricted max ratio = %v at %v", ratio, at)
	}
}

func TestMaxRatioSkipsNonPositive(t *testing.T) {
	a := &Series{}
	b := &Series{}
	a.Add(1, 10)
	b.Add(1, 0)
	ratio, _ := MaxRatio(a, b, 0)
	if ratio != 0 {
		t.Fatalf("ratio over zero baseline = %v", ratio)
	}
}
