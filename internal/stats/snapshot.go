package stats

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/snap"
)

// Checkpoint support: the accumulators the sessions keep as mutable
// runtime state serialize their private fields into an open snap record
// and restore them in place. Encode and decode orders must match exactly
// (the codec has no field tags); each method documents its layout by
// being the layout.

// Snapshot appends the accumulator's fields to the open record.
func (w *Welford) Snapshot(sw *snap.Writer) {
	sw.U64(w.n)
	sw.F64(w.mean)
	sw.F64(w.m2)
	sw.F64(w.min)
	sw.F64(w.max)
}

// Restore overwrites the accumulator from the open record.
func (w *Welford) Restore(sr *snap.Reader) {
	w.n = sr.U64()
	w.mean = sr.F64()
	w.m2 = sr.F64()
	w.min = sr.F64()
	w.max = sr.F64()
}

// Snapshot appends the tracker's fields to the open record.
func (m *MaxTracker) Snapshot(sw *snap.Writer) {
	sw.U64(m.n)
	sw.F64(m.max)
	sw.U64(m.tag)
	sw.Bool(m.atMax)
}

// Restore overwrites the tracker from the open record.
func (m *MaxTracker) Restore(sr *snap.Reader) {
	m.n = sr.U64()
	m.max = sr.F64()
	m.tag = sr.U64()
	m.atMax = sr.Bool()
}

// Snapshot appends the counter's fields to the open record.
func (c *Counter) Snapshot(sw *snap.Writer) {
	sw.U64(c.N)
	sw.F64(c.Total)
	sw.I64(int64(c.first))
	sw.I64(int64(c.last))
	sw.Bool(c.seen)
}

// Restore overwrites the counter from the open record.
func (c *Counter) Restore(sr *snap.Reader) {
	c.N = sr.U64()
	c.Total = sr.F64()
	c.first = des.Time(sr.I64())
	c.last = des.Time(sr.I64())
	c.seen = sr.Bool()
}

// Snapshot appends the estimator's live window entries to the open
// record, oldest first. The running sum is serialized verbatim, not
// recomputed: it accumulated through float adds and subtracts whose
// low-order bits a fresh summation would not reproduce, and the adaptive
// controller's mode switches compare against it bit for bit.
func (w *WindowRate) Snapshot(sw *snap.Writer) {
	sw.Len(w.n)
	for i := 0; i < w.n; i++ {
		idx := (w.head + i) % len(w.times)
		sw.I64(int64(w.times[idx]))
		sw.F64(w.bits[idx])
	}
	sw.F64(w.sum)
}

// Restore overwrites the estimator from the open record. The ring's
// physical layout (head position, capacity growth history) is not part of
// the contract — only the logical entries and the running sum are.
func (w *WindowRate) Restore(sr *snap.Reader) {
	n := sr.Len()
	size := len(w.times)
	for size < n {
		size *= 2
	}
	w.times = make([]des.Time, size)
	w.bits = make([]float64, size)
	w.head, w.n = 0, n
	for i := 0; i < n; i++ {
		w.times[i] = des.Time(sr.I64())
		w.bits[i] = sr.F64()
	}
	w.sum = sr.F64()
}

// Snapshot appends the series' width and buckets to the open record.
func (w *WindowMax) Snapshot(sw *snap.Writer) {
	sw.F64(w.width)
	sw.Len(len(w.buckets))
	for i := range w.buckets {
		sw.F64(w.buckets[i])
		sw.Bool(w.filled[i])
	}
}

// Restore overwrites the series from the open record. The serialized
// width must match the accumulator's configured width: the restored run
// recompiles its immutable configuration first, so a mismatch means the
// snapshot came from a different configuration.
func (w *WindowMax) Restore(sr *snap.Reader) error {
	width := sr.F64()
	if sr.Err() == nil && width != w.width {
		return fmt.Errorf("stats: snapshot window width %v, accumulator has %v", width, w.width)
	}
	n := sr.Len()
	w.buckets = w.buckets[:0]
	w.filled = w.filled[:0]
	for i := 0; i < n; i++ {
		w.buckets = append(w.buckets, sr.F64())
		w.filled = append(w.filled, sr.Bool())
	}
	return sr.Err()
}
