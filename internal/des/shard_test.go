package des

import (
	"fmt"
	"testing"
)

// TestCoordinatorMergesDeterministically drives four shards that ping-pong
// cross-shard messages concurrently and checks the per-shard event logs are
// identical across repeated runs — the fixed-N determinism contract,
// independent of OS goroutine scheduling. Each shard appends only to its
// own log (the same isolation the simulator's shard-local stats rely on).
func TestCoordinatorMergesDeterministically(t *testing.T) {
	const shards = 4
	run := func() [shards][]string {
		var logs [shards][]string
		engines := make([]*Engine, shards)
		for i := range engines {
			engines[i] = New()
		}
		c := NewCoordinator[struct{}](engines, Millisecond)
		// Every shard runs a ticker that posts round-robin to the next
		// shard; arrivals log on the destination's own slice.
		for src := 0; src < shards; src++ {
			src := src
			hop := 0
			engines[src].ScheduleEvery(Time(src+1)*100*Microsecond, 700*Microsecond, func() {
				hop++
				h := hop
				at := engines[src].Now() + Millisecond + Time(h)*17
				dst := (src + 1 + h%2) % shards
				if dst == src {
					return
				}
				c.Post(src, dst, at, func() {
					logs[dst] = append(logs[dst], fmt.Sprintf("s%d<-s%d hop%d@%v", dst, src, h, engines[dst].Now()))
				})
			})
		}
		c.Run(30 * Millisecond)
		return logs
	}
	first := run()
	total := 0
	for _, l := range first {
		total += len(l)
	}
	if total == 0 {
		t.Fatal("workload produced no cross-shard messages")
	}
	for i := 0; i < 10; i++ {
		got := run()
		for s := range got {
			if fmt.Sprint(got[s]) != fmt.Sprint(first[s]) {
				t.Fatalf("run %d shard %d diverged:\n%v\nvs\n%v", i, s, got[s], first[s])
			}
		}
	}
}

// TestCoordinatorCrossShardOrder pins the merge order with single-shard
// epochs (each shard only ever has events in disjoint windows, so the
// shared log is safe).
func TestCoordinatorCrossShardOrder(t *testing.T) {
	var log []string
	engines := []*Engine{New(), New(), New()}
	c := NewCoordinator[struct{}](engines, Millisecond)
	// Shards 1 and 2 each post to shard 0, arriving at the same time.
	// Shard 1's send happens at a later lamport time, so shard 2's message
	// must run first despite the higher shard index posting... lamport
	// wins over src.
	engines[1].Schedule(2*Millisecond, func() {
		c.Post(1, 0, 10*Millisecond, func() { log = append(log, "from1@2") })
	})
	engines[2].Schedule(1*Millisecond, func() {
		c.Post(2, 0, 10*Millisecond, func() { log = append(log, "from2@1") })
	})
	c.Run(20 * Millisecond)
	if len(log) != 2 || log[0] != "from2@1" || log[1] != "from1@2" {
		t.Fatalf("merge order = %v, want [from2@1 from1@2] (lamport before src)", log)
	}
	if c.Messages() != 2 {
		t.Fatalf("messages = %d, want 2", c.Messages())
	}
}

// TestCoordinatorBarrierBeatsSameTimeEvents checks the sequential tie
// rule: a barrier action at time t runs before any engine event at t, and
// with every engine's clock parked at exactly t.
func TestCoordinatorBarrierBeatsSameTimeEvents(t *testing.T) {
	var log []string
	engines := []*Engine{New(), New()}
	c := NewCoordinator[struct{}](engines, Millisecond)
	engines[0].Schedule(5*Millisecond, func() { log = append(log, "event@5") })
	c.AtBarriers([]Time{5 * Millisecond, 15 * Millisecond}, func(at Time) {
		for i, e := range engines {
			if e.Now() != at {
				t.Fatalf("barrier at %v: engine %d clock %v", at, i, e.Now())
			}
		}
		log = append(log, fmt.Sprintf("barrier@%v", at.Millis()))
	})
	c.Run(20 * Millisecond)
	want := "[barrier@5 event@5 barrier@15]"
	if fmt.Sprint(log) != want {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

// TestCoordinatorBarriersBeyondDeadlineDropped mirrors the control plane's
// rule that events after the traffic horizon never apply.
func TestCoordinatorBarriersBeyondDeadlineDropped(t *testing.T) {
	fired := 0
	engines := []*Engine{New()}
	c := NewCoordinator[struct{}](engines, Millisecond)
	c.AtBarriers([]Time{5 * Millisecond, 15 * Millisecond}, func(Time) { fired++ })
	c.Run(10 * Millisecond)
	if fired != 1 {
		t.Fatalf("barriers fired = %d, want 1 (the 15ms barrier is beyond the deadline)", fired)
	}
	if got := engines[0].Now(); got != 10*Millisecond {
		t.Fatalf("final clock = %v, want 10ms", got)
	}
}

// TestCoordinatorLookaheadViolationPanics pins the causality guard.
func TestCoordinatorLookaheadViolationPanics(t *testing.T) {
	engines := []*Engine{New(), New()}
	c := NewCoordinator[struct{}](engines, Millisecond)
	engines[0].Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("posting below the lookahead did not panic")
			}
		}()
		c.Post(0, 1, 100, func() {}) // 100ns << 1ms lookahead
	})
	c.Run(Millisecond)
}

// TestCoordinatorMatchesSequentialEngine runs the same self-rescheduling
// workload on one engine via RunUntil and on the same model split over a
// coordinator with an idle peer shard; counts and final clocks must agree.
func TestCoordinatorMatchesSequentialEngine(t *testing.T) {
	load := func(e *Engine) *int {
		count := new(int)
		var tick func()
		tick = func() {
			*count++
			e.ScheduleIn(700*Microsecond, tick)
		}
		e.ScheduleIn(0, tick)
		return count
	}
	seq := New()
	seqCount := load(seq)
	seq.RunUntil(50 * Millisecond)

	shard := New()
	shardCount := load(shard)
	c := NewCoordinator[struct{}]([]*Engine{shard, New()}, 2*Millisecond)
	c.Run(50 * Millisecond)

	if *seqCount != *shardCount {
		t.Fatalf("event counts: sequential %d, sharded %d", *seqCount, *shardCount)
	}
	if seq.Now() != shard.Now() {
		t.Fatalf("clocks: sequential %v, sharded %v", seq.Now(), shard.Now())
	}
	if shard.Pending() == 0 {
		t.Fatal("ticker should still be pending beyond the deadline")
	}
}

// TestRunBeforeExcludesBound pins RunBefore's strict bound and clock
// advance.
func TestRunBeforeExcludesBound(t *testing.T) {
	e := New()
	var fired []Time
	e.Schedule(1*Millisecond, func() { fired = append(fired, e.Now()) })
	e.Schedule(2*Millisecond, func() { fired = append(fired, e.Now()) })
	e.RunBefore(2 * Millisecond)
	if len(fired) != 1 || fired[0] != Millisecond {
		t.Fatalf("fired = %v, want exactly the 1ms event", fired)
	}
	if e.Now() != 2*Millisecond {
		t.Fatalf("clock = %v, want 2ms", e.Now())
	}
	e.RunBefore(2*Millisecond + 1)
	if len(fired) != 2 {
		t.Fatalf("the 2ms event did not fire under an exclusive 2ms+1 bound")
	}
}

// TestNextAt pins the non-consuming peek.
func TestNextAt(t *testing.T) {
	e := New()
	if _, ok := e.NextAt(); ok {
		t.Fatal("empty engine reported a next event")
	}
	e.Schedule(3*Millisecond, func() {})
	at, ok := e.NextAt()
	if !ok || at != 3*Millisecond {
		t.Fatalf("NextAt = %v,%v want 3ms,true", at, ok)
	}
	if e.Pending() != 1 {
		t.Fatal("NextAt consumed the event")
	}
}
