package des

import "testing"

// TestBoundaryPostZeroAlloc pins the pooled fast path: in steady state a
// cross-shard PostPayload→drain→release→fire cycle must not allocate at
// all — records recycle through per-(src,dst) mailboxes, sorted pending
// buffers reuse their arrays, and delivery nodes come from per-dst free
// lists. A regression here is the old closure-per-packet path sneaking
// back in.
func TestBoundaryPostZeroAlloc(t *testing.T) {
	engines := []*Engine{New(), New()}
	c := NewCoordinatorMatrix[int](engines, [][]Duration{{0, 5}, {5, 0}})
	sum := 0
	c.OnDeliver(func(dst, p int) { sum += p })

	const k = 16 // boundary packets per side per step
	step := func() {
		for i := 0; i < k; i++ {
			c.PostPayload(0, 1, engines[0].Now()+5+Time(i), i)
			c.PostPayload(1, 0, engines[1].Now()+5+Time(i), i)
		}
		c.drain()
		b0, b1 := engines[0].Now()+5+k, engines[1].Now()+5+k
		c.release(0, b0)
		c.release(1, b1)
		engines[0].RunBefore(b0)
		engines[1].RunBefore(b1)
	}
	// Warm up: grow mailbox/pending capacity, event pools, and delivery
	// node free lists to their steady-state high-water marks.
	for i := 0; i < 8; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Fatalf("boundary handoff allocates %.1f times per %d-packet step, want 0", avg, 2*k)
	}
	if sum == 0 {
		t.Fatal("deliver hook never ran — the measurement exercised nothing")
	}
}
