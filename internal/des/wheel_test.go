package des

import (
	"testing"

	"repro/internal/xrand"
)

// refEvent / refHeap reimplement the seed engine's queue — the hand-rolled
// 4-ary min-heap on (at, seq) with eager removal — as the ordering oracle
// for the timing wheel. The differential test below drives both structures
// with the same schedule/cancel stream and demands bit-identical firing
// sequences.
type refEvent struct {
	at    Time
	seq   uint64
	id    int
	index int
}

type refHeap struct {
	heap []*refEvent
	seq  uint64
}

func (h *refHeap) less(a, b *refEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *refHeap) push(at Time, id int) *refEvent {
	ev := &refEvent{at: at, seq: h.seq, id: id}
	h.seq++
	ev.index = len(h.heap)
	h.heap = append(h.heap, ev)
	h.siftUp(ev.index)
	return ev
}

func (h *refHeap) pop() *refEvent {
	ev := h.heap[0]
	h.remove(0)
	return ev
}

func (h *refHeap) remove(i int) {
	n := len(h.heap) - 1
	removed := h.heap[i]
	if i != n {
		h.heap[i] = h.heap[n]
		h.heap[i].index = i
	}
	h.heap[n] = nil
	h.heap = h.heap[:n]
	if i < n {
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	removed.index = -1
}

func (h *refHeap) siftUp(i int) {
	ev := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(ev, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.heap[i].index = i
		i = parent
	}
	h.heap[i] = ev
	ev.index = i
}

func (h *refHeap) siftDown(i int) bool {
	ev := h.heap[i]
	start := i
	n := len(h.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(h.heap[c], h.heap[min]) {
				min = c
			}
		}
		if !h.less(h.heap[min], ev) {
			break
		}
		h.heap[i] = h.heap[min]
		h.heap[i].index = i
		i = min
	}
	h.heap[i] = ev
	ev.index = i
	return i > start
}

// TestDifferentialWheelVsSeedHeap drives the timing wheel and the seed's
// 4-ary heap with an identical randomized schedule/cancel stream —
// including same-timestamp bursts, sub-tick offsets, mid-run re-scheduling
// from callbacks, and far-future (overflow-heap) events — and asserts the
// two fire the surviving events in exactly the same order.
func TestDifferentialWheelVsSeedHeap(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := xrand.New(0xD1F + uint64(trial))
		eng := New()
		ref := &refHeap{}

		type pending struct {
			h  Event
			rv *refEvent
		}
		var gotOrder []int
		n := 64 + rng.Intn(512)
		id := 0
		handles := make([]pending, 0, n)
		schedule := func(at Time) {
			i := id
			id++
			h := eng.Schedule(at, func() {
				gotOrder = append(gotOrder, i)
				// Occasionally reschedule follow-up work from inside the
				// callback, mirroring serve loops. Mirror into the oracle.
				if i%7 == 3 {
					j := id
					id++
					d := Duration(1 + rng.Intn(5_000_000)) // up to 5 ms
					eng.ScheduleIn(d, func() { gotOrder = append(gotOrder, j) })
					ref.push(eng.Now()+d, j)
				}
			})
			handles = append(handles, pending{h: h, rv: ref.push(at, i)})
		}
		for k := 0; k < n; k++ {
			var at Time
			switch rng.Intn(10) {
			case 0: // same-instant burst
				at = Time(rng.Intn(4)) * 1_000_000
			case 1: // sub-tick spread (inside one 1024 ns bucket)
				at = 5_000_000 + Time(rng.Intn(1024))
			case 2: // far future: exercises coarse levels
				at = Time(rng.Intn(1_000_000_000_000)) // up to 1000 s
			case 3: // beyond the wheel horizon: overflow heap
				at = Time(5_000_000_000_000) + Time(rng.Intn(1_000_000_000))
			default: // typical packet-scale times
				at = Time(rng.Intn(100_000_000))
			}
			schedule(at)
		}
		// Cancel a random subset through both structures.
		for _, p := range handles {
			if rng.Bool(0.25) {
				eng.Cancel(p.h)
				if p.rv.index >= 0 {
					ref.remove(p.rv.index)
				}
			}
		}
		eng.Run()
		var wantOrder []int
		for len(ref.heap) > 0 {
			wantOrder = append(wantOrder, ref.pop().id)
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("trial %d: wheel fired %d events, seed heap %d",
				trial, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: firing order diverges at %d: wheel %d, heap %d",
					trial, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

// Events beyond the wheel horizon park in the overflow heap and must still
// fire in order once the cursor approaches.
func TestOverflowHorizonOrdering(t *testing.T) {
	eng := New()
	var order []int
	far := Time(horizonTicks<<tickShift) * 3
	eng.Schedule(far+5, func() { order = append(order, 3) })
	eng.Schedule(10, func() { order = append(order, 1) })
	eng.Schedule(far, func() { order = append(order, 2) })
	eng.Schedule(far+5, func() { order = append(order, 4) }) // tie: FIFO by seq
	eng.Run()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if eng.Now() != far+5 {
		t.Fatalf("Now() = %v", eng.Now())
	}
}

func TestCancelOverflowEvent(t *testing.T) {
	eng := New()
	far := Time(horizonTicks<<tickShift) * 2
	fired := false
	ev := eng.Schedule(far, func() { fired = true })
	eng.Schedule(5, func() {})
	eng.Cancel(ev)
	eng.Run()
	if fired {
		t.Fatal("canceled overflow event fired")
	}
}

// After RunUntil the cursor may have jumped ahead of the clock (to the
// next pending event's bucket). Scheduling behind the cursor must still
// fire in correct order — the regression this guards is the ready-run
// merge insert.
func TestScheduleBehindCursorAfterRunUntil(t *testing.T) {
	eng := New()
	var order []int
	eng.Schedule(100*Second, func() { order = append(order, 3) })
	eng.RunUntil(Second) // cursor jumps toward the 100 s event
	eng.Schedule(2*Second, func() { order = append(order, 1) })
	eng.Schedule(3*Second, func() { order = append(order, 2) })
	eng.Run()
	want := []int{1, 2, 3}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Steady-state rescheduling must be allocation-free: the event records
// recycle through the pool and the pool stops growing.
func TestSteadyStatePoolStopsGrowing(t *testing.T) {
	eng := New()
	for i := 0; i < 64; i++ {
		period := Duration(1000 + i*37)
		var tick func()
		tick = func() { eng.ScheduleIn(period, tick) }
		eng.ScheduleIn(period, tick)
	}
	for i := 0; i < 1024; i++ {
		eng.Step()
	}
	high := eng.PoolSize()
	for i := 0; i < 8192; i++ {
		eng.Step()
	}
	if eng.PoolSize() != high {
		t.Fatalf("pool grew in steady state: %d -> %d", high, eng.PoolSize())
	}
}

func TestSameTickSubOrder(t *testing.T) {
	// Events inside one 1024 ns bucket must fire by exact nanosecond, then
	// seq.
	eng := New()
	var order []Time
	base := Time(1 << 20)
	for _, off := range []Time{900, 100, 500, 100, 0} {
		at := base + off
		eng.Schedule(at, func() { order = append(order, at) })
	}
	eng.Run()
	want := []Time{base, base + 100, base + 100, base + 500, base + 900}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}
