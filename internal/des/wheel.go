package des

import "math/bits"

// The event queue is a hierarchical timing wheel: four levels of 256
// buckets, each level 256× coarser than the one below. A tick is 1024 ns
// (shift instead of divide), so the wheel spans 2^32 ticks ≈ 73 simulated
// minutes ahead of the cursor; events beyond that sit in a small overflow
// heap and migrate in as the cursor approaches.
//
// Why not the seed's 4-ary heap: at the ~10^5 live events the EMcast runs
// reach, every push/pop paid an O(log n) sift with pointer-chasing
// comparisons (~50% of simulation CPU in profiles). Wheel insertion is
// O(1) — mask, chain push, set an occupancy bit — and extraction amortises
// to a 256-bit bitmap scan per non-empty bucket plus one small sort when a
// bottom-level bucket is drained.
//
// Ordering is bit-for-bit the seed's: events fire in strict (at, prio,
// seq) order — prio being the scheduling-time stamp (monotone in seq for
// a local engine, so this degenerates to the seed's (at, seq) FIFO tie-
// break; see des.go on SchedulePrio for why sharded merging needs the
// explicit middle key). The wheel only ever buckets events; the actual
// firing order within a bottom-level bucket is fixed by sorting its chain
// on (at, prio, seq) when it is promoted to the ready run. seq is unique,
// so the sort has a single valid result and stability is irrelevant.
//
// Cursor invariants:
//
//   - curTick only advances, and never past the tick of an unfired event.
//   - every event in the wheel has tick(at) > curTick; events at or before
//     curTick live in the sorted ready run (this is what keeps late
//     scheduling after RunUntil correct: the cursor may have jumped ahead
//     of the clock, and new events behind it are merge-inserted into ready).
//   - a level-ℓ bucket holds events from exactly one 256^ℓ-tick block,
//     except for the classic wrap case (an event exactly one full level
//     revolution ahead); re-inserting a drained chain re-files wrapped
//     events into the same bucket, which is harmless because each advance
//     drains a bucket at most once.

const (
	// tickShift trades bucket residency against cascade frequency: packet
	// serialisation gaps in the experiments are ~0.1–30 ms, so an 8.2 µs
	// tick keeps typical gaps within the 256-tick bottom level (one bitmap
	// scan per pop, no cascade) while a bucket still only spans a few
	// microseconds of same-bucket events to sort at drain time.
	tickShift = 13 // 1 tick = 8192 ns
	levelBits = 8
	wheelSize = 1 << levelBits // buckets per level
	wheelMask = wheelSize - 1
	numLevels = 4
	// horizonTicks is how far ahead of the cursor the wheel can file.
	horizonTicks = int64(1) << (levelBits * numLevels)
)

func tickOf(at Time) int64 { return int64(at) >> tickShift }

// wheelLevel is one ring: 256 chain-head buckets plus an occupancy bitmap
// so the next non-empty bucket is found with four word scans.
type wheelLevel struct {
	bucket [wheelSize]*event
	occ    [wheelSize / 64]uint64
	count  int
}

func (l *wheelLevel) push(idx int, ev *event) {
	ev.next = l.bucket[idx]
	l.bucket[idx] = ev
	l.occ[idx>>6] |= 1 << (uint(idx) & 63)
	l.count++
}

// take empties bucket idx and returns its chain (LIFO insertion order).
func (l *wheelLevel) take(idx int) *event {
	chain := l.bucket[idx]
	if chain == nil {
		return nil
	}
	l.bucket[idx] = nil
	l.occ[idx>>6] &^= 1 << (uint(idx) & 63)
	for ev := chain; ev != nil; ev = ev.next {
		l.count--
	}
	return chain
}

// nearestFrom returns the index of the first occupied bucket strictly
// after position p in circular order (p+1, p+2, …, p+256). The bucket at
// p itself is only reachable as the full-revolution wrap, which is exactly
// the classic "delta 256" case on coarse levels.
func (l *wheelLevel) nearestFrom(p int) (int, bool) {
	if l.count == 0 {
		return 0, false
	}
	start := (p + 1) & wheelMask
	wi := start >> 6
	off := uint(start) & 63
	if w := l.occ[wi] &^ (1<<off - 1); w != 0 {
		return wi<<6 + bits.TrailingZeros64(w), true
	}
	for k := 1; k <= len(l.occ); k++ {
		j := (wi + k) & (len(l.occ) - 1)
		w := l.occ[j]
		if k == len(l.occ) {
			w &= 1<<off - 1 // wrap: the part of word wi below start
		}
		if w != 0 {
			return j<<6 + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// insert files ev relative to the cursor: into the sorted ready run when
// its tick is not ahead of curTick, into the finest level that spans its
// distance otherwise, or into the overflow heap beyond the horizon.
func (e *Engine) insert(ev *event) {
	t := tickOf(ev.at)
	d := t - e.curTick
	switch {
	case d <= 0:
		e.insertReady(ev)
	case d < 1<<levelBits:
		e.levels[0].push(int(t)&wheelMask, ev)
	case d < 1<<(2*levelBits):
		e.levels[1].push(int(t>>levelBits)&wheelMask, ev)
	case d < 1<<(3*levelBits):
		e.levels[2].push(int(t>>(2*levelBits))&wheelMask, ev)
	case d < horizonTicks:
		e.levels[3].push(int(t>>(3*levelBits))&wheelMask, ev)
	default:
		e.overflow.push(ev)
	}
}

// insertReady merge-inserts ev into the sorted ready run at its (at, seq)
// position. Used for events at or behind the cursor: same-tick schedules
// made from inside a callback, and post-RunUntil schedules behind a jumped
// cursor.
func (e *Engine) insertReady(ev *event) {
	lo, hi := e.readyHead, len(e.ready)
	for lo < hi {
		mid := (lo + hi) / 2
		if eventLess(e.ready[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.ready = append(e.ready, nil)
	copy(e.ready[lo+1:], e.ready[lo:])
	e.ready[lo] = ev
}

// fill makes ready[readyHead] the globally next live event, reaping
// canceled records on the way. It returns false when the queue is empty.
func (e *Engine) fill() bool {
	for {
		for e.readyHead < len(e.ready) {
			ev := e.ready[e.readyHead]
			if !ev.canceled {
				return true
			}
			e.ready[e.readyHead] = nil
			e.readyHead++
			e.release(ev)
		}
		e.ready = e.ready[:0]
		e.readyHead = 0

		// Pull overflow events that came within the horizon.
		for e.overflow.len() > 0 {
			top := e.overflow.peek()
			if top.canceled {
				e.overflow.pop()
				e.release(top)
				continue
			}
			if tickOf(top.at)-e.curTick >= horizonTicks {
				break
			}
			e.overflow.pop()
			e.insert(top)
		}

		// Locate the earliest possible tick across the levels: per level,
		// the block start of the nearest occupied bucket.
		best := int64(-1)
		for lvl := 0; lvl < numLevels; lvl++ {
			l := &e.levels[lvl]
			if l.count == 0 {
				continue
			}
			shift := uint(levelBits * lvl)
			p := int(e.curTick>>shift) & wheelMask
			idx, ok := l.nearestFrom(p)
			if !ok {
				continue
			}
			delta := int64((idx - p) & wheelMask)
			if delta == 0 {
				delta = wheelSize // full-revolution wrap
			}
			start := ((e.curTick >> shift) + delta) << shift
			if best < 0 || start < best {
				best = start
			}
		}
		if best < 0 {
			if e.overflow.len() > 0 {
				// Wheel empty, overflow beyond horizon: jump the cursor so
				// the next migration loop files the heap's front.
				e.curTick = tickOf(e.overflow.peek().at) - horizonTicks + 1
				continue
			}
			return false
		}
		e.advanceTo(best)
	}
}

// advanceTo moves the cursor to tick t (<= every unfired event's tick),
// cascades the coarse buckets that t lands in, and promotes the bottom-
// level bucket at t into the sorted ready run.
func (e *Engine) advanceTo(t int64) {
	e.curTick = t
	for lvl := numLevels - 1; lvl >= 1; lvl-- {
		l := &e.levels[lvl]
		if l.count == 0 {
			continue
		}
		idx := int(t>>(uint(levelBits*lvl))) & wheelMask
		for ev := l.take(idx); ev != nil; {
			nxt := ev.next
			if ev.canceled {
				e.release(ev)
			} else {
				e.insert(ev)
			}
			ev = nxt
		}
	}
	for ev := e.levels[0].take(int(t) & wheelMask); ev != nil; {
		nxt := ev.next
		if ev.canceled {
			e.release(ev)
		} else {
			ev.next = nil
			e.ready = append(e.ready, ev)
		}
		ev = nxt
	}
	sortReady(e.ready[e.readyHead:])
}

// sortReady orders a ready run by (at, prio, seq). Chains are short in
// steady state (a bottom-level bucket spans ~1 µs), so insertion sort
// wins; the comparison is a strict total order because seq is unique.
func sortReady(evs []*event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i
		for j > 0 {
			p := evs[j-1]
			if eventLess(p, ev) {
				break
			}
			evs[j] = p
			j--
		}
		evs[j] = ev
	}
}

// peek returns the next live event without consuming it, or nil.
func (e *Engine) peek() *event {
	if !e.fill() {
		return nil
	}
	return e.ready[e.readyHead]
}

// next consumes and returns the next live event, or nil.
func (e *Engine) next() *event {
	if !e.fill() {
		return nil
	}
	ev := e.ready[e.readyHead]
	e.ready[e.readyHead] = nil
	e.readyHead++
	return ev
}

// overflowHeap is a plain binary min-heap on (at, prio, seq) for events
// beyond the wheel horizon. It is cold storage: real runs never reach it
// (the horizon is ~73 simulated minutes), so no indexing or eager removal
// — canceled records are reaped when they surface.
type overflowHeap struct {
	evs []*event
}

func (h *overflowHeap) len() int     { return len(h.evs) }
func (h *overflowHeap) peek() *event { return h.evs[0] }

func overflowLess(a, b *event) bool { return eventLess(a, b) }

func (h *overflowHeap) push(ev *event) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(h.evs[i], h.evs[parent]) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

func (h *overflowHeap) pop() *event {
	top := h.evs[0]
	n := len(h.evs) - 1
	h.evs[0] = h.evs[n]
	h.evs[n] = nil
	h.evs = h.evs[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && overflowLess(h.evs[c+1], h.evs[c]) {
			c++
		}
		if !overflowLess(h.evs[c], h.evs[i]) {
			break
		}
		h.evs[i], h.evs[c] = h.evs[c], h.evs[i]
		i = c
	}
	return top
}
