package des

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Millis(2.5) != 2500*Microsecond {
		t.Fatalf("Millis(2.5) = %v", Millis(2.5))
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds() = %v", got)
	}
	if got := (250 * Microsecond).Millis(); got != 0.25 {
		t.Fatalf("Millis() = %v", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	eng := New()
	var order []Time
	times := []Time{50, 10, 30, 20, 40, 15, 5}
	for _, at := range times {
		at := at
		eng.Schedule(at, func() { order = append(order, at) })
	}
	eng.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d of %d events", len(order), len(times))
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	eng := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(100, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	eng := New()
	eng.Schedule(42, func() {
		if eng.Now() != 42 {
			t.Fatalf("Now() = %v inside event at 42", eng.Now())
		}
	})
	eng.Run()
	if eng.Now() != 42 {
		t.Fatalf("Now() = %v after run", eng.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	eng := New()
	eng.Schedule(100, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	eng.Schedule(50, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	eng := New()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil func did not panic")
		}
	}()
	eng.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	eng := New()
	fired := false
	ev := eng.Schedule(10, func() { fired = true })
	eng.Cancel(ev)
	eng.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if ev.Pending() {
		t.Fatal("canceled event still pending")
	}
}

func TestCancelIsImmediate(t *testing.T) {
	eng := New()
	ev := eng.Schedule(10, func() {})
	if eng.Pending() != 1 {
		t.Fatalf("pending = %d", eng.Pending())
	}
	eng.Cancel(ev)
	if eng.Pending() != 0 {
		t.Fatalf("canceled event still counted, pending = %d", eng.Pending())
	}
}

func TestCancelTwiceAndAfterFire(t *testing.T) {
	eng := New()
	ev := eng.Schedule(10, func() {})
	eng.Run()
	eng.Cancel(ev)      // after firing: no-op
	eng.Cancel(ev)      // twice: no-op
	eng.Cancel(Event{}) // zero handle: no-op
}

// A handle must go stale after its event fires, even though the record is
// recycled for a later event: canceling through the stale handle must not
// touch the new incarnation.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	eng := New()
	first := eng.Schedule(10, func() {})
	eng.Run()
	fired := false
	second := eng.Schedule(20, func() { fired = true })
	if first.Pending() {
		t.Fatal("fired handle still pending")
	}
	eng.Cancel(first) // stale: must not cancel the recycled record
	if !second.Pending() {
		t.Fatal("stale cancel hit the recycled event")
	}
	eng.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestEventAt(t *testing.T) {
	eng := New()
	ev := eng.Schedule(77, func() {})
	if ev.At() != 77 {
		t.Fatalf("At() = %v", ev.At())
	}
	eng.Run()
	if ev.At() != 0 {
		t.Fatalf("stale At() = %v", ev.At())
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	eng := New()
	var log []Time
	eng.Schedule(10, func() {
		log = append(log, eng.Now())
		eng.ScheduleIn(5, func() { log = append(log, eng.Now()) })
	})
	eng.Run()
	if len(log) != 2 || log[0] != 10 || log[1] != 15 {
		t.Fatalf("log = %v", log)
	}
}

func TestRunUntil(t *testing.T) {
	eng := New()
	count := 0
	for i := 1; i <= 10; i++ {
		eng.Schedule(Time(i)*10, func() { count++ })
	}
	eng.RunUntil(55)
	if count != 5 {
		t.Fatalf("RunUntil(55) executed %d events", count)
	}
	if eng.Now() != 55 {
		t.Fatalf("Now() = %v after RunUntil(55)", eng.Now())
	}
	eng.RunUntil(200)
	if count != 10 {
		t.Fatalf("second RunUntil executed total %d", count)
	}
}

func TestStop(t *testing.T) {
	eng := New()
	count := 0
	for i := 1; i <= 10; i++ {
		eng.Schedule(Time(i), func() {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run, count = %d", count)
	}
	if eng.Pending() != 7 {
		t.Fatalf("pending after stop = %d", eng.Pending())
	}
}

func TestExecutedCounter(t *testing.T) {
	eng := New()
	for i := 0; i < 5; i++ {
		eng.Schedule(Time(i), func() {})
	}
	ev := eng.Schedule(99, func() {})
	eng.Cancel(ev)
	eng.Run()
	if eng.Executed() != 5 {
		t.Fatalf("Executed() = %d", eng.Executed())
	}
}

// Property: with arbitrary event times, the firing sequence is the sorted
// multiset of scheduled times.
func TestQuickWheelOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		eng := New()
		want := make([]Time, len(raw))
		var got []Time
		for i, v := range raw {
			at := Time(v)
			want[i] = at
			eng.Schedule(at, func() { got = append(got, at) })
		}
		eng.Run()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaving of schedule/cancel fires exactly the
// non-canceled set.
func TestQuickCancelConsistency(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 100; trial++ {
		eng := New()
		fired := make(map[int]bool)
		events := make([]Event, 0, 64)
		n := 1 + rng.Intn(64)
		for i := 0; i < n; i++ {
			i := i
			ev := eng.Schedule(Time(rng.Intn(1000)), func() { fired[i] = true })
			events = append(events, ev)
		}
		canceled := make(map[int]bool)
		for i, ev := range events {
			if rng.Bool(0.4) {
				eng.Cancel(ev)
				canceled[i] = true
			}
		}
		eng.Run()
		for i := range events {
			if canceled[i] && fired[i] {
				t.Fatalf("trial %d: canceled event %d fired", trial, i)
			}
			if !canceled[i] && !fired[i] {
				t.Fatalf("trial %d: live event %d did not fire", trial, i)
			}
		}
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	eng := New()
	var fires []Time
	tk := NewTicker(eng, 10, func() { fires = append(fires, eng.Now()) })
	eng.Schedule(45, func() { tk.Stop() })
	eng.Run()
	want := []Time{10, 20, 30, 40}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired %v", fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("ticker fired %v, want %v", fires, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	eng := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(eng, 5, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	eng.Run()
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestTickerReset(t *testing.T) {
	eng := New()
	var fires []Time
	var tk *Ticker
	tk = NewTicker(eng, 10, func() {
		fires = append(fires, eng.Now())
		tk.Reset(20)
		if len(fires) == 3 {
			tk.Stop()
		}
	})
	eng.Run()
	want := []Time{10, 30, 50}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for period 0")
		}
	}()
	NewTicker(New(), 0, func() {})
}

func TestScheduleEveryFirstOffset(t *testing.T) {
	eng := New()
	var fires []Time
	tk := eng.ScheduleEvery(3, 10, func() { fires = append(fires, eng.Now()) })
	eng.Schedule(30, func() { tk.Stop() })
	eng.Run()
	want := []Time{3, 13, 23}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v", fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestScheduleEveryZeroFirst(t *testing.T) {
	eng := New()
	var fires []Time
	var tk *Ticker
	tk = eng.ScheduleEvery(0, 5, func() {
		fires = append(fires, eng.Now())
		if len(fires) == 2 {
			tk.Stop()
		}
	})
	eng.Run()
	if len(fires) != 2 || fires[0] != 0 || fires[1] != 5 {
		t.Fatalf("fires = %v", fires)
	}
}

func TestTimerArmDisarm(t *testing.T) {
	eng := New()
	tm := NewTimer(eng)
	fired := false
	tm.Arm(10, func() { fired = true })
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	tm.Disarm()
	if tm.Armed() {
		t.Fatal("timer should be disarmed")
	}
	eng.Run()
	if fired {
		t.Fatal("disarmed timer fired")
	}
}

func TestTimerRearmReplaces(t *testing.T) {
	eng := New()
	tm := NewTimer(eng)
	var at Time = -1
	tm.Arm(10, func() { at = eng.Now() })
	tm.Arm(25, func() { at = eng.Now() })
	eng.Run()
	if at != 25 {
		t.Fatalf("rearm did not replace: fired at %v", at)
	}
}

func TestTimerArmAt(t *testing.T) {
	eng := New()
	tm := NewTimer(eng)
	var at Time = -1
	tm.ArmAt(33, func() { at = eng.Now() })
	eng.Run()
	if at != 33 {
		t.Fatalf("ArmAt fired at %v", at)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	rng := xrand.New(1)
	times := make([]Time, 1024)
	for i := range times {
		times[i] = Time(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New()
		for _, at := range times {
			eng.Schedule(at, func() {})
		}
		eng.Run()
	}
}

func BenchmarkHotLoopPingPong(b *testing.B) {
	// Two events perpetually rescheduling each other: the regulator
	// on/off pattern in miniature.
	eng := New()
	count := 0
	var ping, pong func()
	ping = func() { count++; eng.ScheduleIn(1, pong) }
	pong = func() { count++; eng.ScheduleIn(1, ping) }
	eng.ScheduleIn(1, ping)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkCancelHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := New()
		evs := make([]Event, 256)
		for j := range evs {
			evs[j] = eng.Schedule(Time(j), func() {})
		}
		for j := 0; j < len(evs); j += 2 {
			eng.Cancel(evs[j])
		}
		eng.Run()
	}
}

// BenchmarkSteadyState measures the regulator-shaped steady state: a few
// hundred self-rescheduling processes at mixed periods. This is the
// workload the timing wheel exists for; it must not allocate.
func BenchmarkSteadyState(b *testing.B) {
	eng := New()
	for i := 0; i < 256; i++ {
		period := Duration(500_000 + 7919*i) // ~0.5–2.5 ms, co-prime spread
		var tick func()
		tick = func() { eng.ScheduleIn(period, tick) }
		eng.ScheduleIn(period, tick)
	}
	// Warm the pool.
	for i := 0; i < 4096; i++ {
		eng.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
