// Package des implements a deterministic discrete-event simulation engine.
//
// It is the substrate that replaces ns-2 in this reproduction: every
// simulated component (traffic source, regulator, multiplexer, link, router,
// overlay host) schedules closures on a single Engine. Time is an int64
// nanosecond count, so runs are bit-for-bit reproducible — no floating-point
// clock drift — and events that fire at the same instant are executed in
// scheduling order (a monotone sequence number breaks ties).
package des

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration = Time

// Common durations, mirroring package time for readability.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Millis converts a floating-point number of milliseconds to a Time.
func Millis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time in milliseconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Millis()) }

// Event is a scheduled closure. The pointer doubles as a handle for Cancel.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 when not queued
	canceled bool
}

// At reports when the event will fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a single-threaded discrete-event executor. The zero value is
// ready to use. Engines are not safe for concurrent use; the simulation
// model is strictly sequential, which is what makes it deterministic.
type Engine struct {
	now      Time
	seq      uint64
	heap     []*Event
	executed uint64
	running  bool
}

// New returns a fresh engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting in the queue, including
// canceled events that have not been reaped yet.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it always indicates a model bug, and silently
// reordering time would destroy the causality the simulation depends on.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: scheduling nil func")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.push(ev)
	return ev
}

// ScheduleIn enqueues fn to run d nanoseconds after Now. Negative d panics.
func (e *Engine) ScheduleIn(d Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired or was already canceled is a no-op. The event is removed
// from the queue immediately, so long-running simulations do not accumulate
// dead entries.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	e.remove(ev.index)
}

// Step executes the single next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	e.running = true
	for e.running && e.Step() {
	}
	e.running = false
}

// RunUntil executes events with firing time <= deadline, then advances the
// clock to exactly deadline. Events scheduled beyond the deadline remain
// queued.
func (e *Engine) RunUntil(deadline Time) {
	e.running = true
	for e.running && len(e.heap) > 0 {
		next := e.peek()
		if next.canceled {
			e.pop()
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	e.running = false
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop halts Run/RunUntil after the current event returns. It is intended
// to be called from inside an event callback (e.g. when a measurement
// target has been reached).
func (e *Engine) Stop() { e.running = false }

// heap operations: a hand-rolled 4-ary min-heap keyed on (at, seq).
// A 4-ary layout halves tree depth versus binary, which measurably reduces
// sift costs at the queue sizes the EMcast experiments reach (~10^5 events).

func (e *Engine) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.siftUp(ev.index)
}

func (e *Engine) peek() *Event { return e.heap[0] }

func (e *Engine) pop() *Event {
	ev := e.heap[0]
	e.remove(0)
	return ev
}

func (e *Engine) remove(i int) {
	n := len(e.heap) - 1
	removed := e.heap[i]
	if i != n {
		e.heap[i] = e.heap[n]
		e.heap[i].index = i
	}
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if i < n {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	removed.index = -1
}

func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(ev, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.heap[i].index = i
		i = parent
	}
	e.heap[i] = ev
	ev.index = i
}

func (e *Engine) siftDown(i int) bool {
	ev := e.heap[i]
	start := i
	n := len(e.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[min]) {
				min = c
			}
		}
		if !e.less(e.heap[min], ev) {
			break
		}
		e.heap[i] = e.heap[min]
		e.heap[i].index = i
		i = min
	}
	e.heap[i] = ev
	ev.index = i
	return i > start
}
